// willow.go re-exports the library's public surface. The implementation
// lives under internal/ (one package per subsystem — see DESIGN.md), and
// this facade is what code outside this module imports:
//
//	import "willow"
//
//	tree, _ := willow.BuildHierarchy([]int{2, 3, 3})
//	ctrl, _ := willow.NewController(tree, specs, willow.ConstantSupply(8100),
//		willow.ControllerDefaults(), willow.NewRandom(42))
//	ctrl.Run(400)
//
// Everything here is an alias or thin wrapper; the full documentation
// sits on the underlying types.
package willow

import (
	"io"

	"willow/internal/cluster"
	"willow/internal/core"
	"willow/internal/dist"
	"willow/internal/plan"
	"willow/internal/power"
	"willow/internal/telemetry"
	"willow/internal/testbed"
	"willow/internal/thermal"
	"willow/internal/topo"
	"willow/internal/workload"
)

// Controller is the Willow hierarchical controller — the paper's primary
// contribution. See internal/core.
type Controller = core.Controller

// ControllerConfig holds the controller's tunables (η1, η2, P_min,
// smoothing α, consolidation threshold, async and transfer knobs).
type ControllerConfig = core.Config

// ServerSpec describes one leaf server at construction time.
type ServerSpec = core.ServerSpec

// Migration records one applied workload migration.
type Migration = core.Migration

// Stats aggregates a run's control-plane measurements.
type Stats = core.Stats

// Event is one controller telemetry event — a tick-stamped record of a
// control decision (budget change, migration, thermal throttle,
// sleep/wake, failure, QoS violation, degraded-mode transition). Set
// Controller.Sink (or Simulation.Sink) to receive the stream; see
// internal/telemetry.
type Event = telemetry.Event

// EventKind discriminates telemetry event types.
type EventKind = telemetry.Kind

// EventSink consumes controller telemetry events.
type EventSink = telemetry.Sink

// EventSinkFunc adapts a function to an EventSink.
type EventSinkFunc = telemetry.SinkFunc

// Telemetry event kinds.
const (
	EventBudgetChange    = telemetry.KindBudgetChange
	EventMigration       = telemetry.KindMigration
	EventThermalThrottle = telemetry.KindThermalThrottle
	EventSleepWake       = telemetry.KindSleepWake
	EventFailure         = telemetry.KindFailure
	EventQoSViolation    = telemetry.KindQoSViolation
	EventDegraded        = telemetry.KindDegraded
	EventSensor          = telemetry.KindSensor
)

// NewEventWriter returns a sink streaming events as JSONL into w (one
// JSON object per line); call Close to flush.
func NewEventWriter(w io.Writer) *telemetry.Writer { return telemetry.NewWriter(w) }

// ReadEvents decodes a JSONL event stream.
func ReadEvents(r io.Reader) ([]Event, error) { return telemetry.ReadAll(r) }

// ControllerDefaults returns the paper-faithful controller parameters
// (η1 = 4, η2 = 7, 20 % consolidation threshold).
func ControllerDefaults() ControllerConfig { return core.Defaults() }

// NewController builds a controller over the given hierarchy.
func NewController(tree *Hierarchy, specs []ServerSpec, supply Supply, cfg ControllerConfig, rnd *Random) (*Controller, error) {
	return core.New(tree, specs, supply, cfg, rnd)
}

// Hierarchy is the PMU/switch tree of the data center.
type Hierarchy = topo.Tree

// Node is one vertex of the hierarchy.
type Node = topo.Node

// BuildHierarchy constructs a uniform hierarchy from a fan-out list,
// root downward; BuildHierarchy([]int{2, 3, 3}) is the paper's 18-server
// configuration.
func BuildHierarchy(fanout []int) (*Hierarchy, error) { return topo.Build(fanout) }

// BuildIrregularHierarchy constructs a hierarchy with per-node child
// counts (the paper's testbed is BuildIrregularHierarchy([][]int{{2}, {2, 1}})).
func BuildIrregularHierarchy(levels [][]int) (*Hierarchy, error) {
	return topo.BuildIrregular(levels)
}

// Supply yields the facility's power budget per supply epoch.
type Supply = power.Supply

// SupplyTrace replays a recorded supply profile (wrapping around).
type SupplyTrace = power.Trace

// ServerPowerModel maps utilization to server power draw.
type ServerPowerModel = power.ServerModel

// UPS is a battery-backed supply smoother.
type UPS = power.UPS

// ConstantSupply returns a fixed supply of the given watts.
func ConstantSupply(watts float64) Supply { return power.Constant(watts) }

// SineSupply returns a sinusoidal supply (diurnal renewables).
func SineSupply(base, amplitude float64, period int) Supply {
	return power.Sine{Base: base, Amplitude: amplitude, Period: period}
}

// ThermalModel is the first-order RC thermal model of the paper's Eq. 1,
// including the Eq. 3 power limit and least-squares calibration.
type ThermalModel = thermal.Model

// App is one application/VM — the unit of migration.
type App = workload.App

// AppClass describes an application type by its power weight.
type AppClass = workload.Class

// Random is a deterministic random stream; identical seeds reproduce
// identical runs.
type Random = dist.Source

// NewRandom returns a Random seeded with seed.
func NewRandom(seed uint64) *Random { return dist.NewSource(seed) }

// Simulation is a full data-center run configuration binding topology,
// thermals, power, workload and controller (see internal/cluster).
type Simulation = cluster.Config

// SimulationResult carries a run's measurements (per-server power and
// temperature, migrations, network shares, latency statistics).
type SimulationResult = cluster.Result

// PaperSimulation returns the paper's 18-server simulation configured at
// the given mean utilization.
func PaperSimulation(utilization float64) Simulation { return cluster.PaperConfig(utilization) }

// RunSimulation executes one simulation.
func RunSimulation(cfg Simulation) (*SimulationResult, error) { return cluster.Run(cfg) }

// RunSimulations executes independent simulations concurrently, results
// in input order.
func RunSimulations(cfgs []Simulation) ([]*SimulationResult, error) { return cluster.RunAll(cfgs) }

// TestbedResult is the outcome of an emulated 3-server testbed run.
type TestbedResult = testbed.RunResult

// TestbedDeficitRun reproduces the paper's energy-deficient experiment
// (Figs. 15–18).
func TestbedDeficitRun(seed uint64) (*TestbedResult, error) { return testbed.DeficitRun(seed) }

// TestbedPlentyRun reproduces the consolidation experiment (Fig. 19,
// Table III; ≈27.5 % savings).
func TestbedPlentyRun(seed uint64) (*TestbedResult, error) { return testbed.PlentyRun(seed) }

// PlanOptions bound the capacity planner's searches.
type PlanOptions = plan.Options

// MinSupply returns the leanest constant feed (within tol watts) that
// carries the paper fleet at the given utilization within the planner's
// shed bound.
func MinSupply(utilization, tol float64, opts PlanOptions) (float64, error) {
	return plan.MinSupply(utilization, tol, opts)
}

// MaxUtilization returns the highest load a constant feed sustains.
func MaxUtilization(supplyWatts, tol float64, opts PlanOptions) (float64, error) {
	return plan.MaxUtilization(supplyWatts, tol, opts)
}
