// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section V), one per artifact, per the per-experiment index
// in DESIGN.md. Each benchmark executes the same code path as
//
//	willow-exp -run <id> -quick
//
// so `go test -bench=.` both times the harness and re-verifies that every
// artifact still reproduces (a failing experiment fails its benchmark).
//
// The headline rows are printed once per benchmark via b.Logf under -v.
package willow_test

import (
	"context"
	"runtime"
	"testing"

	"willow/internal/exp"
	"willow/internal/telemetry"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(id, exp.Options{Quick: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			for _, n := range res.Notes {
				b.Logf("%s: %s", id, n)
			}
		}
	}
}

// Whole-suite benchmarks: the sequential walk versus the RunMany worker
// pool over every registered experiment. Their ratio is the headline
// speedup of the parallel engine; rendered output is byte-identical
// between the two (verified by TestRunManyMatchesSequential in
// internal/exp), so the comparison is pure scheduling.

func BenchmarkAllSequential(b *testing.B) {
	ids := exp.IDs()
	b.ReportMetric(float64(len(ids)), "experiments/op")
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			if _, err := exp.Run(id, exp.Options{Quick: true}); err != nil {
				b.Fatalf("%s: %v", id, err)
			}
		}
	}
}

// BenchmarkAllSequentialEvents is BenchmarkAllSequential with every
// simulation publishing its full telemetry stream into a no-op sink —
// the enabled-dispatch overhead. Both it and the nil-sink walk above
// are alloc-gated by `make bench-smoke` (internal/tools/benchguard), so
// neither the disabled nor the enabled path can quietly grow
// allocations.
func BenchmarkAllSequentialEvents(b *testing.B) {
	ids := exp.IDs()
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			if _, err := exp.Run(id, exp.Options{Quick: true, EventSink: telemetry.Discard}); err != nil {
				b.Fatalf("%s: %v", id, err)
			}
		}
	}
}

func BenchmarkAllParallel(b *testing.B) {
	ids := exp.IDs()
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunMany(context.Background(), ids, exp.Options{Quick: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllParallelReps8 times the replication fan-out: every
// experiment × 8 derived seeds with mean ± CI aggregation — the sweep
// shape the sensitivity studies use.
func BenchmarkAllParallelReps8(b *testing.B) {
	ids := exp.IDs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunMany(context.Background(), ids, exp.Options{Quick: true, Replications: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// Simulation-study artifacts (Section V-B).

func BenchmarkFig4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// Testbed artifacts (Section V-C).

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// Analytical properties (Section V-A).

func BenchmarkPropMessages(b *testing.B)    { benchExperiment(b, "prop-messages") }
func BenchmarkPropStability(b *testing.B)   { benchExperiment(b, "prop-stability") }
func BenchmarkFFDLR(b *testing.B)           { benchExperiment(b, "prop-binpack") }
func BenchmarkPropConvergence(b *testing.B) { benchExperiment(b, "prop-convergence") }
func BenchmarkPropScaling(b *testing.B)     { benchExperiment(b, "prop-scaling") }
func BenchmarkPropImbalance(b *testing.B)   { benchExperiment(b, "prop-imbalance") }

// Extensions: the paper's §VI future-work directions, implemented.

func BenchmarkExtQoS(b *testing.B)      { benchExperiment(b, "ext-qos") }
func BenchmarkExtCooling(b *testing.B)  { benchExperiment(b, "ext-cooling") }
func BenchmarkExtIPC(b *testing.B)      { benchExperiment(b, "ext-ipc") }
func BenchmarkExtDevice(b *testing.B)   { benchExperiment(b, "ext-device") }
func BenchmarkExtIdle(b *testing.B)     { benchExperiment(b, "ext-idle") }
func BenchmarkExtAsync(b *testing.B)    { benchExperiment(b, "ext-async") }
func BenchmarkExtLatency(b *testing.B)  { benchExperiment(b, "ext-latency") }
func BenchmarkExtTransfer(b *testing.B) { benchExperiment(b, "ext-transfer") }
func BenchmarkExtHetero(b *testing.B)   { benchExperiment(b, "ext-hetero") }
func BenchmarkExtVariance(b *testing.B) { benchExperiment(b, "ext-variance") }
func BenchmarkExtFailure(b *testing.B)  { benchExperiment(b, "ext-failure") }

// Ablations of DESIGN.md's called-out design choices.

func BenchmarkAblationMargin(b *testing.B)      { benchExperiment(b, "ablation-margin") }
func BenchmarkAblationLocality(b *testing.B)    { benchExperiment(b, "ablation-local") }
func BenchmarkAblationHierarchy(b *testing.B)   { benchExperiment(b, "ablation-hier") }
func BenchmarkAblationGranularity(b *testing.B) { benchExperiment(b, "ablation-granularity") }
func BenchmarkAblationSmoothing(b *testing.B)   { benchExperiment(b, "ablation-smoothing") }
func BenchmarkExtDemandside(b *testing.B)       { benchExperiment(b, "ext-demandside") }
func BenchmarkAblationForesight(b *testing.B)   { benchExperiment(b, "ablation-foresight") }
