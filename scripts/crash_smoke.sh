#!/bin/sh
# crash_smoke.sh — the crash-safety acceptance gate: build willowd and
# the willow-crash harness race-instrumented, then run seeded
# SIGKILL/restart cycles against a WAL-armed daemon and require the
# recovered run to be byte-identical to an uninterrupted one (final
# /v1/state, /v1/stats, snapshot journal, and the assembled telemetry
# event stream). Two seeds: one plain, one known to include a live
# chaos injection in the mutation mix, so chaos-mutation recovery is
# always exercised.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
cleanup() {
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "crash-smoke: building race-instrumented binaries"
go build -race -o "$tmp/willowd" ./cmd/willowd
go build -race -o "$tmp/willow-crash" ./cmd/willow-crash

for seed in 1 4; do
    echo "crash-smoke: seed $seed, 5 SIGKILL cycles"
    if ! "$tmp/willow-crash" -willowd "$tmp/willowd" -cycles 5 -seed "$seed" \
        -tick 5ms -timeout 4m > "$tmp/crash_$seed.out" 2>&1; then
        echo "crash-smoke: FAIL — recovery not byte-identical (seed $seed)" >&2
        cat "$tmp/crash_$seed.out" >&2
        exit 1
    fi
    grep "willow-crash OK" "$tmp/crash_$seed.out"
done

echo "crash-smoke: OK (kill -9 recovery byte-identical under -race, both seeds)"
