#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the live control plane with
# race-instrumented binaries: boot willowd on a random port, drive 1k
# requests through willow-load (plus a streaming telemetry subscriber),
# SIGTERM it, and assert a clean drain: exit 0, a non-empty parseable
# event stream, a final snapshot, and a successful restore that runs
# the snapshot to completion.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
willowd_pid=""
cleanup() {
    [ -n "$willowd_pid" ] && kill "$willowd_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building race-instrumented binaries"
go build -race -o "$tmp/willowd" ./cmd/willowd
go build -race -o "$tmp/willow-load" ./cmd/willow-load

"$tmp/willowd" \
    -addr 127.0.0.1:0 -port-file "$tmp/port" \
    -tick 2ms -ticks 5000 -lease 8 \
    -events "$tmp/events.jsonl" -snapshot "$tmp/snap.json" \
    > "$tmp/willowd.out" 2>&1 &
willowd_pid=$!

i=0
while [ ! -s "$tmp/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: FAIL — willowd never wrote its port file" >&2
        cat "$tmp/willowd.out" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(head -n 1 "$tmp/port")
echo "serve-smoke: willowd up on $addr"

"$tmp/willow-load" -addr "http://$addr" -n 1000 -clients 8 -seed 7 | tee "$tmp/load.out"

events_streamed=$(awk '/events streamed/ { print $3 }' "$tmp/load.out")
if [ -z "$events_streamed" ] || [ "$events_streamed" -eq 0 ]; then
    echo "serve-smoke: FAIL — load generator streamed no events" >&2
    exit 1
fi

kill -TERM "$willowd_pid"
if ! wait "$willowd_pid"; then
    echo "serve-smoke: FAIL — willowd exited non-zero on SIGTERM" >&2
    cat "$tmp/willowd.out" >&2
    exit 1
fi
willowd_pid=""

if [ ! -s "$tmp/events.jsonl" ]; then
    echo "serve-smoke: FAIL — event stream file is empty" >&2
    exit 1
fi
# Every line of the drained stream must be complete JSON (the SIGTERM
# truncation regression).
if ! awk 'NF > 0 && ($0 !~ /^\{/ || $0 !~ /\}$/) { exit 1 }' "$tmp/events.jsonl"; then
    echo "serve-smoke: FAIL — event stream has a truncated line" >&2
    exit 1
fi
if [ ! -s "$tmp/snap.json" ]; then
    echo "serve-smoke: FAIL — no final snapshot written" >&2
    exit 1
fi

echo "serve-smoke: restoring final snapshot"
"$tmp/willowd" -restore "$tmp/snap.json" -ff -addr "" | tee "$tmp/restore.out"
if ! grep -q "run complete" "$tmp/restore.out"; then
    echo "serve-smoke: FAIL — restored run did not complete" >&2
    exit 1
fi

events_total=$(wc -l < "$tmp/events.jsonl")
echo "serve-smoke: OK ($events_streamed events streamed to the load client, $events_total in the drained JSONL, snapshot restored)"
