#!/bin/sh
# failover_smoke.sh — the hot-standby acceptance gate: build willowd and
# the willow-failover harness race-instrumented, then require seeded
# kill/partition/promote cycles AND a scripted live migration to be
# byte-identical to an uninterrupted run (final /v1/state, /v1/stats,
# snapshot journal, and the event stream assembled from every
# incarnation's fragment). Two failover seeds: seed 1 is the plain mix;
# seed 2 runs partition-heavy (5 disruption rounds per cycle) so the
# SIGKILL lands the moment the follower finishes catching up through a
# flapping link.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
cleanup() {
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "failover-smoke: building race-instrumented binaries"
go build -race -o "$tmp/willowd" ./cmd/willowd
go build -race -o "$tmp/willow-failover" ./cmd/willow-failover

run_case() {
    name=$1
    shift
    echo "failover-smoke: $name"
    if ! "$tmp/willow-failover" -willowd "$tmp/willowd" -tick 5ms -timeout 4m \
        "$@" > "$tmp/$name.out" 2>&1; then
        echo "failover-smoke: FAIL — not byte-identical ($name)" >&2
        cat "$tmp/$name.out" >&2
        exit 1
    fi
    grep "willow-failover OK" "$tmp/$name.out"
}

run_case seed1 -cycles 3 -seed 1
run_case seed2-partition-heavy -cycles 3 -seed 2 -disruptions 5
run_case migrate -mode migrate -seed 3

echo "failover-smoke: OK (failover + migration byte-identical under -race)"
