#!/bin/sh
# obs_smoke.sh — end-to-end smoke of the observability layer: boot
# willowd (race-instrumented) with energy telemetry on, let it tick,
# then validate the /metrics exposition and the /v1/efficiency
# scoreboard with obscheck (strict conformance parse + consistency
# checks), scrape concurrently with a live event subscriber to shake
# races, SIGTERM, and assert a clean drain with a timed snapshot.
set -eu

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
willowd_pid=""
cleanup() {
    [ -n "$willowd_pid" ] && kill "$willowd_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "obs-smoke: building race-instrumented binaries"
go build -race -o "$tmp/willowd" ./cmd/willowd
go build -race -o "$tmp/obscheck" ./internal/tools/obscheck

"$tmp/willowd" \
    -addr 127.0.0.1:0 -port-file "$tmp/port" \
    -tick 2ms -ticks 5000 -energy -pprof \
    -snapshot "$tmp/snap.json" \
    > "$tmp/willowd.out" 2>&1 &
willowd_pid=$!

i=0
while [ ! -s "$tmp/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "obs-smoke: FAIL — willowd never wrote its port file" >&2
        cat "$tmp/willowd.out" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(head -n 1 "$tmp/port")
echo "obs-smoke: willowd up on $addr"

# Two concurrent obscheck runs: each polls /metrics while ticks land,
# so the scrape path races the tick loop under the -race build.
"$tmp/obscheck" -addr "http://$addr" -min-tick 150 -wait 60s &
check_pid=$!
"$tmp/obscheck" -addr "http://$addr" -min-tick 150 -wait 60s > "$tmp/check2.out" 2>&1 &
check2_pid=$!

if ! wait "$check_pid"; then
    echo "obs-smoke: FAIL — obscheck rejected the observability surface" >&2
    cat "$tmp/willowd.out" >&2
    exit 1
fi
if ! wait "$check2_pid"; then
    echo "obs-smoke: FAIL — concurrent obscheck failed" >&2
    cat "$tmp/check2.out" >&2
    exit 1
fi

kill -TERM "$willowd_pid"
if ! wait "$willowd_pid"; then
    echo "obs-smoke: FAIL — willowd exited non-zero on SIGTERM" >&2
    cat "$tmp/willowd.out" >&2
    exit 1
fi
willowd_pid=""

if [ ! -s "$tmp/snap.json" ]; then
    echo "obs-smoke: FAIL — no final snapshot written" >&2
    exit 1
fi

echo "obs-smoke: OK (metrics + efficiency validated under concurrent scrapes, snapshot written)"
