module willow

go 1.22
