// Hotzone: the thermal-adaptation scenario behind the paper's Figs. 5–7.
// Four of eighteen servers sit in a 40 °C hot aisle; Willow routes work
// toward the cool zone, keeps every server under its 70 °C limit, and
// puts the throttled hot servers to sleep whenever the load allows.
//
//	go run ./examples/hotzone
package main

import (
	"fmt"
	"log"

	"willow/internal/cluster"
)

func main() {
	fmt.Println("Willow hot-zone demo: servers 15-18 in a 40 °C ambient, sweep over load")
	fmt.Println()
	fmt.Printf("%-12s %-16s %-16s %-14s %-14s %s\n",
		"utilization", "cool power (W)", "hot power (W)", "cool T (°C)", "hot T (°C)", "hottest (°C)")

	for _, u := range []float64{0.2, 0.4, 0.6, 0.8} {
		cfg := cluster.PaperConfig(u)
		cfg.Warmup = 80
		cfg.Ticks = 300
		res, err := cluster.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var coolP, hotP, coolT, hotT float64
		for i := 0; i < 14; i++ {
			coolP += res.MeanPower[i] / 14
			coolT += res.MeanTemp[i] / 14
		}
		for i := 14; i < 18; i++ {
			hotP += res.MeanPower[i] / 4
			hotT += res.MeanTemp[i] / 4
		}
		fmt.Printf("%-12s %-16.1f %-16.1f %-14.1f %-14.1f %.1f\n",
			fmt.Sprintf("%.0f%%", u*100), coolP, hotP, coolT, hotT, res.MaxTemp)
	}

	fmt.Println()
	fmt.Println("The hot zone always draws less power (its thermal constraint presents")
	fmt.Println("less surplus), and no server ever crosses the 70 °C limit: the Eq. 3")
	fmt.Println("power cap throttles budgets before the temperature can get there.")
}
