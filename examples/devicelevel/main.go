// Devicelevel: the level-0 tier of Willow's hierarchy — fine-grained
// power and thermal control inside one server, the paper's §VI "more
// complete design". An intra-server PMU divides the server's budget over
// two CPUs, four DIMMs, a NIC and two disks; in a 45 °C hot aisle the
// disks' 60 °C limit is the tightest constraint and the PMU throttles
// them (the T-state mechanism) rather than let them cook.
//
//	go run ./examples/devicelevel
package main

import (
	"fmt"
	"log"

	"willow/internal/device"
)

func main() {
	pmu, err := device.NewPMU(device.DefaultServer(45), 4, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Willow device-level demo: one server in a 45 °C hot aisle")
	fmt.Printf("component complement: %d devices, %.0f W peak\n\n", len(pmu.Components), pmu.TotalPeak())

	fmt.Printf("%-8s %-10s %-12s %-12s %s\n", "window", "offered", "delivered", "power (W)", "hottest (headroom °C)")
	offered := 1.0 // flat out all day
	for w := 1; w <= 240; w++ {
		consumed, delivered := pmu.Step(offered, pmu.TotalPeak())
		if w%40 == 0 {
			hot := pmu.HottestComponent()
			fmt.Printf("%-8d %-10s %-12s %-12.1f %s (%.1f)\n",
				w, fmt.Sprintf("%.0f%%", offered*100), fmt.Sprintf("%.0f%%", delivered*100),
				consumed, hot.Spec.Name, hot.Thermal.Headroom())
		}
	}

	fmt.Println("\nper-component state after 240 windows at full offered load:")
	for _, c := range pmu.Components {
		fmt.Printf("  %-6s %-5s  %5.1f °C (limit %.0f)  throttle %.2f  drawing %5.1f W of %5.1f W wanted\n",
			c.Spec.Name, c.Spec.Kind, c.Thermal.T, c.Spec.Thermal.Limit, c.Throttle, c.Consumed, c.Demand)
	}
	fmt.Printf("\nwindows where any component throttled: %d\n", pmu.ThrottleEvents())
	fmt.Printf("server-level power cap reported upward (Eq. 3 per component): %.1f W\n", pmu.PowerLimit())
	fmt.Println("\nThe disks hit their 60 °C limit first; the PMU trims exactly their")
	fmt.Println("grant, the workload slows to the throttled component, and every other")
	fmt.Println("device keeps running flat out — fine-grained control, no panic stops.")
}
