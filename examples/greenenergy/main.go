// Greenenergy: the motivating scenario of Energy Adaptive Computing — a
// data center fed by a solar array whose output swings over the day,
// buffered by a battery UPS. Willow rides the supply curve: consolidating
// onto fewer servers as generation falls, waking capacity as it returns,
// and never flip-flopping workload.
//
//	go run ./examples/greenenergy
package main

import (
	"fmt"
	"log"

	"willow/internal/cluster"
	"willow/internal/power"
)

// upsSupply wraps a raw generation profile with a battery that smooths
// short dips — the reason supply-side control runs on a coarser time
// constant than demand-side control (paper, Section IV-C).
type upsSupply struct {
	raw    power.Supply
	ups    *power.UPS
	demand float64 // steady draw the battery sizes against
	cache  map[int]float64
}

func (u *upsSupply) At(t int) float64 {
	// Supply epochs arrive in order; memoize so repeated reads of the
	// same epoch (budget re-derivations) do not double-count the battery.
	if v, ok := u.cache[t]; ok {
		return v
	}
	v := u.ups.Deliver(u.raw.At(t), u.demand)
	u.cache[t] = v
	return v
}

func main() {
	const servers = 18
	rated := float64(servers) * 450

	// A day of generation: solar strong at midday, a thin grid backstop
	// (~20 % of rated) overnight.
	solar := power.Sine{Base: rated * 0.7, Amplitude: rated * 0.5, Period: 96}
	// The battery bridges dusk and dawn: 8 rated-hours of storage,
	// discharging at up to a quarter of the fleet's rated power.
	ups := power.NewUPS(rated*8, rated*0.25, 0.92)

	cfg := cluster.PaperConfig(0.35)
	cfg.HotServers = nil // uniform machine room; the story here is supply
	cfg.Supply = &upsSupply{raw: solar, ups: ups, demand: rated * 0.5, cache: map[int]float64{}}
	cfg.Warmup = 0
	cfg.Ticks = 96 * cfg.Core.Eta1 // one full day of supply epochs

	res, err := cluster.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Willow on solar power: one simulated day (96 supply epochs)")
	fmt.Printf("  servers: %d x 450 W, mean utilization 35%%\n", servers)
	fmt.Printf("  migrations: %d demand-driven, %d consolidation-driven\n",
		res.DemandMigrations, res.ConsolidationMigrations)
	asleepNow := 0
	for _, f := range res.AsleepFraction {
		if f > 0.25 {
			asleepNow++
		}
	}
	fmt.Printf("  servers that spent >25%% of the day asleep: %d\n", asleepNow)
	fmt.Printf("  battery state of charge at dusk: %.0f%%\n", ups.SoC()*100)
	fmt.Printf("  demand shed: %.0f watt-ticks (%.2f%% of energy served)\n",
		res.DroppedWattTicks, 100*res.DroppedWattTicks/res.TotalEnergy)
	fmt.Printf("  ping-pong migrations: %d\n", res.Stats.PingPongs)
	fmt.Println()
	fmt.Println("Falling generation tightens budgets top-down; Willow drains and sleeps")
	fmt.Println("servers to shed their idle draw, and the unidirectional rule keeps the")
	fmt.Println("fleet stable instead of chasing every swing of the supply curve.")
}
