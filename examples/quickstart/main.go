// Quickstart: build a small Willow-controlled cluster from scratch — a
// two-rack hierarchy of six servers — run it for a few hundred control
// windows, and inspect what the controller did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"willow/internal/core"
	"willow/internal/dist"
	"willow/internal/power"
	"willow/internal/telemetry"
	"willow/internal/thermal"
	"willow/internal/topo"
	"willow/internal/workload"
)

func main() {
	// A 3-level hierarchy: data center PMU -> 2 rack PMUs -> 3 servers
	// each.
	tree, err := topo.Build([]int{2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tree)

	// Every server: 200 W peak, 50 W idle, thermals that sustain roughly
	// the rated power at a 25 °C ambient.
	serverModel := power.ServerModel{Static: 50, Peak: 200}
	thermalModel := thermal.Model{C1: 0.015, C2: 0.05, Ambient: 25, Limit: 70}

	// Workload: each server hosts a few application VMs; server 0 is
	// deliberately overloaded relative to its circuit limit so the
	// controller has something to fix.
	specs := make([]core.ServerSpec, tree.NumServers())
	appID := 0
	for i := range specs {
		specs[i] = core.ServerSpec{Power: serverModel, Thermal: thermalModel}
		means := []float64{40, 30}
		if i == 0 {
			means = []float64{60, 50, 40} // demand 200 W against a 160 W circuit
			specs[i].CircuitLimit = 160
		}
		for _, m := range means {
			specs[i].Apps = append(specs[i].Apps, &workload.App{
				ID:    appID,
				Class: workload.Class{Name: "vm", Weight: m},
				Mean:  m,
			})
			appID++
		}
	}

	// The site feed comfortably covers all six servers.
	ctrl, err := core.New(tree, specs, power.Constant(1200), core.Defaults(), dist.NewSource(42))
	if err != nil {
		log.Fatal(err)
	}
	// Watch the controller's decisions through its telemetry stream;
	// here we only print migrations, but budget changes, throttles,
	// sleep/wake transitions and QoS violations ride the same wire.
	ctrl.Sink = telemetry.SinkFunc(func(ev telemetry.Event) {
		if ev.Kind != telemetry.KindMigration {
			return
		}
		kind := "non-local"
		if ev.Local {
			kind = "local"
		}
		fmt.Printf("tick %3d: app %d (%.0f W) migrates server-%d -> server-%d (%s, %s, %d switch hops)\n",
			ev.Tick, ev.App, ev.Watts, ev.From+1, ev.To+1, ev.Cause, kind, ev.Hops)
	})

	ctrl.Run(200)

	fmt.Println("\nafter 200 control windows:")
	for i, s := range ctrl.Servers {
		state := "awake"
		if s.Asleep() {
			state = "asleep"
		}
		fmt.Printf("  server-%d: budget %6.1f W, consuming %6.1f W at %4.1f °C, %d apps, %s\n",
			i+1, s.TP(), s.Consumed(), s.Thermal.T, s.Apps.Len(), state)
	}
	fmt.Printf("\nmigrations: %d (demand %d, consolidation %d), ping-pongs: %d, dropped: %.0f watt-ticks\n",
		len(ctrl.Stats.Migrations), ctrl.Stats.DemandMigrations,
		ctrl.Stats.ConsolidationMigrations, ctrl.Stats.PingPongs, ctrl.Stats.DroppedWattTicks)
}
