// Failover: crash a loaded server mid-run and watch Willow restart its
// workload elsewhere within a control window, then repair the machine
// and watch it rejoin the fleet. Failure handling is outside the paper's
// scope but inside every operator's.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"willow"
	"willow/internal/thermal"
	"willow/internal/workload"
)

func main() {
	tree, err := willow.BuildHierarchy([]int{2, 3})
	if err != nil {
		log.Fatal(err)
	}
	tm := thermal.Model{C1: 0.005, C2: 0.05, Ambient: 25, Limit: 70}
	specs := make([]willow.ServerSpec, tree.NumServers())
	appID := 0
	for i := range specs {
		specs[i] = willow.ServerSpec{
			Power:   willow.ServerPowerModel{Static: 50, Peak: 250},
			Thermal: tm,
		}
		for a := 0; a < 2; a++ {
			specs[i].Apps = append(specs[i].Apps, &workload.App{
				ID:    appID,
				Class: willow.AppClass{Name: "vm", Weight: 1},
				Mean:  45,
			})
			appID++
		}
	}

	ctrl, err := willow.NewController(tree, specs,
		willow.ConstantSupply(1500), willow.ControllerDefaults(), willow.NewRandom(7))
	if err != nil {
		log.Fatal(err)
	}
	ctrl.Sink = willow.EventSinkFunc(func(ev willow.Event) {
		switch ev.Kind {
		case willow.EventMigration:
			fmt.Printf("  tick %3d: app %d (%.0f W) %s: server-%d -> server-%d\n",
				ev.Tick, ev.App, ev.Watts, ev.Cause, ev.From+1, ev.To+1)
		case willow.EventFailure:
			fmt.Printf("  tick %3d: server-%d %s (%d VMs orphaned)\n",
				ev.Tick, ev.Server+1, ev.Cause, ev.Count)
		}
	})

	fmt.Println("running 6 servers, 12 VMs...")
	ctrl.Run(30)

	fmt.Println("\n*** server-2 crashes ***")
	ctrl.FailServer(1)
	fmt.Printf("orphaned VMs awaiting restart: %d\n", ctrl.Orphans())
	ctrl.Run(3)
	fmt.Printf("orphans left after 3 windows: %d\n", ctrl.Orphans())

	fmt.Println("\n*** server-2 repaired ***")
	ctrl.RepairServer(1)
	ctrl.Run(30)

	fmt.Println("\nfinal state:")
	for i, s := range ctrl.Servers {
		state := "awake"
		if s.Asleep() {
			state = "asleep"
		}
		fmt.Printf("  server-%d: %d VMs, %6.1f W, %s\n", i+1, s.Apps.Len(), s.Consumed(), state)
	}
	fmt.Printf("\nrestarts: %d, failures: %d, repairs: %d, ping-pongs: %d\n",
		ctrl.Stats.Restarts, ctrl.Stats.Failures, ctrl.Stats.Repairs, ctrl.Stats.PingPongs)
	fmt.Println("\nNote the repaired machine: it rejoined empty, and with the fleet")
	fmt.Println("comfortable, consolidation promptly put it to sleep — standby")
	fmt.Println("capacity that demand pressure (or another failure) would wake.")
}
