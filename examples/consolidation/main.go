// Consolidation: the paper's Table III experiment as a runnable demo.
// Three servers at 80/40/19 % utilization under an energy-plenty supply;
// Willow drains the under-utilized host C into A and B's surpluses and
// deactivates it, saving ≈27.5 % of the cluster's power.
//
//	go run ./examples/consolidation
package main

import (
	"fmt"
	"log"

	"willow/internal/power"
	"willow/internal/testbed"
)

func main() {
	r, err := testbed.PlentyRun(1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Willow consolidation demo (the paper's Table III scenario)")
	fmt.Printf("supply: energy-plenty trace, mean %.0f W\n\n", power.PlentyTrace().Mean())

	fmt.Printf("%-8s %-14s %-14s %s\n", "server", "initial util", "final util", "state")
	for i, name := range testbed.HostNames {
		state := "running"
		if r.AsleepAtEnd[i] {
			state = "suspended (S3)"
		}
		fmt.Printf("%-8s %-14s %-14s %s\n", name,
			fmt.Sprintf("%.0f%%", r.UtilInitial[i]*100),
			fmt.Sprintf("%.0f%%", r.UtilFinal[i]*100),
			state)
	}

	fmt.Printf("\nmigrations executed: %d (all consolidation-driven: %v)\n",
		len(r.Stats.Migrations), r.Stats.ConsolidationMigrations == len(r.Stats.Migrations))
	fmt.Printf("power without consolidation: %.1f W\n", r.PowerNoConsolidation)
	fmt.Printf("power after consolidation:   %.1f W\n", r.PowerFinal)
	fmt.Printf("savings: %.1f%%   (paper reports ≈27.5%%)\n", r.Savings()*100)
	fmt.Println()
	fmt.Println("Host C's standby draw is the prize: its applications fit inside A and")
	fmt.Println("B's P_min-guarded surpluses, so Willow migrates them out and suspends C.")
	fmt.Println("A and B stay within their power and thermal limits, so C never wakes.")
}
