// Package willow is a Go reproduction of "Willow: A Control System for
// Energy and Thermal Adaptive Computing" (Kant, Murugan & Du, IEEE IPDPS
// 2011).
//
// The implementation lives under internal/: the hierarchical controller
// (internal/core), its substrates (simulation kernel, thermal model,
// topology, power and workload models, bin packing, network simulation),
// the emulated three-server testbed, and the experiment harness that
// regenerates every table and figure of the paper's evaluation. See
// README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record.
//
// # Parallel execution and replications
//
// Each experiment is a closed deterministic simulation, so the harness
// (internal/exp) fans experiments — and, with Options.Replications,
// N independently seeded replications of each — across a bounded worker
// pool (internal/parallel). Replication seeds are derived by index from
// one SplitMix64 stream and results land in preallocated slots, so the
// rendered tables are byte-identical for any worker count; replicated
// runs aggregate to mean ± 95 % CI tables. See the "Parallel execution
// & replications" section of EXPERIMENTS.md for the full argument.
package willow

// Version identifies this reproduction's release.
const Version = "1.0.0"
