# Willow — reproduction of Kant, Murugan & Du, IPDPS 2011.
# Standard targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race ci cover bench experiments report fuzz examples clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full verification gate: build + vet, the plain test pass, and the race
# pass. The parallel experiment engine (exp.RunMany) makes the race run
# load-bearing — it exercises every experiment under concurrent
# execution, so `make ci` is the bar for any change touching the harness.
ci: build test race

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

# One benchmark per paper table/figure (quick mode); -v prints the
# headline notes.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate the full evaluation section at full fidelity.
experiments:
	$(GO) run ./cmd/willow-exp -all

# Regenerate the committed markdown report.
report:
	$(GO) run ./cmd/willow-exp -report docs/REPORT.md

# Short fuzz pass over the parser/packer/seed-derivation targets.
fuzz:
	$(GO) test -fuzz=FuzzFFDLR -fuzztime=10s ./internal/binpack
	$(GO) test -fuzz=FuzzMatchFFD -fuzztime=10s ./internal/binpack
	$(GO) test -fuzz=FuzzRead -fuzztime=10s ./internal/trace
	$(GO) test -fuzz=FuzzReplicationSeeds -fuzztime=10s ./internal/exp
	$(GO) test -fuzz=FuzzOptionsSeed -fuzztime=10s ./internal/exp

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotzone
	$(GO) run ./examples/greenenergy
	$(GO) run ./examples/consolidation
	$(GO) run ./examples/devicelevel
	$(GO) run ./examples/failover

clean:
	rm -f cover.out test_output.txt bench_output.txt
