# Willow — reproduction of Kant, Murugan & Du, IPDPS 2011.
# Standard targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race ci cover bench bench-smoke bench-baseline scale-smoke chaos-smoke sensor-smoke serve-smoke obs-smoke crash-smoke failover-smoke bakeoff-smoke experiments report fuzz examples clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full verification gate: build + vet, the plain test pass, the race
# pass, the allocation gate, and the chaos gate. The parallel experiment
# engine (exp.RunMany) makes the race run load-bearing — it exercises
# every experiment under concurrent execution — bench-smoke keeps the
# telemetry layer's zero-overhead-when-disabled promise honest, and
# chaos-smoke pins the failure-tolerance acceptance scenario,
# sensor-smoke the sensing-robustness one, and serve-smoke boots the
# live control-plane daemon under -race and hammers it with the load
# generator, so `make ci` is the bar for any change touching the
# harness. scale-smoke pins the fleet-scale hot path: sharded-tick
# determinism and the incremental-aggregation oracle on a 10k-server
# fleet, plus an allocation guard on the fleet tick benchmark.
# obs-smoke boots willowd with energy telemetry on and validates the
# /metrics exposition and /v1/efficiency scoreboard with the strict
# conformance checker. crash-smoke SIGKILLs a WAL-armed willowd at
# seeded points mid-run and requires recovery to be byte-identical to
# an uninterrupted run. failover-smoke promotes a hot standby through
# seeded kill/partition cycles and a scripted live migration, again
# requiring byte-identity with the unmoved run. bakeoff-smoke pins the
# controller-policy seam: willow byte-identical to the default
# controller, the bake-off table deterministic across worker counts
# with the robust policies holding the true-temperature cap, and the
# policy-dispatch benchmark through the allocation guard.
ci: build vet test race bench-smoke scale-smoke chaos-smoke sensor-smoke serve-smoke obs-smoke crash-smoke failover-smoke bakeoff-smoke

cover:
	$(GO) test -coverprofile=cover.out ./internal/...
	$(GO) tool cover -func=cover.out | tail -1

# One benchmark per paper table/figure (quick mode); -v prints the
# headline notes.
bench:
	$(GO) test -bench=. -benchmem .

# Allocation gate: one pass over the whole-suite benchmarks (nil sink
# and no-op telemetry sink), failing if allocs/op regress more than 10 %
# against the checked-in baseline. Alloc counts are machine-stable;
# timings are not compared.
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkAllSequential(Events)?$$' -benchtime 1x -benchmem . > bench_smoke.txt
	$(GO) test -run '^$$' -bench '^Benchmark(ServerTick|EventsFanout)$$' -benchtime 1x -benchmem ./internal/server >> bench_smoke.txt
	$(GO) run ./internal/tools/benchguard -input bench_smoke.txt -baseline docs/bench_baseline.txt

# Rewrite the baseline after an intentional allocation change.
bench-baseline:
	$(GO) test -run '^$$' -bench '^BenchmarkAllSequential(Events)?$$' -benchtime 1x -benchmem . > bench_smoke.txt
	$(GO) test -run '^$$' -bench '^Benchmark(ServerTick|EventsFanout)$$' -benchtime 1x -benchmem ./internal/server >> bench_smoke.txt
	$(GO) run ./internal/tools/benchguard -input bench_smoke.txt -baseline docs/bench_baseline.txt -update

# Fleet-scale gate: shard-count invariance (byte-identical streams for
# shards 1/2/4/8) and the incremental-vs-full aggregation oracle, both
# on 10k-server fleets, then a fleet tick benchmark pass through the
# allocation guard.
scale-smoke:
	$(GO) test -run 'TestShardInvariance|TestFullAggregationOracle' ./internal/cluster
	$(GO) test -run '^$$' -bench '^BenchmarkFleetTick$$/^10k$$' -benchtime 10x -benchmem ./internal/cluster > scale_smoke.txt
	$(GO) run ./internal/tools/benchguard -input scale_smoke.txt -baseline docs/bench_baseline.txt

# Chaos gate: the end-to-end failure-tolerance scenarios — a seeded
# mid-tree PMU kill/repair run inside its hard constraints, the chaos
# plan plumbing, and worker-invariant event streams under fault
# injection.
chaos-smoke:
	$(GO) test -run 'TestChaosSmoke|TestMidTreePMUKillSafety|TestChaosEventStreamsWorkerInvariant' -count=1 ./internal/cluster ./internal/core ./internal/exp

# Sensing gate: corrupted telemetry in, safe thermal decisions out —
# the robust estimator holds the true-temperature cap under heavy
# sensor chaos where naive control violates it, and arming the
# estimator over clean sensors changes nothing, bit for bit.
sensor-smoke:
	$(GO) test -run 'TestSensorSmoke|TestSensingIdentityAtClusterScale|TestSensorChaosTrueTemperatureCap|TestSensingIdentityWhenDisabled' -count=1 ./internal/cluster ./internal/core

# Live daemon gate: the concurrency, shutdown, and determinism pins
# under -race, then a real willowd booted on a random port, hammered
# with 1k willow-load requests, drained with SIGTERM, and resumed from
# its final snapshot — all with race-instrumented binaries.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestFastForwardMatchesOfflineRun|TestSnapshotRestoreRoundTrip|TestConcurrentAPIHammer|TestGracefulShutdownSnapshotRoundTrip|TestSlowSubscriberNeverStallsTicks' ./internal/server
	./scripts/serve_smoke.sh

# Observability gate: the energy-accounting determinism pins
# (shard-count invariance of the full energy report, snapshot/restore
# byte-identity), the exposition conformance round-trip, and a live
# willowd scraped end to end — /metrics parsed under the strict
# internal/obs parser and /v1/efficiency cross-checked for internal
# consistency, with race-instrumented binaries.
obs-smoke:
	$(GO) test -count=1 -run 'TestEnergyShardInvariance|TestExpositionRoundTrip|TestMetricsEndpoint|TestEfficiencyEndpoint|TestEnergySnapshotRestoreIdentity' ./internal/cluster ./internal/obs ./internal/server
	./scripts/obs_smoke.sh

# Crash-safety gate: the WAL framing, torn-tail, and recovery pins
# under -race (corrupt-input tables included), then the real harness —
# a race-instrumented willowd SIGKILLed five times mid-run at seeded
# points and restarted, with the final state, stats, journal, and
# assembled event stream required byte-identical to an uninterrupted
# replay of the same mutation history.
crash-smoke:
	$(GO) test -race -count=1 -run 'TestWAL|TestRecover|TestAdmission|TestCorrupt' ./internal/server
	./scripts/crash_smoke.sh

# Hot-standby gate: the replication, promotion, drain-ordering, and
# Retry-After contract pins under -race, then the real harness — a
# race-instrumented primary killed at seeded ticks across repeated
# promote cycles while the replication link is partitioned and stalled,
# plus a scripted live migration; both must reproduce the uninterrupted
# run byte for byte.
failover-smoke:
	$(GO) test -race -count=1 -run 'TestReplicat|TestFollower|TestPromote|TestMigration|TestDrain|TestRetryAfter|TestEventsFrom|TestEventRing' ./internal/server
	./scripts/failover_smoke.sh

# Policy gate: the willow byte-identity pin and shard invariance of the
# stateful policies at 1k-server scale, the bake-off smoke (robust
# policies must hold the true 70 °C cap under machine+sensor chaos) and
# its worker-count determinism pin, then the policy-dispatch benchmark
# through the allocation guard — the willow row must hold the
# nil-policy BenchmarkFleetTick/1k profile.
bakeoff-smoke:
	$(GO) test -count=1 -run 'TestPolicyWillowIdentity|TestPolicyShardInvariance' ./internal/cluster
	$(GO) test -count=1 -run 'TestBakeoffSmoke|TestBakeoffDeterminism' ./internal/exp
	$(GO) test -run '^$$' -bench '^BenchmarkFleetTickPolicy$$' -benchtime 10x -benchmem ./internal/cluster > bakeoff_smoke.txt
	$(GO) run ./internal/tools/benchguard -input bakeoff_smoke.txt -baseline docs/bench_baseline.txt

# Regenerate the full evaluation section at full fidelity.
experiments:
	$(GO) run ./cmd/willow-exp -all

# Regenerate the committed markdown report.
report:
	$(GO) run ./cmd/willow-exp -report docs/REPORT.md

# Short fuzz pass over the parser/packer/seed-derivation targets.
fuzz:
	$(GO) test -fuzz=FuzzFFDLR -fuzztime=10s ./internal/binpack
	$(GO) test -fuzz=FuzzMatchFFD -fuzztime=10s ./internal/binpack
	$(GO) test -fuzz=FuzzRead -fuzztime=10s ./internal/trace
	$(GO) test -fuzz=FuzzReplicationSeeds -fuzztime=10s ./internal/exp
	$(GO) test -fuzz=FuzzOptionsSeed -fuzztime=10s ./internal/exp
	$(GO) test -fuzz=FuzzEventRoundTrip -fuzztime=10s ./internal/telemetry
	$(GO) test -fuzz=FuzzChaosSchedule -fuzztime=10s ./internal/chaos
	$(GO) test -fuzz=FuzzSensorSpec -fuzztime=10s ./internal/sensor
	$(GO) test -fuzz=FuzzPolicySpec -fuzztime=10s ./internal/policy
	$(GO) test -fuzz=FuzzIncrementalAggregation -fuzztime=10s ./internal/core

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hotzone
	$(GO) run ./examples/greenenergy
	$(GO) run ./examples/consolidation
	$(GO) run ./examples/devicelevel
	$(GO) run ./examples/failover

clean:
	rm -f cover.out test_output.txt bench_output.txt bench_smoke.txt scale_smoke.txt bakeoff_smoke.txt
