package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(42)
	b := NewSource(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a := NewSource(1)
	b := NewSource(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("sources with different seeds produced %d identical draws out of 1000", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewSource(7)
	child := parent.Fork()
	// The child must not replay the parent's stream.
	p := make([]uint64, 100)
	c := make([]uint64, 100)
	for i := range p {
		p[i] = parent.Uint64()
		c[i] = child.Uint64()
	}
	same := 0
	for i := range p {
		if p[i] == c[i] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("forked stream matched parent on %d/100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := NewSource(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := NewSource(5)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 10000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewSource(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := NewSource(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn bucket %d: count %d deviates from expected %v", i, c, want)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := NewSource(8)
	const n = 200000
	for _, mean := range []float64{0.5, 1, 10} {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += s.Exponential(mean)
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.02 {
			t.Errorf("Exponential(%v) sample mean = %v", mean, got)
		}
	}
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exponential(-1) did not panic")
		}
	}()
	NewSource(1).Exponential(-1)
}

func TestNormalMoments(t *testing.T) {
	s := NewSource(9)
	const n = 200000
	mean, stddev := 5.0, 2.0
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(mean, stddev)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	sd := math.Sqrt(sumSq/n - m*m)
	if math.Abs(m-mean) > 0.05 {
		t.Errorf("Normal mean = %v, want %v", m, mean)
	}
	if math.Abs(sd-stddev) > 0.05 {
		t.Errorf("Normal stddev = %v, want %v", sd, stddev)
	}
}

func TestPoissonMoments(t *testing.T) {
	s := NewSource(10)
	const n = 100000
	// Cover both the Knuth branch (λ<=30) and the PTRS branch (λ>30).
	for _, lambda := range []float64{0.5, 3, 12, 30, 45, 200} {
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(lambda))
			sum += v
			sumSq += v * v
		}
		m := sum / n
		varr := sumSq/n - m*m
		if math.Abs(m-lambda)/lambda > 0.03 {
			t.Errorf("Poisson(%v) sample mean = %v", lambda, m)
		}
		// Poisson variance equals the mean.
		if math.Abs(varr-lambda)/lambda > 0.06 {
			t.Errorf("Poisson(%v) sample variance = %v", lambda, varr)
		}
	}
}

func TestPoissonZeroLambda(t *testing.T) {
	s := NewSource(11)
	for i := 0; i < 100; i++ {
		if v := s.Poisson(0); v != 0 {
			t.Fatalf("Poisson(0) = %d, want 0", v)
		}
	}
}

func TestPoissonPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Poisson(-1) did not panic")
		}
	}()
	NewSource(1).Poisson(-1)
}

func TestPoissonScaledMean(t *testing.T) {
	s := NewSource(12)
	const n = 100000
	target, lambda := 37.5, 20.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.PoissonScaled(target, lambda)
	}
	m := sum / n
	if math.Abs(m-target)/target > 0.02 {
		t.Errorf("PoissonScaled mean = %v, want ~%v", m, target)
	}
}

func TestPoissonScaledNonPositiveTarget(t *testing.T) {
	s := NewSource(13)
	if v := s.PoissonScaled(0, 10); v != 0 {
		t.Errorf("PoissonScaled(0, 10) = %v, want 0", v)
	}
	if v := s.PoissonScaled(-5, 10); v != 0 {
		t.Errorf("PoissonScaled(-5, 10) = %v, want 0", v)
	}
}

// Property: Poisson draws are always non-negative, for any seed and a range
// of lambda values.
func TestPoissonNonNegativeQuick(t *testing.T) {
	f := func(seed uint64, raw uint8) bool {
		lambda := float64(raw) // 0..255, spans both algorithm branches
		s := NewSource(seed)
		for i := 0; i < 20; i++ {
			if s.Poisson(lambda) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Uniform(lo, hi) stays within [lo, hi) for arbitrary bounds.
func TestUniformRangeQuick(t *testing.T) {
	f := func(seed uint64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true // skip degenerate float inputs
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi-lo <= 0 || math.IsInf(hi-lo, 0) {
			return true
		}
		s := NewSource(seed)
		for i := 0; i < 10; i++ {
			v := s.Uniform(lo, hi)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkPoissonSmallLambda(b *testing.B) {
	s := NewSource(1)
	for i := 0; i < b.N; i++ {
		s.Poisson(10)
	}
}

func BenchmarkPoissonLargeLambda(b *testing.B) {
	s := NewSource(1)
	for i := 0; i < b.N; i++ {
		s.Poisson(500)
	}
}
