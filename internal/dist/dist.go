// Package dist provides deterministic pseudo-random number generation and
// the random variates used throughout the Willow simulator.
//
// Every stochastic component of the simulation (per-server demand, supply
// jitter, workload placement) draws from its own Source so that runs are
// reproducible and components are statistically independent: giving each
// consumer a distinct stream means adding a new consumer never perturbs the
// draws seen by existing ones.
//
// The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): tiny,
// fast, passes BigCrush when used as a 64-bit generator, and — unlike
// math/rand's global state — trivially forkable into independent streams.
package dist

import "math"

// Source is a deterministic stream of pseudo-random numbers.
// The zero value is a valid stream seeded with 0.
type Source struct {
	state uint64
}

// NewSource returns a Source seeded with seed.
func NewSource(seed uint64) *Source {
	return &Source{state: seed}
}

// Fork derives a new, statistically independent Source from s.
// The child's seed is drawn from s, so forking advances s by one step.
func (s *Source) Fork() *Source {
	return &Source{state: s.Uint64()}
}

// Uint64 returns the next 64 random bits (SplitMix64 step).
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high bits -> uniform dyadic rational in [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection method would remove modulo bias
	// entirely; for simulation purposes the bias of a plain modulo over a
	// 64-bit stream (< 2^-50 for any n we use) is negligible, but the
	// multiply method is just as cheap, so use it.
	v := s.Uint64()
	hi, _ := mul64(v, uint64(n))
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Uniform returns a uniform float64 in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Exponential returns an exponentially distributed variate with the given
// mean. It panics if mean <= 0.
func (s *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("dist: Exponential requires mean > 0")
	}
	// Inverse CDF. 1-U in (0,1] avoids log(0).
	return -mean * math.Log(1-s.Float64())
}

// Normal returns a normally distributed variate with the given mean and
// standard deviation, via the Marsaglia polar method.
func (s *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
	}
}

// Poisson returns a Poisson-distributed variate with the given mean λ.
// The paper models per-node power demand as Poisson (Section V-B1).
//
// Knuth's multiplication method is used for λ ≤ 30; for larger λ the
// PTRS transformed-rejection method of Hörmann (1993) keeps the cost O(1).
// It panics if lambda < 0.
func (s *Source) Poisson(lambda float64) int {
	switch {
	case lambda < 0:
		panic("dist: Poisson requires lambda >= 0")
	case lambda == 0:
		return 0
	case lambda <= 30:
		return s.poissonKnuth(lambda)
	default:
		return s.poissonPTRS(lambda)
	}
}

func (s *Source) poissonKnuth(lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// poissonPTRS implements Hörmann's PTRS algorithm for λ > ~10.
func (s *Source) poissonPTRS(lambda float64) int {
	b := 0.931 + 2.53*math.Sqrt(lambda)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logLambda := math.Log(lambda)
	for {
		u := s.Float64() - 0.5
		v := s.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + lambda + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logLambda-lambda-logGamma(k+1) {
			return int(k)
		}
	}
}

// logGamma is a thin wrapper over math.Lgamma that drops the sign
// (the argument is always positive here).
func logGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// PoissonScaled returns a Poisson variate with mean lambda, scaled so that
// its expectation is target: it draws Poisson(lambda) and multiplies by
// target/lambda. This yields a discrete fluctuation around target whose
// coefficient of variation is 1/sqrt(lambda), which is how the simulator
// turns a mean power demand into a fluctuating one with controllable noise.
func (s *Source) PoissonScaled(target, lambda float64) float64 {
	if target <= 0 {
		return 0
	}
	return target * float64(s.Poisson(lambda)) / lambda
}
