package device

import (
	"math"
	"testing"
	"testing/quick"

	"willow/internal/thermal"
)

func benignSpec(name string, static, dynamic float64) Spec {
	return Spec{
		Kind:        CPU,
		Name:        name,
		Static:      static,
		Dynamic:     dynamic,
		Thermal:     thermal.Model{C1: 0.001, C2: 0.1, Ambient: 25, Limit: 90},
		ShareOfLoad: 1,
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{CPU: "cpu", DIMM: "dimm", NIC: "nic", Disk: "disk"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%v.String() = %q", int(k), k.String())
		}
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Errorf("unknown kind: %q", got)
	}
}

func TestSpecValidate(t *testing.T) {
	good := benignSpec("a", 5, 20)
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	bad := good
	bad.Static = -1
	if bad.Validate() == nil {
		t.Error("negative static accepted")
	}
	bad = good
	bad.ShareOfLoad = 0
	if bad.Validate() == nil {
		t.Error("zero share accepted")
	}
	bad = good
	bad.Thermal.C1 = 0
	if bad.Validate() == nil {
		t.Error("bad thermal accepted")
	}
	if got := good.Peak(); got != 25 {
		t.Errorf("Peak = %v, want 25", got)
	}
}

func TestNewPMUValidation(t *testing.T) {
	if _, err := NewPMU(nil, 4, 1); err == nil {
		t.Error("empty complement accepted")
	}
	if _, err := NewPMU([]Spec{benignSpec("a", 1, 1)}, 0, 1); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewPMU([]Spec{{Kind: CPU, ShareOfLoad: 2}}, 4, 1); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestDefaultServerComplement(t *testing.T) {
	specs := DefaultServer(25)
	p, err := NewPMU(specs, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two CPUs dominate the dynamic range, per the paper's bottleneck
	// assumption.
	var cpuDyn, totalDyn float64
	for _, s := range specs {
		totalDyn += s.Dynamic
		if s.Kind == CPU {
			cpuDyn += s.Dynamic
		}
	}
	if cpuDyn/totalDyn < 0.5 {
		t.Errorf("CPU dynamic share %v, want dominant", cpuDyn/totalDyn)
	}
	// Peak complement draw is in the neighbourhood of the simulation's
	// 450 W server.
	if peak := p.TotalPeak(); peak < 350 || peak > 500 {
		t.Errorf("complement peak %v W, want a ~450 W server", peak)
	}
}

func TestStepFullBudgetNoThrottle(t *testing.T) {
	p, err := NewPMU(DefaultServer(25), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	consumed, delivered := p.Step(0.6, p.TotalPeak())
	if delivered != 0.6 {
		t.Errorf("delivered %v, want full 0.6", delivered)
	}
	if consumed <= 0 || consumed > p.TotalPeak() {
		t.Errorf("consumed %v out of range", consumed)
	}
	if p.ThrottleEvents() != 0 {
		t.Error("throttled despite full budget")
	}
	for _, c := range p.Components {
		if c.Throttle != 1 {
			t.Errorf("%s throttled to %v with full budget", c.Spec.Name, c.Throttle)
		}
	}
}

func TestStepScarceBudgetThrottles(t *testing.T) {
	p, err := NewPMU(DefaultServer(25), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Demand at 100 %: ~peak. Grant only 60 % of it.
	budget := p.TotalPeak() * 0.6
	consumed, delivered := p.Step(1.0, budget)
	if consumed > budget+1e-6 {
		t.Errorf("consumed %v over budget %v", consumed, budget)
	}
	if delivered >= 1.0 {
		t.Error("throttling did not reduce delivered utilization")
	}
	if p.ThrottleEvents() != 1 {
		t.Errorf("throttle events = %d, want 1", p.ThrottleEvents())
	}
}

func TestStepUtilizationClamped(t *testing.T) {
	p, err := NewPMU([]Spec{benignSpec("a", 5, 20)}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, d := p.Step(2.0, 100); d != 1 {
		t.Errorf("delivered %v, want clamp to 1", d)
	}
	if c, _ := p.Step(-1, 100); math.Abs(c-5) > 1e-9 {
		t.Errorf("idle consumed %v, want static 5", c)
	}
}

func TestStepDeepScarcityScalesFloors(t *testing.T) {
	p, err := NewPMU([]Spec{benignSpec("a", 10, 10), benignSpec("b", 30, 10)}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	consumed, _ := p.Step(0.5, 20) // floors are 40, budget 20
	if consumed > 20+1e-6 {
		t.Errorf("consumed %v over a 20 W budget", consumed)
	}
	// Floor-proportional: a gets 5, b gets 15.
	if got := p.Components[0].Budget; math.Abs(got-5) > 1e-9 {
		t.Errorf("component a grant %v, want 5", got)
	}
	if got := p.Components[1].Budget; math.Abs(got-15) > 1e-9 {
		t.Errorf("component b grant %v, want 15", got)
	}
}

// TestThermalThrottleProtectsDisk: the disk's 60 °C limit is the tightest
// in the default complement; sustained full load must never push it over.
func TestThermalThrottleProtectsDisk(t *testing.T) {
	p, err := NewPMU(DefaultServer(40), 4, 1) // hot aisle
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p.Step(1.0, p.TotalPeak())
		for _, c := range p.Components {
			if c.Thermal.T > c.Spec.Thermal.Limit+1e-6 {
				t.Fatalf("window %d: %s at %.2f °C over its %v °C limit",
					i, c.Spec.Name, c.Thermal.T, c.Spec.Thermal.Limit)
			}
		}
	}
}

func TestHottestComponent(t *testing.T) {
	p, err := NewPMU(DefaultServer(25), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.Step(1.0, p.TotalPeak())
	}
	hot := p.HottestComponent()
	if hot == nil {
		t.Fatal("no hottest component")
	}
	for _, c := range p.Components {
		if c.Thermal.Headroom() < hot.Thermal.Headroom() {
			t.Errorf("%s has less headroom than reported hottest %s", c.Spec.Name, hot.Spec.Name)
		}
	}
}

func TestPowerLimitReflectsHeat(t *testing.T) {
	// In a 45 °C hot aisle the disks' 60 °C limit binds, so the reported
	// cap must fall as the complement heats. (At 25 °C ambient nothing
	// binds and the cap stays at the rated peak — by design.)
	p, err := NewPMU(DefaultServer(45), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cold := p.PowerLimit()
	for i := 0; i < 200; i++ {
		p.Step(1.0, p.TotalPeak())
	}
	warm := p.PowerLimit()
	if warm >= cold {
		t.Errorf("power limit did not fall with heat: cold %v, warm %v", cold, warm)
	}
	if warm <= 0 {
		t.Errorf("warm power limit %v, want positive", warm)
	}
}

// Property: consumption never exceeds the budget (within tolerance) nor
// the complement's peak, for arbitrary utilizations and budgets.
func TestStepBudgetInvariantQuick(t *testing.T) {
	f := func(rawU, rawB uint16) bool {
		p, err := NewPMU(DefaultServer(25), 4, 1)
		if err != nil {
			return false
		}
		u := float64(rawU%101) / 100
		budget := float64(rawB % 600)
		for i := 0; i < 5; i++ {
			consumed, delivered := p.Step(u, budget)
			if consumed > budget+1e-6 && consumed > p.TotalPeak()*0+budget+1e-6 {
				return false
			}
			if consumed < 0 || delivered < 0 || delivered > u+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPMUStep(b *testing.B) {
	p, err := NewPMU(DefaultServer(25), 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		p.Step(float64(i%100)/100, 400)
	}
}
