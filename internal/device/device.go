// Package device implements the level-0 tier of Willow's hierarchy: the
// components inside one server — CPU packages, memory DIMMs, NICs,
// disks — each with its own power curve, thermal behaviour and throttle
// mechanism.
//
// The paper's architecture places these at level 0 ("individual devices
// (CPU cores, memory DIMMs, NICs, etc.)", Section IV-A) and its future
// work calls for exactly this: "A more complete design must be able to
// measure power consumption and temperature of every component in the
// server including memory, NIC, hard disks etc. and make fine grained
// control decisions" (Section VI). This package provides that tier: an
// intra-server PMU that divides the server's power budget among its
// components in proportion to their demands — the same proportional rule
// used at every other level — and throttles components that would exceed
// their budget or thermal limit, mirroring CPU T-states ("introduction
// of dead cycles periodically in order to let the cores cool",
// Section III).
package device

import (
	"fmt"

	"willow/internal/thermal"
)

// Kind labels a component type.
type Kind int

// Component kinds the paper names explicitly.
const (
	CPU Kind = iota
	DIMM
	NIC
	Disk
)

func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case DIMM:
		return "dimm"
	case NIC:
		return "nic"
	case Disk:
		return "disk"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one component's electrical and thermal identity.
type Spec struct {
	Kind    Kind
	Name    string
	Static  float64 // watts drawn regardless of activity
	Dynamic float64 // additional watts at 100 % activity
	Thermal thermal.Model
	// ShareOfLoad maps server-level utilization to this component's
	// activity in [0, 1]. CPUs track utilization 1:1; a NIC might see
	// 0.6 of it, a disk 0.3. Must be in (0, 1].
	ShareOfLoad float64
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Static < 0 || s.Dynamic < 0 {
		return fmt.Errorf("device %s: negative power coefficients", s.Name)
	}
	if s.ShareOfLoad <= 0 || s.ShareOfLoad > 1 {
		return fmt.Errorf("device %s: share of load %v outside (0, 1]", s.Name, s.ShareOfLoad)
	}
	return s.Thermal.Validate()
}

// Peak returns the component's maximum draw.
func (s Spec) Peak() float64 { return s.Static + s.Dynamic }

// Component is the runtime state of one device.
type Component struct {
	Spec    Spec
	Thermal *thermal.State
	// Throttle is the fraction of offered activity currently admitted
	// (1 = full speed, 0 = fully throttled) — the T-state analogue.
	Throttle float64
	// Demand is the power the component wants this window given the
	// server's offered load.
	Demand float64
	// Budget is the power granted by the intra-server PMU.
	Budget float64
	// Consumed is the power actually drawn after throttling.
	Consumed float64
}

// newComponent returns a component at ambient temperature, unthrottled.
func newComponent(spec Spec) *Component {
	return &Component{
		Spec:     spec,
		Thermal:  thermal.NewState(spec.Thermal),
		Throttle: 1,
	}
}

// demandAt returns the component's power demand when the server runs at
// utilization u, before any throttling.
func (c *Component) demandAt(u float64) float64 {
	activity := u * c.Spec.ShareOfLoad
	if activity > 1 {
		activity = 1
	}
	return c.Spec.Static + c.Spec.Dynamic*activity
}

// PMU is the intra-server power management unit: the level-0 instance of
// Willow's proportional budget division with hard thermal constraints.
type PMU struct {
	Components []*Component
	// Window is the Eq. 3 adjustment window for component thermal caps.
	Window float64
	// Dt is the thermal integration step per control window.
	Dt float64
	// throttleEvents counts windows in which any component had to
	// throttle below full speed.
	throttleEvents int
}

// NewPMU builds an intra-server PMU over the given component specs.
func NewPMU(specs []Spec, window, dt float64) (*PMU, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("device: a server needs at least one component")
	}
	if window <= 0 || dt <= 0 {
		return nil, fmt.Errorf("device: window %v and dt %v must be positive", window, dt)
	}
	p := &PMU{Window: window, Dt: dt}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		p.Components = append(p.Components, newComponent(s))
	}
	return p, nil
}

// DefaultServer returns a plausible component complement for one of the
// simulation's 450 W servers: two CPU packages, four DIMMs, a NIC and
// two disks, with the CPU dominating the dynamic range — matching the
// paper's observation that CPU (or sometimes the network adapter) is the
// first bottleneck.
func DefaultServer(ambient float64) []Spec {
	cpuThermal := thermal.Model{C1: 0.02, C2: 0.08, Ambient: ambient, Limit: 85}
	dimmThermal := thermal.Model{C1: 0.05, C2: 0.06, Ambient: ambient, Limit: 95}
	nicThermal := thermal.Model{C1: 0.06, C2: 0.05, Ambient: ambient, Limit: 90}
	diskThermal := thermal.Model{C1: 0.08, C2: 0.04, Ambient: ambient, Limit: 60}
	return []Spec{
		{Kind: CPU, Name: "cpu0", Static: 25, Dynamic: 110, Thermal: cpuThermal, ShareOfLoad: 1},
		{Kind: CPU, Name: "cpu1", Static: 25, Dynamic: 110, Thermal: cpuThermal, ShareOfLoad: 1},
		{Kind: DIMM, Name: "dimm0", Static: 8, Dynamic: 12, Thermal: dimmThermal, ShareOfLoad: 0.9},
		{Kind: DIMM, Name: "dimm1", Static: 8, Dynamic: 12, Thermal: dimmThermal, ShareOfLoad: 0.9},
		{Kind: DIMM, Name: "dimm2", Static: 8, Dynamic: 12, Thermal: dimmThermal, ShareOfLoad: 0.9},
		{Kind: DIMM, Name: "dimm3", Static: 8, Dynamic: 12, Thermal: dimmThermal, ShareOfLoad: 0.9},
		{Kind: NIC, Name: "nic0", Static: 6, Dynamic: 14, Thermal: nicThermal, ShareOfLoad: 0.6},
		{Kind: Disk, Name: "disk0", Static: 5, Dynamic: 7, Thermal: diskThermal, ShareOfLoad: 0.5},
		{Kind: Disk, Name: "disk1", Static: 5, Dynamic: 7, Thermal: diskThermal, ShareOfLoad: 0.5},
	}
}

// TotalPeak returns the complement's summed maximum draw.
func (p *PMU) TotalPeak() float64 {
	var sum float64
	for _, c := range p.Components {
		sum += c.Spec.Peak()
	}
	return sum
}

// Step runs one control window: components derive demand from the
// server's offered utilization, the budget divides proportionally with
// per-component thermal caps as hard constraints, components throttle to
// their grants, and temperatures integrate. It returns the power
// actually consumed and the utilization actually delivered (≤ offered —
// throttled components slow the whole server down to the most-throttled
// critical component).
func (p *PMU) Step(offeredUtil, budget float64) (consumed, deliveredUtil float64) {
	if offeredUtil < 0 {
		offeredUtil = 0
	} else if offeredUtil > 1 {
		offeredUtil = 1
	}

	// Demands and thermal caps.
	demands := make([]float64, len(p.Components))
	caps := make([]float64, len(p.Components))
	var floorSum float64
	for i, c := range p.Components {
		c.Demand = c.demandAt(offeredUtil)
		demands[i] = c.Demand
		cap := c.Thermal.Model.PowerLimit(c.Thermal.T, p.Window)
		if peak := c.Spec.Peak(); peak < cap {
			cap = peak
		}
		caps[i] = cap
		floorSum += c.Spec.Static
	}

	// Proportional division with static floors first, then dynamic
	// demand — the same two-round rule the upper levels use.
	grants := make([]float64, len(p.Components))
	remaining := budget
	if floorSum >= budget {
		// Even idle power exceeds the budget: scale floors down
		// proportionally. (The server-level controller should have
		// drained such a server already; this is defensive.)
		for i, c := range p.Components {
			if floorSum > 0 {
				grants[i] = budget * c.Spec.Static / floorSum
			}
		}
		remaining = 0
	} else {
		var dynSum float64
		dynWants := make([]float64, len(p.Components))
		for i, c := range p.Components {
			grants[i] = c.Spec.Static
			w := demands[i]
			if w > caps[i] {
				w = caps[i]
			}
			w -= c.Spec.Static
			if w < 0 {
				w = 0
			}
			dynWants[i] = w
			dynSum += w
		}
		remaining -= floorSum
		if dynSum <= remaining {
			for i := range grants {
				grants[i] += dynWants[i]
			}
		} else if dynSum > 0 {
			for i := range grants {
				grants[i] += remaining * dynWants[i] / dynSum
			}
		}
	}

	// Throttle each component to its grant; the server's delivered
	// utilization is gated by the most-throttled component (a stalled
	// CPU or saturated NIC stalls the workload).
	deliveredUtil = offeredUtil
	throttled := false
	consumed = 0
	for i, c := range p.Components {
		c.Budget = grants[i]
		dyn := c.Demand - c.Spec.Static
		grantDyn := grants[i] - c.Spec.Static
		if grantDyn < 0 {
			grantDyn = 0
		}
		if dyn <= grantDyn+1e-9 || dyn <= 0 {
			c.Throttle = 1
			c.Consumed = c.Demand
		} else {
			c.Throttle = grantDyn / dyn
			c.Consumed = c.Spec.Static + grantDyn
			throttled = true
			if u := offeredUtil * c.Throttle; u < deliveredUtil {
				deliveredUtil = u
			}
		}
		if c.Consumed > grants[i]+1e-9 && floorSum >= budget {
			// Deep-scarcity branch: even static was scaled; draw the
			// grant only.
			c.Consumed = grants[i]
		}
		c.Thermal.Advance(c.Consumed, p.Dt)
		consumed += c.Consumed
	}
	if throttled {
		p.throttleEvents++
	}
	return consumed, deliveredUtil
}

// ThrottleEvents reports how many windows saw any component throttle.
func (p *PMU) ThrottleEvents() int { return p.throttleEvents }

// HottestComponent returns the component closest to its thermal limit
// (smallest headroom).
func (p *PMU) HottestComponent() *Component {
	var hot *Component
	for _, c := range p.Components {
		if hot == nil || c.Thermal.Headroom() < hot.Thermal.Headroom() {
			hot = c
		}
	}
	return hot
}

// PowerLimit returns the server-level hard cap implied by the component
// tier: the sum of per-component thermal power limits over the next
// window — what the intra-server PMU reports up to its server PMU.
func (p *PMU) PowerLimit() float64 {
	var sum float64
	for _, c := range p.Components {
		cap := c.Thermal.Model.PowerLimit(c.Thermal.T, p.Window)
		if peak := c.Spec.Peak(); peak < cap {
			cap = peak
		}
		sum += cap
	}
	return sum
}
