package testbed

import (
	"math"
	"testing"

	"willow/internal/dist"
	"willow/internal/power"
)

func TestHostPowerCurve(t *testing.T) {
	h := NewHost("A")
	if got := h.PowerDraw(); math.Abs(got-159.5) > 1e-9 {
		t.Errorf("idle draw = %v, want 159.5", got)
	}
	h.SetUtilization(1)
	if got := h.PowerDraw(); math.Abs(got-232) > 1e-9 {
		t.Errorf("full draw = %v, want 232", got)
	}
	h.SetUtilization(2) // clamps
	if got := h.Utilization(); got != 1 {
		t.Errorf("utilization clamped to %v", got)
	}
	h.SetUtilization(-1)
	if got := h.Utilization(); got != 0 {
		t.Errorf("utilization clamped to %v", got)
	}
}

func TestHostHeatsUnderLoad(t *testing.T) {
	h := NewHost("A")
	h.SetUtilization(1)
	for i := 0; i < 200; i++ {
		h.Advance(1)
	}
	hw := HardwareThermal()
	want := hw.SteadyState(232)
	if math.Abs(h.Thermal.T-want) > 0.5 {
		t.Errorf("steady temp %v, want ~%v", h.Thermal.T, want)
	}
	if h.Thermal.T > hw.Limit {
		t.Errorf("full-load host exceeds its thermal limit: %v", h.Thermal.T)
	}
}

func TestAnalyzerNoise(t *testing.T) {
	src := dist.NewSource(1)
	an := NewAnalyzer(2, src)
	var w float64
	const n = 20000
	for i := 0; i < n; i++ {
		w += an.Sample(100) / n
	}
	if math.Abs(w-100) > 0.1 {
		t.Errorf("analyzer mean = %v, want ~100", w)
	}
	noiseless := NewAnalyzer(0, src)
	if got := noiseless.Sample(55); got != 55 {
		t.Errorf("noiseless sample = %v", got)
	}
}

func TestSensorNoise(t *testing.T) {
	src := dist.NewSource(2)
	h := NewHost("A")
	s := NewSensor(0.5, src)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Read(h) / n
	}
	if math.Abs(sum-h.Thermal.T) > 0.05 {
		t.Errorf("sensor mean = %v, want ~%v", sum, h.Thermal.T)
	}
	noiseless := NewSensor(0, src)
	if got := noiseless.Read(h); got != h.Thermal.T {
		t.Errorf("noiseless read = %v", got)
	}
}

// TestMeasureTableI reproduces Table I: measured power is monotonically
// increasing in utilization and matches the reconstruction within the
// analyzer noise.
func TestMeasureTableI(t *testing.T) {
	rows, err := MeasureTableI(200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("%d rows, want 11", len(rows))
	}
	truth := power.TestbedServer()
	prev := -1.0
	for _, r := range rows {
		if r.Watts <= prev {
			t.Errorf("power not increasing at u=%v", r.Util)
		}
		prev = r.Watts
		if math.Abs(r.Watts-truth.Power(r.Util)) > 1 {
			t.Errorf("u=%v: measured %v, truth %v", r.Util, r.Watts, truth.Power(r.Util))
		}
	}
	if _, err := MeasureTableI(0, 7); err == nil {
		t.Error("zero samples accepted")
	}
}

// TestMeasureAppProfiles reproduces Table II: increments of ~8, 10, 15 W
// for A1, A2, A3.
func TestMeasureAppProfiles(t *testing.T) {
	profiles, err := MeasureAppProfiles(400, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"A1": 8, "A2": 10, "A3": 15}
	if len(profiles) != 3 {
		t.Fatalf("%d profiles, want 3", len(profiles))
	}
	for _, p := range profiles {
		if math.Abs(p.Watts-want[p.Name]) > 0.5 {
			t.Errorf("%s: measured %v W, want ~%v W", p.Name, p.Watts, want[p.Name])
		}
	}
	if _, err := MeasureAppProfiles(0, 9); err == nil {
		t.Error("zero samples accepted")
	}
}

// TestCalibrateThermal reproduces the Fig. 14 procedure: the fit recovers
// the emulated hardware's constants through sensor noise.
func TestCalibrateThermal(t *testing.T) {
	res, err := CalibrateThermal(300, 11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.C1-res.TrueC1)/res.TrueC1 > 0.15 {
		t.Errorf("fitted c1 = %v, true %v", res.C1, res.TrueC1)
	}
	if math.Abs(res.C2-res.TrueC2)/res.TrueC2 > 0.15 {
		t.Errorf("fitted c2 = %v, true %v", res.C2, res.TrueC2)
	}
	if res.Samples != 300 {
		t.Errorf("samples = %d", res.Samples)
	}
	if _, err := CalibrateThermal(2, 11); err == nil {
		t.Error("too-few steps accepted")
	}
}

func TestVmsForWatts(t *testing.T) {
	cases := []struct {
		watts float64
		sum   float64
	}{
		{58, 58}, {29, 29}, {14, 14}, {0.2, 0}, {15, 15},
	}
	for _, c := range cases {
		vms := vmsForWatts(c.watts)
		var sum float64
		for _, v := range vms {
			if v <= 0 || v > 15 {
				t.Errorf("vmsForWatts(%v) produced piece %v", c.watts, v)
			}
			sum += v
		}
		if math.Abs(sum-c.sum) > 1e-9 {
			t.Errorf("vmsForWatts(%v) sums to %v, want %v", c.watts, sum, c.sum)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{Utils: [3]float64{0.5, 0.5, 0.5}}); err == nil {
		t.Error("empty supply accepted")
	}
	if _, err := Run(RunConfig{Utils: [3]float64{1.5, 0.5, 0.5}, Supply: power.PlentyTrace()}); err == nil {
		t.Error("utilization > 1 accepted")
	}
}

// TestDeficitRunShape reproduces Fig. 16's defining features: migrations
// burst at the deep supply plunge (time unit 7), none occur during the
// persisting deficit (units 8–10, decision stability), and the recovery
// triggers nothing (unidirectional control). QoS survives: shed demand is
// negligible.
func TestDeficitRunShape(t *testing.T) {
	r, err := DeficitRun(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Units != 30 {
		t.Fatalf("units = %d, want 30", r.Units)
	}
	if r.MigrationsPerUnit[7] == 0 {
		t.Error("no migrations at the plunge (unit 7)")
	}
	for u := 8; u <= 10; u++ {
		if r.MigrationsPerUnit[u] != 0 {
			t.Errorf("migrations at unit %d during the persisting deficit: %d", u, r.MigrationsPerUnit[u])
		}
	}
	if r.MigrationsPerUnit[11] != 0 {
		t.Errorf("migrations on supply recovery (unit 11): %d", r.MigrationsPerUnit[11])
	}
	// Exactly one host drained and slept, freeing its static draw.
	asleep := 0
	for _, a := range r.AsleepAtEnd {
		if a {
			asleep++
		}
	}
	if asleep != 1 {
		t.Errorf("asleep hosts = %d, want 1", asleep)
	}
	// QoS: shed demand is a negligible fraction of total served energy.
	if r.DroppedWattTicks > 500 {
		t.Errorf("dropped %v watt-ticks, want negligible", r.DroppedWattTicks)
	}
	if r.Stats.PingPongs != 0 {
		t.Errorf("ping-pongs: %d", r.Stats.PingPongs)
	}
}

// TestDeficitTemperatures sanity-checks the Fig. 17/18 series: bounded by
// the thermal limit, warmer than ambient under load.
func TestDeficitTemperatures(t *testing.T) {
	r, err := DeficitRun(1)
	if err != nil {
		t.Fatal(err)
	}
	hw := HardwareThermal()
	for i := 0; i < 3; i++ {
		if len(r.TempSeries[i]) != r.Units {
			t.Fatalf("host %d series length %d", i, len(r.TempSeries[i]))
		}
		for u, temp := range r.TempSeries[i] {
			if temp > hw.Limit+1e-6 {
				t.Errorf("host %d exceeds thermal limit at unit %d: %v", i, u, temp)
			}
		}
		if !r.AsleepAtEnd[i] && r.MeanTemp[i] <= hw.Ambient {
			t.Errorf("awake host %d mean temp %v not above ambient", i, r.MeanTemp[i])
		}
	}
}

// TestPlentyRunTableIII reproduces Table III and the §V-C5 savings:
// host C drains to zero utilization and sleeps, and consolidation saves
// ≈27.5 % of the unconsolidated draw.
func TestPlentyRunTableIII(t *testing.T) {
	r, err := PlentyRun(1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.AsleepAtEnd[2] {
		t.Fatal("host C did not sleep")
	}
	if r.UtilFinal[2] != 0 {
		t.Errorf("host C final utilization %v, want 0", r.UtilFinal[2])
	}
	if r.AsleepAtEnd[0] || r.AsleepAtEnd[1] {
		t.Error("hosts A/B slept; only C should")
	}
	savings := r.Savings()
	if math.Abs(savings-0.275) > 0.03 {
		t.Errorf("consolidation savings = %.3f, want ≈0.275", savings)
	}
	// A and B stay within their power and thermal limits after absorbing
	// C's load (the paper's observation that C need not be woken).
	if r.UtilFinal[0] > 1 || r.UtilFinal[1] > 1 {
		t.Errorf("final utilizations %v exceed capacity", r.UtilFinal)
	}
	if r.Stats.PingPongs != 0 {
		t.Errorf("ping-pongs: %d", r.Stats.PingPongs)
	}
}

// TestRunDeterminism: the same seed reproduces the same run.
func TestRunDeterminism(t *testing.T) {
	a, err := DeficitRun(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeficitRun(5)
	if err != nil {
		t.Fatal(err)
	}
	if a.PowerFinal != b.PowerFinal || len(a.Stats.Migrations) != len(b.Stats.Migrations) {
		t.Error("identical seeds diverged")
	}
}

func BenchmarkDeficitRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := DeficitRun(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := CalibrateThermal(200, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
