package testbed

import (
	"fmt"

	"willow/internal/core"
	"willow/internal/dist"
	"willow/internal/power"
	"willow/internal/topo"
	"willow/internal/workload"
)

// HostNames are the three cluster machines, in server-index order.
var HostNames = [3]string{"A", "B", "C"}

// vmsForWatts splits a dynamic power demand into VM-sized pieces drawn
// from the Table II application profiles (15, 10 and 8 W), with any
// remainder as one smaller VM. Applications are the unit of migration,
// so granularity matters: the paper's hosts each ran several web-serving
// VMs.
func vmsForWatts(total float64) []float64 {
	var out []float64
	for _, size := range []float64{15, 10, 8} {
		for total >= size {
			out = append(out, size)
			total -= size
		}
	}
	if total > 0.5 {
		out = append(out, total)
	}
	return out
}

// RunConfig describes one controller-driven testbed experiment.
type RunConfig struct {
	// Utils are the initial CPU utilizations of hosts A, B, C.
	Utils [3]float64
	// Supply is the injected power-supply variation, one entry per time
	// unit (= one supply window of η1 demand ticks).
	Supply power.Trace
	// Core overrides controller parameters; zero fields take defaults.
	Core core.Config
	// Seed drives demand noise.
	Seed uint64
}

// RunResult is the outcome of a testbed run: the series behind
// Figs. 16–18 and the consolidation outcome behind Table III.
type RunResult struct {
	// Units is the number of supply time units simulated.
	Units int
	// MigrationsPerUnit counts migrations in each supply unit (Fig. 16).
	MigrationsPerUnit []int
	// TempSeries is each host's mean temperature per supply unit
	// (Fig. 17 plots host A's).
	TempSeries [3][]float64
	// MeanTemp is each host's overall mean temperature (Fig. 18).
	MeanTemp [3]float64
	// UtilInitial and UtilFinal are each host's utilization at the start
	// and averaged over the final quarter of the run (Table III).
	UtilInitial, UtilFinal [3]float64
	// AsleepAtEnd reports which hosts ended the run deactivated.
	AsleepAtEnd [3]bool
	// PowerNoConsolidation is the draw if all hosts ran their initial
	// utilizations forever; PowerFinal is the measured mean total draw
	// over the final quarter. Their ratio is the §V-C5 savings.
	PowerNoConsolidation, PowerFinal float64
	// DroppedWattTicks is total shed demand.
	DroppedWattTicks float64
	// Stats is the controller's raw accounting.
	Stats core.Stats
}

// Savings returns the consolidation power savings fraction (§V-C5
// reports ≈27.5 % for the plenty scenario).
func (r *RunResult) Savings() float64 {
	if r.PowerNoConsolidation <= 0 {
		return 0
	}
	return 1 - r.PowerFinal/r.PowerNoConsolidation
}

// Run executes a testbed experiment.
func Run(cfg RunConfig) (*RunResult, error) {
	if len(cfg.Supply) == 0 {
		return nil, fmt.Errorf("testbed: empty supply trace")
	}
	// The paper's testbed control plane: two level-1 switches, one over
	// hosts A and B, one over host C (Fig. 13).
	tree, err := topo.BuildIrregular([][]int{{2}, {2, 1}})
	if err != nil {
		return nil, err
	}
	src := dist.NewSource(cfg.Seed)

	model := power.TestbedServer()
	specs := make([]core.ServerSpec, 3)
	appID := 0
	for i := 0; i < 3; i++ {
		u := cfg.Utils[i]
		if u < 0 || u > 1 {
			return nil, fmt.Errorf("testbed: utilization %v outside [0, 1]", u)
		}
		spec := core.ServerSpec{
			Power:   model,
			Thermal: HardwareThermal(),
		}
		for _, watts := range vmsForWatts(u * model.DynamicRange()) {
			spec.Apps = append(spec.Apps, &workload.App{
				ID:    appID,
				Class: workload.Class{Name: "vm", Weight: watts},
				Mean:  watts,
			})
			appID++
		}
		specs[i] = spec
	}

	coreCfg := cfg.Core
	if coreCfg.Eta1 == 0 {
		coreCfg.Eta1 = core.Defaults().Eta1
	}
	if coreCfg.NoiseLambda == 0 {
		// CPU-bound web serving: steady but not constant (CV = 10 %).
		coreCfg.NoiseLambda = 100
	}
	if coreCfg.PMin == 0 {
		// The default 10 W margin suits the simulation's 450 W servers;
		// the 232 W testbed hosts get a proportionally smaller one.
		coreCfg.PMin = 5
	}
	if coreCfg.MigrationLatency == 0 {
		// Real VMware migrations are not instantaneous: one demand window
		// of transfer time, as on the physical cluster.
		coreCfg.MigrationLatency = 1
	}
	ctrl, err := core.New(tree, specs, cfg.Supply, coreCfg, src.Fork())
	if err != nil {
		return nil, err
	}

	units := len(cfg.Supply)
	ticks := units * ctrl.Cfg.Eta1
	res := &RunResult{Units: units, MigrationsPerUnit: make([]int, units)}
	for i := 0; i < 3; i++ {
		res.UtilInitial[i] = cfg.Utils[i]
		res.TempSeries[i] = make([]float64, units)
	}
	res.PowerNoConsolidation = model.Power(cfg.Utils[0]) + model.Power(cfg.Utils[1]) + model.Power(cfg.Utils[2])

	migBefore := 0
	finalFrom := ticks - ticks/4
	finalTicks := 0
	var finalUtil [3]float64
	for t := 0; t < ticks; t++ {
		ctrl.Step()
		unit := t / ctrl.Cfg.Eta1
		for i, s := range ctrl.Servers {
			res.TempSeries[i][unit] += s.Thermal.T / float64(ctrl.Cfg.Eta1)
			res.MeanTemp[i] += s.Thermal.T / float64(ticks)
		}
		if t >= finalFrom {
			finalTicks++
			for i, s := range ctrl.Servers {
				finalUtil[i] += s.Utilization()
			}
			res.PowerFinal += ctrl.TotalConsumed()
		}
		now := len(ctrl.Stats.Migrations)
		res.MigrationsPerUnit[unit] += now - migBefore
		migBefore = now
	}
	for i, s := range ctrl.Servers {
		res.UtilFinal[i] = finalUtil[i] / float64(finalTicks)
		res.AsleepAtEnd[i] = s.Asleep()
	}
	res.PowerFinal /= float64(finalTicks)
	res.DroppedWattTicks = ctrl.Stats.DroppedWattTicks
	res.Stats = ctrl.Stats
	return res, nil
}

// DeficitRun reproduces the energy-deficient experiment of Section V-C4
// (Figs. 15–18): hosts at 80/50/50 % utilization (the paper's "overall
// average utilization level of 60 %") under the Fig. 15 supply variation.
func DeficitRun(seed uint64) (*RunResult, error) {
	return Run(RunConfig{
		Utils:  [3]float64{0.8, 0.5, 0.5},
		Supply: power.DeficitTrace(),
		Seed:   seed,
	})
}

// PlentyRun reproduces the consolidation experiment of Section V-C5
// (Fig. 19, Table III): hosts at 80/40/~19 % under an energy-plenty
// supply, with the 20 % consolidation threshold. Host C should drain to
// zero and sleep, yielding ≈27.5 % power savings.
func PlentyRun(seed uint64) (*RunResult, error) {
	return Run(RunConfig{
		Utils:  [3]float64{0.8, 0.4, 0.193},
		Supply: power.PlentyTrace(),
		Seed:   seed,
	})
}
