// Package testbed emulates the paper's experimental evaluation platform
// (Section V-C): a cluster of three VMware ESX servers managed from a
// remote control plane, with CPU-bound applications in VMs, an onboard
// CPU temperature sensor, and an Extech power analyzer sampling at
// roughly 2 Hz.
//
// The physical cluster contributes exactly three things to the paper's
// experiments, all of which this package reproduces synthetically (see
// DESIGN.md §5):
//
//   - a utilization→power curve (Table I) — emulated by the linear
//     reconstruction power.TestbedServer;
//   - a thermal response — the paper's own RC model (Eq. 1) at plausible
//     CPU-package constants, read through a noisy sensor;
//   - VM migration with latency — the controller's migration-cost model.
//
// Willow's control path is identical to the one exercised on the real
// hardware: the control plane sees only power, utilization and
// temperature numbers.
package testbed

import (
	"fmt"

	"willow/internal/dist"
	"willow/internal/power"
	"willow/internal/thermal"
)

// HardwareThermal returns the emulated host's "true" thermal constants —
// the physics the sensor observes. They are chosen so a host at full load
// (232 W) settles just below 70 °C, as a CPU package plausibly does; the
// calibration experiment (Fig. 14) estimates constants from traces the
// same way the paper estimated c1 = 0.2, c2 = 0.008 from its hardware.
func HardwareThermal() thermal.Model {
	return thermal.Model{C1: 0.03, C2: 0.16, Ambient: 25, Limit: 70}
}

// Host is one emulated ESX server.
type Host struct {
	Name    string
	Power   power.ServerModel
	Thermal *thermal.State
	// utilization is the current CPU utilization in [0, 1].
	utilization float64
}

// NewHost returns a host with the Table I power curve at ambient
// temperature.
func NewHost(name string) *Host {
	return &Host{
		Name:    name,
		Power:   power.TestbedServer(),
		Thermal: thermal.NewState(HardwareThermal()),
	}
}

// SetUtilization pins the host's CPU utilization (clamped to [0, 1]).
func (h *Host) SetUtilization(u float64) {
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	h.utilization = u
}

// Utilization returns the current CPU utilization.
func (h *Host) Utilization() float64 { return h.utilization }

// PowerDraw returns the host's current true power draw in watts.
func (h *Host) PowerDraw() float64 { return h.Power.Power(h.utilization) }

// Advance runs the host for dt time units at its current utilization,
// heating or cooling accordingly.
func (h *Host) Advance(dt float64) {
	h.Thermal.Advance(h.PowerDraw(), dt)
}

// Analyzer emulates the Extech power analyzer: it samples a true power
// value with small zero-mean gaussian error, at a nominal 2 Hz.
type Analyzer struct {
	// NoiseStdDev is the measurement error in watts.
	NoiseStdDev float64
	// SampleHz is the nominal sampling rate (informational; the paper's
	// analyzer ran at about 2 Hz).
	SampleHz float64
	src      *dist.Source
}

// NewAnalyzer returns an analyzer with the given measurement noise.
func NewAnalyzer(noise float64, src *dist.Source) *Analyzer {
	return &Analyzer{NoiseStdDev: noise, SampleHz: 2, src: src}
}

// Sample returns one noisy reading of the true power.
func (a *Analyzer) Sample(truePower float64) float64 {
	if a.NoiseStdDev <= 0 {
		return truePower
	}
	return a.src.Normal(truePower, a.NoiseStdDev)
}

// Sensor emulates the onboard CPU temperature sensor with gaussian read
// noise.
type Sensor struct {
	NoiseStdDev float64
	src         *dist.Source
}

// NewSensor returns a sensor with the given read noise.
func NewSensor(noise float64, src *dist.Source) *Sensor {
	return &Sensor{NoiseStdDev: noise, src: src}
}

// Read returns one noisy temperature reading of the host.
func (s *Sensor) Read(h *Host) float64 {
	if s.NoiseStdDev <= 0 {
		return h.Thermal.T
	}
	return s.src.Normal(h.Thermal.T, s.NoiseStdDev)
}

// MeasureTableI reproduces the paper's Table I baseline experiment: run a
// CPU-intensive load at each utilization step, average analyzer samples,
// and report utilization vs measured power.
func MeasureTableI(samplesPerPoint int, seed uint64) ([]power.UtilPower, error) {
	if samplesPerPoint < 1 {
		return nil, fmt.Errorf("testbed: need at least 1 sample per point")
	}
	src := dist.NewSource(seed)
	h := NewHost("dut")
	an := NewAnalyzer(1.5, src.Fork())
	rows := make([]power.UtilPower, 0, 11)
	for step := 0; step <= 10; step++ {
		u := float64(step) / 10
		h.SetUtilization(u)
		var sum float64
		for i := 0; i < samplesPerPoint; i++ {
			sum += an.Sample(h.PowerDraw())
		}
		rows = append(rows, power.UtilPower{Util: u, Watts: sum / float64(samplesPerPoint)})
	}
	return rows, nil
}

// AppProfile is one Table II row: the measured power increase when the
// application runs on an otherwise idle host.
type AppProfile struct {
	Name  string
	Watts float64
}

// MeasureAppProfiles reproduces Table II: each application is started on
// an idle host and the analyzer measures the increase in draw. The
// applications are CPU-bound, so the increment is their CPU share times
// the host's dynamic power range.
func MeasureAppProfiles(samplesPerPoint int, seed uint64) ([]AppProfile, error) {
	if samplesPerPoint < 1 {
		return nil, fmt.Errorf("testbed: need at least 1 sample per point")
	}
	src := dist.NewSource(seed)
	h := NewHost("dut")
	an := NewAnalyzer(1.0, src.Fork())
	// The paper's measured increments (Table II), expressed as CPU
	// utilization shares of the host's 72.5 W dynamic range.
	apps := []struct {
		name  string
		watts float64
	}{{"A1", 8}, {"A2", 10}, {"A3", 15}}

	measure := func() float64 {
		var sum float64
		for i := 0; i < samplesPerPoint; i++ {
			sum += an.Sample(h.PowerDraw())
		}
		return sum / float64(samplesPerPoint)
	}

	var out []AppProfile
	for _, app := range apps {
		h.SetUtilization(0)
		idle := measure()
		h.SetUtilization(app.watts / h.Power.DynamicRange())
		loaded := measure()
		out = append(out, AppProfile{Name: app.name, Watts: loaded - idle})
	}
	return out, nil
}

// CalibrationResult is the outcome of the Fig. 14 experiment.
type CalibrationResult struct {
	C1, C2 float64 // fitted constants
	RMSE   float64 // fit error, °C per time unit
	// TrueC1, TrueC2 are the emulated hardware's actual constants, for
	// the paper-vs-measured comparison.
	TrueC1, TrueC2 float64
	Samples        int
}

// CalibrateThermal reproduces the parameter-estimation experiment of
// Section V-C2 / Fig. 14: drive the host through a sequence of power
// steps, log (power, temperature) through the noisy sensor and analyzer,
// and least-squares fit the Eq. 1 constants.
func CalibrateThermal(steps int, seed uint64) (*CalibrationResult, error) {
	if steps < 4 {
		return nil, fmt.Errorf("testbed: need at least 4 calibration steps")
	}
	src := dist.NewSource(seed)
	h := NewHost("dut")
	sensor := NewSensor(0.05, src.Fork())
	stepSrc := src.Fork()

	const dt = 0.5
	samples := make([]thermal.Sample, 0, steps)
	prevT := sensor.Read(h)
	for i := 0; i < steps; i++ {
		u := stepSrc.Float64()
		h.SetUtilization(u)
		p := h.PowerDraw()
		h.Advance(dt)
		curT := sensor.Read(h)
		samples = append(samples, thermal.Sample{T0: prevT, T1: curT, P: p, Dt: dt})
		prevT = curT
	}
	hw := HardwareThermal()
	c1, c2, err := thermal.Calibrate(samples, hw.Ambient)
	if err != nil {
		return nil, err
	}
	return &CalibrationResult{
		C1:      c1,
		C2:      c2,
		RMSE:    thermal.CalibrationError(samples, hw.Ambient, c1, c2),
		TrueC1:  hw.C1,
		TrueC2:  hw.C2,
		Samples: len(samples),
	}, nil
}
