// Package config provides a JSON-serializable description of a Willow
// simulation, so experiments can be captured in files, shared, and
// replayed byte-for-byte (everything is deterministic given the seed).
// cmd/willow-sim accepts these files via -config.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"willow/internal/cluster"
	"willow/internal/core"
	"willow/internal/power"
	"willow/internal/thermal"
)

// SupplySpec is the JSON form of a power.Supply.
type SupplySpec struct {
	// Kind selects the profile: "constant", "sine", "trace",
	// "deficit" (the paper's Fig. 15) or "plenty" (Fig. 19).
	Kind string `json:"kind"`
	// Watts is the constant level (kind "constant").
	Watts float64 `json:"watts,omitempty"`
	// Base, Amplitude and Period parameterize kind "sine".
	Base      float64 `json:"base,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
	Period    int     `json:"period,omitempty"`
	// Trace holds explicit per-epoch watts (kind "trace").
	Trace []float64 `json:"trace,omitempty"`
	// Scale multiplies the profile when non-zero (e.g. to reuse the
	// 3-server testbed traces for larger fleets).
	Scale float64 `json:"scale,omitempty"`
}

// Build materializes the supply.
func (s SupplySpec) Build() (power.Supply, error) {
	var supply power.Supply
	switch s.Kind {
	case "constant":
		if s.Watts <= 0 {
			return nil, fmt.Errorf("config: constant supply needs positive watts, got %v", s.Watts)
		}
		supply = power.Constant(s.Watts)
	case "sine":
		if s.Period <= 0 {
			return nil, fmt.Errorf("config: sine supply needs positive period, got %d", s.Period)
		}
		supply = power.Sine{Base: s.Base, Amplitude: s.Amplitude, Period: s.Period}
	case "trace":
		if len(s.Trace) == 0 {
			return nil, fmt.Errorf("config: trace supply needs at least one entry")
		}
		supply = power.Trace(s.Trace)
	case "deficit":
		supply = power.DeficitTrace()
	case "plenty":
		supply = power.PlentyTrace()
	default:
		return nil, fmt.Errorf("config: unknown supply kind %q", s.Kind)
	}
	if s.Scale != 0 && s.Scale != 1 {
		supply = power.Scaled{S: supply, Factor: s.Scale}
	}
	return supply, nil
}

// Sim is the JSON form of a cluster.Config.
type Sim struct {
	Fanout        []int   `json:"fanout"`
	StaticWatts   float64 `json:"static_watts"`
	PeakWatts     float64 `json:"peak_watts"`
	CircuitLimit  float64 `json:"circuit_limit,omitempty"`
	ThermalC1     float64 `json:"thermal_c1"`
	ThermalC2     float64 `json:"thermal_c2"`
	Ambient       float64 `json:"ambient_c"`
	ThermalLimit  float64 `json:"thermal_limit_c"`
	HotAmbient    float64 `json:"hot_ambient_c,omitempty"`
	HotServers    []int   `json:"hot_servers,omitempty"`
	AppsPerServer int     `json:"apps_per_server"`
	Utilization   float64 `json:"utilization"`

	Supply SupplySpec `json:"supply"`

	Warmup int    `json:"warmup"`
	Ticks  int    `json:"ticks"`
	Seed   uint64 `json:"seed"`

	PriorityClasses int     `json:"priority_classes,omitempty"`
	IPCFlows        int     `json:"ipc_flows,omitempty"`
	IPCRate         float64 `json:"ipc_rate,omitempty"`

	// Controller knobs; zero values take the paper defaults.
	Eta1             int     `json:"eta1,omitempty"`
	Eta2             int     `json:"eta2,omitempty"`
	Alpha            float64 `json:"alpha,omitempty"`
	PMin             float64 `json:"pmin_watts,omitempty"`
	MigCostWatts     float64 `json:"migration_cost_watts,omitempty"`
	ConsolidateBelow float64 `json:"consolidate_below,omitempty"`
}

// Default returns the Sim mirroring cluster.PaperConfig(0.5).
func Default() Sim {
	return Sim{
		Fanout:        []int{2, 3, 3},
		StaticWatts:   135,
		PeakWatts:     450,
		ThermalC1:     0.005,
		ThermalC2:     0.05,
		Ambient:       25,
		ThermalLimit:  70,
		HotAmbient:    40,
		HotServers:    []int{14, 15, 16, 17},
		AppsPerServer: 4,
		Utilization:   0.5,
		Supply:        SupplySpec{Kind: "constant", Watts: 18 * 450},
		Warmup:        100,
		Ticks:         400,
		Seed:          2011,
	}
}

// ToCluster converts the file form to a runnable configuration.
func (s Sim) ToCluster() (cluster.Config, error) {
	supply, err := s.Supply.Build()
	if err != nil {
		return cluster.Config{}, err
	}
	cfg := cluster.PaperConfig(s.Utilization)
	cfg.Fanout = s.Fanout
	cfg.ServerPower = power.ServerModel{Static: s.StaticWatts, Peak: s.PeakWatts}
	cfg.CircuitLimit = s.CircuitLimit
	cfg.Thermal = thermal.Model{C1: s.ThermalC1, C2: s.ThermalC2, Ambient: s.Ambient, Limit: s.ThermalLimit}
	cfg.HotAmbient = s.HotAmbient
	cfg.HotServers = s.HotServers
	cfg.AppsPerServer = s.AppsPerServer
	cfg.Supply = supply
	cfg.Warmup = s.Warmup
	cfg.Ticks = s.Ticks
	cfg.Seed = s.Seed
	cfg.PriorityClasses = s.PriorityClasses
	cfg.IPCFlows = s.IPCFlows
	cfg.IPCRate = s.IPCRate

	c := core.Defaults()
	if s.Eta1 != 0 {
		c.Eta1 = s.Eta1
	}
	if s.Eta2 != 0 {
		c.Eta2 = s.Eta2
	}
	if s.Alpha != 0 {
		c.Alpha = s.Alpha
	}
	if s.PMin != 0 {
		c.PMin = s.PMin
	}
	if s.MigCostWatts != 0 {
		c.MigCostWatts = s.MigCostWatts
	}
	if s.ConsolidateBelow != 0 {
		c.ConsolidateBelow = s.ConsolidateBelow
	}
	cfg.Core = c

	if err := cfg.ServerPower.Validate(); err != nil {
		return cluster.Config{}, err
	}
	if err := cfg.Thermal.Validate(); err != nil {
		return cluster.Config{}, err
	}
	return cfg, nil
}

// Load reads and parses a Sim from a JSON file.
func Load(path string) (Sim, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Sim{}, fmt.Errorf("config: %w", err)
	}
	var s Sim
	if err := json.Unmarshal(data, &s); err != nil {
		return Sim{}, fmt.Errorf("config: parsing %s: %w", path, err)
	}
	return s, nil
}

// Save writes the Sim as indented JSON.
func (s Sim) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
