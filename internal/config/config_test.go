package config

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"willow/internal/cluster"
	"willow/internal/power"
)

func TestSupplySpecBuild(t *testing.T) {
	cases := []struct {
		name string
		spec SupplySpec
		at0  float64
		ok   bool
	}{
		{"constant", SupplySpec{Kind: "constant", Watts: 500}, 500, true},
		{"scaled constant", SupplySpec{Kind: "constant", Watts: 500, Scale: 2}, 1000, true},
		{"sine", SupplySpec{Kind: "sine", Base: 100, Amplitude: 10, Period: 8}, 100, true},
		{"trace", SupplySpec{Kind: "trace", Trace: []float64{7, 8}}, 7, true},
		{"deficit", SupplySpec{Kind: "deficit"}, power.DeficitTrace()[0], true},
		{"plenty", SupplySpec{Kind: "plenty"}, power.PlentyTrace()[0], true},
		{"bad kind", SupplySpec{Kind: "nuclear"}, 0, false},
		{"constant no watts", SupplySpec{Kind: "constant"}, 0, false},
		{"sine no period", SupplySpec{Kind: "sine", Base: 1}, 0, false},
		{"empty trace", SupplySpec{Kind: "trace"}, 0, false},
	}
	for _, c := range cases {
		s, err := c.spec.Build()
		if (err == nil) != c.ok {
			t.Errorf("%s: Build err = %v, want ok=%v", c.name, err, c.ok)
			continue
		}
		if err != nil {
			continue
		}
		if got := s.At(0); math.Abs(got-c.at0) > 1e-9 {
			t.Errorf("%s: At(0) = %v, want %v", c.name, got, c.at0)
		}
	}
}

func TestDefaultMatchesPaperConfig(t *testing.T) {
	cfg, err := Default().ToCluster()
	if err != nil {
		t.Fatal(err)
	}
	paper := cluster.PaperConfig(0.5)
	if cfg.ServerPower != paper.ServerPower {
		t.Errorf("server power %+v != paper %+v", cfg.ServerPower, paper.ServerPower)
	}
	if cfg.Thermal != paper.Thermal {
		t.Errorf("thermal %+v != paper %+v", cfg.Thermal, paper.Thermal)
	}
	if len(cfg.Fanout) != 3 || cfg.Fanout[0] != 2 {
		t.Errorf("fanout %v", cfg.Fanout)
	}
	if cfg.Core.Eta1 != 4 || cfg.Core.Eta2 != 7 {
		t.Errorf("eta %d/%d", cfg.Core.Eta1, cfg.Core.Eta2)
	}
}

func TestToClusterOverrides(t *testing.T) {
	s := Default()
	s.Eta1 = 2
	s.Eta2 = 5
	s.Alpha = 0.7
	s.PMin = 3
	s.PriorityClasses = 2
	cfg, err := s.ToCluster()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Core.Eta1 != 2 || cfg.Core.Eta2 != 5 || cfg.Core.Alpha != 0.7 || cfg.Core.PMin != 3 {
		t.Errorf("core overrides lost: %+v", cfg.Core)
	}
	if cfg.PriorityClasses != 2 {
		t.Errorf("priority classes lost")
	}
}

func TestToClusterRejectsBadModels(t *testing.T) {
	s := Default()
	s.PeakWatts = 10 // below static
	if _, err := s.ToCluster(); err == nil {
		t.Error("peak < static accepted")
	}
	s = Default()
	s.ThermalC1 = 0
	if _, err := s.ToCluster(); err == nil {
		t.Error("bad thermal accepted")
	}
	s = Default()
	s.Supply.Kind = "???"
	if _, err := s.ToCluster(); err == nil {
		t.Error("bad supply accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sim.json")
	s := Default()
	s.Utilization = 0.73
	s.Supply = SupplySpec{Kind: "sine", Base: 6000, Amplitude: 1500, Period: 20}
	s.IPCFlows = 12
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Utilization != 0.73 || got.Supply.Kind != "sine" || got.IPCFlows != 12 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	// The loaded config must actually run.
	cfg, err := got.ToCluster()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Warmup = 10
	cfg.Ticks = 40
	if _, err := cluster.Run(cfg); err != nil {
		t.Fatalf("loaded config does not run: %v", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/sim.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("bad JSON accepted")
	}
}
