// Package workload models the demand side of Willow: applications hosted
// in virtual machines whose power demand is driven by user queries.
//
// The paper's simulation places "a random mix of 4 different application
// types that have a relative average power requirement of 1, 2, 5 and 9"
// on each server, draws per-node power demand from a Poisson
// distribution, and treats the application (VM) as the indivisible unit
// of migration (Section IV-E: demand is never split between nodes). The
// testbed instead runs three CPU-bound applications A1/A2/A3 that add 8,
// 10 and 15 W respectively (Table II).
//
// Demand trends are extracted with the exponential smoothing of Eq. 4:
//
//	CP ← α·CP_new + (1−α)·CP_old
package workload

import (
	"fmt"
	"sort"

	"willow/internal/dist"
)

// Class describes an application type by its relative average power
// weight (simulation) or absolute wattage (testbed).
type Class struct {
	Name   string
	Weight float64 // relative power requirement
}

// SimClasses returns the paper's four simulation application types with
// relative power requirements 1, 2, 5 and 9 (Section V-B1).
func SimClasses() []Class {
	return []Class{
		{Name: "tiny", Weight: 1},
		{Name: "small", Weight: 2},
		{Name: "medium", Weight: 5},
		{Name: "large", Weight: 9},
	}
}

// TestbedClasses returns the paper's testbed applications A1, A2, A3
// whose measured power increments are 8, 10 and 15 W (Table II).
func TestbedClasses() []Class {
	return []Class{
		{Name: "A1", Weight: 8},
		{Name: "A2", Weight: 10},
		{Name: "A3", Weight: 15},
	}
}

// App is one application instance hosted in a VM — Willow's unit of
// migration.
type App struct {
	ID    int
	Class Class
	// Mean is the application's average power demand in watts at the
	// current workload intensity.
	Mean float64
	// NoiseLambda controls demand fluctuation: each tick's demand is
	// Mean scaled by Poisson(NoiseLambda)/NoiseLambda, so larger values
	// mean steadier demand (CV = 1/sqrt(NoiseLambda)). Zero disables
	// fluctuation.
	NoiseLambda float64
	// Priority orders QoS classes: 0 is the most critical, larger values
	// shed first when a budget cannot serve everything. The paper leaves
	// multiple QoS classes as future work (Section VI) but describes the
	// mechanism: "some of the applications ... are either shut down
	// completely or run in a degraded operational mode to stay within
	// the power budget" (Section IV-E).
	Priority int
	// LastDemand is the demand drawn in the most recent Demand call —
	// what priority-ordered shedding attributes per application.
	LastDemand float64
}

// Demand draws this tick's instantaneous power demand and records it in
// LastDemand.
func (a *App) Demand(src *dist.Source) float64 {
	switch {
	case a.Mean <= 0:
		a.LastDemand = 0
	case a.NoiseLambda <= 0:
		a.LastDemand = a.Mean
	default:
		a.LastDemand = src.PoissonScaled(a.Mean, a.NoiseLambda)
	}
	return a.LastDemand
}

// MigrationBytes approximates the VM memory footprint transferred when
// the app migrates; proportional to its power weight (bigger apps are
// bigger VMs). Used by the network model to account migration traffic.
func (a *App) MigrationBytes() float64 { return a.Class.Weight }

// Set is the collection of apps on one server.
type Set struct {
	Apps []*App
}

// MeanTotal returns the summed mean demand — the paper's "average power
// demand in a server is the sum of all the average power requirements of
// the applications that are hosted in it".
func (s *Set) MeanTotal() float64 {
	var sum float64
	for _, a := range s.Apps {
		sum += a.Mean
	}
	return sum
}

// Demand draws the server's instantaneous demand this tick.
func (s *Set) Demand(src *dist.Source) float64 {
	var sum float64
	for _, a := range s.Apps {
		sum += a.Demand(src)
	}
	return sum
}

// Add appends an app to the set.
func (s *Set) Add(a *App) { s.Apps = append(s.Apps, a) }

// Remove deletes the app with the given ID and returns it, or nil if the
// set does not contain it.
func (s *Set) Remove(id int) *App {
	for i, a := range s.Apps {
		if a.ID == id {
			s.Apps = append(s.Apps[:i], s.Apps[i+1:]...)
			return a
		}
	}
	return nil
}

// ByID returns the app with the given ID, or nil.
func (s *Set) ByID(id int) *App {
	for _, a := range s.Apps {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// Len returns the number of apps.
func (s *Set) Len() int { return len(s.Apps) }

// SortedByMeanDesc returns the apps ordered by decreasing mean demand,
// ties broken by ID for determinism. Migration planning peels demands in
// this order.
func (s *Set) SortedByMeanDesc() []*App {
	out := append([]*App(nil), s.Apps...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Mean != out[j].Mean {
			return out[i].Mean > out[j].Mean
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Placement holds the initial assignment of apps to servers.
type Placement struct {
	Sets []*Set // indexed by server
	next int    // next app ID
}

// PlaceRandomMix builds the paper's simulation workload: each of
// numServers servers receives appsPerServer applications whose classes
// are drawn uniformly from classes. Mean demands are Weight·unitWatts.
func PlaceRandomMix(numServers, appsPerServer int, classes []Class, unitWatts, noiseLambda float64, src *dist.Source) (*Placement, error) {
	if numServers <= 0 || appsPerServer <= 0 {
		return nil, fmt.Errorf("workload: need positive server (%d) and app (%d) counts", numServers, appsPerServer)
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("workload: no application classes")
	}
	p := &Placement{}
	for s := 0; s < numServers; s++ {
		set := &Set{}
		for a := 0; a < appsPerServer; a++ {
			cls := classes[src.Intn(len(classes))]
			set.Add(&App{
				ID:          p.next,
				Class:       cls,
				Mean:        cls.Weight * unitWatts,
				NoiseLambda: noiseLambda,
			})
			p.next++
		}
		p.Sets = append(p.Sets, set)
	}
	return p, nil
}

// ScaleToMeanPerServer rescales every app's mean so that the average
// server's total mean demand equals target watts, preserving the relative
// weights. This is how a utilization sweep sets the operating point: the
// demand at utilization U is U times the server's power capacity.
func (p *Placement) ScaleToMeanPerServer(target float64) {
	var total float64
	for _, set := range p.Sets {
		total += set.MeanTotal()
	}
	if total <= 0 {
		return
	}
	factor := target * float64(len(p.Sets)) / total
	for _, set := range p.Sets {
		for _, a := range set.Apps {
			a.Mean *= factor
		}
	}
}

// TotalMean returns the summed mean demand across all servers.
func (p *Placement) TotalMean() float64 {
	var sum float64
	for _, set := range p.Sets {
		sum += set.MeanTotal()
	}
	return sum
}

// NewApp mints a new application with the next free ID (used by tests and
// by dynamic arrival scenarios).
func (p *Placement) NewApp(cls Class, mean, noiseLambda float64) *App {
	a := &App{ID: p.next, Class: cls, Mean: mean, NoiseLambda: noiseLambda}
	p.next++
	return a
}

// Smoother implements the exponential smoothing of the paper's Eq. 4:
// CP = α·CP_new + (1−α)·CP_old. The first observation initializes the
// state directly so early readings are not biased toward zero.
type Smoother struct {
	Alpha float64
	value float64
	init  bool
}

// NewSmoother returns a Smoother with parameter alpha, which must lie in
// (0, 1].
func NewSmoother(alpha float64) (*Smoother, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("workload: smoothing alpha %v outside (0, 1]", alpha)
	}
	return &Smoother{Alpha: alpha}, nil
}

// Update folds in a new observation and returns the smoothed value.
func (s *Smoother) Update(x float64) float64 {
	if !s.init {
		s.value = x
		s.init = true
		return x
	}
	s.value = s.Alpha*x + (1-s.Alpha)*s.value
	return s.value
}

// Value returns the current smoothed value (zero before any update).
func (s *Smoother) Value() float64 { return s.value }

// Initialized reports whether the smoother has absorbed at least one
// observation since construction or the last Reset. The controller's
// fixed-point fast path needs it: only an initialized smoother fed the
// same observation twice is guaranteed to return the same value again.
func (s *Smoother) Initialized() bool { return s.init }

// Bias shifts the smoothed state by delta without registering an
// observation. Willow applies it when demand migrates between nodes: the
// moved application's mean leaves one smoother and enters another
// immediately, rather than bleeding over several windows.
func (s *Smoother) Bias(delta float64) {
	if !s.init {
		s.init = true
	}
	s.value += delta
	if s.value < 0 {
		s.value = 0
	}
}

// Reset clears the smoother to its pre-first-observation state.
func (s *Smoother) Reset() { s.value = 0; s.init = false }
