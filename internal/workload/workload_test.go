package workload

import (
	"math"
	"testing"
	"testing/quick"

	"willow/internal/dist"
)

func TestSimClassesMatchPaper(t *testing.T) {
	classes := SimClasses()
	want := []float64{1, 2, 5, 9}
	if len(classes) != len(want) {
		t.Fatalf("got %d classes, want %d", len(classes), len(want))
	}
	for i, c := range classes {
		if c.Weight != want[i] {
			t.Errorf("class %d weight %v, want %v", i, c.Weight, want[i])
		}
	}
}

func TestTestbedClassesMatchTableII(t *testing.T) {
	classes := TestbedClasses()
	want := map[string]float64{"A1": 8, "A2": 10, "A3": 15}
	if len(classes) != 3 {
		t.Fatalf("got %d classes, want 3", len(classes))
	}
	for _, c := range classes {
		if want[c.Name] != c.Weight {
			t.Errorf("%s weight %v, want %v", c.Name, c.Weight, want[c.Name])
		}
	}
}

func TestAppDemandMean(t *testing.T) {
	src := dist.NewSource(1)
	a := &App{Mean: 50, NoiseLambda: 20}
	const n = 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += a.Demand(src)
	}
	got := sum / n
	if math.Abs(got-50)/50 > 0.02 {
		t.Errorf("demand mean = %v, want ~50", got)
	}
}

func TestAppDemandNoNoise(t *testing.T) {
	src := dist.NewSource(1)
	a := &App{Mean: 30, NoiseLambda: 0}
	for i := 0; i < 10; i++ {
		if got := a.Demand(src); got != 30 {
			t.Fatalf("noiseless demand = %v, want 30", got)
		}
	}
}

func TestAppDemandZeroMean(t *testing.T) {
	src := dist.NewSource(1)
	a := &App{Mean: 0, NoiseLambda: 20}
	if got := a.Demand(src); got != 0 {
		t.Errorf("zero-mean demand = %v", got)
	}
}

func TestSetAddRemove(t *testing.T) {
	s := &Set{}
	a := &App{ID: 1, Mean: 5}
	b := &App{ID: 2, Mean: 7}
	s.Add(a)
	s.Add(b)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := s.MeanTotal(); got != 12 {
		t.Errorf("MeanTotal = %v, want 12", got)
	}
	if got := s.ByID(2); got != b {
		t.Errorf("ByID(2) = %v", got)
	}
	if got := s.Remove(1); got != a {
		t.Errorf("Remove(1) = %v", got)
	}
	if s.Len() != 1 || s.MeanTotal() != 7 {
		t.Errorf("after remove: len %d total %v", s.Len(), s.MeanTotal())
	}
	if got := s.Remove(99); got != nil {
		t.Errorf("Remove(missing) = %v, want nil", got)
	}
	if got := s.ByID(99); got != nil {
		t.Errorf("ByID(missing) = %v, want nil", got)
	}
}

func TestSetDemandSumsApps(t *testing.T) {
	src := dist.NewSource(1)
	s := &Set{}
	s.Add(&App{ID: 1, Mean: 10})
	s.Add(&App{ID: 2, Mean: 20})
	if got := s.Demand(src); got != 30 {
		t.Errorf("noiseless set demand = %v, want 30", got)
	}
}

func TestSortedByMeanDesc(t *testing.T) {
	s := &Set{}
	s.Add(&App{ID: 1, Mean: 5})
	s.Add(&App{ID: 2, Mean: 9})
	s.Add(&App{ID: 3, Mean: 5})
	got := s.SortedByMeanDesc()
	if got[0].ID != 2 {
		t.Errorf("largest first: got ID %d", got[0].ID)
	}
	// Equal means tie-break by ID.
	if got[1].ID != 1 || got[2].ID != 3 {
		t.Errorf("tie-break wrong: %d, %d", got[1].ID, got[2].ID)
	}
	// Original set order untouched.
	if s.Apps[0].ID != 1 {
		t.Error("SortedByMeanDesc mutated the set")
	}
}

func TestPlaceRandomMix(t *testing.T) {
	src := dist.NewSource(5)
	p, err := PlaceRandomMix(18, 4, SimClasses(), 10, 20, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sets) != 18 {
		t.Fatalf("placed %d servers, want 18", len(p.Sets))
	}
	ids := map[int]bool{}
	for _, set := range p.Sets {
		if set.Len() != 4 {
			t.Fatalf("server has %d apps, want 4", set.Len())
		}
		for _, a := range set.Apps {
			if ids[a.ID] {
				t.Fatalf("duplicate app ID %d", a.ID)
			}
			ids[a.ID] = true
			if a.Mean != a.Class.Weight*10 {
				t.Errorf("app mean %v, want weight %v * 10", a.Mean, a.Class.Weight)
			}
		}
	}
	if len(ids) != 72 {
		t.Errorf("minted %d app IDs, want 72", len(ids))
	}
}

func TestPlaceRandomMixUsesAllClasses(t *testing.T) {
	src := dist.NewSource(6)
	p, err := PlaceRandomMix(50, 4, SimClasses(), 1, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, set := range p.Sets {
		for _, a := range set.Apps {
			seen[a.Class.Name] = true
		}
	}
	if len(seen) != 4 {
		t.Errorf("only %d classes appeared across 200 draws", len(seen))
	}
}

func TestPlaceRandomMixRejectsBadArgs(t *testing.T) {
	src := dist.NewSource(1)
	if _, err := PlaceRandomMix(0, 4, SimClasses(), 1, 0, src); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := PlaceRandomMix(1, 0, SimClasses(), 1, 0, src); err == nil {
		t.Error("zero apps accepted")
	}
	if _, err := PlaceRandomMix(1, 1, nil, 1, 0, src); err == nil {
		t.Error("no classes accepted")
	}
}

func TestScaleToMeanPerServer(t *testing.T) {
	src := dist.NewSource(7)
	p, err := PlaceRandomMix(10, 4, SimClasses(), 1, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	p.ScaleToMeanPerServer(180) // 40% of a 450 W server
	got := p.TotalMean() / 10
	if math.Abs(got-180) > 1e-9 {
		t.Errorf("average per-server mean = %v, want 180", got)
	}
	// Relative weights preserved within a server.
	for _, set := range p.Sets {
		for _, a := range set.Apps {
			ratio := a.Mean / a.Class.Weight
			ref := set.Apps[0].Mean / set.Apps[0].Class.Weight
			if math.Abs(ratio-ref) > 1e-9 {
				t.Fatal("scaling broke relative weights")
			}
		}
	}
}

func TestScaleToMeanPerServerZeroTotal(t *testing.T) {
	p := &Placement{Sets: []*Set{{}}}
	p.ScaleToMeanPerServer(100) // must not panic or divide by zero
	if p.TotalMean() != 0 {
		t.Error("scaling an empty placement changed totals")
	}
}

func TestPlacementNewApp(t *testing.T) {
	src := dist.NewSource(8)
	p, err := PlaceRandomMix(2, 2, SimClasses(), 1, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	a := p.NewApp(SimClasses()[0], 42, 0)
	if a.ID != 4 {
		t.Errorf("NewApp ID = %d, want 4 (after 4 placed apps)", a.ID)
	}
	if a.Mean != 42 {
		t.Errorf("NewApp mean = %v", a.Mean)
	}
}

func TestMigrationBytes(t *testing.T) {
	a := &App{Class: Class{Weight: 5}}
	if got := a.MigrationBytes(); got != 5 {
		t.Errorf("MigrationBytes = %v, want 5", got)
	}
}

func TestSmootherFirstObservation(t *testing.T) {
	s, err := NewSmoother(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Update(100); got != 100 {
		t.Errorf("first Update = %v, want 100 (no zero bias)", got)
	}
}

func TestSmootherEquation(t *testing.T) {
	// Eq. 4: CP = α·new + (1−α)·old.
	s, err := NewSmoother(0.25)
	if err != nil {
		t.Fatal(err)
	}
	s.Update(100)
	got := s.Update(200)
	want := 0.25*200 + 0.75*100
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Update = %v, want %v", got, want)
	}
	if s.Value() != got {
		t.Errorf("Value = %v, want %v", s.Value(), got)
	}
}

func TestSmootherAlphaOnePassesThrough(t *testing.T) {
	s, err := NewSmoother(1)
	if err != nil {
		t.Fatal(err)
	}
	s.Update(5)
	if got := s.Update(17); got != 17 {
		t.Errorf("alpha=1 Update = %v, want 17", got)
	}
}

func TestSmootherRejectsBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		if _, err := NewSmoother(alpha); err == nil {
			t.Errorf("alpha %v accepted", alpha)
		}
	}
}

func TestSmootherReset(t *testing.T) {
	s, _ := NewSmoother(0.5)
	s.Update(10)
	s.Reset()
	if s.Value() != 0 {
		t.Errorf("Value after Reset = %v", s.Value())
	}
	if got := s.Update(40); got != 40 {
		t.Errorf("first Update after Reset = %v, want 40", got)
	}
}

// Property: smoothing converges toward a constant input and the smoothed
// value always lies between min and max of observations.
func TestSmootherBoundsQuick(t *testing.T) {
	f := func(seed uint64, rawAlpha uint8) bool {
		alpha := (float64(rawAlpha%99) + 1) / 100
		s, err := NewSmoother(alpha)
		if err != nil {
			return false
		}
		src := dist.NewSource(seed)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 50; i++ {
			x := src.Uniform(0, 100)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
			v := s.Update(x)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		// Feed a constant; the smoother must converge to it.
		for i := 0; i < 2000; i++ {
			s.Update(42)
		}
		return math.Abs(s.Value()-42) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSetDemand(b *testing.B) {
	src := dist.NewSource(1)
	s := &Set{}
	for i := 0; i < 8; i++ {
		s.Add(&App{ID: i, Mean: 40, NoiseLambda: 20})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Demand(src)
	}
}

func TestSmootherBias(t *testing.T) {
	s, _ := NewSmoother(0.5)
	s.Update(100)
	s.Bias(-30)
	if got := s.Value(); got != 70 {
		t.Errorf("Value after Bias(-30) = %v, want 70", got)
	}
	// Bias never drives the state negative.
	s.Bias(-1000)
	if got := s.Value(); got != 0 {
		t.Errorf("Value after huge negative Bias = %v, want 0", got)
	}
	// Bias on a fresh smoother initializes it (the next Update smooths
	// rather than overwriting).
	f, _ := NewSmoother(0.5)
	f.Bias(40)
	if got := f.Update(0); got != 20 {
		t.Errorf("Update after initializing Bias = %v, want 20", got)
	}
}

func TestAppLastDemandRecorded(t *testing.T) {
	src := dist.NewSource(3)
	a := &App{Mean: 25, NoiseLambda: 0}
	a.Demand(src)
	if a.LastDemand != 25 {
		t.Errorf("LastDemand = %v, want 25", a.LastDemand)
	}
	noisy := &App{Mean: 25, NoiseLambda: 30}
	if got := noisy.Demand(src); noisy.LastDemand != got {
		t.Errorf("LastDemand %v != returned demand %v", noisy.LastDemand, got)
	}
}
