// Command benchguard gates allocation regressions: it parses `go test
// -bench -benchmem` output, extracts allocs/op per benchmark, and
// compares them against a checked-in baseline file. A benchmark whose
// allocs/op exceed the baseline by more than -max-regress fails the
// run — the cheap, machine-stable guard that keeps the telemetry layer
// zero-overhead-when-disabled (`make bench-smoke`). Timings are NOT
// compared: ns/op depends on the machine, allocation counts do not.
//
//	go test -run '^$' -bench '^BenchmarkAllSequential$' -benchtime 1x -benchmem . > bench_smoke.txt
//	go run ./internal/tools/benchguard -input bench_smoke.txt -baseline docs/bench_baseline.txt
//	go run ./internal/tools/benchguard -input bench_smoke.txt -baseline docs/bench_baseline.txt -update
//
// The baseline file holds `<benchmark> <allocs/op>` lines (# comments
// allowed); -update rewrites it from the current input.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		input      = flag.String("input", "", "benchmark output to check (default: stdin)")
		baseline   = flag.String("baseline", "docs/bench_baseline.txt", "checked-in allocs/op baseline")
		maxRegress = flag.Float64("max-regress", 0.10, "maximum tolerated fractional allocs/op increase")
		update     = flag.Bool("update", false, "rewrite the baseline from the input instead of checking")
	)
	flag.Parse()

	in := os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	got, err := parseBenchOutput(in)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no allocs/op rows in input — was -benchmem passed?"))
	}

	if *update {
		if err := writeBaseline(*baseline, got); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote %d baseline entries to %s\n", len(got), *baseline)
		return
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		fatal(fmt.Errorf("%w (run with -update to create the baseline)", err))
	}
	failed := false
	for _, name := range sortedKeys(got) {
		want, ok := base[name]
		if !ok {
			fmt.Printf("benchguard: %s: no baseline entry — add one with -update\n", name)
			failed = true
			continue
		}
		cur := got[name]
		limit := float64(want) * (1 + *maxRegress)
		switch {
		case float64(cur) > limit:
			fmt.Printf("benchguard: FAIL %s: %d allocs/op vs baseline %d (+%.1f%% > %.0f%% allowed)\n",
				name, cur, want, pct(cur, want), *maxRegress*100)
			failed = true
		default:
			fmt.Printf("benchguard: ok   %s: %d allocs/op vs baseline %d (%+.1f%%)\n",
				name, cur, want, pct(cur, want))
		}
	}
	if failed {
		os.Exit(1)
	}
}

func pct(cur, base int64) float64 {
	if base == 0 {
		return 0
	}
	return (float64(cur)/float64(base) - 1) * 100
}

// parseBenchOutput extracts `<benchmark> <allocs/op>` pairs from `go
// test -bench -benchmem` output. The trailing -<GOMAXPROCS> suffix is
// stripped so baselines transfer across machines.
func parseBenchOutput(f *os.File) (map[string]int64, error) {
	out := map[string]int64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i < len(fields); i++ {
			if fields[i] != "allocs/op" {
				continue
			}
			v, err := strconv.ParseInt(fields[i-1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchguard: bad allocs/op in %q: %w", sc.Text(), err)
			}
			name := fields[0]
			if cut := strings.LastIndex(name, "-"); cut > 0 {
				name = name[:cut]
			}
			out[name] = v
		}
	}
	return out, sc.Err()
}

func readBaseline(path string) (map[string]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]int64{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("benchguard: %s:%d: want `<benchmark> <allocs/op>`, got %q", path, line, text)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchguard: %s:%d: %w", path, line, err)
		}
		out[fields[0]] = v
	}
	return out, sc.Err()
}

func writeBaseline(path string, got map[string]int64) error {
	var sb strings.Builder
	sb.WriteString("# allocs/op baseline for `make bench-smoke` (benchguard).\n")
	sb.WriteString("# Regenerate after intentional allocation changes:\n")
	sb.WriteString("#   make bench-baseline\n")
	for _, name := range sortedKeys(got) {
		fmt.Fprintf(&sb, "%s %d\n", name, got[name])
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
