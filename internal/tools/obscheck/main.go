// Command obscheck validates a live willowd observability surface —
// the scrape-side half of `make obs-smoke`. It polls /metrics until
// the daemon has ticked past -min-tick, then asserts:
//
//   - the exposition parses under the strict internal/obs conformance
//     parser (names, label quoting, TYPE lines, float syntax);
//   - the required families are present with the expected types, the
//     wall-clock histograms have observations, and the sim-time energy
//     series carry non-trivial, internally consistent figures (rack
//     series sum to the fleet total);
//   - /v1/efficiency decodes and its scoreboard agrees with itself
//     (cumulative joules positive, rack rows sum to the fleet,
//     work/joule in (0, 1]).
//
// A plain net/http + stdlib binary so smoke scripts need no curl/jq.
//
//	obscheck -addr http://127.0.0.1:8080 -min-tick 50
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strings"
	"time"

	"willow/internal/obs"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8080", "willowd base URL")
		minTick = flag.Int("min-tick", 20, "wait until the daemon has run at least this many ticks")
		wait    = flag.Duration("wait", 30*time.Second, "how long to wait for -min-tick before giving up")
	)
	flag.Parse()

	scrape, err := waitForTick(*addr, *minTick, *wait)
	if err != nil {
		fatal(err)
	}
	if err := checkMetrics(scrape); err != nil {
		fatal(fmt.Errorf("/metrics: %w", err))
	}
	if err := checkEfficiency(*addr); err != nil {
		fatal(fmt.Errorf("/v1/efficiency: %w", err))
	}
	tick, _ := scrape.Value("willow_tick")
	joules, _ := scrape.Value("willow_energy_joules_total")
	wpj, _ := scrape.Value("willow_work_per_joule")
	fmt.Printf("obscheck: OK — tick %.0f, %.0f J consumed, %.4f work/joule, %d samples\n",
		tick, joules, wpj, len(scrape.Samples))
}

// waitForTick polls /metrics until willow_tick reaches minTick,
// re-validating parseability on every poll.
func waitForTick(addr string, minTick int, wait time.Duration) (*obs.Scrape, error) {
	deadline := time.Now().Add(wait)
	for {
		scrape, err := fetchMetrics(addr)
		if err == nil {
			if tick, ok := scrape.Value("willow_tick"); ok && tick >= float64(minTick) {
				return scrape, nil
			}
			err = fmt.Errorf("daemon has not reached tick %d yet", minTick)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("giving up after %v: %w", wait, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func fetchMetrics(addr string) (*obs.Scrape, error) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return nil, fmt.Errorf("content type %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return obs.ParseText(strings.NewReader(string(body)))
}

func checkMetrics(s *obs.Scrape) error {
	for name, typ := range map[string]string{
		"willow_tick":                   "gauge",
		"willow_uptime_seconds":         "gauge",
		"willow_energy_joules_total":    "counter",
		"willow_work_joules_total":      "counter",
		"willow_heat_joules_total":      "counter",
		"willow_shed_joules_total":      "counter",
		"willow_work_per_joule":         "gauge",
		"willow_rack_joules_total":      "counter",
		"willow_hub_published_total":    "counter",
		"willow_hub_subscribers":        "gauge",
		"willow_tick_phase_seconds":     "histogram",
		"willow_hub_publish_seconds":    "histogram",
		"willow_snapshot_write_seconds": "histogram",
	} {
		if got := s.Types[name]; got != typ {
			return fmt.Errorf("family %s declared %q, want %q", name, got, typ)
		}
	}

	joules, ok := s.Value("willow_energy_joules_total")
	if !ok || joules <= 0 {
		return fmt.Errorf("energy joules = %v/%v, want > 0", joules, ok)
	}
	if wpj, ok := s.Value("willow_work_per_joule"); !ok || wpj <= 0 || wpj > 1 {
		return fmt.Errorf("work/joule = %v/%v, want in (0, 1]", wpj, ok)
	}
	var rackSum float64
	racks := 0
	for _, sm := range s.Samples {
		if sm.Name == "willow_rack_joules_total" {
			rackSum += sm.Value
			racks++
		}
	}
	if racks == 0 {
		return fmt.Errorf("no willow_rack_joules_total series")
	}
	if math.Abs(rackSum-joules) > 1e-6*joules {
		return fmt.Errorf("rack joules sum %v != fleet %v", rackSum, joules)
	}

	// The live daemon's wall-clock histograms must be seeing real ticks.
	for _, phase := range []string{"observe", "allocate", "consume"} {
		n, ok := s.Value("willow_tick_phase_seconds_count", obs.Label{Name: "phase", Value: phase})
		if !ok || n <= 0 {
			return fmt.Errorf("phase %q histogram count = %v/%v, want > 0", phase, n, ok)
		}
	}
	if n, ok := s.Value("willow_hub_publish_seconds_count"); !ok || n <= 0 {
		return fmt.Errorf("hub publish histogram count = %v/%v, want > 0", n, ok)
	}
	return nil
}

// efficiencyView mirrors the /v1/efficiency payload shape (the fields
// the check needs; see server.EfficiencyView).
type efficiencyView struct {
	Tick        int     `json:"tick"`
	TickSeconds float64 `json:"tick_seconds"`
	Cumulative  struct {
		Joules       float64 `json:"joules"`
		WorkJoules   float64 `json:"work_joules"`
		WorkPerJoule float64 `json:"work_per_joule"`
	} `json:"cumulative"`
	Window struct {
		WindowTicks int     `json:"window_ticks"`
		Joules      float64 `json:"joules"`
	} `json:"window"`
	Racks []struct {
		Node   int     `json:"node"`
		Joules float64 `json:"joules"`
	} `json:"racks"`
	Classes []struct {
		Class        string  `json:"class"`
		ServedJoules float64 `json:"served_joules"`
	} `json:"classes"`
}

func checkEfficiency(addr string) error {
	resp, err := http.Get(addr + "/v1/efficiency")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	var eff efficiencyView
	if err := json.NewDecoder(resp.Body).Decode(&eff); err != nil {
		return err
	}
	if eff.Tick <= 0 || eff.TickSeconds <= 0 {
		return fmt.Errorf("tick %d / tick_seconds %v, want > 0", eff.Tick, eff.TickSeconds)
	}
	if eff.Cumulative.Joules <= 0 {
		return fmt.Errorf("cumulative joules %v, want > 0", eff.Cumulative.Joules)
	}
	if wpj := eff.Cumulative.WorkPerJoule; wpj <= 0 || wpj > 1 {
		return fmt.Errorf("work/joule %v, want in (0, 1]", wpj)
	}
	if eff.Window.WindowTicks <= 0 || eff.Window.Joules <= 0 {
		return fmt.Errorf("window %d ticks / %v J, want > 0", eff.Window.WindowTicks, eff.Window.Joules)
	}
	if len(eff.Racks) == 0 || len(eff.Classes) == 0 {
		return fmt.Errorf("missing rack (%d) or class (%d) rows", len(eff.Racks), len(eff.Classes))
	}
	var rackSum float64
	for _, r := range eff.Racks {
		rackSum += r.Joules
	}
	if math.Abs(rackSum-eff.Cumulative.Joules) > 1e-6*eff.Cumulative.Joules {
		return fmt.Errorf("rack rows sum %v != cumulative %v", rackSum, eff.Cumulative.Joules)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obscheck:", err)
	os.Exit(1)
}
