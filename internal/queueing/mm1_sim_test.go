package queueing

import (
	"math"
	"testing"

	"willow/internal/dist"
	"willow/internal/sim"
)

// TestResponseTimeMatchesDES cross-validates the analytic M/M/1 response
// time (which equals the M/G/1-PS formula S/(1−ρ) for exponential
// service) against a discrete-event simulation built on the kernel's
// process API: a Poisson arrival process feeding a single FIFO server.
// Two independent implementations — closed form and event simulation —
// must agree, which validates both.
func TestResponseTimeMatchesDES(t *testing.T) {
	const (
		serviceTicks = 300.0 // mean service time S
		requests     = 40000
	)
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		rho := rho
		t.Run("", func(t *testing.T) {
			src := dist.NewSource(99)
			e := sim.New()
			server := sim.NewResource(e, 1)

			var totalResponse float64
			completed := 0

			interarrival := serviceTicks / rho
			e.Go("generator", func(g *sim.Proc) {
				for i := 0; i < requests; i++ {
					gap := sim.Tick(math.Round(src.Exponential(interarrival)))
					g.Sleep(gap)
					service := sim.Tick(math.Round(src.Exponential(serviceTicks)))
					if service < 1 {
						service = 1
					}
					e.Go("req", func(r *sim.Proc) {
						start := r.Now()
						server.Acquire(r, 1)
						r.Sleep(service)
						server.Release(1)
						totalResponse += float64(r.Now() - start)
						completed++
					})
				}
			})
			if err := e.Run(math.MaxInt32); err != nil {
				t.Fatal(err)
			}
			if completed != requests {
				t.Fatalf("completed %d/%d requests", completed, requests)
			}
			measured := totalResponse / float64(completed)
			analytic := ResponseTime(rho, serviceTicks)
			if rel := math.Abs(measured-analytic) / analytic; rel > 0.08 {
				t.Errorf("rho=%v: DES mean response %v vs analytic %v (%.1f%% off)",
					rho, measured, analytic, rel*100)
			}
		})
	}
}
