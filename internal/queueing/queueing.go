// Package queueing supplies the response-time model that turns Willow's
// power numbers into user-visible QoS. The paper's workloads are
// "driven by user queries ... e.g. transactional workloads"
// (Section IV-E) and its goal is "to minimize QoS impact by dynamic
// energy allocation and task migrations" (Section VI) — but the paper
// never quantifies latency. This package does, with the classic
// processor-sharing queue: a server at utilization ρ serving requests of
// mean service time S has mean response time
//
//	T(ρ) = S / (1 − ρ)        (M/G/1-PS)
//
// which is exact for M/G/1 under processor sharing (a good model of a
// multi-threaded web server) and exposes the latency cliff near
// saturation that consolidation decisions trade against.
package queueing

import (
	"fmt"
	"math"

	"willow/internal/metrics"
)

// ResponseTime returns the mean response time of an M/G/1-PS server at
// utilization rho with mean service time service. It returns +Inf at or
// beyond saturation, and panics on a non-positive service time or a
// negative utilization (programming errors, not load conditions).
func ResponseTime(rho, service float64) float64 {
	if service <= 0 {
		panic(fmt.Sprintf("queueing: non-positive service time %v", service))
	}
	if rho < 0 {
		panic(fmt.Sprintf("queueing: negative utilization %v", rho))
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return service / (1 - rho)
}

// Stretch returns the slowdown factor T/S at utilization rho — how many
// times longer a request takes than its bare service time.
func Stretch(rho float64) float64 {
	if rho >= 1 {
		return math.Inf(1)
	}
	if rho < 0 {
		rho = 0
	}
	return 1 / (1 - rho)
}

// SLO describes a latency service-level objective.
type SLO struct {
	// Service is the request's bare service time (any unit).
	Service float64
	// Target is the response-time bound in the same unit.
	Target float64
}

// MaxUtilization returns the highest utilization at which the SLO is
// still met: T(ρ) ≤ Target ⇔ ρ ≤ 1 − S/Target.
func (s SLO) MaxUtilization() float64 {
	if s.Service <= 0 || s.Target <= 0 {
		return 0
	}
	u := 1 - s.Service/s.Target
	if u < 0 {
		return 0
	}
	return u
}

// Met reports whether a server at utilization rho satisfies the SLO.
func (s SLO) Met(rho float64) bool {
	return rho <= s.MaxUtilization()+1e-12
}

// Tracker accumulates demand-weighted response-time statistics across a
// run: each observation is one server-tick with a served utilization and
// the watts of demand it carried (busy servers weigh more, and shed
// demand counts as an SLO miss — a dropped request has no response time
// at all).
//
// Offered demand splits into three disjoint buckets:
//
//	ok    — served on a server meeting the SLO,
//	miss  — served, but slower than the SLO allows (or saturated),
//	shed  — not served at all.
type Tracker struct {
	SLO SLO

	weightedStretch float64 // Σ served · stretch, non-saturated only
	stretchWeight   float64 // Σ served, non-saturated only
	okWeight        float64
	missWeight      float64
	shedWeight      float64
	observations    int
	hist            *metrics.Histogram // stretch distribution, demand-weighted
}

// NewTracker returns a tracker against the given SLO.
func NewTracker(slo SLO) *Tracker {
	// Stretch 1 .. ~1100 in 5%-relative-error buckets covers everything
	// up to the saturation clamp.
	h, err := metrics.NewHistogram(1, 1.25, 32)
	if err != nil {
		panic(err) // constants are compile-time correct
	}
	return &Tracker{SLO: slo, hist: h}
}

// Observe records one server-tick: servedWatts of demand ran at
// utilization rho, shedWatts were dropped.
func (t *Tracker) Observe(rho, servedWatts, shedWatts float64) {
	t.observations++
	if shedWatts > 0 {
		t.shedWeight += shedWatts
	}
	if servedWatts <= 0 {
		return
	}
	if rho >= 1 {
		t.missWeight += servedWatts
		return
	}
	// Clamp the stretch contribution at 99.9 % utilization: the PS
	// formula diverges as ρ → 1, but real requests time out long before —
	// such observations are already classified as SLO misses, so the
	// clamp only keeps the *mean* of the served traffic finite.
	stretchRho := rho
	if stretchRho > 0.999 {
		stretchRho = 0.999
	}
	st := Stretch(stretchRho)
	t.weightedStretch += servedWatts * st
	t.stretchWeight += servedWatts
	t.hist.Add(st, servedWatts)
	if t.SLO.Met(rho) {
		t.okWeight += servedWatts
	} else {
		t.missWeight += servedWatts
	}
}

// MeanStretch returns the demand-weighted mean slowdown of served,
// non-saturated requests (1 when nothing was served).
func (t *Tracker) MeanStretch() float64 {
	if t.stretchWeight <= 0 {
		return 1
	}
	return t.weightedStretch / t.stretchWeight
}

// MeanResponseTime returns the demand-weighted mean response time under
// the tracker's SLO service time.
func (t *Tracker) MeanResponseTime() float64 {
	return t.MeanStretch() * t.SLO.Service
}

// SLOMissFraction returns the fraction of offered demand that was shed
// or served too slowly.
func (t *Tracker) SLOMissFraction() float64 {
	total := t.okWeight + t.missWeight + t.shedWeight
	if total <= 0 {
		return 0
	}
	return (t.missWeight + t.shedWeight) / total
}

// StretchQuantile returns an upper bound for the q-quantile of the
// demand-weighted stretch distribution of served requests (1 when
// nothing was served).
func (t *Tracker) StretchQuantile(q float64) float64 {
	if t.hist == nil || t.hist.Total() <= 0 {
		return 1
	}
	return t.hist.Quantile(q)
}

// Observations returns how many server-ticks were recorded.
func (t *Tracker) Observations() int { return t.observations }
