package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResponseTime(t *testing.T) {
	if got := ResponseTime(0, 2); got != 2 {
		t.Errorf("T(0) = %v, want bare service time 2", got)
	}
	if got := ResponseTime(0.5, 2); got != 4 {
		t.Errorf("T(0.5) = %v, want 4", got)
	}
	if got := ResponseTime(1, 2); !math.IsInf(got, 1) {
		t.Errorf("T(1) = %v, want +Inf", got)
	}
	if got := ResponseTime(1.5, 2); !math.IsInf(got, 1) {
		t.Errorf("T(1.5) = %v, want +Inf", got)
	}
}

func TestResponseTimePanics(t *testing.T) {
	for _, c := range []struct{ rho, s float64 }{{0.5, 0}, {-0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ResponseTime(%v, %v) did not panic", c.rho, c.s)
				}
			}()
			ResponseTime(c.rho, c.s)
		}()
	}
}

func TestStretch(t *testing.T) {
	if got := Stretch(0); got != 1 {
		t.Errorf("Stretch(0) = %v", got)
	}
	if got := Stretch(0.9); math.Abs(got-10) > 1e-9 {
		t.Errorf("Stretch(0.9) = %v, want 10", got)
	}
	if got := Stretch(-0.5); got != 1 {
		t.Errorf("Stretch(-0.5) = %v, want clamp to 1", got)
	}
	if got := Stretch(1); !math.IsInf(got, 1) {
		t.Errorf("Stretch(1) = %v, want +Inf", got)
	}
}

func TestSLOMaxUtilization(t *testing.T) {
	slo := SLO{Service: 1, Target: 4}
	if got := slo.MaxUtilization(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("MaxUtilization = %v, want 0.75", got)
	}
	if !slo.Met(0.75) || slo.Met(0.76) {
		t.Error("Met boundary wrong")
	}
	// Impossible SLO: target below the bare service time.
	hopeless := SLO{Service: 2, Target: 1}
	if got := hopeless.MaxUtilization(); got != 0 {
		t.Errorf("impossible SLO max utilization = %v, want 0", got)
	}
	if got := (SLO{}).MaxUtilization(); got != 0 {
		t.Errorf("zero SLO max utilization = %v", got)
	}
}

func TestTrackerBasics(t *testing.T) {
	tr := NewTracker(SLO{Service: 1, Target: 4}) // SLO met up to 75 %
	tr.Observe(0.5, 100, 0)                      // stretch 2, ok
	tr.Observe(0.9, 100, 0)                      // stretch 10, miss
	tr.Observe(0.5, 0, 50)                       // all shed
	if got := tr.Observations(); got != 3 {
		t.Errorf("Observations = %d", got)
	}
	wantStretch := (100*2.0 + 100*10.0) / 200
	if got := tr.MeanStretch(); math.Abs(got-wantStretch) > 1e-9 {
		t.Errorf("MeanStretch = %v, want %v", got, wantStretch)
	}
	if got := tr.MeanResponseTime(); math.Abs(got-wantStretch) > 1e-9 {
		t.Errorf("MeanResponseTime = %v, want %v (service 1)", got, wantStretch)
	}
	// Misses: the 0.9-utilization 100 W plus the 50 W shed, of 250 total.
	if got := tr.SLOMissFraction(); math.Abs(got-150.0/250) > 1e-9 {
		t.Errorf("SLOMissFraction = %v, want 0.6", got)
	}
}

func TestTrackerSaturation(t *testing.T) {
	tr := NewTracker(SLO{Service: 1, Target: 10})
	tr.Observe(1.0, 80, 0) // saturated: counted as miss, excluded from stretch
	if got := tr.MeanStretch(); got != 1 {
		t.Errorf("MeanStretch with only saturated obs = %v, want 1", got)
	}
	if got := tr.SLOMissFraction(); got != 1 {
		t.Errorf("SLOMissFraction = %v, want 1", got)
	}
}

func TestTrackerEmpty(t *testing.T) {
	tr := NewTracker(SLO{Service: 1, Target: 2})
	if tr.MeanStretch() != 1 || tr.SLOMissFraction() != 0 {
		t.Error("empty tracker stats wrong")
	}
}

// Property: SLOMissFraction stays in [0, 1] and MeanStretch >= 1 for any
// observation sequence.
func TestTrackerInvariantsQuick(t *testing.T) {
	f := func(obs []uint16) bool {
		tr := NewTracker(SLO{Service: 1, Target: 5})
		for _, o := range obs {
			rho := float64(o%120) / 100 // 0 .. 1.19
			served := float64((o >> 7) % 100)
			shed := float64((o >> 11) % 20)
			tr.Observe(rho, served, shed)
		}
		miss := tr.SLOMissFraction()
		return miss >= 0 && miss <= 1 && tr.MeanStretch() >= 1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrackerObserve(b *testing.B) {
	tr := NewTracker(SLO{Service: 1, Target: 4})
	for i := 0; i < b.N; i++ {
		tr.Observe(float64(i%95)/100, 100, 5)
	}
}
