package cluster

import (
	"testing"
)

// TestPolicyWillowIdentity is the byte-identity pin of the policy seam:
// selecting the "willow" policy must reproduce the default (nil-policy)
// controller exactly — same event stream, same Result — because every
// hook of policy.Willow declines and the built-in arithmetic runs. The
// 1k-server fleet exercises the sharded consume path (caps refresh
// through the policy on every shard) at multiple shard counts, and the
// default Poisson noise keeps the controller's random streams live, so
// a policy that consumed randomness or perturbed a float would diverge.
func TestPolicyWillowIdentity(t *testing.T) {
	fanout := []int{10, 10, 10}
	for _, shards := range []int{1, 4} {
		base := fleetConfig(fanout, 0.85)
		base.Warmup = 8
		base.Ticks = 24
		base.Core.Shards = shards

		want := captureScenario(t, base)

		sel := base
		sel.Policy = "willow"
		got := captureScenario(t, sel)

		if got.Events != want.Events {
			t.Errorf("shards=%d: willow policy event stream diverged from the default controller", shards)
		}
		if got.Result != want.Result {
			t.Errorf("shards=%d: willow policy Result diverged from the default controller", shards)
		}
	}
}

// TestPolicyShardInvariance extends the sharding determinism contract
// to the stateful policies: integral and mpc keep all ThermalCap state
// in per-server slots, so any shard count must produce byte-identical
// runs (and the race detector sees the concurrent solver writes).
func TestPolicyShardInvariance(t *testing.T) {
	fanout := []int{10, 10, 10}
	for _, pol := range []string{"integral", "mpc"} {
		base := fleetConfig(fanout, 0.85)
		base.Warmup = 8
		base.Ticks = 24
		base.Policy = pol

		run := func(shards int) goldenScenario {
			cfg := base
			cfg.Core.Shards = shards
			return captureScenario(t, cfg)
		}
		want := run(1)
		for _, shards := range []int{4, 8} {
			got := run(shards)
			if got.Events != want.Events {
				t.Errorf("%s shards=%d: event stream diverged from single-threaded run", pol, shards)
			}
			if got.Result != want.Result {
				t.Errorf("%s shards=%d: Result diverged from single-threaded run", pol, shards)
			}
		}
	}
}

// benchFleetPolicy measures Machine.Step with a controller policy
// selected, same shape as benchFleet: 1k servers, sharded, noise off.
func benchFleetPolicy(b *testing.B, pol string) {
	fanout := []int{10, 10, 10}
	cfg := fleetConfig(fanout, 1)
	cfg.Core.NoiseLambda = -1
	cfg.Core.Shards = 8
	cfg.Policy = pol
	cfg.Warmup = 1
	cfg.Ticks = 1 << 30
	m, err := NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		m.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
	b.StopTimer()
	perServerTick := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / 1000
	b.ReportMetric(perServerTick, "ns/server-tick")
}

// BenchmarkFleetTickPolicy prices policy dispatch on the hot path: the
// willow row must match the nil-policy BenchmarkFleetTick/1k allocation
// profile (the seam adds interface calls, not allocations), and the
// integral/mpc rows price the alternative controllers' per-tick state
// updates.
func BenchmarkFleetTickPolicy(b *testing.B) {
	for _, pol := range []string{"willow", "integral", "mpc"} {
		b.Run(pol, func(b *testing.B) { benchFleetPolicy(b, pol) })
	}
}
