package cluster

import (
	"math"
	"testing"

	"willow/internal/power"
)

// shortConfig shrinks a paper config so tests stay fast.
func shortConfig(u float64) Config {
	cfg := PaperConfig(u)
	cfg.Warmup = 60
	cfg.Ticks = 220
	return cfg
}

func groupMeans(r *Result) (cool, hot float64) {
	for i := 0; i < 14; i++ {
		cool += r.MeanPower[i] / 14
	}
	for i := 14; i < 18; i++ {
		hot += r.MeanPower[i] / 4
	}
	return cool, hot
}

func TestRunValidation(t *testing.T) {
	cfg := PaperConfig(0.5)
	cfg.Utilization = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero utilization accepted")
	}
	cfg = PaperConfig(0.5)
	cfg.Ticks = 10
	cfg.Warmup = 20
	if _, err := Run(cfg); err == nil {
		t.Error("warmup >= ticks accepted")
	}
	cfg = PaperConfig(0.5)
	cfg.HotServers = []int{99}
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range hot server accepted")
	}
	cfg = PaperConfig(0.5)
	cfg.Fanout = nil
	if _, err := Run(cfg); err == nil {
		t.Error("empty fanout accepted")
	}
}

// TestHotZoneConsumesLess reproduces the Fig. 5 relationship: servers in
// the 40 °C zone draw less power than the 25 °C zone at mid utilization,
// because their thermal constraint presents less surplus and Willow moves
// work away.
func TestHotZoneConsumesLess(t *testing.T) {
	r, err := Run(shortConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	cool, hot := groupMeans(r)
	if hot >= cool {
		t.Errorf("hot-zone mean power %v >= cool-zone %v", hot, cool)
	}
}

// TestPowerIncreasesWithUtilization: the Fig. 5 x-axis direction — more
// offered load, more consumed power, until thermal limits bind.
func TestPowerIncreasesWithUtilization(t *testing.T) {
	var prev float64
	for _, u := range []float64{0.2, 0.5, 0.8} {
		r, err := Run(shortConfig(u))
		if err != nil {
			t.Fatal(err)
		}
		cool, _ := groupMeans(r)
		if cool <= prev {
			t.Errorf("cool-zone power at U=%v is %v, not above previous %v", u, cool, prev)
		}
		prev = cool
	}
}

// TestTemperatureShapes reproduces Fig. 6: at low utilization each zone
// sits near its own ambient (far apart); at high utilization the zones
// converge toward the thermal limit, and the limit is never violated.
func TestTemperatureShapes(t *testing.T) {
	low, err := Run(shortConfig(0.15))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(shortConfig(0.9))
	if err != nil {
		t.Fatal(err)
	}
	gap := func(r *Result) float64 {
		var cool, hot float64
		for i := 0; i < 14; i++ {
			cool += r.MeanTemp[i] / 14
		}
		for i := 14; i < 18; i++ {
			hot += r.MeanTemp[i] / 4
		}
		return hot - cool
	}
	if g := gap(low); g < 5 {
		t.Errorf("low-utilization zone temperature gap %v, want clearly positive", g)
	}
	if gl, gh := gap(low), gap(high); gh >= gl {
		t.Errorf("temperature gap did not shrink with utilization: low %v, high %v", gl, gh)
	}
	if low.MaxTemp > 70+1e-6 || high.MaxTemp > 70+1e-6 {
		t.Errorf("thermal limit violated: maxT low=%v high=%v", low.MaxTemp, high.MaxTemp)
	}
}

// TestConsolidationSavesAtLowUtilization reproduces the Fig. 7 setting:
// at 40 % utilization some servers sleep, and the hot-zone servers — the
// ones Willow works hardest to drain — save at least as much as the
// average cool server.
func TestConsolidationSavesAtLowUtilization(t *testing.T) {
	r, err := Run(shortConfig(0.2))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range r.PowerSaved {
		total += p
	}
	if total <= 0 {
		t.Fatal("no power saved by consolidation at 20% utilization")
	}
	if r.ConsolidationMigrations == 0 {
		t.Error("no consolidation migrations at low utilization")
	}
}

// TestMigrationCausesCrossOver reproduces Fig. 9's structure:
// consolidation-driven migrations dominate at low utilization,
// demand-driven at high.
func TestMigrationCausesCrossOver(t *testing.T) {
	low, err := Run(shortConfig(0.15))
	if err != nil {
		t.Fatal(err)
	}
	high, err := Run(shortConfig(0.85))
	if err != nil {
		t.Fatal(err)
	}
	if low.ConsolidationMigrations <= low.DemandMigrations {
		t.Errorf("at U=15%%: consolidation %d <= demand %d", low.ConsolidationMigrations, low.DemandMigrations)
	}
	if high.DemandMigrations <= high.ConsolidationMigrations {
		t.Errorf("at U=85%%: demand %d <= consolidation %d", high.DemandMigrations, high.ConsolidationMigrations)
	}
}

// TestSwitchPowerRoughlyUniform reproduces the Fig. 11 observation: the
// locality preference spreads traffic so level-1 switches draw nearly the
// same power.
func TestSwitchPowerRoughlyUniform(t *testing.T) {
	r, err := Run(shortConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SwitchPower) != 6 {
		t.Fatalf("%d level-1 switches, want 6", len(r.SwitchPower))
	}
	mean := 0.0
	for _, p := range r.SwitchPower {
		mean += p / 6
	}
	for i, p := range r.SwitchPower {
		if math.Abs(p-mean) > 0.5*mean {
			t.Errorf("switch %d power %v deviates from mean %v by >50%%", i, p, mean)
		}
	}
}

// TestStatsPropagated: the result exposes the controller accounting the
// property experiments rely on.
func TestStatsPropagated(t *testing.T) {
	r, err := Run(shortConfig(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.MessagesUp == 0 {
		t.Error("message accounting missing from result")
	}
	if r.Stats.MaxLinkMessagesPerTick > 2 {
		t.Errorf("Property 3 violated: %d messages on a link in one tick", r.Stats.MaxLinkMessagesPerTick)
	}
	if r.Stats.PingPongs != 0 {
		t.Errorf("ping-pongs: %d", r.Stats.PingPongs)
	}
	if len(r.SwitchMigrationTraffic) != 6 {
		t.Errorf("%d switch migration entries, want 6", len(r.SwitchMigrationTraffic))
	}
}

// TestRunDeterminism: identical configs give identical results.
func TestRunDeterminism(t *testing.T) {
	a, err := Run(shortConfig(0.45))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shortConfig(0.45))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEnergy != b.TotalEnergy {
		t.Errorf("energy diverged: %v vs %v", a.TotalEnergy, b.TotalEnergy)
	}
	if len(a.Stats.Migrations) != len(b.Stats.Migrations) {
		t.Errorf("migration counts diverged: %d vs %d", len(a.Stats.Migrations), len(b.Stats.Migrations))
	}
}

// TestSeedChangesRun: different seeds give different noise realizations.
func TestSeedChangesRun(t *testing.T) {
	cfg1 := shortConfig(0.45)
	cfg2 := shortConfig(0.45)
	cfg2.Seed = 777
	a, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEnergy == b.TotalEnergy {
		t.Error("different seeds produced identical energy (suspicious)")
	}
}

func TestUtilizationSweep(t *testing.T) {
	rs, err := UtilizationSweep([]float64{0.3, 0.6}, func(c *Config) {
		c.Warmup = 40
		c.Ticks = 120
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d results, want 2", len(rs))
	}
	if rs[0].Config.Utilization != 0.3 || rs[1].Config.Utilization != 0.6 {
		t.Error("sweep order wrong")
	}
}

// TestVariableSupplyAdaptation: a plunging supply forces adaptation
// without ever violating budgets or dropping everything on the floor.
func TestVariableSupplyAdaptation(t *testing.T) {
	cfg := shortConfig(0.5)
	cfg.Supply = power.Trace{8100, 8100, 5200, 5200, 5200, 8100, 8100, 6400, 8100, 8100}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stats.Migrations) == 0 {
		t.Error("no adaptation to a plunging supply")
	}
	if r.Stats.PingPongs != 0 {
		t.Errorf("ping-pongs under supply swings: %d", r.Stats.PingPongs)
	}
}

func BenchmarkPaperRun(b *testing.B) {
	cfg := PaperConfig(0.5)
	cfg.Warmup = 50
	cfg.Ticks = 150
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPriorityClassesProtectCriticalDemand: under scarcity the critical
// class keeps a higher service level than the lowest class.
func TestPriorityClassesProtectCriticalDemand(t *testing.T) {
	cfg := shortConfig(0.85)
	cfg.PriorityClasses = 3
	cfg.Supply = power.Constant(18 * 320) // scarce: ~75% of demand at U=85%
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	crit := r.Stats.ServiceLevel(0)
	low := r.Stats.ServiceLevel(2)
	if crit <= low {
		t.Errorf("critical service %v <= lowest class %v", crit, low)
	}
	if crit < 0.9 {
		t.Errorf("critical service level %v, want >= 0.9", crit)
	}
}

// TestIPCFlowsTracked: flows populate the hop metric, and migrations can
// separate initially co-located pairs (hops >= 0 always).
func TestIPCFlowsTracked(t *testing.T) {
	cfg := shortConfig(0.5)
	cfg.IPCFlows = 20
	cfg.IPCRate = 3
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanFlowHops <= 0 {
		t.Errorf("MeanFlowHops = %v, want positive (random pairs are mostly remote)", r.MeanFlowHops)
	}
	if r.MeanFlowHops > 5 {
		t.Errorf("MeanFlowHops = %v, impossible in a height-3 tree", r.MeanFlowHops)
	}
}

// TestRunAllMatchesSerial: the concurrent sweep returns exactly what
// serial runs produce, in input order.
func TestRunAllMatchesSerial(t *testing.T) {
	utils := []float64{0.3, 0.5, 0.7}
	configs := make([]Config, len(utils))
	for i, u := range utils {
		configs[i] = shortConfig(u)
	}
	parallel, err := RunAll(configs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range configs {
		serial, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if parallel[i].TotalEnergy != serial.TotalEnergy {
			t.Errorf("point %d: parallel energy %v != serial %v", i, parallel[i].TotalEnergy, serial.TotalEnergy)
		}
		if parallel[i].Config.Utilization != utils[i] {
			t.Errorf("point %d out of order", i)
		}
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	bad := shortConfig(0.5)
	bad.Utilization = -1
	if _, err := RunAll([]Config{shortConfig(0.3), bad}); err == nil {
		t.Error("RunAll swallowed an error")
	}
}

func TestPerServerPowerValidation(t *testing.T) {
	cfg := shortConfig(0.5)
	cfg.PerServerPower = []power.ServerModel{{Static: 10, Peak: 100}} // wrong count
	if _, err := Run(cfg); err == nil {
		t.Error("mismatched per-server power list accepted")
	}
}

// TestHeterogeneousFleetScalesPerServer: each server's workload targets
// its own dynamic range, so wimpy nodes are not overloaded at placement.
func TestHeterogeneousFleetScalesPerServer(t *testing.T) {
	cfg := shortConfig(0.5)
	cfg.HotServers = nil
	cfg.PerServerPower = make([]power.ServerModel, 18)
	for i := range cfg.PerServerPower {
		if i%2 == 0 {
			cfg.PerServerPower[i] = power.ServerModel{Static: 135, Peak: 450}
		} else {
			cfg.PerServerPower[i] = power.ServerModel{Static: 30, Peak: 150}
		}
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No server may draw beyond its own peak.
	for i, p := range r.MeanPower {
		if p > cfg.PerServerPower[i].Peak+1e-6 {
			t.Errorf("server %d draws %v over its %v W peak", i, p, cfg.PerServerPower[i].Peak)
		}
	}
	if r.Stats.PingPongs != 0 {
		t.Errorf("ping-pongs in heterogeneous fleet: %d", r.Stats.PingPongs)
	}
}
