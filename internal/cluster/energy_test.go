package cluster

import (
	"fmt"
	"math"
	"testing"

	"willow/internal/power"
)

// energyConfig is a shortened paper run with enough pressure to shed
// demand (so every energy figure is non-trivial) and a diurnal profile
// so consumption actually varies.
func energyConfig(u float64, shards int) Config {
	cfg := shortConfig(u)
	cfg.DemandProfile = power.Sine{Base: 1, Amplitude: 0.4, Period: 60}
	cfg.Core.Shards = shards
	cfg.Core.EnergyEvents = true
	return cfg
}

// TestEnergyShardInvariance pins the acceptance criterion: the full
// energy report — fleet, per-rack, per-class, every float — is
// byte-identical for Config.Shards 1 and 4 (and 2, for good measure).
func TestEnergyShardInvariance(t *testing.T) {
	var want string
	for _, shards := range []int{1, 2, 4} {
		res, err := Run(energyConfig(0.8, shards))
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%+v", res.Energy)
		if shards == 1 {
			want = got
			if res.Energy.Fleet.Joules <= 0 || res.Energy.Fleet.WorkJoules <= 0 {
				t.Fatalf("trivial energy report: %s", got)
			}
			if len(res.Energy.Racks) == 0 || len(res.Energy.Classes) == 0 {
				t.Fatalf("missing rack/class breakdown: %s", got)
			}
			continue
		}
		if got != want {
			t.Errorf("shards=%d energy report diverged:\n got %s\nwant %s", shards, got, want)
		}
	}
}

// TestEnergyReportConsistency checks the rolled-up report against the
// run's other measurements: joules equal the whole-run consumed
// watt-ticks × TickSeconds, and shed joules match DroppedWattTicks.
func TestEnergyReportConsistency(t *testing.T) {
	cfg := energyConfig(0.9, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Energy
	if e.TickSeconds != 1 {
		t.Errorf("TickSeconds = %v, want default 1", e.TickSeconds)
	}
	if got, want := e.Fleet.ShedJoules, res.DroppedWattTicks*e.TickSeconds; math.Abs(got-want) > 1e-9*(want+1) {
		t.Errorf("shed joules %v, want %v", got, want)
	}
	var rackJ float64
	for _, r := range e.Racks {
		rackJ += r.Totals.Joules
	}
	if math.Abs(rackJ-e.Fleet.Joules) > 1e-9*e.Fleet.Joules {
		t.Errorf("rack joules sum %v != fleet %v", rackJ, e.Fleet.Joules)
	}
	if wpj := e.Fleet.WorkPerJoule(); wpj <= 0 || wpj >= 1 {
		t.Errorf("work/joule = %v, want in (0, 1) for a fleet with a static floor", wpj)
	}
}
