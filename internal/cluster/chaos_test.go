package cluster

import (
	"strings"
	"testing"

	"willow/internal/chaos"
)

func TestChaosTopology(t *testing.T) {
	servers, pmus, racks, err := ChaosTopology([]int{2, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if servers != 18 {
		t.Errorf("servers = %d, want 18", servers)
	}
	// Internal non-root nodes under {2,3,3}: two level-2 PMUs (IDs 1-2)
	// and six level-1 PMUs (IDs 3-8).
	if want := []int{1, 2, 3, 4, 5, 6, 7, 8}; len(pmus) != len(want) {
		t.Fatalf("pmus = %v, want %v", pmus, want)
	} else {
		for i, id := range want {
			if pmus[i] != id {
				t.Fatalf("pmus = %v, want %v", pmus, want)
			}
		}
	}
	if len(racks) != 6 {
		t.Fatalf("racks = %v, want 6 racks", racks)
	}
	seen := map[int]bool{}
	for _, rack := range racks {
		if len(rack) != 3 {
			t.Errorf("rack %v has %d servers, want 3", rack, len(rack))
		}
		for _, s := range rack {
			if s < 0 || s >= servers || seen[s] {
				t.Errorf("rack server %d out of range or duplicated", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != servers {
		t.Errorf("racks cover %d servers, want %d", len(seen), servers)
	}

	if _, _, _, err := ChaosTopology([]int{0}); err == nil {
		t.Error("invalid fanout accepted")
	}
}

func TestApplyChaos(t *testing.T) {
	cfg := shortConfig(0.6)
	if cfg.Core.BudgetLeaseTicks != 0 {
		t.Fatalf("paper config already has leases: %d", cfg.Core.BudgetLeaseTicks)
	}
	plan, err := ApplyChaos(&cfg, "medium", 7)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Core.BudgetLeaseTicks != 2*cfg.Core.Eta1 {
		t.Errorf("leases armed to %d, want %d", cfg.Core.BudgetLeaseTicks, 2*cfg.Core.Eta1)
	}
	total := len(plan.ServerFailures) + len(plan.PMUFailures) + len(plan.LossWindows)
	if total == 0 {
		t.Fatal("medium schedule over 220 ticks expanded to an empty plan")
	}
	if got := len(cfg.Failures) + len(cfg.PMUFailures) + len(cfg.LossWindows); got != total {
		t.Errorf("config holds %d fault events, plan has %d", got, total)
	}
	if s := PlanSummary(plan); !strings.Contains(s, "PMU failures") {
		t.Errorf("summary %q", s)
	}

	// An explicit lease setting survives.
	cfg2 := shortConfig(0.6)
	cfg2.Core.BudgetLeaseTicks = 12
	if _, err := ApplyChaos(&cfg2, "light", 7); err != nil {
		t.Fatal(err)
	}
	if cfg2.Core.BudgetLeaseTicks != 12 {
		t.Errorf("explicit lease overwritten to %d", cfg2.Core.BudgetLeaseTicks)
	}

	if _, err := ApplyChaos(&cfg, "no-such-preset", 7); err == nil {
		t.Error("bad spec accepted")
	}
}

// TestChaosSmoke is the end-to-end chaos gate (make chaos-smoke): a
// medium-intensity seeded schedule against the paper configuration must
// complete, stay within the thermal envelope, and actually exercise the
// failure paths it claims to.
func TestChaosSmoke(t *testing.T) {
	// medium preset, with PMU crashes made frequent enough that a
	// 220-tick horizon reliably sees several.
	const spec = "medium,pmu-mtbf=80,pmu-mttr=30"
	cfg := shortConfig(0.6)
	plan, err := ApplyChaos(&cfg, spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PMUFailures) == 0 {
		t.Fatal("spec produced no PMU failures over this horizon")
	}
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.PMUFailures != len(plan.PMUFailures) {
		t.Errorf("controller saw %d PMU failures, plan had %d", r.Stats.PMUFailures, len(plan.PMUFailures))
	}
	if r.Stats.Failures != len(plan.ServerFailures) {
		t.Errorf("controller saw %d server failures, plan had %d", r.Stats.Failures, len(plan.ServerFailures))
	}
	if r.Stats.PMURepairs > r.Stats.PMUFailures {
		t.Errorf("repairs %d exceed failures %d", r.Stats.PMURepairs, r.Stats.PMUFailures)
	}
	if r.Stats.LeaseExpiries == 0 {
		t.Error("PMU crashes but no lease ever expired — degraded mode never engaged")
	}
	if r.Stats.DegradedTicks == 0 {
		t.Error("lease machinery armed but no server ticked degraded")
	}
	if r.MaxTemp > cfg.Thermal.Limit+0.5 {
		t.Errorf("max temp %.2f exceeds limit %.1f under chaos", r.MaxTemp, cfg.Thermal.Limit)
	}

	// Same seed, same config → identical outcome.
	cfg2 := shortConfig(0.6)
	if _, err := ApplyChaos(&cfg2, spec, 42); err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.TotalEnergy != r.TotalEnergy || r2.MaxTemp != r.MaxTemp ||
		r2.Stats.LeaseExpiries != r.Stats.LeaseExpiries ||
		r2.Stats.DegradedTicks != r.Stats.DegradedTicks ||
		r2.Stats.Restarts != r.Stats.Restarts ||
		r2.Stats.DroppedWattTicks != r.Stats.DroppedWattTicks {
		t.Error("same chaos seed produced different runs")
	}
}

// TestRunRejectsBadFaultEvents covers the validation added with the
// chaos plan plumbing: PMU failure events must name a live internal
// node and loss windows must be well-formed.
func TestRunRejectsBadFaultEvents(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"pmu-leaf", func(c *Config) {
			c.PMUFailures = append(c.PMUFailures, PMUFailureEvent{Node: 9, Tick: 10})
		}},
		{"pmu-out-of-range", func(c *Config) {
			c.PMUFailures = append(c.PMUFailures, PMUFailureEvent{Node: 99, Tick: 10})
		}},
		{"loss-reversed", func(c *Config) {
			c.LossWindows = append(c.LossWindows, LossWindow{Start: 50, End: 40, ReportLoss: 0.1})
		}},
		{"loss-probability", func(c *Config) {
			c.LossWindows = append(c.LossWindows, LossWindow{Start: 10, End: 40, ReportLoss: 1.5})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := shortConfig(0.6)
			tc.mut(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("bad fault event accepted")
			}
		})
	}
}

// TestChaosPlanConversion checks ApplyPlan appends rather than
// replaces, preserving hand-written fault events.
func TestChaosPlanConversion(t *testing.T) {
	cfg := shortConfig(0.6)
	cfg.Failures = []FailureEvent{{Server: 0, Tick: 5, RepairTick: 9}}
	ApplyPlan(&cfg, chaos.Plan{
		ServerFailures: []chaos.ServerFailure{{Server: 1, Tick: 20, RepairTick: 30}},
		PMUFailures:    []chaos.PMUFailure{{Node: 3, Tick: 40, RepairTick: 55}},
		LossWindows:    []chaos.LossWindow{{Start: 60, End: 80, ReportLoss: 0.2, BudgetLoss: 0.1}},
	})
	if len(cfg.Failures) != 2 || cfg.Failures[0].Server != 0 || cfg.Failures[1].Server != 1 {
		t.Errorf("failures = %+v", cfg.Failures)
	}
	if len(cfg.PMUFailures) != 1 || cfg.PMUFailures[0].Node != 3 {
		t.Errorf("pmu failures = %+v", cfg.PMUFailures)
	}
	if len(cfg.LossWindows) != 1 || cfg.LossWindows[0].BudgetLoss != 0.1 {
		t.Errorf("loss windows = %+v", cfg.LossWindows)
	}
}
