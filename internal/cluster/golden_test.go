package cluster

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"willow/internal/power"
	"willow/internal/queueing"
	"willow/internal/telemetry"
)

// updateGolden regenerates testdata/golden_scenarios.json. Run it only
// on a build whose hot path is known-good — the committed file was
// captured on the pre-SoA code, and the test thereafter pins every
// data-layout refactor to those exact bytes.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden scenario hashes")

const goldenScenariosPath = "testdata/golden_scenarios.json"

type goldenScenario struct {
	Result string `json:"result"`
	Events string `json:"events"`
}

func shaHex(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// encodeResult renders every observable field of a Result into a stable
// byte string. The Config echo is dropped (it holds interfaces, and its
// zero-value rendering would change whenever a Config field is added,
// breaking the pin without any behavior change) — what matters is that
// identical configs keep producing identical outputs. fmt formats maps
// with sorted keys, so core.Stats encodes deterministically.
func encodeResult(r *Result) []byte {
	cp := *r
	cp.Config = Config{}
	// The Energy report (Result's last field) is likewise stripped so
	// the committed pre-energy golden bytes stay valid; its determinism
	// is pinned separately by the energy identity tests (energy_test.go),
	// which compare the full report byte for byte across shard counts
	// and snapshot/restore.
	cp.Energy = EnergyReport{}
	b := []byte(fmt.Sprintf("%+v", cp))
	b = bytes.Replace(b, []byte(fmt.Sprintf(" Energy:%+v}", EnergyReport{})), []byte("}"), 1)
	return bytes.Replace(b, []byte(fmt.Sprintf("%+v", Config{})), []byte("{}"), 1)
}

// goldenConfigs enumerates the hot-path coverage matrix: the paper
// fleet across utilizations, every chaos and sensor preset, and each
// controller mode that changes which code path the tick takes (async
// reporting, transfer latency, budget leases/loss, QoS classes, IPC
// flows, diurnal demand, heterogeneous servers).
func goldenConfigs(t *testing.T) map[string]Config {
	t.Helper()
	out := map[string]Config{}

	for _, u := range []float64{0.3, 0.5, 0.7, 0.9} {
		out[fmt.Sprintf("paper-u%02d", int(u*100))] = shortConfig(u)
	}

	for _, preset := range []string{"light", "medium", "heavy"} {
		cfg := shortConfig(0.7)
		if _, err := ApplyChaos(&cfg, preset, 42); err != nil {
			t.Fatal(err)
		}
		out["chaos-"+preset] = cfg

		cfg = shortConfig(0.7)
		if _, err := ApplySensorChaos(&cfg, preset, 42); err != nil {
			t.Fatal(err)
		}
		out["sensor-"+preset] = cfg
	}

	async := shortConfig(0.6)
	async.Core.ReportLatency = 2
	async.Core.ReportLoss = 0.1
	out["async"] = async

	transfer := shortConfig(0.8)
	transfer.Core.MigrationLatency = 3
	out["transfer"] = transfer

	resilient := shortConfig(0.7)
	resilient.Core.BudgetLeaseTicks = 8
	resilient.Core.BudgetLatency = 1
	resilient.Core.BudgetLoss = 0.05
	out["resilient"] = resilient

	qos := shortConfig(0.9)
	qos.PriorityClasses = 3
	out["qos"] = qos

	ipc := shortConfig(0.6)
	ipc.IPCFlows = 12
	ipc.IPCRate = 2
	ipc.SLO = queueing.SLO{Service: 1, Target: 10}
	out["ipc"] = ipc

	diurnal := shortConfig(0.5)
	diurnal.DemandProfile = power.Sine{Base: 1, Amplitude: 0.4, Period: 80}
	out["diurnal"] = diurnal

	green := shortConfig(0.7)
	green.Supply = power.Sine{Base: 6000, Amplitude: 2000, Period: 100}
	out["green"] = green

	hetero := shortConfig(0.6)
	models := make([]power.ServerModel, 18)
	for i := range models {
		m := hetero.ServerPower
		m.Peak *= 1 + 0.05*float64(i%4)
		models[i] = m
	}
	hetero.PerServerPower = models
	out["hetero"] = hetero

	local := shortConfig(0.7)
	local.Core.LocalOnly = true
	out["local-only"] = local

	// The alternative controller policies, each under the sensor-medium
	// plan their safety contract is written against. The willow policy
	// needs no scenario of its own: TestPolicyWillowIdentity pins it
	// byte-identical to every nil-policy scenario above.
	for _, pol := range []string{"integral", "mpc"} {
		cfg := shortConfig(0.7)
		cfg.Policy = pol
		if _, err := ApplySensorChaos(&cfg, "medium", 42); err != nil {
			t.Fatal(err)
		}
		out["policy-"+pol] = cfg
	}

	return out
}

// captureScenario runs one config with a JSONL sink attached and
// digests the result and the event stream.
func captureScenario(t *testing.T, cfg Config) goldenScenario {
	t.Helper()
	var stream bytes.Buffer
	w := telemetry.NewWriter(&stream)
	cfg.Sink = w
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return goldenScenario{Result: shaHex(encodeResult(r)), Events: shaHex(stream.Bytes())}
}

// TestGoldenScenarioIdentity pins cluster.Run across the controller's
// mode matrix — including chaos and sensor presets — to byte-identical
// Results and JSONL event streams captured before the fleet-scale
// hot-path refactor.
func TestGoldenScenarioIdentity(t *testing.T) {
	golden := map[string]goldenScenario{}
	if !*updateGolden {
		raw, err := os.ReadFile(goldenScenariosPath)
		if err != nil {
			t.Fatalf("missing golden file (run with -update-golden on a known-good build): %v", err)
		}
		if err := json.Unmarshal(raw, &golden); err != nil {
			t.Fatal(err)
		}
	}

	configs := goldenConfigs(t)
	got := map[string]goldenScenario{}
	names := make([]string, 0, len(configs))
	for name := range configs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		got[name] = captureScenario(t, configs[name])
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenScenariosPath), 0o755); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.WriteString("{\n")
		for i, name := range names {
			raw, _ := json.Marshal(got[name])
			key, _ := json.Marshal(name)
			buf.WriteString("  ")
			buf.Write(key)
			buf.WriteString(": ")
			buf.Write(raw)
			if i < len(names)-1 {
				buf.WriteByte(',')
			}
			buf.WriteByte('\n')
		}
		buf.WriteString("}\n")
		if err := os.WriteFile(goldenScenariosPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden scenarios to %s", len(got), goldenScenariosPath)
		return
	}

	if len(got) != len(golden) {
		t.Errorf("scenario count changed: golden has %d, test has %d", len(golden), len(got))
	}
	for name, want := range golden {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: scenario disappeared", name)
			continue
		}
		if g.Events != want.Events {
			t.Errorf("%s: event stream diverged from pre-refactor golden", name)
		}
		if g.Result != want.Result {
			t.Errorf("%s: Result diverged from pre-refactor golden", name)
		}
	}
}
