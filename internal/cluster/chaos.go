package cluster

// Chaos integration: expand a seeded chaos.Schedule against a run's
// topology and fold the resulting fault plan into its Config.

import (
	"fmt"

	"willow/internal/chaos"
	"willow/internal/sensor"
	"willow/internal/topo"
)

// ChaosTopology derives the fault-injection surface of a fan-out: the
// server count, the crash-eligible PMU node IDs (every internal node
// except the root — killing the root leaves nothing to measure against)
// and the racks (the server spans of the level-1 PMUs) for correlated
// bursts.
func ChaosTopology(fanout []int) (servers int, pmus []int, racks [][]int, err error) {
	tree, err := topo.Build(fanout)
	if err != nil {
		return 0, nil, nil, err
	}
	for _, n := range tree.Nodes {
		if n.IsLeaf() || n == tree.Root {
			continue
		}
		pmus = append(pmus, n.ID)
	}
	for _, n := range tree.LevelNodes(1) {
		rack := make([]int, 0, len(n.Children))
		for _, ch := range n.Children {
			rack = append(rack, ch.ServerIndex)
		}
		racks = append(racks, rack)
	}
	return tree.NumServers(), pmus, racks, nil
}

// ApplyPlan folds an expanded chaos plan into the run configuration,
// appending to any fault events already present.
func ApplyPlan(cfg *Config, plan chaos.Plan) {
	for _, f := range plan.ServerFailures {
		cfg.Failures = append(cfg.Failures, FailureEvent{
			Server: f.Server, Tick: f.Tick, RepairTick: f.RepairTick,
		})
	}
	for _, f := range plan.PMUFailures {
		cfg.PMUFailures = append(cfg.PMUFailures, PMUFailureEvent{
			Node: f.Node, Tick: f.Tick, RepairTick: f.RepairTick,
		})
	}
	for _, w := range plan.LossWindows {
		cfg.LossWindows = append(cfg.LossWindows, LossWindow{
			Start: w.Start, End: w.End,
			ReportLoss: w.ReportLoss, BudgetLoss: w.BudgetLoss,
		})
	}
	for _, f := range plan.SensorFaults {
		cfg.SensorFaults = append(cfg.SensorFaults, SensorFaultEvent{
			Server: f.Server, Start: f.Start, End: f.End,
			Mode: f.Mode, Magnitude: f.Magnitude,
		})
	}
	armSensing(cfg, plan)
}

// armSensing turns on the Core robust-estimation knobs when a plan
// injects sensor faults and the caller has neither configured the
// estimator nor asked for the naive (estimator-off) baseline. A sensor
// chaos run with a blindly trusting controller is never what a chaos
// experiment means to measure unless it says so.
func armSensing(cfg *Config, plan chaos.Plan) {
	if len(plan.SensorFaults) == 0 || cfg.NaiveSensing {
		return
	}
	c := &cfg.Core
	if c.SensorWindow > 0 || c.SensorGate > 0 || c.SensorTrips > 0 || c.SensorGuard > 0 {
		return
	}
	c.SensorWindow = 5
	c.SensorGate = 3
	c.SensorTrips = 3
	c.SensorGuard = 2
}

// ApplyChaos parses a chaos spec (see chaos.ParseSpec), expands it
// deterministically for the given seed against cfg's topology and
// horizon, and folds the plan into cfg. It also arms budget leases
// when the Core config has none: a chaos run without leases would ride
// stale budgets forever, which is never what a chaos experiment means
// to measure. It returns the expanded plan for reporting.
func ApplyChaos(cfg *Config, spec string, seed uint64) (chaos.Plan, error) {
	sched, err := chaos.ParseSpec(spec)
	if err != nil {
		return chaos.Plan{}, err
	}
	sched.Ticks = cfg.Ticks
	sched.Servers, sched.PMUs, sched.Racks, err = ChaosTopology(cfg.Fanout)
	if err != nil {
		return chaos.Plan{}, err
	}
	plan, err := sched.Expand(seed)
	if err != nil {
		return chaos.Plan{}, err
	}
	if cfg.Core.BudgetLeaseTicks == 0 {
		eta1 := cfg.Core.Eta1
		if eta1 == 0 {
			eta1 = 4 // core.Defaults
		}
		cfg.Core.BudgetLeaseTicks = 2 * eta1
	}
	ApplyPlan(cfg, plan)
	return plan, nil
}

// ApplySensorChaos parses a sensor-fault spec (see sensor.ParseSpec),
// expands it deterministically for the given seed against cfg's topology
// and horizon, and folds the resulting sensor-fault windows into cfg.
// Unlike ApplyChaos it injects no server/PMU/network faults: the spec
// corrupts only telemetry, which is exactly what a sensing-robustness
// experiment wants to isolate. It returns the expanded plan for
// reporting.
func ApplySensorChaos(cfg *Config, spec string, seed uint64) (chaos.Plan, error) {
	sp, err := sensor.ParseSpec(spec)
	if err != nil {
		return chaos.Plan{}, err
	}
	sched := chaos.Schedule{
		Ticks:      cfg.Ticks,
		SensorMTBF: sp.MTBF, SensorMTTR: sp.MTTR,
		SensorNoise: sp.Noise, SensorBias: sp.Bias, SensorDrift: sp.Drift,
		SensorStuck: sp.Stuck, SensorDropout: sp.Dropout,
	}
	sched.Servers, sched.PMUs, sched.Racks, err = ChaosTopology(cfg.Fanout)
	if err != nil {
		return chaos.Plan{}, err
	}
	plan, err := sched.Expand(seed)
	if err != nil {
		return chaos.Plan{}, err
	}
	ApplyPlan(cfg, plan)
	return plan, nil
}

// PlanSummary renders a one-line summary of a plan for CLI reporting.
func PlanSummary(plan chaos.Plan) string {
	return fmt.Sprintf("chaos plan: %d server failures, %d PMU failures, %d loss windows, %d sensor faults",
		len(plan.ServerFailures), len(plan.PMUFailures), len(plan.LossWindows), len(plan.SensorFaults))
}
