package cluster

import (
	"bytes"
	"math"
	"testing"

	"willow/internal/power"
	"willow/internal/telemetry"
)

// fleetConfig builds a paper-style config over an arbitrary fanout with
// supply sized to the fleet, for the fleet-scale tests and benchmarks.
func fleetConfig(fanout []int, supplyFrac float64) Config {
	n := 1
	for _, f := range fanout {
		n *= f
	}
	cfg := PaperConfig(0.5)
	cfg.Fanout = fanout
	cfg.Supply = power.Constant(supplyFrac * float64(n) * 450)
	if n < 18 {
		// The paper config's hot zone indexes servers 14-17.
		cfg.HotServers = nil
		cfg.HotAmbient = 0
	}
	return cfg
}

// TestShardInvariance is the sharding determinism contract: the same
// fleet must produce byte-identical event streams and Results for any
// shard count, because parallel phases touch only per-server state and
// every cross-server float accumulation runs sequentially in server
// order. The quiet variant (noise off) shards both the demand and the
// consumption phase of the 10,000-server tick; the noisy variant keeps
// demand observation serial (it consumes a shared random stream) and
// shards consumption only.
func TestShardInvariance(t *testing.T) {
	cases := []struct {
		name   string
		fanout []int
		noise  float64
	}{
		{"10k-quiet", []int{10, 10, 10, 10}, -1},
		{"1k-noisy", []int{10, 10, 10}, 25},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := fleetConfig(tc.fanout, 0.85)
			base.Core.NoiseLambda = tc.noise
			base.Warmup = 8
			base.Ticks = 24
			run := func(shards int) goldenScenario {
				cfg := base
				cfg.Core.Shards = shards
				return captureScenario(t, cfg)
			}
			want := run(1)
			for _, shards := range []int{2, 4, 8} {
				got := run(shards)
				if got.Events != want.Events {
					t.Errorf("shards=%d: event stream diverged from single-threaded run", shards)
				}
				if got.Result != want.Result {
					t.Errorf("shards=%d: Result diverged from single-threaded run", shards)
				}
			}
		})
	}
}

// TestFullAggregationOracle pins the incremental dirty-subtree demand
// aggregation against the paper's naive full recompute on a sharded
// 10,000-server fleet: identical streams and Results, tick for tick.
func TestFullAggregationOracle(t *testing.T) {
	cfg := fleetConfig([]int{10, 10, 10, 10}, 0.85)
	cfg.Core.NoiseLambda = -1
	cfg.Core.Shards = 4
	cfg.Warmup = 8
	cfg.Ticks = 24
	inc := captureScenario(t, cfg)
	cfg.Core.FullAggregation = true
	full := captureScenario(t, cfg)
	if inc.Events != full.Events {
		t.Error("incremental aggregation event stream diverged from full-recompute oracle")
	}
	if inc.Result != full.Result {
		t.Error("incremental aggregation Result diverged from full-recompute oracle")
	}
}

// TestScaleDemandEdgeCases covers the live-injection validation
// contract: invalid factors and servers are rejected without mutating
// any application, and a zero factor (drain a server's demand to
// nothing) is legal.
func TestScaleDemandEdgeCases(t *testing.T) {
	cfg := fleetConfig([]int{4, 4}, 1)
	cfg.Warmup = 2
	cfg.Ticks = 40
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	means := func(server int) []float64 {
		var out []float64
		for _, a := range m.Controller().Servers[server].Apps.Apps {
			out = append(out, a.Mean)
		}
		return out
	}
	before := means(0)
	for _, f := range []float64{-1, -0.001, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := m.ScaleDemand(0, f); err == nil {
			t.Errorf("factor %v accepted", f)
		}
	}
	for _, server := range []int{-2, 16, 99} {
		if err := m.ScaleDemand(server, 1.1); err == nil {
			t.Errorf("server %d accepted", server)
		}
	}
	after := means(0)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("rejected injection mutated app %d: %v -> %v", i, before[i], after[i])
		}
	}
	// Zero factor is a legal drain, and the machine keeps running.
	if err := m.ScaleDemand(0, 0); err != nil {
		t.Fatal(err)
	}
	for _, mean := range means(0) {
		if mean != 0 {
			t.Fatalf("zero factor left mean %v", mean)
		}
	}
	for !m.Done() {
		m.Step()
	}
	if r := m.Result(); len(r.MeanPower) != 16 {
		t.Fatalf("run did not complete: %d servers measured", len(r.MeanPower))
	}
}

// TestScaleDemandReplay: a mid-run injection is part of the replayable
// input — two machines fed the same config and the same injection at
// the same tick produce byte-identical streams and Results, and the
// injection actually changes the run.
func TestScaleDemandReplay(t *testing.T) {
	cfg := fleetConfig([]int{4, 4, 4}, 0.85)
	cfg.Warmup = 4
	cfg.Ticks = 48
	capture := func(scaleAt int, factor float64) goldenScenario {
		c := cfg
		var stream bytes.Buffer
		w := telemetry.NewWriter(&stream)
		c.Sink = w
		m, err := NewMachine(c)
		if err != nil {
			t.Fatal(err)
		}
		for !m.Done() {
			if m.NextTick() == scaleAt {
				if err := m.ScaleDemand(-1, factor); err != nil {
					t.Fatal(err)
				}
			}
			m.Step()
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return goldenScenario{Result: shaHex(encodeResult(m.Result())), Events: shaHex(stream.Bytes())}
	}
	a := capture(20, 1.4)
	b := capture(20, 1.4)
	if a != b {
		t.Error("identical mid-run injections diverged on replay")
	}
	plain := capture(20, 1)
	if a.Events == plain.Events {
		t.Error("demand injection had no observable effect")
	}
}

// TestScaleDemandWithProfile pins the baseMeans interaction: with a
// DemandProfile active, each epoch rewrites every app's Mean from its
// profile baseline, so an injection that scaled only Mean would be
// silently undone one epoch later. ScaleDemand must scale the baseline
// too.
func TestScaleDemandWithProfile(t *testing.T) {
	cfg := fleetConfig([]int{4, 4}, 1)
	cfg.DemandProfile = power.Constant(1)
	cfg.Warmup = 2
	cfg.Ticks = 60
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epoch := cfg.Core.Eta1
	if epoch == 0 {
		epoch = 4
	}
	for i := 0; i < 2*epoch; i++ {
		m.Step()
	}
	apps := m.Controller().Servers[3].Apps.Apps
	before := make([]float64, len(apps))
	for i, a := range apps {
		before[i] = a.Mean
	}
	if err := m.ScaleDemand(3, 0.5); err != nil {
		t.Fatal(err)
	}
	// Cross at least one epoch boundary so the profile rescale runs.
	for i := 0; i < 2*epoch; i++ {
		m.Step()
	}
	for i, a := range apps {
		if want := before[i] * 0.5; a.Mean != want {
			t.Errorf("app %d mean %v after epoch rescale, want %v (baseline not scaled?)", i, a.Mean, want)
		}
	}
}

// benchFleet measures the steady-state cost of one Machine.Step across
// a fleet, reported as ns per server-tick. Noise is disabled so the
// demand phase shards and the smoother's fixed-point fast path engages,
// matching the fleet-scale deployment profile.
func benchFleet(b *testing.B, fanout []int, shards int, full bool) {
	n := 1
	for _, f := range fanout {
		n *= f
	}
	cfg := fleetConfig(fanout, 1)
	cfg.Core.NoiseLambda = -1
	cfg.Core.Shards = shards
	cfg.Core.FullAggregation = full
	cfg.Warmup = 1
	cfg.Ticks = 1 << 30
	m, err := NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		m.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
	b.StopTimer()
	perServerTick := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(n)
	b.ReportMetric(perServerTick, "ns/server-tick")
}

func BenchmarkFleetTick(b *testing.B) {
	b.Run("1k", func(b *testing.B) { benchFleet(b, []int{10, 10, 10}, 8, false) })
	b.Run("10k", func(b *testing.B) { benchFleet(b, []int{10, 10, 10, 10}, 8, false) })
	b.Run("100k", func(b *testing.B) { benchFleet(b, []int{4, 5, 5, 10, 100}, 8, false) })
}

// BenchmarkFleetTickFullAgg is the naive-aggregation baseline for the
// incremental path, same fleet as BenchmarkFleetTick/10k.
func BenchmarkFleetTickFullAgg(b *testing.B) {
	b.Run("10k", func(b *testing.B) { benchFleet(b, []int{10, 10, 10, 10}, 8, true) })
}
