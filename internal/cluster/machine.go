package cluster

// Machine is the steppable form of a simulation run: everything Run
// builds, held as state, advanced one demand tick at a time. It exists
// so a long-lived control plane (internal/server) can drive the exact
// same simulation under wall-clock pacing, inject live mutations at
// tick boundaries, and serialize enough to resume after a restart —
// while the offline Run stays a thin loop over it, byte-identical to
// what it always produced.
//
// Determinism contract: a Machine stepped to completion produces the
// same event stream and Result as Run(cfg) with the same Config,
// because Run IS a Machine stepped to completion. Live mutations
// (ScaleDemand, InjectPlan) applied at tick boundaries keep the run
// deterministic as a function of (Config, mutation journal): replaying
// the same mutations at the same ticks reproduces the run bit for bit,
// which is what the daemon's snapshot/restore builds on.
//
// A Machine is NOT safe for concurrent use; callers that share one
// across goroutines (the daemon) serialize access with their own lock.

import (
	"context"
	"fmt"
	"math"

	"willow/internal/chaos"
	"willow/internal/core"
	"willow/internal/dist"
	"willow/internal/metrics"
	"willow/internal/netsim"
	"willow/internal/policy"
	"willow/internal/power"
	"willow/internal/queueing"
	"willow/internal/sensor"
	"willow/internal/sim"
	"willow/internal/telemetry"
	"willow/internal/topo"
	"willow/internal/workload"
)

// switchableSink is the caller-facing sink indirection: the controller
// publishes through it for the whole run, and the daemon can retarget
// it (nil during snapshot replay, a live hub afterwards) without
// touching the controller.
type switchableSink struct {
	s telemetry.Sink
}

// Publish implements telemetry.Sink.
func (w *switchableSink) Publish(e telemetry.Event) {
	if w.s != nil {
		w.s.Publish(e)
	}
}

// Machine is one simulation run held open: construct with NewMachine,
// advance with Step until Done, read measurements with Result.
type Machine struct {
	cfg    Config
	tree   *topo.Tree
	ctrl   *core.Controller
	net    *netsim.Network
	engine *sim.Engine

	n        int
	models   []power.ServerModel
	location map[int]int
	flows    []netsim.Flow

	powerAcc, tempAcc []metrics.Welford
	imbAcc            []metrics.Welford
	asleep            []int
	latency           *queueing.Tracker
	res               *Result
	measured          int
	baseMeans         map[*workload.App]float64

	caller  *switchableSink
	stepped int // ticks executed; the next Step runs tick `stepped`

	// baseReport / baseBudget are the Core config's link-loss levels,
	// restored when a loss window closes.
	baseReport, baseBudget float64
	// sensorsAttached records that every server carries an instrument
	// (set at build when Config.SensorFaults is non-empty, or lazily by
	// the first live-injected sensor fault).
	sensorsAttached bool
}

// NewMachine builds the simulated data center of cfg without running
// it. The construction order — every Fork, every validation — is
// exactly Run's, so the machine's random streams match the offline
// simulator's bit for bit.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Utilization <= 0 || cfg.Utilization > 1 {
		return nil, fmt.Errorf("cluster: utilization %v outside (0, 1]", cfg.Utilization)
	}
	if cfg.Ticks <= cfg.Warmup {
		return nil, fmt.Errorf("cluster: ticks %d must exceed warmup %d", cfg.Ticks, cfg.Warmup)
	}
	tree, err := topo.Build(cfg.Fanout)
	if err != nil {
		return nil, err
	}
	src := dist.NewSource(cfg.Seed)

	placement, err := workload.PlaceRandomMix(
		tree.NumServers(), cfg.AppsPerServer, cfg.Classes,
		1 /* unit watts; rescaled below */, cfg.Core.NoiseLambda, src.Fork())
	if err != nil {
		return nil, err
	}
	models := make([]power.ServerModel, tree.NumServers())
	for i := range models {
		models[i] = cfg.ServerPower
	}
	if cfg.PerServerPower != nil {
		if len(cfg.PerServerPower) != tree.NumServers() {
			return nil, fmt.Errorf("cluster: %d per-server power models for %d servers",
				len(cfg.PerServerPower), tree.NumServers())
		}
		copy(models, cfg.PerServerPower)
	}

	// Scale each server's workload to the target utilization of *its own*
	// dynamic range (they differ in a heterogeneous fleet).
	for i, set := range placement.Sets {
		target := cfg.Utilization * models[i].DynamicRange()
		total := set.MeanTotal()
		if total <= 0 {
			continue
		}
		for _, a := range set.Apps {
			a.Mean *= target / total
		}
	}

	// QoS classes: round-robin priorities over all applications.
	location := map[int]int{} // app ID -> hosting server
	var appIDs []int
	for si, set := range placement.Sets {
		for _, a := range set.Apps {
			if cfg.PriorityClasses > 0 {
				a.Priority = a.ID % cfg.PriorityClasses
			}
			location[a.ID] = si
			appIDs = append(appIDs, a.ID)
		}
	}

	// IPC flows between random application pairs.
	var flows []netsim.Flow
	if cfg.IPCFlows > 0 {
		flowSrc := src.Fork()
		rate := cfg.IPCRate
		if rate <= 0 {
			rate = 5
		}
		for f := 0; f < cfg.IPCFlows && len(appIDs) >= 2; f++ {
			a := appIDs[flowSrc.Intn(len(appIDs))]
			b := appIDs[flowSrc.Intn(len(appIDs))]
			for b == a {
				b = appIDs[flowSrc.Intn(len(appIDs))]
			}
			flows = append(flows, netsim.Flow{AppA: a, AppB: b, Rate: rate})
		}
	}

	hot := map[int]bool{}
	for _, i := range cfg.HotServers {
		if i < 0 || i >= tree.NumServers() {
			return nil, fmt.Errorf("cluster: hot server index %d out of range", i)
		}
		hot[i] = true
	}
	specs := make([]core.ServerSpec, tree.NumServers())
	for i := range specs {
		tm := cfg.Thermal
		if hot[i] {
			tm.Ambient = cfg.HotAmbient
		}
		specs[i] = core.ServerSpec{
			Power:        models[i],
			Thermal:      tm,
			CircuitLimit: cfg.CircuitLimit,
			Apps:         placement.Sets[i].Apps,
		}
	}

	if cfg.Policy != "" && cfg.Core.Policy == nil {
		pol, err := policy.New(cfg.Policy)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		cfg.Core.Policy = pol
	}
	ctrl, err := core.New(tree, specs, cfg.Supply, cfg.Core, src.Fork())
	if err != nil {
		return nil, err
	}
	net, err := netsim.New(tree, cfg.Network)
	if err != nil {
		return nil, err
	}

	m := &Machine{
		cfg:      cfg,
		tree:     tree,
		ctrl:     ctrl,
		net:      net,
		engine:   sim.New(),
		n:        tree.NumServers(),
		models:   models,
		location: location,
		flows:    flows,
		caller:   &switchableSink{s: cfg.Sink},
		res:      &Result{Config: cfg},
	}
	m.baseReport, m.baseBudget = ctrl.Cfg.ReportLoss, ctrl.Cfg.BudgetLoss

	// The network model and IPC flow tracking observe migrations off the
	// telemetry stream; the caller's sink (if any) rides the same wire,
	// behind a switchable indirection so a daemon can retarget it.
	observer := telemetry.SinkFunc(func(ev telemetry.Event) {
		if ev.Kind != telemetry.KindMigration {
			return
		}
		net.RecordMigration(ev.From, ev.To, ev.Bytes)
		location[ev.App] = ev.To
	})
	ctrl.Sink = telemetry.Multi(observer, m.caller)

	m.powerAcc = make([]metrics.Welford, m.n)
	m.tempAcc = make([]metrics.Welford, m.n)
	m.imbAcc = make([]metrics.Welford, tree.Height+1)
	m.asleep = make([]int, m.n)
	slo := cfg.SLO
	if slo.Service <= 0 {
		slo = queueing.SLO{Service: 1, Target: 10}
	}
	m.latency = queueing.NewTracker(slo)

	// Snapshot base demands so the intensity profile can scale them
	// in place each epoch without compounding.
	if cfg.DemandProfile != nil {
		m.baseMeans = make(map[*workload.App]float64)
		for _, set := range placement.Sets {
			for _, a := range set.Apps {
				m.baseMeans[a] = a.Mean
			}
		}
	}

	if err := m.scheduleConfigFaults(); err != nil {
		return nil, err
	}
	m.engine.Every(0, 1, m.tickBody)
	return m, nil
}

// scheduleConfigFaults installs the Config's fault and sensor events
// into the calendar, in the exact order Run always did.
func (m *Machine) scheduleConfigFaults() error {
	cfg, ctrl, tree := m.cfg, m.ctrl, m.tree
	for _, f := range cfg.Failures {
		f := f
		if f.Server < 0 || f.Server >= m.n {
			return fmt.Errorf("cluster: failure event for server %d out of range", f.Server)
		}
		m.engine.Schedule(sim.Tick(f.Tick), func(sim.Tick) { ctrl.FailServer(f.Server) })
		if f.RepairTick > f.Tick {
			m.engine.Schedule(sim.Tick(f.RepairTick), func(sim.Tick) { ctrl.RepairServer(f.Server) })
		}
	}
	for _, f := range cfg.PMUFailures {
		f := f
		if f.Node < 0 || f.Node >= len(tree.Nodes) || tree.Nodes[f.Node].IsLeaf() {
			return fmt.Errorf("cluster: PMU failure event for node %d is not an internal node", f.Node)
		}
		m.engine.Schedule(sim.Tick(f.Tick), func(sim.Tick) { ctrl.FailPMU(f.Node) })
		if f.RepairTick > f.Tick {
			m.engine.Schedule(sim.Tick(f.RepairTick), func(sim.Tick) { ctrl.RepairPMU(f.Node) })
		}
	}
	if len(cfg.LossWindows) > 0 {
		baseReport, baseBudget := m.baseReport, m.baseBudget
		for _, w := range cfg.LossWindows {
			w := w
			if err := validLossWindow(w.Start, w.End, w.ReportLoss, w.BudgetLoss); err != nil {
				return err
			}
			m.engine.Schedule(sim.Tick(w.Start), func(sim.Tick) {
				ctrl.SetLinkLoss(w.ReportLoss, w.BudgetLoss)
			})
			m.engine.Schedule(sim.Tick(w.End), func(sim.Tick) {
				ctrl.SetLinkLoss(baseReport, baseBudget)
			})
		}
	}
	if len(cfg.SensorFaults) > 0 {
		m.attachSensors()
		for _, f := range cfg.SensorFaults {
			f := f
			if err := m.validSensorFault(f.Server, f.Start, f.Magnitude); err != nil {
				return err
			}
			m.engine.Schedule(sim.Tick(f.Start), func(sim.Tick) {
				ctrl.SetSensorFault(f.Server, sensor.Fault{Mode: f.Mode, Magnitude: f.Magnitude})
			})
			if f.End > f.Start {
				m.engine.Schedule(sim.Tick(f.End), func(sim.Tick) {
					ctrl.ClearSensorFault(f.Server)
				})
			}
		}
	}
	return nil
}

// attachSensors gives every server an instrument with a private stream
// forked in server order from a source derived from — but independent
// of — the run seed, so sensor noise perturbs no simulation stream and
// the corruption sequence is identical whether or not the estimator is
// armed. Healthy instruments are bit-identical passthrough, so a lazy
// attachment (first live fault injection) changes nothing retroactively.
func (m *Machine) attachSensors() {
	if m.sensorsAttached {
		return
	}
	sensorSrc := dist.NewSource(m.cfg.Seed ^ sensorSeedSalt)
	for i := 0; i < m.n; i++ {
		m.ctrl.AttachSensor(i, sensor.New(sensorSrc.Fork()))
	}
	m.sensorsAttached = true
}

func validLossWindow(start, end int, reportLoss, budgetLoss float64) error {
	if start < 0 || end <= start {
		return fmt.Errorf("cluster: bad loss window [%d, %d)", start, end)
	}
	if reportLoss < 0 || reportLoss >= 1 || budgetLoss < 0 || budgetLoss >= 1 {
		return fmt.Errorf("cluster: loss window probabilities outside [0, 1): report=%v budget=%v",
			reportLoss, budgetLoss)
	}
	return nil
}

func (m *Machine) validSensorFault(server, start int, magnitude float64) error {
	if server < 0 || server >= m.n {
		return fmt.Errorf("cluster: sensor fault for server %d out of range", server)
	}
	if start < 0 {
		return fmt.Errorf("cluster: sensor fault start %d before the run", start)
	}
	if math.IsNaN(magnitude) || math.IsInf(magnitude, 0) {
		return fmt.Errorf("cluster: non-finite sensor fault magnitude %v", magnitude)
	}
	return nil
}

// tickBody is one demand tick Δ_D: the controller step plus every
// per-tick measurement. It runs inside the engine so injected fault
// events interleave exactly as they do offline.
func (m *Machine) tickBody(now sim.Tick) {
	cfg, ctrl, net, res := m.cfg, m.ctrl, m.net, m.res
	if m.baseMeans != nil {
		factor := cfg.DemandProfile.At(int(now) / ctrl.Cfg.Eta1)
		if factor < 0 {
			factor = 0
		}
		for a, base := range m.baseMeans {
			a.Mean = base * factor
		}
	}
	ctrl.Step()
	for i, s := range ctrl.Servers {
		net.RecordServerTraffic(i, s.Utilization())
	}
	if len(m.flows) > 0 {
		net.RecordFlows(m.flows, m.location)
	}
	net.EndTick()
	for _, s := range ctrl.Servers {
		if s.Thermal.T > res.MaxTemp {
			res.MaxTemp = s.Thermal.T
		}
		if t := s.TObs(); t > res.MaxObsTemp {
			res.MaxObsTemp = t
		}
		if s.Thermal.T > s.Thermal.Model.Limit+1e-6 {
			res.LimitViolationTicks++
		}
	}
	if int(now) < cfg.Warmup {
		return
	}
	m.measured++
	for i, s := range ctrl.Servers {
		m.powerAcc[i].Add(s.Consumed())
		m.tempAcc[i].Add(s.Thermal.T)
		if s.Asleep() {
			m.asleep[i]++
		}
		res.TotalEnergy += s.Consumed()
	}
	for level := 0; level <= m.tree.Height; level++ {
		_, _, imb := ctrl.LevelImbalance(level)
		m.imbAcc[level].Add(imb)
	}
	for _, s := range ctrl.Servers {
		if s.Asleep() {
			continue
		}
		servedDyn := s.Consumed() - s.Power.Static
		if servedDyn < 0 {
			servedDyn = 0
		}
		m.latency.Observe(s.Utilization(), servedDyn, s.Dropped())
	}
}

// Step advances the simulation by one demand tick, executing every
// calendar event scheduled for it (fault injections, then the tick
// body) in the same order the offline Run executes them. It is a no-op
// once the run is Done.
func (m *Machine) Step() {
	if m.Done() {
		return
	}
	// Run's horizon semantics execute everything scheduled at this tick;
	// errors are impossible because nothing calls Stop on this engine.
	_ = m.engine.Run(sim.Tick(m.stepped))
	m.stepped++
}

// Done reports whether every configured tick has executed.
func (m *Machine) Done() bool { return m.stepped >= m.cfg.Ticks }

// NextTick is the tick the next Step will execute — the boundary at
// which live mutations land.
func (m *Machine) NextTick() int { return m.stepped }

// Config returns the run's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Controller exposes the live controller for read-only inspection
// (state endpoints). Callers must not mutate it between ticks.
func (m *Machine) Controller() *core.Controller { return m.ctrl }

// SetSink retargets the caller-facing telemetry sink. The internal
// migration observer keeps running regardless; nil silences external
// publication (used while a snapshot replays).
func (m *Machine) SetSink(s telemetry.Sink) { m.caller.s = s }

// ScaleDemand multiplies the mean demand of every application currently
// hosted on the given server by factor (server -1 scales the whole
// fleet). With a DemandProfile configured, the profile's per-epoch
// baselines scale too, so the injection survives the next epoch rescale.
// Call only at a tick boundary (between Steps).
func (m *Machine) ScaleDemand(server int, factor float64) error {
	if math.IsNaN(factor) || math.IsInf(factor, 0) || factor < 0 {
		return fmt.Errorf("cluster: demand factor %v must be finite and non-negative", factor)
	}
	if server < -1 || server >= m.n {
		return fmt.Errorf("cluster: demand injection for server %d outside [-1, %d)", server, m.n)
	}
	scale := func(si int) {
		for _, a := range m.ctrl.Servers[si].Apps.Apps {
			a.Mean *= factor
			if m.baseMeans != nil {
				m.baseMeans[a] *= factor
			}
		}
	}
	if server >= 0 {
		scale(server)
		return nil
	}
	for si := 0; si < m.n; si++ {
		scale(si)
	}
	return nil
}

// InjectPlan schedules an expanded chaos plan live, every event offset
// by the given tick (normally NextTick). Events whose absolute tick
// falls beyond the run horizon are dropped — a repair clamped to the
// horizon never fires, same as at build time. Sensor faults attach
// instruments on first use. The offset must not precede NextTick, or
// the injection would rewrite already-executed ticks.
func (m *Machine) InjectPlan(plan chaos.Plan, offset int) error {
	if offset < m.stepped {
		return fmt.Errorf("cluster: chaos offset %d before next tick %d", offset, m.stepped)
	}
	ctrl, tree := m.ctrl, m.tree
	// Validate everything before scheduling anything: a half-applied
	// plan would be unreplayable.
	for _, f := range plan.ServerFailures {
		if f.Server < 0 || f.Server >= m.n {
			return fmt.Errorf("cluster: failure event for server %d out of range", f.Server)
		}
	}
	for _, f := range plan.PMUFailures {
		if f.Node < 0 || f.Node >= len(tree.Nodes) || tree.Nodes[f.Node].IsLeaf() {
			return fmt.Errorf("cluster: PMU failure event for node %d is not an internal node", f.Node)
		}
	}
	for _, w := range plan.LossWindows {
		if err := validLossWindow(w.Start, w.End, w.ReportLoss, w.BudgetLoss); err != nil {
			return err
		}
	}
	for _, f := range plan.SensorFaults {
		if err := m.validSensorFault(f.Server, f.Start, f.Magnitude); err != nil {
			return err
		}
	}

	horizon := m.cfg.Ticks
	at := func(t int) (sim.Tick, bool) {
		abs := offset + t
		return sim.Tick(abs), abs < horizon
	}
	for _, f := range plan.ServerFailures {
		f := f
		if t, ok := at(f.Tick); ok {
			m.engine.Schedule(t, func(sim.Tick) { ctrl.FailServer(f.Server) })
		}
		if f.RepairTick > f.Tick {
			if t, ok := at(f.RepairTick); ok {
				m.engine.Schedule(t, func(sim.Tick) { ctrl.RepairServer(f.Server) })
			}
		}
	}
	for _, f := range plan.PMUFailures {
		f := f
		if t, ok := at(f.Tick); ok {
			m.engine.Schedule(t, func(sim.Tick) { ctrl.FailPMU(f.Node) })
		}
		if f.RepairTick > f.Tick {
			if t, ok := at(f.RepairTick); ok {
				m.engine.Schedule(t, func(sim.Tick) { ctrl.RepairPMU(f.Node) })
			}
		}
	}
	if len(plan.LossWindows) > 0 {
		baseReport, baseBudget := m.baseReport, m.baseBudget
		for _, w := range plan.LossWindows {
			w := w
			if t, ok := at(w.Start); ok {
				m.engine.Schedule(t, func(sim.Tick) {
					ctrl.SetLinkLoss(w.ReportLoss, w.BudgetLoss)
				})
			}
			if t, ok := at(w.End); ok {
				m.engine.Schedule(t, func(sim.Tick) {
					ctrl.SetLinkLoss(baseReport, baseBudget)
				})
			}
		}
	}
	if len(plan.SensorFaults) > 0 {
		m.attachSensors()
		for _, f := range plan.SensorFaults {
			f := f
			if t, ok := at(f.Start); ok {
				m.engine.Schedule(t, func(sim.Tick) {
					ctrl.SetSensorFault(f.Server, sensor.Fault{Mode: f.Mode, Magnitude: f.Magnitude})
				})
			}
			if f.End > f.Start {
				if t, ok := at(f.End); ok {
					m.engine.Schedule(t, func(sim.Tick) {
						ctrl.ClearSensorFault(f.Server)
					})
				}
			}
		}
	}
	return nil
}

// Result computes the run's measurements from everything accumulated so
// far. It is safe to call mid-run (per-server means cover the measured
// window to date; zero measured ticks yield zeroed averages) and does
// not mutate the machine, so a live daemon can serve it repeatedly.
func (m *Machine) Result() *Result {
	res := *m.res
	res.MeanPower = make([]float64, m.n)
	res.MeanTemp = make([]float64, m.n)
	res.PowerSaved = make([]float64, m.n)
	res.AsleepFraction = make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		res.MeanPower[i] = m.powerAcc[i].Mean()
		res.MeanTemp[i] = m.tempAcc[i].Mean()
		if m.measured > 0 {
			res.AsleepFraction[i] = float64(m.asleep[i]) / float64(m.measured)
		}
		res.PowerSaved[i] = m.models[i].Static * res.AsleepFraction[i]
	}
	res.DemandMigrations = m.ctrl.Stats.DemandMigrations
	res.ConsolidationMigrations = m.ctrl.Stats.ConsolidationMigrations
	res.MigrationShare = m.net.MigrationTrafficShare()
	res.SwitchPower = m.net.LevelSwitchPower(1)
	res.SwitchMigrationTraffic = m.net.LevelMigrationTraffic(1)
	res.DroppedWattTicks = m.ctrl.Stats.DroppedWattTicks
	res.Stats = m.ctrl.Stats
	res.MeanFlowHops = m.net.MeanFlowHops()
	res.MeanImbalance = make([]float64, len(m.imbAcc))
	for level := range m.imbAcc {
		res.MeanImbalance[level] = m.imbAcc[level].Mean()
	}
	res.MeanStretch = m.latency.MeanStretch()
	res.StretchP95 = m.latency.StretchQuantile(0.95)
	res.SLOMissFraction = m.latency.SLOMissFraction()
	res.Energy = EnergyReport{
		TickSeconds: m.ctrl.Cfg.TickSeconds,
		Fleet:       m.ctrl.EnergyTotals(),
		Racks:       m.ctrl.RackEnergy(),
		Classes:     m.ctrl.ClassEnergy(),
	}
	return &res
}

// RunContext executes the configured simulation to completion, checking
// ctx between ticks: a cancelled context stops the run at the next tick
// boundary and returns ctx's error, leaving any caller-owned sink in a
// flushable state (nothing is written mid-event). This is the
// cancellation path the CLIs use so an interrupted run still closes its
// event stream cleanly instead of truncating it.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	for !m.Done() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m.Step()
	}
	return m.Result(), nil
}
