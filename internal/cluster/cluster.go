// Package cluster binds the Willow reproduction together: it builds the
// paper's simulated data center (topology + thermal + power + workload +
// controller + network) and runs it on the deterministic simulation
// kernel, collecting the measurements behind Figs. 5–12.
package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"willow/internal/core"
	"willow/internal/netsim"
	"willow/internal/power"
	"willow/internal/queueing"
	"willow/internal/sensor"
	"willow/internal/telemetry"
	"willow/internal/thermal"
	"willow/internal/workload"
)

// Config describes one simulated data center run.
type Config struct {
	// Fanout is the PMU hierarchy shape, root downward (Fig. 3 uses
	// {2, 3, 3}: 4 levels, 18 servers).
	Fanout []int
	// ServerPower is the per-server utilization→power curve.
	ServerPower power.ServerModel
	// PerServerPower, when non-nil, overrides ServerPower per server
	// (index = server), enabling heterogeneous fleets — e.g. mixing
	// conventional servers with FAWN-style wimpy nodes (the paper's
	// related work [12]). Must have one entry per server.
	PerServerPower []power.ServerModel
	// CircuitLimit caps each server's draw (0 = none beyond Peak).
	CircuitLimit float64
	// Thermal holds the cool-zone thermal constants; HotAmbient overrides
	// the ambient for the servers listed in HotServers (Fig. 5/6's
	// two-zone setup).
	Thermal    thermal.Model
	HotAmbient float64
	HotServers []int
	// AppsPerServer and Classes define the workload mix.
	AppsPerServer int
	Classes       []workload.Class
	// Utilization is the target mean utilization (0, 1]: per-server mean
	// dynamic demand is set to Utilization × (Peak − Static).
	Utilization float64
	// Supply feeds the root PMU, indexed by supply epoch.
	Supply power.Supply
	// DemandProfile, when non-nil, scales every application's mean
	// demand per supply epoch (1.0 = the configured utilization). This
	// is the paper's demand-side variation: "variations in workload
	// intensity" (Section I) — a diurnal request curve, a flash crowd.
	DemandProfile power.Supply
	// Network configures the switch model; zero value uses defaults.
	Network netsim.Config
	// Core configures the controller; zero fields take paper defaults.
	Core core.Config
	// Policy selects the controller policy by spec string
	// (internal/policy.ParseSpec): "" or "willow" run the paper's
	// proportional scheme byte-identically, "integral" and "mpc" swap in
	// the alternative controllers, with ",key=val" tuning knobs.
	// NewMachine builds a fresh stateful instance per machine, so Config
	// values stay reusable across runs; an instance already planted in
	// Core.Policy wins over this string.
	Policy string
	// Warmup ticks are excluded from averaged metrics; Ticks is the total
	// run length.
	Warmup, Ticks int
	// Seed makes the run reproducible.
	Seed uint64
	// PriorityClasses, when positive, assigns each application a QoS
	// priority round-robin over that many classes (0 = most critical);
	// shedding consumes the lowest class first. Zero leaves every
	// application at priority 0.
	PriorityClasses int
	// IPCFlows, when positive, creates that many random app-to-app
	// communication flows of IPCRate traffic units per tick, exercising
	// the future-work scenario of IPC-heavy workloads.
	IPCFlows int
	IPCRate  float64
	// SLO is the latency objective the queueing model evaluates served
	// demand against; the zero value uses a stretch-10 objective
	// (requests may take up to 10× their bare service time, i.e. the SLO
	// is met up to 90 % utilization).
	SLO queueing.SLO
	// Failures injects server crashes and repairs at fixed ticks.
	Failures []FailureEvent
	// PMUFailures injects control-plane (internal PMU node) crashes and
	// repairs at fixed ticks; the dead node's subtree rides its budget
	// leases into degraded mode (core.Config.BudgetLeaseTicks).
	PMUFailures []PMUFailureEvent
	// LossWindows degrade every control link over fixed tick intervals,
	// dropping upward reports and downward budget directives with the
	// window's probabilities; outside all windows the Core config's
	// ReportLoss/BudgetLoss apply. Typically generated, together with
	// the failure lists, from a seeded chaos schedule (ApplyChaos).
	LossWindows []LossWindow
	// SensorFaults corrupt per-server temperature sensors over fixed
	// tick windows (see internal/sensor for the fault modes). Any entry
	// makes Run attach an instrument to every server, each with a
	// private random stream derived from Seed, independent of the
	// simulation's own streams — so naive and estimator-armed runs of
	// the same plan see identical corrupted readings. Typically
	// generated from a seeded chaos schedule (ApplySensorChaos).
	SensorFaults []SensorFaultEvent
	// NaiveSensing keeps the robust estimator disarmed when a chaos
	// helper folds sensor faults into this config: the controller
	// trusts raw readings. It is the estimator-off baseline of the
	// sensing-robustness experiment and changes nothing else.
	NaiveSensing bool
	// Sink, when non-nil, receives every controller telemetry event of
	// the run (budget changes, migrations, throttles, sleep/wake,
	// failures, QoS violations), tick-stamped and in decision order.
	// Sinks need not be concurrency-safe: Run publishes from a single
	// goroutine, and RunAll transparently buffers per run and replays
	// in input order, so even a sink shared across concurrent configs
	// sees one deterministic stream.
	Sink telemetry.Sink
}

// FailureEvent crashes a server at Tick and, when RepairTick > Tick,
// repairs it then.
type FailureEvent struct {
	Server     int
	Tick       int
	RepairTick int
}

// PMUFailureEvent crashes the internal tree node with the given ID at
// Tick and, when RepairTick > Tick, repairs it then.
type PMUFailureEvent struct {
	Node       int
	Tick       int
	RepairTick int
}

// LossWindow drops control messages on every link over [Start, End).
type LossWindow struct {
	Start, End             int
	ReportLoss, BudgetLoss float64
}

// SensorFaultEvent corrupts one server's temperature sensor over
// [Start, End): readings lie under the given mode until End clears the
// fault (End <= Start leaves it armed to the end of the run).
type SensorFaultEvent struct {
	Server     int
	Start, End int
	Mode       sensor.Mode
	Magnitude  float64
}

// sensorSeedSalt decorrelates the per-server sensor noise streams from
// every simulation stream derived from Config.Seed: the same run seed
// produces the same corruption sequence whether the estimator is armed
// or not, without perturbing workload or chaos draws. (ASCII "SENSOR".)
const sensorSeedSalt = 0x53454e534f52

// PaperConfig returns the configuration of the paper's simulation
// (Section V-B): 4 levels, 18 servers of 450 W, four application classes
// with relative power {1, 2, 5, 9}, Poisson demand, η1 = 4, η2 = 7,
// ambient 25 °C with servers 15–18 in a 40 °C hot zone, thermal limit
// 70 °C, and a supply near the servers' aggregate power rating.
//
// Thermal constants: the paper quotes c1 = 0.08, c2 = 0.05 for the Fig. 4
// window calculation; for sustained operation those values cannot hold a
// 450 W server below 70 °C (see DESIGN.md §6), so the long-running
// simulation uses c2 = 0.05 with c1 = 0.005, calibrated so the
// sustainable thermal power at 25 °C ambient equals the 450 W rating —
// preserving the paper's intended behaviour: cool-zone servers can run
// flat out, 40 °C-zone servers throttle to 2/3 of it.
func PaperConfig(utilization float64) Config {
	return Config{
		Fanout:        []int{2, 3, 3},
		ServerPower:   power.ServerModel{Static: 135, Peak: 450},
		Thermal:       thermal.Model{C1: 0.005, C2: 0.05, Ambient: 25, Limit: 70},
		HotAmbient:    40,
		HotServers:    []int{14, 15, 16, 17}, // servers 15–18, 1-based
		AppsPerServer: 4,
		Classes:       workload.SimClasses(),
		Utilization:   utilization,
		Supply:        power.Constant(18 * 450),
		Network:       netsim.DefaultConfig(),
		Core:          core.Defaults(),
		Warmup:        100,
		Ticks:         400,
		Seed:          2011, // the paper's year; any fixed seed works
	}
}

// Result carries the measurements of one run.
type Result struct {
	Config Config

	// MeanPower is each server's mean consumed power over the measured
	// window (Fig. 5).
	MeanPower []float64
	// MeanTemp is each server's mean temperature (Fig. 6).
	MeanTemp []float64
	// PowerSaved is each server's mean static power avoided by sleeping
	// (Fig. 7): static × fraction of measured ticks spent asleep.
	PowerSaved []float64
	// AsleepFraction is each server's fraction of measured ticks asleep.
	AsleepFraction []float64

	// DemandMigrations / ConsolidationMigrations count by cause (Fig. 9).
	DemandMigrations        int
	ConsolidationMigrations int
	// MigrationShare is migration traffic normalized to network capacity
	// (Fig. 10).
	MigrationShare float64
	// SwitchPower is the mean power of each level-1 switch (Fig. 11).
	SwitchPower []float64
	// SwitchMigrationTraffic is the migration traffic per level-1 switch
	// (Fig. 12).
	SwitchMigrationTraffic []float64

	// TotalEnergy is the run's summed server consumption (watt-ticks,
	// measured window).
	TotalEnergy float64
	// DroppedWattTicks is shed demand over the whole run.
	DroppedWattTicks float64
	// Stats is the controller's raw accounting.
	Stats core.Stats
	// MaxTemp is the hottest *true* temperature any server reached
	// (whole run) — physical state, not the sensor view, so it exposes
	// violations that a lying instrument would hide.
	MaxTemp float64
	// MaxObsTemp is the hottest temperature any server's sensor path
	// reported to the controller (TObs, whole run).
	MaxObsTemp float64
	// LimitViolationTicks counts server-ticks (whole run) on which a
	// server's true temperature exceeded its thermal limit — the
	// headline safety figure of the sensing-robustness experiment.
	LimitViolationTicks int
	// MeanFlowHops is the average switch hops per IPC flow observation
	// (populated when Config.IPCFlows > 0).
	MeanFlowHops float64
	// MeanImbalance is the mean of the paper's Eq. 9 power imbalance per
	// hierarchy level (index = level, 0 = servers), measured after
	// warm-up — the error-accumulation picture of Section IV-E.
	MeanImbalance []float64
	// MeanStretch is the demand-weighted mean request slowdown (M/G/1-PS
	// model) over the measured window; StretchP95 its 95th percentile;
	// SLOMissFraction is the fraction of offered demand shed or served
	// slower than the SLO.
	MeanStretch     float64
	StretchP95      float64
	SLOMissFraction float64

	// Energy is the run's cumulative energy accounting (whole run,
	// joules): the efficiency scoreboard experiments rank
	// configurations by. Kept as the struct's last field — the golden
	// scenario pin strips it positionally (see encodeResult); its
	// determinism is pinned by the dedicated energy identity tests.
	Energy EnergyReport
}

// EnergyReport is a run's energy scoreboard: fleet-wide totals plus the
// per-rack and per-app-class breakdowns, all in joules (watt-ticks ×
// Core.TickSeconds).
type EnergyReport struct {
	// TickSeconds echoes the conversion factor the joules were computed
	// with.
	TickSeconds float64
	Fleet       core.EnergyTotals
	Racks       []core.RackEnergy
	Classes     []core.ClassEnergy
}

// Run executes the configured simulation and returns its measurements.
// It is a Machine stepped to completion (see machine.go), so the live
// daemon and the offline simulator share one code path — and one event
// stream, byte for byte.
func Run(cfg Config) (*Result, error) {
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	for !m.Done() {
		m.Step()
	}
	return m.Result(), nil
}

// UtilizationSweep runs the paper configuration across the given target
// utilizations, returning one Result per point. This is the x-axis of
// Figs. 5–7 and 9–12. Points are independent deterministic simulations,
// so they run concurrently — one goroutine per point, bounded by
// GOMAXPROCS — and the result order matches the input order regardless
// of completion order.
func UtilizationSweep(utils []float64, modify func(*Config)) ([]*Result, error) {
	configs := make([]Config, len(utils))
	for i, u := range utils {
		configs[i] = PaperConfig(u)
		if modify != nil {
			modify(&configs[i])
		}
	}
	return RunAll(configs)
}

// RunAll executes independent simulations concurrently (bounded by
// GOMAXPROCS) and returns their results in input order. The first error
// encountered (by input order) is returned.
//
// Telemetry stays deterministic under the fan-out: each config's Sink
// is swapped for a private buffer during the run, and the buffers are
// replayed into the original sinks sequentially in input order after
// every run completes — so a sink shared across configs sees the exact
// stream a sequential walk would have produced, regardless of worker
// interleaving.
func RunAll(configs []Config) ([]*Result, error) {
	sinks := make([]telemetry.Sink, len(configs))
	buffers := make([]*telemetry.Buffer, len(configs))
	for i := range configs {
		if configs[i].Sink != nil {
			sinks[i] = configs[i].Sink
			buffers[i] = &telemetry.Buffer{}
			configs[i].Sink = buffers[i]
		}
	}

	out := make([]*Result, len(configs))
	errs := make([]error, len(configs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range configs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = Run(configs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: run %d (U=%v): %w", i, configs[i].Utilization, err)
		}
	}
	for i, buf := range buffers {
		if buf != nil {
			buf.ReplayTo(sinks[i])
		}
	}
	return out, nil
}
