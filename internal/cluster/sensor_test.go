package cluster

import (
	"reflect"
	"testing"

	"willow/internal/telemetry"
)

// TestSensorSmoke is the acceptance gate for sensor-fault tolerance:
// under the heavy sensor-chaos preset the robust estimator holds the
// *true* temperature cap with zero violations, while the naive
// controller — trusting the very same corrupted readings — violates
// it. Identical fault plans (same seed, same private sensor streams)
// make the comparison an estimator ablation, nothing else.
func TestSensorSmoke(t *testing.T) {
	const spec = "heavy"
	run := func(naive bool) (*Result, int) {
		cfg := shortConfig(0.7)
		cfg.NaiveSensing = naive
		plan, err := ApplySensorChaos(&cfg, spec, 42)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.SensorFaults) == 0 {
			t.Fatal("heavy preset produced no sensor faults over this horizon")
		}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r, len(plan.SensorFaults)
	}

	robust, planned := run(false)
	if robust.Stats.SensorFaults != planned {
		t.Errorf("controller saw %d sensor faults, plan had %d", robust.Stats.SensorFaults, planned)
	}
	if robust.Stats.SensorRejected == 0 {
		t.Error("heavy sensor chaos but the estimator rejected nothing")
	}
	if robust.Stats.SensorGuardTicks == 0 {
		t.Error("heavy sensor chaos but no guard-band ticks")
	}
	if robust.LimitViolationTicks != 0 {
		t.Errorf("robust estimator let the true temperature over the limit for %d server-ticks (max %.2f °C)",
			robust.LimitViolationTicks, robust.MaxTemp)
	}
	if robust.MaxObsTemp < robust.MaxTemp-1e-6 {
		t.Errorf("observed max %.2f below true max %.2f — safe-side estimate broken",
			robust.MaxObsTemp, robust.MaxTemp)
	}

	naive, _ := run(true)
	if naive.Stats.SensorRejected != 0 || naive.Stats.SensorGuardTicks != 0 {
		t.Errorf("naive run used the estimator: %d rejected, %d guard ticks",
			naive.Stats.SensorRejected, naive.Stats.SensorGuardTicks)
	}
	if naive.LimitViolationTicks == 0 {
		t.Error("naive control under heavy sensor chaos never violated the true limit — the baseline hazard vanished")
	}

	// Same seed, same config → identical outcome.
	robust2, _ := run(false)
	if robust2.TotalEnergy != robust.TotalEnergy || robust2.MaxTemp != robust.MaxTemp ||
		robust2.MaxObsTemp != robust.MaxObsTemp ||
		robust2.Stats.SensorRejected != robust.Stats.SensorRejected ||
		robust2.Stats.SensorGuardTicks != robust.Stats.SensorGuardTicks {
		t.Error("same sensor-chaos seed produced different runs")
	}
}

// TestSensingIdentityAtClusterScale pins the zero-cost contract end to
// end: arming the estimator knobs over a fault-free cluster (no
// sensors attached at all) changes neither the telemetry stream nor
// the run totals relative to the knobs-zero baseline.
func TestSensingIdentityAtClusterScale(t *testing.T) {
	run := func(arm bool) (*Result, []telemetry.Event) {
		cfg := shortConfig(0.6)
		cfg.Ticks = 140
		cfg.Warmup = 40
		if arm {
			cfg.Core.SensorWindow = 5
			cfg.Core.SensorGate = 3
			cfg.Core.SensorTrips = 3
			cfg.Core.SensorGuard = 2
		}
		buf := &telemetry.Buffer{}
		cfg.Sink = buf
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r, buf.Events
	}
	base, baseEvents := run(false)
	armed, armedEvents := run(true)
	if len(baseEvents) == 0 {
		t.Fatal("no events")
	}
	if base.TotalEnergy != armed.TotalEnergy || base.MaxTemp != armed.MaxTemp ||
		base.MaxObsTemp != armed.MaxObsTemp || base.DroppedWattTicks != armed.DroppedWattTicks {
		t.Errorf("arming the estimator over clean sensors changed run totals: energy %v vs %v, max temp %v vs %v",
			base.TotalEnergy, armed.TotalEnergy, base.MaxTemp, armed.MaxTemp)
	}
	if !reflect.DeepEqual(baseEvents, armedEvents) {
		t.Error("arming the estimator over clean sensors changed the event stream")
	}
}
