package cluster

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"willow/internal/telemetry"
)

// TestRunContextCancelStopsAtTickBoundary pins the cancellation
// contract: a cancelled RunContext returns the context error from a
// clean tick boundary — no event for a later tick is ever published
// after the cancellation tick's batch completes.
func TestRunContextCancelStopsAtTickBoundary(t *testing.T) {
	cfg := PaperConfig(0.5)
	cfg.Ticks, cfg.Warmup = 200, 50

	ctx, cancel := context.WithCancel(context.Background())
	const cancelTick = 60
	lastTick := -1
	cfg.Sink = telemetry.SinkFunc(func(e telemetry.Event) {
		lastTick = e.Tick
		if e.Tick >= cancelTick {
			cancel()
		}
	})
	res, err := RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled run returned a result")
	}
	// The tick that observed the cancel finishes; the next one never
	// starts.
	if lastTick > cancelTick {
		t.Fatalf("event published for tick %d after cancellation at %d", lastTick, cancelTick)
	}
}

// TestCancelledRunLeavesParseableEventStream is the regression test
// for the willow-sim SIGINT truncation bug: interrupting a run
// mid-stream and then closing the FileSink (the CLI's cancellation
// path) must leave a complete, parseable JSONL file and a written
// summary — no half-written trailing line, no events lost to an
// unflushed buffer.
func TestCancelledRunLeavesParseableEventStream(t *testing.T) {
	dir := t.TempDir()
	eventsPath := filepath.Join(dir, "events.jsonl")
	summaryPath := filepath.Join(dir, "events.summary.txt")

	sink, err := telemetry.OpenFileSink(eventsPath, summaryPath, "cancelled run", telemetry.AllKinds)
	if err != nil {
		t.Fatal(err)
	}

	cfg := PaperConfig(0.6)
	cfg.Ticks, cfg.Warmup = 400, 100
	ctx, cancel := context.WithCancel(context.Background())
	published := 0
	cfg.Sink = telemetry.SinkFunc(func(e telemetry.Event) {
		sink.Publish(e)
		published++
		if e.Tick >= 120 {
			cancel()
		}
	})

	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("closing sink after cancellation: %v", err)
	}

	f, err := os.Open(eventsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadAll(f)
	if err != nil {
		t.Fatalf("cancelled run left an unparseable stream: %v", err)
	}
	if published == 0 || len(events) != published {
		t.Fatalf("stream has %d events, %d were published", len(events), published)
	}
	if sum, err := os.ReadFile(summaryPath); err != nil || len(sum) == 0 {
		t.Fatalf("summary not written after cancellation: %v (%d bytes)", err, len(sum))
	}
}
