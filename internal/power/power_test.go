package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestServerModelValidate(t *testing.T) {
	if err := TestbedServer().Validate(); err != nil {
		t.Errorf("TestbedServer invalid: %v", err)
	}
	if err := (ServerModel{Static: -1, Peak: 10}).Validate(); err == nil {
		t.Error("negative static accepted")
	}
	if err := (ServerModel{Static: 10, Peak: 5}).Validate(); err == nil {
		t.Error("peak < static accepted")
	}
}

func TestServerPowerEndpoints(t *testing.T) {
	m := TestbedServer()
	if got := m.Power(0); math.Abs(got-159.5) > 1e-9 {
		t.Errorf("P(0) = %v, want 159.5", got)
	}
	if got := m.Power(1); math.Abs(got-232) > 1e-9 {
		t.Errorf("P(1) = %v, want 232", got)
	}
}

func TestServerPowerClamps(t *testing.T) {
	m := TestbedServer()
	if got := m.Power(-0.5); got != m.Static {
		t.Errorf("P(-0.5) = %v, want static %v", got, m.Static)
	}
	if got := m.Power(2); got != m.Peak {
		t.Errorf("P(2) = %v, want peak %v", got, m.Peak)
	}
}

func TestServerUtilizationInverts(t *testing.T) {
	m := TestbedServer()
	for u := 0.0; u <= 1.0; u += 0.05 {
		got := m.Utilization(m.Power(u))
		if math.Abs(got-u) > 1e-9 {
			t.Errorf("Utilization(Power(%v)) = %v", u, got)
		}
	}
}

func TestServerUtilizationClamps(t *testing.T) {
	m := TestbedServer()
	if got := m.Utilization(0); got != 0 {
		t.Errorf("Utilization(0 W) = %v, want 0", got)
	}
	if got := m.Utilization(1e6); got != 1 {
		t.Errorf("Utilization(1 MW) = %v, want 1", got)
	}
	deg := ServerModel{Static: 100, Peak: 100}
	if got := deg.Utilization(100); got != 0 {
		t.Errorf("degenerate model utilization = %v, want 0", got)
	}
}

// TestTableIReconstruction checks the anchors the reconstruction was
// derived from: ~232 W at 100 % and the §V-C5 consolidation arithmetic —
// servers at 80/40/20 % draw 580 W total, and consolidating to 100/40/off
// saves ≈27.5 %.
func TestTableIReconstruction(t *testing.T) {
	m := TestbedServer()
	before := m.Power(0.8) + m.Power(0.4) + m.Power(0.2)
	if math.Abs(before-580) > 0.5 {
		t.Errorf("pre-consolidation total = %v W, want 580 W", before)
	}
	after := m.Power(1.0) + m.Power(0.4) // third server off
	savings := 1 - after/before
	if math.Abs(savings-0.275) > 0.005 {
		t.Errorf("consolidation savings = %.3f, want ~0.275", savings)
	}
}

func TestTableIRows(t *testing.T) {
	rows := TableI()
	if len(rows) != 11 {
		t.Fatalf("TableI has %d rows, want 11", len(rows))
	}
	prev := -1.0
	for _, r := range rows {
		if r.Watts <= prev {
			t.Errorf("TableI not strictly increasing at u=%v", r.Util)
		}
		prev = r.Watts
	}
	if rows[0].Util != 0 || rows[10].Util != 1 {
		t.Error("TableI endpoints wrong")
	}
}

func TestSwitchModel(t *testing.T) {
	m := SwitchModel{Static: 5, PerTraffic: 2, MaxTraffic: 100}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Power(0); got != 5 {
		t.Errorf("idle switch power = %v, want 5", got)
	}
	if got := m.Power(10); got != 25 {
		t.Errorf("P(10) = %v, want 25", got)
	}
	// Clamping.
	if got := m.Power(-3); got != 5 {
		t.Errorf("P(-3) = %v, want 5", got)
	}
	if got := m.Power(1e9); got != m.Power(100) {
		t.Errorf("traffic beyond capacity not clamped: %v", got)
	}
}

func TestSwitchModelValidate(t *testing.T) {
	if err := (SwitchModel{Static: -1, PerTraffic: 1, MaxTraffic: 1}).Validate(); err == nil {
		t.Error("negative static accepted")
	}
	if err := (SwitchModel{Static: 1, PerTraffic: 1, MaxTraffic: 0}).Validate(); err == nil {
		t.Error("zero MaxTraffic accepted")
	}
}

func TestConstantSupply(t *testing.T) {
	s := Constant(450)
	for _, tick := range []int{0, 1, 100000} {
		if got := s.At(tick); got != 450 {
			t.Errorf("Constant.At(%d) = %v", tick, got)
		}
	}
}

func TestTraceSupplyWraps(t *testing.T) {
	tr := Trace{1, 2, 3}
	if got := tr.At(0); got != 1 {
		t.Errorf("At(0) = %v", got)
	}
	if got := tr.At(4); got != 2 {
		t.Errorf("At(4) = %v, want wrap to 2", got)
	}
	if got := tr.At(-1); got != 1 {
		t.Errorf("At(-1) = %v, want clamp to first", got)
	}
	if got := Trace(nil).At(5); got != 0 {
		t.Errorf("empty trace At = %v, want 0", got)
	}
}

func TestTraceStats(t *testing.T) {
	tr := Trace{2, 4, 6}
	if got := tr.Mean(); math.Abs(got-4) > 1e-12 {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := tr.Min(); got != 2 {
		t.Errorf("Min = %v, want 2", got)
	}
	if got := Trace(nil).Mean(); got != 0 {
		t.Errorf("empty Mean = %v", got)
	}
	if got := Trace(nil).Min(); !math.IsInf(got, 1) {
		t.Errorf("empty Min = %v, want +Inf", got)
	}
}

func TestSineSupply(t *testing.T) {
	s := Sine{Base: 100, Amplitude: 50, Period: 40}
	if got := s.At(0); math.Abs(got-100) > 1e-9 {
		t.Errorf("At(0) = %v, want 100", got)
	}
	if got := s.At(10); math.Abs(got-150) > 1e-9 {
		t.Errorf("At(quarter period) = %v, want 150", got)
	}
	if got := s.At(30); math.Abs(got-50) > 1e-9 {
		t.Errorf("At(3/4 period) = %v, want 50", got)
	}
	// Never negative even when amplitude exceeds base.
	neg := Sine{Base: 10, Amplitude: 100, Period: 4}
	for tick := 0; tick < 8; tick++ {
		if neg.At(tick) < 0 {
			t.Errorf("Sine produced negative supply at tick %d", tick)
		}
	}
	// Degenerate period falls back to base.
	if got := (Sine{Base: 77, Period: 0}).At(5); got != 77 {
		t.Errorf("zero-period sine = %v, want 77", got)
	}
}

func TestScaledSupply(t *testing.T) {
	s := Scaled{S: Constant(100), Factor: 0.5}
	if got := s.At(3); got != 50 {
		t.Errorf("Scaled.At = %v, want 50", got)
	}
}

// TestDeficitTraceShape pins the defining features of Fig. 15: plunges at
// time units 7, 12 and 25; the first persisting through unit 10; mean near
// the 60 %-utilization demand of three testbed servers (~610 W).
func TestDeficitTraceShape(t *testing.T) {
	tr := DeficitTrace()
	if len(tr) != 30 {
		t.Fatalf("trace length %d, want 30", len(tr))
	}
	mean := tr.Mean()
	if mean < 570 || mean > 640 {
		t.Errorf("trace mean %v W, want near 610 W", mean)
	}
	demand60 := 3 * TestbedServer().Power(0.6)
	for _, plunge := range []int{7, 12, 25} {
		if tr[plunge] >= demand60 {
			t.Errorf("tick %d: supply %v not below 60%% demand %v", plunge, tr[plunge], demand60)
		}
		if tr[plunge] >= tr[plunge-1] {
			t.Errorf("tick %d is not a plunge: %v -> %v", plunge, tr[plunge-1], tr[plunge])
		}
	}
	// The first plunge persists through unit 10.
	for tick := 7; tick <= 10; tick++ {
		if tr[tick] > 500 {
			t.Errorf("plunge did not persist at tick %d: %v", tick, tr[tick])
		}
	}
}

// TestPlentyTraceShape pins Fig. 19: mean near 750 W and enough supply at
// every tick for all three servers at full load minus slack.
func TestPlentyTraceShape(t *testing.T) {
	tr := PlentyTrace()
	mean := tr.Mean()
	if math.Abs(mean-757) > 15 {
		t.Errorf("plenty trace mean %v, want ~750 W", mean)
	}
	full := 3 * TestbedServer().Power(1.0) // 696 W
	if tr.Min() < full {
		t.Errorf("plenty trace min %v dips below full-load demand %v", tr.Min(), full)
	}
}

func TestUPSPassthroughWhenBalanced(t *testing.T) {
	u := NewUPS(1000, 100, 1)
	if got := u.Deliver(500, 500); got != 500 {
		t.Errorf("balanced Deliver = %v, want 500", got)
	}
	if u.SoC() != 1 {
		t.Errorf("SoC changed on balanced delivery: %v", u.SoC())
	}
}

func TestUPSDischargesOnDeficit(t *testing.T) {
	u := NewUPS(1000, 100, 1)
	got := u.Deliver(400, 480)
	if got != 480 {
		t.Errorf("Deliver = %v, want full demand 480", got)
	}
	if math.Abs(u.Charge-920) > 1e-9 {
		t.Errorf("charge = %v, want 920", u.Charge)
	}
}

func TestUPSDischargeRateLimited(t *testing.T) {
	u := NewUPS(1000, 50, 1)
	got := u.Deliver(400, 600) // needs 200, rate caps at 50
	if got != 450 {
		t.Errorf("Deliver = %v, want 450 (supply + max discharge)", got)
	}
}

func TestUPSEmptyBattery(t *testing.T) {
	u := NewUPS(1000, 100, 1)
	u.Charge = 20
	got := u.Deliver(400, 600)
	if got != 420 {
		t.Errorf("Deliver = %v, want 420 (supply + remaining charge)", got)
	}
	if u.Charge != 0 {
		t.Errorf("charge = %v, want 0", u.Charge)
	}
	if u.SoC() != 0 {
		t.Errorf("SoC = %v, want 0", u.SoC())
	}
}

func TestUPSChargesOnSurplus(t *testing.T) {
	u := NewUPS(1000, 100, 0.9)
	u.Charge = 500
	got := u.Deliver(700, 600) // 100 spare, 90 stored at 0.9 efficiency
	if got != 600 {
		t.Errorf("Deliver = %v, want demand 600", got)
	}
	if math.Abs(u.Charge-590) > 1e-9 {
		t.Errorf("charge = %v, want 590", u.Charge)
	}
}

func TestUPSChargeCaps(t *testing.T) {
	u := NewUPS(1000, 100, 1)
	u.Charge = 980
	u.Deliver(800, 600) // spare 200, rate-capped to 100, capacity-capped to 1000
	if u.Charge != 1000 {
		t.Errorf("charge = %v, want capped at 1000", u.Charge)
	}
}

func TestUPSNegativeInputsClamped(t *testing.T) {
	u := NewUPS(100, 10, 1)
	if got := u.Deliver(-5, -10); got != 0 {
		t.Errorf("Deliver with negative inputs = %v, want 0", got)
	}
}

func TestNewUPSBadEfficiency(t *testing.T) {
	u := NewUPS(100, 10, 0)
	if u.Efficiency != 1 {
		t.Errorf("efficiency fallback = %v, want 1", u.Efficiency)
	}
	u = NewUPS(100, 10, 2)
	if u.Efficiency != 1 {
		t.Errorf("efficiency fallback = %v, want 1", u.Efficiency)
	}
}

func TestUPSZeroCapacitySoC(t *testing.T) {
	u := &UPS{}
	if got := u.SoC(); got != 0 {
		t.Errorf("zero-capacity SoC = %v, want 0", got)
	}
}

// Property: a UPS never delivers more than demand nor less than zero, and
// its charge stays within [0, Capacity].
func TestUPSInvariantsQuick(t *testing.T) {
	f := func(rawSupply, rawDemand, rawCharge uint16) bool {
		u := NewUPS(1000, 100, 0.95)
		u.Charge = float64(rawCharge % 1001)
		supply := float64(rawSupply % 2000)
		demand := float64(rawDemand % 2000)
		got := u.Deliver(supply, demand)
		if got < 0 || got > demand+1e-9 {
			return false
		}
		return u.Charge >= 0 && u.Charge <= u.Capacity+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the server power curve is monotone non-decreasing in
// utilization.
func TestServerPowerMonotoneQuick(t *testing.T) {
	f := func(a, b uint16) bool {
		m := TestbedServer()
		ua := float64(a) / 65535
		ub := float64(b) / 65535
		if ua > ub {
			ua, ub = ub, ua
		}
		return m.Power(ua) <= m.Power(ub)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUPSDeliver(b *testing.B) {
	u := NewUPS(10000, 500, 0.95)
	for i := 0; i < b.N; i++ {
		u.Deliver(float64(400+i%300), float64(500+i%200))
	}
}

func TestDynamicRange(t *testing.T) {
	if got := TestbedServer().DynamicRange(); math.Abs(got-72.5) > 1e-9 {
		t.Errorf("DynamicRange = %v, want 72.5", got)
	}
}

func TestForesightShiftsTimeline(t *testing.T) {
	tr := Trace{10, 20, 30, 40}
	f := Foresight{S: tr, Epochs: 1}
	if got := f.At(0); got != 20 {
		t.Errorf("Foresight.At(0) = %v, want 20 (one epoch ahead)", got)
	}
	if got := f.At(2); got != 40 {
		t.Errorf("Foresight.At(2) = %v, want 40", got)
	}
}
