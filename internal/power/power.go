// Package power contains the electrical models of the Willow
// reproduction: server and switch power-consumption curves, power-supply
// profiles (including the variation traces of the paper's Figs. 15 and
// 19), and a battery-backed UPS that integrates out short supply dips
// (the reason the paper's supply-side time constant Δ_S exceeds the
// demand-side Δ_D, Section IV-C).
package power

import (
	"fmt"
	"math"
)

// ServerModel maps server utilization to power draw. Under the paper's
// assumptions (Section IV-C) one platform resource bottlenecks first and
// power is a monotonic, approximately linear function of its utilization:
//
//	P(u) = Static + (Peak − Static)·u,  u ∈ [0, 1]
//
// Static is the idle draw (the paper's testbed found it almost constant),
// Peak the draw at 100 % utilization.
type ServerModel struct {
	Static float64 // watts at idle
	Peak   float64 // watts at 100 % utilization
}

// Validate reports whether the curve is physically sensible.
func (m ServerModel) Validate() error {
	if m.Static < 0 {
		return fmt.Errorf("power: negative static power %v", m.Static)
	}
	if m.Peak < m.Static {
		return fmt.Errorf("power: peak %v below static %v", m.Peak, m.Static)
	}
	return nil
}

// Power returns the draw at utilization u. u is clamped to [0, 1].
func (m ServerModel) Power(u float64) float64 {
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	return m.Static + (m.Peak-m.Static)*u
}

// Utilization inverts Power: the utilization that draws p watts, clamped
// to [0, 1]. For a degenerate curve (Peak == Static) it returns 0.
func (m ServerModel) Utilization(p float64) float64 {
	if m.Peak <= m.Static {
		return 0
	}
	u := (p - m.Static) / (m.Peak - m.Static)
	if u < 0 {
		return 0
	} else if u > 1 {
		return 1
	}
	return u
}

// DynamicRange returns Peak − Static, the power span utilization controls.
func (m ServerModel) DynamicRange() float64 { return m.Peak - m.Static }

// TestbedServer reconstructs the utilization→power curve of the paper's
// Table I. The exact table entries did not survive text extraction; the
// paper states the relationship is continuously increasing and roughly
// linear with near-constant static power and ≈232 W at 100 % CPU. The
// linear fit P(u) = 159.5 + 72.5·u reproduces the §V-C5 arithmetic
// exactly: 580 W total at 80/40/20 % and the 27.5 % consolidation saving.
func TestbedServer() ServerModel { return ServerModel{Static: 159.5, Peak: 232} }

// UtilPower is one row of a utilization→power table.
type UtilPower struct {
	Util  float64 // fraction in [0, 1]
	Watts float64
}

// TableI returns the reconstructed Table I rows at the paper's 10 %
// utilization steps.
func TableI() []UtilPower {
	m := TestbedServer()
	rows := make([]UtilPower, 0, 11)
	for u := 0; u <= 10; u++ {
		f := float64(u) / 10
		rows = append(rows, UtilPower{Util: f, Watts: m.Power(f)})
	}
	return rows
}

// SwitchModel maps switch traffic to power. The paper's model
// (Section V-B5) has a small fixed static part plus a dynamic part
// directly proportional to traffic handled.
type SwitchModel struct {
	Static     float64 // watts drawn regardless of traffic
	PerTraffic float64 // watts per unit of traffic
	MaxTraffic float64 // traffic capacity (normalization base for Fig. 10)
}

// Validate reports whether the switch curve is sensible.
func (m SwitchModel) Validate() error {
	if m.Static < 0 || m.PerTraffic < 0 {
		return fmt.Errorf("power: negative switch coefficients %+v", m)
	}
	if m.MaxTraffic <= 0 {
		return fmt.Errorf("power: switch MaxTraffic must be positive, got %v", m.MaxTraffic)
	}
	return nil
}

// Power returns the switch draw while handling the given traffic
// (clamped to [0, MaxTraffic]).
func (m SwitchModel) Power(traffic float64) float64 {
	if traffic < 0 {
		traffic = 0
	} else if traffic > m.MaxTraffic {
		traffic = m.MaxTraffic
	}
	return m.Static + m.PerTraffic*traffic
}

// Supply yields the power budget available to a subtree at each control
// tick. Implementations must be deterministic functions of the tick.
type Supply interface {
	// At returns the available power at tick t (t >= 0), in watts.
	At(t int) float64
}

// Constant is a fixed supply.
type Constant float64

// At implements Supply.
func (c Constant) At(int) float64 { return float64(c) }

// Trace replays a recorded supply profile. Ticks beyond the trace wrap
// around, so a Trace is also a periodic supply.
type Trace []float64

// At implements Supply.
func (tr Trace) At(t int) float64 {
	if len(tr) == 0 {
		return 0
	}
	if t < 0 {
		t = 0
	}
	return tr[t%len(tr)]
}

// Mean returns the average of the trace (0 for an empty trace).
func (tr Trace) Mean() float64 {
	if len(tr) == 0 {
		return 0
	}
	var s float64
	for _, v := range tr {
		s += v
	}
	return s / float64(len(tr))
}

// Min returns the minimum of the trace (+Inf for an empty trace).
func (tr Trace) Min() float64 {
	min := math.Inf(1)
	for _, v := range tr {
		if v < min {
			min = v
		}
	}
	return min
}

// Sine is a sinusoidal supply, the canonical stand-in for diurnal
// renewable generation: Base + Amplitude·sin(2π·t/Period).
type Sine struct {
	Base      float64
	Amplitude float64
	Period    int // ticks per full cycle; must be positive
}

// At implements Supply. Negative results are clamped to zero (a solar
// array cannot draw power from the data center).
func (s Sine) At(t int) float64 {
	if s.Period <= 0 {
		return s.Base
	}
	v := s.Base + s.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(s.Period))
	if v < 0 {
		return 0
	}
	return v
}

// Scaled wraps a Supply and multiplies it by a constant factor, e.g. to
// derate a feed or convert per-server to per-rack budgets.
type Scaled struct {
	S      Supply
	Factor float64
}

// At implements Supply.
func (s Scaled) At(t int) float64 { return s.Factor * s.S.At(t) }

// Foresight shifts a supply's timeline earlier: At(t) returns the value
// Epochs epochs in the future. It models an oracle (or a good forecast —
// day-ahead solar predictions are routine) that lets the controller act
// before a change arrives rather than react after it.
type Foresight struct {
	S      Supply
	Epochs int
}

// At implements Supply.
func (f Foresight) At(t int) float64 { return f.S.At(t + f.Epochs) }

// DeficitTrace returns the supply-variation profile of Fig. 15: the
// energy-deficient scenario driven against three testbed servers at an
// average utilization of 60 %. The paper injected the variation
// artificially; this synthesis preserves its defining features: deep
// plunges at time units 7, 12 and 25, with the first persisting through
// time unit 10, around a mean just sufficient for 60 % utilization
// (3 servers × ~203 W ≈ 610 W).
func DeficitTrace() Trace {
	return Trace{
		630, 625, 620, 628, 622, 618, 626, // 0-6: comfortable
		470, 475, 472, 478, // 7-10: deep plunge, persists
		600, 505, 512, 598, 605, 612, 608, 615, 610, // 11-19: second dip at 12-13
		618, 612, 620, 616, 609, // 20-24
		460, 468, 474, // 25-27: third plunge
		605, 612, // 28-29: recovery
	}
}

// PlentyTrace returns the supply profile of Fig. 19: the energy-plenty
// scenario whose average sits near the power needed to run all three
// testbed servers at 100 % utilization (≈750 W), leaving consolidation —
// not deficit — as the only migration driver.
func PlentyTrace() Trace {
	return Trace{
		755, 762, 748, 770, 745, 758, 766, 752, 760, 749,
		772, 757, 744, 763, 751, 768, 756, 747, 765, 753,
		759, 771, 746, 754, 769, 750, 761, 743, 767, 758,
	}
}

// UPS is a battery-backed uninterruptible power supply that smooths a raw
// feed: surplus charges the battery, deficits discharge it. This is the
// mechanism by which "any temporary deficit in power supply in a data
// center is integrated out" (Section IV-C), justifying the coarser supply
// time constant Δ_S = η1·Δ_D.
type UPS struct {
	Capacity     float64 // energy capacity in watt-ticks
	Charge       float64 // current stored energy in watt-ticks
	MaxCharge    float64 // max charging power, watts
	MaxDischarge float64 // max discharging power, watts
	Efficiency   float64 // round-trip efficiency in (0, 1], applied on charge
}

// NewUPS returns a UPS with the given capacity, starting fully charged,
// with symmetric charge/discharge rates and the given round-trip
// efficiency.
func NewUPS(capacity, rate, efficiency float64) *UPS {
	if efficiency <= 0 || efficiency > 1 {
		efficiency = 1
	}
	return &UPS{
		Capacity:     capacity,
		Charge:       capacity,
		MaxCharge:    rate,
		MaxDischarge: rate,
		Efficiency:   efficiency,
	}
}

// Deliver processes one tick: the raw feed supplies supply watts while the
// load demands demand watts. It returns the power actually deliverable to
// the load this tick (never more than demand) after the battery absorbs
// the imbalance, and updates the battery charge.
func (u *UPS) Deliver(supply, demand float64) float64 {
	if supply < 0 {
		supply = 0
	}
	if demand < 0 {
		demand = 0
	}
	if supply >= demand {
		// Surplus: charge the battery with what the load does not need.
		spare := supply - demand
		if spare > u.MaxCharge {
			spare = u.MaxCharge
		}
		u.Charge += spare * u.Efficiency
		if u.Charge > u.Capacity {
			u.Charge = u.Capacity
		}
		return demand
	}
	// Deficit: discharge.
	need := demand - supply
	discharge := need
	if discharge > u.MaxDischarge {
		discharge = u.MaxDischarge
	}
	if discharge > u.Charge {
		discharge = u.Charge
	}
	u.Charge -= discharge
	return supply + discharge
}

// SoC returns the state of charge as a fraction in [0, 1].
func (u *UPS) SoC() float64 {
	if u.Capacity <= 0 {
		return 0
	}
	return u.Charge / u.Capacity
}
