// Package baseline defines the comparison controllers used by the
// ablation benchmarks: variants of the Willow configuration that disable
// one design choice at a time, so each bench isolates that choice's
// contribution (DESIGN.md's ablation index).
//
// All variants run on the same simulator and workload; only the control
// policy differs:
//
//	Willow       — the full scheme (reference).
//	NoControl    — no migrations at all: deficits are shed where they
//	               arise. The "do nothing" floor.
//	NoMargin     — migrations without the P_min hysteresis margin,
//	               demonstrating the churn the margin prevents.
//	LocalOnly    — migrations restricted to siblings; no escalation up
//	               the hierarchy, so imbalances across racks persist.
//	Centralized  — a flat, single-level hierarchy: one controller sees
//	               every server directly. Matches Willow's solution
//	               quality (the paper's Property 2) but concentrates all
//	               control messages on the root.
//	Oracle       — Willow fed a one-epoch supply forecast; adaptation
//	               completes before a change lands instead of after.
package baseline

import (
	"fmt"

	"willow/internal/cluster"
	"willow/internal/power"
)

// Variant names one comparison controller.
type Variant string

// The supported variants.
const (
	Willow      Variant = "willow"
	NoControl   Variant = "no-control"
	NoMargin    Variant = "no-margin"
	LocalOnly   Variant = "local-only"
	Centralized Variant = "centralized"
	// Oracle is Willow fed a one-epoch supply forecast: budgets tighten
	// before a plunge actually lands, so adaptation completes in advance.
	Oracle Variant = "oracle"
)

// Variants lists all variants in presentation order.
func Variants() []Variant {
	return []Variant{Willow, NoControl, NoMargin, LocalOnly, Centralized, Oracle}
}

// Configure mutates a cluster configuration to implement the variant.
func Configure(v Variant, cfg *cluster.Config) error {
	switch v {
	case Willow:
		// Reference: leave the paper configuration untouched.
	case NoControl:
		// An unreachable margin makes every migration infeasible, and the
		// (effectively) zero threshold stops consolidation.
		cfg.Core.PMin = 1e12
		cfg.Core.ConsolidateBelow = 1e-12
	case NoMargin:
		// A vanishing margin removes the hysteresis; a 1-tick ping-pong
		// window effectively disables the anti-return guard so the
		// resulting churn is observable.
		cfg.Core.PMin = 1e-9
		cfg.Core.PingPongWindow = 1
	case LocalOnly:
		cfg.Core.LocalOnly = true
	case Centralized:
		// Flatten the hierarchy: every server is a direct child of the
		// root, so one controller makes all decisions.
		n := 1
		for _, f := range cfg.Fanout {
			n *= f
		}
		cfg.Fanout = []int{n}
	case Oracle:
		cfg.Supply = power.Foresight{S: cfg.Supply, Epochs: 1}
	default:
		return fmt.Errorf("baseline: unknown variant %q", v)
	}
	return nil
}

// Run executes one variant at the given utilization on the paper
// configuration (with the caller's modifications applied first).
func Run(v Variant, utilization float64, modify func(*cluster.Config)) (*cluster.Result, error) {
	cfg := cluster.PaperConfig(utilization)
	if modify != nil {
		modify(&cfg)
	}
	if err := Configure(v, &cfg); err != nil {
		return nil, err
	}
	return cluster.Run(cfg)
}

// Compare runs every requested variant on identical workloads and
// returns the results keyed by variant.
func Compare(variants []Variant, utilization float64, modify func(*cluster.Config)) (map[Variant]*cluster.Result, error) {
	out := make(map[Variant]*cluster.Result, len(variants))
	for _, v := range variants {
		r, err := Run(v, utilization, modify)
		if err != nil {
			return nil, fmt.Errorf("baseline %s: %w", v, err)
		}
		out[v] = r
	}
	return out, nil
}
