package baseline

import (
	"testing"

	"willow/internal/cluster"
)

func short(c *cluster.Config) {
	c.Warmup = 50
	c.Ticks = 180
}

func TestConfigureUnknownVariant(t *testing.T) {
	cfg := cluster.PaperConfig(0.5)
	if err := Configure(Variant("bogus"), &cfg); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestVariantsListed(t *testing.T) {
	vs := Variants()
	if len(vs) != 6 || vs[0] != Willow {
		t.Errorf("Variants() = %v", vs)
	}
	for _, v := range vs {
		cfg := cluster.PaperConfig(0.5)
		if err := Configure(v, &cfg); err != nil {
			t.Errorf("Configure(%s): %v", v, err)
		}
	}
}

func TestCentralizedFlattensHierarchy(t *testing.T) {
	cfg := cluster.PaperConfig(0.5)
	if err := Configure(Centralized, &cfg); err != nil {
		t.Fatal(err)
	}
	if len(cfg.Fanout) != 1 || cfg.Fanout[0] != 18 {
		t.Errorf("fanout = %v, want [18]", cfg.Fanout)
	}
}

// TestNoControlNeverMigrates: the floor baseline takes no actions and
// consequently drops more demand than Willow under thermal pressure.
func TestNoControlNeverMigrates(t *testing.T) {
	none, err := Run(NoControl, 0.7, short)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(none.Stats.Migrations); got != 0 {
		t.Fatalf("NoControl migrated %d times", got)
	}
	willow, err := Run(Willow, 0.7, short)
	if err != nil {
		t.Fatal(err)
	}
	if willow.DroppedWattTicks >= none.DroppedWattTicks {
		t.Errorf("Willow dropped %v >= NoControl %v — migrations bought nothing",
			willow.DroppedWattTicks, none.DroppedWattTicks)
	}
}

// TestNoMarginChurns: removing the P_min hysteresis produces more
// migrations than the full scheme on the same workload.
func TestNoMarginChurns(t *testing.T) {
	margin, err := Run(Willow, 0.6, short)
	if err != nil {
		t.Fatal(err)
	}
	churn, err := Run(NoMargin, 0.6, short)
	if err != nil {
		t.Fatal(err)
	}
	if len(churn.Stats.Migrations) <= len(margin.Stats.Migrations) {
		t.Errorf("NoMargin migrations %d <= Willow %d — margin shows no effect",
			len(churn.Stats.Migrations), len(margin.Stats.Migrations))
	}
}

// TestLocalOnlyKeepsMigrationsLocal and leaves cross-rack imbalance on
// the table (more dropped demand under thermal pressure).
func TestLocalOnlyKeepsMigrationsLocal(t *testing.T) {
	local, err := Run(LocalOnly, 0.75, short)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range local.Stats.Migrations {
		if !m.Local {
			t.Fatalf("LocalOnly produced a non-local migration: %+v", m)
		}
	}
	full, err := Run(Willow, 0.75, short)
	if err != nil {
		t.Fatal(err)
	}
	if full.DroppedWattTicks > local.DroppedWattTicks {
		t.Errorf("full Willow dropped more (%v) than LocalOnly (%v)",
			full.DroppedWattTicks, local.DroppedWattTicks)
	}
}

// TestCentralizedMatchesQuality: per the paper's Property 2, the
// distributed scheme's solution quality tracks the centralized one —
// dropped demand within a modest factor on the same workload.
func TestCentralizedMatchesQuality(t *testing.T) {
	res, err := Compare([]Variant{Willow, Centralized}, 0.6, short)
	if err != nil {
		t.Fatal(err)
	}
	w := res[Willow]
	c := res[Centralized]
	// Energy served must be comparable (within 5 %).
	ratio := w.TotalEnergy / c.TotalEnergy
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("energy ratio willow/centralized = %v, want ~1", ratio)
	}
}

func TestCompareReturnsAllVariants(t *testing.T) {
	res, err := Compare([]Variant{Willow, NoControl}, 0.5, short)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	if res[Willow] == nil || res[NoControl] == nil {
		t.Error("missing variant result")
	}
}

func BenchmarkWillowVsNoControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Willow, 0.6, short); err != nil {
			b.Fatal(err)
		}
		if _, err := Run(NoControl, 0.6, short); err != nil {
			b.Fatal(err)
		}
	}
}

// TestOracleForesightHelps: under a plunging supply, a one-epoch
// forecast lets the controller complete adaptation before the plunge
// lands, shedding no more (and typically less) demand than reactive
// Willow.
func TestOracleForesightHelps(t *testing.T) {
	modify := func(c *cluster.Config) {
		short(c)
		c.Supply = cluster.PaperConfig(0.6).Supply // replaced below
	}
	_ = modify
	withSupply := func(v Variant) (*cluster.Result, error) {
		return Run(v, 0.6, func(c *cluster.Config) {
			short(c)
			c.Supply = plungeTrace()
		})
	}
	reactive, err := withSupply(Willow)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := withSupply(Oracle)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.DroppedWattTicks > reactive.DroppedWattTicks*1.2 {
		t.Errorf("foresight shed more: oracle %v vs reactive %v",
			oracle.DroppedWattTicks, reactive.DroppedWattTicks)
	}
}

// plungeTrace is a supply with abrupt deep plunges.
func plungeTrace() interface{ At(int) float64 } {
	return tracePlunge{}
}

type tracePlunge struct{}

func (tracePlunge) At(t int) float64 {
	switch {
	case t%10 == 5 || t%10 == 6:
		return 5200
	default:
		return 8100
	}
}
