package core

// The sensing layer splits "true" physical state from "observed" state.
// Every Eq. 3 power-limit computation reads Server.TObs, never the
// physical Thermal.T; TObs is produced here, once per tick right after
// the temperature integrates forward, from the server's (possibly
// faulty) sensor reading.
//
// With Config's sensing knobs all zero the layer is the identity — a
// fault-free server's TObs equals Thermal.T bit-for-bit, so the control
// path matches a build without the layer byte-for-byte. With the
// estimator armed, each reading is filtered through a median-of-window
// plus a residual gate against the RC-model one-step prediction
// (thermal.Model.Step): readings the gate rejects do not enter the
// median, SensorTrips consecutive rejections flag the sensor unhealthy,
// and an unhealthy (or dropped-out) sensor falls back safe-side — the
// control temperature becomes the model prediction plus the SensorGuard
// band, decaying toward the thermal limit if the outage outlives the
// budget-lease grace period, which walks the Eq. 3 cap down to the
// sustainable steady-state floor exactly like PR 3's degraded mode.
//
// Safety argument: the estimator's recursive state (the anchor) is
// clamped from below by the model prediction from the previous anchor.
// Because thermal.Model.Step is monotone in its starting temperature
// and the anchor starts at the true ambient, the anchor — and with it
// TObs — never falls below the true temperature under the exact model,
// no matter what the sensor reports. Caps derived from TObs are
// therefore always at least as tight as truth-derived ones, which is
// what keeps the *physical* temperature under its limit while the
// instrument lies (see TestSensorChaosTrueTemperatureCap).

import (
	"math"

	"willow/internal/sensor"
	"willow/internal/telemetry"
)

// estimator is the per-server robust temperature estimator state.
type estimator struct {
	// window is a ring buffer of the last accepted readings.
	window []float64
	n, at  int

	// anchor is the recursive safe-side estimate the next one-step
	// prediction starts from; it never falls below the true temperature
	// (see the package comment's safety argument).
	anchor float64

	unhealthy  bool
	badStreak  int
	goodStreak int

	// outage counts consecutive ticks spent on the model fallback;
	// fallback is the decay-toward-limit temperature of a persistent
	// outage (valid when haveFallback).
	outage       int
	fallback     float64
	haveFallback bool
}

func newEstimator(window int, t0 float64) *estimator {
	return &estimator{window: make([]float64, window), anchor: t0}
}

func (e *estimator) push(v float64) {
	e.window[e.at] = v
	e.at = (e.at + 1) % len(e.window)
	if e.n < len(e.window) {
		e.n++
	}
}

// median returns the median of the accepted-reading window (mean of the
// middle two for even counts). Call only with n > 0.
func (e *estimator) median() float64 {
	var buf [16]float64
	vals := buf[:0]
	vals = append(vals, e.window[:e.n]...)
	// insertion sort: the window is tiny and allocation-free matters
	// (this runs per server per tick).
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	if len(vals)%2 == 1 {
		return vals[len(vals)/2]
	}
	return (vals[len(vals)/2-1] + vals[len(vals)/2]) / 2
}

// AttachSensor routes server idx's temperature readings through the
// given instrument. Sensors must be attached before the run starts;
// the harness gives each a private random stream (cluster.Run).
func (c *Controller) AttachSensor(idx int, sn *sensor.Sensor) {
	c.Servers[idx].sensor = sn
	c.sensorsArmed = true
}

// SetSensorFault arms a fault on server idx's sensor (attaching a
// default instrument if none is present) and records it.
func (c *Controller) SetSensorFault(idx int, f sensor.Fault) {
	s := c.Servers[idx]
	if s.sensor == nil {
		s.sensor = sensor.New(nil)
	}
	c.sensorsArmed = true
	s.sensor.Set(f, c.tick)
	c.Stats.SensorFaults++
	if c.Sink != nil {
		c.publish(telemetry.Event{
			Tick: c.tick, Kind: telemetry.KindSensor,
			Server: s.Node.ServerIndex,
			Cause:  "inject:" + f.Mode.String(), Watts: f.Magnitude,
		})
	}
}

// ClearSensorFault heals server idx's sensor.
func (c *Controller) ClearSensorFault(idx int) {
	s := c.Servers[idx]
	if s.sensor == nil {
		return
	}
	s.sensor.Clear()
	if c.Sink != nil {
		c.publish(telemetry.Event{
			Tick: c.tick, Kind: telemetry.KindSensor,
			Server: s.Node.ServerIndex, Cause: "clear",
		})
	}
}

// sense refreshes s.TObs from the sensor after the temperature advanced
// under the given consumed power. It runs at the end of every tick for
// every server (asleep ones included — their instruments keep
// reporting), so within-tick allocation and post-tick observers both
// see the same observed state.
func (c *Controller) sense(s *Server, consumed float64) {
	raw := s.Thermal.T
	if s.sensor != nil {
		raw = s.sensor.Read(s.Thermal.T, c.tick)
	}
	if s.est == nil {
		// Naive mode: trust the instrument. A non-finite reading (dropout)
		// holds the previous observation — a frozen gauge, not a NaN that
		// would poison Eq. 3 and the telemetry stream.
		if isFinite(raw) {
			s.setTObs(raw)
		}
		return
	}
	s.setTObs(c.estimate(s, raw, consumed))
}

// estimate runs one tick of the robust estimator: residual-gate the
// reading, update sensor health, and produce the control temperature.
func (c *Controller) estimate(s *Server, raw, consumed float64) float64 {
	e := s.est
	m := s.Thermal.Model
	pred := m.Step(e.anchor, consumed, c.Cfg.ThermalDt)

	ok := isFinite(raw) && (c.Cfg.SensorGate <= 0 || math.Abs(raw-pred) <= c.Cfg.SensorGate)
	if ok {
		e.push(raw)
		e.goodStreak++
		e.badStreak = 0
		if e.unhealthy && e.goodStreak >= c.Cfg.SensorTrips {
			e.unhealthy = false
			if c.Sink != nil {
				c.publish(telemetry.Event{
					Tick: c.tick, Kind: telemetry.KindSensor,
					Server: s.Node.ServerIndex, Cause: "healthy",
					Watts: raw, Prev: pred,
				})
			}
		}
	} else {
		e.goodStreak = 0
		e.badStreak++
		c.Stats.SensorRejected++
		if c.Sink != nil {
			ev := telemetry.Event{
				Tick: c.tick, Kind: telemetry.KindSensor,
				Server: s.Node.ServerIndex, Cause: "reject", Prev: pred,
			}
			if isFinite(raw) {
				ev.Watts = raw
			} else {
				ev.Cause = "dropout" // NaN must never reach the JSONL wire
			}
			c.publish(ev)
		}
		if !e.unhealthy && e.badStreak >= c.Cfg.SensorTrips {
			e.unhealthy = true
			c.Stats.SensorUnhealthy++
			if c.Sink != nil {
				c.publish(telemetry.Event{
					Tick: c.tick, Kind: telemetry.KindSensor,
					Server: s.Node.ServerIndex, Cause: "unhealthy", Prev: pred,
				})
			}
		}
	}

	if e.unhealthy || e.n == 0 {
		// Open loop: the instrument cannot be trusted (or has produced
		// nothing usable yet). Control runs on the model prediction plus
		// the guard band; the anchor follows the bare prediction so the
		// guard does not compound through the recursion.
		e.anchor = pred
		obs := pred + c.Cfg.SensorGuard
		e.outage++
		c.Stats.SensorGuardTicks++
		if e.outage > c.sensingGrace() {
			// The outage outlived the lease grace period: decay the control
			// temperature toward the thermal limit, which walks the Eq. 3
			// cap down to the sustainable steady-state floor
			// (thermal.Model.SteadyStatePowerLimit) — the sensing analogue
			// of degraded mode's budget decay.
			if !e.haveFallback {
				e.fallback = obs
				e.haveFallback = true
			}
			decay := math.Pow(c.Cfg.DegradedDecay, 1/float64(c.Cfg.Eta1))
			if e.fallback < m.Limit {
				e.fallback = m.Limit - (m.Limit-e.fallback)*decay
			}
			if e.fallback > obs {
				obs = e.fallback
			}
		}
		if c.Sink != nil {
			c.publish(telemetry.Event{
				Tick: c.tick, Kind: telemetry.KindSensor,
				Server: s.Node.ServerIndex, Cause: "guard",
				Watts: obs, Prev: pred,
			})
		}
		return obs
	}

	e.outage = 0
	e.haveFallback = false
	// An accepted reading is the estimate; a rejected one (while the
	// sensor is still within its trip allowance) rides the median of the
	// recent accepted history instead, smoothing transient glitches.
	// Using the median for accepted readings too would be tempting but
	// wrong twice over: on a cooling server the window's stale higher
	// values would hold TObs above truth — breaking the bit-identity
	// contract for clean sensors — and the extra conservatism buys
	// nothing the pred clamp below doesn't already guarantee.
	obs := raw
	if !ok {
		obs = e.median()
	}
	if pred > obs {
		// The model anchor: never let accepted-but-low readings pull the
		// estimate below the one-step prediction — this is what bounds
		// TObs from below by the true temperature.
		obs = pred
	}
	e.anchor = obs
	return obs
}

// sensingGrace is how many fallback ticks an unhealthy sensor gets
// before its control temperature starts decaying toward the limit: the
// budget-lease length, or two supply windows when leases are off.
func (c *Controller) sensingGrace() int {
	if c.Cfg.BudgetLeaseTicks > 0 {
		return c.Cfg.BudgetLeaseTicks
	}
	return 2 * c.Cfg.Eta1
}

// isFinite reports whether v is a usable reading (not NaN, not ±Inf).
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
