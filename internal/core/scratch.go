package core

// Per-node scratch buffers for the supply allocation. allocateNode needs
// several float slices sized to the node's child count on every supply
// epoch; since the tree shape is fixed at construction, each internal
// node gets its buffers once and the hot path allocates nothing. The
// controller is single-threaded by design, so reuse is safe.
type allocScratch struct {
	demands, caps, floors, wants, alloc, head, extra []float64
	active                                           []bool
}

func newAllocScratch(children int) *allocScratch {
	buf := make([]float64, 7*children)
	return &allocScratch{
		demands: buf[0*children : 1*children],
		caps:    buf[1*children : 2*children],
		floors:  buf[2*children : 3*children],
		wants:   buf[3*children : 4*children],
		alloc:   buf[4*children : 5*children],
		head:    buf[5*children : 6*children],
		extra:   buf[6*children : 7*children],
		active:  make([]bool, children),
	}
}

// waterfill distributes budget among recipients proportionally to
// weights, never exceeding caps, writing into dst (len(weights) long,
// zeroed first). Recipients whose proportional share exceeds their cap
// are clipped and the excess re-flows to the rest; zero-weight
// recipients receive nothing. active is scratch of the same length.
// It returns dst, which sums to at most budget (less only when every
// cap is hit).
func waterfill(dst []float64, budget float64, weights, caps []float64, active []bool) []float64 {
	n := len(weights)
	for i := range dst {
		dst[i] = 0
	}
	if budget <= 0 {
		return dst
	}
	activeWeight := 0.0
	for i := 0; i < n; i++ {
		active[i] = weights[i] > 0 && caps[i] > tolerance
		if active[i] {
			activeWeight += weights[i]
		}
	}
	remaining := budget
	for remaining > tolerance && activeWeight > 0 {
		clipped := false
		share := remaining / activeWeight
		nextRemaining := remaining
		nextWeight := activeWeight
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			grant := share * weights[i]
			room := caps[i] - dst[i]
			if grant >= room-tolerance {
				// Cap hit: take the room, deactivate.
				dst[i] = caps[i]
				nextRemaining -= room
				nextWeight -= weights[i]
				active[i] = false
				clipped = true
			}
		}
		if !clipped {
			// No cap hit: hand out the proportional shares and finish.
			for i := 0; i < n; i++ {
				if active[i] {
					dst[i] += share * weights[i]
				}
			}
			return dst
		}
		remaining = nextRemaining
		activeWeight = nextWeight
	}
	return dst
}

// waterfillAlloc is the allocating convenience form used by tests.
func waterfillAlloc(budget float64, weights, caps []float64) []float64 {
	return waterfill(make([]float64, len(weights)), budget, weights, caps, make([]bool, len(weights)))
}
