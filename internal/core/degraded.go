package core

import (
	"willow/internal/telemetry"
	"willow/internal/topo"
)

// Resilient control plane: budget leases and degraded autonomous mode.
//
// The paper's convergence analysis assumes the control hierarchy itself
// never fails; failure.go removed that assumption for servers, async.go
// for the upward report path. This file removes it for the rest: the
// downward budget path (Config.BudgetLatency / BudgetLoss mirror the
// report pipes) and the PMU nodes themselves (Controller.FailPMU).
//
// Every downward budget directive doubles as a lease of
// Config.BudgetLeaseTicks. A node — server or PMU — that has not heard
// from its parent within the lease enters degraded mode: it holds its
// last-known budget and decays it geometrically per supply window toward
// an autonomous safe floor, so staleness buys safety rather than
// overdraw. The floor is what the node can justify without any parent:
//
//	server:  min(hard cap, static + lastParentTP / siblings)
//	PMU:     min(subtree cap, subtree floor + lastParentTP / siblings)
//
// where lastParentTP is the parent budget reported with the last heard
// directive (its "fair share" is an equal split among the siblings).
// The hard caps — Eq. 3 thermal limit and circuit limit — always bound
// the held budget, so a degraded subtree can never exceed them. Budgets
// below the floor are never raised: degradation only ever sheds.
//
// An alive PMU keeps issuing directives to its children every supply
// window no matter what it hears from above (using its held, possibly
// decayed budget), so a single dead ancestor degrades exactly the nodes
// that lost their coordinator — the dead PMU's direct children — while
// deeper descendants stay fresh under local, autonomous control.
//
// With BudgetLeaseTicks, BudgetLatency and BudgetLoss all zero and no
// PMU failed, none of this code runs: allocation takes the synchronous
// path in allocate.go, byte-identical to the fail-free control plane.

// budgetMsg is one downward budget directive in flight.
type budgetMsg struct {
	tp       float64 // the child's granted budget
	parentTP float64 // the parent's own budget at grant time (fair-share input)
	ok       bool    // false: the slot carries a loss, nothing is delivered
}

// budgetPipe delays budget directives by a fixed number of supply
// windows, the downward mirror of reportPipe. Losses travel through the
// pipe as not-ok slots: the child hears nothing when they surface.
type budgetPipe struct {
	buf  []budgetMsg // ring of in-flight directives; len = BudgetLatency
	head int
	live bool
}

// push enqueues a directive and returns the one surfacing after the
// pipe's delay. The first push primes the whole pipe (startup is not a
// burst of phantom losses).
func (p *budgetPipe) push(m budgetMsg) budgetMsg {
	if !p.live {
		for i := range p.buf {
			p.buf[i] = m
		}
		p.live = true
	}
	if len(p.buf) == 0 {
		return m
	}
	out := p.buf[p.head]
	p.buf[p.head] = m
	p.head = (p.head + 1) % len(p.buf)
	return out
}

// budgetPipeFor returns (creating on demand) the budget pipe of the link
// between n and its parent.
func (c *Controller) budgetPipeFor(n *topo.Node) *budgetPipe {
	p := c.budgetPipes[n.ID]
	if p == nil {
		p = &budgetPipe{buf: make([]budgetMsg, c.Cfg.BudgetLatency)}
		c.budgetPipes[n.ID] = p
	}
	return p
}

// SetLinkLoss adjusts the per-link control-plane loss probabilities at
// runtime — the chaos engine's link-loss windows drive it. Values are
// clamped into [0, 1).
func (c *Controller) SetLinkLoss(report, budget float64) {
	c.Cfg.ReportLoss = clampLoss(report)
	c.Cfg.BudgetLoss = clampLoss(budget)
}

func clampLoss(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return 1 - 1e-9
	}
	return v
}

// resilienceEnabled reports whether the resilient allocation path must
// run. False means the fail-free synchronous path, byte-identical to
// the pre-lease controller.
func (c *Controller) resilienceEnabled() bool {
	return c.Cfg.BudgetLeaseTicks > 0 || c.Cfg.BudgetLatency > 0 ||
		c.Cfg.BudgetLoss > 0 || c.failedPMUCount > 0
}

// underDeadPMU reports whether any ancestor PMU of n has crashed — such
// a node cannot be coordinated with by the rest of the hierarchy.
func (c *Controller) underDeadPMU(n *topo.Node) bool {
	if c.failedPMUCount == 0 {
		return false
	}
	for a := n.Parent; a != nil; a = a.Parent {
		if c.failedPMU[a.ID] {
			return true
		}
	}
	return false
}

// reachLimit returns the highest tree level whose coordinator n can
// still reach through alive PMUs — the ceiling for migration escalation
// and orphan-restart scope. Zero means even the level-1 parent is dead:
// no migration machinery is available to the node at all.
func (c *Controller) reachLimit(n *topo.Node) int {
	limit := 0
	for a := n.Parent; a != nil && !c.failedPMU[a.ID]; a = a.Parent {
		limit = a.Level
	}
	return limit
}

// allocateSupplyWindow is the Δ_S-cadence entry point called from Step.
// The mid-tick re-derivations (drain-to-sleep, consolidation) go through
// allocateSupply instead: they refresh budgets synchronously within the
// live span without advancing pipes, drawing loss, or aging leases.
func (c *Controller) allocateSupplyWindow(t int) {
	if !c.resilienceEnabled() {
		c.allocateSupply(t)
		return
	}
	c.allocateResilient(t, true)
}

// allocateResilient divides budget down the live portion of the tree.
// window marks a real supply window (Δ_S): only then do directives pass
// through the budget pipes, draw loss, refresh leases and age/decay the
// nodes that heard nothing. Mid-tick re-derivations (window = false)
// deliver directly and leave all lease state untouched.
//
// The pass runs in three stages, top-down:
//
//  1. If the root is alive it takes the fresh supply and recurses
//     through alive PMUs, delivering leases along the way.
//  2. Alive internal nodes that heard nothing this window — parent dead,
//     or their directive lost or still in a pipe — age their lease
//     (entering degraded mode and decaying toward their floor when it
//     expires) and then allocate their held budget to their children
//     autonomously. Levels are visited root-down so an autonomous
//     node's own directives land before its children are examined.
//  3. Awake servers that heard nothing age their leases the same way.
func (c *Controller) allocateResilient(t int, window bool) {
	if len(c.delivered) < len(c.Tree.Nodes) {
		c.delivered = make([]bool, len(c.Tree.Nodes))
	} else {
		clear(c.delivered)
	}

	root := c.Tree.Root
	if !c.failedPMU[root.ID] {
		id := root.ID
		total := c.Supply.At(t / c.Cfg.Eta1)
		prev := c.pmuTP[id]
		c.pmuReduced[id] = c.isReduced(total, prev, c.pmuCP[id])
		c.pmuTP[id] = total
		if window {
			// The root draws straight from the supply feed; its lease is
			// perpetually fresh and it can never be degraded.
			c.pmuLeaseTick[id] = t
			c.clearPMUDegraded(root, t)
		}
		c.delivered[id] = true
		if c.Sink != nil {
			c.publish(telemetry.Event{
				Tick: t, Kind: telemetry.KindBudgetChange,
				Node: id, Level: root.Level,
				Watts: total, Prev: prev, Demand: c.pmuCP[id],
				Reduced: c.pmuReduced[id],
			})
		}
		c.allocateNodeR(root, total, t, window)
	}

	for level := c.Tree.Height; level >= 1; level-- {
		for _, n := range c.levels[level] {
			if c.delivered[n.ID] || c.failedPMU[n.ID] {
				continue
			}
			if window {
				c.agePMULease(n, t)
			}
			c.allocateNodeR(n, c.pmuTP[n.ID], t, window)
		}
	}

	for _, s := range c.Servers {
		if c.delivered[s.Node.ID] || s.Asleep() {
			continue
		}
		if window {
			c.ageServerLease(s, t)
		}
	}
}

// allocateNodeR computes node's child allocations (identically to the
// synchronous path) and delivers them as leases.
func (c *Controller) allocateNodeR(node *topo.Node, budget float64, t int, window bool) {
	if node.IsLeaf() {
		return
	}
	alloc := c.computeChildAllocations(node, budget)
	parentTP := c.pmuTP[node.ID]
	for i, ch := range node.Children {
		c.deliverBudget(ch, alloc[i], parentTP, t, window)
	}
}

// deliverBudget sends one downward budget directive over the link to ch,
// through the budget pipe (latency, loss) on real supply windows. A
// delivered directive applies the budget, refreshes the child's lease
// and clears degradation; an undelivered one leaves the child to the
// autonomous pass. Directives to dead PMUs go nowhere.
func (c *Controller) deliverBudget(ch *topo.Node, v, parentTP float64, t int, window bool) {
	if !ch.IsLeaf() && c.failedPMU[ch.ID] {
		return // a dead PMU hears nothing; its span rides its leases
	}
	c.countDown(ch)
	msg := budgetMsg{tp: v, parentTP: parentTP, ok: true}
	if window && (c.Cfg.BudgetLatency > 0 || c.Cfg.BudgetLoss > 0) {
		if c.Cfg.BudgetLoss > 0 && c.src.Float64() < c.Cfg.BudgetLoss {
			msg.ok = false
		}
		msg = c.budgetPipeFor(ch).push(msg)
	}
	if !msg.ok {
		return // lost in transit: the child's lease ages
	}
	c.delivered[ch.ID] = true

	if ch.IsLeaf() {
		s := c.Servers[ch.ServerIndex]
		prev := s.TP()
		s.reduced = c.isReduced(msg.tp, prev, s.CP())
		s.setTP(msg.tp)
		if window {
			s.leaseTick = t
			s.lastParentTP = msg.parentTP
			c.clearServerDegraded(s, t)
		}
		if c.Sink != nil {
			c.publish(telemetry.Event{
				Tick: t, Kind: telemetry.KindBudgetChange,
				Node: ch.ID, Level: ch.Level, Server: ch.ServerIndex,
				Watts: msg.tp, Prev: prev, Demand: s.CP(),
				Reduced: s.reduced,
			})
		}
		return
	}
	id := ch.ID
	prev := c.pmuTP[id]
	c.pmuReduced[id] = c.isReduced(msg.tp, prev, c.pmuCP[id])
	c.pmuTP[id] = msg.tp
	if window {
		c.pmuLeaseTick[id] = t
		c.pmuLastParentTP[id] = msg.parentTP
		c.clearPMUDegraded(ch, t)
	}
	if c.Sink != nil {
		c.publish(telemetry.Event{
			Tick: t, Kind: telemetry.KindBudgetChange,
			Node: id, Level: ch.Level,
			Watts: msg.tp, Prev: prev, Demand: c.pmuCP[id],
			Reduced: c.pmuReduced[id],
		})
	}
	c.allocateNodeR(ch, msg.tp, t, window)
}

// ageServerLease checks an undelivered server's lease at a supply window
// and, once expired, enters degraded mode and decays the held budget
// geometrically toward the autonomous safe floor. Budgets at or below
// the floor are held, never raised.
func (c *Controller) ageServerLease(s *Server, t int) {
	lease := c.Cfg.BudgetLeaseTicks
	if lease <= 0 || t-s.leaseTick <= lease {
		return
	}
	entered := !s.Degraded()
	if entered {
		s.setDegraded(true)
		c.Stats.LeaseExpiries++
	}
	floor := c.serverFloor(s)
	prev := s.TP()
	if prev > floor {
		s.setTP(floor + c.Cfg.DegradedDecay*(prev-floor))
	}
	s.reduced = c.isReduced(s.TP(), prev, s.CP())
	if entered && c.Sink != nil {
		c.publish(telemetry.Event{
			Tick: t, Kind: telemetry.KindDegraded,
			Node: s.Node.ID, Server: s.Node.ServerIndex,
			Cause: "enter", Watts: s.TP(), Prev: prev,
		})
	}
}

// agePMULease is ageServerLease for internal nodes.
func (c *Controller) agePMULease(n *topo.Node, t int) {
	lease := c.Cfg.BudgetLeaseTicks
	if lease <= 0 || t-c.pmuLeaseTick[n.ID] <= lease {
		return
	}
	id := n.ID
	entered := !c.pmuDegraded[id]
	if entered {
		c.pmuDegraded[id] = true
		c.Stats.LeaseExpiries++
	}
	floor := c.pmuFloor(n)
	prev := c.pmuTP[id]
	if prev > floor {
		c.pmuTP[id] = floor + c.Cfg.DegradedDecay*(prev-floor)
	}
	c.pmuReduced[id] = c.isReduced(c.pmuTP[id], prev, c.pmuCP[id])
	if entered && c.Sink != nil {
		c.publish(telemetry.Event{
			Tick: t, Kind: telemetry.KindDegraded,
			Node: id, Level: n.Level,
			Cause: "enter", Watts: c.pmuTP[id], Prev: prev,
		})
	}
}

// clearServerDegraded exits degraded mode on a freshly delivered lease.
func (c *Controller) clearServerDegraded(s *Server, t int) {
	if !s.Degraded() {
		return
	}
	s.setDegraded(false)
	if c.Sink != nil {
		c.publish(telemetry.Event{
			Tick: t, Kind: telemetry.KindDegraded,
			Node: s.Node.ID, Server: s.Node.ServerIndex,
			Cause: "exit", Watts: s.TP(),
		})
	}
}

// clearPMUDegraded is clearServerDegraded for internal nodes.
func (c *Controller) clearPMUDegraded(n *topo.Node, t int) {
	if !c.pmuDegraded[n.ID] {
		return
	}
	c.pmuDegraded[n.ID] = false
	if c.Sink != nil {
		c.publish(telemetry.Event{
			Tick: t, Kind: telemetry.KindDegraded,
			Node: n.ID, Level: n.Level,
			Cause: "exit", Watts: c.pmuTP[n.ID],
		})
	}
}

// serverFloor is the server's autonomous safe floor: what it can justify
// drawing with no parent to hear from — its static power plus an equal
// split of the last-known parent budget among the siblings, never above
// the hard cap (Eq. 3 thermal limit, circuit limit, rated peak).
func (c *Controller) serverFloor(s *Server) float64 {
	floor := s.Power.Static + c.fairShare(s.Node, s.lastParentTP)
	if cap := s.HardCap(c.Cfg.ThermalWindow); cap < floor {
		floor = cap
	}
	return floor
}

// pmuFloor is serverFloor lifted to a subtree: summed static floors plus
// the node's fair share of the last-known parent budget, capped by the
// subtree's summed hard caps.
func (c *Controller) pmuFloor(n *topo.Node) float64 {
	floor := c.subtreeFloor(n) + c.fairShare(n, c.pmuLastParentTP[n.ID])
	if cap := c.subtreeCap(n); cap < floor {
		floor = cap
	}
	return floor
}

// fairShare splits a parent budget equally among n's siblings (and n).
func (c *Controller) fairShare(n *topo.Node, parentTP float64) float64 {
	if n.Parent == nil || parentTP <= 0 {
		return 0
	}
	return parentTP / float64(len(n.Parent.Children))
}
