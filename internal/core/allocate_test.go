package core

import (
	"math"
	"testing"
	"testing/quick"

	"willow/internal/dist"
)

func TestWaterfillProportional(t *testing.T) {
	alloc := waterfillAlloc(100, []float64{1, 3}, []float64{1000, 1000})
	if math.Abs(alloc[0]-25) > 1e-9 || math.Abs(alloc[1]-75) > 1e-9 {
		t.Errorf("alloc = %v, want [25 75]", alloc)
	}
}

func TestWaterfillRespectsCaps(t *testing.T) {
	alloc := waterfillAlloc(100, []float64{1, 1}, []float64{10, 1000})
	if math.Abs(alloc[0]-10) > 1e-6 {
		t.Errorf("capped recipient got %v, want 10", alloc[0])
	}
	if math.Abs(alloc[1]-90) > 1e-6 {
		t.Errorf("overflow recipient got %v, want 90", alloc[1])
	}
}

func TestWaterfillCascadingCaps(t *testing.T) {
	alloc := waterfillAlloc(100, []float64{1, 1, 1}, []float64{5, 20, 1000})
	if math.Abs(alloc[0]-5) > 1e-6 || math.Abs(alloc[1]-20) > 1e-6 || math.Abs(alloc[2]-75) > 1e-6 {
		t.Errorf("alloc = %v, want [5 20 75]", alloc)
	}
}

func TestWaterfillAllCapped(t *testing.T) {
	alloc := waterfillAlloc(100, []float64{1, 1}, []float64{10, 10})
	total := alloc[0] + alloc[1]
	if math.Abs(total-20) > 1e-6 {
		t.Errorf("total allocated %v, want 20 (budget strands)", total)
	}
}

func TestWaterfillZeroWeightGetsNothing(t *testing.T) {
	alloc := waterfillAlloc(100, []float64{0, 1}, []float64{1000, 1000})
	if alloc[0] != 0 {
		t.Errorf("zero-weight recipient got %v", alloc[0])
	}
	if math.Abs(alloc[1]-100) > 1e-9 {
		t.Errorf("weighted recipient got %v, want 100", alloc[1])
	}
}

func TestWaterfillZeroBudget(t *testing.T) {
	alloc := waterfillAlloc(0, []float64{1, 1}, []float64{10, 10})
	if alloc[0] != 0 || alloc[1] != 0 {
		t.Errorf("alloc = %v, want zeros", alloc)
	}
}

// Property: waterfill never exceeds caps, never allocates negative
// amounts, and allocates min(budget, total cap of weighted recipients)
// in total (within tolerance).
func TestWaterfillInvariantsQuick(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		src := dist.NewSource(seed)
		n := int(rawN%8) + 1
		weights := make([]float64, n)
		caps := make([]float64, n)
		reachable := 0.0
		for i := 0; i < n; i++ {
			if src.Float64() < 0.2 {
				weights[i] = 0
			} else {
				weights[i] = src.Uniform(0.1, 10)
			}
			caps[i] = src.Uniform(0, 50)
			if weights[i] > 0 {
				reachable += caps[i]
			}
		}
		budget := src.Uniform(0, 200)
		alloc := waterfillAlloc(budget, weights, caps)
		var total float64
		for i := 0; i < n; i++ {
			if alloc[i] < -1e-9 || alloc[i] > caps[i]+1e-6 {
				return false
			}
			if weights[i] == 0 && alloc[i] != 0 {
				return false
			}
			total += alloc[i]
		}
		want := math.Min(budget, reachable)
		return math.Abs(total-want) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
