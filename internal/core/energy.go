package core

// Energy accounting: a per-tick sequential pass converting the tick's
// consumed and dropped watts into joules via Config.TickSeconds, and
// splitting consumption into useful work (dynamic power serving demand
// above the static floor) and heat dissipated to the environment (the
// RC model's energy balance in closed form: whatever the server drew
// and did not store as a temperature rise left through the c2 path).
//
// Determinism contract: the pass runs sequentially in server order
// after consumeAndHeat, reads only the per-server hot slabs, and
// allocates nothing — so accumulated figures are byte-identical across
// worker counts, Config.Shards values, and snapshot/restore (which
// replays the journal through the same pass). KindEnergy telemetry is
// opt-in (Config.EnergyEvents) so pre-energy event streams keep their
// bytes.

import (
	"willow/internal/telemetry"
	"willow/internal/topo"
)

// EnergyTotals is one accounting scope's cumulative energy figures, in
// joules.
type EnergyTotals struct {
	// Joules is the total energy consumed (static + dynamic + migration
	// cost, everything the server actually drew).
	Joules float64
	// WorkJoules is the useful-work share: dynamic power serving demand
	// above the static floor, integrated over awake ticks.
	WorkJoules float64
	// ShedJoules is demand the controller refused (dropped watt-ticks ×
	// tick duration) — energy the workload asked for and never got.
	ShedJoules float64
	// HeatJoules is the energy dissipated to the environment per the RC
	// thermal model's balance: consumed minus the change in stored heat.
	HeatJoules float64
}

// WorkPerJoule returns WorkJoules/Joules, 0 when nothing was consumed.
func (t EnergyTotals) WorkPerJoule() float64 {
	if t.Joules <= 0 {
		return 0
	}
	return t.WorkJoules / t.Joules
}

func (t *EnergyTotals) add(o EnergyTotals) {
	t.Joules += o.Joules
	t.WorkJoules += o.WorkJoules
	t.ShedJoules += o.ShedJoules
	t.HeatJoules += o.HeatJoules
}

// Sub returns the element-wise difference t − o: the energy accrued
// between two cumulative readings (sliding-window efficiency figures).
func (t EnergyTotals) Sub(o EnergyTotals) EnergyTotals {
	return EnergyTotals{
		Joules:     t.Joules - o.Joules,
		WorkJoules: t.WorkJoules - o.WorkJoules,
		ShedJoules: t.ShedJoules - o.ShedJoules,
		HeatJoules: t.HeatJoules - o.HeatJoules,
	}
}

// RackEnergy is one rack-level PMU subtree's cumulative energy figures.
type RackEnergy struct {
	// Node is the rack PMU's tree node ID; Servers is its contiguous
	// [lo, hi) server-index span.
	Node   int
	Lo, Hi int
	Totals EnergyTotals
}

// ClassEnergy is one application class's cumulative served energy
// (dynamic watt-ticks served to that class × tick duration).
type ClassEnergy struct {
	Class        string
	ServedJoules float64
}

// energyAcc holds the controller's energy accounting state. Every slice
// is preallocated at construction; the per-tick pass allocates nothing.
type energyAcc struct {
	// Per-server cumulative joules, indexed by server index.
	joules, workJ, shedJ, heatJ []float64
	// prevT is each server's temperature at the previous accounting
	// pass, for the stored-heat delta.
	prevT []float64
	// fleet is the running fleet-wide sum (so reads are O(1)).
	fleet EnergyTotals

	// Per-app-class served watt-ticks: classOf maps app ID → class
	// index (−1 unknown), classNames the class labels in first-seen
	// (server, app) order, classServed the accumulators.
	classOf     []int
	classNames  []string
	classServed []float64

	// Window-emission bookkeeping (EnergyEvents only): cumulative
	// totals at the last emission, per rack (racks order) and fleet.
	racks     []*topo.Node
	rackLo    []int
	rackHi    []int
	rackLast  []EnergyTotals
	fleetLast EnergyTotals
	lastEmit  int // tick after the last emitted window
}

// newEnergyAcc sizes the accumulator for the controller's fleet.
func newEnergyAcc(c *Controller) *energyAcc {
	n := len(c.Servers)
	e := &energyAcc{
		joules: make([]float64, n),
		workJ:  make([]float64, n),
		shedJ:  make([]float64, n),
		heatJ:  make([]float64, n),
		prevT:  make([]float64, n),
	}
	for i, s := range c.Servers {
		e.prevT[i] = s.Thermal.T
	}

	// App classes, in first-seen order over (server, app) — a
	// deterministic function of the construction specs.
	maxID := -1
	for _, s := range c.Servers {
		for _, a := range s.Apps.Apps {
			if a.ID > maxID {
				maxID = a.ID
			}
		}
	}
	e.classOf = make([]int, maxID+1)
	for i := range e.classOf {
		e.classOf[i] = -1
	}
	index := map[string]int{}
	for _, s := range c.Servers {
		for _, a := range s.Apps.Apps {
			name := a.Class.Name
			if name == "" {
				name = "unclassed"
			}
			ci, ok := index[name]
			if !ok {
				ci = len(e.classNames)
				index[name] = ci
				e.classNames = append(e.classNames, name)
				e.classServed = append(e.classServed, 0)
			}
			e.classOf[a.ID] = ci
		}
	}

	// Rack spans: each level-1 PMU covers a contiguous server range
	// (the same invariant planShards relies on).
	if len(c.levels) > 1 {
		for _, n := range c.levels[1] {
			lo, hi := len(c.Servers), 0
			for _, ch := range n.Children {
				if ch.IsLeaf() {
					if ch.ServerIndex < lo {
						lo = ch.ServerIndex
					}
					if ch.ServerIndex+1 > hi {
						hi = ch.ServerIndex + 1
					}
				}
			}
			if hi <= lo {
				continue
			}
			e.racks = append(e.racks, n)
			e.rackLo = append(e.rackLo, lo)
			e.rackHi = append(e.rackHi, hi)
			e.rackLast = append(e.rackLast, EnergyTotals{})
		}
	}
	return e
}

// accountEnergy is the per-tick accounting pass: sequential in server
// order, allocation-free, run at the end of every Step.
func (c *Controller) accountEnergy(t int) {
	e, h := c.energy, c.hot
	secs := c.Cfg.TickSeconds
	// One thermal-model time unit spans TickSeconds/ThermalDt wall
	// seconds, converting the stored-heat delta ΔT/c1 (watt · thermal
	// units) into joules.
	tuSecs := secs / c.Cfg.ThermalDt
	var fleet EnergyTotals
	for i, s := range c.Servers {
		p := h.consumed[i]
		j := p * secs
		e.joules[i] += j
		var work float64
		if !h.asleep[i] && p > s.Power.Static {
			work = (p - s.Power.Static) * secs
		}
		e.workJ[i] += work
		shed := h.dropped[i] * secs
		e.shedJ[i] += shed
		// RC energy balance: heat dissipated = consumed − stored-heat
		// change. The thermal capacitance is 1/c1 (dT/dt = c1·P − …),
		// so a ΔT rise stores ΔT/c1 watt·thermal-units. Negative ΔT
		// (cooling) dissipates more than the tick consumed — correct
		// for sleeping servers coasting down toward ambient.
		dT := s.Thermal.T - e.prevT[i]
		heat := j - dT/s.Thermal.Model.C1*tuSecs
		e.prevT[i] = s.Thermal.T
		e.heatJ[i] += heat
		fleet.Joules += j
		fleet.WorkJoules += work
		fleet.ShedJoules += shed
		fleet.HeatJoules += heat
	}
	e.fleet.add(fleet)

	if c.Cfg.EnergyEvents && c.Sink != nil && (t+1)%c.Cfg.Eta1 == 0 {
		c.publishEnergyWindow(t)
	}
}

// publishEnergyWindow emits one KindEnergy record per rack plus a fleet
// rollup covering the supply window that ended at tick t.
func (c *Controller) publishEnergyWindow(t int) {
	e := c.energy
	ticks := t + 1 - e.lastEmit
	for r, n := range e.racks {
		var tot EnergyTotals
		for i := e.rackLo[r]; i < e.rackHi[r]; i++ {
			tot.add(c.serverTotals(i))
		}
		win := tot.Sub(e.rackLast[r])
		e.rackLast[r] = tot
		c.publish(telemetry.Event{
			Tick: t, Kind: telemetry.KindEnergy,
			Node: n.ID, Level: n.Level, Cause: "rack", Count: ticks,
			Watts: win.Joules, Demand: win.WorkJoules,
			Prev: win.HeatJoules, Bytes: win.ShedJoules,
		})
	}
	win := e.fleet.Sub(e.fleetLast)
	e.fleetLast = e.fleet
	root := c.Tree.Root
	c.publish(telemetry.Event{
		Tick: t, Kind: telemetry.KindEnergy,
		Node: root.ID, Level: root.Level, Cause: "fleet", Count: ticks,
		Watts: win.Joules, Demand: win.WorkJoules,
		Prev: win.HeatJoules, Bytes: win.ShedJoules,
	})
	e.lastEmit = t + 1
}

// serverTotals assembles one server's cumulative figures.
func (c *Controller) serverTotals(i int) EnergyTotals {
	e := c.energy
	return EnergyTotals{
		Joules:     e.joules[i],
		WorkJoules: e.workJ[i],
		ShedJoules: e.shedJ[i],
		HeatJoules: e.heatJ[i],
	}
}

// EnergyTotals returns the fleet-wide cumulative energy figures. O(1).
func (c *Controller) EnergyTotals() EnergyTotals { return c.energy.fleet }

// ServerEnergy returns one server's cumulative energy figures.
func (c *Controller) ServerEnergy(i int) EnergyTotals { return c.serverTotals(i) }

// RackEnergy returns cumulative energy figures per rack-level PMU
// subtree, in tree order. It allocates; call it off the hot path.
func (c *Controller) RackEnergy() []RackEnergy {
	e := c.energy
	out := make([]RackEnergy, len(e.racks))
	for r, n := range e.racks {
		var tot EnergyTotals
		for i := e.rackLo[r]; i < e.rackHi[r]; i++ {
			tot.add(c.serverTotals(i))
		}
		out[r] = RackEnergy{Node: n.ID, Lo: e.rackLo[r], Hi: e.rackHi[r], Totals: tot}
	}
	return out
}

// ClassEnergy returns the cumulative dynamic energy served to each
// application class, in first-seen construction order. It allocates;
// call it off the hot path.
func (c *Controller) ClassEnergy() []ClassEnergy {
	e := c.energy
	out := make([]ClassEnergy, len(e.classNames))
	for i, name := range e.classNames {
		out[i] = ClassEnergy{Class: name, ServedJoules: e.classServed[i] * c.Cfg.TickSeconds}
	}
	return out
}

// recordClassService accumulates one app's served dynamic watts into
// its class bucket — called at every recordService site, allocation-
// free.
func (c *Controller) recordClassService(appID int, served float64) {
	e := c.energy
	if appID < 0 || appID >= len(e.classOf) {
		return
	}
	ci := e.classOf[appID]
	if ci < 0 {
		return
	}
	e.classServed[ci] += served
}
