package core

import (
	"math"
	"testing"

	"willow/internal/power"
	"willow/internal/telemetry"
	"willow/internal/workload"
)

// runEnergy builds a 2-rack fleet with mixed app classes, runs it, and
// returns the controller.
func runEnergy(t *testing.T, cfg Config, ticks int) *Controller {
	t.Helper()
	specs := []ServerSpec{
		serverSpec(50, 300, 0, 60, 40),
		serverSpec(50, 300, 0, 80),
		serverSpec(50, 300, 0, 30, 30),
		serverSpec(50, 300, 0, 90),
	}
	specs[0].Apps[0].Class = workload.Class{Name: "web", Weight: 1}
	specs[0].Apps[1].Class = workload.Class{Name: "batch", Weight: 2}
	specs[1].Apps[0].Class = workload.Class{Name: "web", Weight: 1}
	specs[2].Apps[0].Class = workload.Class{Name: "batch", Weight: 2}
	specs[2].Apps[1].Class = workload.Class{Name: "web", Weight: 1}
	specs[3].Apps[0].Class = workload.Class{Name: "batch", Weight: 2}
	c := buildController(t, []int{2, 2}, uniqueIDs(specs), power.Constant(2000), cfg)
	c.Run(ticks)
	return c
}

// TestEnergyConservation checks the accounting identities after a run:
// fleet totals equal the per-server and per-rack sums, consumed joules
// equal heat dissipated plus stored heat (the RC balance), shed joules
// equal the dropped watt-tick stat, and work never exceeds consumption.
func TestEnergyConservation(t *testing.T) {
	cfg := quietCfg()
	cfg.TickSeconds = 2.5
	c := runEnergy(t, cfg, 40)

	fleet := c.EnergyTotals()
	if fleet.Joules <= 0 {
		t.Fatalf("no energy accounted: %+v", fleet)
	}

	var sum EnergyTotals
	var stored float64
	for i, s := range c.Servers {
		st := c.ServerEnergy(i)
		sum.add(st)
		if st.WorkJoules < 0 || st.WorkJoules > st.Joules+1e-9 {
			t.Errorf("server %d work %v outside [0, consumed %v]", i, st.WorkJoules, st.Joules)
		}
		// Stored heat since construction (temperature started at ambient).
		dT := s.Thermal.T - s.Thermal.Model.Ambient
		stored += dT / s.Thermal.Model.C1 * (cfg.TickSeconds / cfg.ThermalDt)
	}
	if math.Abs(sum.Joules-fleet.Joules) > 1e-9 || math.Abs(sum.HeatJoules-fleet.HeatJoules) > 1e-9 {
		t.Errorf("fleet totals %+v != per-server sum %+v", fleet, sum)
	}

	var rackSum EnergyTotals
	for _, r := range c.RackEnergy() {
		rackSum.add(r.Totals)
	}
	if math.Abs(rackSum.Joules-fleet.Joules) > 1e-9 {
		t.Errorf("rack sum %v != fleet %v joules", rackSum.Joules, fleet.Joules)
	}

	// RC energy balance: consumed = dissipated + stored.
	if got, want := fleet.HeatJoules+stored, fleet.Joules; math.Abs(got-want) > 1e-6*want {
		t.Errorf("energy balance: heat %v + stored %v = %v, want consumed %v",
			fleet.HeatJoules, stored, got, want)
	}

	if got, want := fleet.ShedJoules, c.Stats.DroppedWattTicks*cfg.TickSeconds; math.Abs(got-want) > 1e-9 {
		t.Errorf("shed joules %v, want dropped watt-ticks × secs = %v", got, want)
	}
}

// TestClassEnergyPartition checks the per-class served energy sums to
// the per-priority served watt-ticks (both partition dynamic service).
func TestClassEnergyPartition(t *testing.T) {
	cfg := quietCfg()
	cfg.TickSeconds = 1.5
	c := runEnergy(t, cfg, 25)

	classes := c.ClassEnergy()
	if len(classes) != 2 {
		t.Fatalf("classes = %+v, want web and batch", classes)
	}
	if classes[0].Class != "web" || classes[1].Class != "batch" {
		t.Errorf("class order %+v, want first-seen order web, batch", classes)
	}
	var classSum float64
	for _, ce := range classes {
		if ce.ServedJoules <= 0 {
			t.Errorf("class %q served %v, want > 0", ce.Class, ce.ServedJoules)
		}
		classSum += ce.ServedJoules
	}
	var servedWT float64
	for _, v := range c.Stats.ServedByPriority {
		servedWT += v
	}
	if want := servedWT * cfg.TickSeconds; math.Abs(classSum-want) > 1e-9*want {
		t.Errorf("class served sum %v, want per-priority served × secs = %v", classSum, want)
	}
}

// TestEnergyEventsOptIn pins that KindEnergy emission is off by default
// and, when enabled, emits one record per rack plus a fleet rollup per
// supply window whose deltas sum to the cumulative totals.
func TestEnergyEventsOptIn(t *testing.T) {
	cfg := quietCfg()
	cfg.Eta1 = 4
	cfg.Eta2 = 1 << 20

	var buf telemetry.Buffer
	cfgOff := cfg
	specs := func() []ServerSpec {
		return uniqueIDs([]ServerSpec{
			serverSpec(50, 300, 0, 60),
			serverSpec(50, 300, 0, 80),
		})
	}
	off := buildController(t, []int{2}, specs(), power.Constant(1000), cfgOff)
	off.Sink = &buf
	off.Run(12)
	for _, e := range buf.Events {
		if e.Kind == telemetry.KindEnergy {
			t.Fatalf("energy event emitted with EnergyEvents=false: %+v", e)
		}
	}

	cfgOn := cfg
	cfgOn.EnergyEvents = true
	var bufOn telemetry.Buffer
	on := buildController(t, []int{2}, specs(), power.Constant(1000), cfgOn)
	on.Sink = &bufOn
	on.Run(12)

	var fleetWindows int
	var fleetJ, fleetWork float64
	for _, e := range bufOn.Events {
		if e.Kind != telemetry.KindEnergy {
			continue
		}
		switch e.Cause {
		case "fleet":
			fleetWindows++
			fleetJ += e.Watts
			fleetWork += e.Demand
			if e.Count != cfgOn.Eta1 {
				t.Errorf("window ticks = %d, want Eta1 = %d", e.Count, cfgOn.Eta1)
			}
		case "rack":
			if e.Level != 1 {
				t.Errorf("rack record at level %d", e.Level)
			}
		default:
			t.Errorf("unknown energy cause %q", e.Cause)
		}
	}
	if want := 12 / cfgOn.Eta1; fleetWindows != want {
		t.Errorf("fleet windows = %d, want %d", fleetWindows, want)
	}
	tot := on.EnergyTotals()
	if math.Abs(fleetJ-tot.Joules) > 1e-9 || math.Abs(fleetWork-tot.WorkJoules) > 1e-9 {
		t.Errorf("window deltas sum to (%v, %v), cumulative (%v, %v)",
			fleetJ, fleetWork, tot.Joules, tot.WorkJoules)
	}
}

// TestTickSecondsValidation pins the Config knob's validation.
func TestTickSecondsValidation(t *testing.T) {
	for _, bad := range []float64{-1, math.Inf(1), math.NaN()} {
		cfg := quietCfg()
		cfg.TickSeconds = bad
		if _, err := cfg.withDefaults(); err == nil {
			t.Errorf("TickSeconds %v accepted, want error", bad)
		}
	}
	cfg := quietCfg()
	got, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if got.TickSeconds != 1 {
		t.Errorf("zero TickSeconds defaulted to %v, want 1", got.TickSeconds)
	}
}
