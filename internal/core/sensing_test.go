package core

import (
	"math"
	"reflect"
	"testing"

	"willow/internal/power"
	"willow/internal/sensor"
	"willow/internal/telemetry"
	"willow/internal/thermal"
)

// hotThermal heats aggressively: a server that holds its 200 W demand
// blows through the 70 °C limit (steady state 125 °C), so Eq. 3 must
// throttle it to the ~112 W sustainable floor. This makes a lying
// temperature sensor immediately dangerous.
var hotThermal = thermal.Model{C1: 0.02, C2: 0.05, Ambient: 25, Limit: 70}

// sensingScenario: one hot server under the root PMU with abundant
// supply, so the thermal cap is the only binding constraint.
func sensingScenario(t *testing.T, cfg Config) *Controller {
	t.Helper()
	spec := serverSpec(50, 250, 0, 200)
	spec.Thermal = hotThermal
	return buildController(t, []int{1}, uniqueIDs([]ServerSpec{spec}), power.Constant(1000), cfg)
}

func sensingCfg() Config {
	cfg := quietCfg()
	cfg.SensorWindow = 5
	cfg.SensorGate = 3
	cfg.SensorTrips = 3
	cfg.SensorGuard = 2
	return cfg
}

// TestSensingIdentityWhenDisabled pins the tentpole's zero-cost
// contract twice over: with the sensing knobs all zero the observed
// temperature tracks the physical one bit-for-bit, and arming the
// estimator over a fault-free instrument changes nothing — the event
// stream is byte-identical to the knobs-zero run, because a healthy
// reading equals the model's one-step prediction exactly.
func TestSensingIdentityWhenDisabled(t *testing.T) {
	run := func(cfg Config) ([]telemetry.Event, *Controller) {
		c := failureScenario(t, cfg)
		buf := &telemetry.Buffer{}
		c.Sink = buf
		c.Run(60)
		return buf.Events, c
	}
	off, cOff := run(quietCfg())
	on, cOn := run(sensingCfg())
	if len(off) == 0 {
		t.Fatal("no events")
	}
	for _, c := range []*Controller{cOff, cOn} {
		for i, s := range c.Servers {
			if s.TObs() != s.Thermal.T {
				t.Fatalf("server %d: TObs %v != true temperature %v", i, s.TObs(), s.Thermal.T)
			}
		}
	}
	if !reflect.DeepEqual(off, on) {
		if len(off) != len(on) {
			t.Fatalf("event counts differ: %d knobs-zero, %d estimator-armed", len(off), len(on))
		}
		for i := range off {
			if off[i] != on[i] {
				t.Fatalf("event %d differs:\nknobs-zero %+v\nestimator  %+v", i, off[i], on[i])
			}
		}
	}
	if cOn.Stats.SensorRejected != 0 || cOn.Stats.SensorGuardTicks != 0 {
		t.Errorf("fault-free estimator rejected %d readings, guarded %d ticks; want 0, 0",
			cOn.Stats.SensorRejected, cOn.Stats.SensorGuardTicks)
	}
}

// TestSensorChaosTrueTemperatureCap is the safety headline at unit
// scale: a sensor frozen at a cold start-up reading tells the naive
// controller the server never warms, so it grants full demand and the
// *physical* temperature sails through the limit. The robust estimator
// gates the frozen readings against the model prediction, trips
// unhealthy, and runs on the safe-side fallback — the true temperature
// never crosses the limit.
func TestSensorChaosTrueTemperatureCap(t *testing.T) {
	run := func(cfg Config) *Controller {
		c := sensingScenario(t, cfg)
		c.AttachSensor(0, sensor.New(nil))
		c.SetSensorFault(0, sensor.Fault{Mode: sensor.ModeStuck})
		limit := c.Servers[0].Thermal.Model.Limit
		for i := 0; i < 200; i++ {
			c.Step()
			if cfg.sensingEnabled() {
				if tr := c.Servers[0].Thermal.T; tr > limit+1e-6 {
					t.Fatalf("tick %d: robust estimator let true temperature reach %.3f °C (limit %.1f)", i, tr, limit)
				}
				if c.Servers[0].TObs() < c.Servers[0].Thermal.T-1e-6 {
					t.Fatalf("tick %d: TObs %.3f fell below truth %.3f — safe-side anchor broken",
						i, c.Servers[0].TObs(), c.Servers[0].Thermal.T)
				}
			}
		}
		return c
	}

	robust := run(sensingCfg())
	if robust.Stats.SensorRejected == 0 {
		t.Error("stuck sensor but no readings rejected")
	}
	if robust.Stats.SensorUnhealthy == 0 {
		t.Error("persistently stuck sensor never tripped unhealthy")
	}
	if robust.Stats.SensorGuardTicks == 0 {
		t.Error("unhealthy sensor but no guard-band ticks")
	}

	naive := run(quietCfg())
	limit := naive.Servers[0].Thermal.Model.Limit
	if naive.Servers[0].Thermal.T <= limit {
		t.Fatalf("naive control under a stuck-cold sensor stayed at %.2f °C — the hazard this test exists for never materialized",
			naive.Servers[0].Thermal.T)
	}
}

// TestSensorDropoutFallsBackToModel: a sensor reporting NaN must never
// leak NaN into the control path; the estimator runs open loop on the
// prediction + guard band, and past the grace period the control
// temperature decays toward the limit (walking the cap down to the
// sustainable floor), so a permanent dropout ends at steady state
// below the limit.
func TestSensorDropoutFallsBackToModel(t *testing.T) {
	c := sensingScenario(t, sensingCfg())
	c.AttachSensor(0, sensor.New(nil))
	c.Run(10)
	c.SetSensorFault(0, sensor.Fault{Mode: sensor.ModeDropout})
	c.Run(150)
	s := c.Servers[0]
	if math.IsNaN(s.TObs()) || math.IsInf(s.TObs(), 0) {
		t.Fatalf("dropout leaked a non-finite TObs: %v", s.TObs())
	}
	limit := s.Thermal.Model.Limit
	if s.Thermal.T > limit+1e-6 {
		t.Fatalf("true temperature %.2f exceeds limit %.1f under dropout", s.Thermal.T, limit)
	}
	if s.TObs() < s.Thermal.T-1e-6 {
		t.Fatalf("TObs %.2f below truth %.2f under dropout", s.TObs(), s.Thermal.T)
	}
	// All but the first SensorTrips-1 dropout ticks run guarded (the
	// stale median carries the estimate until the health trip fires).
	if c.Stats.SensorGuardTicks < 150-2 {
		t.Errorf("guard ticks %d, want >= 148", c.Stats.SensorGuardTicks)
	}
	// The decay-toward-limit fallback should have pushed the control
	// temperature near the limit, capping power near the sustainable
	// floor rather than zero.
	if s.TObs() < limit-5 {
		t.Errorf("long-outage control temperature %.2f never decayed toward the %.1f limit", s.TObs(), limit)
	}
}

// TestSensorHealsAfterClear: once the fault clears, SensorTrips
// consecutive in-gate readings restore the closed loop and rejections
// stop accruing.
func TestSensorHealsAfterClear(t *testing.T) {
	c := sensingScenario(t, sensingCfg())
	c.AttachSensor(0, sensor.New(nil))
	c.Run(10)
	c.SetSensorFault(0, sensor.Fault{Mode: sensor.ModeBias, Magnitude: 30})
	c.Run(40)
	if c.Stats.SensorUnhealthy == 0 {
		t.Fatal("30 °C bias never tripped unhealthy")
	}
	c.ClearSensorFault(0)
	c.Run(40)
	rejectedAtHeal := c.Stats.SensorRejected
	c.Run(20)
	if c.Stats.SensorRejected != rejectedAtHeal {
		t.Errorf("rejections kept accruing after heal: %d -> %d", rejectedAtHeal, c.Stats.SensorRejected)
	}
	s := c.Servers[0]
	if s.TObs() < s.Thermal.T-1e-6 {
		t.Errorf("healed TObs %.2f below truth %.2f", s.TObs(), s.Thermal.T)
	}
}

// TestNaiveDropoutHoldsLastReading: without the estimator a dropout
// must still never put NaN on the control path — the last finite
// observation holds.
func TestNaiveDropoutHoldsLastReading(t *testing.T) {
	c := sensingScenario(t, quietCfg())
	c.AttachSensor(0, sensor.New(nil))
	c.Run(10)
	held := c.Servers[0].TObs()
	c.SetSensorFault(0, sensor.Fault{Mode: sensor.ModeDropout})
	c.Run(20)
	if got := c.Servers[0].TObs(); got != held {
		t.Errorf("naive dropout: TObs changed from held reading %v to %v", held, got)
	}
}
