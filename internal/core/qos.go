package core

import (
	"slices"

	"willow/internal/telemetry"
)

// QoS settlement: when a server's instantaneous demand exceeds its
// effective budget, something must give. The paper's mechanism
// (Section IV-E): "some of the applications that are hosted in the node
// are either shut down completely or run in a degraded operational mode
// to stay within the power budget". Multiple QoS classes are the paper's
// stated future work (Section VI); this implements them: applications
// carry a Priority (0 = most critical) and shedding consumes the
// lowest-priority demand first, degrading an application partially
// before shutting it down.
//
// The static floor and pending migration cost cannot be shed — an awake
// server burns them regardless — so only the dynamic (per-application)
// demand participates.

// appService records one application's service level in the current
// window.
type appService struct {
	appID    int
	priority int
	demand   float64
	served   float64
}

// settleQoS divides the effective budget over the server's demand,
// shedding lowest-priority applications first. It returns the power
// consumed and records per-priority accounting into the controller
// stats.
func (c *Controller) settleQoS(s *Server, eff float64) float64 {
	// Fast path: everything fits.
	raw := s.RawDemand()
	if raw <= eff {
		for _, a := range s.Apps.Apps {
			c.recordService(a.Priority, a.LastDemand, a.LastDemand)
			c.recordClassService(a.ID, a.LastDemand)
		}
		return raw
	}

	// The non-sheddable part: static draw plus the migration cost folded
	// into this tick's demand.
	fixed := raw
	var dynTotal float64
	services := make([]appService, 0, s.Apps.Len())
	for _, a := range s.Apps.Apps {
		dynTotal += a.LastDemand
		services = append(services, appService{appID: a.ID, priority: a.Priority, demand: a.LastDemand})
	}
	fixed -= dynTotal

	if eff <= fixed {
		// Even the fixed draw exceeds the budget: every application is
		// shut down for the window and the server browns out to eff.
		for i := range services {
			c.recordService(services[i].priority, services[i].demand, 0)
			if services[i].demand > 0 {
				c.Stats.ShutdownAppTicks++
				c.publishQoS(s, services[i].appID, "shutdown", 0, services[i].demand)
			}
		}
		return eff
	}

	budget := eff - fixed // dynamic watts we can serve
	// Serve highest priority first (lowest number), largest demand first
	// within a class so fewer applications end up degraded.
	slices.SortStableFunc(services, func(a, b appService) int {
		switch {
		case a.priority != b.priority:
			return a.priority - b.priority
		case a.demand != b.demand:
			if a.demand > b.demand {
				return -1
			}
			return 1
		default:
			return a.appID - b.appID
		}
	})
	consumed := fixed
	for i := range services {
		sv := &services[i]
		switch {
		case sv.demand <= 0:
			// Nothing to serve.
		case budget >= sv.demand:
			sv.served = sv.demand
			budget -= sv.demand
		case budget > 0:
			sv.served = budget
			budget = 0
			c.Stats.DegradedAppTicks++
			c.publishQoS(s, sv.appID, "degraded", sv.served, sv.demand)
		default:
			c.Stats.ShutdownAppTicks++
			c.publishQoS(s, sv.appID, "shutdown", 0, sv.demand)
		}
		consumed += sv.served
		c.recordService(sv.priority, sv.demand, sv.served)
		c.recordClassService(sv.appID, sv.served)
	}
	return consumed
}

// publishQoS records one application served degraded or shut down
// within the current settlement window.
func (c *Controller) publishQoS(s *Server, appID int, cause string, served, demand float64) {
	if c.Sink == nil {
		return
	}
	c.publish(telemetry.Event{
		Tick: c.tick, Kind: telemetry.KindQoSViolation,
		Server: s.Node.ServerIndex, App: appID, Cause: cause,
		Watts: served, Demand: demand,
	})
}

// recordService accumulates per-priority demand/served watt-ticks.
func (c *Controller) recordService(priority int, demand, served float64) {
	if c.Stats.DemandByPriority == nil {
		c.Stats.DemandByPriority = map[int]float64{}
		c.Stats.ServedByPriority = map[int]float64{}
	}
	c.Stats.DemandByPriority[priority] += demand
	c.Stats.ServedByPriority[priority] += served
}

// ServiceLevel returns the fraction of priority-p demand served so far
// (1 when the class has no recorded demand).
func (st *Stats) ServiceLevel(priority int) float64 {
	d := st.DemandByPriority[priority]
	if d <= 0 {
		return 1
	}
	return st.ServedByPriority[priority] / d
}
