package core

import "willow/internal/topo"

// Asynchronous control plane: the paper's convergence analysis
// (Section V-A1) rests on update messages taking time to climb the
// hierarchy — δ-convergence — and on choosing Δ_D much larger than the
// propagation time ("assuming the value of Δ_D to be much larger than
// the actual value (say, 10 times hα) would avoid instabilities in
// decision making"). The synchronous controller realizes the δ ≪ Δ_D
// regime by construction; these knobs realize the other regimes so the
// rule can be tested empirically:
//
//   - Config.ReportLatency delays every upward demand report by that
//     many ticks per hierarchy level (a level-l PMU sees leaf demand
//     l·ReportLatency ticks old), modeled as a per-link FIFO pipe.
//   - Config.ReportLoss drops a link's report with the given probability
//     each tick ("links ... do not fail or do not suffer from prolonged
//     congestion" is the paper's assumption; this removes it). A lost
//     report leaves the parent acting on the previous value.
//
// With both zero the controller is exactly synchronous and none of this
// code runs.

// reportPipe delays values by a fixed number of ticks and repeats the
// last delivered value across losses.
type reportPipe struct {
	buf  []float64 // ring of in-flight values; len = latency
	head int
	last float64 // most recently pushed (possibly repeated on loss)
	out  float64 // value currently visible to the parent
	live bool
}

// push enqueues the child's current value (or repeats the previous one
// on loss) and returns the value now visible after the pipe's delay.
func (p *reportPipe) push(v float64, lost bool) float64 {
	if lost && p.live {
		v = p.last
	}
	p.last = v
	if !p.live {
		// First observation primes the whole pipe so startup is not a
		// burst of phantom zeros.
		for i := range p.buf {
			p.buf[i] = v
		}
		p.out = v
		p.live = true
	}
	if len(p.buf) == 0 {
		p.out = v
		return p.out
	}
	p.out = p.buf[p.head]
	p.buf[p.head] = v
	p.head = (p.head + 1) % len(p.buf)
	return p.out
}

// asyncEnabled reports whether the asynchronous machinery is active.
func (c *Controller) asyncEnabled() bool {
	return c.Cfg.ReportLatency > 0 || c.Cfg.ReportLoss > 0
}

// pipeFor returns (creating on demand) the report pipe of the link
// between n and its parent.
func (c *Controller) pipeFor(n *topo.Node) *reportPipe {
	p := c.pipes[n.ID]
	if p == nil {
		p = &reportPipe{buf: make([]float64, c.Cfg.ReportLatency)}
		c.pipes[n.ID] = p
	}
	return p
}

// propagateReports pushes this tick's values through every link pipe,
// bottom-up, and stores each PMU's delayed aggregate in its CP. Called
// in place of the synchronous aggregation when async is enabled.
func (c *Controller) propagateReports() {
	for level := 1; level <= c.Tree.Height; level++ {
		for _, n := range c.levels[level] {
			if c.failedPMU[n.ID] {
				// A dead PMU aggregates nothing; its CP stays frozen and
				// the pipes of its child links do not advance (they are
				// dropped and re-primed on repair).
				continue
			}
			sum := 0.0
			for _, child := range n.Children {
				var current float64
				if child.IsLeaf() {
					current = c.Servers[child.ServerIndex].CP()
				} else {
					current = c.pmuCP[child.ID]
				}
				deadChild := !child.IsLeaf() && c.failedPMU[child.ID]
				lost := deadChild ||
					(c.Cfg.ReportLoss > 0 && c.src.Float64() < c.Cfg.ReportLoss)
				sum += c.pipeFor(child).push(current, lost)
				if !deadChild {
					c.countUp(child)
				}
			}
			c.pmuCP[n.ID] = sum
		}
	}
}

// viewCP returns the server's demand as seen by its parent PMU — the
// delayed, possibly loss-frozen value decisions are made on. In the
// synchronous regime it is simply the current smoothed demand.
func (c *Controller) viewCP(s *Server) float64 {
	if !c.asyncEnabled() {
		return s.CP()
	}
	p := c.pipes[s.Node.ID]
	if p == nil || !p.live {
		return s.CP()
	}
	return p.out
}

// viewDynamic returns the server's dynamic demand (above the static
// floor) as seen by its parent.
func (c *Controller) viewDynamic(s *Server) float64 {
	d := c.viewCP(s) - s.Power.Static
	if d < 0 {
		return 0
	}
	return d
}

// viewDeficit is Eq. 5 evaluated on the parent's (possibly stale) view.
func (c *Controller) viewDeficit(s *Server, window float64) float64 {
	if s.Asleep() {
		return 0
	}
	d := c.viewCP(s) - s.EffectiveBudget(window)
	if d < 0 {
		return 0
	}
	return d
}

// viewSurplus is Eq. 6 evaluated on the parent's view.
func (c *Controller) viewSurplus(s *Server, window float64) float64 {
	if s.Asleep() {
		return 0
	}
	d := s.EffectiveBudget(window) - c.viewCP(s)
	if d < 0 {
		return 0
	}
	return d
}
