// Package core implements Willow, the hierarchical control scheme for
// energy- and thermal-adaptive computing of Kant, Murugan & Du (IPDPS
// 2011) — the paper's primary contribution.
//
// A Controller owns a PMU hierarchy (internal/topo) whose leaves are
// servers hosting applications (internal/workload). Each control tick is
// one demand window Δ_D:
//
//  1. Servers observe their instantaneous demand and smooth it with the
//     paper's Eq. 4; reports propagate up the tree (one message per link
//     per tick).
//  2. Every η1 ticks (the supply window Δ_S) the available supply is
//     re-allocated down the tree proportionally to smoothed demand,
//     subject to hard constraints — the thermal power limit of Eq. 3 and
//     the circuit limit — with a waterfill redistributing budget that
//     capped nodes cannot take (Section IV-D).
//  3. Every tick, tightening constraints trigger unidirectional,
//     bottom-up demand migrations: deficits are peeled into application
//     units and matched against sibling surpluses first (local
//     migrations), escalating unsatisfied demand up the hierarchy
//     (non-local) — never into a subtree whose budget was reduced by the
//     triggering event, and only when both endpoints retain the P_min
//     margin afterwards (Section IV-E). Unsatisfiable excess is dropped.
//  4. Every η2 ticks, consolidation drains servers running below the
//     utilization threshold and puts them to sleep; sustained deficits
//     wake sleeping servers (with latency).
//  5. Temperatures integrate forward under the consumed power
//     (internal/thermal) and statistics are recorded.
package core

import (
	"fmt"

	"willow/internal/power"
	"willow/internal/sensor"
	"willow/internal/thermal"
	"willow/internal/topo"
	"willow/internal/workload"
)

// Config holds Willow's tunables. Zero fields are replaced by the
// paper-faithful defaults (see Defaults).
type Config struct {
	// Alpha is the exponential smoothing parameter of Eq. 4, in (0, 1].
	Alpha float64
	// Eta1 is η1: supply adaptations happen every Eta1 demand ticks
	// (Δ_S = η1·Δ_D). The paper's simulation uses 4.
	Eta1 int
	// Eta2 is η2: consolidation decisions happen every Eta2 demand ticks
	// (Δ_A = η2·Δ_D), η2 > η1. The paper's simulation uses 7.
	Eta2 int
	// PMin is the power margin (watts) that must remain as surplus on
	// both the source and the target after a migration (Section IV-E).
	PMin float64
	// MigCostWatts is the temporary power demand charged to both
	// endpoints of a migration for one tick — the paper's migration cost.
	MigCostWatts float64
	// ConsolidateBelow is the utilization threshold under which a server
	// becomes a consolidation candidate. The paper's experiment uses 20 %.
	ConsolidateBelow float64
	// PingPongWindow is Δf in ticks: an application returning to a node
	// it left within this window counts as a ping-pong (Property 4).
	PingPongWindow int
	// WakeLatency is how many ticks a sleeping server needs to come back
	// (S3/S4 resume latency).
	WakeLatency int
	// ThermalWindow is the adjustment window Δs (in thermal-model time
	// units) over which the Eq. 3 power limit is computed.
	ThermalWindow float64
	// ThermalDt is how many thermal-model time units elapse per tick when
	// integrating temperature.
	ThermalDt float64
	// NoiseLambda controls per-app demand fluctuation (see workload.App).
	// Zero takes the paper default (25); a negative value disables
	// fluctuation entirely — demand is then the exact app means, which
	// also makes the per-tick demand draw free of random-stream
	// consumption (the steady-fleet scale benchmarks rely on this).
	NoiseLambda float64
	// LocalOnly restricts migrations to siblings (no escalation up the
	// hierarchy). It exists for the ablation baseline isolating the value
	// of non-local migrations; Willow proper leaves it false.
	LocalOnly bool
	// ReportLatency delays upward demand reports by this many ticks per
	// hierarchy level (see async.go). Zero — the default — models the
	// paper's δ ≪ Δ_D regime: reports arrive within the window they were
	// sent in.
	ReportLatency int
	// ReportLoss is the per-link, per-tick probability that a demand
	// report is lost; the parent then acts on the previous value. Must
	// be in [0, 1).
	ReportLoss float64
	// MigrationLatency is how many ticks a VM transfer takes. Zero — the
	// default — moves applications within the decision window; positive
	// values keep the application (and its demand) at the source until
	// the transfer lands, with the destination's surplus reserved in the
	// meantime (see transfer.go).
	MigrationLatency int
	// BudgetLeaseTicks makes every downward budget directive a lease: a
	// node that has not heard from its parent within this many ticks
	// enters degraded mode — it holds its last-known budget and decays
	// it geometrically per supply window toward an autonomous safe floor
	// (see degraded.go). Zero — the default — disables leases entirely:
	// budgets are held forever, exactly the paper's fail-free control
	// plane.
	BudgetLeaseTicks int
	// DegradedDecay is the geometric decay factor applied per supply
	// window to a degraded node's budget excess over its safe floor, in
	// (0, 1]; 1 holds the stale budget without decaying. Zero takes the
	// default of 0.5. Only meaningful with BudgetLeaseTicks > 0.
	DegradedDecay float64
	// BudgetLatency delays downward budget directives by this many
	// supply windows per link — the downward mirror of ReportLatency
	// (directives flow once per Δ_S, so the pipe is clocked in windows).
	// Zero delivers budgets within the window they were computed in.
	BudgetLatency int
	// BudgetLoss is the per-link, per-window probability that a budget
	// directive is lost — the downward mirror of ReportLoss. A lost
	// directive leaves the child on its previous budget and ages its
	// lease. Must be in [0, 1).
	BudgetLoss float64
	// SensorWindow enables the robust temperature estimator (sensing.go)
	// and sets its median-filter length in accepted readings. With every
	// Sensor* knob zero — the default — the estimator is the identity:
	// each server's control temperature TObs tracks its sensor reading
	// (the physical truth when no sensor fault model is attached) and
	// the control path is byte-identical to a build without the sensing
	// layer. Setting any Sensor* knob arms the estimator; SensorWindow
	// then defaults to 5.
	SensorWindow int
	// SensorGate is the residual gate in °C: a reading farther than this
	// from the RC-model one-step prediction is rejected. Zero accepts
	// every finite reading (the median and model anchor still apply).
	SensorGate float64
	// SensorTrips is how many consecutive rejected readings flag a
	// sensor unhealthy (and how many consecutive accepted readings heal
	// it). Defaults to 3 when the estimator is armed.
	SensorTrips int
	// SensorGuard is the safe-side guard band in °C added to the
	// model-predicted temperature while a sensor is unhealthy or
	// dropped out, biasing the Eq. 3 power cap conservative.
	SensorGuard float64
	// TickSeconds is the wall-clock duration modeled by one demand tick
	// Δ_D, in seconds — the watt-ticks → joules conversion factor of
	// the energy accounting pass (energy.go). Zero takes 1.0, making
	// joules numerically equal to watt-ticks.
	TickSeconds float64
	// EnergyEvents opts into KindEnergy telemetry: one per-rack record
	// plus a fleet rollup at the end of every supply window. Off by
	// default so pre-energy event streams stay byte-identical; the
	// accounting itself (EnergyTotals, RackEnergy, ClassEnergy) always
	// runs.
	EnergyEvents bool
	// Shards splits the per-server phases of each tick (demand
	// observation, consumption/heating) across a bounded worker pool of
	// contiguous rack-aligned server ranges. Results are byte-identical
	// for any shard count: parallel phases touch only per-server state
	// and every cross-server accumulation runs sequentially in server
	// order. 0 or 1 runs the tick single-threaded.
	Shards int
	// FullAggregation disables the incremental dirty-subtree demand
	// aggregation and re-sums the whole PMU tree every tick — the
	// paper's naive per-Δ_D full recompute, kept as the testing oracle
	// (and perf baseline) for the incremental path.
	FullAggregation bool
	// Policy plugs an alternative controller into the three control
	// seams (see the Policy interface in policy.go). nil — the default
	// — runs the paper's built-in proportional scheme bit for bit, as
	// does a policy that delegates every hook (policy.Willow). A policy
	// instance is stateful and owned by one Controller: build a fresh
	// one per run (internal/policy.New) rather than sharing a Config
	// value that embeds one.
	Policy Policy
}

// Defaults returns the configuration used by the paper's simulation:
// η1 = 4, η2 = 7, a 20 % consolidation threshold, and smoothing α = 0.3.
func Defaults() Config {
	return Config{
		Alpha:            0.3,
		Eta1:             4,
		Eta2:             7,
		PMin:             10,
		MigCostWatts:     5,
		ConsolidateBelow: 0.20,
		PingPongWindow:   50,
		WakeLatency:      3,
		ThermalWindow:    4,
		ThermalDt:        1,
		NoiseLambda:      25,
	}
}

// withDefaults fills zero values from Defaults and validates.
func (c Config) withDefaults() (Config, error) {
	d := Defaults()
	if c.Alpha == 0 {
		c.Alpha = d.Alpha
	}
	if c.Eta1 == 0 {
		c.Eta1 = d.Eta1
	}
	if c.Eta2 == 0 {
		c.Eta2 = d.Eta2
	}
	if c.PMin == 0 {
		c.PMin = d.PMin
	}
	if c.MigCostWatts == 0 {
		c.MigCostWatts = d.MigCostWatts
	}
	if c.ConsolidateBelow == 0 {
		c.ConsolidateBelow = d.ConsolidateBelow
	}
	if c.PingPongWindow == 0 {
		c.PingPongWindow = d.PingPongWindow
	}
	if c.WakeLatency == 0 {
		c.WakeLatency = d.WakeLatency
	}
	if c.ThermalWindow == 0 {
		c.ThermalWindow = d.ThermalWindow
	}
	if c.ThermalDt == 0 {
		c.ThermalDt = d.ThermalDt
	}
	if c.NoiseLambda == 0 {
		c.NoiseLambda = d.NoiseLambda
	}
	if c.DegradedDecay == 0 {
		c.DegradedDecay = 0.5
	}
	if c.TickSeconds == 0 {
		c.TickSeconds = 1
	}
	if c.sensingEnabled() {
		if c.SensorWindow == 0 {
			c.SensorWindow = 5
		}
		if c.SensorTrips == 0 {
			c.SensorTrips = 3
		}
	}
	switch {
	case c.Alpha <= 0 || c.Alpha > 1:
		return c, fmt.Errorf("core: alpha %v outside (0, 1]", c.Alpha)
	case c.Eta1 < 1:
		return c, fmt.Errorf("core: eta1 %d must be >= 1", c.Eta1)
	case c.Eta2 <= c.Eta1:
		return c, fmt.Errorf("core: eta2 %d must exceed eta1 %d (paper requires η2 > η1)", c.Eta2, c.Eta1)
	case c.PMin < 0:
		return c, fmt.Errorf("core: negative PMin %v", c.PMin)
	case c.MigCostWatts < 0:
		return c, fmt.Errorf("core: negative migration cost %v", c.MigCostWatts)
	case c.ConsolidateBelow < 0 || c.ConsolidateBelow >= 1:
		return c, fmt.Errorf("core: consolidation threshold %v outside [0, 1)", c.ConsolidateBelow)
	case c.ReportLatency < 0:
		return c, fmt.Errorf("core: negative report latency %d", c.ReportLatency)
	case c.ReportLoss < 0 || c.ReportLoss >= 1:
		return c, fmt.Errorf("core: report loss %v outside [0, 1)", c.ReportLoss)
	case c.MigrationLatency < 0:
		return c, fmt.Errorf("core: negative migration latency %d", c.MigrationLatency)
	case c.BudgetLeaseTicks < 0:
		return c, fmt.Errorf("core: negative budget lease %d", c.BudgetLeaseTicks)
	case c.DegradedDecay <= 0 || c.DegradedDecay > 1:
		return c, fmt.Errorf("core: degraded decay %v outside (0, 1]", c.DegradedDecay)
	case c.BudgetLatency < 0:
		return c, fmt.Errorf("core: negative budget latency %d", c.BudgetLatency)
	case c.BudgetLoss < 0 || c.BudgetLoss >= 1:
		return c, fmt.Errorf("core: budget loss %v outside [0, 1)", c.BudgetLoss)
	case c.SensorWindow < 0:
		return c, fmt.Errorf("core: negative sensor window %d", c.SensorWindow)
	case c.SensorGate < 0 || !isFinite(c.SensorGate):
		return c, fmt.Errorf("core: sensor gate %v must be non-negative and finite", c.SensorGate)
	case c.SensorTrips < 0:
		return c, fmt.Errorf("core: negative sensor trips %d", c.SensorTrips)
	case c.SensorGuard < 0 || !isFinite(c.SensorGuard):
		return c, fmt.Errorf("core: sensor guard %v must be non-negative and finite", c.SensorGuard)
	case c.Shards < 0:
		return c, fmt.Errorf("core: negative shard count %d", c.Shards)
	case c.TickSeconds <= 0 || !isFinite(c.TickSeconds):
		return c, fmt.Errorf("core: tick duration %v must be positive and finite", c.TickSeconds)
	}
	return c, nil
}

// sensingEnabled reports whether the robust estimator is armed: any
// sensing knob non-zero. All-zero is the identity contract (see
// Config.SensorWindow).
func (c Config) sensingEnabled() bool {
	return c.SensorWindow > 0 || c.SensorGate > 0 || c.SensorTrips > 0 || c.SensorGuard > 0
}

// tolerance absorbs floating-point dust in budget arithmetic.
const tolerance = 1e-6

// ServerSpec describes one leaf server at construction time.
type ServerSpec struct {
	Power        power.ServerModel
	Thermal      thermal.Model
	CircuitLimit float64 // watts; 0 means "no circuit limit beyond Peak"
	Apps         []*workload.App
}

// Server is the runtime view of one leaf. The per-tick hot fields
// (demand, budgets, consumption, sleep state, observed temperature)
// live in the controller's struct-of-arrays slab (state.go) and are
// reached through accessor methods; the struct itself keeps only the
// cold, per-server-object state.
type Server struct {
	Node         *topo.Node
	Power        power.ServerModel
	Thermal      *thermal.State
	CircuitLimit float64
	Apps         workload.Set

	// hot is the controller-owned slab holding this server's hot fields
	// at index idx (= Node.ServerIndex).
	hot *fleetHot
	idx int

	smoother *workload.Smoother

	// wakeAt is the tick at which a waking server becomes available
	// (-1 when not waking).
	wakeAt int

	// migCost is the pending migration cost to charge into the next
	// tick's demand.
	migCost float64

	// reduced marks that the last supply event lowered this server's
	// budget (unidirectional rule: such servers take no migrations).
	reduced bool

	// failed marks a crashed server (a failure-injection state, not a
	// control decision); only RepairServer clears it.
	failed bool

	// sensor is the temperature instrument TObs is read through; nil
	// reads the truth directly. est is the per-server robust estimator
	// state; nil when Config's sensing knobs are all zero.
	sensor *sensor.Sensor
	est    *estimator

	// leaseTick is the tick of the last budget directive heard from the
	// parent; lastParentTP the parent's budget reported with it (the
	// fair-share input of the degraded safe floor).
	leaseTick    int
	lastParentTP float64

	// capDecay / capDen / capWindow cache the constants of the Eq. 3
	// power limit over the configured adjustment window:
	// capDecay = e^(−c2·Δs), capDen = c1·(1−capDecay). They make the
	// cached hard cap (state.go) a few multiplications instead of a
	// transcendental per server per tick.
	capDecay, capDen, capWindow float64
}

// EffectiveBudget returns min(TP, hard cap): the power the server may
// actually draw this window. The hard cap combines the thermal limit of
// Eq. 3 with the circuit limit (Section IV-D's hard constraints).
func (s *Server) EffectiveBudget(windowDt float64) float64 {
	cap := s.HardCap(windowDt)
	if tp := s.hot.tp[s.idx]; tp < cap {
		return tp
	}
	return cap
}

// HardCap returns the hard constraint: min(thermal power limit over the
// next adjustment window, circuit limit, rated peak). The Eq. 3 limit
// is computed from the observed temperature TObs — the controller can
// only act on what its instruments report (see sensing.go). For the
// configured adjustment window the cached value is returned (refreshed
// on every TObs write); other windows compute from scratch.
func (s *Server) HardCap(windowDt float64) float64 {
	if windowDt == s.capWindow {
		return s.hot.hardCap[s.idx]
	}
	cap := s.Thermal.Model.PowerLimit(s.hot.tobs[s.idx], windowDt)
	if s.CircuitLimit > 0 && s.CircuitLimit < cap {
		cap = s.CircuitLimit
	}
	if s.Power.Peak < cap {
		cap = s.Power.Peak
	}
	return cap
}

// Utilization returns the server's current utilization as implied by its
// consumed power.
func (s *Server) Utilization() float64 {
	if s.hot.asleep[s.idx] {
		return 0
	}
	return s.Power.Utilization(s.hot.consumed[s.idx])
}

// Deficit returns [CP − effective budget]+ (Eq. 5).
func (s *Server) Deficit(windowDt float64) float64 {
	d := s.hot.cp[s.idx] - s.EffectiveBudget(windowDt)
	if d < 0 || s.hot.asleep[s.idx] {
		return 0
	}
	return d
}

// Surplus returns [effective budget − CP]+ (Eq. 6).
func (s *Server) Surplus(windowDt float64) float64 {
	if s.hot.asleep[s.idx] {
		return 0
	}
	d := s.EffectiveBudget(windowDt) - s.hot.cp[s.idx]
	if d < 0 {
		return 0
	}
	return d
}
