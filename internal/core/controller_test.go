package core

import (
	"math"
	"testing"

	"willow/internal/dist"
	"willow/internal/power"
	"willow/internal/thermal"
	"willow/internal/topo"
	"willow/internal/workload"
)

// benignThermal never binds: its sustainable power limit far exceeds any
// server in these tests.
var benignThermal = thermal.Model{C1: 0.0005, C2: 0.1, Ambient: 25, Limit: 90}

// quietCfg disables demand noise and consolidation so scenarios are
// exactly reproducible arithmetic.
func quietCfg() Config {
	return Config{
		Alpha:            1, // no smoothing lag: CP == raw demand
		Eta1:             1,
		Eta2:             1 << 20, // consolidation effectively off (tick 0 only)
		PMin:             5,
		MigCostWatts:     2,
		ConsolidateBelow: 1e-12,
		PingPongWindow:   50,
		WakeLatency:      2,
		ThermalWindow:    4,
		ThermalDt:        1,
		NoiseLambda:      -1, // negative disables app noise injection
	}
}

// buildController assembles a controller over the given fanout with one
// spec per server.
func buildController(t *testing.T, fanout []int, specs []ServerSpec, supply power.Supply, cfg Config) *Controller {
	t.Helper()
	tree, err := topo.Build(fanout)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(tree, specs, supply, cfg, dist.NewSource(42))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// serverSpec builds a spec with the given static/peak power, optional
// circuit limit, and apps of the given dynamic means.
func serverSpec(static, peak, circuit float64, appMeans ...float64) ServerSpec {
	spec := ServerSpec{
		Power:        power.ServerModel{Static: static, Peak: peak},
		Thermal:      benignThermal,
		CircuitLimit: circuit,
	}
	for i, m := range appMeans {
		spec.Apps = append(spec.Apps, &workload.App{
			ID:          100*i + i, // overwritten below by unique IDs in tests that care
			Class:       workload.Class{Name: "t", Weight: m},
			Mean:        m,
			NoiseLambda: -1,
		})
	}
	return spec
}

// uniqueIDs re-numbers all apps across specs so IDs are globally unique.
func uniqueIDs(specs []ServerSpec) []ServerSpec {
	id := 0
	for _, s := range specs {
		for _, a := range s.Apps {
			a.ID = id
			id++
		}
	}
	return specs
}

func TestDefaultsMatchPaper(t *testing.T) {
	d := Defaults()
	if d.Eta1 != 4 || d.Eta2 != 7 {
		t.Errorf("eta1/eta2 = %d/%d, want 4/7 (Section V-B1)", d.Eta1, d.Eta2)
	}
	if d.ConsolidateBelow != 0.20 {
		t.Errorf("consolidation threshold = %v, want 0.20 (Section V-C5)", d.ConsolidateBelow)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Alpha: 1.5},
		{Eta1: 3, Eta2: 3}, // η2 must exceed η1
		{Eta1: -1},
		{PMin: -5},
		{MigCostWatts: -1},
		{ConsolidateBelow: 1.5},
	}
	for i, cfg := range cases {
		if _, err := cfg.withDefaults(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestNewValidation(t *testing.T) {
	tree, err := topo.Build([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	specs := uniqueIDs([]ServerSpec{serverSpec(10, 100, 0), serverSpec(10, 100, 0)})
	if _, err := New(nil, specs, power.Constant(100), Config{}, nil); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := New(tree, specs[:1], power.Constant(100), Config{}, nil); err == nil {
		t.Error("spec count mismatch accepted")
	}
	if _, err := New(tree, specs, nil, Config{}, nil); err == nil {
		t.Error("nil supply accepted")
	}
	bad := uniqueIDs([]ServerSpec{serverSpec(10, 5, 0), serverSpec(10, 100, 0)})
	if _, err := New(tree, bad, power.Constant(100), Config{}, nil); err == nil {
		t.Error("invalid power model accepted")
	}
}

// TestStableAllocationNoMigrations: with ample supply and all demands
// within budgets, no migrations ever happen and every server is fully
// served.
func TestStableAllocationNoMigrations(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 0, 60, 30),
		serverSpec(50, 200, 0, 20),
		serverSpec(50, 200, 0, 40),
	})
	c := buildController(t, []int{3}, specs, power.Constant(600), quietCfg())
	c.Run(20)
	if got := len(c.Stats.Migrations); got != 0 {
		t.Errorf("%d migrations in a stable scenario", got)
	}
	if c.Stats.DroppedWattTicks > 0 {
		t.Errorf("dropped %v watt-ticks with ample supply", c.Stats.DroppedWattTicks)
	}
	// Every server consumes exactly its demand.
	wants := []float64{140, 70, 90}
	for i, s := range c.Servers {
		if math.Abs(s.Consumed()-wants[i]) > 1e-6 {
			t.Errorf("server %d consumed %v, want %v", i, s.Consumed(), wants[i])
		}
	}
}

// TestBudgetsRespectSupply: children allocations never exceed the parent
// budget, and the floors-first policy funds static power before dynamic.
func TestBudgetsRespectSupply(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 0, 100),
		serverSpec(50, 200, 0, 10),
	})
	// 220 W: floors (100) met, dynamic wants (110) met, 10 W leftover
	// split demand-proportionally.
	c := buildController(t, []int{2}, specs, power.Constant(220), quietCfg())
	c.Step()
	var total float64
	for _, s := range c.Servers {
		if s.TP() < -tolerance {
			t.Errorf("negative budget %v", s.TP())
		}
		total += s.TP()
	}
	if total > 220+tolerance {
		t.Errorf("allocated %v over supply 220", total)
	}
	if c.Servers[0].TP() < c.Servers[0].Power.Static || c.Servers[1].TP() < c.Servers[1].Power.Static {
		t.Errorf("floors unmet: budgets %v, %v", c.Servers[0].TP(), c.Servers[1].TP())
	}
	if c.Servers[0].TP() <= c.Servers[1].TP() {
		t.Errorf("demand-heavy server got %v <= light server %v", c.Servers[0].TP(), c.Servers[1].TP())
	}
}

// TestDeepScarcityDrainsToOneServer: when even the static floors exceed
// the supply, Willow consolidates down to the servers it can afford
// rather than stranding budget on idle draw.
func TestDeepScarcityDrainsToOneServer(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 0, 100),
		serverSpec(50, 200, 0, 10),
	})
	c := buildController(t, []int{2}, specs, power.Constant(130), quietCfg())
	c.Run(3)
	if got := c.AsleepCount(); got != 1 {
		t.Fatalf("asleep = %d, want 1 (light server drained)", got)
	}
	if c.Servers[0].Asleep() {
		t.Error("the heavy server slept; the light one should")
	}
	if c.Servers[0].Apps.Len() != 2 {
		t.Errorf("surviving server hosts %d apps, want 2", c.Servers[0].Apps.Len())
	}
	// Supply-bound service: the survivor consumes the full 130 W budget.
	if math.Abs(c.TotalConsumed()-130) > 1 {
		t.Errorf("total consumed %v, want ~130 (supply-bound)", c.TotalConsumed())
	}
}

// TestLocalMigrationOnCircuitDeficit: a circuit-capped server sheds an
// application to its sibling, locally, with margins kept on both sides.
func TestLocalMigrationOnCircuitDeficit(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 150, 60, 60), // demand 170, circuit-capped at 150
		serverSpec(50, 200, 0, 10),
		serverSpec(50, 200, 0, 10),
	})
	c := buildController(t, []int{3}, specs, power.Constant(550), quietCfg())
	c.Step()
	if got := c.Stats.DemandMigrations; got != 1 {
		t.Fatalf("demand migrations = %d, want 1", got)
	}
	m := c.Stats.Migrations[0]
	if m.From != 0 {
		t.Errorf("migrated from server %d, want 0", m.From)
	}
	if !m.Local || m.Hops != 1 {
		t.Errorf("migration local=%v hops=%d, want local over 1 hop", m.Local, m.Hops)
	}
	if m.Cause != CauseDemand {
		t.Errorf("cause = %v, want demand", m.Cause)
	}
	if m.Watts != 60 {
		t.Errorf("moved %v W, want the 60 W app", m.Watts)
	}
	// Source retains the P_min margin against its cap.
	src := c.Servers[0]
	if src.CP() > 150-c.Cfg.PMin+tolerance {
		t.Errorf("source CP %v leaves less than P_min margin under its 150 W cap", src.CP())
	}
	// Run on: the system must settle with no further migrations
	// (decision stability, Property 4).
	c.Run(30)
	if got := c.Stats.DemandMigrations; got != 1 {
		t.Errorf("further migrations after settling: %d total", got)
	}
	if c.Stats.PingPongs != 0 {
		t.Errorf("ping-pongs: %d", c.Stats.PingPongs)
	}
}

// TestMigrationPrefersSmallestAdequateSurplus: among equal-distance
// targets, the tightest fitting surplus wins (the FFDLR repack
// equivalent).
func TestMigrationPrefersSmallestAdequateSurplus(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 120, 60), // deficit server: demand 110 vs cap 120... adjust below
		serverSpec(50, 200, 0, 80),   // surplus exists but smaller
		serverSpec(50, 200, 0, 10),   // big surplus
	})
	// Make server 0 clearly deficit: cap 90 against demand 110.
	specs[0].CircuitLimit = 90
	c := buildController(t, []int{3}, specs, power.Constant(600), quietCfg())
	c.Step()
	if len(c.Stats.Migrations) == 0 {
		t.Fatal("no migration happened")
	}
	m := c.Stats.Migrations[0]
	if m.To != 1 {
		t.Errorf("app moved to server %d, want 1 (smallest adequate surplus)", m.To)
	}
}

// TestEscalationToNonLocal: when siblings cannot absorb the deficit, the
// demand escalates and lands in the other subtree (3 hops, non-local).
func TestEscalationToNonLocal(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 100, 80), // deficit: demand 130 vs cap 100
		serverSpec(50, 200, 0, 130),  // sibling is full (demand 180 of 200 peak)
		serverSpec(50, 200, 0, 10),   // other subtree: plenty of room
		serverSpec(50, 200, 0, 10),
	})
	c := buildController(t, []int{2, 2}, specs, power.Constant(800), quietCfg())
	c.Step()
	if got := c.Stats.DemandMigrations; got != 1 {
		t.Fatalf("demand migrations = %d, want 1", got)
	}
	m := c.Stats.Migrations[0]
	if m.Local {
		t.Error("migration reported local, want non-local")
	}
	if m.Hops != 3 {
		t.Errorf("hops = %d, want 3", m.Hops)
	}
	if m.To != 2 && m.To != 3 {
		t.Errorf("target server %d, want 2 or 3", m.To)
	}
}

// TestLocalPreferredOverNonLocal: with room in both the sibling and the
// far subtree, the sibling wins even when the far surplus fits tighter.
func TestLocalPreferredOverNonLocal(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 100, 80), // deficit
		serverSpec(50, 200, 0, 10),   // sibling: large surplus
		serverSpec(50, 200, 0, 95),   // far: tight surplus (would be best-fit)
		serverSpec(50, 200, 0, 95),
	})
	c := buildController(t, []int{2, 2}, specs, power.Constant(900), quietCfg())
	c.Step()
	if len(c.Stats.Migrations) == 0 {
		t.Fatal("no migration")
	}
	m := c.Stats.Migrations[0]
	if m.To != 1 || !m.Local {
		t.Errorf("moved to server %d (local=%v), want sibling 1", m.To, m.Local)
	}
}

// TestNoMigrationWithoutMargin: if no target can keep the P_min margin,
// the demand is shed instead of migrated.
func TestNoMigrationWithoutMargin(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 100, 80), // deficit 30
		serverSpec(50, 200, 0, 130),  // surplus < item + margin
	})
	// Supply just covers demands: server 1's budget tops at its demand +
	// leftover; make supply tight so the surplus is under 80+PMin.
	c := buildController(t, []int{2}, specs, power.Constant(315), quietCfg())
	c.Step()
	if got := len(c.Stats.Migrations); got != 0 {
		t.Errorf("%d migrations despite missing margin", got)
	}
	if c.Servers[0].Dropped() <= 0 {
		t.Error("deficit demand was not shed")
	}
}

// TestThermalCapDrivesMigration: a server in a hot ambient zone throttles
// via Eq. 3 and its workload leaves for a cool sibling; the thermal limit
// is never violated.
func TestThermalCapDrivesMigration(t *testing.T) {
	hot := thermal.Model{C1: 0.005, C2: 0.05, Ambient: 40, Limit: 70} // sustainable 300 W
	cool := thermal.Model{C1: 0.005, C2: 0.05, Ambient: 25, Limit: 70}
	specs := uniqueIDs([]ServerSpec{
		{Power: power.ServerModel{Static: 50, Peak: 450}, Thermal: hot,
			Apps: []*workload.App{
				{Class: workload.Class{Weight: 1}, Mean: 120, NoiseLambda: -1},
				{Class: workload.Class{Weight: 1}, Mean: 120, NoiseLambda: -1},
				{Class: workload.Class{Weight: 1}, Mean: 120, NoiseLambda: -1},
			}},
		{Power: power.ServerModel{Static: 50, Peak: 450}, Thermal: cool,
			Apps: []*workload.App{{Class: workload.Class{Weight: 1}, Mean: 60, NoiseLambda: -1}}},
	})
	c := buildController(t, []int{2}, specs, power.Constant(900), quietCfg())
	for i := 0; i < 300; i++ {
		c.Step()
		for si, s := range c.Servers {
			if s.Thermal.T > s.Thermal.Model.Limit+1e-6 {
				t.Fatalf("tick %d: server %d at %.2f °C exceeds limit", i, si, s.Thermal.T)
			}
		}
	}
	if c.Stats.DemandMigrations == 0 {
		t.Error("hot server never shed load")
	}
	// The hot server must end up consuming no more than its sustainable
	// thermal power.
	sustainable := hot.SteadyStatePowerLimit()
	if got := c.Servers[0].Consumed(); got > sustainable+25 {
		t.Errorf("hot server consumes %v W, sustainable is %v W", got, sustainable)
	}
	if c.Stats.PingPongs != 0 {
		t.Errorf("ping-pongs: %d", c.Stats.PingPongs)
	}
}

// TestConsolidationSleepsIdleServer: a lightly loaded server is drained
// and deactivated; its static draw disappears from total consumption.
func TestConsolidationSleepsIdleServer(t *testing.T) {
	cfg := quietCfg()
	cfg.Eta2 = 2
	cfg.ConsolidateBelow = 0.20
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 0, 100), // 67 % dynamic util
		serverSpec(50, 200, 0, 20),  // 13 % -> candidate
		serverSpec(50, 200, 0, 60),  // 40 %
	})
	c := buildController(t, []int{3}, specs, power.Constant(600), quietCfg())
	c.Cfg = func() Config { cc, _ := cfg.withDefaults(); return cc }()
	c.Run(10)
	if got := c.AsleepCount(); got != 1 {
		t.Fatalf("asleep servers = %d, want 1", got)
	}
	if !c.Servers[1].Asleep() {
		t.Error("wrong server slept")
	}
	if c.Stats.ConsolidationMigrations == 0 {
		t.Error("no consolidation-cause migrations recorded")
	}
	// Total consumption settles at demand minus one static floor.
	want := (50 + 100 + 20) + (50 + 60) // two awake servers hosting all demand
	// Allow the migration cost transient to have decayed.
	if got := c.TotalConsumed(); math.Abs(got-float64(want)) > 1 {
		t.Errorf("total consumed %v, want ~%d", got, want)
	}
}

func TestConsolidationNeverSleepsLastServer(t *testing.T) {
	cfg := quietCfg()
	cfg.Eta2 = 2
	cfg.ConsolidateBelow = 0.5 // everyone is a candidate
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 0, 10),
		serverSpec(50, 200, 0, 10),
	})
	c := buildController(t, []int{2}, specs, power.Constant(400), cfg)
	c.Run(20)
	if got := c.AsleepCount(); got >= 2 {
		t.Fatalf("all %d servers asleep", got)
	}
	if got := c.AsleepCount(); got != 1 {
		t.Errorf("asleep = %d, want exactly 1 (packed onto one server)", got)
	}
}

// TestDrainToSleepOnSupplyPlunge reproduces the §V-C4 dynamics in
// miniature: a supply plunge below the static floors forces one server to
// drain and sleep (a burst of demand-driven migrations), after which the
// system is stable for the rest of the deficit — no further migrations —
// and nothing sheds.
func TestDrainToSleepOnSupplyPlunge(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 0, 25), // 75 W
		serverSpec(50, 200, 0, 3),  // 53 W
		serverSpec(50, 200, 0, 2),  // 52 W
	})
	supply := power.Trace{250, 250, 250, 140, 140, 140, 140, 140, 140, 140}
	c := buildController(t, []int{3}, specs, supply, quietCfg())
	c.Run(10)
	if got := c.AsleepCount(); got != 1 {
		t.Fatalf("asleep = %d, want 1 after the plunge", got)
	}
	if !c.Servers[2].Asleep() {
		t.Error("expected the lightest server (2) to sleep")
	}
	// All migrations must be demand-caused and clustered at the plunge.
	for _, m := range c.Stats.Migrations {
		if m.Cause != CauseDemand {
			t.Errorf("migration cause %v, want demand", m.Cause)
		}
		if m.Tick != 3 {
			t.Errorf("migration at tick %d, want all at plunge tick 3 (stability)", m.Tick)
		}
	}
	if c.Stats.PingPongs != 0 {
		t.Errorf("ping-pongs: %d", c.Stats.PingPongs)
	}
	// After settling, the full demand is served within the reduced supply.
	total := c.TotalConsumed()
	if total > 140+tolerance {
		t.Errorf("consuming %v over the 140 W supply", total)
	}
	wantDemand := 100.0 + 30 // two floors + all dynamic demand
	if math.Abs(total-wantDemand) > 1 {
		t.Errorf("consumed %v, want ~%v (everything served)", total, wantDemand)
	}
}

// TestWakeOnDemandPressure: a sleeping server is woken when demand no
// longer fits the awake ones.
func TestWakeOnDemandPressure(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 0, 60),
		serverSpec(50, 200, 0),
	})
	c := buildController(t, []int{2}, specs, power.Constant(500), quietCfg())
	c.Servers[1].setAsleep(true)
	// Load server 0 beyond its peak so demand cannot fit locally.
	c.Servers[0].Apps.Add(&workload.App{ID: 999, Class: workload.Class{Weight: 1}, Mean: 120, NoiseLambda: -1})
	c.Run(1 + c.Cfg.WakeLatency + 2)
	if c.Stats.Wakes != 1 {
		t.Fatalf("wakes = %d, want 1", c.Stats.Wakes)
	}
	if c.Servers[1].Asleep() {
		t.Fatal("server 1 still asleep")
	}
	if c.Stats.DemandMigrations == 0 {
		t.Error("no migration to the woken server")
	}
	if c.Servers[1].Apps.Len() == 0 {
		t.Error("woken server hosts nothing")
	}
}

// TestMessagesPerLinkBounded verifies Property 3: no tree link ever
// carries more than 2 control messages (one per direction) in one Δ_D.
func TestMessagesPerLinkBounded(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 100, 80),
		serverSpec(50, 200, 0, 10),
		serverSpec(50, 200, 0, 130),
		serverSpec(50, 200, 0, 10),
	})
	cfg := quietCfg()
	cfg.Eta1 = 2
	cfg.Eta2 = 3
	cfg.ConsolidateBelow = 0.2
	c := buildController(t, []int{2, 2}, specs, power.Trace{600, 300, 600, 250}, cfg)
	c.Run(40)
	if got := c.Stats.MaxLinkMessagesPerTick; got > 2 {
		t.Errorf("max messages per link per tick = %d, want <= 2", got)
	}
	if c.Stats.MessagesUp == 0 || c.Stats.MessagesDown == 0 {
		t.Error("message accounting inactive")
	}
	// Upward reports: one per link per tick.
	links := int64(len(c.Tree.Nodes) - 1)
	if got := c.Stats.MessagesUp; got != links*40 {
		t.Errorf("MessagesUp = %d, want %d", got, links*40)
	}
}

// TestSmoothingFollowsEq4: with alpha < 1 the server CP tracks Eq. 4.
func TestSmoothingFollowsEq4(t *testing.T) {
	cfg := quietCfg()
	cfg.Alpha = 0.25
	specs := uniqueIDs([]ServerSpec{serverSpec(50, 200, 0, 30)})
	c := buildController(t, []int{1}, specs, power.Constant(300), cfg)
	c.Step()
	if got := c.Servers[0].CP(); math.Abs(got-80) > 1e-9 {
		t.Fatalf("first CP = %v, want 80 (first observation initializes)", got)
	}
	// Demand is constant, so CP stays put.
	c.Step()
	if got := c.Servers[0].CP(); math.Abs(got-80) > 1e-9 {
		t.Errorf("steady CP = %v, want 80", got)
	}
}

// TestLevelImbalance: Eqs. 7–9 at server level.
func TestLevelImbalance(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 100, 80), // deficit 30 against its cap
		serverSpec(50, 200, 0, 10),
	})
	cfg := quietCfg()
	cfg.PMin = 1000 // forbid migrations so the imbalance persists
	c := buildController(t, []int{2}, specs, power.Constant(400), cfg)
	c.Step()
	def, sur, imb := c.LevelImbalance(0)
	if def <= 0 {
		t.Errorf("deficit = %v, want positive", def)
	}
	if sur <= 0 {
		t.Errorf("surplus = %v, want positive", sur)
	}
	want := def + math.Min(def, sur)
	if math.Abs(imb-want) > 1e-9 {
		t.Errorf("imbalance = %v, want %v", imb, want)
	}
}

// TestDeterminism: identical seeds and configs give identical runs even
// with Poisson noise enabled.
func TestDeterminism(t *testing.T) {
	run := func() (float64, int, int64) {
		specs := uniqueIDs([]ServerSpec{
			serverSpec(50, 200, 120, 60, 30),
			serverSpec(50, 200, 0, 20),
			serverSpec(50, 200, 0, 40),
			serverSpec(50, 200, 0, 10),
		})
		for _, sp := range specs {
			for _, a := range sp.Apps {
				a.NoiseLambda = 20
			}
		}
		cfg := quietCfg()
		cfg.Alpha = 0.3
		tree, err := topo.Build([]int{2, 2})
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(tree, specs, power.Trace{500, 400, 450, 350}, cfg, dist.NewSource(7))
		if err != nil {
			t.Fatal(err)
		}
		var energy float64
		for i := 0; i < 100; i++ {
			c.Step()
			energy += c.TotalConsumed()
		}
		return energy, len(c.Stats.Migrations), c.Stats.MessagesDown
	}
	e1, m1, d1 := run()
	e2, m2, d2 := run()
	if e1 != e2 || m1 != m2 || d1 != d2 {
		t.Errorf("runs diverged: (%v,%d,%d) vs (%v,%d,%d)", e1, m1, d1, e2, m2, d2)
	}
}

// TestInvariantsUnderChurn drives a noisy 18-server system through a
// fluctuating supply and checks the global invariants every tick:
// budgets within supply, no negative values, thermal limits honored,
// apps conserved, and the Property 3 message bound.
func TestInvariantsUnderChurn(t *testing.T) {
	classes := workload.SimClasses()
	src := dist.NewSource(99)
	var specs []ServerSpec
	for i := 0; i < 18; i++ {
		amb := 25.0
		if i >= 14 {
			amb = 40
		}
		spec := ServerSpec{
			Power:   power.ServerModel{Static: 135, Peak: 450},
			Thermal: thermal.Model{C1: 0.005, C2: 0.05, Ambient: amb, Limit: 70},
		}
		for a := 0; a < 4; a++ {
			cls := classes[src.Intn(len(classes))]
			spec.Apps = append(spec.Apps, &workload.App{
				Class: cls, Mean: cls.Weight * 12, NoiseLambda: 25,
			})
		}
		specs = append(specs, spec)
	}
	specs = uniqueIDs(specs)
	appCount := 0
	for _, sp := range specs {
		appCount += len(sp.Apps)
	}

	tree, err := topo.Build([]int{2, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Defaults()
	supply := power.Sine{Base: 6500, Amplitude: 2000, Period: 37}
	c, err := New(tree, specs, supply, cfg, dist.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}

	for tick := 0; tick < 400; tick++ {
		c.Step()
		var budget float64
		apps := 0
		for _, s := range c.Servers {
			if s.TP() < -tolerance {
				t.Fatalf("tick %d: negative budget", tick)
			}
			if s.Consumed() < 0 {
				t.Fatalf("tick %d: negative consumption", tick)
			}
			// The thermal cap at consume time is gone after the
			// temperature advanced, so check the stable bounds: budget
			// and raw demand.
			if s.Consumed() > s.TP()+1e-6 {
				t.Fatalf("tick %d: consumed %v over budget %v", tick, s.Consumed(), s.TP())
			}
			if s.Consumed() > s.RawDemand()+1e-6 {
				t.Fatalf("tick %d: consumed %v over raw demand %v", tick, s.Consumed(), s.RawDemand())
			}
			if s.Thermal.T > s.Thermal.Model.Limit+1e-6 {
				t.Fatalf("tick %d: thermal limit violated: %v", tick, s.Thermal.T)
			}
			if s.Asleep() && s.Apps.Len() > 0 {
				t.Fatalf("tick %d: sleeping server hosts %d apps", tick, s.Apps.Len())
			}
			budget += s.TP()
			apps += s.Apps.Len()
		}
		if budget > supply.At(c.Tick()/cfg.Eta1)*1.0001+tolerance {
			// Budgets re-derive on supply epochs; between them they can
			// exceed a falling supply only until the next allocation.
			if tick%cfg.Eta1 == 0 {
				t.Fatalf("tick %d: budgets %v exceed supply", tick, budget)
			}
		}
		if apps != appCount {
			t.Fatalf("tick %d: %d apps, want %d (apps lost or duplicated)", tick, apps, appCount)
		}
	}
	if got := c.Stats.MaxLinkMessagesPerTick; got > 2 {
		t.Errorf("max messages per link per tick = %d, want <= 2", got)
	}
	if c.Stats.PingPongs != 0 {
		t.Errorf("ping-pongs under churn: %d", c.Stats.PingPongs)
	}
}

func TestCauseString(t *testing.T) {
	if CauseDemand.String() != "demand" || CauseConsolidation.String() != "consolidation" {
		t.Error("cause strings wrong")
	}
	if got := Cause(7).String(); got != "Cause(7)" {
		t.Errorf("unknown cause renders %q", got)
	}
}

func BenchmarkStep18Servers(b *testing.B) {
	classes := workload.SimClasses()
	src := dist.NewSource(1)
	var specs []ServerSpec
	for i := 0; i < 18; i++ {
		spec := ServerSpec{
			Power:   power.ServerModel{Static: 135, Peak: 450},
			Thermal: thermal.Model{C1: 0.005, C2: 0.05, Ambient: 25, Limit: 70},
		}
		for a := 0; a < 4; a++ {
			cls := classes[src.Intn(len(classes))]
			spec.Apps = append(spec.Apps, &workload.App{Class: cls, Mean: cls.Weight * 12, NoiseLambda: 25})
		}
		specs = append(specs, spec)
	}
	id := 0
	for _, sp := range specs {
		for _, a := range sp.Apps {
			a.ID = id
			id++
		}
	}
	tree, err := topo.Build([]int{2, 3, 3})
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(tree, specs, power.Constant(6000), Defaults(), dist.NewSource(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}

func TestServerUtilization(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{serverSpec(50, 200, 0, 75)})
	c := buildController(t, []int{1}, specs, power.Constant(500), quietCfg())
	c.Step()
	// Consumed 125 W on a 50..200 W curve -> utilization 0.5.
	if got := c.Servers[0].Utilization(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Utilization = %v, want 0.5", got)
	}
	c.Servers[0].setAsleep(true)
	if got := c.Servers[0].Utilization(); got != 0 {
		t.Errorf("asleep utilization = %v, want 0", got)
	}
}

func TestLevelImbalanceInternalLevels(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 100, 80),
		serverSpec(50, 200, 0, 10),
		serverSpec(50, 200, 0, 20),
		serverSpec(50, 200, 0, 30),
	})
	cfg := quietCfg()
	cfg.PMin = 1000 // keep deficits visible
	c := buildController(t, []int{2, 2}, specs, power.Constant(300), cfg)
	c.Step()
	for level := 0; level <= c.Tree.Height; level++ {
		def, sur, imb := c.LevelImbalance(level)
		if def < 0 || sur < 0 || imb < 0 {
			t.Errorf("level %d: negative imbalance components (%v, %v, %v)", level, def, sur, imb)
		}
		if want := def + math.Min(def, sur); math.Abs(imb-want) > 1e-9 {
			t.Errorf("level %d: Eq. 9 mismatch: imb %v want %v", level, imb, want)
		}
	}
	// Beyond the root the query is out of range and must be zero-valued.
	if def, sur, imb := c.LevelImbalance(c.Tree.Height + 1); def != 0 || sur != 0 || imb != 0 {
		t.Errorf("out-of-range level returned (%v, %v, %v)", def, sur, imb)
	}
}
