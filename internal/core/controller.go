package core

import (
	"fmt"
	"math"
	"time"

	"willow/internal/dist"
	"willow/internal/power"
	"willow/internal/telemetry"
	"willow/internal/thermal"
	"willow/internal/topo"
	"willow/internal/workload"
)

// Cause labels why a migration happened (Fig. 9 distinguishes the two).
type Cause int

const (
	// CauseDemand marks constraint-driven migrations: a deficit forced
	// workload off a node.
	CauseDemand Cause = iota
	// CauseConsolidation marks migrations that drain an under-utilized
	// server so it can sleep.
	CauseConsolidation
	// CauseRestart marks an orphaned application re-placed after its
	// host crashed (failure injection).
	CauseRestart
)

func (c Cause) String() string {
	switch c {
	case CauseDemand:
		return "demand"
	case CauseConsolidation:
		return "consolidation"
	case CauseRestart:
		return "restart"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// Migration records one applied migration.
type Migration struct {
	Tick  int
	AppID int
	// From and To are server indices (topo.Node.ServerIndex).
	From, To int
	// Watts is the mean power demand moved.
	Watts float64
	// Bytes is the VM footprint transferred (drives network cost).
	Bytes float64
	Cause Cause
	// Local reports whether source and target are siblings.
	Local bool
	// Hops is the number of switches on the migration path.
	Hops int
}

// Stats aggregates a run's control-plane measurements.
type Stats struct {
	Migrations []Migration
	// DemandMigrations and ConsolidationMigrations count by cause.
	DemandMigrations        int
	ConsolidationMigrations int
	LocalMigrations         int
	// DroppedWattTicks accumulates shed demand (watts × ticks).
	DroppedWattTicks float64
	// DemandByPriority / ServedByPriority accumulate per-QoS-class
	// watt-ticks; shedding consumes the lowest-priority class first.
	DemandByPriority, ServedByPriority map[int]float64
	// DegradedAppTicks counts application-windows served partially;
	// ShutdownAppTicks counts application-windows shed entirely.
	DegradedAppTicks, ShutdownAppTicks int64
	// PingPongs counts applications that returned to a node they had left
	// within the Δf window — Willow's stability property demands zero.
	PingPongs int
	// MessagesUp / MessagesDown count control messages over tree links.
	MessagesUp, MessagesDown int64
	// MaxLinkMessagesPerTick is the largest number of messages observed
	// on any single link in any single tick (Property 3 bounds it by 2).
	MaxLinkMessagesPerTick int
	// Wakes counts sleeping servers brought back.
	Wakes int
	// AbortedTransfers counts in-flight migrations cancelled because the
	// destination became unavailable (MigrationLatency > 0 only).
	AbortedTransfers int
	// Failures / Repairs / Restarts count injected crashes, repairs, and
	// orphaned applications restarted elsewhere. OrphanWattTicks
	// accumulates demand stranded while awaiting restart.
	Failures, Repairs, Restarts int
	OrphanWattTicks             float64
	// PMUFailures / PMURepairs count injected control-plane (PMU node)
	// crashes and repairs (failure.go).
	PMUFailures, PMURepairs int
	// LeaseExpiries counts nodes (servers and PMUs) entering degraded
	// mode after their budget lease ran out; DegradedTicks accumulates
	// server-ticks spent degraded (degraded.go).
	LeaseExpiries int
	DegradedTicks int64
	// SensorFaults counts injected sensor faults; SensorRejected the
	// readings the estimator's residual gate refused (dropouts
	// included); SensorUnhealthy how many times a sensor tripped the
	// persistent-rejection threshold; SensorGuardTicks the server-ticks
	// controlled on the model-predicted fallback temperature plus guard
	// band (sensing.go).
	SensorFaults, SensorRejected, SensorUnhealthy int
	SensorGuardTicks                              int64
}

// Controller is a running Willow instance.
type Controller struct {
	Cfg    Config
	Tree   *topo.Tree
	Supply power.Supply

	Servers []*Server    // by server index
	hot     *fleetHot    // struct-of-arrays per-server hot state (state.go)
	src     *dist.Source // demand noise
	tick    int          // current tick (next Step executes this tick)
	Stats   Stats

	// Sink, when non-nil, receives a typed telemetry event at every
	// control decision: budget allocations, migrations, thermal
	// throttles, sleep/wake transitions, failures and QoS violations.
	// Events are stamped with the simulation tick (never wall clock),
	// so a run's stream is byte-reproducible. A nil Sink costs nothing
	// — every publication site is guarded by a nil check before the
	// event is even constructed. Events published during a Step buffer
	// and flush as one batch at the step boundary, in decision order.
	Sink telemetry.Sink

	// Per-PMU control state, indexed by tree node ID (leaf slots
	// unused). pmuCP is the subtree's aggregated smoothed demand as the
	// PMU knows it; pmuTP the budget granted from above; pmuReduced the
	// unidirectional-rule flag; pmuDegraded/pmuLeaseTick/pmuLastParentTP
	// mirror the Server budget-lease state (degraded.go).
	pmuCP, pmuTP    []float64
	pmuReduced      []bool
	pmuDegraded     []bool
	pmuLeaseTick    []int
	pmuLastParentTP []float64

	// lastLeft tracks, per app, where and when it last migrated from, to
	// detect ping-pong control.
	lastLeft map[int]leftRecord

	// draining marks servers being emptied by the current consolidation
	// pass so they do not receive migrations mid-drain.
	draining map[int]bool

	// Link-message accounting (state.go): upStamp/downStamp are
	// tick-stamped by child node ID; tickUp/tickDown count distinct
	// links that carried a report/directive this step; bothDir records
	// that some link carried both directions; liveUpLinks caches the
	// synchronous-mode structural report count.
	upStamp, downStamp []int
	stamp              int
	tickUp, tickDown   int
	bothDir            bool
	liveUpLinks        int

	// pipes delay upward reports per link when the asynchronous control
	// plane is enabled (see async.go); budgetPipes do the same for the
	// downward budget directives (see degraded.go). Indexed by child
	// node ID, created lazily.
	pipes       []*reportPipe
	budgetPipes []*budgetPipe

	// failedPMU marks crashed internal nodes (FailPMU): they neither
	// aggregate reports nor issue budgets, and migrations never cross
	// their span. All-false in the paper's fail-free regime. delivered
	// is the resilient allocation pass's per-window scratch, marking
	// which nodes heard a budget directive (degraded.go).
	failedPMU      []bool
	failedPMUCount int
	delivered      []bool

	// levels caches the internal nodes per level (index = level) so the
	// per-tick aggregation does not rescan the whole tree; scratch holds
	// each internal node's preallocated allocation buffers (by node ID).
	levels  [][]*topo.Node
	scratch []*allocScratch

	// transfers, inFlight and reserved implement non-instantaneous VM
	// migration (see transfer.go). pendingSleep marks drained servers
	// waiting for their outbound transfers to land before deactivating.
	transfers    []transfer
	inFlight     map[int]bool
	reserved     map[int]float64
	pendingSleep map[int]bool

	// orphans hold applications whose host crashed, awaiting restart
	// (see failure.go).
	orphans []orphan

	// wasAsync records that the previous tick aggregated through the
	// report pipes, so a switch back to synchronous mode (a loss window
	// closing) re-sums the whole tree once.
	wasAsync bool

	// noisyDemand is set when any application draws Poisson demand
	// noise: the per-server demand loop then consumes the shared random
	// stream in server order and must stay sequential. sensorsArmed is
	// set when any server carries an instrument or estimator, forcing
	// the sequential consume path (sensing mutates shared counters).
	noisyDemand  bool
	sensorsArmed bool

	// shardPlan is the rack-aligned partition of the fleet the parallel
	// tick phases run over (state.go); evBuf/effBuf/needSlow are the
	// per-server scratch the sharded consume phase writes race-free and
	// the sequential merge phase drains in server order.
	shardPlan []shardRange
	evBuf     [][]telemetry.Event
	effBuf    []float64
	needSlow  []bool

	// inStep gates telemetry batching; eventBuf is the step's pending
	// batch (state.go).
	inStep   bool
	eventBuf []telemetry.Event

	// energy is the per-tick energy accounting state (energy.go):
	// always on, allocation-free, sequential in server order.
	energy *energyAcc

	// pol is the bound controller policy (Cfg.Policy); nil runs the
	// built-in Willow scheme on every seam (policy.go).
	pol Policy

	// Phases, when non-nil, receives the wall-clock duration of the
	// observe/allocate/consume tick phases. Wall-clock figures never
	// enter the telemetry stream or any simulation state — they exist
	// for live-daemon latency histograms only, so attaching an observer
	// cannot perturb a run's bytes. A nil Phases costs nothing: the
	// clock is never read.
	Phases PhaseObserver
}

// PhaseObserver consumes wall-clock tick-phase latencies (see
// Controller.Phases). Implementations must not touch simulation state.
type PhaseObserver interface {
	ObservePhase(phase string, seconds float64)
}

type leftRecord struct {
	from int
	tick int
}

// New builds a Controller over the given tree. specs must have one entry
// per server (tree.NumServers()).
func New(tree *topo.Tree, specs []ServerSpec, supply power.Supply, cfg Config, src *dist.Source) (*Controller, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if tree == nil {
		return nil, fmt.Errorf("core: nil tree")
	}
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	if len(specs) != tree.NumServers() {
		return nil, fmt.Errorf("core: %d server specs for %d servers", len(specs), tree.NumServers())
	}
	if supply == nil {
		return nil, fmt.Errorf("core: nil supply")
	}
	if src == nil {
		src = dist.NewSource(0)
	}

	numNodes := len(tree.Nodes)
	numServers := tree.NumServers()
	c := &Controller{
		Cfg:             cfg,
		Tree:            tree,
		Supply:          supply,
		hot:             newFleetHot(numServers, numNodes),
		src:             src,
		pmuCP:           make([]float64, numNodes),
		pmuTP:           make([]float64, numNodes),
		pmuReduced:      make([]bool, numNodes),
		pmuDegraded:     make([]bool, numNodes),
		pmuLeaseTick:    make([]int, numNodes),
		pmuLastParentTP: make([]float64, numNodes),
		lastLeft:        map[int]leftRecord{},
		draining:        map[int]bool{},
		upStamp:         make([]int, numNodes),
		downStamp:       make([]int, numNodes),
		pipes:           make([]*reportPipe, numNodes),
		budgetPipes:     make([]*budgetPipe, numNodes),
		failedPMU:       make([]bool, numNodes),
		scratch:         make([]*allocScratch, numNodes),
		inFlight:        map[int]bool{},
		reserved:        map[int]float64{},
		pendingSleep:    map[int]bool{},
		evBuf:           make([][]telemetry.Event, numServers),
		effBuf:          make([]float64, numServers),
		needSlow:        make([]bool, numServers),
	}
	c.levels = make([][]*topo.Node, tree.Height+1)
	for _, n := range tree.Nodes {
		if !n.IsLeaf() {
			c.levels[n.Level] = append(c.levels[n.Level], n)
			c.scratch[n.ID] = newAllocScratch(len(n.Children))
		}
	}
	for i, spec := range specs {
		if err := spec.Power.Validate(); err != nil {
			return nil, fmt.Errorf("core: server %d: %w", i, err)
		}
		if err := spec.Thermal.Validate(); err != nil {
			return nil, fmt.Errorf("core: server %d: %w", i, err)
		}
		sm, err := workload.NewSmoother(cfg.Alpha)
		if err != nil {
			return nil, err
		}
		srv := &Server{
			Node:         tree.Servers[i],
			Power:        spec.Power,
			Thermal:      thermal.NewState(spec.Thermal),
			CircuitLimit: spec.CircuitLimit,
			hot:          c.hot,
			idx:          i,
			smoother:     sm,
			wakeAt:       -1,
		}
		srv.capWindow = cfg.ThermalWindow
		srv.capDecay = math.Exp(-spec.Thermal.C2 * cfg.ThermalWindow)
		srv.capDen = spec.Thermal.C1 * (1 - srv.capDecay)
		// The observed temperature starts at the truth (ambient); the
		// estimator's anchor starts there too, which grounds the safe-side
		// induction of sensing.go.
		srv.setTObs(srv.Thermal.T)
		if cfg.sensingEnabled() {
			srv.est = newEstimator(cfg.SensorWindow, srv.Thermal.T)
			c.sensorsArmed = true
		}
		for _, a := range spec.Apps {
			if a.NoiseLambda == 0 {
				a.NoiseLambda = cfg.NoiseLambda
			}
			if a.NoiseLambda > 0 {
				c.noisyDemand = true
			}
			srv.Apps.Add(a)
		}
		c.Servers = append(c.Servers, srv)
	}
	c.shardPlan = planShards(tree, cfg.Shards, numServers)
	c.energy = newEnergyAcc(c)
	if cfg.Policy != nil {
		c.pol = cfg.Policy
		c.hot.pol = cfg.Policy
		c.pol.Bind(c)
		// Construction primed the cached hard caps through the built-in
		// Eq. 3 inversion (the policy was not bound yet); re-derive them
		// so tick 0 already allocates against policy caps. A fully
		// delegating policy recomputes the same pure function of TObs,
		// keeping the bytes identical.
		for _, s := range c.Servers {
			s.refreshHardCap()
		}
	}
	c.markAllDirty()
	c.recountLiveUpLinks()
	return c, nil
}

// Tick returns the number of completed ticks.
func (c *Controller) Tick() int { return c.tick }

// Step advances the simulation by one demand window Δ_D.
func (c *Controller) Step() {
	t := c.tick
	c.stamp++
	c.tickUp, c.tickDown, c.bothDir = 0, 0, false
	c.inStep = true

	c.wakeServers(t)
	c.completeTransfers(t)
	// Phase timing is wall-clock and strictly observational: with a nil
	// Phases observer the clock is never read and the path below is the
	// seed's, bit for bit.
	timed := c.Phases != nil
	var mark time.Time
	if timed {
		mark = time.Now()
	}
	c.observeDemand(t)
	if timed {
		mark = c.observePhase("observe", mark)
	}
	if t%c.Cfg.Eta1 == 0 {
		c.allocateSupplyWindow(t)
		if timed {
			c.observePhase("allocate", mark)
		}
	}
	c.restartOrphans(t)
	c.migrateDemand(t)
	if t%c.Cfg.Eta2 == 0 {
		c.consolidate(t)
	}
	if timed {
		mark = time.Now()
	}
	c.consumeAndHeat()
	if timed {
		c.observePhase("consume", mark)
	}
	c.accountEnergy(t)

	up := c.tickUp
	if !c.asyncEnabled() {
		// Synchronous reporting is structural: every live parent hears
		// every live child, every tick (the cached count is maintained
		// across PMU failures/repairs).
		up = c.liveUpLinks
	}
	c.Stats.MessagesUp += int64(up)
	c.Stats.MessagesDown += int64(c.tickDown)
	if c.bothDir {
		if c.Stats.MaxLinkMessagesPerTick < 2 {
			c.Stats.MaxLinkMessagesPerTick = 2
		}
	} else if (up > 0 || c.tickDown > 0) && c.Stats.MaxLinkMessagesPerTick < 1 {
		c.Stats.MaxLinkMessagesPerTick = 1
	}
	c.tick++
	c.inStep = false
	c.flushEvents()
}

// observePhase reports one phase's wall-clock duration since mark and
// returns the new mark.
func (c *Controller) observePhase(phase string, mark time.Time) time.Time {
	now := time.Now()
	c.Phases.ObservePhase(phase, now.Sub(mark).Seconds())
	return now
}

// Run executes n ticks.
func (c *Controller) Run(n int) {
	for i := 0; i < n; i++ {
		c.Step()
	}
}

// wakeServers completes pending wake-ups.
func (c *Controller) wakeServers(t int) {
	asleep := c.hot.asleep
	for i, s := range c.Servers {
		if asleep[i] && s.wakeAt >= 0 && s.wakeAt <= t {
			s.setAsleep(false)
			s.wakeAt = -1
			s.smoother.Reset()
			c.Stats.Wakes++
			if c.Sink != nil {
				c.publish(telemetry.Event{
					Tick: t, Kind: telemetry.KindSleepWake,
					Server: s.Node.ServerIndex, Cause: "wake",
					Watts: s.Power.Static,
				})
			}
		}
	}
}

// publishSleep records a server deactivating (consolidation or
// drain-to-sleep; failures publish their own event).
func (c *Controller) publishSleep(s *Server) {
	if c.Sink == nil {
		return
	}
	c.publish(telemetry.Event{
		Tick: c.tick, Kind: telemetry.KindSleepWake,
		Server: s.Node.ServerIndex, Cause: "sleep",
		Watts: s.Power.Static,
	})
}

// publishMigration mirrors an applied migration into the telemetry sink.
func (c *Controller) publishMigration(m Migration) {
	if c.Sink == nil {
		return
	}
	c.publish(telemetry.Event{
		Tick: m.Tick, Kind: telemetry.KindMigration,
		App: m.AppID, From: m.From, To: m.To, Hops: m.Hops,
		Cause: m.Cause.String(), Watts: m.Watts, Bytes: m.Bytes,
		Local: m.Local,
	})
}

// observeDemand draws each server's instantaneous demand, applies Eq. 4
// smoothing, and aggregates subtree demands up the tree. Each tree link
// carries exactly one upward report per tick.
func (c *Controller) observeDemand(int) {
	if len(c.shardPlan) > 1 && !c.noisyDemand {
		// Noise-free demand draws nothing from the shared random stream,
		// so the per-server phase parallelizes over rack-aligned shards.
		c.forEachShard(func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c.observeServer(i)
			}
		})
	} else {
		for i := range c.Servers {
			c.observeServer(i)
		}
	}
	if c.asyncEnabled() {
		c.wasAsync = true
		c.propagateReports()
		return
	}
	if c.wasAsync {
		// A loss window just closed: the PMU CPs hold pipe-derived
		// values the dirty bits know nothing about. Re-sum everything.
		c.markAllDirty()
		c.wasAsync = false
	}
	// Synchronous aggregation: bottom-up, level by level, visiting only
	// subtrees whose demand actually changed (state.go). A dead PMU
	// neither aggregates (its CP freezes at the last value it computed)
	// nor reports upward — its parent keeps acting on that frozen view,
	// the same "act on the previous value" semantics as a lost report.
	c.aggregate()
}

// observeServer updates one server's demand observation: the per-server
// body of observeDemand, shared by the sequential and sharded paths. It
// touches only per-server state (plus the parent rack's dirty bit).
func (c *Controller) observeServer(i int) {
	s := c.Servers[i]
	h := c.hot
	if h.asleep[i] {
		h.rawDemand[i] = 0
		s.setCP(0)
		return
	}
	dyn := s.Apps.Demand(c.src)
	raw := s.Power.Static + dyn + s.migCost
	s.migCost = 0
	if h.settled[i] && raw == h.rawDemand[i] {
		// The smoother is at an exact fixed point for this input: the
		// update would return the same CP bit for bit. Skip it.
		return
	}
	h.rawDemand[i] = raw
	prev := h.cp[i]
	wasInit := s.smoother.Initialized()
	cp := s.smoother.Update(raw)
	s.setCP(cp)
	// cp == α·raw + (1−α)·prev with prev the smoother's held value: if
	// the result equals that value, the next update with the same raw is
	// the same expression over the same bits — a true fixed point.
	h.settled[i] = wasInit && cp == prev
}

// demandOf returns the demand of any node as known to its parent — the
// delayed view under the asynchronous control plane.
func (c *Controller) demandOf(n *topo.Node) float64 {
	if n.IsLeaf() {
		return c.viewCP(c.Servers[n.ServerIndex])
	}
	return c.pmuCP[n.ID]
}

// consumeAndHeat settles each server's consumed power against its
// effective budget, accounts dropped demand, integrates temperature,
// and refreshes the observed temperature from the sensor (sensing.go).
func (c *Controller) consumeAndHeat() {
	if len(c.shardPlan) > 1 && !c.sensorsArmed {
		c.consumeAndHeatSharded()
		return
	}
	for _, s := range c.Servers {
		c.consumeServer(s)
	}
}

// consumeServer is the sequential per-server consume/heat body — the
// seed's semantics, kept for instrumented fleets and the single-shard
// path.
func (c *Controller) consumeServer(s *Server) {
	h, i := c.hot, s.idx
	if h.asleep[i] {
		h.consumed[i] = 0
		h.dropped[i] = 0
		s.Thermal.Advance(0, c.Cfg.ThermalDt)
		c.sense(s, 0)
		return
	}
	eff := s.EffectiveBudget(c.Cfg.ThermalWindow)
	if c.Sink != nil && eff < h.tp[i]-tolerance {
		// The hard constraint clamped the granted budget; report it
		// as a thermal throttle when Eq. 3 — computed, like every
		// control decision, from the observed temperature — is the
		// binding limit (rather than the circuit or rated-peak cap).
		if h.thermLim[i] <= eff+tolerance {
			c.publish(telemetry.Event{
				Tick: c.tick, Kind: telemetry.KindThermalThrottle,
				Server: s.Node.ServerIndex,
				Watts:  eff, Prev: h.tp[i], Demand: h.rawDemand[i],
			})
		}
	}
	consumed := c.settleQoS(s, eff)
	h.consumed[i] = consumed
	dropped := h.rawDemand[i] - consumed
	if dropped < 0 {
		dropped = 0
	}
	h.dropped[i] = dropped
	c.Stats.DroppedWattTicks += dropped
	if h.degraded[i] {
		c.Stats.DegradedTicks++
	}
	s.Thermal.Advance(consumed, c.Cfg.ThermalDt)
	c.sense(s, consumed)
}

// consumeAndHeatSharded is the fleet-scale consume/heat path: a parallel
// phase computes every per-server outcome (consumption, thermal
// integration, deferred events) over rack-aligned shards, then a
// sequential merge phase folds statistics and publishes events in
// server order — so the bits match the sequential path exactly for any
// shard count. Servers whose demand exceeds their budget (the QoS slow
// path, which publishes and accumulates globally) are deferred entirely
// to the merge phase.
func (c *Controller) consumeAndHeatSharded() {
	h := c.hot
	window, dt := c.Cfg.ThermalWindow, c.Cfg.ThermalDt
	t, sink := c.tick, c.Sink != nil
	c.forEachShard(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := c.Servers[i]
			c.needSlow[i] = false
			if h.asleep[i] {
				h.consumed[i] = 0
				h.dropped[i] = 0
				s.Thermal.Advance(0, dt)
				if v := s.Thermal.T; isFinite(v) {
					s.setTObs(v)
				}
				continue
			}
			eff := s.EffectiveBudget(window)
			if sink && eff < h.tp[i]-tolerance && h.thermLim[i] <= eff+tolerance {
				c.evBuf[i] = append(c.evBuf[i], telemetry.Event{
					Tick: t, Kind: telemetry.KindThermalThrottle,
					Server: s.Node.ServerIndex,
					Watts:  eff, Prev: h.tp[i], Demand: h.rawDemand[i],
				})
			}
			if h.rawDemand[i] <= eff {
				// QoS fast path: every app is served in full.
				h.consumed[i] = h.rawDemand[i]
				h.dropped[i] = 0
				s.Thermal.Advance(h.rawDemand[i], dt)
				if v := s.Thermal.T; isFinite(v) {
					s.setTObs(v)
				}
			} else {
				c.needSlow[i] = true
				c.effBuf[i] = eff
			}
		}
	})
	for i, s := range c.Servers {
		if len(c.evBuf[i]) > 0 {
			for _, e := range c.evBuf[i] {
				c.publish(e)
			}
			c.evBuf[i] = c.evBuf[i][:0]
		}
		if h.asleep[i] {
			continue
		}
		if c.needSlow[i] {
			consumed := c.settleQoS(s, c.effBuf[i])
			h.consumed[i] = consumed
			dropped := h.rawDemand[i] - consumed
			if dropped < 0 {
				dropped = 0
			}
			h.dropped[i] = dropped
			c.Stats.DroppedWattTicks += dropped
			if h.degraded[i] {
				c.Stats.DegradedTicks++
			}
			s.Thermal.Advance(consumed, dt)
			if v := s.Thermal.T; isFinite(v) {
				s.setTObs(v)
			}
			continue
		}
		// Fast-path bookkeeping (the body of settleQoS's served-in-full
		// branch). Dropped is exactly zero, so the shed-demand
		// accumulator is untouched — adding zero is the identity.
		for _, a := range s.Apps.Apps {
			c.recordService(a.Priority, a.LastDemand, a.LastDemand)
			c.recordClassService(a.ID, a.LastDemand)
		}
		if h.degraded[i] {
			c.Stats.DegradedTicks++
		}
	}
}

// TotalConsumed returns the servers' summed power draw this tick.
func (c *Controller) TotalConsumed() float64 {
	var sum float64
	for _, v := range c.hot.consumed {
		sum += v
	}
	return sum
}

// LevelImbalance returns the paper's Eqs. 7–9 for the given level:
// P_def(l) = max_i deficit, P_sur(l) = max_i surplus, and
// P_imb(l) = P_def(l) + min(P_def(l), P_sur(l)).
func (c *Controller) LevelImbalance(level int) (def, sur, imb float64) {
	if level == 0 {
		for _, s := range c.Servers {
			if d := s.Deficit(c.Cfg.ThermalWindow); d > def {
				def = d
			}
			if v := s.Surplus(c.Cfg.ThermalWindow); v > sur {
				sur = v
			}
		}
	} else if level <= c.Tree.Height {
		for _, n := range c.levels[level] {
			cp, tp := c.pmuCP[n.ID], c.pmuTP[n.ID]
			if d := cp - tp; d > def {
				def = d
			}
			if v := tp - cp; v > sur {
				sur = v
			}
		}
	}
	m := def
	if sur < m {
		m = sur
	}
	return def, sur, def + m
}

// AsleepCount returns how many servers are currently deactivated.
func (c *Controller) AsleepCount() int {
	n := 0
	for _, a := range c.hot.asleep {
		if a {
			n++
		}
	}
	return n
}
