package core

import (
	"fmt"

	"willow/internal/dist"
	"willow/internal/power"
	"willow/internal/telemetry"
	"willow/internal/thermal"
	"willow/internal/topo"
	"willow/internal/workload"
)

// Cause labels why a migration happened (Fig. 9 distinguishes the two).
type Cause int

const (
	// CauseDemand marks constraint-driven migrations: a deficit forced
	// workload off a node.
	CauseDemand Cause = iota
	// CauseConsolidation marks migrations that drain an under-utilized
	// server so it can sleep.
	CauseConsolidation
	// CauseRestart marks an orphaned application re-placed after its
	// host crashed (failure injection).
	CauseRestart
)

func (c Cause) String() string {
	switch c {
	case CauseDemand:
		return "demand"
	case CauseConsolidation:
		return "consolidation"
	case CauseRestart:
		return "restart"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// Migration records one applied migration.
type Migration struct {
	Tick  int
	AppID int
	// From and To are server indices (topo.Node.ServerIndex).
	From, To int
	// Watts is the mean power demand moved.
	Watts float64
	// Bytes is the VM footprint transferred (drives network cost).
	Bytes float64
	Cause Cause
	// Local reports whether source and target are siblings.
	Local bool
	// Hops is the number of switches on the migration path.
	Hops int
}

// Stats aggregates a run's control-plane measurements.
type Stats struct {
	Migrations []Migration
	// DemandMigrations and ConsolidationMigrations count by cause.
	DemandMigrations        int
	ConsolidationMigrations int
	LocalMigrations         int
	// DroppedWattTicks accumulates shed demand (watts × ticks).
	DroppedWattTicks float64
	// DemandByPriority / ServedByPriority accumulate per-QoS-class
	// watt-ticks; shedding consumes the lowest-priority class first.
	DemandByPriority, ServedByPriority map[int]float64
	// DegradedAppTicks counts application-windows served partially;
	// ShutdownAppTicks counts application-windows shed entirely.
	DegradedAppTicks, ShutdownAppTicks int64
	// PingPongs counts applications that returned to a node they had left
	// within the Δf window — Willow's stability property demands zero.
	PingPongs int
	// MessagesUp / MessagesDown count control messages over tree links.
	MessagesUp, MessagesDown int64
	// MaxLinkMessagesPerTick is the largest number of messages observed
	// on any single link in any single tick (Property 3 bounds it by 2).
	MaxLinkMessagesPerTick int
	// Wakes counts sleeping servers brought back.
	Wakes int
	// AbortedTransfers counts in-flight migrations cancelled because the
	// destination became unavailable (MigrationLatency > 0 only).
	AbortedTransfers int
	// Failures / Repairs / Restarts count injected crashes, repairs, and
	// orphaned applications restarted elsewhere. OrphanWattTicks
	// accumulates demand stranded while awaiting restart.
	Failures, Repairs, Restarts int
	OrphanWattTicks             float64
	// PMUFailures / PMURepairs count injected control-plane (PMU node)
	// crashes and repairs (failure.go).
	PMUFailures, PMURepairs int
	// LeaseExpiries counts nodes (servers and PMUs) entering degraded
	// mode after their budget lease ran out; DegradedTicks accumulates
	// server-ticks spent degraded (degraded.go).
	LeaseExpiries int
	DegradedTicks int64
	// SensorFaults counts injected sensor faults; SensorRejected the
	// readings the estimator's residual gate refused (dropouts
	// included); SensorUnhealthy how many times a sensor tripped the
	// persistent-rejection threshold; SensorGuardTicks the server-ticks
	// controlled on the model-predicted fallback temperature plus guard
	// band (sensing.go).
	SensorFaults, SensorRejected, SensorUnhealthy int
	SensorGuardTicks                              int64
}

// Controller is a running Willow instance.
type Controller struct {
	Cfg    Config
	Tree   *topo.Tree
	Supply power.Supply

	Servers []*Server    // by server index
	pmus    map[int]*pmu // by node ID, internal nodes only
	src     *dist.Source // demand noise
	tick    int          // current tick (next Step executes this tick)
	Stats   Stats

	// Sink, when non-nil, receives a typed telemetry event at every
	// control decision: budget allocations, migrations, thermal
	// throttles, sleep/wake transitions, failures and QoS violations.
	// Events are stamped with the simulation tick (never wall clock),
	// so a run's stream is byte-reproducible. A nil Sink costs nothing
	// — every publication site is guarded by a nil check before the
	// event is even constructed.
	Sink telemetry.Sink

	// lastLeft tracks, per app, where and when it last migrated from, to
	// detect ping-pong control.
	lastLeft map[int]leftRecord

	// draining marks servers being emptied by the current consolidation
	// pass so they do not receive migrations mid-drain.
	draining map[int]bool

	// upLinks / downLinks record which tree links (keyed by child node
	// ID) carried an upward report / downward directive this tick.
	// Downward directives batch: budget updates and migration decisions
	// issued in the same window share one message, which is what bounds
	// Property 3 at two messages per link per Δ_D.
	upLinks, downLinks map[int]bool

	// pipes delay upward reports per link when the asynchronous control
	// plane is enabled (see async.go); budgetPipes do the same for the
	// downward budget directives (see degraded.go).
	pipes       map[int]*reportPipe
	budgetPipes map[int]*budgetPipe

	// failedPMUs marks crashed internal nodes (FailPMU): they neither
	// aggregate reports nor issue budgets, and migrations never cross
	// their span. Empty in the paper's fail-free regime. delivered is
	// the resilient allocation pass's per-window scratch, marking which
	// nodes heard a budget directive (degraded.go).
	failedPMUs map[int]bool
	delivered  []bool

	// levels caches the internal nodes per level (index = level) so the
	// per-tick aggregation does not rescan the whole tree; scratch holds
	// each internal node's preallocated allocation buffers.
	levels  [][]*topo.Node
	scratch map[int]*allocScratch

	// transfers, inFlight and reserved implement non-instantaneous VM
	// migration (see transfer.go). pendingSleep marks drained servers
	// waiting for their outbound transfers to land before deactivating.
	transfers    []transfer
	inFlight     map[int]bool
	reserved     map[int]float64
	pendingSleep map[int]bool

	// orphans hold applications whose host crashed, awaiting restart
	// (see failure.go).
	orphans []orphan
}

type leftRecord struct {
	from int
	tick int
}

// New builds a Controller over the given tree. specs must have one entry
// per server (tree.NumServers()).
func New(tree *topo.Tree, specs []ServerSpec, supply power.Supply, cfg Config, src *dist.Source) (*Controller, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if tree == nil {
		return nil, fmt.Errorf("core: nil tree")
	}
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	if len(specs) != tree.NumServers() {
		return nil, fmt.Errorf("core: %d server specs for %d servers", len(specs), tree.NumServers())
	}
	if supply == nil {
		return nil, fmt.Errorf("core: nil supply")
	}
	if src == nil {
		src = dist.NewSource(0)
	}

	c := &Controller{
		Cfg:          cfg,
		Tree:         tree,
		Supply:       supply,
		pmus:         map[int]*pmu{},
		src:          src,
		lastLeft:     map[int]leftRecord{},
		draining:     map[int]bool{},
		upLinks:      map[int]bool{},
		downLinks:    map[int]bool{},
		pipes:        map[int]*reportPipe{},
		budgetPipes:  map[int]*budgetPipe{},
		failedPMUs:   map[int]bool{},
		inFlight:     map[int]bool{},
		reserved:     map[int]float64{},
		pendingSleep: map[int]bool{},
	}
	c.levels = make([][]*topo.Node, tree.Height+1)
	c.scratch = make(map[int]*allocScratch)
	for _, n := range tree.Nodes {
		if !n.IsLeaf() {
			c.pmus[n.ID] = &pmu{node: n}
			c.levels[n.Level] = append(c.levels[n.Level], n)
			c.scratch[n.ID] = newAllocScratch(len(n.Children))
		}
	}
	for i, spec := range specs {
		if err := spec.Power.Validate(); err != nil {
			return nil, fmt.Errorf("core: server %d: %w", i, err)
		}
		if err := spec.Thermal.Validate(); err != nil {
			return nil, fmt.Errorf("core: server %d: %w", i, err)
		}
		sm, err := workload.NewSmoother(cfg.Alpha)
		if err != nil {
			return nil, err
		}
		srv := &Server{
			Node:         tree.Servers[i],
			Power:        spec.Power,
			Thermal:      thermal.NewState(spec.Thermal),
			CircuitLimit: spec.CircuitLimit,
			smoother:     sm,
			wakeAt:       -1,
		}
		// The observed temperature starts at the truth (ambient); the
		// estimator's anchor starts there too, which grounds the safe-side
		// induction of sensing.go.
		srv.TObs = srv.Thermal.T
		if cfg.sensingEnabled() {
			srv.est = newEstimator(cfg.SensorWindow, srv.Thermal.T)
		}
		for _, a := range spec.Apps {
			if a.NoiseLambda == 0 {
				a.NoiseLambda = cfg.NoiseLambda
			}
			srv.Apps.Add(a)
		}
		c.Servers = append(c.Servers, srv)
	}
	return c, nil
}

// Tick returns the number of completed ticks.
func (c *Controller) Tick() int { return c.tick }

// Step advances the simulation by one demand window Δ_D.
func (c *Controller) Step() {
	t := c.tick
	clear(c.upLinks)
	clear(c.downLinks)

	c.wakeServers(t)
	c.completeTransfers(t)
	c.observeDemand(t)
	if t%c.Cfg.Eta1 == 0 {
		c.allocateSupplyWindow(t)
	}
	c.restartOrphans(t)
	c.migrateDemand(t)
	if t%c.Cfg.Eta2 == 0 {
		c.consolidate(t)
	}
	c.consumeAndHeat()

	c.Stats.MessagesUp += int64(len(c.upLinks))
	c.Stats.MessagesDown += int64(len(c.downLinks))
	for id := range c.upLinks {
		n := 1
		if c.downLinks[id] {
			n = 2
		}
		if n > c.Stats.MaxLinkMessagesPerTick {
			c.Stats.MaxLinkMessagesPerTick = n
		}
	}
	for id := range c.downLinks {
		if !c.upLinks[id] && 1 > c.Stats.MaxLinkMessagesPerTick {
			c.Stats.MaxLinkMessagesPerTick = 1
		}
	}
	c.tick++
}

// Run executes n ticks.
func (c *Controller) Run(n int) {
	for i := 0; i < n; i++ {
		c.Step()
	}
}

// wakeServers completes pending wake-ups.
func (c *Controller) wakeServers(t int) {
	for _, s := range c.Servers {
		if s.Asleep && s.wakeAt >= 0 && s.wakeAt <= t {
			s.Asleep = false
			s.wakeAt = -1
			s.smoother.Reset()
			c.Stats.Wakes++
			if c.Sink != nil {
				c.Sink.Publish(telemetry.Event{
					Tick: t, Kind: telemetry.KindSleepWake,
					Server: s.Node.ServerIndex, Cause: "wake",
					Watts: s.Power.Static,
				})
			}
		}
	}
}

// publishSleep records a server deactivating (consolidation or
// drain-to-sleep; failures publish their own event).
func (c *Controller) publishSleep(s *Server) {
	if c.Sink == nil {
		return
	}
	c.Sink.Publish(telemetry.Event{
		Tick: c.tick, Kind: telemetry.KindSleepWake,
		Server: s.Node.ServerIndex, Cause: "sleep",
		Watts: s.Power.Static,
	})
}

// publishMigration mirrors an applied migration into the telemetry sink.
func (c *Controller) publishMigration(m Migration) {
	if c.Sink == nil {
		return
	}
	c.Sink.Publish(telemetry.Event{
		Tick: m.Tick, Kind: telemetry.KindMigration,
		App: m.AppID, From: m.From, To: m.To, Hops: m.Hops,
		Cause: m.Cause.String(), Watts: m.Watts, Bytes: m.Bytes,
		Local: m.Local,
	})
}

// observeDemand draws each server's instantaneous demand, applies Eq. 4
// smoothing, and aggregates subtree demands up the tree. Each tree link
// carries exactly one upward report per tick.
func (c *Controller) observeDemand(int) {
	for _, s := range c.Servers {
		if s.Asleep {
			s.RawDemand = 0
			s.CP = 0
			continue
		}
		dyn := s.Apps.Demand(c.src)
		s.RawDemand = s.Power.Static + dyn + s.migCost
		s.migCost = 0
		s.CP = s.smoother.Update(s.RawDemand)
	}
	if c.asyncEnabled() {
		c.propagateReports()
		return
	}
	// Synchronous aggregation: bottom-up, level by level. A dead PMU
	// neither aggregates (its CP freezes at the last value it computed)
	// nor reports upward — its parent keeps acting on that frozen view,
	// the same "act on the previous value" semantics as a lost report.
	for level := 1; level <= c.Tree.Height; level++ {
		for _, n := range c.levels[level] {
			if c.failedPMUs[n.ID] {
				continue
			}
			p := c.pmus[n.ID]
			p.CP = 0
			for _, child := range n.Children {
				p.CP += c.demandOf(child)
				if child.IsLeaf() || !c.failedPMUs[child.ID] {
					c.countUp(child) // child -> parent report
				}
			}
		}
	}
}

// demandOf returns the demand of any node as known to its parent — the
// delayed view under the asynchronous control plane.
func (c *Controller) demandOf(n *topo.Node) float64 {
	if n.IsLeaf() {
		return c.viewCP(c.Servers[n.ServerIndex])
	}
	return c.pmus[n.ID].CP
}

// countUp records an upward report on the link between n and its parent.
func (c *Controller) countUp(n *topo.Node) {
	if n.Parent != nil {
		c.upLinks[n.ID] = true
	}
}

// countDown records a downward directive on the link between n and its
// parent. Directives within a tick batch into a single message.
func (c *Controller) countDown(n *topo.Node) {
	if n.Parent != nil {
		c.downLinks[n.ID] = true
	}
}

// consumeAndHeat settles each server's consumed power against its
// effective budget, accounts dropped demand, integrates temperature,
// and refreshes the observed temperature from the sensor (sensing.go).
func (c *Controller) consumeAndHeat() {
	for _, s := range c.Servers {
		if s.Asleep {
			s.Consumed = 0
			s.Dropped = 0
			s.Thermal.Advance(0, c.Cfg.ThermalDt)
			c.sense(s, 0)
			continue
		}
		eff := s.EffectiveBudget(c.Cfg.ThermalWindow)
		if c.Sink != nil && eff < s.TP-tolerance {
			// The hard constraint clamped the granted budget; report it
			// as a thermal throttle when Eq. 3 — computed, like every
			// control decision, from the observed temperature — is the
			// binding limit (rather than the circuit or rated-peak cap).
			if lim := s.Thermal.Model.PowerLimit(s.TObs, c.Cfg.ThermalWindow); lim <= eff+tolerance {
				c.Sink.Publish(telemetry.Event{
					Tick: c.tick, Kind: telemetry.KindThermalThrottle,
					Server: s.Node.ServerIndex,
					Watts:  eff, Prev: s.TP, Demand: s.RawDemand,
				})
			}
		}
		s.Consumed = c.settleQoS(s, eff)
		s.Dropped = s.RawDemand - s.Consumed
		if s.Dropped < 0 {
			s.Dropped = 0
		}
		c.Stats.DroppedWattTicks += s.Dropped
		if s.Degraded {
			c.Stats.DegradedTicks++
		}
		s.Thermal.Advance(s.Consumed, c.Cfg.ThermalDt)
		c.sense(s, s.Consumed)
	}
}

// TotalConsumed returns the servers' summed power draw this tick.
func (c *Controller) TotalConsumed() float64 {
	var sum float64
	for _, s := range c.Servers {
		sum += s.Consumed
	}
	return sum
}

// LevelImbalance returns the paper's Eqs. 7–9 for the given level:
// P_def(l) = max_i deficit, P_sur(l) = max_i surplus, and
// P_imb(l) = P_def(l) + min(P_def(l), P_sur(l)).
func (c *Controller) LevelImbalance(level int) (def, sur, imb float64) {
	if level == 0 {
		for _, s := range c.Servers {
			if d := s.Deficit(c.Cfg.ThermalWindow); d > def {
				def = d
			}
			if v := s.Surplus(c.Cfg.ThermalWindow); v > sur {
				sur = v
			}
		}
	} else if level <= c.Tree.Height {
		for _, n := range c.levels[level] {
			p := c.pmus[n.ID]
			if d := p.CP - p.TP; d > def {
				def = d
			}
			if v := p.TP - p.CP; v > sur {
				sur = v
			}
		}
	}
	m := def
	if sur < m {
		m = sur
	}
	return def, sur, def + m
}

// AsleepCount returns how many servers are currently deactivated.
func (c *Controller) AsleepCount() int {
	n := 0
	for _, s := range c.Servers {
		if s.Asleep {
			n++
		}
	}
	return n
}
