package core

import (
	"willow/internal/telemetry"
	"willow/internal/topo"
	"willow/internal/workload"
)

// Failure injection. The paper assumes servers do not fail (its
// convergence analysis only worries about control-message links); a
// production deployment cannot. FailServer models a crash — not a
// graceful drain: the server goes dark instantly and its applications
// are orphaned. Orphans re-place through the regular migration machinery
// at the start of every demand window, preferring targets near the
// failed server (restart locality mirrors migration locality: the VM's
// disk image lives close by). Capacity pressure from restarts drives the
// existing wake path. RepairServer brings the machine back as an empty,
// awake server that the next allocation folds in.

// orphan is an application awaiting restart after its host failed.
type orphan struct {
	app  *workload.App
	home *Server // the failed host, used for restart locality
}

// FailServer crashes the server with the given index: it deactivates
// immediately, its applications are orphaned for restart, and any
// transfer touching it is cancelled (inbound transfers return to their
// sources; outbound ones become orphans since the source is gone).
// Failing an already-failed server is a no-op. A sleeping server can
// die too — it hosts nothing, but it must be marked failed so tryWake
// never selects a dead machine.
func (c *Controller) FailServer(idx int) {
	if idx < 0 || idx >= len(c.Servers) {
		panic("core: FailServer index out of range")
	}
	s := c.Servers[idx]
	if s.failed {
		return
	}
	if s.Asleep() {
		// Dies in its sleep: drained before deactivating, so there are
		// no applications to orphan and no transfers to cancel.
		s.failed = true
		s.wakeAt = -1
		c.Stats.Failures++
		if c.Sink != nil {
			c.publish(telemetry.Event{
				Tick: c.tick, Kind: telemetry.KindFailure,
				Server: idx, Cause: "fail",
			})
		}
		return
	}
	// Cancel transfers touching the failed machine.
	remaining := c.transfers[:0]
	for _, tr := range c.transfers {
		switch {
		case tr.src == s:
			// The departing app dies with its host; it becomes an orphan
			// below (it is still in s.Apps).
			delete(c.inFlight, tr.app)
			c.releaseReservation(tr)
			c.Stats.AbortedTransfers++
		case tr.dst == s:
			// Inbound transfer: the app never left its source.
			delete(c.inFlight, tr.app)
			c.releaseReservation(tr)
			c.Stats.AbortedTransfers++
		default:
			remaining = append(remaining, tr)
		}
	}
	c.transfers = remaining
	delete(c.pendingSleep, idx)
	delete(c.draining, idx)

	orphaned := 0
	var orphanWatts float64
	for _, a := range s.Apps.Apps {
		c.orphans = append(c.orphans, orphan{app: a, home: s})
		orphaned++
		orphanWatts += a.Mean
	}
	s.Apps.Apps = nil
	s.setAsleep(true)
	s.failed = true
	s.wakeAt = -1
	s.setRawDemand(0)
	s.setCP(0)
	s.setConsumed(0)
	s.smoother.Reset()
	c.Stats.Failures++
	if c.Sink != nil {
		c.publish(telemetry.Event{
			Tick: c.tick, Kind: telemetry.KindFailure,
			Server: idx, Cause: "fail",
			Count: orphaned, Watts: orphanWatts,
		})
	}
}

// RepairServer returns a failed server to service as an empty, awake
// machine. It is a no-op for servers that are not failed.
func (c *Controller) RepairServer(idx int) {
	if idx < 0 || idx >= len(c.Servers) {
		panic("core: RepairServer index out of range")
	}
	s := c.Servers[idx]
	if !s.failed {
		return
	}
	s.failed = false
	s.setAsleep(false)
	s.smoother.Reset()
	c.Stats.Repairs++
	if c.Sink != nil {
		c.publish(telemetry.Event{
			Tick: c.tick, Kind: telemetry.KindFailure,
			Server: idx, Cause: "repair",
		})
	}
}

// Orphans reports how many applications currently await restart.
func (c *Controller) Orphans() int { return len(c.orphans) }

// restartOrphans places orphaned applications into current surpluses,
// preferring targets near the failed home (the same locality-ordered
// escalation as migrations). Placed orphans are recorded as restart
// migrations; the rest wait — accumulating OrphanWattTicks — and exert
// wake pressure through tryWake.
func (c *Controller) restartOrphans(t int) {
	if len(c.orphans) == 0 {
		return
	}
	var stranded float64
	for _, o := range c.orphans {
		c.Stats.OrphanWattTicks += o.app.Mean
		stranded += o.app.Mean
	}
	if c.Sink != nil {
		// One degradation record per waiting tick, so aggregators can
		// integrate stranded demand (OrphanWattTicks) from the stream.
		c.publish(telemetry.Event{
			Tick: t, Kind: telemetry.KindDegraded,
			Cause: "orphans", Count: len(c.orphans), Watts: stranded,
		})
	}
	ws := c.workingSurpluses(c.Cfg.ThermalWindow)
	var waiting []orphan
	for _, o := range c.orphans {
		scope := c.Tree.Root
		if c.failedPMUCount > 0 {
			// Restart coordination climbs the same hierarchy as
			// migrations: a dead PMU bounds how far the orphan's home
			// span can reach for a target.
			limit := c.reachLimit(o.home.Node)
			if limit == 0 {
				waiting = append(waiting, o)
				continue
			}
			scope = ancestorAt(o.home.Node, limit)
		}
		to := c.pickTarget(item{app: o.app, src: o.home}, scope, nil, ws, false, true)
		if to == nil {
			waiting = append(waiting, o)
			continue
		}
		ws[to.Node.ServerIndex] -= o.app.Mean
		to.Apps.Add(o.app)
		to.setCP(to.CP() + o.app.Mean)
		to.smoother.Bias(o.app.Mean)
		to.migCost += c.Cfg.MigCostWatts // restart work (boot, image fetch)
		m := Migration{
			Tick:  t,
			AppID: o.app.ID,
			From:  o.home.Node.ServerIndex,
			To:    to.Node.ServerIndex,
			Watts: o.app.Mean,
			Bytes: o.app.MigrationBytes(),
			Cause: CauseRestart,
			Local: o.home.Node.Parent == to.Node.Parent,
			Hops:  c.Tree.HopCount(o.home.Node, to.Node),
		}
		c.Stats.Migrations = append(c.Stats.Migrations, m)
		c.Stats.Restarts++
		c.countDown(to.Node)
		c.publishMigration(m)
	}
	c.orphans = waiting
	if len(c.orphans) > 0 {
		c.tryWake(t)
	}
}

// FailPMU crashes the internal (PMU) node with the given tree node ID:
// it stops aggregating reports and issuing budgets, every link touching
// it goes silent, and its subtree rides its budget leases into degraded
// autonomous mode (degraded.go). Servers below keep running — a control
// -plane failure does not power off machines — but migrations never
// cross the dead span. Failing an already-failed PMU is a no-op.
func (c *Controller) FailPMU(nodeID int) {
	n := c.pmuNode(nodeID, "FailPMU")
	if c.failedPMU[nodeID] {
		return
	}
	c.failedPMU[nodeID] = true
	c.failedPMUCount++
	c.recountLiveUpLinks()
	c.Stats.PMUFailures++
	if c.Sink != nil {
		c.publish(telemetry.Event{
			Tick: c.tick, Kind: telemetry.KindFailure,
			Node: nodeID, Level: n.Level, Cause: "pmu-fail",
			Count: c.spanServers(n),
		})
	}
}

// RepairPMU returns a failed PMU to service and resyncs its span: the
// report and budget pipes of every link below it are dropped so they
// re-prime on the next observation (no stale in-flight values survive
// the outage), and every lease in the span is refreshed so degraded
// nodes hold steady — without further decay — until the next supply
// window delivers fresh budgets and clears their degradation. It is a
// no-op for PMUs that are not failed.
func (c *Controller) RepairPMU(nodeID int) {
	n := c.pmuNode(nodeID, "RepairPMU")
	if !c.failedPMU[nodeID] {
		return
	}
	c.failedPMU[nodeID] = false
	c.failedPMUCount--
	c.recountLiveUpLinks()
	// The repaired PMU's aggregate froze at failure time; force it to
	// re-sum at the next synchronous aggregation (ancestors follow via
	// normal dirty propagation if the sum actually changed).
	c.hot.dirty[nodeID] = true
	c.Stats.PMURepairs++
	c.resyncSpan(n)
	if c.Sink != nil {
		c.publish(telemetry.Event{
			Tick: c.tick, Kind: telemetry.KindFailure,
			Node: nodeID, Level: n.Level, Cause: "pmu-repair",
			Count: c.spanServers(n),
		})
	}
}

// pmuNode resolves and validates an internal node ID.
func (c *Controller) pmuNode(nodeID int, op string) *topo.Node {
	if nodeID < 0 || nodeID >= len(c.Tree.Nodes) {
		panic("core: " + op + " node ID out of range")
	}
	n := c.Tree.Nodes[nodeID]
	if n.IsLeaf() {
		panic("core: " + op + " on a server node (use FailServer)")
	}
	return n
}

// spanServers counts the leaf servers beneath n.
func (c *Controller) spanServers(n *topo.Node) int {
	if n.IsLeaf() {
		return 1
	}
	total := 0
	for _, ch := range n.Children {
		total += c.spanServers(ch)
	}
	return total
}

// resyncSpan drops the pipes and refreshes the leases of every node in
// n's subtree, n included.
func (c *Controller) resyncSpan(n *topo.Node) {
	c.pipes[n.ID] = nil
	c.budgetPipes[n.ID] = nil
	if n.IsLeaf() {
		c.Servers[n.ServerIndex].leaseTick = c.tick
		return
	}
	c.pmuLeaseTick[n.ID] = c.tick
	for _, ch := range n.Children {
		c.resyncSpan(ch)
	}
}
