package core

import (
	"willow/internal/telemetry"
	"willow/internal/workload"
)

// Failure injection. The paper assumes servers do not fail (its
// convergence analysis only worries about control-message links); a
// production deployment cannot. FailServer models a crash — not a
// graceful drain: the server goes dark instantly and its applications
// are orphaned. Orphans re-place through the regular migration machinery
// at the start of every demand window, preferring targets near the
// failed server (restart locality mirrors migration locality: the VM's
// disk image lives close by). Capacity pressure from restarts drives the
// existing wake path. RepairServer brings the machine back as an empty,
// awake server that the next allocation folds in.

// orphan is an application awaiting restart after its host failed.
type orphan struct {
	app  *workload.App
	home *Server // the failed host, used for restart locality
}

// FailServer crashes the server with the given index: it deactivates
// immediately, its applications are orphaned for restart, and any
// transfer touching it is cancelled (inbound transfers return to their
// sources; outbound ones become orphans since the source is gone).
// Failing an already-failed or sleeping server is a no-op.
func (c *Controller) FailServer(idx int) {
	if idx < 0 || idx >= len(c.Servers) {
		panic("core: FailServer index out of range")
	}
	s := c.Servers[idx]
	if s.Asleep {
		return
	}
	// Cancel transfers touching the failed machine.
	remaining := c.transfers[:0]
	for _, tr := range c.transfers {
		switch {
		case tr.src == s:
			// The departing app dies with its host; it becomes an orphan
			// below (it is still in s.Apps).
			delete(c.inFlight, tr.app)
			c.releaseReservation(tr)
			c.Stats.AbortedTransfers++
		case tr.dst == s:
			// Inbound transfer: the app never left its source.
			delete(c.inFlight, tr.app)
			c.releaseReservation(tr)
			c.Stats.AbortedTransfers++
		default:
			remaining = append(remaining, tr)
		}
	}
	c.transfers = remaining
	delete(c.pendingSleep, idx)
	delete(c.draining, idx)

	orphaned := 0
	var orphanWatts float64
	for _, a := range s.Apps.Apps {
		c.orphans = append(c.orphans, orphan{app: a, home: s})
		orphaned++
		orphanWatts += a.Mean
	}
	s.Apps.Apps = nil
	s.Asleep = true
	s.failed = true
	s.wakeAt = -1
	s.RawDemand = 0
	s.CP = 0
	s.Consumed = 0
	s.smoother.Reset()
	c.Stats.Failures++
	if c.Sink != nil {
		c.Sink.Publish(telemetry.Event{
			Tick: c.tick, Kind: telemetry.KindFailure,
			Server: idx, Cause: "fail",
			Count: orphaned, Watts: orphanWatts,
		})
	}
}

// RepairServer returns a failed server to service as an empty, awake
// machine. It is a no-op for servers that are not failed.
func (c *Controller) RepairServer(idx int) {
	if idx < 0 || idx >= len(c.Servers) {
		panic("core: RepairServer index out of range")
	}
	s := c.Servers[idx]
	if !s.failed {
		return
	}
	s.failed = false
	s.Asleep = false
	s.smoother.Reset()
	c.Stats.Repairs++
	if c.Sink != nil {
		c.Sink.Publish(telemetry.Event{
			Tick: c.tick, Kind: telemetry.KindFailure,
			Server: idx, Cause: "repair",
		})
	}
}

// Orphans reports how many applications currently await restart.
func (c *Controller) Orphans() int { return len(c.orphans) }

// restartOrphans places orphaned applications into current surpluses,
// preferring targets near the failed home (the same locality-ordered
// escalation as migrations). Placed orphans are recorded as restart
// migrations; the rest wait — accumulating OrphanWattTicks — and exert
// wake pressure through tryWake.
func (c *Controller) restartOrphans(t int) {
	if len(c.orphans) == 0 {
		return
	}
	for _, o := range c.orphans {
		c.Stats.OrphanWattTicks += o.app.Mean
	}
	ws := c.workingSurpluses(c.Cfg.ThermalWindow)
	var waiting []orphan
	for _, o := range c.orphans {
		to := c.pickTarget(item{app: o.app, src: o.home}, c.Tree.Root, nil, ws, false, true)
		if to == nil {
			waiting = append(waiting, o)
			continue
		}
		ws[to.Node.ServerIndex] -= o.app.Mean
		to.Apps.Add(o.app)
		to.CP += o.app.Mean
		to.smoother.Bias(o.app.Mean)
		to.migCost += c.Cfg.MigCostWatts // restart work (boot, image fetch)
		m := Migration{
			Tick:  t,
			AppID: o.app.ID,
			From:  o.home.Node.ServerIndex,
			To:    to.Node.ServerIndex,
			Watts: o.app.Mean,
			Bytes: o.app.MigrationBytes(),
			Cause: CauseRestart,
			Local: o.home.Node.Parent == to.Node.Parent,
			Hops:  c.Tree.HopCount(o.home.Node, to.Node),
		}
		c.Stats.Migrations = append(c.Stats.Migrations, m)
		c.Stats.Restarts++
		c.countDown(to.Node)
		c.publishMigration(m)
	}
	c.orphans = waiting
	if len(c.orphans) > 0 {
		c.tryWake(t)
	}
}
