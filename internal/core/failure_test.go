package core

import (
	"testing"

	"willow/internal/power"
)

// failureScenario: four servers with plenty of supply and headroom.
func failureScenario(t *testing.T, cfg Config) *Controller {
	t.Helper()
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 250, 0, 60, 30),
		serverSpec(50, 250, 0, 20),
		serverSpec(50, 250, 0, 40),
		serverSpec(50, 250, 0, 10),
	})
	return buildController(t, []int{2, 2}, specs, power.Constant(1100), cfg)
}

func TestFailServerOrphansAndRestarts(t *testing.T) {
	c := failureScenario(t, quietCfg())
	c.Run(5)
	c.FailServer(0)
	if c.Orphans() != 2 {
		t.Fatalf("orphans = %d, want 2", c.Orphans())
	}
	if !c.Servers[0].Asleep() || !c.Servers[0].failed {
		t.Fatal("failed server not dark")
	}
	c.Step()
	if c.Orphans() != 0 {
		t.Fatalf("orphans not restarted next window: %d left", c.Orphans())
	}
	if c.Stats.Restarts != 2 {
		t.Errorf("restarts = %d, want 2", c.Stats.Restarts)
	}
	// Conservation: all 5 apps live on the surviving servers.
	apps := 0
	for _, s := range c.Servers {
		apps += s.Apps.Len()
	}
	if apps != 5 {
		t.Errorf("apps = %d, want 5", apps)
	}
	if c.Servers[0].Apps.Len() != 0 {
		t.Error("failed server still hosts apps")
	}
	// Restart migrations carry the right cause.
	restart := 0
	for _, m := range c.Stats.Migrations {
		if m.Cause == CauseRestart {
			restart++
		}
	}
	if restart != 2 {
		t.Errorf("restart-cause migrations = %d, want 2", restart)
	}
}

// TestFailSleepingServer is the regression for the silent no-op bug:
// FailServer used to return early for sleeping servers, leaving them
// eligible for tryWake — a dead machine could be "woken" into service.
func TestFailSleepingServer(t *testing.T) {
	c := failureScenario(t, quietCfg())
	c.Run(2)
	c.Servers[3].setAsleep(true) // empty server parked asleep
	c.FailServer(3)
	if !c.Servers[3].failed {
		t.Fatal("sleeping server not marked failed")
	}
	if c.Stats.Failures != 1 {
		t.Errorf("failures = %d, want 1", c.Stats.Failures)
	}
	if c.Orphans() != 0 {
		t.Errorf("a drained sleeper orphaned %d apps", c.Orphans())
	}
	// Crash a loaded server: the stranded orphans must never wake the
	// dead spare, however long the pressure lasts.
	c.FailServer(0)
	c.Run(4 + c.Cfg.WakeLatency)
	if !c.Servers[3].Asleep() || c.Servers[3].Consumed() != 0 {
		t.Error("dead sleeping server was woken")
	}
	// Repair brings it back awake and usable like any other machine.
	c.RepairServer(3)
	if c.Servers[3].Asleep() || c.Servers[3].failed {
		t.Error("repaired sleeper not back in service")
	}
}

func TestFailServerIdempotentAndBounds(t *testing.T) {
	c := failureScenario(t, quietCfg())
	c.Run(2)
	c.FailServer(1)
	orphans := c.Orphans()
	c.FailServer(1) // no-op: already dark
	if c.Orphans() != orphans || c.Stats.Failures != 1 {
		t.Error("double failure not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range index did not panic")
		}
	}()
	c.FailServer(99)
}

func TestRepairServerRejoins(t *testing.T) {
	cfg := quietCfg()
	c := failureScenario(t, cfg)
	c.Run(3)
	c.FailServer(2)
	c.Run(3)
	c.RepairServer(2)
	if c.Servers[2].Asleep() || c.Servers[2].failed {
		t.Fatal("repaired server not awake")
	}
	c.RepairServer(2) // no-op
	if c.Stats.Repairs != 1 {
		t.Errorf("repairs = %d, want 1", c.Stats.Repairs)
	}
	c.Run(6)
	// The repaired server gets a budget again at the next allocation.
	if c.Servers[2].TP() <= 0 {
		t.Errorf("repaired server budget %v, want positive", c.Servers[2].TP())
	}
}

// TestFailureWakesCapacityWhenNeeded: crash a loaded server while the
// survivors are too full; the sleeping spare must be woken for the
// orphans.
func TestFailureWakesCapacityWhenNeeded(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 250, 0, 150, 40), // big load
		serverSpec(50, 250, 0, 160),     // nearly full
		serverSpec(50, 250, 0, 170),     // nearly full
		serverSpec(50, 250, 0),          // empty spare
	})
	cfg := quietCfg()
	c := buildController(t, []int{2, 2}, specs, power.Constant(1200), cfg)
	c.Run(2)
	c.Servers[3].setAsleep(true) // spare sleeps
	c.FailServer(0)
	c.Run(2 + c.Cfg.WakeLatency + 2)
	if c.Stats.Wakes == 0 {
		t.Error("no wake despite stranded orphans")
	}
	if c.Orphans() != 0 {
		t.Errorf("orphans still stranded: %d", c.Orphans())
	}
	apps := 0
	for _, s := range c.Servers {
		apps += s.Apps.Len()
	}
	if apps != 4 {
		t.Errorf("apps = %d, want 4", apps)
	}
}

// TestFailureCancelsTransfers: crash the destination of an in-flight
// transfer; the app must survive at its source.
func TestFailureCancelsTransfers(t *testing.T) {
	cfg := quietCfg()
	cfg.MigrationLatency = 5
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 250, 150, 60, 60), // deficit: transfer starts
		serverSpec(50, 250, 0, 10),
		serverSpec(50, 250, 0, 10),
	})
	c := buildController(t, []int{3}, specs, power.Constant(700), cfg)
	c.Step()
	if len(c.transfers) == 0 {
		t.Fatal("no transfer in flight")
	}
	dst := c.transfers[0].dst
	c.FailServer(dst.Node.ServerIndex)
	if c.Stats.AbortedTransfers == 0 {
		t.Error("inbound transfer not aborted on destination failure")
	}
	c.Run(8)
	apps := 0
	for _, s := range c.Servers {
		apps += s.Apps.Len()
	}
	if apps != 4 {
		t.Errorf("apps = %d, want 4 (none lost in the crash)", apps)
	}
}
