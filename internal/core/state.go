package core

// Fleet-scale data layout (DESIGN.md §12). The per-tick hot path reads a
// handful of per-server scalars — demand, smoothed demand, budget,
// consumption, sleep state, observed temperature — for every server on
// every tick. At the paper's 18 servers the layout is irrelevant; at the
// ROADMAP's 100k-server north star, chasing a pointer per server per
// field is most of the tick. This file flattens those fields into
// struct-of-arrays slices owned by the controller (one contiguous
// float64 slice per field, indexed by topo server index), leaving the
// Server struct as a thin view: cold state plus an index into the slab.
//
// Three invariants make the layout change invisible to the control
// math:
//
//   - Every write to a hot field goes through a setter on Server, so
//     the slab is the single source of truth and derived caches (the
//     hard-cap cache, the aggregation dirty bits) can never go stale.
//   - All result-affecting floating-point accumulation stays in server
//     order regardless of shard count: parallel phases only ever write
//     per-server slots, and cross-server folds run sequentially.
//   - The incremental aggregator re-sums a dirty PMU's direct children
//     in child order from zero — never applies partial-sum deltas — so
//     its bits match the full recompute exactly (float addition is not
//     associative; resummation sidesteps the question).

import (
	"context"
	"math"

	"willow/internal/parallel"
	"willow/internal/telemetry"
	"willow/internal/topo"
)

// fleetHot is the struct-of-arrays slab holding every per-server field
// the tick loop reads or writes unconditionally. Indexed by
// topo.Node.ServerIndex.
type fleetHot struct {
	rawDemand []float64 // this tick's instantaneous demand (0 asleep)
	cp        []float64 // smoothed demand, Eq. 4
	tp        []float64 // granted budget
	consumed  []float64 // power actually drawn this tick
	dropped   []float64 // demand shed this tick
	tobs      []float64 // observed (control) temperature
	hardCap   []float64 // cached min(Eq. 3 limit at tobs, circuit, peak)
	thermLim  []float64 // cached raw Eq. 3 limit at tobs (pre-min)
	asleep    []bool
	degraded  []bool

	// settled marks servers whose smoother reached an exact fixed point:
	// feeding it the same raw demand again is guaranteed (bitwise) to
	// return the same CP, so the update can be skipped. Cleared by any
	// out-of-band smoother or CP mutation (migrations, resets).
	settled []bool

	// dirty is indexed by tree node ID: a PMU marked dirty must re-sum
	// its direct children at the next synchronous aggregation. Leaf
	// slots are unused.
	dirty []bool

	// pol mirrors Controller.pol for the throttle seam: refreshHardCap
	// is a Server method with no controller reference, so the bound
	// policy rides on the shared slab. nil keeps the built-in Eq. 3
	// inversion.
	pol Policy
}

func newFleetHot(servers, nodes int) *fleetHot {
	f := make([]float64, 8*servers)
	b := make([]bool, 3*servers)
	h := &fleetHot{
		rawDemand: f[0*servers : 1*servers],
		cp:        f[1*servers : 2*servers],
		tp:        f[2*servers : 3*servers],
		consumed:  f[3*servers : 4*servers],
		dropped:   f[4*servers : 5*servers],
		tobs:      f[5*servers : 6*servers],
		hardCap:   f[6*servers : 7*servers],
		thermLim:  f[7*servers : 8*servers],
		asleep:    b[0*servers : 1*servers],
		degraded:  b[1*servers : 2*servers],
		settled:   b[2*servers : 3*servers],
		dirty:     make([]bool, nodes),
	}
	return h
}

// --- Server accessors over the slab -----------------------------------

// RawDemand is this tick's instantaneous total power demand
// (static + dynamic + pending migration cost) while awake, 0 asleep.
func (s *Server) RawDemand() float64 { return s.hot.rawDemand[s.idx] }

// CP is the smoothed power demand (Eq. 4).
func (s *Server) CP() float64 { return s.hot.cp[s.idx] }

// TP is the power budget granted by the last supply allocation.
func (s *Server) TP() float64 { return s.hot.tp[s.idx] }

// Consumed is the power actually drawn this tick:
// min(RawDemand, effective budget).
func (s *Server) Consumed() float64 { return s.hot.consumed[s.idx] }

// Dropped is demand shed this tick because no budget or surplus could
// host it.
func (s *Server) Dropped() float64 { return s.hot.dropped[s.idx] }

// Asleep reports a consolidated (deactivated) server.
func (s *Server) Asleep() bool { return s.hot.asleep[s.idx] }

// TObs is the controller's working temperature: what every Eq. 3
// power-limit computation reads instead of the physical Thermal.T. It is
// the sensor reading filtered through the robust estimator when sensing
// is armed (sensing.go), the raw — possibly lying — reading when a
// sensor is attached without the estimator, and the physical truth
// bit-for-bit in the default fault-free setup.
func (s *Server) TObs() float64 { return s.hot.tobs[s.idx] }

// Degraded reports a server whose budget lease expired: it holds its
// last-known budget, decayed per supply window toward its safe floor
// (see degraded.go). Cleared by the next delivered budget directive.
func (s *Server) Degraded() bool { return s.hot.degraded[s.idx] }

func (s *Server) setRawDemand(v float64) { s.hot.rawDemand[s.idx] = v }
func (s *Server) setTP(v float64)        { s.hot.tp[s.idx] = v }
func (s *Server) setConsumed(v float64)  { s.hot.consumed[s.idx] = v }
func (s *Server) setDropped(v float64)   { s.hot.dropped[s.idx] = v }
func (s *Server) setAsleep(v bool)       { s.hot.asleep[s.idx] = v }
func (s *Server) setDegraded(v bool)     { s.hot.degraded[s.idx] = v }

// setCP writes the server's smoothed demand, marking the parent rack
// dirty when the value actually changed (the incremental aggregation
// trigger) and invalidating the smoother fixed point — every out-of-band
// CP mutation is paired with a smoother Bias/Reset, so a forced CP write
// always means the fixed-point argument no longer holds.
func (s *Server) setCP(v float64) {
	h := s.hot
	h.settled[s.idx] = false
	if h.cp[s.idx] != v {
		h.cp[s.idx] = v
		if p := s.Node.Parent; p != nil {
			h.dirty[p.ID] = true
		}
	}
}

// setTObs writes the observed temperature and refreshes the cached hard
// cap, which is a pure function of TObs and construction-time constants.
func (s *Server) setTObs(v float64) {
	s.hot.tobs[s.idx] = v
	s.refreshHardCap()
}

// refreshHardCap recomputes the cached hard cap from the current TObs.
// The thermal component is the per-server throttle seam: a bound policy
// may replace the Eq. 3 one-step inversion with its own cap (clamped
// non-negative); the built-in path and declining policies compute
// Eq3Limit.
func (s *Server) refreshHardCap() {
	var lim float64
	if p := s.hot.pol; p != nil {
		if v, ok := p.ThermalCap(s, s.hot.tobs[s.idx]); ok {
			if v < 0 || v != v { // negative or NaN
				v = 0
			}
			lim = v
		} else {
			lim = s.Eq3Limit(s.hot.tobs[s.idx])
		}
	} else {
		lim = s.Eq3Limit(s.hot.tobs[s.idx])
	}
	s.hot.thermLim[s.idx] = lim
	if s.CircuitLimit > 0 && s.CircuitLimit < lim {
		lim = s.CircuitLimit
	}
	if s.Power.Peak < lim {
		lim = s.Power.Peak
	}
	s.hot.hardCap[s.idx] = lim
}

// Eq3Limit returns the built-in Eq. 3 thermal power limit over the
// configured adjustment window at an arbitrary observed temperature —
// the safety envelope alternative throttle policies clamp to. The
// arithmetic replicates thermal.Model.PowerLimit with the decay factor
// e^(−c2·Δs) precomputed at construction — math.Exp is a pure function,
// so the cached factor is bit-identical to the inline call.
func (s *Server) Eq3Limit(tobs float64) float64 {
	m := s.Thermal.Model
	if s.capDen <= 0 {
		return math.Inf(1)
	}
	lim := m.C2 * (m.Limit - m.Ambient - (tobs-m.Ambient)*s.capDecay) / s.capDen
	if lim < 0 {
		lim = 0
	}
	return lim
}

// Index returns the server's fleet index (= Node.ServerIndex) — how
// policies address their per-server state slots.
func (s *Server) Index() int { return s.idx }

// --- Incremental supply/demand aggregation ----------------------------

// markAllDirty forces the next synchronous aggregation to re-sum every
// PMU — used at construction and when the control plane switches from
// asynchronous back to synchronous reporting (the PMU CPs then hold
// pipe-derived values the dirty bits know nothing about).
func (c *Controller) markAllDirty() {
	for _, n := range c.Tree.Nodes {
		if !n.IsLeaf() {
			c.hot.dirty[n.ID] = true
		}
	}
}

// aggregate recomputes PMU subtree demands bottom-up, visiting only
// PMUs whose direct children changed since the last pass (dirty-subtree
// propagation). A dirty PMU re-sums all its children in child order from
// zero, so the bits match aggregateFull exactly; the full recompute is
// kept as the testing oracle behind Config.FullAggregation. A dead PMU
// is skipped and stays dirty, freezing its CP until repair — the same
// "act on the previous value" semantics as the full pass.
func (c *Controller) aggregate() {
	if c.Cfg.FullAggregation {
		c.aggregateFull()
		return
	}
	dirty := c.hot.dirty
	for level := 1; level <= c.Tree.Height; level++ {
		for _, n := range c.levels[level] {
			if !dirty[n.ID] || c.failedPMU[n.ID] {
				continue
			}
			dirty[n.ID] = false
			sum := 0.0
			for _, child := range n.Children {
				sum += c.demandOf(child)
			}
			if sum != c.pmuCP[n.ID] {
				c.pmuCP[n.ID] = sum
				if n.Parent != nil {
					dirty[n.Parent.ID] = true
				}
			}
		}
	}
}

// aggregateFull is the naive oracle: every live PMU re-sums its children
// every tick, exactly the paper's per-Δ_D full-tree aggregation.
func (c *Controller) aggregateFull() {
	dirty := c.hot.dirty
	for level := 1; level <= c.Tree.Height; level++ {
		for _, n := range c.levels[level] {
			if c.failedPMU[n.ID] {
				continue
			}
			dirty[n.ID] = false
			sum := 0.0
			for _, child := range n.Children {
				sum += c.demandOf(child)
			}
			c.pmuCP[n.ID] = sum
		}
	}
}

// --- Link-message accounting ------------------------------------------

// The paper's Property 3 bounds control traffic at two messages per link
// per Δ_D. The seed tracked it with two per-tick maps keyed by child
// node ID; at fleet scale the maps were most of the aggregation cost, so
// they become tick-stamped arrays plus counters. In synchronous mode the
// upward report count is purely structural — every live parent hears
// every live child, every tick — so it is a cached integer recounted
// only when a PMU fails or repairs.

// countUp records an upward report on the link between n and its parent
// (asynchronous reporting path; the synchronous path counts reports
// analytically via liveUpLinks).
func (c *Controller) countUp(n *topo.Node) {
	if n.Parent == nil {
		return
	}
	if c.upStamp[n.ID] != c.stamp {
		c.upStamp[n.ID] = c.stamp
		c.tickUp++
		if c.downStamp[n.ID] == c.stamp {
			c.bothDir = true
		}
	}
}

// countDown records a downward directive on the link between n and its
// parent. Directives within a tick batch into a single message.
func (c *Controller) countDown(n *topo.Node) {
	if n.Parent == nil {
		return
	}
	if c.downStamp[n.ID] != c.stamp {
		c.downStamp[n.ID] = c.stamp
		c.tickDown++
		if c.upStamp[n.ID] == c.stamp || (!c.asyncEnabled() && c.upLinkLive(n)) {
			c.bothDir = true
		}
	}
}

// upLinkLive reports whether the link from n to its parent carries an
// upward report in synchronous mode this tick: the parent must be alive
// and the child must be a server or a live PMU.
func (c *Controller) upLinkLive(n *topo.Node) bool {
	return !c.failedPMU[n.Parent.ID] && (n.IsLeaf() || !c.failedPMU[n.ID])
}

// recountLiveUpLinks recaches the synchronous-mode upward report count.
// Called at construction and on every PMU failure/repair.
func (c *Controller) recountLiveUpLinks() {
	count := 0
	for level := 1; level <= c.Tree.Height; level++ {
		for _, n := range c.levels[level] {
			if c.failedPMU[n.ID] {
				continue
			}
			for _, child := range n.Children {
				if child.IsLeaf() || !c.failedPMU[child.ID] {
					count++
				}
			}
		}
	}
	c.liveUpLinks = count
}

// --- Telemetry batching -----------------------------------------------

// publish delivers one telemetry event. During a Step events buffer and
// flush at the step boundary in publication order (so emission amortizes
// across servers); outside a Step — public mutators like FailServer
// called between ticks — they pass straight through, preserving the
// seed's ordering relative to the tick body.
func (c *Controller) publish(e telemetry.Event) {
	if c.Sink == nil {
		return
	}
	if c.inStep {
		c.eventBuf = append(c.eventBuf, e)
		return
	}
	c.Sink.Publish(e)
}

// flushEvents hands the step's buffered events to the sink as one batch.
func (c *Controller) flushEvents() {
	if len(c.eventBuf) == 0 {
		return
	}
	telemetry.PublishAll(c.Sink, c.eventBuf)
	c.eventBuf = c.eventBuf[:0]
}

// --- Sharded tick execution -------------------------------------------

// shardRange is a contiguous, rack-aligned span of server indices.
type shardRange struct{ lo, hi int } // [lo, hi)

// planShards splits the fleet into up to shards contiguous server
// ranges aligned to rack (level-1 subtree) boundaries. Rack alignment
// keeps every writer of a rack's dirty bit inside one shard, so the
// parallel phase needs no synchronization; contiguity means replaying
// shards in shard order during the sequential merge phase is exactly
// server order, which is what makes results byte-identical for any
// shard count.
func planShards(tree *topo.Tree, shards, servers int) []shardRange {
	if shards <= 1 || servers == 0 {
		return []shardRange{{0, servers}}
	}
	// Rack extents: children of level-1 nodes are contiguous server
	// spans under the BFS numbering.
	var rackEnds []int
	for _, n := range tree.Nodes {
		if n.Level != 1 {
			continue
		}
		end := 0
		for _, ch := range n.Children {
			if ch.ServerIndex+1 > end {
				end = ch.ServerIndex + 1
			}
		}
		rackEnds = append(rackEnds, end)
	}
	if len(rackEnds) == 0 {
		return []shardRange{{0, servers}}
	}
	if shards > len(rackEnds) {
		shards = len(rackEnds)
	}
	var out []shardRange
	lo := 0
	racksLeft, shardsLeft := len(rackEnds), shards
	i := 0
	for shardsLeft > 0 {
		take := racksLeft / shardsLeft
		if racksLeft%shardsLeft != 0 {
			take++
		}
		i += take
		hi := rackEnds[i-1]
		out = append(out, shardRange{lo, hi})
		lo = hi
		racksLeft -= take
		shardsLeft--
	}
	return out
}

// forEachShard runs fn over every shard range, in parallel on a bounded
// worker pool when more than one shard is planned, inline otherwise. fn
// must only touch per-server state within its range (plus per-server
// slots of shared slabs) — the race detector enforces this in the
// shard-invariance tests.
func (c *Controller) forEachShard(fn func(lo, hi int)) {
	if len(c.shardPlan) == 1 {
		fn(c.shardPlan[0].lo, c.shardPlan[0].hi)
		return
	}
	_ = parallel.ForEach(context.Background(), len(c.shardPlan), len(c.shardPlan), func(_ context.Context, i int) error {
		fn(c.shardPlan[i].lo, c.shardPlan[i].hi)
		return nil
	})
}
