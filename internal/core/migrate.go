package core

import (
	"slices"

	"willow/internal/topo"
	"willow/internal/workload"
)

// item is one migratable unit of demand: an application peeled off a
// deficit server.
type item struct {
	app *workload.App
	src *Server
}

// assignment is a planned migration.
type assignment struct {
	it item
	to *Server
}

// migrateDemand is the per-tick demand-side adaptation of Section IV-E.
//
// Servers whose smoothed demand exceeds their effective budget by more
// than the P_min margin peel applications (largest first) until the
// remainder would leave at least P_min of surplus. Peeled items are
// placed bottom-up: sibling surpluses first (local migrations), then
// progressively wider subtrees (non-local), never into squeezed
// ("reduced") subtrees, and only onto servers that retain the P_min
// margin after receiving. Demand that fits nowhere triggers, in order:
// draining the lightest server so it can sleep (freeing its static
// power), waking a sleeping server, and finally shedding (dropping) the
// excess.
func (c *Controller) migrateDemand(t int) {
	window := c.Cfg.ThermalWindow

	var items []item
	for _, s := range c.Servers {
		def := c.viewDeficit(s, window) - c.outboundFor(s)
		// Migration-trigger seam (policy.go): the built-in rule peels
		// when the deficit exceeds P_min, targeting deficit + P_min.
		target := c.peelTarget(s, def)
		if target <= 0 {
			continue
		}
		var peeled float64
		for _, a := range s.Apps.SortedByMeanDesc() {
			if peeled >= target {
				break
			}
			if c.inFlight[a.ID] {
				continue // already on its way somewhere
			}
			items = append(items, item{app: a, src: s})
			peeled += a.Mean
		}
	}
	if len(items) == 0 {
		return
	}

	ws := c.workingSurpluses(window)
	plan, unplaced := c.planPlacement(items, ws, false, false)
	c.applyAssignments(plan, CauseDemand, t)

	if len(unplaced) > 0 {
		unplaced = c.drainToSleep(unplaced, t)
	}
	if len(unplaced) > 0 {
		c.tryWake(t)
	}
	// Anything still unplaced stays on its source and is shed when the
	// server settles against its budget (Section IV-E: excess demand is
	// simply dropped).
}

// workingSurpluses returns, per eligible receiving server, the watts it
// can absorb while keeping the P_min margin.
func (c *Controller) workingSurpluses(window float64) map[int]float64 {
	ws := make(map[int]float64, len(c.Servers))
	for _, s := range c.Servers {
		if !c.receiverEligible(s) {
			continue
		}
		v := c.viewSurplus(s, window) - c.Cfg.PMin - c.reservedFor(s)
		if v > tolerance {
			ws[s.Node.ServerIndex] = v
		}
	}
	return ws
}

// receiverEligible reports whether a server may be a migration target at
// all: awake, not being drained, not squeezed by the last supply event
// (the unidirectional rule), and not stranded under a dead PMU (no
// coordinator can direct workload into such a span).
func (c *Controller) receiverEligible(s *Server) bool {
	if c.failedPMUCount > 0 && c.underDeadPMU(s.Node) {
		return false
	}
	return !s.Asleep() && !c.draining[s.Node.ServerIndex] && !s.reduced
}

// planPlacement assigns items to servers level by level: every item first
// tries the surpluses under its level-1 parent (local), and items that
// remain escalate one level at a time. Within a level, candidate targets
// are ordered by ascending working surplus — the finite-bin equivalent of
// FFDLR's repack step ("we try to run every server at full utilization"),
// so large surpluses stay empty and can be deactivated later. The ws map
// is mutated as items are placed.
// When ignoreReduced is true the unidirectional rule is bypassed — used
// only by the drain-to-sleep emergency path, where every subtree looks
// squeezed by definition (the whole facility just lost supply).
//
// Ping-pong control (Section IV-E's second pitfall) is enforced
// structurally: an application is never sent back to a node it left
// within the last PingPongWindow (Δf) ticks, so the paper's observed
// "no ping-pong migrations for at least Δf" holds by construction.
// preferEfficient makes receiver choice efficiency-aware: among fitting
// candidates, servers with the lowest idle-power-per-capacity host the
// load, so consolidation in a heterogeneous fleet packs onto wimpy nodes
// and lets power-hungry-at-idle servers sleep. For homogeneous fleets the
// preference is a no-op and the FFDLR-repack best-fit rule decides.
func (c *Controller) planPlacement(items []item, ws map[int]float64, ignoreReduced, preferEfficient bool) ([]assignment, []item) {
	slices.SortStableFunc(items, func(a, b item) int {
		switch {
		case a.app.Mean != b.app.Mean:
			if a.app.Mean > b.app.Mean {
				return -1
			}
			return 1
		case a.app.ID != b.app.ID:
			if a.app.ID < b.app.ID {
				return -1
			}
			return 1
		default:
			return 0
		}
	})

	maxLevel := c.Tree.Height
	if c.Cfg.LocalOnly {
		maxLevel = 1
	}
	var plan []assignment
	pending := items
	for level := 1; level <= maxLevel && len(pending) > 0; level++ {
		var next []item
		for _, it := range pending {
			if c.failedPMUCount > 0 && level > c.reachLimit(it.src.Node) {
				// Escalation is capped at the highest coordinator the
				// source can still reach through alive PMUs.
				next = append(next, it)
				continue
			}
			scope := ancestorAt(it.src.Node, level)
			exclude := ancestorAt(it.src.Node, level-1)
			to := c.pickTarget(it, scope, exclude, ws, ignoreReduced, preferEfficient)
			if to == nil {
				next = append(next, it)
				continue
			}
			ws[to.Node.ServerIndex] -= it.app.Mean
			plan = append(plan, assignment{it: it, to: to})
		}
		pending = next
	}
	return plan, pending
}

// ancestorAt returns n's ancestor at the given level (n itself at its own
// level).
func ancestorAt(n *topo.Node, level int) *topo.Node {
	for n != nil && n.Level < level {
		n = n.Parent
	}
	return n
}

// pickTarget selects the receiving server for it under scope, skipping
// the already-searched exclude subtree and any squeezed subtree between
// target and scope. Among fitting candidates it picks the smallest
// adequate surplus (ties by server index, for determinism).
func (c *Controller) pickTarget(it item, scope, exclude *topo.Node, ws map[int]float64, ignoreReduced, preferEfficient bool) *Server {
	var best *Server
	bestWS := 0.0
	bestEff := 0.0
	efficiency := func(s *Server) float64 {
		dyn := s.Power.DynamicRange()
		if dyn <= 0 {
			return 1e18
		}
		return s.Power.Static / dyn
	}
	var walk func(n *topo.Node)
	walk = func(n *topo.Node) {
		if n == exclude {
			return
		}
		if !n.IsLeaf() && c.failedPMU[n.ID] {
			// No coordinator: nothing can be placed into a dead span.
			return
		}
		if !ignoreReduced && !n.IsLeaf() && n != scope && c.pmuReduced[n.ID] {
			// Unidirectional rule: no migrations into a squeezed subtree.
			return
		}
		if n.IsLeaf() {
			s := c.Servers[n.ServerIndex]
			if s == it.src {
				return
			}
			if rec, ok := c.lastLeft[it.app.ID]; ok &&
				rec.from == n.ServerIndex && c.tick-rec.tick <= c.Cfg.PingPongWindow {
				return // would ping-pong within Δf
			}
			v, ok := ws[n.ServerIndex]
			if !ok || v+tolerance < it.app.Mean {
				return
			}
			better := false
			switch {
			case best == nil:
				better = true
			case preferEfficient && efficiency(s) != bestEff:
				better = efficiency(s) < bestEff
			case v != bestWS:
				better = v < bestWS
			default:
				better = n.ServerIndex < best.Node.ServerIndex
			}
			if better {
				best, bestWS, bestEff = s, v, efficiency(s)
			}
			return
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(scope)
	return best
}

// applyAssignments executes planned migrations: moves the applications,
// shifts smoothed demand, charges migration cost to both endpoints,
// performs ping-pong accounting, and notifies the observer.
func (c *Controller) applyAssignments(plan []assignment, cause Cause, t int) {
	for _, a := range plan {
		src, dst := a.it.src, a.to
		app := a.it.app
		if src.Apps.ByID(app.ID) == nil {
			continue // already gone (defensive; plans are built per tick)
		}
		if c.Cfg.MigrationLatency > 0 {
			// Non-instantaneous transfer: the decision is made (and
			// accounted) now; the application lands later.
			c.startTransfer(app.ID, src, dst, t)
		} else {
			src.Apps.Remove(app.ID)
			dst.Apps.Add(app)
			// Demand follows the application immediately.
			cp := src.CP() - app.Mean
			if cp < 0 {
				cp = 0
			}
			src.setCP(cp)
			dst.setCP(dst.CP() + app.Mean)
			src.smoother.Bias(-app.Mean)
			dst.smoother.Bias(app.Mean)
		}

		// Migration cost lands on next tick's demand at both endpoints.
		src.migCost += c.Cfg.MigCostWatts
		dst.migCost += c.Cfg.MigCostWatts

		from := src.Node.ServerIndex
		to := dst.Node.ServerIndex
		if rec, ok := c.lastLeft[app.ID]; ok && rec.from == to && t-rec.tick <= c.Cfg.PingPongWindow {
			c.Stats.PingPongs++
		}
		c.lastLeft[app.ID] = leftRecord{from: from, tick: t}

		m := Migration{
			Tick:  t,
			AppID: app.ID,
			From:  from,
			To:    to,
			Watts: app.Mean,
			Bytes: app.MigrationBytes(),
			Cause: cause,
			Local: topo.IsLocal(src.Node, dst.Node),
			Hops:  c.Tree.HopCount(src.Node, dst.Node),
		}
		c.Stats.Migrations = append(c.Stats.Migrations, m)
		switch cause {
		case CauseDemand:
			c.Stats.DemandMigrations++
		case CauseConsolidation:
			c.Stats.ConsolidationMigrations++
		}
		if m.Local {
			c.Stats.LocalMigrations++
		}
		// The migration directive reaches both endpoints over their tree
		// links, batched with any budget update issued this window.
		c.countDown(src.Node)
		c.countDown(dst.Node)
		c.publishMigration(m)
	}
}

// drainToSleep handles demand that fits nowhere because the facility as a
// whole is short on budget: as long as the root budget cannot cover the
// awake servers' static floors plus the total dynamic demand, it drains
// the lightest awake server into the others' *physical* headroom and puts
// it to sleep, shedding its static draw. Several servers may sleep in one
// pass (a deep overnight deficit can need many). Budgets are re-derived
// immediately afterwards and the unplaced items retried. It returns the
// items that remain unplaced.
func (c *Controller) drainToSleep(unplaced []item, t int) []item {
	rootTP := c.pmuTP[c.Tree.Root.ID]
	drained := map[*Server]bool{}
	for {
		awake := c.awakeServers()
		if len(awake) <= 1 {
			break
		}
		var floors, dynamic float64
		var victim *Server
		for _, s := range awake {
			if !c.pendingSleep[s.Node.ServerIndex] {
				// Pending sleeps free their static draw as soon as their
				// transfers land; count the projected floors.
				floors += s.Power.Static
			}
			dynamic += c.viewDynamic(s)
			if c.draining[s.Node.ServerIndex] || c.transferTouches(s) {
				continue
			}
			if c.failedPMUCount > 0 && c.underDeadPMU(s.Node) {
				continue // cannot coordinate a drain across a dead span
			}
			if victim == nil || c.viewDynamic(s) < c.viewDynamic(victim) {
				victim = s
			}
		}
		if floors+dynamic <= rootTP+tolerance {
			// The budget covers everything once re-derived; the unplaced
			// items stem from caps or margins, which sleeping cannot fix.
			break
		}
		if victim == nil {
			break
		}

		// Place the victim's applications into the others' physical
		// headroom (hard cap minus current demand): budgets are about to
		// be re-derived, so budget surpluses are not the constraint here.
		ws := make(map[int]float64, len(awake))
		for _, s := range awake {
			if s == victim || c.draining[s.Node.ServerIndex] {
				continue
			}
			if c.failedPMUCount > 0 && c.underDeadPMU(s.Node) {
				continue
			}
			room := s.HardCap(c.Cfg.ThermalWindow) - c.viewCP(s) - c.Cfg.PMin - c.reservedFor(s)
			if room > tolerance {
				ws[s.Node.ServerIndex] = room
			}
		}
		items := make([]item, 0, victim.Apps.Len())
		for _, a := range victim.Apps.Apps {
			items = append(items, item{app: a, src: victim})
		}
		c.draining[victim.Node.ServerIndex] = true
		plan, rest := c.planPlacement(items, ws, true, false)
		if len(rest) > 0 {
			// Cannot fully drain the lightest server: stop trying.
			delete(c.draining, victim.Node.ServerIndex)
			break
		}
		c.applyAssignments(plan, CauseDemand, t)
		delete(c.draining, victim.Node.ServerIndex)
		c.sleepOrDefer(victim)
		drained[victim] = true
	}
	if len(drained) == 0 {
		return unplaced
	}
	c.allocateSupply(t) // re-derive budgets with the freed static power

	// The original unplaced items may now fit: retry against fresh
	// budget surpluses.
	ws := c.workingSurpluses(c.Cfg.ThermalWindow)
	var still []item
	for _, it := range unplaced {
		if drained[it.src] {
			continue // its demand moved with the drain
		}
		still = append(still, it)
	}
	plan, rest := c.planPlacement(still, ws, false, false)
	c.applyAssignments(plan, CauseDemand, t)
	return rest
}

// tryWake schedules the most capable sleeping server to wake when demand
// cannot be placed and the root budget has headroom for its static draw.
func (c *Controller) tryWake(t int) {
	rootTP := c.pmuTP[c.Tree.Root.ID]
	rootCP := c.pmuCP[c.Tree.Root.ID]
	var pick *Server
	for _, s := range c.Servers {
		if !s.Asleep() || s.failed {
			continue
		}
		if c.failedPMUCount > 0 && c.underDeadPMU(s.Node) {
			continue // no coordinator to direct demand its way once awake
		}
		if s.wakeAt >= 0 {
			return // a wake is already in flight; avoid thundering herds
		}
		if rootTP-rootCP < s.Power.Static+c.Cfg.PMin {
			continue // no budget headroom to even idle it
		}
		if pick == nil || s.Power.Peak > pick.Power.Peak {
			pick = s
		}
	}
	if pick != nil {
		pick.wakeAt = t + c.Cfg.WakeLatency
	}
}

// awakeServers returns the servers currently on.
func (c *Controller) awakeServers() []*Server {
	out := make([]*Server, 0, len(c.Servers))
	for _, s := range c.Servers {
		if !s.Asleep() {
			out = append(out, s)
		}
	}
	return out
}
