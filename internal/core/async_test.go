package core

import (
	"math"
	"testing"

	"willow/internal/power"
)

func TestReportPipeZeroLatency(t *testing.T) {
	p := &reportPipe{}
	if got := p.push(5, false); got != 5 {
		t.Errorf("zero-latency pipe delivered %v, want 5", got)
	}
	if got := p.push(7, false); got != 7 {
		t.Errorf("zero-latency pipe delivered %v, want 7", got)
	}
}

func TestReportPipeDelays(t *testing.T) {
	p := &reportPipe{buf: make([]float64, 2)}
	// First push primes the pipe: value visible immediately.
	if got := p.push(1, false); got != 1 {
		t.Errorf("primed pipe delivered %v, want 1", got)
	}
	// Subsequent pushes surface two ticks later.
	if got := p.push(2, false); got != 1 {
		t.Errorf("t1 delivered %v, want 1 (priming value)", got)
	}
	if got := p.push(3, false); got != 1 {
		t.Errorf("t2 delivered %v, want 1", got)
	}
	if got := p.push(4, false); got != 2 {
		t.Errorf("t3 delivered %v, want 2 (pushed at t1)", got)
	}
	if got := p.push(5, false); got != 3 {
		t.Errorf("t4 delivered %v, want 3", got)
	}
}

func TestReportPipeLossRepeatsLast(t *testing.T) {
	p := &reportPipe{buf: make([]float64, 1)}
	p.push(10, false)
	p.push(20, false)
	// A lost report repeats the previous pushed value (20), not the new
	// one (99).
	p.push(99, true)
	if got := p.push(0, false); got != 20 {
		t.Errorf("after loss, delayed delivery = %v, want repeated 20", got)
	}
}

func TestConfigRejectsBadAsyncKnobs(t *testing.T) {
	if _, err := (Config{ReportLatency: -1}).withDefaults(); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := (Config{ReportLoss: 1.0}).withDefaults(); err == nil {
		t.Error("loss of 1.0 accepted")
	}
}

// TestSynchronousUnchangedByAsyncCode: with zero latency and loss the
// controller must behave exactly as before the async machinery existed.
func TestSynchronousUnchangedByAsyncCode(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 150, 60, 60),
		serverSpec(50, 200, 0, 10),
		serverSpec(50, 200, 0, 10),
	})
	c := buildController(t, []int{3}, specs, power.Constant(550), quietCfg())
	if c.asyncEnabled() {
		t.Fatal("async enabled with zero knobs")
	}
	c.Run(20)
	if got := c.Stats.DemandMigrations; got != 1 {
		t.Errorf("demand migrations = %d, want 1 (the synchronous scenario)", got)
	}
}

// TestStaleViewDelaysReaction: with report latency, the controller reacts
// to a demand *step* only after the report pipe delivers it. (A deficit
// present from tick 0 is seen instantly because the first report primes
// the pipe.)
func TestStaleViewDelaysReaction(t *testing.T) {
	run := func(latency int) int {
		specs := uniqueIDs([]ServerSpec{
			serverSpec(50, 200, 150, 40, 40), // comfortable at first
			serverSpec(50, 200, 0, 10),
			serverSpec(50, 200, 0, 10),
		})
		cfg := quietCfg()
		cfg.ReportLatency = latency
		c := buildController(t, []int{3}, specs, power.Constant(550), cfg)
		c.Run(3) // prime pipes with the calm demand
		// Demand step: server 0 now wants 170 W against its 150 W cap.
		c.Servers[0].Apps.Apps[0].Mean = 80
		for tick := 3; tick < 40; tick++ {
			c.Step()
			if len(c.Stats.Migrations) > 0 {
				return c.Stats.Migrations[0].Tick
			}
		}
		return -1
	}
	sync := run(0)
	delayed := run(4)
	if sync != 3 {
		t.Fatalf("synchronous reaction at tick %d, want 3 (the step tick)", sync)
	}
	if delayed != sync+4 {
		t.Errorf("delayed reaction at tick %d, want %d (step + latency)", delayed, sync+4)
	}
}

// TestViewCPTracksPipe: the parent's view lags the server's true demand.
func TestViewCPTracksPipe(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 0, 30),
		serverSpec(50, 200, 0, 30),
	})
	cfg := quietCfg()
	cfg.ReportLatency = 3
	c := buildController(t, []int{2}, specs, power.Constant(500), cfg)
	c.Step()
	s := c.Servers[0]
	// Priming: view equals truth initially.
	if got := c.viewCP(s); math.Abs(got-s.CP()) > 1e-9 {
		t.Fatalf("primed view %v != CP %v", got, s.CP())
	}
	// Change true demand: the view must hold the old value for a while.
	s.Apps.Apps[0].Mean = 100
	old := s.CP()
	c.Step()
	if s.CP() == old {
		t.Fatal("true CP did not move")
	}
	if got := c.viewCP(s); math.Abs(got-old) > 1e-9 {
		t.Errorf("view %v moved immediately, want stale %v", got, old)
	}
	// After the latency elapses the view catches up.
	c.Run(4)
	if got := c.viewCP(s); math.Abs(got-s.CP()) > 1e-9 {
		t.Errorf("view %v never caught up to CP %v", got, s.CP())
	}
}

// TestAsyncChurnsMoreThanSync: staleness comparable to Δ_D degrades
// decisions — more migrations and/or more shed demand on the same noisy
// workload, which is the §V-A1 instability the Δ_D ≥ 10·h·α rule avoids.
func TestAsyncChurnsMoreThanSync(t *testing.T) {
	run := func(latency int) (int, float64) {
		specs := uniqueIDs([]ServerSpec{
			serverSpec(50, 200, 120, 60, 30),
			serverSpec(50, 200, 0, 20),
			serverSpec(50, 200, 0, 40),
			serverSpec(50, 200, 0, 10),
		})
		for _, sp := range specs {
			for _, a := range sp.Apps {
				a.NoiseLambda = 15
			}
		}
		cfg := quietCfg()
		cfg.Alpha = 0.3
		cfg.ReportLatency = latency
		c := buildController(t, []int{2, 2}, specs, power.Trace{420, 380, 430, 370, 410}, cfg)
		c.Run(150)
		return len(c.Stats.Migrations), c.Stats.DroppedWattTicks
	}
	syncMigs, syncDrop := run(0)
	asyncMigs, asyncDrop := run(8)
	if asyncMigs <= syncMigs && asyncDrop <= syncDrop+1 {
		t.Errorf("staleness showed no degradation: sync (%d migs, %.0f dropped) vs async (%d, %.0f)",
			syncMigs, syncDrop, asyncMigs, asyncDrop)
	}
}

// TestReportLossDeterministic: loss draws come from the controller's
// seeded source, so runs stay reproducible.
func TestReportLossDeterministic(t *testing.T) {
	run := func() float64 {
		specs := uniqueIDs([]ServerSpec{
			serverSpec(50, 200, 120, 60, 30),
			serverSpec(50, 200, 0, 20),
		})
		for _, sp := range specs {
			for _, a := range sp.Apps {
				a.NoiseLambda = 15
			}
		}
		cfg := quietCfg()
		cfg.ReportLoss = 0.4
		cfg.ReportLatency = 1
		c := buildController(t, []int{2}, specs, power.Constant(350), cfg)
		var energy float64
		for i := 0; i < 80; i++ {
			c.Step()
			energy += c.TotalConsumed()
		}
		return energy
	}
	if a, b := run(), run(); a != b {
		t.Errorf("lossy runs diverged: %v vs %v", a, b)
	}
}
