package core

import "sort"

// Non-instantaneous VM migration. The paper's testbed performs real
// VMware migrations, whose transfer time is far from zero; the
// simulation captures that cost only as a temporary power charge. With
// Config.MigrationLatency > 0 a migration becomes a *transfer*: the
// decision is made now (and recorded now — Fig. 16 counts decisions),
// but the application keeps running — and demanding power — at the
// source until the transfer completes. Three consistency rules keep the
// control loop sound while transfers are in flight:
//
//   - an in-flight application cannot be re-planned (no mid-air rerouting);
//   - the destination's surplus is *reserved* for the inbound demand, so
//     interim decisions cannot overbook it;
//   - neither endpoint of an in-flight transfer may be put to sleep.
//
// A transfer whose destination nonetheless became unavailable is
// cancelled: the application simply stays where it is (counted in
// Stats.AbortedTransfers).

// transfer is one in-flight migration.
type transfer struct {
	app      int // application ID
	src, dst *Server
	arriveAt int
	watts    float64 // demand reserved at the destination
}

// startTransfer begins moving app from src to dst, arriving after the
// configured latency.
func (c *Controller) startTransfer(appID int, src, dst *Server, t int) {
	watts := src.Apps.ByID(appID).Mean
	c.transfers = append(c.transfers, transfer{
		app: appID, src: src, dst: dst,
		arriveAt: t + c.Cfg.MigrationLatency,
		watts:    watts,
	})
	c.inFlight[appID] = true
	c.reserved[dst.Node.ServerIndex] += watts
}

// completeTransfers lands every transfer due at or before tick t, then
// settles deferred sleeps whose outbound transfers have all departed.
func (c *Controller) completeTransfers(t int) {
	if len(c.transfers) == 0 && len(c.pendingSleep) == 0 {
		return
	}
	remaining := c.transfers[:0]
	for _, tr := range c.transfers {
		if tr.arriveAt > t {
			remaining = append(remaining, tr)
			continue
		}
		app := tr.src.Apps.ByID(tr.app)
		delete(c.inFlight, tr.app)
		if app == nil {
			// The source lost the app some other way (defensive).
			c.releaseReservation(tr)
			continue
		}
		c.releaseReservation(tr)
		if tr.dst.Asleep() {
			// Destination vanished mid-transfer: cancel, the app stays.
			c.Stats.AbortedTransfers++
			continue
		}
		tr.src.Apps.Remove(app.ID)
		tr.dst.Apps.Add(app)
		cp := tr.src.CP() - app.Mean
		if cp < 0 {
			cp = 0
		}
		tr.src.setCP(cp)
		tr.dst.setCP(tr.dst.CP() + app.Mean)
		tr.src.smoother.Bias(-app.Mean)
		tr.dst.smoother.Bias(app.Mean)
	}
	c.transfers = remaining

	// Deferred sleeps: a drained server deactivates once everything has
	// actually left. An aborted transfer returned an app, so the server
	// stays up and resumes normal life.
	// Settle in ascending server order: pendingSleep is a map, and map
	// iteration order would otherwise leak into the event stream when two
	// drained servers settle on the same tick — breaking the package's
	// byte-identical determinism contract.
	due := make([]int, 0, len(c.pendingSleep))
	for idx := range c.pendingSleep {
		due = append(due, idx)
	}
	sort.Ints(due)
	slept := false
	for _, idx := range due {
		s := c.Servers[idx]
		if c.outboundFor(s) > 0 {
			continue // still draining
		}
		delete(c.pendingSleep, idx)
		delete(c.draining, idx)
		if s.Apps.Len() > 0 {
			continue // an abort brought something back: stay awake
		}
		s.setAsleep(true)
		s.setRawDemand(0)
		s.setCP(0)
		s.smoother.Reset()
		c.publishSleep(s)
		slept = true
	}
	if slept {
		c.allocateSupply(t) // the freed static floors re-derive budgets
	}
}

// sleepOrDefer deactivates a fully drained server, or — when its apps
// are still in flight because migrations take time — defers the
// deactivation until they land. It reports whether the server slept
// immediately.
func (c *Controller) sleepOrDefer(victim *Server) bool {
	if c.outboundFor(victim) > 0 {
		idx := victim.Node.ServerIndex
		c.pendingSleep[idx] = true
		c.draining[idx] = true // keep refusing inbound work
		return false
	}
	victim.setAsleep(true)
	victim.setRawDemand(0)
	victim.setCP(0)
	victim.smoother.Reset()
	c.publishSleep(victim)
	return true
}

// releaseReservation returns the destination's reserved headroom.
func (c *Controller) releaseReservation(tr transfer) {
	idx := tr.dst.Node.ServerIndex
	c.reserved[idx] -= tr.watts
	if c.reserved[idx] < tolerance {
		delete(c.reserved, idx)
	}
}

// reservedFor returns the watts already promised to inbound transfers of
// the given server.
func (c *Controller) reservedFor(s *Server) float64 {
	return c.reserved[s.Node.ServerIndex]
}

// outboundFor returns the watts already departing the given server on
// in-flight transfers — demand a deficit calculation must not count
// twice, or the controller would keep peeling until the server was bare.
func (c *Controller) outboundFor(s *Server) float64 {
	var sum float64
	for _, tr := range c.transfers {
		if tr.src == s {
			sum += tr.watts
		}
	}
	return sum
}

// transferTouches reports whether the server is an endpoint of any
// in-flight transfer — such servers must stay awake.
func (c *Controller) transferTouches(s *Server) bool {
	for _, tr := range c.transfers {
		if tr.src == s || tr.dst == s {
			return true
		}
	}
	return false
}
