package core

import (
	"math"
	"reflect"
	"testing"

	"willow/internal/power"
	"willow/internal/telemetry"
)

// leaseScenario: two servers under a single root PMU, leases armed. The
// demand is deliberately lopsided so the loaded server's allocation sits
// above its autonomous floor (static + half the supply) — degradation
// then has something to decay.
func leaseScenario(t *testing.T, cfg Config) *Controller {
	t.Helper()
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 250, 0, 150),
		serverSpec(50, 250, 0, 10),
	})
	return buildController(t, []int{2}, specs, power.Constant(300), cfg)
}

// TestResilientPathMatchesSynchronous: with leases armed but never
// expiring (and no latency, loss, or failures) the resilient allocation
// path must publish the exact event stream of the synchronous one — the
// arithmetic is shared (computeChildAllocations), only the delivery
// bookkeeping differs.
func TestResilientPathMatchesSynchronous(t *testing.T) {
	run := func(lease int) []telemetry.Event {
		cfg := quietCfg()
		cfg.Eta2 = 7 // let consolidation re-derivations run too
		cfg.BudgetLeaseTicks = lease
		c := failureScenario(t, cfg)
		buf := &telemetry.Buffer{}
		c.Sink = buf
		c.Run(60)
		return buf.Events
	}
	sync := run(0)        // resilience disabled: legacy path
	res := run(1 << 20)   // resilient path, lease never expires
	if len(sync) == 0 {
		t.Fatal("no events")
	}
	if !reflect.DeepEqual(sync, res) {
		if len(sync) != len(res) {
			t.Fatalf("event counts differ: %d sync, %d resilient", len(sync), len(res))
		}
		for i := range sync {
			if sync[i] != res[i] {
				t.Fatalf("event %d differs:\nsync      %+v\nresilient %+v", i, sync[i], res[i])
			}
		}
	}
}

func TestServerLeaseExpiryAndDecay(t *testing.T) {
	cfg := quietCfg()
	cfg.BudgetLeaseTicks = 3
	c := leaseScenario(t, cfg)
	c.Run(5)
	s := c.Servers[0]
	held := s.TP()
	if held <= 0 {
		t.Fatalf("no budget before the failure: %v", held)
	}

	c.FailPMU(c.Tree.Root.ID)
	// Within the lease the held budget stands unchanged.
	c.Run(3)
	if s.Degraded() {
		t.Fatal("degraded before the lease expired")
	}
	if s.TP() != held {
		t.Errorf("held budget moved within the lease: %v -> %v", held, s.TP())
	}

	// Past the lease: degraded, decaying geometrically toward the floor.
	c.Step()
	if !s.Degraded() {
		t.Fatal("lease expired but server not degraded")
	}
	if c.Stats.LeaseExpiries != 2 {
		t.Errorf("lease expiries = %d, want 2 (both servers)", c.Stats.LeaseExpiries)
	}
	floor := c.serverFloor(s)
	if held <= floor {
		t.Fatalf("scenario defeats itself: held budget %v not above floor %v", held, floor)
	}
	prev := s.TP()
	for i := 0; i < 20; i++ {
		c.Step()
		if s.TP() > prev+tolerance {
			t.Fatalf("degraded budget rose: %v -> %v", prev, s.TP())
		}
		if s.TP() < floor-tolerance {
			t.Fatalf("degraded budget fell below the floor: %v < %v", s.TP(), floor)
		}
		prev = s.TP()
	}
	if math.Abs(s.TP()-floor) > 1e-3 {
		t.Errorf("budget did not converge to the floor: %v vs %v", s.TP(), floor)
	}
	if c.Stats.DegradedTicks == 0 {
		t.Error("no degraded server-ticks accumulated")
	}
}

func TestRepairClearsDegraded(t *testing.T) {
	cfg := quietCfg()
	cfg.BudgetLeaseTicks = 3
	c := leaseScenario(t, cfg)
	buf := &telemetry.Buffer{}
	c.Sink = buf
	c.Run(5)
	c.FailPMU(c.Tree.Root.ID)
	c.FailPMU(c.Tree.Root.ID) // no-op: already dead
	if c.Stats.PMUFailures != 1 {
		t.Errorf("pmu failures = %d, want 1", c.Stats.PMUFailures)
	}
	c.Run(10)
	if !c.Servers[0].Degraded() || !c.Servers[1].Degraded() {
		t.Fatal("servers not degraded under a dead root")
	}
	decayed := c.Servers[0].TP()

	c.RepairPMU(c.Tree.Root.ID)
	c.RepairPMU(c.Tree.Root.ID) // no-op
	if c.Stats.PMURepairs != 1 {
		t.Errorf("pmu repairs = %d, want 1", c.Stats.PMURepairs)
	}
	// The refreshed lease holds the decayed budget steady (no further
	// decay), and the next supply window clears the degradation.
	c.Step()
	if c.Servers[0].Degraded() || c.Servers[1].Degraded() {
		t.Fatal("degradation survived a fresh directive after repair")
	}
	if c.Servers[0].TP() < decayed-tolerance {
		t.Errorf("repair lowered the budget further: %v -> %v", decayed, c.Servers[0].TP())
	}
	c.Run(5)
	if c.Servers[0].TP() <= decayed {
		t.Errorf("budget did not recover after repair: %v (decayed floor %v)", c.Servers[0].TP(), decayed)
	}

	// The stream carries the full enter/exit story.
	var enters, exits, fails, repairs int
	for _, e := range buf.Events {
		switch {
		case e.Kind == telemetry.KindDegraded && e.Cause == "enter":
			enters++
		case e.Kind == telemetry.KindDegraded && e.Cause == "exit":
			exits++
		case e.Kind == telemetry.KindFailure && e.Cause == "pmu-fail":
			fails++
		case e.Kind == telemetry.KindFailure && e.Cause == "pmu-repair":
			repairs++
		}
	}
	if enters != 2 || exits != 2 {
		t.Errorf("degraded enter/exit events = %d/%d, want 2/2", enters, exits)
	}
	if fails != 1 || repairs != 1 {
		t.Errorf("pmu fail/repair events = %d/%d, want 1/1", fails, repairs)
	}
}

func TestFailPMUValidation(t *testing.T) {
	c := leaseScenario(t, quietCfg())
	for _, id := range []int{-1, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FailPMU(%d) did not panic", id)
				}
			}()
			c.FailPMU(id)
		}()
	}
	leaf := c.Servers[0].Node.ID
	defer func() {
		if recover() == nil {
			t.Error("FailPMU on a leaf did not panic")
		}
	}()
	c.FailPMU(leaf)
}

// TestMidTreePMUKillSafety is the acceptance scenario: kill a mid-tree
// (level-2) PMU in the 18-server {2,3,3} hierarchy and verify the
// orphaned span stays inside its hard constraints while degraded — the
// level-1 PMUs below the dead node decay their held budgets toward
// autonomous floors and keep issuing to their servers — then
// re-converges after repair.
func TestMidTreePMUKillSafety(t *testing.T) {
	cfg := quietCfg()
	cfg.Eta2 = 7
	cfg.BudgetLeaseTicks = 3
	var specs []ServerSpec
	for i := 0; i < 18; i++ {
		specs = append(specs, serverSpec(50, 250, 220, 60, 40))
	}
	c := buildController(t, []int{2, 3, 3}, uniqueIDs(specs), power.Constant(3000), cfg)
	c.Run(10)

	// Node 1 is the first level-2 PMU: servers 0-8 beneath it, via the
	// level-1 PMUs 3, 4, 5.
	deadSpan := c.Tree.Nodes[1]
	if deadSpan.Level != 2 || c.spanServers(deadSpan) != 9 {
		t.Fatalf("node 1 is not the expected mid-tree PMU (level %d, span %d)",
			deadSpan.Level, c.spanServers(deadSpan))
	}
	c.FailPMU(1)

	l1 := []int{3, 4, 5}
	prevTP := map[int]float64{}
	heldTP := map[int]float64{}
	for _, id := range l1 {
		prevTP[id] = c.pmuTP[id]
		heldTP[id] = c.pmuTP[id]
	}
	for tick := 0; tick < 30; tick++ {
		c.Step()
		for _, s := range c.Servers {
			if s.Asleep() {
				continue
			}
			if cap := s.HardCap(c.Cfg.ThermalWindow); s.Consumed() > cap+tolerance {
				t.Fatalf("tick %d: server %d consumed %v above hard cap %v",
					tick, s.Node.ServerIndex, s.Consumed(), cap)
			}
			if s.Consumed() > s.CircuitLimit+tolerance {
				t.Fatalf("tick %d: server %d consumed %v above circuit limit %v",
					tick, s.Node.ServerIndex, s.Consumed(), s.CircuitLimit)
			}
		}
		// The orphaned level-1 PMUs only ever shed while degraded.
		for _, id := range l1 {
			if c.pmuDegraded[id] && c.pmuTP[id] > prevTP[id]+tolerance {
				t.Fatalf("tick %d: degraded PMU %d budget rose %v -> %v",
					tick, id, prevTP[id], c.pmuTP[id])
			}
			prevTP[id] = c.pmuTP[id]
		}
	}
	degraded := 0
	for _, id := range l1 {
		if c.pmuDegraded[id] {
			degraded++
		}
	}
	if degraded != len(l1) {
		t.Errorf("%d of %d orphaned level-1 PMUs degraded, want all", degraded, len(l1))
	}
	// Decay never takes a budget below its floor — though a budget that
	// already sat below the floor when the lease expired simply holds
	// (degradation never raises).
	for _, id := range l1 {
		bound := c.pmuFloor(c.Tree.Nodes[id])
		if held := heldTP[id]; held < bound {
			bound = held
		}
		if c.pmuTP[id] < bound-tolerance {
			t.Errorf("PMU %d decayed below its bound: %v < %v", id, c.pmuTP[id], bound)
		}
	}

	c.RepairPMU(1)
	c.Run(2 * cfg.BudgetLeaseTicks)
	for _, id := range l1 {
		if c.pmuDegraded[id] {
			t.Errorf("PMU %d still degraded after repair", id)
		}
	}
	if c.pmuDegraded[1] {
		t.Error("repaired PMU itself still degraded")
	}
	// The span draws real budget again.
	var spanTP float64
	for i := 0; i < 9; i++ {
		spanTP += c.Servers[i].TP()
	}
	if spanTP <= 0 {
		t.Error("repaired span has no budget")
	}
}

func TestSetLinkLossClamps(t *testing.T) {
	c := leaseScenario(t, quietCfg())
	c.SetLinkLoss(-0.5, 1.5)
	if c.Cfg.ReportLoss != 0 {
		t.Errorf("report loss = %v, want 0", c.Cfg.ReportLoss)
	}
	if c.Cfg.BudgetLoss >= 1 || c.Cfg.BudgetLoss < 0.99 {
		t.Errorf("budget loss = %v, want just under 1", c.Cfg.BudgetLoss)
	}
	c.SetLinkLoss(0.2, 0.3)
	if c.Cfg.ReportLoss != 0.2 || c.Cfg.BudgetLoss != 0.3 {
		t.Errorf("losses = %v/%v, want 0.2/0.3", c.Cfg.ReportLoss, c.Cfg.BudgetLoss)
	}
}

// TestBudgetLatencyDelaysDirectives: with a one-window budget pipe a
// supply step reaches servers one supply window late.
func TestBudgetLatencyDelaysDirectives(t *testing.T) {
	mk := func(latency int) *Controller {
		cfg := quietCfg()
		cfg.BudgetLatency = latency
		specs := uniqueIDs([]ServerSpec{
			serverSpec(50, 250, 0, 80),
			serverSpec(50, 250, 0, 80),
		})
		sup := power.Trace{500, 500, 500, 500, 500, 300, 300, 300, 300, 300}
		return buildController(t, []int{2}, specs, sup, cfg)
	}
	direct := mk(0)
	delayed := mk(1)
	direct.Run(5)
	delayed.Run(5)
	if direct.Servers[0].TP() != delayed.Servers[0].TP() {
		t.Fatalf("pre-step budgets differ: %v vs %v", direct.Servers[0].TP(), delayed.Servers[0].TP())
	}
	pre := direct.Servers[0].TP()
	direct.Step() // tick 5: the supply plunge lands
	delayed.Step()
	if direct.Servers[0].TP() >= pre {
		t.Fatalf("direct path did not see the plunge: %v", direct.Servers[0].TP())
	}
	if delayed.Servers[0].TP() != pre {
		t.Errorf("delayed path saw the plunge immediately: %v, want %v", delayed.Servers[0].TP(), pre)
	}
	delayed.Step()
	if delayed.Servers[0].TP() >= pre {
		t.Errorf("plunge never surfaced from the budget pipe: %v", delayed.Servers[0].TP())
	}
}
