package core

// Read-only views of controller state for external observers — the
// live control-plane daemon's /v1/state endpoint (internal/server)
// reads these between ticks. Views copy values out; nothing here
// mutates the controller or is safe to call concurrently with Step.

// Failed reports whether the server is crashed (failure injection).
func (s *Server) Failed() bool { return s.failed }

// Waking returns the tick at which a sleeping server will come back,
// or -1 when no wake is pending.
func (s *Server) Waking() int { return s.wakeAt }

// NodeView is one internal (PMU) node's control state.
type NodeView struct {
	// Node is the tree node ID, Level its height (1 = just above the
	// servers).
	Node  int `json:"node"`
	Level int `json:"level"`
	// CP is the subtree's aggregated smoothed demand as this PMU knows
	// it; TP the budget granted from above.
	CP float64 `json:"cp"`
	TP float64 `json:"tp"`
	// Degraded marks an expired budget lease (autonomous decayed
	// allocation); Failed a crashed PMU.
	Degraded bool `json:"degraded,omitempty"`
	Failed   bool `json:"failed,omitempty"`
}

// PMUViews returns the state of every internal node, in tree-node-ID
// order (root first — topo.Build numbers breadth-first).
func (c *Controller) PMUViews() []NodeView {
	views := make([]NodeView, 0, len(c.Tree.Nodes)-len(c.Servers))
	for _, n := range c.Tree.Nodes {
		if n.IsLeaf() {
			continue
		}
		views = append(views, NodeView{
			Node: n.ID, Level: n.Level,
			CP: c.pmuCP[n.ID], TP: c.pmuTP[n.ID],
			Degraded: c.pmuDegraded[n.ID],
			Failed:   c.failedPMU[n.ID],
		})
	}
	return views
}

// DegradedCount returns how many nodes (servers and PMUs) currently
// run on an expired budget lease.
func (c *Controller) DegradedCount() int {
	n := 0
	for _, s := range c.Servers {
		if s.Degraded() {
			n++
		}
	}
	for _, node := range c.Tree.Nodes {
		if !node.IsLeaf() && c.pmuDegraded[node.ID] {
			n++
		}
	}
	return n
}

// FailedPMUCount returns how many internal nodes are currently crashed.
func (c *Controller) FailedPMUCount() int { return c.failedPMUCount }
