package core

import (
	"math"
	"testing"
	"testing/quick"

	"willow/internal/chaos"
	"willow/internal/dist"
	"willow/internal/power"
	"willow/internal/sensor"
	"willow/internal/thermal"
	"willow/internal/topo"
	"willow/internal/workload"
)

// TestRandomScenarioInvariants is the whole-system property harness: it
// generates random fleets, workloads, supplies and controller knobs —
// including the asynchronous control plane, slow transfers and QoS
// classes — runs each scenario, and asserts the invariants that must
// hold in every reachable state:
//
//   - applications are conserved (never lost, duplicated, or parked on a
//     sleeping server),
//   - consumption never exceeds the granted budget or the raw demand,
//   - no temperature crosses its limit,
//   - no ping-pong migrations within Δf,
//   - Property 3's two-messages-per-link bound,
//   - reservations and budgets are non-negative.
func TestRandomScenarioInvariants(t *testing.T) {
	scenario := func(seed uint64) bool {
		src := dist.NewSource(seed)

		fanouts := [][]int{{4}, {2, 3}, {2, 2, 2}, {3, 3}, {2, 3, 3}}
		fanout := fanouts[src.Intn(len(fanouts))]
		tree, err := topo.Build(fanout)
		if err != nil {
			t.Fatal(err)
		}
		n := tree.NumServers()

		cfg := Defaults()
		cfg.Alpha = src.Uniform(0.1, 1)
		cfg.Eta1 = 1 + src.Intn(6)
		cfg.Eta2 = cfg.Eta1 + 1 + src.Intn(8)
		cfg.PMin = src.Uniform(1, 20)
		cfg.MigCostWatts = src.Uniform(0.5, 10)
		cfg.ConsolidateBelow = src.Uniform(0.05, 0.4)
		if src.Float64() < 0.4 {
			cfg.ReportLatency = 1 + src.Intn(4)
		}
		if src.Float64() < 0.3 {
			cfg.ReportLoss = src.Uniform(0, 0.5)
		}
		if src.Float64() < 0.4 {
			cfg.MigrationLatency = 1 + src.Intn(5)
		}
		if src.Float64() < 0.3 {
			cfg.LocalOnly = true
		}

		appCount := 0
		specs := make([]ServerSpec, n)
		for i := range specs {
			static := src.Uniform(20, 150)
			peak := static + src.Uniform(50, 350)
			amb := src.Uniform(20, 45)
			specs[i] = ServerSpec{
				Power: power.ServerModel{Static: static, Peak: peak},
				Thermal: thermal.Model{
					C1:      src.Uniform(0.002, 0.02),
					C2:      src.Uniform(0.02, 0.1),
					Ambient: amb,
					Limit:   amb + src.Uniform(20, 50),
				},
			}
			if src.Float64() < 0.3 {
				specs[i].CircuitLimit = src.Uniform(static+20, peak)
			}
			for a := 0; a < 1+src.Intn(5); a++ {
				specs[i].Apps = append(specs[i].Apps, &workload.App{
					ID:          appCount,
					Class:       workload.Class{Weight: src.Uniform(1, 9)},
					Mean:        src.Uniform(5, (peak-static)/2),
					NoiseLambda: src.Uniform(5, 50),
					Priority:    src.Intn(3),
				})
				appCount++
			}
		}

		var rated float64
		for _, sp := range specs {
			rated += sp.Power.Peak
		}
		var supply power.Supply
		switch src.Intn(3) {
		case 0:
			supply = power.Constant(rated * src.Uniform(0.4, 1.1))
		case 1:
			supply = power.Sine{
				Base:      rated * src.Uniform(0.5, 0.9),
				Amplitude: rated * src.Uniform(0.1, 0.4),
				Period:    3 + src.Intn(20),
			}
		default:
			tr := make(power.Trace, 4+src.Intn(12))
			for i := range tr {
				tr[i] = rated * src.Uniform(0.3, 1.1)
			}
			supply = tr
		}

		c, err := New(tree, specs, supply, cfg, src.Fork())
		if err != nil {
			t.Fatal(err)
		}

		for tick := 0; tick < 120; tick++ {
			c.Step()
			apps := 0
			for si, s := range c.Servers {
				apps += s.Apps.Len()
				if s.TP() < -tolerance {
					t.Fatalf("seed %d tick %d: server %d negative budget %v", seed, tick, si, s.TP())
				}
				if s.Consumed() < 0 || s.Consumed() > s.TP()+1e-6 || s.Consumed() > s.RawDemand()+1e-6 {
					t.Fatalf("seed %d tick %d: server %d consumption %v out of bounds (TP %v, raw %v)",
						seed, tick, si, s.Consumed(), s.TP(), s.RawDemand())
				}
				if s.Thermal.T > s.Thermal.Model.Limit+1e-6 {
					t.Fatalf("seed %d tick %d: server %d at %v °C over limit %v",
						seed, tick, si, s.Thermal.T, s.Thermal.Model.Limit)
				}
				if s.Asleep() && s.Apps.Len() > 0 {
					t.Fatalf("seed %d tick %d: sleeping server %d hosts %d apps", seed, tick, si, s.Apps.Len())
				}
			}
			if apps != appCount {
				t.Fatalf("seed %d tick %d: %d apps, want %d", seed, tick, apps, appCount)
			}
			// Budget conservation at every internal node: children never
			// receive more than the parent was granted.
			for _, n := range c.Tree.Nodes {
				if n.IsLeaf() {
					continue
				}
				var childSum float64
				for _, ch := range n.Children {
					if ch.IsLeaf() {
						childSum += c.Servers[ch.ServerIndex].TP()
					} else {
						childSum += c.pmuTP[ch.ID]
					}
				}
				if childSum > c.pmuTP[n.ID]+1e-3 {
					t.Fatalf("seed %d tick %d: node %s granted %v to children with budget %v",
						seed, tick, n.Name(), childSum, c.pmuTP[n.ID])
				}
			}
			for idx, r := range c.reserved {
				if r < -tolerance {
					t.Fatalf("seed %d tick %d: negative reservation %v on server %d", seed, tick, r, idx)
				}
			}
		}
		if c.Stats.PingPongs != 0 {
			t.Fatalf("seed %d: %d ping-pongs", seed, c.Stats.PingPongs)
		}
		if c.Stats.MaxLinkMessagesPerTick > 2 {
			t.Fatalf("seed %d: %d messages on one link in one tick", seed, c.Stats.MaxLinkMessagesPerTick)
		}
		// Per-priority accounting must balance: served <= demand.
		for p, demand := range c.Stats.DemandByPriority {
			if c.Stats.ServedByPriority[p] > demand+1e-6 {
				t.Fatalf("seed %d: priority %d served more than demanded", seed, p)
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(scenario, cfg); err != nil {
		t.Error(err)
	}
}

// TestFaultScheduleInvariants is the property harness for the failure
// machinery: random fleets run under random seeded chaos schedules —
// server crashes, PMU crashes, repairs — with leases, budget latency and
// loss in play, and every reachable state must satisfy:
//
//   - no migration or orphan restart ever targets a failed server, a
//     sleeping server, or a server stranded under a dead PMU,
//   - applications are conserved: hosted + orphaned == created,
//   - consumption respects the hard caps (thermal Eq. 3, circuit, peak)
//     even while spans ride decayed lease budgets,
//   - failure/repair accounting matches the schedule,
//   - under combined PMU *and* sensor chaos — instruments lying while
//     the control plane crashes — the observed temperature stays finite
//     (no NaN ever reaches the control path) and no server's *true*
//     temperature crosses its limit.
func TestFaultScheduleInvariants(t *testing.T) {
	scenario := func(seed uint64) bool {
		src := dist.NewSource(seed)

		fanouts := [][]int{{4}, {2, 3}, {2, 2, 2}, {3, 3}, {2, 3, 3}}
		fanout := fanouts[src.Intn(len(fanouts))]
		tree, err := topo.Build(fanout)
		if err != nil {
			t.Fatal(err)
		}
		n := tree.NumServers()

		cfg := Defaults()
		cfg.Eta1 = 1 + src.Intn(4)
		cfg.Eta2 = cfg.Eta1 + 1 + src.Intn(6)
		cfg.BudgetLeaseTicks = cfg.Eta1 * (1 + src.Intn(3))
		cfg.DegradedDecay = src.Uniform(0.2, 0.9)
		if src.Float64() < 0.4 {
			cfg.BudgetLatency = 1 + src.Intn(3)
		}
		if src.Float64() < 0.3 {
			cfg.BudgetLoss = src.Uniform(0, 0.4)
		}
		if src.Float64() < 0.3 {
			cfg.ReportLoss = src.Uniform(0, 0.4)
		}
		if src.Float64() < 0.3 {
			cfg.MigrationLatency = 1 + src.Intn(4)
		}
		// Most scenarios run the robust estimator against the lying
		// sensors; a minority stay naive, which must still never crash
		// or leak NaN (benign thermal keeps naive physically safe here —
		// the hot-model hazard is TestSensorChaosTrueTemperatureCap's).
		robustSensing := src.Float64() < 0.7
		if robustSensing {
			cfg.SensorWindow = 3 + src.Intn(5)
			cfg.SensorGate = src.Uniform(1, 5)
			cfg.SensorTrips = 1 + src.Intn(4)
			cfg.SensorGuard = src.Uniform(0, 4)
		}

		appCount := 0
		specs := make([]ServerSpec, n)
		for i := range specs {
			static := src.Uniform(20, 100)
			peak := static + src.Uniform(80, 300)
			specs[i] = ServerSpec{
				Power:   power.ServerModel{Static: static, Peak: peak},
				Thermal: benignThermal,
			}
			if src.Float64() < 0.3 {
				specs[i].CircuitLimit = src.Uniform(static+20, peak)
			}
			for a := 0; a < 1+src.Intn(3); a++ {
				specs[i].Apps = append(specs[i].Apps, &workload.App{
					ID:          appCount,
					Class:       workload.Class{Weight: src.Uniform(1, 9)},
					Mean:        src.Uniform(5, (peak-static)/2),
					NoiseLambda: src.Uniform(5, 50),
				})
				appCount++
			}
		}
		var rated float64
		for _, sp := range specs {
			rated += sp.Power.Peak
		}

		const ticks = 160
		sched := chaos.Schedule{
			Ticks:      ticks,
			Servers:    n,
			ServerMTBF: float64(20 + src.Intn(200)),
			ServerMTTR: float64(5 + src.Intn(30)),
			PMUMTBF:    float64(20 + src.Intn(200)),
			PMUMTTR:    float64(5 + src.Intn(40)),

			SensorMTBF:    float64(20 + src.Intn(150)),
			SensorMTTR:    float64(5 + src.Intn(40)),
			SensorNoise:   src.Uniform(0.5, 3),
			SensorBias:    src.Uniform(2, 10),
			SensorDrift:   src.Uniform(0.1, 0.5),
			SensorStuck:   1,
			SensorDropout: 1,
		}
		for _, node := range tree.Nodes {
			if !node.IsLeaf() && node != tree.Root {
				sched.PMUs = append(sched.PMUs, node.ID)
			}
		}
		if len(sched.PMUs) == 0 {
			sched.PMUMTBF = 0 // flat {4} tree: nothing but the root to kill
		}
		plan, err := sched.Expand(seed)
		if err != nil {
			t.Fatal(err)
		}
		// Index fail/repair actions by tick, applied before the step —
		// the same ordering cluster.Run uses.
		type action struct {
			server, node int
			repair       bool
		}
		byTick := map[int][]action{}
		for _, f := range plan.ServerFailures {
			byTick[f.Tick] = append(byTick[f.Tick], action{server: f.Server, node: -1})
			if f.RepairTick > 0 {
				byTick[f.RepairTick] = append(byTick[f.RepairTick], action{server: f.Server, node: -1, repair: true})
			}
		}
		for _, f := range plan.PMUFailures {
			byTick[f.Tick] = append(byTick[f.Tick], action{server: -1, node: f.Node})
			if f.RepairTick > 0 {
				byTick[f.RepairTick] = append(byTick[f.RepairTick], action{server: -1, node: f.Node, repair: true})
			}
		}
		sensorSet := map[int][]chaos.SensorFault{}
		sensorClear := map[int][]int{}
		for _, f := range plan.SensorFaults {
			sensorSet[f.Start] = append(sensorSet[f.Start], f)
			if f.End > f.Start {
				sensorClear[f.End] = append(sensorClear[f.End], f.Server)
			}
		}

		c, err := New(tree, specs, power.Constant(rated*src.Uniform(0.5, 1.0)), cfg, src.Fork())
		if err != nil {
			t.Fatal(err)
		}
		sensorSrc := src.Fork()
		for i := 0; i < n; i++ {
			c.AttachSensor(i, sensor.New(sensorSrc.Fork()))
		}

		downServers := map[int]bool{}
		migSeen := 0
		for tick := 0; tick < ticks; tick++ {
			for _, a := range byTick[tick] {
				switch {
				case a.server >= 0 && !a.repair:
					c.FailServer(a.server)
					downServers[a.server] = true
				case a.server >= 0:
					c.RepairServer(a.server)
					delete(downServers, a.server)
				case !a.repair:
					c.FailPMU(a.node)
				default:
					c.RepairPMU(a.node)
				}
			}
			for _, f := range sensorSet[tick] {
				c.SetSensorFault(f.Server, sensor.Fault{Mode: f.Mode, Magnitude: f.Magnitude})
			}
			for _, si := range sensorClear[tick] {
				c.ClearSensorFault(si)
			}
			c.Step()

			// Every migration recorded this tick lands on an alive,
			// reachable server. (Sleep state is checked separately below:
			// a target may legitimately drain to sleep later in the same
			// tick, but failure and dead-span status only change at tick
			// boundaries, above.)
			for _, m := range c.Stats.Migrations[migSeen:] {
				to := c.Servers[m.To]
				if downServers[m.To] {
					t.Fatalf("seed %d tick %d: migration (cause %v) targeted failed server %d",
						seed, tick, m.Cause, m.To)
				}
				if c.underDeadPMU(to.Node) {
					t.Fatalf("seed %d tick %d: migration (cause %v) crossed into the dead span at server %d",
						seed, tick, m.Cause, m.To)
				}
			}
			migSeen = len(c.Stats.Migrations)

			apps := 0
			for si, s := range c.Servers {
				apps += s.Apps.Len()
				if math.IsNaN(s.TObs()) || math.IsInf(s.TObs(), 0) {
					t.Fatalf("seed %d tick %d: server %d non-finite observed temperature %v",
						seed, tick, si, s.TObs())
				}
				if math.IsNaN(s.Thermal.T) || s.Thermal.T > s.Thermal.Model.Limit+1e-6 {
					t.Fatalf("seed %d tick %d: server %d true temperature %v vs limit %v under sensor chaos",
						seed, tick, si, s.Thermal.T, s.Thermal.Model.Limit)
				}
				if downServers[si] && s.Apps.Len() > 0 {
					t.Fatalf("seed %d tick %d: failed server %d hosts %d apps", seed, tick, si, s.Apps.Len())
				}
				if s.Asleep() {
					if s.Apps.Len() > 0 {
						t.Fatalf("seed %d tick %d: sleeping server %d hosts %d apps", seed, tick, si, s.Apps.Len())
					}
					continue
				}
				if cap := s.HardCap(c.Cfg.ThermalWindow); s.Consumed() > cap+1e-6 {
					t.Fatalf("seed %d tick %d: server %d consumed %v above hard cap %v",
						seed, tick, si, s.Consumed(), cap)
				}
				if s.TP() < -tolerance {
					t.Fatalf("seed %d tick %d: server %d negative budget %v", seed, tick, si, s.TP())
				}
			}
			if total := apps + c.Orphans(); total != appCount {
				t.Fatalf("seed %d tick %d: %d apps hosted + %d orphaned, want %d",
					seed, tick, apps, c.Orphans(), appCount)
			}
		}
		if c.Stats.Failures != len(plan.ServerFailures) {
			t.Fatalf("seed %d: %d server failures recorded, schedule had %d",
				seed, c.Stats.Failures, len(plan.ServerFailures))
		}
		if c.Stats.PMUFailures != len(plan.PMUFailures) {
			t.Fatalf("seed %d: %d PMU failures recorded, schedule had %d",
				seed, c.Stats.PMUFailures, len(plan.PMUFailures))
		}
		if c.Stats.PMURepairs > c.Stats.PMUFailures || c.Stats.Repairs > c.Stats.Failures {
			t.Fatalf("seed %d: more repairs than failures", seed)
		}
		if c.Stats.SensorFaults != len(plan.SensorFaults) {
			t.Fatalf("seed %d: %d sensor faults recorded, schedule had %d",
				seed, c.Stats.SensorFaults, len(plan.SensorFaults))
		}
		if robustSensing && len(plan.SensorFaults) > 0 && c.Stats.SensorRejected == 0 {
			// Not every schedule's faults are egregious enough to gate, but
			// the counter must at least be wired; tolerate zero only when
			// the plan was tiny.
			if len(plan.SensorFaults) > 5 {
				t.Logf("seed %d: %d sensor faults but none rejected (benign draw)", seed, len(plan.SensorFaults))
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 6
	}
	if err := quick.Check(scenario, cfg); err != nil {
		t.Error(err)
	}
}
