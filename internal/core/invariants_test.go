package core

import (
	"testing"
	"testing/quick"

	"willow/internal/dist"
	"willow/internal/power"
	"willow/internal/thermal"
	"willow/internal/topo"
	"willow/internal/workload"
)

// TestRandomScenarioInvariants is the whole-system property harness: it
// generates random fleets, workloads, supplies and controller knobs —
// including the asynchronous control plane, slow transfers and QoS
// classes — runs each scenario, and asserts the invariants that must
// hold in every reachable state:
//
//   - applications are conserved (never lost, duplicated, or parked on a
//     sleeping server),
//   - consumption never exceeds the granted budget or the raw demand,
//   - no temperature crosses its limit,
//   - no ping-pong migrations within Δf,
//   - Property 3's two-messages-per-link bound,
//   - reservations and budgets are non-negative.
func TestRandomScenarioInvariants(t *testing.T) {
	scenario := func(seed uint64) bool {
		src := dist.NewSource(seed)

		fanouts := [][]int{{4}, {2, 3}, {2, 2, 2}, {3, 3}, {2, 3, 3}}
		fanout := fanouts[src.Intn(len(fanouts))]
		tree, err := topo.Build(fanout)
		if err != nil {
			t.Fatal(err)
		}
		n := tree.NumServers()

		cfg := Defaults()
		cfg.Alpha = src.Uniform(0.1, 1)
		cfg.Eta1 = 1 + src.Intn(6)
		cfg.Eta2 = cfg.Eta1 + 1 + src.Intn(8)
		cfg.PMin = src.Uniform(1, 20)
		cfg.MigCostWatts = src.Uniform(0.5, 10)
		cfg.ConsolidateBelow = src.Uniform(0.05, 0.4)
		if src.Float64() < 0.4 {
			cfg.ReportLatency = 1 + src.Intn(4)
		}
		if src.Float64() < 0.3 {
			cfg.ReportLoss = src.Uniform(0, 0.5)
		}
		if src.Float64() < 0.4 {
			cfg.MigrationLatency = 1 + src.Intn(5)
		}
		if src.Float64() < 0.3 {
			cfg.LocalOnly = true
		}

		appCount := 0
		specs := make([]ServerSpec, n)
		for i := range specs {
			static := src.Uniform(20, 150)
			peak := static + src.Uniform(50, 350)
			amb := src.Uniform(20, 45)
			specs[i] = ServerSpec{
				Power: power.ServerModel{Static: static, Peak: peak},
				Thermal: thermal.Model{
					C1:      src.Uniform(0.002, 0.02),
					C2:      src.Uniform(0.02, 0.1),
					Ambient: amb,
					Limit:   amb + src.Uniform(20, 50),
				},
			}
			if src.Float64() < 0.3 {
				specs[i].CircuitLimit = src.Uniform(static+20, peak)
			}
			for a := 0; a < 1+src.Intn(5); a++ {
				specs[i].Apps = append(specs[i].Apps, &workload.App{
					ID:          appCount,
					Class:       workload.Class{Weight: src.Uniform(1, 9)},
					Mean:        src.Uniform(5, (peak-static)/2),
					NoiseLambda: src.Uniform(5, 50),
					Priority:    src.Intn(3),
				})
				appCount++
			}
		}

		var rated float64
		for _, sp := range specs {
			rated += sp.Power.Peak
		}
		var supply power.Supply
		switch src.Intn(3) {
		case 0:
			supply = power.Constant(rated * src.Uniform(0.4, 1.1))
		case 1:
			supply = power.Sine{
				Base:      rated * src.Uniform(0.5, 0.9),
				Amplitude: rated * src.Uniform(0.1, 0.4),
				Period:    3 + src.Intn(20),
			}
		default:
			tr := make(power.Trace, 4+src.Intn(12))
			for i := range tr {
				tr[i] = rated * src.Uniform(0.3, 1.1)
			}
			supply = tr
		}

		c, err := New(tree, specs, supply, cfg, src.Fork())
		if err != nil {
			t.Fatal(err)
		}

		for tick := 0; tick < 120; tick++ {
			c.Step()
			apps := 0
			for si, s := range c.Servers {
				apps += s.Apps.Len()
				if s.TP < -tolerance {
					t.Fatalf("seed %d tick %d: server %d negative budget %v", seed, tick, si, s.TP)
				}
				if s.Consumed < 0 || s.Consumed > s.TP+1e-6 || s.Consumed > s.RawDemand+1e-6 {
					t.Fatalf("seed %d tick %d: server %d consumption %v out of bounds (TP %v, raw %v)",
						seed, tick, si, s.Consumed, s.TP, s.RawDemand)
				}
				if s.Thermal.T > s.Thermal.Model.Limit+1e-6 {
					t.Fatalf("seed %d tick %d: server %d at %v °C over limit %v",
						seed, tick, si, s.Thermal.T, s.Thermal.Model.Limit)
				}
				if s.Asleep && s.Apps.Len() > 0 {
					t.Fatalf("seed %d tick %d: sleeping server %d hosts %d apps", seed, tick, si, s.Apps.Len())
				}
			}
			if apps != appCount {
				t.Fatalf("seed %d tick %d: %d apps, want %d", seed, tick, apps, appCount)
			}
			// Budget conservation at every internal node: children never
			// receive more than the parent was granted.
			for _, p := range c.pmus {
				var childSum float64
				for _, ch := range p.node.Children {
					if ch.IsLeaf() {
						childSum += c.Servers[ch.ServerIndex].TP
					} else {
						childSum += c.pmus[ch.ID].TP
					}
				}
				if childSum > p.TP+1e-3 {
					t.Fatalf("seed %d tick %d: node %s granted %v to children with budget %v",
						seed, tick, p.node.Name(), childSum, p.TP)
				}
			}
			for idx, r := range c.reserved {
				if r < -tolerance {
					t.Fatalf("seed %d tick %d: negative reservation %v on server %d", seed, tick, r, idx)
				}
			}
		}
		if c.Stats.PingPongs != 0 {
			t.Fatalf("seed %d: %d ping-pongs", seed, c.Stats.PingPongs)
		}
		if c.Stats.MaxLinkMessagesPerTick > 2 {
			t.Fatalf("seed %d: %d messages on one link in one tick", seed, c.Stats.MaxLinkMessagesPerTick)
		}
		// Per-priority accounting must balance: served <= demand.
		for p, demand := range c.Stats.DemandByPriority {
			if c.Stats.ServedByPriority[p] > demand+1e-6 {
				t.Fatalf("seed %d: priority %d served more than demanded", seed, p)
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(scenario, cfg); err != nil {
		t.Error(err)
	}
}
