package core

import (
	"math"
	"testing"

	"willow/internal/power"
	"willow/internal/workload"
)

// qosController builds a single-server controller whose budget is pinned
// by a circuit limit, hosting apps with the given (mean, priority) pairs.
func qosController(t *testing.T, circuit float64, apps ...[2]float64) *Controller {
	t.Helper()
	spec := ServerSpec{
		Power:        power.ServerModel{Static: 50, Peak: 500},
		Thermal:      benignThermal,
		CircuitLimit: circuit,
	}
	for i, ap := range apps {
		spec.Apps = append(spec.Apps, &workload.App{
			ID:          i,
			Class:       workload.Class{Name: "vm", Weight: ap[0]},
			Mean:        ap[0],
			NoiseLambda: -1,
			Priority:    int(ap[1]),
		})
	}
	cfg := quietCfg()
	cfg.PMin = 1e12 // no migrations: this is a shedding test
	return buildController(t, []int{1}, []ServerSpec{spec}, power.Constant(1000), cfg)
}

func TestQoSFullServiceWhenBudgetCovers(t *testing.T) {
	c := qosController(t, 0, [2]float64{60, 0}, [2]float64{40, 2})
	c.Step()
	if got := c.Servers[0].Consumed(); math.Abs(got-150) > 1e-9 {
		t.Fatalf("consumed %v, want full 150", got)
	}
	for _, p := range []int{0, 2} {
		if got := c.Stats.ServiceLevel(p); got != 1 {
			t.Errorf("priority %d service level %v, want 1", p, got)
		}
	}
	if c.Stats.DegradedAppTicks != 0 || c.Stats.ShutdownAppTicks != 0 {
		t.Error("degradation recorded despite full service")
	}
}

// TestQoSShedsLowPriorityFirst: with a 120 W budget against 150 W of
// demand, the priority-2 app absorbs the entire 30 W shortfall while the
// priority-0 app runs untouched.
func TestQoSShedsLowPriorityFirst(t *testing.T) {
	c := qosController(t, 120, [2]float64{60, 0}, [2]float64{40, 2})
	c.Step()
	if got := c.Stats.ServiceLevel(0); got != 1 {
		t.Errorf("critical class service level %v, want 1", got)
	}
	// Low priority: served 10 of 40.
	if got := c.Stats.ServiceLevel(2); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("low class service level %v, want 0.25", got)
	}
	if got := c.Servers[0].Consumed(); math.Abs(got-120) > 1e-9 {
		t.Errorf("consumed %v, want budget 120", got)
	}
	if c.Stats.DegradedAppTicks != 1 {
		t.Errorf("degraded app ticks = %d, want 1", c.Stats.DegradedAppTicks)
	}
}

// TestQoSShutsDownWhenNothingLeft: a budget below even the critical
// demand shuts lower classes down entirely.
func TestQoSShutsDownWhenNothingLeft(t *testing.T) {
	c := qosController(t, 100, [2]float64{60, 0}, [2]float64{40, 2})
	c.Step()
	// Budget 100: static 50, then priority 0 gets 50 of its 60,
	// priority 2 gets nothing.
	if got := c.Stats.ServiceLevel(2); got != 0 {
		t.Errorf("low class service level %v, want 0", got)
	}
	if got := c.Stats.ServiceLevel(0); math.Abs(got-50.0/60) > 1e-9 {
		t.Errorf("critical class service level %v, want %v", got, 50.0/60)
	}
	if c.Stats.ShutdownAppTicks != 1 {
		t.Errorf("shutdown app ticks = %d, want 1", c.Stats.ShutdownAppTicks)
	}
}

// TestQoSBudgetBelowStatic: when the budget cannot even cover the static
// draw, everything sheds and the server browns out to its budget.
func TestQoSBudgetBelowStatic(t *testing.T) {
	c := qosController(t, 30, [2]float64{60, 0})
	c.Step()
	if got := c.Servers[0].Consumed(); math.Abs(got-30) > 1e-9 {
		t.Errorf("consumed %v, want budget 30", got)
	}
	if got := c.Stats.ServiceLevel(0); got != 0 {
		t.Errorf("service level %v, want 0", got)
	}
}

// TestQoSSamePriorityLargestFirst: within a class, the larger demand is
// served first so fewer applications degrade.
func TestQoSSamePriorityLargestFirst(t *testing.T) {
	// Budget 120 = 50 static + 70 dynamic against apps of 60 and 40.
	c := qosController(t, 120, [2]float64{60, 1}, [2]float64{40, 1})
	c.Step()
	// 60 fully served, 40 gets the remaining 10.
	if got := c.Stats.ServiceLevel(1); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("class service level %v, want 0.7", got)
	}
	if c.Stats.DegradedAppTicks != 1 {
		t.Errorf("degraded = %d, want exactly 1 app degraded", c.Stats.DegradedAppTicks)
	}
}

func TestServiceLevelUnknownClass(t *testing.T) {
	var st Stats
	if got := st.ServiceLevel(7); got != 1 {
		t.Errorf("unknown class service level %v, want 1", got)
	}
}
