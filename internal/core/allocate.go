package core

import (
	"willow/internal/telemetry"
	"willow/internal/topo"
)

// allocateSupply implements the supply-side adaptation of Section IV-D:
// every Δ_S the available budget is divided top-down, at each node
// proportionally to the children's smoothed demands, subject to each
// child's hard constraints (thermal + circuit caps). Budget that capped
// children cannot absorb is redistributed to their siblings (waterfill);
// leftover beyond all demands is allocated proportionally to demand as
// well ("if surplus is still available ... the surplus budget is
// allocated to its children nodes proportional to their demand").
//
// Each node's reduced flag records whether this event lowered its budget;
// the demand side uses it to enforce the unidirectional rule.
// Supply traces are indexed by supply epoch (t / η1), so a 30-entry trace
// spans 30 supply windows regardless of η1.
func (c *Controller) allocateSupply(t int) {
	if c.resilienceEnabled() {
		// Mid-tick re-derivation under the resilient control plane:
		// refresh budgets directly within the live span, without
		// advancing pipes or touching lease state (degraded.go).
		c.allocateResilient(t, false)
		return
	}
	rootID := c.Tree.Root.ID
	total := c.Supply.At(t / c.Cfg.Eta1)
	prev := c.pmuTP[rootID]
	c.pmuReduced[rootID] = c.isReduced(total, prev, c.pmuCP[rootID])
	c.pmuTP[rootID] = total
	if c.Sink != nil {
		c.publish(telemetry.Event{
			Tick: t, Kind: telemetry.KindBudgetChange,
			Node: rootID, Level: c.Tree.Root.Level,
			Watts: total, Prev: prev, Demand: c.pmuCP[rootID],
			Reduced: c.pmuReduced[rootID],
		})
	}
	c.allocateNode(c.Tree.Root, total)
}

// isReduced implements the unidirectional rule's trigger: a node counts
// as "budget reduced by the event" when the new budget is lower than
// before AND leaves the node without comfortable headroom over its
// demand. A node whose budget shrank in watts but still exceeds demand by
// the P_min margin can absorb migrations — which is how the paper's own
// experiments route work toward lightly loaded servers during a global
// supply plunge (Section V-C4).
func (c *Controller) isReduced(newTP, oldTP, cp float64) bool {
	return newTP < oldTP-tolerance && newTP < cp+c.Cfg.PMin-tolerance
}

// allocateNode divides budget among node's children and recurses.
func (c *Controller) allocateNode(node *topo.Node, budget float64) {
	if node.IsLeaf() {
		return
	}
	c.assignChildBudgets(node.Children, c.computeChildAllocations(node, budget))
}

// computeChildAllocations runs the three allocation rounds for one
// internal node and returns the per-child budgets (backed by the node's
// scratch buffer — valid until the next call for the same node). Both
// the synchronous path (allocateNode) and the resilient path
// (allocateNodeR, degraded.go) divide budget through here, so degraded
// autonomous allocation is arithmetically identical to the paper's.
func (c *Controller) computeChildAllocations(node *topo.Node, budget float64) []float64 {
	children := node.Children
	sc := c.scratch[node.ID]
	demands, caps, floors := sc.demands, sc.caps, sc.floors
	var floorSum float64
	for i, ch := range children {
		demands[i] = c.demandOf(ch)
		caps[i] = c.subtreeCap(ch)
		f := c.subtreeFloor(ch)
		if f > caps[i] {
			f = caps[i]
		}
		floors[i] = f
		floorSum += f
	}

	// Budget-division seam: a bound policy may take over the division
	// entirely (core still clamps the result into the hard envelope); a
	// declining policy falls through to the paper's three rounds below.
	if c.pol != nil && c.pol.DivideBudget(node.Level, budget, demands, caps, floors, sc.alloc) {
		clampDivision(sc.alloc, budget, caps)
		return sc.alloc
	}

	// Round 0: static floors. An awake server draws its static power no
	// matter what, so floors are funded before any dynamic demand. If
	// even the floors exceed the budget the children split it floor-
	// proportionally — a regime only escapable by putting servers to
	// sleep, which the demand side's drain-to-sleep path handles.
	alloc := sc.alloc
	if floorSum > budget {
		waterfill(alloc, budget, floors, floors, sc.active)
		return alloc
	}
	copy(alloc, floors)
	remaining := budget - floorSum

	// Round A: meet dynamic demand above the floors, proportionally
	// (waterfill handles children whose caps bind).
	dynWants := sc.wants
	var dynSum float64
	for i := range children {
		w := demands[i]
		if w > caps[i] {
			w = caps[i]
		}
		w -= floors[i]
		if w < 0 {
			w = 0
		}
		dynWants[i] = w
		dynSum += w
	}
	leftover := remaining
	if dynSum <= remaining {
		for i := range alloc {
			alloc[i] += dynWants[i]
		}
		leftover = remaining - dynSum
	} else {
		extra := waterfill(sc.extra, remaining, dynWants, dynWants, sc.active)
		for i := range alloc {
			alloc[i] += extra[i]
		}
		leftover = 0
	}

	// Round B: distribute leftover proportionally to demand up to the
	// hard caps. Budget beyond every cap stays stranded at this node.
	if leftover > tolerance {
		head := sc.head
		for i := range children {
			head[i] = caps[i] - alloc[i]
		}
		extra := waterfill(sc.extra, leftover, demands, head, sc.active)
		for i := range alloc {
			alloc[i] += extra[i]
		}
	}

	return alloc
}

// assignChildBudgets stores the computed budgets, maintains reduced
// flags, counts the downward directive messages, publishes the
// per-node BudgetChange events, and recurses.
func (c *Controller) assignChildBudgets(children []*topo.Node, alloc []float64) {
	for i, ch := range children {
		c.countDown(ch) // parent -> child budget directive
		if ch.IsLeaf() {
			s := c.Servers[ch.ServerIndex]
			prev := s.TP()
			s.reduced = c.isReduced(alloc[i], prev, s.CP())
			s.setTP(alloc[i])
			if c.Sink != nil {
				c.publish(telemetry.Event{
					Tick: c.tick, Kind: telemetry.KindBudgetChange,
					Node: ch.ID, Level: ch.Level, Server: ch.ServerIndex,
					Watts: alloc[i], Prev: prev, Demand: s.CP(),
					Reduced: s.reduced,
				})
			}
			continue
		}
		prev := c.pmuTP[ch.ID]
		c.pmuReduced[ch.ID] = c.isReduced(alloc[i], prev, c.pmuCP[ch.ID])
		c.pmuTP[ch.ID] = alloc[i]
		if c.Sink != nil {
			c.publish(telemetry.Event{
				Tick: c.tick, Kind: telemetry.KindBudgetChange,
				Node: ch.ID, Level: ch.Level,
				Watts: alloc[i], Prev: prev, Demand: c.pmuCP[ch.ID],
				Reduced: c.pmuReduced[ch.ID],
			})
		}
		c.allocateNode(ch, alloc[i])
	}
}

// subtreeFloor returns the summed static power of awake servers beneath
// n — the minimum budget the subtree burns while its servers stay on.
func (c *Controller) subtreeFloor(n *topo.Node) float64 {
	if n.IsLeaf() {
		s := c.Servers[n.ServerIndex]
		if s.Asleep() {
			return 0
		}
		return s.Power.Static
	}
	var sum float64
	for _, ch := range n.Children {
		sum += c.subtreeFloor(ch)
	}
	return sum
}

// subtreeCap returns the hard constraint of a subtree: the sum of the
// leaf hard caps beneath it (sleeping servers contribute nothing — they
// cannot spend budget).
func (c *Controller) subtreeCap(n *topo.Node) float64 {
	if n.IsLeaf() {
		s := c.Servers[n.ServerIndex]
		if s.Asleep() {
			return 0
		}
		return s.HardCap(c.Cfg.ThermalWindow)
	}
	var sum float64
	for _, ch := range n.Children {
		sum += c.subtreeCap(ch)
	}
	return sum
}
