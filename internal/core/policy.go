package core

// Policy plugs an alternative controller into Willow's three control
// seams — budget division across children, the per-server throttle cap,
// and the migration/consolidation triggers — while everything around
// the seams (tree aggregation, waterfills below the hooks, QoS
// settlement, thermal integration, telemetry) stays shared. Concrete
// policies live in internal/policy; core only defines the cut.
//
// Contract:
//
//   - Determinism. A policy must be a pure function of the controller
//     state it reads plus its own state; it must never read wall clock,
//     draw randomness, or consume the controller's random streams. The
//     fleet determinism contract (byte-identical runs for any worker or
//     shard count, across snapshot/restore and replication) extends to
//     every policy.
//   - Delegation. Every hook can decline (return false / ok=false), in
//     which case the built-in Willow arithmetic runs bit-for-bit. A
//     policy that declines everything — policy.Willow — is
//     byte-identical to leaving Config.Policy nil.
//   - Sharding. ThermalCap is called from the parallel tick phases: an
//     implementation may touch only state private to the server passed
//     in (per-server slots indexed by Server.Index). DivideBudget,
//     PeelTarget and ConsolidateEligible run on the sequential control
//     path and may keep shared scratch.
//   - Ownership. A policy instance is stateful and owned by exactly one
//     Controller: Bind is called once, during New. Never share an
//     instance across controllers; rebuild from its Spec instead.
type Policy interface {
	// Spec returns the canonical spec string (internal/policy syntax)
	// that reconstructs this policy — what snapshots record so
	// restore/replication rebuild the identical controller.
	Spec() string

	// Bind attaches the policy to its controller at construction time,
	// after servers are built. Stateful policies size their per-server
	// state here.
	Bind(c *Controller)

	// DivideBudget divides budget across one internal node's children,
	// filling alloc (one slot per child, same order as demands).
	// demands are the children's smoothed subtree demands, caps their
	// hard-constraint ceilings, floors their funded static minimums
	// (already clamped to caps). Returning false delegates to the
	// built-in proportional waterfill. Core clamps the result into
	// [0, caps] and rescales if it overspends budget, so a policy can
	// never violate the hard constraints.
	DivideBudget(level int, budget float64, demands, caps, floors, alloc []float64) bool

	// ThermalCap returns the server's thermal power cap (watts) for the
	// configured adjustment window, given the observed temperature.
	// Returning ok=false keeps the built-in Eq. 3 one-step inversion
	// (Server.Eq3Limit). It is invoked whenever the cached hard cap
	// refreshes — once per server per tick on the consume path.
	ThermalCap(s *Server, tobs float64) (cap float64, ok bool)

	// PeelTarget decides the migration trigger: given a server's
	// current deficit (Eq. 5, net of outbound transfers), it returns
	// how many watts of demand the server should peel off for
	// migration; target <= 0 peels nothing. Returning ok=false keeps
	// the built-in rule (peel iff deficit > PMin, target = deficit +
	// PMin).
	PeelTarget(s *Server, deficit float64) (target float64, ok bool)

	// ConsolidateEligible decides the consolidation trigger: whether an
	// awake server running at the given dynamic utilization should be
	// drained and slept this Δ_A pass. Returning ok=false keeps the
	// built-in rule (utilization < ConsolidateBelow).
	ConsolidateEligible(s *Server, util float64) (eligible bool, ok bool)
}

// peelTarget applies the migration-trigger seam: how many watts s
// should peel given deficit def; <= 0 means none. The nil-policy path
// reproduces the built-in rule bit for bit.
func (c *Controller) peelTarget(s *Server, def float64) float64 {
	if c.pol != nil {
		if target, ok := c.pol.PeelTarget(s, def); ok {
			return target
		}
	}
	if def <= c.Cfg.PMin {
		return 0
	}
	return def + c.Cfg.PMin
}

// consolidateEligible applies the consolidation-trigger seam.
func (c *Controller) consolidateEligible(s *Server, util float64) bool {
	if c.pol != nil {
		if eligible, ok := c.pol.ConsolidateEligible(s, util); ok {
			return eligible
		}
	}
	return util < c.Cfg.ConsolidateBelow
}

// clampDivision enforces the hard envelope on a policy-made division:
// each child inside [0, cap], and the total never above budget (scaled
// down proportionally if the policy overspent). The built-in path never
// goes through here.
func clampDivision(alloc []float64, budget float64, caps []float64) {
	var sum float64
	for i := range alloc {
		v := alloc[i]
		if v < 0 || v != v { // negative or NaN
			v = 0
		}
		if v > caps[i] {
			v = caps[i]
		}
		alloc[i] = v
		sum += v
	}
	if sum > budget+tolerance && sum > 0 {
		scale := budget / sum
		if scale < 0 {
			scale = 0
		}
		for i := range alloc {
			alloc[i] *= scale
		}
	}
}

// LeaseFloor returns the server's autonomous safe-floor budget before
// any hard-cap clamp: its static draw plus an equal share of the last
// parent budget it heard (zero until a budget directive carries one).
// This is the quantity expired budget leases decay toward (degraded.go)
// and the anti-windup floor of the integral policy.
func (c *Controller) LeaseFloor(s *Server) float64 {
	return s.Power.Static + c.fairShare(s.Node, s.lastParentTP)
}
