package core

import (
	"math"
	"testing"

	"willow/internal/power"
)

// transferScenario builds a circuit-capped deficit server with two
// potential targets and the given migration latency.
func transferScenario(t *testing.T, latency int) *Controller {
	t.Helper()
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 150, 60, 60), // demand 170 vs 150 cap
		serverSpec(50, 200, 0, 10),
		serverSpec(50, 200, 0, 10),
	})
	cfg := quietCfg()
	cfg.MigrationLatency = latency
	return buildController(t, []int{3}, specs, power.Constant(550), cfg)
}

func TestTransferDecisionRecordedImmediately(t *testing.T) {
	c := transferScenario(t, 3)
	c.Step()
	if got := len(c.Stats.Migrations); got != 1 {
		t.Fatalf("migrations recorded = %d, want 1 at decision time", got)
	}
	if c.Stats.Migrations[0].Tick != 0 {
		t.Errorf("decision tick %d, want 0", c.Stats.Migrations[0].Tick)
	}
	// But the application has not moved yet.
	if c.Servers[0].Apps.Len() != 2 {
		t.Errorf("source lost the app before the transfer landed")
	}
}

func TestTransferLandsAfterLatency(t *testing.T) {
	c := transferScenario(t, 3)
	c.Step() // decision at tick 0, arrival due at tick 3
	for tick := 1; tick <= 2; tick++ {
		c.Step()
		if c.Servers[0].Apps.Len() != 2 {
			t.Fatalf("tick %d: app moved early", tick)
		}
	}
	c.Step() // tick 3: completeTransfers fires
	if c.Servers[0].Apps.Len() != 1 {
		t.Fatal("app did not land after the latency elapsed")
	}
	total := c.Servers[1].Apps.Len() + c.Servers[2].Apps.Len()
	if total != 3 {
		t.Errorf("targets host %d apps, want 3", total)
	}
	// Demand moved with it.
	if c.Servers[0].CP() > 120 {
		t.Errorf("source CP %v still includes the departed app", c.Servers[0].CP())
	}
}

func TestTransferZeroLatencyUnchanged(t *testing.T) {
	c := transferScenario(t, 0)
	c.Step()
	if c.Servers[0].Apps.Len() != 1 {
		t.Error("instant migration did not move the app within the window")
	}
	if len(c.transfers) != 0 {
		t.Error("zero-latency migration created a transfer")
	}
}

func TestInFlightAppNotReplanned(t *testing.T) {
	c := transferScenario(t, 5)
	c.Step()
	if got := len(c.Stats.Migrations); got != 1 {
		t.Fatalf("initial decisions = %d", got)
	}
	// While in flight, further ticks must not re-migrate the same app
	// even though the source still shows a deficit (its demand still
	// includes the departing app).
	c.Run(3)
	for _, m := range c.Stats.Migrations[1:] {
		for _, tr := range c.transfers {
			if m.AppID == tr.app && m.Tick > 0 {
				t.Fatalf("in-flight app %d re-planned at tick %d", m.AppID, m.Tick)
			}
		}
	}
}

// TestReservationPreventsOverbooking: two deficit servers target the same
// small surplus; the reservation must stop the second transfer from
// overbooking it.
func TestReservationPreventsOverbooking(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 130, 55, 40), // deficit server A
		serverSpec(50, 200, 130, 55, 40), // deficit server B
		serverSpec(50, 200, 0, 10),       // the only surplus
	})
	cfg := quietCfg()
	cfg.MigrationLatency = 4
	c := buildController(t, []int{3}, specs, power.Constant(420), cfg)
	c.Run(8)
	// Target demand must never exceed its effective budget plus margin
	// after all arrivals: check it is not overbooked beyond peak.
	target := c.Servers[2]
	if target.CP() > target.Power.Peak+tolerance {
		t.Errorf("target overbooked: CP %v over peak %v", target.CP(), target.Power.Peak)
	}
	if got := c.reservedFor(target); got > tolerance {
		t.Errorf("leaked reservation: %v", got)
	}
}

func TestTransferEndpointCannotSleep(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 150, 60, 60),
		serverSpec(50, 200, 0, 5), // light target: consolidation candidate
		serverSpec(50, 200, 0, 60),
	})
	cfg := quietCfg()
	cfg.MigrationLatency = 6
	cfg.Eta2 = 2 // consolidation runs often
	cfg.ConsolidateBelow = 0.2
	c := buildController(t, []int{3}, specs, power.Constant(600), cfg)
	c.Step() // transfer starts toward the light server (best fit)
	if len(c.transfers) == 0 {
		t.Skip("no transfer started; scenario needs the light target")
	}
	dst := c.transfers[0].dst
	for tick := 1; tick < 6; tick++ {
		c.Step()
		if dst.Asleep() && c.Stats.AbortedTransfers == 0 {
			t.Fatalf("tick %d: transfer destination slept mid-flight without abort", tick)
		}
	}
}

func TestAbortedTransferKeepsAppAtSource(t *testing.T) {
	c := transferScenario(t, 4)
	c.Step()
	if len(c.transfers) != 1 {
		t.Fatal("no transfer in flight")
	}
	// Force the destination down (simulating a failure the controller
	// did not orchestrate).
	dst := c.transfers[0].dst
	dst.setAsleep(true)
	c.Run(5)
	if c.Stats.AbortedTransfers != 1 {
		t.Fatalf("aborted transfers = %d, want 1", c.Stats.AbortedTransfers)
	}
	// The app must still exist exactly once, at its source.
	apps := 0
	for _, s := range c.Servers {
		apps += s.Apps.Len()
	}
	if apps != 4 {
		t.Errorf("total apps = %d, want 4 (nothing lost)", apps)
	}
	if got := c.reservedFor(dst); got != 0 {
		t.Errorf("reservation not released on abort: %v", got)
	}
}

// TestTransfersConserveAppsUnderChurn: a long noisy run with latency
// never loses or duplicates an application.
func TestTransfersConserveAppsUnderChurn(t *testing.T) {
	specs := uniqueIDs([]ServerSpec{
		serverSpec(50, 200, 120, 60, 30),
		serverSpec(50, 200, 0, 20),
		serverSpec(50, 200, 0, 40),
		serverSpec(50, 200, 0, 10),
	})
	for _, sp := range specs {
		for _, a := range sp.Apps {
			a.NoiseLambda = 15
		}
	}
	cfg := quietCfg()
	cfg.Alpha = 0.3
	cfg.MigrationLatency = 3
	cfg.Eta2 = 7
	cfg.ConsolidateBelow = 0.2
	c := buildController(t, []int{2, 2}, specs, power.Trace{420, 380, 430, 370, 410}, cfg)
	for tick := 0; tick < 200; tick++ {
		c.Step()
		apps := 0
		for _, s := range c.Servers {
			apps += s.Apps.Len()
		}
		if apps != 5 {
			t.Fatalf("tick %d: %d apps, want 5", tick, apps)
		}
		for idx, r := range c.reserved {
			if r < -tolerance {
				t.Fatalf("tick %d: negative reservation %v on server %d", tick, r, idx)
			}
		}
	}
	if math.IsNaN(c.TotalConsumed()) {
		t.Error("NaN consumption")
	}
}
