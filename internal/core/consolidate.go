package core

import "sort"

// consolidate is the Δ_A-cadence resource-consolidation pass
// (Sections IV-C and IV-E): servers whose dynamic utilization sits below
// the threshold are drained — all their applications migrated into other
// servers' budget surpluses, local targets first — and put into a deep
// sleep state, eliminating their static draw. A candidate that cannot be
// fully drained is left untouched (partial drains save nothing and cost
// migrations).
//
// Candidates are processed in ascending utilization order and candidacy
// is re-checked as demand lands on receivers, so at globally low
// utilization the pass packs many servers onto few rather than refusing
// to act because "everyone is a candidate".
func (c *Controller) consolidate(t int) {
	window := c.Cfg.ThermalWindow
	dynCap := func(s *Server) float64 { return s.Power.Peak - s.Power.Static }

	utilization := func(s *Server) float64 {
		d := dynCap(s)
		if d <= 0 {
			return 0
		}
		return c.viewDynamic(s) / d
	}

	candidates := make([]*Server, 0, len(c.Servers))
	for _, s := range c.Servers {
		if s.Asleep() || s.wakeAt >= 0 {
			continue
		}
		if c.failedPMUCount > 0 && c.underDeadPMU(s.Node) {
			continue // a dead span cannot coordinate its own drain
		}
		// Consolidation-trigger seam (policy.go): the built-in rule
		// drains servers running below the utilization threshold.
		if c.consolidateEligible(s, utilization(s)) {
			candidates = append(candidates, s)
		}
	}
	// Thermally squeezed servers first — "Willow tries to move as much
	// work away from these servers as possible due to their high
	// temperatures" (the paper's Fig. 7 discussion) — then the biggest
	// idle draw (sleeping a power-hungry-at-idle server saves the most;
	// in a heterogeneous fleet this drains conventional servers before
	// FAWN-style wimpy nodes), then emptiest first.
	sort.SliceStable(candidates, func(i, j int) bool {
		a, b := candidates[i], candidates[j]
		ca := a.Thermal.Model.SteadyStatePowerLimit()
		cb := b.Thermal.Model.SteadyStatePowerLimit()
		if ca != cb {
			return ca < cb
		}
		if a.Power.Static != b.Power.Static {
			return a.Power.Static > b.Power.Static
		}
		if da, db := c.viewDynamic(a), c.viewDynamic(b); da != db {
			return da < db
		}
		return a.Node.ServerIndex < b.Node.ServerIndex
	})

	slept := 0
	for _, victim := range candidates {
		// Re-check: earlier drains may have raised this server's load
		// above the threshold, or slept it (it cannot have slept — only
		// candidates sleep and each is visited once — but demand may have
		// landed on it).
		if victim.Asleep() || !c.consolidateEligible(victim, utilization(victim)) {
			continue
		}
		if len(c.awakeServers()) <= 1 {
			break // never consolidate the last server away
		}
		if c.viewDeficit(victim, window) > tolerance {
			continue // a struggling server is the demand pass's problem
		}
		if c.transferTouches(victim) {
			continue // an endpoint of an in-flight transfer must stay up
		}

		ws := c.workingSurpluses(window)
		delete(ws, victim.Node.ServerIndex)
		items := make([]item, 0, victim.Apps.Len())
		for _, a := range victim.Apps.Apps {
			items = append(items, item{app: a, src: victim})
		}
		c.draining[victim.Node.ServerIndex] = true
		plan, rest := c.planPlacement(items, ws, false, true)
		if len(rest) > 0 {
			delete(c.draining, victim.Node.ServerIndex)
			continue // cannot fully drain; leave it running
		}
		c.applyAssignments(plan, CauseConsolidation, t)
		delete(c.draining, victim.Node.ServerIndex)
		if c.sleepOrDefer(victim) {
			slept++
		}
	}
	if slept > 0 {
		// One budget re-derivation after the pass (not per victim):
		// sleeping servers freed their static floors for everyone else.
		c.allocateSupply(t)
	}
}
