package core

import (
	"math"
	"testing"

	"willow/internal/dist"
	"willow/internal/power"
	"willow/internal/topo"
)

// FuzzIncrementalAggregation drives a random topology through a random
// sequence of demand writes, PMU failures/repairs, and aggregation
// passes, and checks the incremental dirty-subtree aggregator against
// the full-recompute oracle bit-for-bit at every synchronization point.
// Two controllers share the op sequence; only Config.FullAggregation
// differs, so any divergence is an aggregation bug by construction.
func FuzzIncrementalAggregation(f *testing.F) {
	f.Add([]byte{2, 3, 0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{4, 2, 3, 3, 0, 9, 1, 0, 3, 0, 2, 0, 3, 0})
	f.Add([]byte{3, 3, 1, 200, 2, 200, 3, 0, 0, 50, 3, 0})

	build := func(fanout []int, full bool) *Controller {
		tree, err := topo.Build(fanout)
		if err != nil {
			return nil
		}
		specs := make([]ServerSpec, tree.NumServers())
		for i := range specs {
			specs[i] = serverSpec(50, 250, 0, 10, 20)
		}
		cfg := quietCfg()
		cfg.FullAggregation = full
		c, err := New(tree, uniqueIDs(specs), power.Constant(1e6), cfg, dist.NewSource(7))
		if err != nil {
			return nil
		}
		return c
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		// First 1-3 bytes pick the fanout: 1-3 levels, 2-4 wide each.
		levels := 1 + int(data[0])%3
		if len(data) < levels+1 {
			return
		}
		fanout := make([]int, levels)
		for i := range fanout {
			fanout[i] = 2 + int(data[1+i])%3
		}
		inc := build(fanout, false)
		full := build(fanout, true)
		if inc == nil || full == nil {
			return
		}
		pmus := make([]int, 0, len(inc.Tree.Nodes))
		for _, n := range inc.Tree.Nodes {
			if !n.IsLeaf() {
				pmus = append(pmus, n.ID)
			}
		}

		check := func(step int) {
			inc.aggregate()
			full.aggregate()
			for _, id := range pmus {
				a, b := inc.pmuCP[id], full.pmuCP[id]
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("op %d: node %d incremental CP %v != oracle %v", step, id, a, b)
				}
			}
		}

		ops := data[1+levels:]
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i]%4, int(ops[i+1])
			switch op {
			case 0: // write a server's smoothed demand
				s := inc.Servers[arg%len(inc.Servers)]
				v := float64(arg) * 1.5
				s.setCP(v)
				full.Servers[arg%len(full.Servers)].setCP(v)
			case 1: // crash a PMU (freezes its aggregate on both sides)
				id := pmus[arg%len(pmus)]
				inc.FailPMU(id)
				full.FailPMU(id)
			case 2: // repair it (forces a re-sum on the incremental side)
				id := pmus[arg%len(pmus)]
				inc.RepairPMU(id)
				full.RepairPMU(id)
			case 3: // synchronize and compare against the oracle
				check(i)
			}
		}
		// Repair everything so the final pass exercises the post-repair
		// re-sum, then compare one last time.
		for _, id := range pmus {
			inc.RepairPMU(id)
			full.RepairPMU(id)
		}
		check(len(ops))
	})
}
