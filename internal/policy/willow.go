package policy

import "willow/internal/core"

// Willow is the paper's proportional controller, expressed through the
// policy seams. Every hook declines, which routes each seam to the
// built-in arithmetic in internal/core — the same code that runs when
// core.Config.Policy is nil — so selecting "willow" is byte-identical
// to selecting nothing. It is stateless and needs no Bind.
type Willow struct{}

func (Willow) Spec() string            { return "willow" }
func (Willow) Bind(c *core.Controller) {}

func (Willow) DivideBudget(level int, budget float64, demands, caps, floors, alloc []float64) bool {
	return false
}

func (Willow) ThermalCap(s *core.Server, tobs float64) (float64, bool) {
	return 0, false
}

func (Willow) PeelTarget(s *core.Server, deficit float64) (float64, bool) {
	return 0, false
}

func (Willow) ConsolidateEligible(s *core.Server, util float64) (bool, bool) {
	return false, false
}
