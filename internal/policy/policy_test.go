package policy

import (
	"math"
	"strings"
	"testing"
)

func TestParseSpecDefaults(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"willow", defaults["willow"]},
		{"integral", defaults["integral"]},
		{"mpc", defaults["mpc"]},
		{" integral , ki=3 ", Spec{Name: "integral", Ki: 3, KiHot: 6, Sched: 4, Margin: 2}},
		{"mpc,horizon=8,lambda=2000", Spec{Name: "mpc", Horizon: 8, Iters: 12, Rate: 0.8, Lambda: 2000, Margin: 1}},
		{"integral,ki=2.5,ki-hot=9,sched=1,margin=0", Spec{Name: "integral", Ki: 2.5, KiHot: 9, Sched: 1, Margin: 0}},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"", "empty spec"},
		{"pid", "unknown policy \"pid\""},
		{"pid", "integral, mpc, willow"}, // error lists the valid names
		{"ki=3,integral", "must start with a policy name"},
		{"integral,willow", "must come first"},
		{"integral,horizon=4", "unknown key \"horizon\""},
		{"willow,ki=1", "unknown key \"ki\""},
		{"integral,ki=-1", "non-negative"},
		{"integral,ki=NaN", "non-negative"},
		{"integral,ki=+Inf", "non-negative"},
		{"integral,ki=abc", "bad value"},
		{"mpc,horizon=0", "horizon"},
		{"mpc,horizon=2.5", "horizon"},
		{"mpc,horizon=100", "horizon"},
		{"mpc,iters=0", "iters"},
		{"mpc,iters=1.5", "iters"},
		{"mpc,rate=0", "rate"},
		{"mpc,rate=5", "rate"},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.in)
		if err == nil {
			t.Errorf("ParseSpec(%q): expected error containing %q, got nil", tc.in, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseSpec(%q) error %q does not contain %q", tc.in, err, tc.wantSub)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	specs := []string{
		"willow",
		"integral",
		"mpc",
		"integral,ki=3",
		"integral,ki=0.5,ki-hot=12,sched=2,margin=5",
		"mpc,horizon=8",
		"mpc,horizon=2,iters=40,rate=1.5,lambda=100,margin=3",
	}
	for _, in := range specs {
		s, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		if got := s.String(); got != in {
			t.Errorf("ParseSpec(%q).String() = %q, want input back", in, got)
		}
		again, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", s.String(), err)
		}
		if again != s {
			t.Errorf("round trip of %q: %+v != %+v", in, again, s)
		}
	}
}

func TestStringOmitsDefaults(t *testing.T) {
	s, err := ParseSpec("mpc,horizon=4,iters=12,rate=0.8,lambda=5000,margin=1")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "mpc" {
		t.Errorf("explicit defaults should render as bare name, got %q", got)
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	want := []string{"integral", "mpc", "willow"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
}

func TestNewBuildsEachPolicy(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if got := p.Spec(); got != name {
			t.Errorf("New(%q).Spec() = %q", name, got)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("New(\"nope\") should fail")
	}
}

func TestWillowDeclinesEverything(t *testing.T) {
	var w Willow
	if ok := w.DivideBudget(0, 100, nil, nil, nil, nil); ok {
		t.Error("DivideBudget must decline")
	}
	if _, ok := w.ThermalCap(nil, 50); ok {
		t.Error("ThermalCap must decline")
	}
	if _, ok := w.PeelTarget(nil, 10); ok {
		t.Error("PeelTarget must decline")
	}
	if _, ok := w.ConsolidateEligible(nil, 0.1); ok {
		t.Error("ConsolidateEligible must decline")
	}
}

// TestMPCDivideBudgetProjection pins the equal-headroom division:
// allocations are clamp(demand+τ, floor, cap), the total meets
// min(budget, Σcaps) and never exceeds the budget.
func TestMPCDivideBudgetProjection(t *testing.T) {
	m := &MPC{spec: defaults["mpc"]}
	demands := []float64{10, 40, 20}
	caps := []float64{50, 45, 60}
	floors := []float64{5, 5, 5}
	alloc := make([]float64, 3)

	if ok := m.DivideBudget(1, 90, demands, caps, floors, alloc); !ok {
		t.Fatal("DivideBudget declined unexpectedly")
	}
	var sum float64
	for i, a := range alloc {
		sum += a
		if a < floors[i]-1e-9 || a > caps[i]+1e-9 {
			t.Errorf("alloc[%d] = %v outside [%v, %v]", i, a, floors[i], caps[i])
		}
	}
	if sum > 90+1e-6 {
		t.Errorf("allocated %v > budget 90", sum)
	}
	if sum < 90-1e-3 {
		t.Errorf("allocated %v, want ≈ budget 90 (demand+headroom should absorb it)", sum)
	}
	// Equal headroom: unclamped children share one τ above demand
	// (child 1 pins at its cap of 45, so compare children 0 and 2).
	tau0, tau2 := alloc[0]-demands[0], alloc[2]-demands[2]
	if math.Abs(tau0-tau2) > 1e-3 {
		t.Errorf("headrooms differ: %v vs %v", tau0, tau2)
	}
	if math.Abs(alloc[1]-45) > 1e-6 {
		t.Errorf("alloc[1] = %v, want pinned at cap 45", alloc[1])
	}

	// Floors above budget must fall back to the built-in waterfill.
	if ok := m.DivideBudget(1, 10, demands, caps, floors, alloc); ok {
		t.Error("DivideBudget should decline when floors exceed the budget")
	}

	// Budget beyond every cap: allocations pin at the caps.
	if ok := m.DivideBudget(1, 1000, demands, caps, floors, alloc); !ok {
		t.Fatal("DivideBudget declined unexpectedly")
	}
	for i, a := range alloc {
		if math.Abs(a-caps[i]) > 1e-6 {
			t.Errorf("alloc[%d] = %v, want cap %v", i, a, caps[i])
		}
	}
}
