// Package policy implements pluggable controller policies for Willow's
// three control seams (core.Policy): budget division across children,
// the per-server throttle cap, and the migration/consolidation
// triggers.
//
// Three policies are provided:
//
//   - "willow": the paper's proportional scheme, selected through the
//     seam interface but delegating every hook — byte-identical to
//     leaving core.Config.Policy nil.
//   - "integral": a gain-scheduled integral temperature controller in
//     the spirit of Rao et al., regulating each server toward a
//     setpoint below the thermal limit with anti-windup on the budget
//     lease floor, always inside the Eq. 3 safety envelope.
//   - "mpc": a receding-horizon optimizer over the existing RC thermal
//     model (Van Damme et al. flavor), solved each tick by a small
//     deterministic projected-gradient loop — no external solver.
//
// All policies obey the repo determinism contract: no randomness, no
// wall clock, per-server state only on the sharded throttle path —
// runs are byte-identical for any worker or shard count and across
// snapshot/restore and replication.
package policy

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"willow/internal/core"
)

// Spec is a parsed policy selection: a policy name plus its tuning
// knobs, with per-policy defaults filled in. String renders the
// canonical form ParseSpec round-trips.
type Spec struct {
	// Name selects the policy: "willow", "integral" or "mpc".
	Name string

	// Integral knobs (Name == "integral"):
	// Ki is the base integral gain (watts per °C of temperature error
	// per tick); KiHot the scheduled gain used when the error magnitude
	// reaches Sched °C; Margin the setpoint margin below the thermal
	// limit in °C (shared with mpc).
	Ki, KiHot, Sched float64

	// MPC knobs (Name == "mpc"):
	// Horizon is the lookahead in adjustment windows; Iters the
	// projected-gradient iterations per server per tick; Rate the
	// relative gradient step in (0, 2]; Lambda the weight of the
	// predicted-overshoot penalty (watts of backpressure per °C·gain).
	Horizon, Iters, Rate, Lambda float64

	// Margin is the °C of setpoint headroom below the thermal limit
	// ("margin" knob of both integral and mpc).
	Margin float64
}

// defaults holds the per-policy default knob values.
var defaults = map[string]Spec{
	"willow":   {Name: "willow"},
	"integral": {Name: "integral", Ki: 2, KiHot: 6, Sched: 4, Margin: 2},
	"mpc":      {Name: "mpc", Horizon: 4, Iters: 12, Rate: 0.8, Lambda: 5000, Margin: 1},
}

// knobOrder fixes each policy's knob set and the canonical String
// rendering order.
var knobOrder = map[string][]string{
	"willow":   nil,
	"integral": {"ki", "ki-hot", "sched", "margin"},
	"mpc":      {"horizon", "iters", "rate", "lambda", "margin"},
}

// knobField maps knob keys to their Spec fields.
var knobField = map[string]func(*Spec) *float64{
	"ki":      func(s *Spec) *float64 { return &s.Ki },
	"ki-hot":  func(s *Spec) *float64 { return &s.KiHot },
	"sched":   func(s *Spec) *float64 { return &s.Sched },
	"margin":  func(s *Spec) *float64 { return &s.Margin },
	"horizon": func(s *Spec) *float64 { return &s.Horizon },
	"iters":   func(s *Spec) *float64 { return &s.Iters },
	"rate":    func(s *Spec) *float64 { return &s.Rate },
	"lambda":  func(s *Spec) *float64 { return &s.Lambda },
}

// Names returns the valid policy names, sorted.
func Names() []string {
	names := make([]string, 0, len(defaults))
	for n := range defaults {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseSpec parses a policy specification. A spec is a comma-separated
// list whose first element is the policy name — "willow", "integral"
// or "mpc" — followed by key=value tuning overrides:
//
//	willow
//	integral,ki=3,margin=4
//	mpc,horizon=8,lambda=2000
//
// Keys per policy: integral takes ki, ki-hot (watts/°C·tick), sched
// (°C), margin (°C); mpc takes horizon (windows), iters, rate, lambda,
// margin (°C); willow takes none. Values must be non-negative and
// finite.
func ParseSpec(spec string) (Spec, error) {
	var s Spec
	fields := strings.Split(spec, ",")
	for i, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if !strings.Contains(f, "=") {
			if i != 0 {
				return s, fmt.Errorf("policy: name %q must come first in spec %q", f, spec)
			}
			def, ok := defaults[f]
			if !ok {
				return s, fmt.Errorf("policy: unknown policy %q (valid policies: %s)", f, strings.Join(Names(), ", "))
			}
			s = def
			continue
		}
		if s.Name == "" {
			return s, fmt.Errorf("policy: spec %q must start with a policy name (valid policies: %s)", spec, strings.Join(Names(), ", "))
		}
		key, val, _ := strings.Cut(f, "=")
		key = strings.TrimSpace(key)
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return s, fmt.Errorf("policy: bad value in %q: %v", f, err)
		}
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return s, fmt.Errorf("policy: value in %q must be non-negative and finite", f)
		}
		if !knobAllowed(s.Name, key) {
			valid := strings.Join(knobOrder[s.Name], ", ")
			if valid == "" {
				valid = "none"
			}
			return s, fmt.Errorf("policy: unknown key %q for policy %q (valid keys: %s)", key, s.Name, valid)
		}
		*knobField[key](&s) = v
	}
	if s.Name == "" {
		return s, fmt.Errorf("policy: empty spec (valid policies: %s)", strings.Join(Names(), ", "))
	}
	if err := s.validate(); err != nil {
		return s, err
	}
	return s, nil
}

func knobAllowed(name, key string) bool {
	for _, k := range knobOrder[name] {
		if k == key {
			return true
		}
	}
	return false
}

// validate bounds the knobs that shape per-tick work or must be
// integral.
func (s Spec) validate() error {
	if _, ok := defaults[s.Name]; !ok {
		return fmt.Errorf("policy: unknown policy %q (valid policies: %s)", s.Name, strings.Join(Names(), ", "))
	}
	if s.Name == "mpc" {
		switch {
		case s.Horizon != math.Trunc(s.Horizon) || s.Horizon < 1 || s.Horizon > 64:
			return fmt.Errorf("policy: mpc horizon %v must be an integer in [1, 64]", s.Horizon)
		case s.Iters != math.Trunc(s.Iters) || s.Iters < 1 || s.Iters > 1024:
			return fmt.Errorf("policy: mpc iters %v must be an integer in [1, 1024]", s.Iters)
		case s.Rate <= 0 || s.Rate > 2:
			return fmt.Errorf("policy: mpc rate %v outside (0, 2]", s.Rate)
		}
	}
	return nil
}

// String renders the spec canonically: the policy name followed by the
// knobs that differ from that policy's defaults, in a fixed order.
// ParseSpec(s.String()) reconstructs s exactly.
func (s Spec) String() string {
	parts := []string{s.Name}
	def := defaults[s.Name]
	for _, key := range knobOrder[s.Name] {
		field := knobField[key]
		if v := *field(&s); v != *field(&def) {
			parts = append(parts, key+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	return strings.Join(parts, ",")
}

// Build constructs a fresh policy instance from the spec. Instances
// are stateful and must be owned by exactly one controller.
func (s Spec) Build() (core.Policy, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	switch s.Name {
	case "willow":
		return Willow{}, nil
	case "integral":
		return &IntegralGS{spec: s}, nil
	case "mpc":
		return &MPC{spec: s}, nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q (valid policies: %s)", s.Name, strings.Join(Names(), ", "))
}

// New parses a spec string and builds a fresh policy instance — the
// one-call form every config layer (cluster, server.Spec, the CLIs)
// uses.
func New(spec string) (core.Policy, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.Build()
}
