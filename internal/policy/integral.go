package policy

import (
	"math"

	"willow/internal/core"
)

// IntegralGS is a gain-scheduled integral temperature controller in
// the spirit of Rao et al. (see PAPERS.md): instead of inverting the
// RC model for a one-window power limit, each server carries an
// integrator that walks its thermal cap toward the power that holds
// the observed temperature at a setpoint Margin °C below the limit.
// The gain schedule uses Ki near the setpoint and the stiffer KiHot
// once the error magnitude reaches Sched °C, so cold servers ramp up
// and overheating servers back off quickly while the steady state
// stays calm.
//
// Anti-windup is conditional integration against the budget lease
// floor: the integrator is clamped to [LeaseFloor, min(peak, Eq. 3
// envelope)], so a long cold period cannot wind the cap to absurd
// heights and a long hot period cannot wind it below the static-plus-
// fair-share power the lease layer will grant anyway. The Eq. 3 clamp
// doubles as the safety guarantee: the emitted cap never exceeds the
// envelope the built-in controller would enforce, so under robust
// sensing (TObs ≥ true temperature) the true-temperature cap holds
// wherever Willow's does.
//
// Saturation at the floor marks the server thermally squeezed; the
// migration seams then shed work earlier (PeelTarget fires at half the
// usual deficit threshold) and loosen the consolidation trigger so the
// squeezed server can be drained and slept.
//
// All state is per-server, indexed by Server.Index, and the integrator
// advances at most once per tick (guarded by lastTick), so the sharded
// consume phase may call ThermalCap concurrently for distinct servers.
type IntegralGS struct {
	spec Spec
	c    *core.Controller

	cap      []float64 // integrator state: current thermal cap, watts
	sat      []bool    // pinned at the lease floor this tick
	lastTick []int     // last tick the integrator advanced, per server
}

func (g *IntegralGS) Spec() string { return g.spec.String() }

func (g *IntegralGS) Bind(c *core.Controller) {
	g.c = c
	n := len(c.Servers)
	g.cap = make([]float64, n)
	g.sat = make([]bool, n)
	g.lastTick = make([]int, n)
	for i, s := range c.Servers {
		// Start from the built-in one-window limit at the current
		// observation so tick 0 allocates against a sane cap.
		v := s.Eq3Limit(s.TObs())
		if p := s.Power.Peak; v > p {
			v = p
		}
		g.cap[i] = v
		g.lastTick[i] = -1
	}
}

// DivideBudget declines: budget division stays proportional; this
// policy only reshapes the per-server caps the division respects.
func (g *IntegralGS) DivideBudget(level int, budget float64, demands, caps, floors, alloc []float64) bool {
	return false
}

func (g *IntegralGS) ThermalCap(s *core.Server, tobs float64) (float64, bool) {
	i := s.Index()
	env := s.Eq3Limit(tobs)
	if t := g.c.Tick(); g.lastTick[i] != t {
		g.lastTick[i] = t
		m := s.Thermal.Model
		err := (m.Limit - g.spec.Margin) - tobs
		gain := g.spec.Ki
		if math.Abs(err) >= g.spec.Sched {
			gain = g.spec.KiHot
		}
		v := g.cap[i] + gain*err
		hi := env
		if p := s.Power.Peak; p < hi {
			hi = p
		}
		floor := g.c.LeaseFloor(s)
		if floor > hi {
			floor = hi
		}
		g.sat[i] = false
		if v <= floor {
			v = floor
			g.sat[i] = err < 0 // squeezed only when actually too hot
		}
		if v > hi {
			v = hi
		}
		g.cap[i] = v
	}
	if v := g.cap[i]; v < env {
		return v, true
	}
	// The envelope moved below the integrator between updates (the
	// observation can change within a tick under resilient sensing);
	// never emit a cap above it.
	return env, true
}

// PeelTarget sheds load earlier from servers saturated at the lease
// floor: the usual rule ignores deficits up to P_min, a squeezed server
// peels anything above P_min/2.
func (g *IntegralGS) PeelTarget(s *core.Server, deficit float64) (float64, bool) {
	pmin := g.c.Cfg.PMin
	if g.sat[s.Index()] {
		if deficit <= pmin/2 {
			return 0, true
		}
		return deficit + pmin, true
	}
	if deficit <= pmin {
		return 0, true
	}
	return deficit + pmin, true
}

// ConsolidateEligible doubles the utilization threshold for squeezed
// servers so they can be drained and slept instead of idling hot at
// their floor.
func (g *IntegralGS) ConsolidateEligible(s *core.Server, util float64) (bool, bool) {
	th := g.c.Cfg.ConsolidateBelow
	if g.sat[s.Index()] && util < 2*th {
		return true, true
	}
	return util < th, true
}
