package policy

import (
	"math"

	"willow/internal/core"
)

// MPC is a one-step receding-horizon controller over the repo's own RC
// thermal model. Each tick, each server plans a power sequence
// p[0..H-1] over the next H adjustment windows by minimizing
//
//	Σ_k (p_k − peak)²  +  λ · Σ_k max(0, T_{k+1} − Tset)²
//
// subject to 0 ≤ p_k ≤ peak, where temperatures roll forward through
// the discrete RC step T_{k+1} = Ta + (T_k − Ta)·d + g·p_k with
// d = e^(−c2·W) and g = (c1/c2)(1 − d) for window length W. The first
// term pulls toward full throughput, the second charges for predicted
// overshoot of the setpoint Tset = Limit − Margin. The problem is a
// small box-constrained convex QP; a fixed-iteration projected-
// gradient loop (Iters steps at a rate normalized by a Lipschitz
// bound) solves it deterministically — no external solver, no
// randomness, identical bytes for any worker count. Warm-starting from
// last tick's plan makes a dozen iterations plenty.
//
// The applied cap is min(p_0, Eq. 3 envelope): the optimizer shapes
// behavior, the paper's one-window inversion stays as a hard safety
// clamp, so under robust sensing the true-temperature limit holds
// wherever Willow's does.
//
// The plan's tail is not wasted: sustain = min_k p_k is the power the
// server can hold all horizon long, and PeelTarget sheds load
// preemptively when planned consumption exceeds it — migrations start
// before the throttle bites instead of after.
//
// DivideBudget replaces proportional division with an equal-headroom
// projection: allocations are clamp(demand_i + τ, floor_i, cap_i) with
// τ chosen by bisection so the total meets the budget — the water-
// filling dual of the QP's demand-tracking objective at the tree
// levels above the servers.
//
// All mutable state is per-server, indexed by Server.Index, and the
// solver runs at most once per tick per server (lastTick guard), so
// the sharded consume phase may call ThermalCap concurrently for
// distinct servers.
type MPC struct {
	spec Spec
	c    *core.Controller

	h        int       // horizon, windows
	plan     []float64 // n×h warm-started power plans
	over     []float64 // n×h per-iteration overshoot scratch
	decay    []float64 // per-server d = e^(−c2·W)
	gain     []float64 // per-server g = (c1/c2)(1 − d)
	step     []float64 // per-server normalized gradient step
	applied  []float64 // cap emitted at the last solve
	sustain  []float64 // min_k p_k from the last solve
	lastTick []int
}

func (m *MPC) Spec() string { return m.spec.String() }

func (m *MPC) Bind(c *core.Controller) {
	m.c = c
	n := len(c.Servers)
	m.h = int(m.spec.Horizon)
	m.plan = make([]float64, n*m.h)
	m.over = make([]float64, n*m.h)
	m.decay = make([]float64, n)
	m.gain = make([]float64, n)
	m.step = make([]float64, n)
	m.applied = make([]float64, n)
	m.sustain = make([]float64, n)
	m.lastTick = make([]int, n)
	w := c.Cfg.ThermalWindow
	for i, s := range c.Servers {
		tm := s.Thermal.Model
		d := math.Exp(-tm.C2 * w)
		g := (tm.C1 / tm.C2) * (1 - d)
		m.decay[i] = d
		m.gain[i] = g
		// Gradient Lipschitz bound: 2 from the tracking term plus
		// 2λ‖A‖² for the penalty, with ‖A‖² ≤ g²·min(H, 1/(1−d²)) for
		// the lower-triangular prediction matrix A_{kj} = g·d^(k−j).
		reach := float64(m.h)
		if d < 1 {
			if r := 1 / (1 - d*d); r < reach {
				reach = r
			}
		}
		l := 2 + 2*m.spec.Lambda*g*g*reach
		m.step[i] = m.spec.Rate / l
		// Seed the plan at the current one-window limit so tick 0 is
		// already feasible.
		v := s.Eq3Limit(s.TObs())
		if p := s.Power.Peak; v > p {
			v = p
		}
		row := m.plan[i*m.h : (i+1)*m.h]
		for k := range row {
			row[k] = v
		}
		m.applied[i] = v
		m.sustain[i] = v
		m.lastTick[i] = -1
	}
}

func (m *MPC) ThermalCap(s *core.Server, tobs float64) (float64, bool) {
	i := s.Index()
	env := s.Eq3Limit(tobs)
	if t := m.c.Tick(); m.lastTick[i] != t {
		m.lastTick[i] = t
		m.solve(s, i, tobs)
	}
	v := m.applied[i]
	if v > env {
		v = env
	}
	return v, true
}

// solve runs the projected-gradient loop for server i from observation
// tobs, updating the warm-started plan, applied cap and sustain floor.
func (m *MPC) solve(s *core.Server, i int, tobs float64) {
	tm := s.Thermal.Model
	d, g, step := m.decay[i], m.gain[i], m.step[i]
	peak := s.Power.Peak
	tset := tm.Limit - m.spec.Margin
	p := m.plan[i*m.h : (i+1)*m.h]
	hb := m.over[i*m.h : (i+1)*m.h]
	lam := m.spec.Lambda

	for it := 0; it < int(m.spec.Iters); it++ {
		// Forward pass: roll the RC model, record setpoint overshoot.
		t := tobs
		for k := 0; k < m.h; k++ {
			t = tm.Ambient + (t-tm.Ambient)*d + g*p[k]
			if ov := t - tset; ov > 0 {
				hb[k] = ov
			} else {
				hb[k] = 0
			}
		}
		// Backward pass: acc_k = Σ_{j≥k} h_j·d^(j−k) accumulates each
		// overshoot's sensitivity to p_k in O(H); step and project.
		acc := 0.0
		for k := m.h - 1; k >= 0; k-- {
			acc = hb[k] + acc*d
			grad := 2*(p[k]-peak) + 2*lam*g*acc
			v := p[k] - step*grad
			if v < 0 {
				v = 0
			} else if v > peak {
				v = peak
			}
			p[k] = v
		}
	}
	m.applied[i] = p[0]
	sus := p[0]
	for k := 1; k < m.h; k++ {
		if p[k] < sus {
			sus = p[k]
		}
	}
	m.sustain[i] = sus
}

// DivideBudget replaces the proportional rounds with an equal-headroom
// projection: x_i = clamp(demand_i + τ, floor_i, cap_i), with τ found
// by bisection so Σx meets min(budget, Σcaps). Falls back to the
// built-in waterfill when even the floors exceed the budget.
func (m *MPC) DivideBudget(level int, budget float64, demands, caps, floors, alloc []float64) bool {
	var capSum, floorSum float64
	for i := range caps {
		c := caps[i]
		if math.IsInf(c, 1) || c > 1e18 {
			c = 1e18 // keep the bisection bracket finite
		}
		capSum += c
		floorSum += floors[i]
	}
	if floorSum > budget {
		return false
	}
	target := budget
	if capSum < target {
		target = capSum
	}
	// Σ clamp(d_i+τ, f_i, c_i) is monotone in τ; bracket τ so the ends
	// pin every term at its floor / its cap.
	lo, hi := 0.0, 0.0
	for i := range demands {
		if v := floors[i] - demands[i]; v < lo {
			lo = v
		}
		c := caps[i]
		if c > 1e18 {
			c = 1e18
		}
		if v := c - demands[i]; v > hi {
			hi = v
		}
	}
	sum := func(tau float64) float64 {
		var s float64
		for i := range demands {
			v := demands[i] + tau
			if v < floors[i] {
				v = floors[i]
			}
			if v > caps[i] {
				v = caps[i]
			}
			s += v
		}
		return s
	}
	for it := 0; it < 64; it++ {
		mid := (lo + hi) / 2
		if sum(mid) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	// lo is the largest bracketed τ with Σ ≤ target: never over-commit
	// the budget (core clamps again regardless).
	for i := range demands {
		v := demands[i] + lo
		if v < floors[i] {
			v = floors[i]
		}
		if v > caps[i] {
			v = caps[i]
		}
		alloc[i] = v
	}
	return true
}

// PeelTarget peels preemptively: beyond the current deficit, any
// planned consumption above the horizon-sustainable power counts as
// deficit now, so migrations start before the predicted throttle
// lands.
func (m *MPC) PeelTarget(s *core.Server, deficit float64) (float64, bool) {
	if s.Asleep() {
		return 0, true
	}
	want := s.TP()
	if cp := s.CP(); cp < want {
		want = cp
	}
	def := deficit
	if extra := want - m.sustain[s.Index()]; extra > 0 {
		def += extra
	}
	pmin := m.c.Cfg.PMin
	if def <= pmin {
		return 0, true
	}
	return def + pmin, true
}

// ConsolidateEligible declines — the built-in utilization threshold
// already composes with the predictive peel above.
func (m *MPC) ConsolidateEligible(s *core.Server, util float64) (bool, bool) {
	return false, false
}
