package policy

import "testing"

// FuzzPolicySpec drives ParseSpec with arbitrary input: it must never
// panic, and every accepted spec must render a canonical String that
// re-parses to the identical Spec (round-trip stability is what lets
// snapshots and replicas carry policy specs as plain strings).
func FuzzPolicySpec(f *testing.F) {
	f.Add("willow")
	f.Add("integral")
	f.Add("mpc")
	f.Add("integral,ki=3,ki-hot=9,sched=2,margin=1")
	f.Add("mpc,horizon=8,iters=20,rate=1,lambda=250,margin=2")
	f.Add("integral,ki=1e300")
	f.Add("mpc,horizon=2.5")
	f.Add(",,willow,,")
	f.Add("ki=3")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpec(spec)
		if err != nil {
			return
		}
		canon := s.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, spec, err)
		}
		if again != s {
			t.Fatalf("round trip of %q via %q: %+v != %+v", spec, canon, again, s)
		}
		if again.String() != canon {
			t.Fatalf("String not stable: %q then %q", canon, again.String())
		}
		if _, err := s.Build(); err != nil {
			t.Fatalf("accepted spec %q does not build: %v", spec, err)
		}
	})
}
