package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"willow/internal/dist"
)

// paperSim is the simulation-side model of Section V-B2: c1=0.08, c2=0.05,
// Ta=25 °C, limit 70 °C.
var paperSim = Model{C1: 0.08, C2: 0.05, Ambient: 25, Limit: 70}

// paperTestbed is the experimentally fitted model of Section V-C2:
// c1=0.2, c2=0.008, Ta=25 °C.
var paperTestbed = Model{C1: 0.2, C2: 0.008, Ambient: 25, Limit: 70}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		m    Model
		ok   bool
	}{
		{"paper sim", paperSim, true},
		{"paper testbed", paperTestbed, true},
		{"zero c1", Model{C1: 0, C2: 0.05, Ambient: 25, Limit: 70}, false},
		{"negative c2", Model{C1: 0.08, C2: -1, Ambient: 25, Limit: 70}, false},
		{"limit below ambient", Model{C1: 0.08, C2: 0.05, Ambient: 80, Limit: 70}, false},
		// Regression: NaN fails every ordered comparison, so non-finite
		// constants used to slip through the positivity checks.
		{"NaN c1", Model{C1: math.NaN(), C2: 0.05, Ambient: 25, Limit: 70}, false},
		{"NaN c2", Model{C1: 0.08, C2: math.NaN(), Ambient: 25, Limit: 70}, false},
		{"NaN ambient", Model{C1: 0.08, C2: 0.05, Ambient: math.NaN(), Limit: 70}, false},
		{"NaN limit", Model{C1: 0.08, C2: 0.05, Ambient: 25, Limit: math.NaN()}, false},
		{"inf c1", Model{C1: math.Inf(1), C2: 0.05, Ambient: 25, Limit: 70}, false},
		{"inf limit", Model{C1: 0.08, C2: 0.05, Ambient: 25, Limit: math.Inf(1)}, false},
		{"-inf ambient", Model{C1: 0.08, C2: 0.05, Ambient: math.Inf(-1), Limit: 70}, false},
	}
	for _, c := range cases {
		err := c.m.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestStepZeroPowerCoolsTowardAmbient(t *testing.T) {
	temp := 60.0
	for i := 0; i < 500; i++ {
		next := paperSim.Step(temp, 0, 1)
		if next > temp {
			t.Fatalf("unpowered device heated up: %v -> %v", temp, next)
		}
		temp = next
	}
	if math.Abs(temp-paperSim.Ambient) > 0.01 {
		t.Errorf("after long cooling, T = %v, want ~ambient %v", temp, paperSim.Ambient)
	}
}

func TestStepHeatsTowardSteadyState(t *testing.T) {
	const p = 20.0
	want := paperSim.SteadyState(p)
	temp := paperSim.Ambient
	for i := 0; i < 2000; i++ {
		temp = paperSim.Step(temp, p, 1)
	}
	if math.Abs(temp-want) > 0.01 {
		t.Errorf("steady temp = %v, want %v", temp, want)
	}
}

func TestStepMatchesEulerIntegration(t *testing.T) {
	// The closed form must agree with fine-grained forward-Euler
	// integration of dT/dt = c1 P − c2 (T − Ta).
	m := paperSim
	t0, p, dt := 40.0, 30.0, 5.0
	const substeps = 200000
	h := dt / substeps
	temp := t0
	for i := 0; i < substeps; i++ {
		temp += h * (m.C1*p - m.C2*(temp-m.Ambient))
	}
	got := m.Step(t0, p, dt)
	if math.Abs(got-temp) > 1e-3 {
		t.Errorf("closed form %v vs Euler %v", got, temp)
	}
}

func TestStepIsAdditiveInTime(t *testing.T) {
	// Stepping dt then dt' must equal stepping dt+dt' at constant power.
	m := paperTestbed
	t0, p := 33.0, 120.0
	a := m.Step(m.Step(t0, p, 3), p, 4)
	b := m.Step(t0, p, 7)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("two-step %v != one-step %v", a, b)
	}
}

func TestPowerLimitKeepsTemperatureAtLimit(t *testing.T) {
	// Holding exactly PowerLimit for the window must land exactly on the
	// thermal limit (when starting below it).
	for _, t0 := range []float64{25, 40, 55, 69.9} {
		p := paperSim.PowerLimit(t0, 1)
		end := paperSim.Step(t0, p, 1)
		if math.Abs(end-paperSim.Limit) > 1e-6 {
			t.Errorf("t0=%v: temp after window at P_limit = %v, want %v", t0, end, paperSim.Limit)
		}
	}
}

func TestPowerLimitZeroWhenOverheated(t *testing.T) {
	// A device starting above its limit cannot shed heat fast enough in a
	// short window, so its power budget must be clamped to zero.
	p := paperSim.PowerLimit(90, 0.1)
	if p != 0 {
		t.Errorf("PowerLimit at 90 °C over a short window = %v, want 0", p)
	}
}

func TestPowerLimitInfiniteForZeroWindow(t *testing.T) {
	if p := paperSim.PowerLimit(30, 0); !math.IsInf(p, 1) {
		t.Errorf("PowerLimit over zero window = %v, want +Inf", p)
	}
}

func TestPowerLimitDecreasesWithStartTemp(t *testing.T) {
	prev := math.Inf(1)
	for t0 := 25.0; t0 <= 70; t0 += 5 {
		p := paperSim.PowerLimit(t0, 1)
		if p > prev {
			t.Fatalf("PowerLimit not monotone: P(%v)=%v > P(%v)=%v", t0, p, t0-5, prev)
		}
		prev = p
	}
}

// TestFig4PaperConstants reproduces the anchor points of Fig. 4: with
// c1=0.08 and c2=0.05 the power limit presented by a cold (ambient) server
// at Ta=25 °C is around 450 W, and a server already at 70 °C in a 45 °C
// ambient presents almost zero surplus.
func TestFig4PaperConstants(t *testing.T) {
	// The paper's figure fixes an adjustment window; the 450 W anchor pins
	// it at Δs ≈ 1.29 time units (see fig4 experiment).
	const window = 1.29
	cold := paperSim.PowerLimit(paperSim.Ambient, window)
	if math.Abs(cold-450) > 5 {
		t.Errorf("cold-start power limit = %v W, want ~450 W", cold)
	}
	hot := Model{C1: 0.08, C2: 0.05, Ambient: 45, Limit: 70}
	atLimit := hot.PowerLimit(70, window)
	if atLimit > 20 {
		t.Errorf("power limit at thermal limit in 45 °C ambient = %v W, want near zero", atLimit)
	}
}

func TestSteadyStatePowerLimit(t *testing.T) {
	p := paperSim.SteadyStatePowerLimit()
	want := paperSim.C2 * (paperSim.Limit - paperSim.Ambient) / paperSim.C1
	if math.Abs(p-want) > 1e-12 {
		t.Errorf("SteadyStatePowerLimit = %v, want %v", p, want)
	}
	// Holding that power forever must converge to exactly the limit.
	if ss := paperSim.SteadyState(p); math.Abs(ss-paperSim.Limit) > 1e-9 {
		t.Errorf("steady state at limit power = %v, want %v", ss, paperSim.Limit)
	}
}

func TestTimeToLimit(t *testing.T) {
	m := paperSim
	// Sustainable power: never reaches the limit.
	if v := m.TimeToLimit(25, m.SteadyStatePowerLimit()*0.9); !math.IsInf(v, 1) {
		t.Errorf("TimeToLimit under sustainable power = %v, want +Inf", v)
	}
	// Already over the limit.
	if v := m.TimeToLimit(75, 10); v != 0 {
		t.Errorf("TimeToLimit when already over = %v, want 0", v)
	}
	// Over-limit power: stepping for the returned time must land on the
	// limit.
	p := m.SteadyStatePowerLimit() * 3
	tt := m.TimeToLimit(25, p)
	if math.IsInf(tt, 1) || tt <= 0 {
		t.Fatalf("TimeToLimit = %v, want finite positive", tt)
	}
	end := m.Step(25, p, tt)
	if math.Abs(end-m.Limit) > 1e-6 {
		t.Errorf("temp after TimeToLimit = %v, want %v", end, m.Limit)
	}
}

func TestStateLifecycle(t *testing.T) {
	s := NewState(paperSim)
	if s.T != paperSim.Ambient {
		t.Errorf("new state at %v °C, want ambient %v", s.T, paperSim.Ambient)
	}
	if s.OverLimit() {
		t.Error("new state reports over limit")
	}
	s.Advance(400, 10)
	if s.T <= paperSim.Ambient {
		t.Error("temperature did not rise under load")
	}
	if got := s.Headroom(); math.Abs(got-(paperSim.Limit-s.T)) > 1e-12 {
		t.Errorf("Headroom = %v, want %v", got, paperSim.Limit-s.T)
	}
	s.T = paperSim.Limit + 1
	if !s.OverLimit() {
		t.Error("state at limit+1 does not report over limit")
	}
}

func TestCalibrateRecoversConstants(t *testing.T) {
	// Generate a noiseless trace from known constants and check the fit
	// recovers them almost exactly.
	for _, m := range []Model{paperSim, paperTestbed} {
		src := dist.NewSource(99)
		var samples []Sample
		temp := m.Ambient
		for i := 0; i < 200; i++ {
			p := src.Uniform(0, 300)
			const dt = 0.5
			next := m.Step(temp, p, dt)
			// The fit uses the discretised ODE, so feed it the true mean
			// derivative over a short step.
			samples = append(samples, Sample{T0: temp, T1: next, P: p, Dt: dt})
			temp = next
		}
		c1, c2, err := Calibrate(samples, m.Ambient)
		if err != nil {
			t.Fatalf("Calibrate: %v", err)
		}
		if math.Abs(c1-m.C1)/m.C1 > 0.05 {
			t.Errorf("fitted c1 = %v, want ~%v", c1, m.C1)
		}
		if math.Abs(c2-m.C2)/m.C2 > 0.05 {
			t.Errorf("fitted c2 = %v, want ~%v", c2, m.C2)
		}
		if rmse := CalibrationError(samples, m.Ambient, c1, c2); rmse > 0.5 {
			t.Errorf("calibration RMSE = %v, want small", rmse)
		}
	}
}

func TestCalibrateRejectsTinyTraces(t *testing.T) {
	if _, _, err := Calibrate([]Sample{{T0: 25, T1: 26, P: 10, Dt: 1}}, 25); err == nil {
		t.Error("Calibrate accepted a single sample")
	}
}

func TestCalibrateRejectsDegenerateTrace(t *testing.T) {
	// All samples at ambient with identical power: c2 is unobservable.
	samples := []Sample{
		{T0: 25, T1: 25.8, P: 10, Dt: 1},
		{T0: 25, T1: 25.8, P: 10, Dt: 1},
		{T0: 25, T1: 25.8, P: 10, Dt: 1},
	}
	if _, _, err := Calibrate(samples, 25); err == nil {
		t.Error("Calibrate accepted a degenerate trace")
	}
}

func TestCalibrateRejectsBadDt(t *testing.T) {
	samples := []Sample{
		{T0: 25, T1: 26, P: 10, Dt: 1},
		{T0: 26, T1: 27, P: 20, Dt: 0},
	}
	if _, _, err := Calibrate(samples, 25); err == nil {
		t.Error("Calibrate accepted a sample with Dt=0")
	}
}

// Property: temperature is always bounded between min(T0, Ta) and
// max(T0, steady state) for any non-negative power and window.
func TestStepBoundsQuick(t *testing.T) {
	f := func(rawT0, rawP, rawDt uint16) bool {
		m := paperSim
		t0 := 20 + float64(rawT0%100)      // 20..119 °C
		p := float64(rawP % 1000)          // 0..999 W
		dt := 0.01 + float64(rawDt%500)/10 // 0.01..50
		got := m.Step(t0, p, dt)
		lo := math.Min(t0, m.Ambient) - 1e-9
		hi := math.Max(t0, m.SteadyState(p)) + 1e-9
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: running at PowerLimit never overshoots the limit, for any
// starting temperature at or below the limit.
func TestPowerLimitNeverOvershootsQuick(t *testing.T) {
	f := func(rawT0, rawDt uint16) bool {
		m := paperSim
		t0 := m.Ambient + float64(rawT0%46) // 25..70 °C
		dt := 0.1 + float64(rawDt%100)/10   // 0.1..10
		p := m.PowerLimit(t0, dt)
		if math.IsInf(p, 1) {
			return true
		}
		return m.Step(t0, p, dt) <= m.Limit+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkStep(b *testing.B) {
	m := paperSim
	temp := 40.0
	for i := 0; i < b.N; i++ {
		temp = m.Step(temp, 100, 1)
		if temp > 71 {
			temp = 40
		}
	}
}

func BenchmarkPowerLimit(b *testing.B) {
	m := paperSim
	for i := 0; i < b.N; i++ {
		m.PowerLimit(40+float64(i%30), 1)
	}
}

func BenchmarkCalibrate(b *testing.B) {
	src := dist.NewSource(1)
	m := paperSim
	var samples []Sample
	temp := m.Ambient
	for i := 0; i < 500; i++ {
		p := src.Uniform(0, 300)
		next := m.Step(temp, p, 0.5)
		samples = append(samples, Sample{T0: temp, T1: next, P: p, Dt: 0.5})
		temp = next
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Calibrate(samples, m.Ambient); err != nil {
			b.Fatal(err)
		}
	}
}
