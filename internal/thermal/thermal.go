// Package thermal implements the energy–temperature relationship of
// Willow (Section III-A of the paper).
//
// A component's temperature follows the first-order linear ODE
//
//	dT/dt = c1·P(t) − c2·(T(t) − Ta)
//
// where P is power draw, Ta the ambient temperature and c1, c2 device
// thermal constants (heating gain and cooling rate). For constant power
// over a window Δ the equation has the closed form used throughout
// Willow's control decisions (the paper's Eq. 2/3):
//
//	T(t+Δ) = Ta + (T(t) − Ta)·e^(−c2·Δ) + (c1·P/c2)·(1 − e^(−c2·Δ))
//
// Inverting it for P yields PowerLimit: the largest constant power that
// keeps the component at or below its thermal limit through the next
// adjustment window. That power cap is the hard constraint Willow's
// supply-side allocation enforces per node.
//
// The package also provides least-squares calibration of (c1, c2) from a
// (power, temperature) trace, reproducing the paper's parameter
// estimation experiments (Fig. 4 for the simulation constants, Fig. 14
// for the testbed).
package thermal

import (
	"errors"
	"fmt"
	"math"
)

// Model captures the thermal characteristics of one device.
type Model struct {
	C1      float64 // heating constant (°C per watt per time unit)
	C2      float64 // cooling constant (fraction of excess temperature shed per time unit)
	Ambient float64 // Ta, °C
	Limit   float64 // T_limit, °C
}

// Validate reports whether the model's constants are physically sensible.
// Non-finite constants are rejected explicitly: NaN fails every ordered
// comparison, so a NaN C1 would otherwise sail through the positivity
// checks and poison every downstream Step/PowerLimit computation.
func (m Model) Validate() error {
	for _, f := range [...]struct {
		name string
		v    float64
	}{{"c1", m.C1}, {"c2", m.C2}, {"ambient", m.Ambient}, {"limit", m.Limit}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("thermal: %s must be finite, got %v", f.name, f.v)
		}
	}
	switch {
	case m.C1 <= 0:
		return fmt.Errorf("thermal: c1 must be positive, got %v", m.C1)
	case m.C2 <= 0:
		return fmt.Errorf("thermal: c2 must be positive, got %v", m.C2)
	case m.Limit <= m.Ambient:
		return fmt.Errorf("thermal: limit %v °C must exceed ambient %v °C", m.Limit, m.Ambient)
	}
	return nil
}

// Step returns the temperature after holding constant power p for dt time
// units starting from temperature t0 (closed-form Eq. 2).
func (m Model) Step(t0, p, dt float64) float64 {
	decay := math.Exp(-m.C2 * dt)
	return m.Ambient + (t0-m.Ambient)*decay + (m.C1*p/m.C2)*(1-decay)
}

// SteadyState returns the temperature the device converges to if power p
// is held forever: Ta + c1·p/c2.
func (m Model) SteadyState(p float64) float64 {
	return m.Ambient + m.C1*p/m.C2
}

// SteadyStatePowerLimit returns the largest constant power sustainable
// forever without crossing the thermal limit.
func (m Model) SteadyStatePowerLimit() float64 {
	return m.C2 * (m.Limit - m.Ambient) / m.C1
}

// PowerLimit returns the maximum constant power over the next window of dt
// time units that keeps the end-of-window temperature at or below the
// thermal limit, starting from temperature t0 (the paper's Eq. 3 solved
// for P). The result is clamped to be non-negative: a device already over
// its limit gets a zero budget and must cool.
func (m Model) PowerLimit(t0, dt float64) float64 {
	decay := math.Exp(-m.C2 * dt)
	den := m.C1 * (1 - decay)
	if den <= 0 {
		// dt == 0 (or pathological constants): no heating can occur within
		// the window, so the thermal constraint cannot bind.
		return math.Inf(1)
	}
	p := m.C2 * (m.Limit - m.Ambient - (t0-m.Ambient)*decay) / den
	if p < 0 {
		return 0
	}
	return p
}

// TimeToLimit returns how long the device can hold power p before reaching
// its thermal limit, starting from t0. It returns +Inf when the steady
// state under p stays below the limit, and 0 when t0 already exceeds it.
func (m Model) TimeToLimit(t0, p float64) float64 {
	if t0 >= m.Limit {
		return 0
	}
	ss := m.SteadyState(p)
	if ss <= m.Limit {
		return math.Inf(1)
	}
	// Solve Ta + (t0-Ta)e^(-c2 t) + (ss-Ta)(1-e^(-c2 t)) = Limit for t.
	// e^(-c2 t) = (ss - Limit) / (ss - t0)
	return -math.Log((ss-m.Limit)/(ss-t0)) / m.C2
}

// State tracks the evolving temperature of one device under a Model.
type State struct {
	Model Model
	T     float64 // current temperature, °C

	// memoDt / memoDecay cache e^(−c2·dt) for the last dt Advance saw.
	// Simulations advance every device by the same fixed dt every tick,
	// so the transcendental is paid once per device instead of once per
	// device-tick; the cached factor is the exact value Step would
	// recompute, keeping Advance bit-identical to the uncached form.
	memoDt, memoDecay float64
	hasMemo           bool
}

// NewState returns a State starting at the ambient temperature, the
// temperature an unpowered device settles to.
func NewState(m Model) *State {
	return &State{Model: m, T: m.Ambient}
}

// Advance applies power p for dt time units and returns the new
// temperature.
func (s *State) Advance(p, dt float64) float64 {
	if !s.hasMemo || dt != s.memoDt {
		s.memoDt = dt
		s.memoDecay = math.Exp(-s.Model.C2 * dt)
		s.hasMemo = true
	}
	decay := s.memoDecay
	m := s.Model
	s.T = m.Ambient + (s.T-m.Ambient)*decay + (m.C1*p/m.C2)*(1-decay)
	return s.T
}

// OverLimit reports whether the device currently exceeds its thermal limit
// by more than a hair of floating-point slack.
func (s *State) OverLimit() bool {
	return s.T > s.Model.Limit+1e-9
}

// Headroom returns the temperature margin to the limit (negative when
// over the limit).
func (s *State) Headroom() float64 { return s.Model.Limit - s.T }

// Sample is one observation of a calibration trace: the power held during
// a step of length Dt that moved the device from T0 to T1.
type Sample struct {
	T0, T1 float64 // temperature at the start and end of the step, °C
	P      float64 // constant power during the step, watts
	Dt     float64 // step length, time units
}

// Calibrate estimates (c1, c2) from a trace by linear least squares on the
// discretised ODE:
//
//	(T1 − T0)/Dt ≈ c1·P − c2·(T0 − Ta)
//
// which is linear in the unknowns (c1, c2). This mirrors how the paper
// fits the constants from the testbed's power analyzer + CPU sensor data
// (Section V-C2, Fig. 14). At least two samples with non-degenerate
// (P, T0−Ta) variation are required.
func Calibrate(samples []Sample, ambient float64) (c1, c2 float64, err error) {
	if len(samples) < 2 {
		return 0, 0, errors.New("thermal: calibration needs at least 2 samples")
	}
	// Normal equations for y = c1·x1 − c2·x2 with
	// y = ΔT/Dt, x1 = P, x2 = T0 − Ta.
	var s11, s12, s22, s1y, s2y float64
	for _, sm := range samples {
		if sm.Dt <= 0 {
			return 0, 0, fmt.Errorf("thermal: sample has non-positive Dt %v", sm.Dt)
		}
		y := (sm.T1 - sm.T0) / sm.Dt
		x1 := sm.P
		x2 := sm.T0 - ambient
		s11 += x1 * x1
		s12 += x1 * x2
		s22 += x2 * x2
		s1y += x1 * y
		s2y += x2 * y
	}
	det := s11*s22 - s12*s12
	if math.Abs(det) < 1e-12 {
		return 0, 0, errors.New("thermal: calibration trace is degenerate (power and temperature excess are collinear)")
	}
	// Solve [s11 s12; s12 s22] [a; b] = [s1y; s2y] where a = c1, b = −c2.
	a := (s1y*s22 - s2y*s12) / det
	b := (s11*s2y - s12*s1y) / det
	return a, -b, nil
}

// CalibrationError returns the root-mean-square error of the fitted
// constants against the trace, in °C per time unit. Useful for judging
// whether a fit is trustworthy.
func CalibrationError(samples []Sample, ambient, c1, c2 float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, sm := range samples {
		pred := c1*sm.P - c2*(sm.T0-ambient)
		got := (sm.T1 - sm.T0) / sm.Dt
		d := pred - got
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(samples)))
}
