package thermal_test

import (
	"fmt"

	"willow/internal/thermal"
)

// Example shows the core control-relevant use of the thermal model: ask
// how much power a server may draw over the next adjustment window
// without crossing its temperature limit (the paper's Eq. 3), then
// integrate the temperature forward under that power.
func Example() {
	m := thermal.Model{C1: 0.005, C2: 0.05, Ambient: 25, Limit: 70}
	state := thermal.NewState(m)

	cap := m.PowerLimit(state.T, 4)
	fmt.Printf("cold-start cap: %.0f W\n", cap)

	// Run hot for a while; the cap tightens toward the sustainable
	// limit as the server warms.
	for i := 0; i < 100; i++ {
		state.Advance(450, 1)
	}
	fmt.Printf("temperature after load: %.1f °C\n", state.T)
	fmt.Printf("warm cap: %.0f W\n", m.PowerLimit(state.T, 4))
	fmt.Printf("sustainable forever: %.0f W\n", m.SteadyStatePowerLimit())

	// Output:
	// cold-start cap: 2482 W
	// temperature after load: 69.7 °C
	// warm cap: 464 W
	// sustainable forever: 450 W
}

// ExampleCalibrate fits the thermal constants from a (power,
// temperature) trace, the procedure behind the paper's Fig. 14.
func ExampleCalibrate() {
	true_ := thermal.Model{C1: 0.2, C2: 0.008, Ambient: 25, Limit: 70}
	var samples []thermal.Sample
	temp := 25.0
	for i := 0; i < 60; i++ {
		p := float64(50 + 3*i) // a rising power staircase
		next := true_.Step(temp, p, 0.5)
		samples = append(samples, thermal.Sample{T0: temp, T1: next, P: p, Dt: 0.5})
		temp = next
	}
	c1, c2, err := thermal.Calibrate(samples, true_.Ambient)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fitted c1=%.3f c2=%.4f (paper's testbed: 0.2, 0.008)\n", c1, c2)

	// Output:
	// fitted c1=0.200 c2=0.0080 (paper's testbed: 0.2, 0.008)
}
