package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParseSpec parses a chaos specification string into the rate fields of
// a Schedule; the topology fields (Ticks, Servers, PMUs, Racks) are the
// caller's to fill (see cluster.ChaosTopology).
//
// A spec is a comma-separated list whose first element may be a preset
// — "light", "medium" or "heavy", or their sensor-fault counterparts
// "sensor-light", "sensor-medium" and "sensor-heavy" — followed by
// key=value overrides:
//
//	light
//	medium,pmu-mtbf=400
//	server-mtbf=250,server-mttr=20,loss-every=500,report-loss=0.3
//	heavy,sensor-mtbf=150,sensor-bias=6
//
// Keys (all means in ticks): server-mtbf, server-mttr, pmu-mtbf,
// pmu-mttr, burst-every, burst-mttr, loss-every, loss-ticks,
// report-loss, budget-loss, sensor-mtbf, sensor-mttr, sensor-noise,
// sensor-bias, sensor-drift, sensor-stuck, sensor-dropout.
func ParseSpec(spec string) (Schedule, error) {
	var s Schedule
	fields := strings.Split(spec, ",")
	for i, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if !strings.Contains(f, "=") {
			if i != 0 {
				return s, fmt.Errorf("chaos: preset %q must come first in spec %q", f, spec)
			}
			preset, ok := presets[f]
			if !ok {
				return s, fmt.Errorf("chaos: unknown preset %q (valid presets: %s)", f, strings.Join(Names(), ", "))
			}
			s = preset
			continue
		}
		key, val, _ := strings.Cut(f, "=")
		key = strings.TrimSpace(key)
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return s, fmt.Errorf("chaos: bad value in %q: %v", f, err)
		}
		if v < 0 {
			return s, fmt.Errorf("chaos: negative value in %q", f)
		}
		field, ok := specKeys[key]
		if !ok {
			return s, fmt.Errorf("chaos: unknown key %q in spec %q", key, spec)
		}
		*field(&s) = v
	}
	return s, nil
}

// presets are the named fault-intensity levels, calibrated for runs of
// a few hundred to a few thousand ticks over tens of servers.
var presets = map[string]Schedule{
	"light": {
		ServerMTBF: 600, ServerMTTR: 40,
		PMUMTBF: 2000, PMUMTTR: 60,
	},
	"medium": {
		ServerMTBF: 300, ServerMTTR: 30,
		PMUMTBF: 900, PMUMTTR: 50,
		BurstEvery: 1500, BurstMTTR: 40,
		LossEvery: 800, LossTicks: 60,
		ReportLoss: 0.2, BudgetLoss: 0.2,
	},
	"heavy": {
		ServerMTBF: 150, ServerMTTR: 25,
		PMUMTBF: 400, PMUMTTR: 40,
		BurstEvery: 600, BurstMTTR: 40,
		LossEvery: 400, LossTicks: 80,
		ReportLoss: 0.35, BudgetLoss: 0.35,
	},
	// The sensor-* presets corrupt only telemetry (sensor.Presets rates):
	// hardware and control links stay up, instruments lie. Compose with
	// the machine-fault presets via overrides, e.g.
	// "medium,sensor-mtbf=220,sensor-bias=5".
	"sensor-light": {
		SensorMTBF: 400, SensorMTTR: 50,
		SensorNoise: 1.5, SensorBias: 4,
	},
	"sensor-medium": {
		SensorMTBF: 220, SensorMTTR: 80,
		SensorNoise: 2, SensorBias: 5, SensorDrift: 0.3,
		SensorStuck: 1,
	},
	"sensor-heavy": {
		SensorMTBF: 120, SensorMTTR: 120,
		SensorNoise: 2.5, SensorBias: 8, SensorDrift: 0.5,
		SensorStuck: 1, SensorDropout: 1,
	},
}

// Names returns the valid preset names, sorted — the list surfaced by
// unknown-preset errors and the CLIs' usage text.
func Names() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// specKeys maps spec keys to their Schedule fields.
var specKeys = map[string]func(*Schedule) *float64{
	"server-mtbf": func(s *Schedule) *float64 { return &s.ServerMTBF },
	"server-mttr": func(s *Schedule) *float64 { return &s.ServerMTTR },
	"pmu-mtbf":    func(s *Schedule) *float64 { return &s.PMUMTBF },
	"pmu-mttr":    func(s *Schedule) *float64 { return &s.PMUMTTR },
	"burst-every": func(s *Schedule) *float64 { return &s.BurstEvery },
	"burst-mttr":  func(s *Schedule) *float64 { return &s.BurstMTTR },
	"loss-every":  func(s *Schedule) *float64 { return &s.LossEvery },
	"loss-ticks":  func(s *Schedule) *float64 { return &s.LossTicks },
	"report-loss": func(s *Schedule) *float64 { return &s.ReportLoss },
	"budget-loss": func(s *Schedule) *float64 { return &s.BudgetLoss },

	"sensor-mtbf":    func(s *Schedule) *float64 { return &s.SensorMTBF },
	"sensor-mttr":    func(s *Schedule) *float64 { return &s.SensorMTTR },
	"sensor-noise":   func(s *Schedule) *float64 { return &s.SensorNoise },
	"sensor-bias":    func(s *Schedule) *float64 { return &s.SensorBias },
	"sensor-drift":   func(s *Schedule) *float64 { return &s.SensorDrift },
	"sensor-stuck":   func(s *Schedule) *float64 { return &s.SensorStuck },
	"sensor-dropout": func(s *Schedule) *float64 { return &s.SensorDropout },
}
