// Package chaos is a deterministic fault-schedule generator: it expands
// a stochastic failure model — server and PMU crash/repair processes,
// correlated rack-level crash bursts, control-link loss windows,
// temperature-sensor fault windows — into an explicit, sorted event
// plan that a simulation harness schedules at fixed ticks (see
// cluster.ApplyChaos).
//
// Determinism contract: Expand is a pure function of (Schedule, seed).
// All randomness flows through forked internal/dist streams in a fixed
// order, so the same seed yields the identical Plan on every machine
// and under every worker count — chaos runs replicate byte-for-byte
// under exp.RunMany exactly like fault-free ones.
package chaos

import (
	"fmt"
	"math"
	"sort"

	"willow/internal/dist"
	"willow/internal/sensor"
)

// Schedule is the stochastic fault model. The topology fields (Ticks,
// Servers, PMUs, Racks) describe the simulated system; the rate fields
// parameterize independent renewal processes, every mean in ticks. A
// zero mean disables its process.
type Schedule struct {
	// Ticks is the simulation horizon; all generated event ticks fall in
	// [0, Ticks) and repair ticks in (fail, Ticks].
	Ticks int
	// Servers is the fleet size; generated server indices are in
	// [0, Servers).
	Servers int
	// PMUs lists the internal tree node IDs eligible to crash
	// (typically every non-root PMU; see cluster.ChaosTopology).
	PMUs []int
	// Racks groups server indices for correlated bursts (typically the
	// spans of the level-1 PMUs). Empty disables bursts regardless of
	// BurstEvery.
	Racks [][]int

	// ServerMTBF / ServerMTTR are the per-server mean ticks between
	// failures and mean repair time (exponential).
	ServerMTBF, ServerMTTR float64
	// PMUMTBF / PMUMTTR are the same for each listed PMU node.
	PMUMTBF, PMUMTTR float64
	// BurstEvery is the mean ticks between correlated rack bursts — one
	// randomly chosen rack's servers all crash together, sharing a
	// repair time of mean BurstMTTR.
	BurstEvery, BurstMTTR float64
	// LossEvery is the mean ticks between control-link loss windows of
	// mean length LossTicks, during which upward reports and downward
	// budget directives are dropped with the given probabilities
	// (each in [0, 1)).
	LossEvery, LossTicks   float64
	ReportLoss, BudgetLoss float64

	// SensorMTBF / SensorMTTR are the per-server mean ticks between
	// temperature-sensor fault windows and the mean window length
	// (exponential). Each window draws one fault mode (sensor.Mode);
	// the magnitude fields below double as mode enables — the draw
	// weights are 1 for each magnitude-bearing mode with a positive
	// magnitude, plus SensorStuck and SensorDropout for the
	// magnitude-free modes. All weights zero disables the process even
	// with SensorMTBF set.
	SensorMTBF, SensorMTTR float64
	// SensorNoise is the Gaussian read-noise stddev (°C); SensorBias the
	// constant offset magnitude (°C); SensorDrift the drift rate
	// magnitude (°C per tick). Bias and drift signs are drawn per
	// window.
	SensorNoise, SensorBias, SensorDrift float64
	// SensorStuck / SensorDropout are the relative draw weights of the
	// stuck-at and dropout (NaN) modes.
	SensorStuck, SensorDropout float64
}

// ServerFailure crashes one server at Tick; RepairTick > Tick schedules
// its repair (RepairTick == Ticks means "not within the horizon").
type ServerFailure struct {
	Server     int
	Tick       int
	RepairTick int
}

// PMUFailure crashes one internal (PMU) node at Tick, repairing it at
// RepairTick.
type PMUFailure struct {
	Node       int
	Tick       int
	RepairTick int
}

// LossWindow degrades every control link over [Start, End): reports are
// lost with probability ReportLoss, budget directives with BudgetLoss.
type LossWindow struct {
	Start, End             int
	ReportLoss, BudgetLoss float64
}

// SensorFault corrupts one server's temperature sensor over
// [Start, End): the sensor reports under the given fault mode, then
// heals at End (End == Ticks means "still lying when the run ends").
// Magnitude is signed for bias/drift, the noise stddev for noise, and
// unused for stuck/dropout.
type SensorFault struct {
	Server     int
	Start, End int
	Mode       sensor.Mode
	Magnitude  float64
}

// Plan is an expanded, explicit fault schedule, each list sorted by
// tick (ties by server/node index).
type Plan struct {
	ServerFailures []ServerFailure
	PMUFailures    []PMUFailure
	LossWindows    []LossWindow
	SensorFaults   []SensorFault
}

// Events returns the total number of scheduled fault events.
func (p Plan) Events() int {
	return len(p.ServerFailures) + len(p.PMUFailures) + len(p.LossWindows) + len(p.SensorFaults)
}

// Validate checks the schedule's fields for expandability.
func (s Schedule) Validate() error {
	switch {
	case s.Ticks <= 0:
		return fmt.Errorf("chaos: ticks %d must be positive", s.Ticks)
	case s.Servers < 0:
		return fmt.Errorf("chaos: negative server count %d", s.Servers)
	case s.ServerMTBF < 0 || s.ServerMTTR < 0 || s.PMUMTBF < 0 || s.PMUMTTR < 0 ||
		s.BurstEvery < 0 || s.BurstMTTR < 0 || s.LossEvery < 0 || s.LossTicks < 0 ||
		s.SensorMTBF < 0 || s.SensorMTTR < 0:
		return fmt.Errorf("chaos: negative rate in schedule %+v", s)
	case s.SensorNoise < 0 || s.SensorBias < 0 || s.SensorDrift < 0 ||
		s.SensorStuck < 0 || s.SensorDropout < 0:
		return fmt.Errorf("chaos: negative sensor-fault parameter in schedule %+v", s)
	case !finite(s.SensorNoise) || !finite(s.SensorBias) || !finite(s.SensorDrift) ||
		!finite(s.SensorStuck) || !finite(s.SensorDropout):
		return fmt.Errorf("chaos: non-finite sensor-fault parameter in schedule %+v", s)
	case s.ReportLoss < 0 || s.ReportLoss >= 1:
		return fmt.Errorf("chaos: report loss %v outside [0, 1)", s.ReportLoss)
	case s.BudgetLoss < 0 || s.BudgetLoss >= 1:
		return fmt.Errorf("chaos: budget loss %v outside [0, 1)", s.BudgetLoss)
	}
	for _, id := range s.PMUs {
		if id < 0 {
			return fmt.Errorf("chaos: negative PMU node ID %d", id)
		}
	}
	for ri, rack := range s.Racks {
		for _, srv := range rack {
			if srv < 0 || srv >= s.Servers {
				return fmt.Errorf("chaos: rack %d server %d outside [0, %d)", ri, srv, s.Servers)
			}
		}
	}
	return nil
}

// Expand derives the concrete fault plan for one seed. The expansion
// forks one random stream per process class, in fixed order, so the
// classes perturb neither each other nor the simulation's own streams.
// The sensor stream forks last: schedules without sensor faults expand
// to plans byte-identical to those of earlier versions of this package.
func (s Schedule) Expand(seed uint64) (Plan, error) {
	if err := s.Validate(); err != nil {
		return Plan{}, err
	}
	src := dist.NewSource(seed)
	srvSrc, pmuSrc, burstSrc, lossSrc := src.Fork(), src.Fork(), src.Fork(), src.Fork()
	sensorSrc := src.Fork()

	var plan Plan
	if s.ServerMTBF > 0 && s.Servers > 0 {
		for idx := 0; idx < s.Servers; idx++ {
			for _, ev := range renewal(srvSrc, s.Ticks, s.ServerMTBF, s.ServerMTTR) {
				plan.ServerFailures = append(plan.ServerFailures,
					ServerFailure{Server: idx, Tick: ev[0], RepairTick: ev[1]})
			}
		}
	}
	if s.PMUMTBF > 0 {
		for _, id := range s.PMUs {
			for _, ev := range renewal(pmuSrc, s.Ticks, s.PMUMTBF, s.PMUMTTR) {
				plan.PMUFailures = append(plan.PMUFailures,
					PMUFailure{Node: id, Tick: ev[0], RepairTick: ev[1]})
			}
		}
	}
	if s.BurstEvery > 0 && len(s.Racks) > 0 {
		t := 0
		for {
			t += atLeast(burstSrc.Exponential(s.BurstEvery), 1)
			if t >= s.Ticks {
				break
			}
			rack := s.Racks[burstSrc.Intn(len(s.Racks))]
			repair := clampTick(t+atLeast(expo(burstSrc, s.BurstMTTR), 1), s.Ticks)
			for _, srv := range rack {
				plan.ServerFailures = append(plan.ServerFailures,
					ServerFailure{Server: srv, Tick: t, RepairTick: repair})
			}
		}
	}
	if s.LossEvery > 0 && (s.ReportLoss > 0 || s.BudgetLoss > 0) {
		t := 0
		for {
			t += atLeast(lossSrc.Exponential(s.LossEvery), 1)
			if t >= s.Ticks {
				break
			}
			end := clampTick(t+atLeast(expo(lossSrc, s.LossTicks), 1), s.Ticks)
			plan.LossWindows = append(plan.LossWindows, LossWindow{
				Start: t, End: end,
				ReportLoss: s.ReportLoss, BudgetLoss: s.BudgetLoss,
			})
			t = end // windows never overlap: the next one starts after this
		}
	}
	if modes, weights := s.sensorModes(); s.SensorMTBF > 0 && len(modes) > 0 {
		for idx := 0; idx < s.Servers; idx++ {
			for _, ev := range renewal(sensorSrc, s.Ticks, s.SensorMTBF, s.SensorMTTR) {
				f := SensorFault{Server: idx, Start: ev[0], End: ev[1]}
				f.Mode = pickMode(sensorSrc, modes, weights)
				switch f.Mode {
				case sensor.ModeNoise:
					f.Magnitude = s.SensorNoise
				case sensor.ModeBias:
					f.Magnitude = signed(sensorSrc, s.SensorBias)
				case sensor.ModeDrift:
					f.Magnitude = signed(sensorSrc, s.SensorDrift)
				}
				plan.SensorFaults = append(plan.SensorFaults, f)
			}
		}
	}

	sort.SliceStable(plan.ServerFailures, func(i, j int) bool {
		a, b := plan.ServerFailures[i], plan.ServerFailures[j]
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		return a.Server < b.Server
	})
	sort.SliceStable(plan.PMUFailures, func(i, j int) bool {
		a, b := plan.PMUFailures[i], plan.PMUFailures[j]
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		return a.Node < b.Node
	})
	sort.SliceStable(plan.LossWindows, func(i, j int) bool {
		return plan.LossWindows[i].Start < plan.LossWindows[j].Start
	})
	sort.SliceStable(plan.SensorFaults, func(i, j int) bool {
		a, b := plan.SensorFaults[i], plan.SensorFaults[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Server < b.Server
	})
	return plan, nil
}

// sensorModes returns the enabled sensor fault modes and their draw
// weights, in fixed mode order.
func (s Schedule) sensorModes() (modes []sensor.Mode, weights []float64) {
	add := func(m sensor.Mode, w float64) {
		if w > 0 {
			modes = append(modes, m)
			weights = append(weights, w)
		}
	}
	add(sensor.ModeNoise, boolWeight(s.SensorNoise))
	add(sensor.ModeBias, boolWeight(s.SensorBias))
	add(sensor.ModeDrift, boolWeight(s.SensorDrift))
	add(sensor.ModeStuck, s.SensorStuck)
	add(sensor.ModeDropout, s.SensorDropout)
	return modes, weights
}

// boolWeight turns a magnitude into an enable weight: any positive
// magnitude enters the mode draw with weight 1.
func boolWeight(mag float64) float64 {
	if mag > 0 {
		return 1
	}
	return 0
}

// pickMode draws one mode proportionally to the weights.
func pickMode(src *dist.Source, modes []sensor.Mode, weights []float64) sensor.Mode {
	var total float64
	for _, w := range weights {
		total += w
	}
	r := src.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return modes[i]
		}
	}
	return modes[len(modes)-1]
}

// signed flips the magnitude's sign with probability 1/2.
func signed(src *dist.Source, mag float64) float64 {
	if src.Float64() < 0.5 {
		return -mag
	}
	return mag
}

// finite reports whether v is a finite float.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// renewal generates the alternating up/down process of one component:
// pairs of (fail tick, repair tick) with exponential up times of mean
// mtbf and down times of mean mttr, clipped to the horizon.
func renewal(src *dist.Source, ticks int, mtbf, mttr float64) [][2]int {
	var events [][2]int
	t := 0
	for {
		t += atLeast(expo(src, mtbf), 1)
		if t >= ticks {
			return events
		}
		repair := clampTick(t+atLeast(expo(src, mttr), 1), ticks)
		events = append(events, [2]int{t, repair})
		t = repair
	}
}

// expo draws an exponential tick count; a non-positive mean yields 0
// (the caller's atLeast floor then applies).
func expo(src *dist.Source, mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return src.Exponential(mean)
}

// atLeast rounds v down to a tick count of at least lo (renewal
// processes must advance or they would loop forever).
func atLeast(v float64, lo int) int {
	n := int(v)
	if n < lo {
		return lo
	}
	return n
}

// clampTick caps a tick at the horizon; a repair clamped to Ticks never
// fires, modeling "still down when the run ends".
func clampTick(t, ticks int) int {
	if t > ticks {
		return ticks
	}
	return t
}
