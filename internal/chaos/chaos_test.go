package chaos

import (
	"reflect"
	"testing"
)

func testSchedule() Schedule {
	return Schedule{
		Ticks:   800,
		Servers: 18,
		PMUs:    []int{1, 2, 3, 4, 5, 6, 7, 8},
		Racks: [][]int{
			{0, 1, 2}, {3, 4, 5}, {6, 7, 8},
			{9, 10, 11}, {12, 13, 14}, {15, 16, 17},
		},
		ServerMTBF: 150, ServerMTTR: 25,
		PMUMTBF: 300, PMUMTTR: 40,
		BurstEvery: 400, BurstMTTR: 30,
		LossEvery: 300, LossTicks: 50,
		ReportLoss: 0.3, BudgetLoss: 0.3,
	}
}

func TestExpandDeterministic(t *testing.T) {
	s := testSchedule()
	a, err := s.Expand(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Expand(7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed expanded to different plans")
	}
	if a.Events() == 0 {
		t.Fatal("heavy schedule expanded to an empty plan")
	}
	c, err := s.Expand(8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds expanded to identical plans")
	}
}

func checkPlanInRange(t *testing.T, s Schedule, p Plan) {
	t.Helper()
	pmuOK := map[int]bool{}
	for _, id := range s.PMUs {
		pmuOK[id] = true
	}
	lastTick := -1
	for _, f := range p.ServerFailures {
		if f.Server < 0 || f.Server >= s.Servers {
			t.Fatalf("server %d outside [0, %d)", f.Server, s.Servers)
		}
		if f.Tick < 0 || f.Tick >= s.Ticks {
			t.Fatalf("fail tick %d outside [0, %d)", f.Tick, s.Ticks)
		}
		if f.RepairTick <= f.Tick || f.RepairTick > s.Ticks {
			t.Fatalf("repair tick %d outside (%d, %d]", f.RepairTick, f.Tick, s.Ticks)
		}
		if f.Tick < lastTick {
			t.Fatalf("server failures not sorted: %d after %d", f.Tick, lastTick)
		}
		lastTick = f.Tick
	}
	for _, f := range p.PMUFailures {
		if !pmuOK[f.Node] {
			t.Fatalf("PMU failure for unlisted node %d", f.Node)
		}
		if f.Tick < 0 || f.Tick >= s.Ticks {
			t.Fatalf("PMU fail tick %d outside [0, %d)", f.Tick, s.Ticks)
		}
		if f.RepairTick <= f.Tick || f.RepairTick > s.Ticks {
			t.Fatalf("PMU repair tick %d outside (%d, %d]", f.RepairTick, f.Tick, s.Ticks)
		}
	}
	for _, w := range p.LossWindows {
		if w.Start < 0 || w.Start >= s.Ticks || w.End <= w.Start || w.End > s.Ticks {
			t.Fatalf("loss window [%d, %d) outside the horizon %d", w.Start, w.End, s.Ticks)
		}
		if w.ReportLoss < 0 || w.ReportLoss >= 1 || w.BudgetLoss < 0 || w.BudgetLoss >= 1 {
			t.Fatalf("loss window probabilities out of range: %+v", w)
		}
	}
}

func TestExpandInRange(t *testing.T) {
	s := testSchedule()
	for seed := uint64(0); seed < 25; seed++ {
		p, err := s.Expand(seed)
		if err != nil {
			t.Fatal(err)
		}
		checkPlanInRange(t, s, p)
	}
}

func TestExpandDisabledProcesses(t *testing.T) {
	s := testSchedule()
	s.ServerMTBF, s.PMUMTBF, s.BurstEvery, s.LossEvery = 0, 0, 0, 0
	p, err := s.Expand(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Events() != 0 {
		t.Fatalf("all processes disabled, got %d events", p.Events())
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Schedule{
		{Ticks: 0},
		{Ticks: 100, Servers: -1},
		{Ticks: 100, ServerMTBF: -5},
		{Ticks: 100, ReportLoss: 1},
		{Ticks: 100, BudgetLoss: -0.1},
		{Ticks: 100, Servers: 2, Racks: [][]int{{0, 2}}},
		{Ticks: 100, PMUs: []int{-3}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: schedule %+v validated", i, s)
		}
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("medium")
	if err != nil {
		t.Fatal(err)
	}
	if s.ServerMTBF != 300 || s.ReportLoss != 0.2 {
		t.Fatalf("medium preset wrong: %+v", s)
	}

	s, err = ParseSpec("light,pmu-mtbf=123,budget-loss=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if s.ServerMTBF != 600 || s.PMUMTBF != 123 || s.BudgetLoss != 0.5 {
		t.Fatalf("override parse wrong: %+v", s)
	}

	if _, err := ParseSpec("nosuchpreset"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := ParseSpec("server-mtbf=abc"); err == nil {
		t.Fatal("non-numeric value accepted")
	}
	if _, err := ParseSpec("warp-drive=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseSpec("server-mtbf=100,light"); err == nil {
		t.Fatal("preset in non-leading position accepted")
	}
	if _, err := ParseSpec("server-mtbf=-4"); err == nil {
		t.Fatal("negative value accepted")
	}
}

// FuzzChaosSchedule asserts the expansion contract over arbitrary
// specs and seeds: parseable schedules always expand without error,
// every emitted event stays within the topology and horizon, and the
// same seed yields an identical plan.
func FuzzChaosSchedule(f *testing.F) {
	f.Add("medium", uint64(1), 400, 18)
	f.Add("heavy,loss-ticks=5", uint64(99), 900, 9)
	f.Add("server-mtbf=20,server-mttr=3", uint64(7), 150, 4)
	f.Fuzz(func(t *testing.T, spec string, seed uint64, ticks, servers int) {
		s, err := ParseSpec(spec)
		if err != nil {
			t.Skip()
		}
		if ticks <= 0 || ticks > 5000 || servers <= 0 || servers > 64 {
			t.Skip()
		}
		s.Ticks = ticks
		s.Servers = servers
		s.PMUs = []int{1, 2}
		half := servers / 2
		if half > 0 {
			racks := [][]int{{}, {}}
			for i := 0; i < servers; i++ {
				racks[i/max(half, 1)%2] = append(racks[i/max(half, 1)%2], i)
			}
			s.Racks = racks
		}
		a, err := s.Expand(seed)
		if err != nil {
			t.Fatalf("valid schedule failed to expand: %v", err)
		}
		checkPlanInRange(t, s, a)
		b, err := s.Expand(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("same seed expanded to different plans")
		}
	})
}
