// Package parallel provides the bounded fan-out primitive shared by the
// experiment harness and the CLI: run n independent tasks on a fixed-size
// worker pool, abort on the first failure, and honor context
// cancellation.
//
// The package deliberately contains no policy: callers decide what a
// task is (a simulation, an experiment replication, a sweep point) and
// how results are collected (typically an index-addressed slice, which
// keeps output order independent of scheduling order — the foundation of
// the harness's determinism guarantee).
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(ctx, i) for every i in [0, n) on a pool of at most
// workers goroutines. workers <= 0 means GOMAXPROCS. Indices are handed
// out in increasing order, but tasks complete in any order; callers that
// need deterministic output should write into a preallocated slice at
// index i.
//
// On the first failure the pool stops handing out new indices and the
// context passed to still-running tasks is cancelled; ForEach then waits
// for them to finish and returns the error with the lowest index (so the
// reported failure is stable regardless of scheduling). If the parent
// context is cancelled before all tasks start, ForEach returns its
// error; tasks already started always run to completion.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next      atomic.Int64 // next index to hand out
		completed atomic.Int64 // tasks that ran to success
		mu        sync.Mutex
		firstIdx  int
		firstErr  error
	)
	next.Store(-1)
	record := func(i int, err error) {
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(ctx, i); err != nil {
					record(i, err)
					return
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	if completed.Load() != int64(n) {
		// Cancelled before every task could start.
		return ctx.Err()
	}
	return nil
}
