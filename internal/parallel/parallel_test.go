package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 100
	for _, workers := range []int{0, 1, 4, n, n * 2} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			counts := make([]atomic.Int64, n)
			err := ForEach(context.Background(), n, workers, func(_ context.Context, i int) error {
				counts[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("ForEach: %v", err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("index %d ran %d times", i, got)
				}
			}
		})
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Index 7 fails instantly; index 3 fails after a delay. The pool must
	// report index 3's error no matter which was recorded first.
	err := ForEach(context.Background(), 10, 4, func(_ context.Context, i int) error {
		switch i {
		case 3:
			time.Sleep(20 * time.Millisecond)
			return errA
		case 7:
			return errB
		default:
			return nil
		}
	})
	if !errors.Is(err, errA) {
		t.Fatalf("got %v, want lowest-index error %v", err, errA)
	}
}

func TestForEachAbortsAfterFirstError(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	err := ForEach(context.Background(), 1000, 1, func(_ context.Context, i int) error {
		started.Add(1)
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	// With one worker the pool is strictly sequential: indices 0, 1, 2
	// start, then the failure stops the hand-out.
	if got := started.Load(); got != 3 {
		t.Fatalf("%d tasks started after an index-2 failure with 1 worker", got)
	}
}

func TestForEachHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 50, 4, func(context.Context, int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d tasks ran under a pre-cancelled context", got)
	}
}

func TestForEachCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEach(ctx, 1000, 2, func(_ context.Context, i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("cancellation did not stop the hand-out (%d ran)", got)
	}
}

// TestForEachDeterministicCollection is the pattern RunMany relies on:
// writes into a preallocated slice at index i are ordered regardless of
// worker count.
func TestForEachDeterministicCollection(t *testing.T) {
	const n = 64
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 8} {
		out := make([]int, n)
		if err := ForEach(context.Background(), n, workers, func(_ context.Context, i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], want[i])
			}
		}
	}
}
