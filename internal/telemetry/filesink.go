package telemetry

import (
	"os"
)

// FileSink is the CLI-facing composite sink: it streams events as JSONL
// into a file (optionally filtered to a KindSet), aggregates the
// unfiltered stream, and on Close writes the aggregate's summary table
// next to the stream. The aggregate always sees every event — a filter
// narrows what lands in the file, not what the report describes, so
// duty cycles and utilization stay meaningful under any filter.
type FileSink struct {
	// Agg accumulates the run summary; callers may render it after
	// Close (e.g. to also print the report).
	Agg Aggregator

	file        *os.File
	w           *Writer
	keep        KindSet
	summaryPath string
	title       string
}

// OpenFileSink creates path and returns a FileSink streaming events
// whose kind is in keep. When summaryPath is non-empty, Close writes
// the aggregate summary table there under the given title.
func OpenFileSink(path, summaryPath, title string, keep KindSet) (*FileSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileSink{
		file:        f,
		w:           NewWriter(f),
		keep:        keep,
		summaryPath: summaryPath,
		title:       title,
	}, nil
}

// Publish implements Sink.
func (s *FileSink) Publish(e Event) {
	s.Agg.Publish(e)
	if s.keep.Has(e.Kind) {
		s.w.Publish(e)
	}
}

// Flush drains the sink's userspace buffer into the kernel, so events
// published so far survive an abrupt process death (kill -9). The live
// daemon calls this at tick boundaries when crash safety is armed.
func (s *FileSink) Flush() error {
	return s.w.Flush()
}

// Close flushes and closes the stream file, then writes the summary
// report (when configured). The first error wins.
func (s *FileSink) Close() error {
	err := s.w.Close() // flushes and closes the underlying file
	if s.summaryPath != "" {
		summary := s.Agg.Table(s.title).String()
		if werr := os.WriteFile(s.summaryPath, []byte(summary), 0o644); err == nil {
			err = werr
		}
	}
	return err
}
