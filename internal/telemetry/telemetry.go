// Package telemetry is the controller's observability spine: a
// zero-overhead-when-disabled event stream that internal/core publishes
// into at every decision point, plus the sinks that consume it — a JSONL
// writer for files, a ring buffer for tests, and an aggregator that
// folds a stream into metrics.Table rows.
//
// Determinism contract: every event is stamped with the simulation tick
// at which the decision was made — never wall clock — and publication
// order within a run is the controller's (single-threaded) decision
// order. A run's event stream is therefore a pure function of its
// configuration and seed: byte-identical across machines, worker counts
// and scheduling orders, matching the experiment engine's replication
// contract (see internal/exp). Sinks are NOT safe for concurrent use;
// each simulation run must own its sink, and multi-run harnesses merge
// streams by buffering per run and replaying in a deterministic order
// (see cluster.RunAll).
package telemetry

import (
	"fmt"
	"strings"
)

// Kind discriminates controller event types. The zero Kind is invalid so
// a decoded event missing its kind cannot masquerade as a real one.
type Kind uint8

const (
	// KindBudgetChange is one node's power-budget allocation at a supply
	// round (Δ_S, Section IV-D): the new top-down budget, the previous
	// one, the demand it was derived from, and the unidirectional-rule
	// "reduced" flag.
	KindBudgetChange Kind = iota + 1
	// KindMigration is one applied (or decided, under transfer latency)
	// workload migration, demand-, consolidation- or restart-caused
	// (Section IV-E).
	KindMigration
	// KindThermalThrottle fires when the Eq. 3 thermal power limit is
	// the binding constraint clamping a server below its granted budget.
	KindThermalThrottle
	// KindSleepWake is a server deactivating (consolidation or
	// drain-to-sleep) or coming back from sleep.
	KindSleepWake
	// KindFailure is an injected crash or repair (failure.go).
	KindFailure
	// KindQoSViolation is one application served degraded or shut down
	// within a settlement window (qos.go).
	KindQoSViolation
	// KindDegraded is a control-plane degradation record (degraded.go):
	// a node entering or leaving budget-lease degraded mode ("enter" /
	// "exit"), or orphaned demand waiting for restart ("orphans").
	KindDegraded
	// KindSensor is a sensing-layer record (sensing.go): a sensor fault
	// injected or cleared ("inject:<mode>" / "clear"), a reading the
	// residual gate rejected ("reject" / "dropout"), a sensor declared
	// unhealthy or healthy again ("unhealthy" / "healthy"), and one
	// record per tick a server's control temperature ran on the
	// model-predicted fallback plus guard band ("guard").
	KindSensor
	// KindEnergy is an energy-accounting window summary (energy.go):
	// joules consumed, useful work, heat dissipated and demand shed over
	// one supply window, per rack ("rack") and fleet-wide ("fleet").
	// Emission is opt-in (core.Config.EnergyEvents) so pre-energy event
	// streams stay byte-identical.
	KindEnergy

	numKinds = int(KindEnergy)
)

// kindNames are the wire names, used in JSONL streams and CLI filters.
var kindNames = [...]string{
	KindBudgetChange:    "budget",
	KindMigration:       "migration",
	KindThermalThrottle: "throttle",
	KindSleepWake:       "sleep-wake",
	KindFailure:         "failure",
	KindQoSViolation:    "qos",
	KindDegraded:        "degraded",
	KindSensor:          "sensor",
	KindEnergy:          "energy",
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if int(k) >= 1 && int(k) <= numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalText implements encoding.TextMarshaler so Kind serializes as
// its wire name inside JSON.
func (k Kind) MarshalText() ([]byte, error) {
	if int(k) < 1 || int(k) > numKinds {
		return nil, fmt.Errorf("telemetry: cannot marshal invalid kind %d", int(k))
	}
	return []byte(kindNames[k]), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (k *Kind) UnmarshalText(text []byte) error {
	parsed, err := ParseKind(string(text))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// ParseKind resolves a wire name to its Kind.
func ParseKind(name string) (Kind, error) {
	for k := 1; k <= numKinds; k++ {
		if kindNames[k] == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("telemetry: unknown event kind %q (want one of %v)", name, kindNames[1:])
}

// Kinds returns every valid kind in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i + 1)
	}
	return out
}

// Event is one controller decision. The struct is flat — a Kind plus the
// union of every payload field — so streams encode without per-event
// allocation and decode without reflection gymnastics; which fields are
// meaningful depends on Kind (zero values are omitted on the wire):
//
//	BudgetChange    Node, Level, Server (leaves), Watts (new budget),
//	                Prev (old budget), Demand (smoothed CP), Reduced
//	Migration       App, From, To, Hops, Cause, Watts, Bytes, Local
//	ThermalThrottle Server, Watts (clamped effective budget),
//	                Prev (granted budget), Demand (raw demand)
//	SleepWake       Server, Cause ("sleep"/"wake"), Watts (static floor)
//	Failure         Server, Cause ("fail"/"repair"), Count (orphaned
//	                apps), Watts (orphaned demand); PMU crashes use
//	                Node, Level, Cause ("pmu-fail"/"pmu-repair") and
//	                Count (servers in the dead span)
//	QoSViolation    Server, App, Cause ("degraded"/"shutdown"),
//	                Watts (served), Demand (asked)
//	Degraded        Node, Level, Server (leaves), Cause ("enter"/
//	                "exit"), Watts (held budget), Prev (pre-decay
//	                budget on "enter"); orphaned-demand waits use
//	                Cause "orphans", Count (apps), Watts (stranded
//	                demand)
//	Sensor          Server, Cause ("inject:<mode>"/"clear"/"reject"/
//	                "dropout"/"unhealthy"/"healthy"/"guard"), Watts
//	                (the reading, or the fault magnitude on inject, or
//	                the guarded control temperature), Prev (the RC-model
//	                one-step prediction the reading was gated against)
//	Energy          Node, Level, Cause ("rack"/"fleet"), Count (ticks
//	                in the window), Watts (joules consumed over the
//	                window), Demand (useful-work joules), Prev (heat
//	                dissipated, joules), Bytes (demand shed, joules)
type Event struct {
	// Tick is the simulation tick of the decision — never wall clock,
	// so event streams are reproducible byte for byte.
	Tick int  `json:"t"`
	Kind Kind `json:"k"`

	Node    int     `json:"node,omitempty"`    // tree node ID
	Level   int     `json:"level,omitempty"`   // tree level (0 = leaves)
	Server  int     `json:"server,omitempty"`  // server index
	App     int     `json:"app,omitempty"`     // application ID
	From    int     `json:"from,omitempty"`    // source server index
	To      int     `json:"to,omitempty"`      // destination server index
	Hops    int     `json:"hops,omitempty"`    // switches on the path
	Count   int     `json:"count,omitempty"`   // e.g. orphaned applications
	Cause   string  `json:"cause,omitempty"`   // kind-specific label
	Watts   float64 `json:"watts,omitempty"`   // primary power figure
	Prev    float64 `json:"prev,omitempty"`    // previous value (budgets)
	Demand  float64 `json:"demand,omitempty"`  // demand the decision saw
	Bytes   float64 `json:"bytes,omitempty"`   // transferred VM footprint
	Local   bool    `json:"local,omitempty"`   // sibling migration
	Reduced bool    `json:"reduced,omitempty"` // unidirectional-rule flag
}

// Sink consumes controller events. Implementations need not be safe for
// concurrent use: the controller publishes from a single goroutine, and
// harnesses that run simulations in parallel buffer per run (Buffer) and
// replay deterministically.
type Sink interface {
	Publish(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Publish implements Sink.
func (f SinkFunc) Publish(e Event) { f(e) }

// KindSet is a bitmask of event kinds, for filtering.
type KindSet uint16

// AllKinds has every valid kind set.
const AllKinds KindSet = 1<<numKinds - 1

// Has reports whether k is in the set.
func (s KindSet) Has(k Kind) bool {
	if int(k) < 1 || int(k) > numKinds {
		return false
	}
	return s&(1<<(int(k)-1)) != 0
}

// With returns the set with k added.
func (s KindSet) With(k Kind) KindSet { return s | 1<<(int(k)-1) }

// ParseKindSet parses a comma-separated list of kind wire names
// ("migration,throttle") into a set.
func ParseKindSet(list string) (KindSet, error) {
	var set KindSet
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		k, err := ParseKind(name)
		if err != nil {
			return 0, err
		}
		set = set.With(k)
	}
	if set == 0 {
		return 0, fmt.Errorf("telemetry: empty kind set %q", list)
	}
	return set, nil
}
