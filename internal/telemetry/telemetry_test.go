package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted an unknown kind")
	}
	if Kind(0).String() == "" || Kind(200).String() == "" {
		t.Error("out-of-range kinds must still render something")
	}
}

func TestParseKindSet(t *testing.T) {
	ks, err := ParseKindSet("migration, throttle")
	if err != nil {
		t.Fatal(err)
	}
	if !ks.Has(KindMigration) || !ks.Has(KindThermalThrottle) || ks.Has(KindFailure) {
		t.Errorf("parsed set %b wrong", ks)
	}
	if _, err := ParseKindSet("migration,nope"); err == nil {
		t.Error("unknown kind accepted")
	}
	for _, k := range Kinds() {
		if !AllKinds.Has(k) {
			t.Errorf("AllKinds misses %v", k)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := Event{
		Tick: 42, Kind: KindMigration,
		App: 7, From: 3, To: 11, Hops: 4,
		Cause: "deficit", Watts: 63.5, Bytes: 2, Local: true,
	}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed the event: %+v != %+v", out, in)
	}
	if _, err := Decode([]byte(`{"t":1}`)); err == nil {
		t.Error("kind-less line accepted")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestWriterReadAll(t *testing.T) {
	events := []Event{
		{Tick: 0, Kind: KindBudgetChange, Level: 2, Watts: 4000, Demand: 3600},
		{Tick: 3, Kind: KindSleepWake, Server: 5, Cause: "sleep", Watts: 150},
		{Tick: 9, Kind: KindQoSViolation, Server: 1, App: 4, Cause: "degraded", Watts: 10, Demand: 25},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		w.Publish(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(strings.NewReader(buf.String() + "\n")) // trailing blank line is skipped
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestMultiAndFilter(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Error("Multi of nils must be nil")
	}
	var b Buffer
	if Multi(nil, &b) != Sink(&b) {
		t.Error("Multi of one sink must be that sink")
	}
	var kept Buffer
	f := &Filter{Next: &kept, Keep: KindSet(0).With(KindFailure)}
	m := Multi(f, &b)
	m.Publish(Event{Kind: KindMigration})
	m.Publish(Event{Kind: KindFailure})
	if len(b.Events) != 2 {
		t.Errorf("unfiltered sink saw %d events, want 2", len(b.Events))
	}
	if len(kept.Events) != 1 || kept.Events[0].Kind != KindFailure {
		t.Errorf("filtered sink saw %+v", kept.Events)
	}
}

func TestBufferReplay(t *testing.T) {
	var b Buffer
	b.Publish(Event{Tick: 1, Kind: KindFailure})
	b.Publish(Event{Tick: 2, Kind: KindMigration})
	var dst Buffer
	b.ReplayTo(&dst)
	b.ReplayTo(nil) // must not panic
	if len(dst.Events) != 2 || dst.Events[0].Tick != 1 {
		t.Errorf("replayed %+v", dst.Events)
	}
	b.Reset()
	if len(b.Events) != 0 {
		t.Error("Reset left events behind")
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	for tick := 0; tick < 5; tick++ {
		r.Publish(Event{Tick: tick, Kind: KindMigration})
	}
	if r.Len() != 3 || r.Dropped() != 2 {
		t.Fatalf("Len %d Dropped %d", r.Len(), r.Dropped())
	}
	got := r.Events()
	for i, want := range []int{2, 3, 4} {
		if got[i].Tick != want {
			t.Errorf("event %d tick %d, want %d", i, got[i].Tick, want)
		}
	}
	if r.Count(KindMigration) != 3 || r.Count(KindFailure) != 0 {
		t.Error("Count wrong")
	}
}

func TestAggregator(t *testing.T) {
	var a Aggregator
	if a.TickSpan() != 0 || a.ThrottleDutyCycle() != 0 {
		t.Error("zero aggregator not zero-valued")
	}
	if _, ok := a.BudgetUtilization(0); ok {
		t.Error("empty aggregator reports budget utilization")
	}
	a.Publish(Event{Tick: 0, Kind: KindBudgetChange, Level: 1, Watts: 100, Demand: 80})
	a.Publish(Event{Tick: 0, Kind: KindBudgetChange, Level: 1, Watts: 100, Demand: 60})
	a.Publish(Event{Tick: 4, Kind: KindMigration, From: 0, To: 3, Watts: 50, Bytes: 1, Local: true})
	a.Publish(Event{Tick: 9, Kind: KindThermalThrottle, Server: 1})
	if a.Total() != 4 || a.Count(KindBudgetChange) != 2 {
		t.Errorf("counts wrong: total %d", a.Total())
	}
	if a.TickSpan() != 10 {
		t.Errorf("TickSpan = %d", a.TickSpan())
	}
	if a.MigrationBytes() != 1 {
		t.Errorf("MigrationBytes = %v", a.MigrationBytes())
	}
	// 1 throttle over 10 ticks × 4 servers (max index 3).
	if got := a.ThrottleDutyCycle(); got != 1.0/40 {
		t.Errorf("ThrottleDutyCycle = %v", got)
	}
	if u, ok := a.BudgetUtilization(1); !ok || u != 0.7 {
		t.Errorf("BudgetUtilization(1) = %v, %v", u, ok)
	}
	tb := a.Table("summary")
	if tb == nil || !strings.Contains(tb.String(), "events.migration") {
		t.Error("Table missing rows")
	}
}

// TestAggregatorEnergyRows is the efficiency-row golden: the rendered
// scoreboard section of the summary table is pinned verbatim, and a
// stream without energy events must not render it at all (the
// pre-energy byte-identity guarantee).
func TestAggregatorEnergyRows(t *testing.T) {
	var a Aggregator
	a.Publish(Event{Tick: 15, Kind: KindEnergy, Cause: "rack", Node: 3, Count: 16, Watts: 4000, Demand: 2500, Prev: 3600, Bytes: 120})
	a.Publish(Event{Tick: 15, Kind: KindEnergy, Cause: "rack", Node: 4, Count: 16, Watts: 6000, Demand: 3500, Prev: 5400, Bytes: 80})
	a.Publish(Event{Tick: 15, Kind: KindEnergy, Cause: "fleet", Node: 0, Count: 16, Watts: 10000, Demand: 6000, Prev: 9000, Bytes: 200})

	if got := a.EnergyJoules(); got != 10000 {
		t.Errorf("EnergyJoules = %v, want 10000 (fleet record only)", got)
	}
	if wpj, ok := a.WorkPerJoule(); !ok || wpj != 0.6 {
		t.Errorf("WorkPerJoule = %v/%v, want 0.6", wpj, ok)
	}

	rendered := a.Table("summary").String()
	for _, want := range []string{
		"events.energy          3",
		"energy.joules          10000",
		"energy.work-joules     6000",
		"energy.heat-joules     9000",
		"energy.shed-joules     200",
		"energy.work-per-joule  0.6",
		"energy.rack.3.joules   4000",
		"energy.rack.4.joules   6000",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("summary missing row %q:\n%s", want, rendered)
		}
	}

	var quiet Aggregator
	quiet.Publish(Event{Tick: 0, Kind: KindBudgetChange, Level: 1, Watts: 100, Demand: 80})
	if plain := quiet.Table("summary").String(); strings.Contains(plain, "energy") {
		t.Errorf("energy rows rendered without energy events:\n%s", plain)
	}
}
