package telemetry

// General-purpose sinks. All of them follow the package contract: not
// safe for concurrent use, owned by one simulation run at a time.

// Discard swallows every event — a true no-op sink for measuring the
// enabled-dispatch overhead in benchmarks.
var Discard Sink = discard{}

type discard struct{}

func (discard) Publish(Event) {}

// Multi fans events out to every non-nil sink, in argument order. It
// returns nil when no sink remains (so "disabled" stays a nil check in
// the controller), and the sink itself when exactly one remains.
func Multi(sinks ...Sink) Sink {
	var live multi
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}

type multi []Sink

func (m multi) Publish(e Event) {
	for _, s := range m {
		s.Publish(e)
	}
}

// BatchSink is an optional extension a Sink may implement to accept a
// whole tick's worth of events in one call. The controller buffers the
// events it publishes during a step and hands the batch over at the
// step boundary, so sinks that can amortize per-event overhead (an
// append loop, one buffered write) get the chance to. PublishBatch must
// behave exactly like publishing each event in slice order; the slice
// is owned by the caller and must not be retained.
type BatchSink interface {
	Sink
	PublishBatch([]Event)
}

// PublishAll delivers events to s in order, using the batch fast path
// when s implements BatchSink. A nil sink or empty batch is a no-op.
func PublishAll(s Sink, events []Event) {
	if s == nil || len(events) == 0 {
		return
	}
	if bs, ok := s.(BatchSink); ok {
		bs.PublishBatch(events)
		return
	}
	for _, e := range events {
		s.Publish(e)
	}
}

// PublishBatch implements BatchSink by fanning the whole batch out to
// each sink in turn, preserving per-sink event order.
func (m multi) PublishBatch(events []Event) {
	for _, s := range m {
		PublishAll(s, events)
	}
}

// Filter passes only events whose kind is in Keep through to Next.
type Filter struct {
	Next Sink
	Keep KindSet
}

// Publish implements Sink.
func (f *Filter) Publish(e Event) {
	if f.Keep.Has(e.Kind) {
		f.Next.Publish(e)
	}
}

// Buffer is an unbounded in-memory sink. Parallel harnesses give each
// simulation run its own Buffer and replay the buffers in a
// deterministic order afterwards — that is how cluster.RunAll merges
// concurrent runs into one byte-stable stream.
type Buffer struct {
	Events []Event
}

// Publish implements Sink.
func (b *Buffer) Publish(e Event) { b.Events = append(b.Events, e) }

// PublishBatch implements BatchSink with a single append.
func (b *Buffer) PublishBatch(events []Event) { b.Events = append(b.Events, events...) }

// ReplayTo republishes every buffered event into dst in order.
func (b *Buffer) ReplayTo(dst Sink) {
	if dst == nil {
		return
	}
	for _, e := range b.Events {
		dst.Publish(e)
	}
}

// Reset drops the buffered events, keeping the capacity.
func (b *Buffer) Reset() { b.Events = b.Events[:0] }

// Ring keeps the most recent events up to a fixed capacity — the test
// sink: cheap, allocation-stable, and inspectable after a run.
type Ring struct {
	buf     []Event
	next    int
	wrapped bool
	dropped int
}

// NewRing returns a ring buffer holding up to n events (n must be > 0).
func NewRing(n int) *Ring {
	if n <= 0 {
		panic("telemetry: NewRing capacity must be positive")
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Publish implements Sink.
func (r *Ring) Publish(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
	r.wrapped = true
	r.dropped++
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if !r.wrapped {
		return append([]Event(nil), r.buf...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns how many events are retained.
func (r *Ring) Len() int { return len(r.buf) }

// Dropped returns how many events were evicted to make room.
func (r *Ring) Dropped() int { return r.dropped }

// Count returns how many retained events have the given kind.
func (r *Ring) Count(k Kind) int {
	n := 0
	for _, e := range r.buf {
		if e.Kind == k {
			n++
		}
	}
	return n
}
