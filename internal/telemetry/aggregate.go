package telemetry

// Aggregator folds an event stream into run-level summary figures — the
// per-run report the CLIs print or save next to the raw stream: event
// counts by kind, migration volume, the thermal-throttle duty cycle and
// per-level budget utilization.

import (
	"fmt"
	"sort"
	"strings"

	"willow/internal/metrics"
)

// sortedKeys returns m's keys in ascending order, for deterministic
// row rendering.
func sortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Aggregator is a Sink that accumulates summary statistics. The zero
// value is ready to use.
type Aggregator struct {
	// Servers, when positive, fixes the fleet size used for the
	// throttle duty-cycle denominator. When zero, the largest server
	// index observed in any event is used instead — adequate whenever
	// at least one event touched the highest-indexed server.
	Servers int

	counts         [numKinds + 1]int64
	migrationWatts float64
	migrationBytes float64
	localCount     int64
	serverFails    int64
	serverRepairs  int64
	pmuFails       int64
	pmuRepairs     int64
	leaseExpiries  int64
	orphanWatts    float64
	sensorInjects  int64
	sensorRejects  int64
	sensorGuard    int64
	sensorTrips    int64
	energyJ        float64
	workJ          float64
	heatJ          float64
	shedJ          float64
	rackEnergyJ    map[int]float64
	firstTick      int
	lastTick       int
	sawTick        bool
	maxServer      int
	budgetTP       []float64 // by level
	budgetCP       []float64 // by level
}

// Publish implements Sink.
func (a *Aggregator) Publish(e Event) {
	if int(e.Kind) >= 1 && int(e.Kind) <= numKinds {
		a.counts[e.Kind]++
	}
	if !a.sawTick || e.Tick < a.firstTick {
		a.firstTick = e.Tick
	}
	if !a.sawTick || e.Tick > a.lastTick {
		a.lastTick = e.Tick
	}
	a.sawTick = true
	for _, idx := range [...]int{e.Server, e.From, e.To} {
		if idx > a.maxServer {
			a.maxServer = idx
		}
	}
	switch e.Kind {
	case KindMigration:
		a.migrationWatts += e.Watts
		a.migrationBytes += e.Bytes
		if e.Local {
			a.localCount++
		}
	case KindBudgetChange:
		for len(a.budgetTP) <= e.Level {
			a.budgetTP = append(a.budgetTP, 0)
			a.budgetCP = append(a.budgetCP, 0)
		}
		a.budgetTP[e.Level] += e.Watts
		a.budgetCP[e.Level] += e.Demand
	case KindFailure:
		switch e.Cause {
		case "fail":
			a.serverFails++
		case "repair":
			a.serverRepairs++
		case "pmu-fail":
			a.pmuFails++
		case "pmu-repair":
			a.pmuRepairs++
		}
	case KindDegraded:
		switch e.Cause {
		case "enter":
			a.leaseExpiries++
		case "orphans":
			a.orphanWatts += e.Watts
		}
	case KindSensor:
		switch {
		case strings.HasPrefix(e.Cause, "inject"):
			a.sensorInjects++
		case e.Cause == "reject" || e.Cause == "dropout":
			a.sensorRejects++
		case e.Cause == "guard":
			a.sensorGuard++
		case e.Cause == "unhealthy":
			a.sensorTrips++
		}
	case KindEnergy:
		switch e.Cause {
		case "fleet":
			a.energyJ += e.Watts
			a.workJ += e.Demand
			a.heatJ += e.Prev
			a.shedJ += e.Bytes
		case "rack":
			if a.rackEnergyJ == nil {
				a.rackEnergyJ = make(map[int]float64)
			}
			a.rackEnergyJ[e.Node] += e.Watts
		}
	}
}

// Count returns how many events of the given kind were observed.
func (a *Aggregator) Count(k Kind) int64 {
	if int(k) < 1 || int(k) > numKinds {
		return 0
	}
	return a.counts[k]
}

// Total returns the number of events observed across all kinds.
func (a *Aggregator) Total() int64 {
	var n int64
	for _, c := range a.counts {
		n += c
	}
	return n
}

// TickSpan returns the number of ticks covered by the stream (last −
// first + 1), 0 when no event was observed.
func (a *Aggregator) TickSpan() int {
	if !a.sawTick {
		return 0
	}
	return a.lastTick - a.firstTick + 1
}

// MigrationBytes returns the summed VM footprint moved.
func (a *Aggregator) MigrationBytes() float64 { return a.migrationBytes }

// ThrottleDutyCycle returns the fraction of server-ticks on which the
// thermal limit clamped a server's budget, over the observed tick span
// and the fleet size (see Servers).
func (a *Aggregator) ThrottleDutyCycle() float64 {
	span, servers := a.TickSpan(), a.servers()
	if span == 0 || servers == 0 {
		return 0
	}
	return float64(a.counts[KindThermalThrottle]) / (float64(span) * float64(servers))
}

func (a *Aggregator) servers() int {
	if a.Servers > 0 {
		return a.Servers
	}
	if a.maxServer > 0 || a.Total() > 0 {
		return a.maxServer + 1
	}
	return 0
}

// Failures returns the observed (server, PMU) crash counts.
func (a *Aggregator) Failures() (servers, pmus int64) { return a.serverFails, a.pmuFails }

// Repairs returns the observed (server, PMU) repair counts.
func (a *Aggregator) Repairs() (servers, pmus int64) { return a.serverRepairs, a.pmuRepairs }

// LeaseExpiries returns how many times a node entered budget-lease
// degraded mode.
func (a *Aggregator) LeaseExpiries() int64 { return a.leaseExpiries }

// OrphanWattTicks returns the demand stranded awaiting restart, summed
// over the per-tick "orphans" degradation records (watts × ticks).
func (a *Aggregator) OrphanWattTicks() float64 { return a.orphanWatts }

// SensorFaults returns the number of sensor faults injected.
func (a *Aggregator) SensorFaults() int64 { return a.sensorInjects }

// SensorRejections returns the readings the estimator's residual gate
// rejected (including dropout NaNs).
func (a *Aggregator) SensorRejections() int64 { return a.sensorRejects }

// SensorGuardTicks returns the server-ticks on which control ran on the
// model-predicted fallback temperature plus guard band.
func (a *Aggregator) SensorGuardTicks() int64 { return a.sensorGuard }

// SensorUnhealthyTrips returns how many times a sensor was declared
// unhealthy.
func (a *Aggregator) SensorUnhealthyTrips() int64 { return a.sensorTrips }

// EnergyJoules returns the fleet-wide joules consumed, summed over the
// "fleet" energy window records.
func (a *Aggregator) EnergyJoules() float64 { return a.energyJ }

// WorkJoules returns the fleet-wide useful-work joules (dynamic power
// serving demand × tick duration).
func (a *Aggregator) WorkJoules() float64 { return a.workJ }

// HeatJoules returns the fleet-wide heat dissipated to the environment,
// in joules.
func (a *Aggregator) HeatJoules() float64 { return a.heatJ }

// ShedJoules returns the demand shed (dropped watt-ticks × tick
// duration), in joules.
func (a *Aggregator) ShedJoules() float64 { return a.shedJ }

// WorkPerJoule returns useful work per joule consumed — the efficiency
// scoreboard's headline figure — and ok=false when nothing was consumed.
func (a *Aggregator) WorkPerJoule() (float64, bool) {
	if a.energyJ <= 0 {
		return 0, false
	}
	return a.workJ / a.energyJ, true
}

// BudgetUtilization returns demand-over-budget (ΣCP / ΣTP, watt-
// weighted across that level's budget events) for the given tree level,
// with ok=false when the level granted no budget.
func (a *Aggregator) BudgetUtilization(level int) (float64, bool) {
	if level < 0 || level >= len(a.budgetTP) || a.budgetTP[level] <= 0 {
		return 0, false
	}
	return a.budgetCP[level] / a.budgetTP[level], true
}

// Table renders the aggregate as metric/value rows — the per-run
// summary report.
func (a *Aggregator) Table(title string) *metrics.Table {
	tb := metrics.NewTable(title, "metric", "value")
	for _, k := range Kinds() {
		if k == KindEnergy && a.counts[k] == 0 {
			// Energy events are opt-in; skipping the zero row keeps
			// pre-energy summaries byte-identical.
			continue
		}
		tb.AddRow("events."+k.String(), fmt.Sprintf("%d", a.counts[k]))
	}
	tb.AddRow("ticks.span", fmt.Sprintf("%d", a.TickSpan()))
	tb.AddRow("migration.watts", fmt.Sprintf("%.6g", a.migrationWatts))
	tb.AddRow("migration.bytes", fmt.Sprintf("%.6g", a.migrationBytes))
	tb.AddRow("migration.local", fmt.Sprintf("%d", a.localCount))
	tb.AddRow("throttle.duty", fmt.Sprintf("%.6g", a.ThrottleDutyCycle()))
	if a.counts[KindFailure] > 0 || a.counts[KindDegraded] > 0 {
		// Resilience outcomes — only rendered for runs that actually saw
		// failures or degradation, so clean-run summaries stay compact.
		tb.AddRow("failures.server", fmt.Sprintf("%d", a.serverFails))
		tb.AddRow("failures.pmu", fmt.Sprintf("%d", a.pmuFails))
		tb.AddRow("repairs.server", fmt.Sprintf("%d", a.serverRepairs))
		tb.AddRow("repairs.pmu", fmt.Sprintf("%d", a.pmuRepairs))
		tb.AddRow("lease.expiries", fmt.Sprintf("%d", a.leaseExpiries))
		tb.AddRow("orphan.watt-ticks", fmt.Sprintf("%.6g", a.orphanWatts))
	}
	if a.counts[KindSensor] > 0 {
		// Sensor-health outcomes — rendered only for runs whose sensing
		// layer saw faults or rejections.
		tb.AddRow("sensor.faults", fmt.Sprintf("%d", a.sensorInjects))
		tb.AddRow("sensor.rejected", fmt.Sprintf("%d", a.sensorRejects))
		tb.AddRow("sensor.guard-ticks", fmt.Sprintf("%d", a.sensorGuard))
		tb.AddRow("sensor.unhealthy-trips", fmt.Sprintf("%d", a.sensorTrips))
	}
	if a.counts[KindEnergy] > 0 {
		// Efficiency scoreboard — rendered only for runs that emitted
		// energy accounting events (core.Config.EnergyEvents).
		tb.AddRow("energy.joules", fmt.Sprintf("%.6g", a.energyJ))
		tb.AddRow("energy.work-joules", fmt.Sprintf("%.6g", a.workJ))
		tb.AddRow("energy.heat-joules", fmt.Sprintf("%.6g", a.heatJ))
		tb.AddRow("energy.shed-joules", fmt.Sprintf("%.6g", a.shedJ))
		if wpj, ok := a.WorkPerJoule(); ok {
			tb.AddRow("energy.work-per-joule", fmt.Sprintf("%.6g", wpj))
		}
		for _, node := range sortedKeys(a.rackEnergyJ) {
			tb.AddRow(fmt.Sprintf("energy.rack.%d.joules", node), fmt.Sprintf("%.6g", a.rackEnergyJ[node]))
		}
	}
	for level := range a.budgetTP {
		util, ok := a.BudgetUtilization(level)
		if !ok {
			continue
		}
		tb.AddRow(fmt.Sprintf("budget.util.L%d", level), fmt.Sprintf("%.6g", util))
	}
	return tb
}
