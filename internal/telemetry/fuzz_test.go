package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzEventRoundTrip pins the JSONL contract: for any event with a
// valid kind and JSON-representable payload, Encode → Decode restores
// the event exactly (omitempty is lossless — dropped fields decode back
// to their zero values), and a Writer-produced stream re-reads to the
// same sequence via ReadAll.
func FuzzEventRoundTrip(f *testing.F) {
	f.Add(0, byte(1), 0, 0, 0, 0, 0, 0, "", 0.0, 0.0, false)
	f.Add(17, byte(2), 3, 1, 4, 9, 2, 6, "deficit", 63.5, 2.0, true)
	f.Add(-5, byte(200), -1, -2, -3, 0, 0, 0, "h\x80dr", -0.0, math.MaxFloat64, false)
	f.Fuzz(func(t *testing.T, tick int, kindRaw byte,
		node, level, server, app, from, to int,
		cause string, watts, demand float64, local bool) {
		sanitize := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0 // JSON cannot carry these; Encode rejects them
			}
			return v
		}
		in := Event{
			Tick: tick, Kind: Kind(1 + int(kindRaw)%numKinds),
			Node: node, Level: level, Server: server,
			App: app, From: from, To: to,
			// json.Marshal substitutes U+FFFD for invalid UTF-8, so
			// only valid strings can round-trip exactly.
			Cause: strings.ToValidUTF8(cause, "�"),
			Watts: sanitize(watts), Demand: sanitize(demand),
			Local: local,
		}
		line, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		out, err := Decode(line)
		if err != nil {
			t.Fatalf("decode %s: %v", line, err)
		}
		if out != in {
			t.Fatalf("round trip changed the event:\n in  %+v\n out %+v\n line %s", in, out, line)
		}

		// The same event must survive the buffered Writer → ReadAll
		// path, alongside a second event exercising the other fields.
		seq := []Event{in, {
			Tick: tick + 1, Kind: KindMigration,
			Hops: level, Count: node,
			Watts: sanitize(watts), Prev: sanitize(demand),
			Bytes: math.Abs(sanitize(demand)), Reduced: local,
		}}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range seq {
			w.Publish(e)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("writer: %v", err)
		}
		got, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("readall: %v", err)
		}
		if len(got) != len(seq) {
			t.Fatalf("read %d events, want %d", len(got), len(seq))
		}
		for i := range seq {
			if got[i] != seq[i] {
				t.Fatalf("sequence event %d changed: %+v != %+v", i, got[i], seq[i])
			}
		}
	})
}
