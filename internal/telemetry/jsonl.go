package telemetry

// JSONL encoding: one event per line, zero-valued payload fields
// omitted. Omission is lossless — a decoded event restores exactly the
// zero values that were dropped — so Encode/Decode round-trip every
// event bit for bit, which the fuzz target pins. encoding/json's output
// for a fixed struct is deterministic (fields in declaration order,
// shortest-round-trip floats), so identical runs produce byte-identical
// streams.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Encode renders one event as its JSONL line, without the trailing
// newline. Events carrying NaN or infinite values are rejected, as is an
// invalid Kind.
func Encode(e Event) ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("telemetry: encode: %w", err)
	}
	return b, nil
}

// Decode parses one JSONL line into an Event.
func Decode(line []byte) (Event, error) {
	var e Event
	if err := json.Unmarshal(line, &e); err != nil {
		return Event{}, fmt.Errorf("telemetry: decode: %w", err)
	}
	if e.Kind == 0 {
		return Event{}, fmt.Errorf("telemetry: decode: event missing kind: %s", line)
	}
	return e, nil
}

// ReadAll decodes a JSONL stream, skipping blank lines.
func ReadAll(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		e, err := Decode(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read: %w", err)
	}
	return out, nil
}

// Writer is the file sink: it streams events as JSONL through an
// internal buffer. Errors are sticky — the first write or encode error
// is retained and reported by Flush/Close; Publish cannot fail loudly
// (the controller's hot loop does not check), so callers must check
// Close.
type Writer struct {
	w   *bufio.Writer
	und io.Writer
	err error
}

// NewWriter returns a Writer streaming into w. If w is an io.Closer,
// Close closes it after flushing.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), und: w}
}

// Publish implements Sink.
func (jw *Writer) Publish(e Event) {
	if jw.err != nil {
		return
	}
	b, err := Encode(e)
	if err != nil {
		jw.err = err
		return
	}
	if _, err := jw.w.Write(b); err != nil {
		jw.err = err
		return
	}
	jw.err = jw.w.WriteByte('\n')
}

// PublishBatch implements BatchSink: one encode loop into the buffered
// writer, byte-identical to publishing each event individually.
func (jw *Writer) PublishBatch(events []Event) {
	for _, e := range events {
		if jw.err != nil {
			return
		}
		jw.Publish(e)
	}
}

// Flush drains the internal buffer and returns the sticky error, if any.
func (jw *Writer) Flush() error {
	if jw.err != nil {
		return jw.err
	}
	jw.err = jw.w.Flush()
	return jw.err
}

// Close flushes and, when the underlying writer is an io.Closer, closes
// it. The first error wins.
func (jw *Writer) Close() error {
	err := jw.Flush()
	if c, ok := jw.und.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
