package sensor

import (
	"math"
	"strings"
	"testing"

	"willow/internal/dist"
)

func TestHealthySensorIsIdentity(t *testing.T) {
	s := New(dist.NewSource(1))
	for tick, truth := range []float64{25, 40.5, 69.999, -3} {
		if got := s.Read(truth, tick); got != truth {
			t.Fatalf("healthy Read(%v) = %v, want bit-identical truth", truth, got)
		}
	}
	// Healthy reads must not consume randomness: two sensors sharing a
	// forked stream stay in lockstep after interleaved healthy reads.
	src := dist.NewSource(7)
	a, b := New(src.Fork()), New(src.Fork())
	a.Read(30, 0)
	a.Set(Fault{Mode: ModeNoise, Magnitude: 1}, 1)
	b.Set(Fault{Mode: ModeNoise, Magnitude: 1}, 1)
	// identical streams were forked in the same order from equal states
	src2 := dist.NewSource(7)
	wantA := 30 + src2.Fork().Normal(0, 1)
	wantB := 30 + src2.Fork().Normal(0, 1)
	if got := a.Read(30, 1); got != wantA {
		t.Fatalf("noise draw perturbed by healthy reads: got %v want %v", got, wantA)
	}
	if got := b.Read(30, 1); got != wantB {
		t.Fatalf("noise draw mismatch: got %v want %v", got, wantB)
	}
}

func TestFaultModes(t *testing.T) {
	s := New(dist.NewSource(2))

	s.Set(Fault{Mode: ModeBias, Magnitude: -5}, 10)
	if got := s.Read(50, 10); got != 45 {
		t.Fatalf("bias read %v, want 45", got)
	}

	s.Set(Fault{Mode: ModeDrift, Magnitude: 0.5}, 20)
	if got := s.Read(50, 20); got != 50 {
		t.Fatalf("drift at onset read %v, want 50", got)
	}
	if got := s.Read(50, 30); got != 55 {
		t.Fatalf("drift after 10 ticks read %v, want 55", got)
	}

	s.Set(Fault{Mode: ModeStuck}, 40)
	if got := s.Read(61.25, 40); got != 61.25 {
		t.Fatalf("stuck freezes at first read: got %v", got)
	}
	if got := s.Read(80, 45); got != 61.25 {
		t.Fatalf("stuck read %v, want frozen 61.25", got)
	}

	s.Set(Fault{Mode: ModeDropout}, 50)
	if got := s.Read(70, 50); !math.IsNaN(got) {
		t.Fatalf("dropout read %v, want NaN", got)
	}

	s.Clear()
	if got := s.Read(33, 60); got != 33 {
		t.Fatalf("cleared sensor read %v, want 33", got)
	}

	s.Set(Fault{Mode: ModeNoise, Magnitude: 2}, 70)
	var dev float64
	for i := 0; i < 200; i++ {
		dev += math.Abs(s.Read(50, 70+i) - 50)
	}
	if dev == 0 {
		t.Fatal("noise fault produced exact readings")
	}
}

func TestModeString(t *testing.T) {
	want := []string{"none", "noise", "bias", "drift", "stuck", "dropout"}
	for i, w := range want {
		if got := Mode(i).String(); got != w {
			t.Fatalf("Mode(%d).String() = %q, want %q", i, got, w)
		}
	}
	if got := Mode(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("invalid mode string %q", got)
	}
}

func TestParseSpecPresetsAndOverrides(t *testing.T) {
	s, err := ParseSpec("heavy")
	if err != nil {
		t.Fatal(err)
	}
	if s != Presets["heavy"] {
		t.Fatalf("preset heavy = %+v, want %+v", s, Presets["heavy"])
	}
	s, err = ParseSpec("medium,noise=3, mttr=99 ")
	if err != nil {
		t.Fatal(err)
	}
	want := Presets["medium"]
	want.Noise = 3
	want.MTTR = 99
	if s != want {
		t.Fatalf("override spec = %+v, want %+v", s, want)
	}
	if !s.Enabled() {
		t.Fatal("medium-based spec should be enabled")
	}
	if (Spec{}).Enabled() || (Spec{MTBF: 100}).Enabled() {
		t.Fatal("specs without a process or a mode must not be enabled")
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, bad := range []string{
		"bogus",          // unknown preset
		"noise=1,light",  // preset not first
		"noise=x",        // unparsable value
		"noise=-1",       // negative
		"noise=NaN",      // non-finite
		"noise=+Inf",     // non-finite
		"frobnicate=1",   // unknown key
		"mtbf=1e999",     // overflows to +Inf
		"light,noise=-2", // negative override
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", bad)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	for name, p := range Presets {
		got, err := ParseSpec(p.String())
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if got != p {
			t.Fatalf("preset %s round-trip = %+v, want %+v", name, got, p)
		}
	}
	if (Spec{}).String() != "" {
		t.Fatalf("zero spec renders %q, want empty", (Spec{}).String())
	}
}

// FuzzSensorSpec asserts the parser contract over arbitrary inputs: it
// never panics, and any spec it accepts canonicalizes to a string that
// re-parses to the identical Spec (round-trip stability).
func FuzzSensorSpec(f *testing.F) {
	f.Add("heavy")
	f.Add("light,noise=2.5")
	f.Add("mtbf=120,mttr=80,bias=6,stuck=1,dropout=2")
	f.Add(" , ,noise=0")
	f.Add("noise==1")
	f.Add("=,=")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpec(spec)
		if err != nil {
			return
		}
		again, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q rejected: %v", s.String(), spec, err)
		}
		if again != s {
			t.Fatalf("round trip of %q: %+v != %+v", spec, again, s)
		}
	})
}
