// Package sensor models the imperfect temperature instruments of a real
// data center. The control packages (internal/core) never read physical
// state directly; every temperature passes through a Sensor, which is a
// transparent window onto the truth until a fault is armed on it.
//
// Fault modes cover the classic instrument failure taxonomy: additive
// Gaussian noise, constant bias, linear drift, stuck-at (the reading
// freezes at the value observed when the fault struck) and dropout (the
// sensor returns NaN). Faults are armed and cleared from the outside —
// typically by a chaos plan's scheduled sensor-fault windows (see
// internal/chaos) — so a run's corruption sequence is a deterministic
// function of its seed, like every other source of randomness in the
// simulator.
package sensor

import (
	"fmt"
	"math"

	"willow/internal/dist"
)

// Mode discriminates sensor fault types. The zero Mode is a healthy
// sensor.
type Mode uint8

const (
	// ModeNone is a healthy sensor: readings equal the truth exactly.
	ModeNone Mode = iota
	// ModeNoise adds zero-mean Gaussian noise of stddev Magnitude (°C)
	// to every reading.
	ModeNoise
	// ModeBias adds the signed constant Magnitude (°C) to every reading.
	ModeBias
	// ModeDrift adds Magnitude (°C per tick, signed) times the ticks
	// elapsed since the fault struck — a slowly wandering calibration.
	ModeDrift
	// ModeStuck freezes the reading at the truth observed when the fault
	// struck.
	ModeStuck
	// ModeDropout returns NaN: the instrument has gone silent.
	ModeDropout

	numModes = int(ModeDropout)
)

// modeNames are the wire names used in specs, telemetry causes and logs.
var modeNames = [...]string{
	ModeNone:    "none",
	ModeNoise:   "noise",
	ModeBias:    "bias",
	ModeDrift:   "drift",
	ModeStuck:   "stuck",
	ModeDropout: "dropout",
}

// String returns the mode's wire name.
func (m Mode) String() string {
	if int(m) <= numModes {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Fault is one armed failure: a mode plus its magnitude (noise stddev,
// signed bias offset, or signed drift rate; unused for stuck/dropout).
type Fault struct {
	Mode      Mode
	Magnitude float64
}

// Sensor is one temperature instrument. The zero fault state is a
// perfect pass-through; Read never draws randomness unless a noise
// fault is active, so attaching healthy sensors to a run perturbs no
// random stream.
type Sensor struct {
	src *dist.Source

	fault    Fault
	since    int // tick the active fault struck (drift ramp origin)
	stuck    float64
	hasStuck bool
}

// New returns a healthy sensor drawing its noise from src (which must
// be private to this sensor for determinism; nil gets a fixed stream).
func New(src *dist.Source) *Sensor {
	if src == nil {
		src = dist.NewSource(0)
	}
	return &Sensor{src: src}
}

// Set arms a fault at the given tick, replacing any active one.
func (s *Sensor) Set(f Fault, tick int) {
	s.fault = f
	s.since = tick
	s.hasStuck = false
}

// Clear returns the sensor to healthy pass-through.
func (s *Sensor) Clear() {
	s.fault = Fault{}
	s.hasStuck = false
}

// Fault returns the currently armed fault (ModeNone when healthy).
func (s *Sensor) Fault() Fault { return s.fault }

// Read reports the instrument's view of the true value at the given
// tick. Healthy sensors return the truth bit-for-bit.
func (s *Sensor) Read(truth float64, tick int) float64 {
	switch s.fault.Mode {
	case ModeNoise:
		return truth + s.src.Normal(0, s.fault.Magnitude)
	case ModeBias:
		return truth + s.fault.Magnitude
	case ModeDrift:
		return truth + s.fault.Magnitude*float64(tick-s.since)
	case ModeStuck:
		if !s.hasStuck {
			s.stuck = truth
			s.hasStuck = true
		}
		return s.stuck
	case ModeDropout:
		return math.NaN()
	default:
		return truth
	}
}
