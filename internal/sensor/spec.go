package sensor

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Spec is the stochastic sensor-fault model of a run: per-server fault
// windows arrive as a renewal process of mean MTBF ticks and last a mean
// of MTTR ticks; each window picks one fault mode by weight. The
// magnitude fields double as mode enables — a zero magnitude (or weight)
// removes its mode from the draw. The zero Spec injects nothing.
//
// Spec only describes the model; expansion into concrete scheduled
// windows lives in internal/chaos (Schedule.Sensor* fields), keeping all
// fault randomness under the one chaos determinism contract.
type Spec struct {
	// MTBF / MTTR are the per-server mean ticks between sensor-fault
	// windows and the mean window length (both exponential).
	MTBF, MTTR float64
	// Noise is the Gaussian noise stddev (°C); > 0 enables ModeNoise.
	Noise float64
	// Bias is the constant offset magnitude (°C, sign drawn per window);
	// > 0 enables ModeBias.
	Bias float64
	// Drift is the drift rate magnitude (°C per tick, sign drawn per
	// window); > 0 enables ModeDrift.
	Drift float64
	// Stuck and Dropout are the relative draw weights of ModeStuck and
	// ModeDropout (the magnitude-bearing modes weigh 1 each when
	// enabled).
	Stuck, Dropout float64
}

// ParseSpec parses a sensor-fault specification. A spec is a comma-
// separated list whose first element may be a preset — "light", "medium"
// or "heavy" — followed by key=value overrides:
//
//	heavy
//	medium,noise=3
//	mtbf=200,mttr=80,bias=6,dropout=1
//
// Keys: mtbf, mttr (ticks), noise (°C stddev), bias (°C), drift
// (°C/tick), stuck, dropout (draw weights). Values must be non-negative
// and finite.
func ParseSpec(spec string) (Spec, error) {
	var s Spec
	fields := strings.Split(spec, ",")
	for i, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if !strings.Contains(f, "=") {
			if i != 0 {
				return s, fmt.Errorf("sensor: preset %q must come first in spec %q", f, spec)
			}
			preset, ok := Presets[f]
			if !ok {
				return s, fmt.Errorf("sensor: unknown preset %q (valid presets: %s)", f, strings.Join(Names(), ", "))
			}
			s = preset
			continue
		}
		key, val, _ := strings.Cut(f, "=")
		key = strings.TrimSpace(key)
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return s, fmt.Errorf("sensor: bad value in %q: %v", f, err)
		}
		if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			return s, fmt.Errorf("sensor: value in %q must be non-negative and finite", f)
		}
		field, ok := specKeys[key]
		if !ok {
			return s, fmt.Errorf("sensor: unknown key %q in spec %q", key, spec)
		}
		*field(&s) = v
	}
	return s, nil
}

// String renders the spec as a canonical key=value list that ParseSpec
// round-trips; the zero Spec renders empty.
func (s Spec) String() string {
	var parts []string
	add := func(key string, v float64) {
		if v != 0 {
			parts = append(parts, key+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("mtbf", s.MTBF)
	add("mttr", s.MTTR)
	add("noise", s.Noise)
	add("bias", s.Bias)
	add("drift", s.Drift)
	add("stuck", s.Stuck)
	add("dropout", s.Dropout)
	return strings.Join(parts, ",")
}

// Enabled reports whether the spec can inject anything: a fault process
// (MTBF > 0) and at least one enabled mode.
func (s Spec) Enabled() bool {
	return s.MTBF > 0 && (s.Noise > 0 || s.Bias > 0 || s.Drift > 0 || s.Stuck > 0 || s.Dropout > 0)
}

// Presets are the named sensor-fault intensity levels, calibrated for
// runs of a few hundred ticks over tens of servers.
var Presets = map[string]Spec{
	"light": {
		MTBF: 400, MTTR: 50,
		Noise: 1.5, Bias: 4,
	},
	"medium": {
		MTBF: 220, MTTR: 80,
		Noise: 2, Bias: 5, Drift: 0.3,
		Stuck: 1,
	},
	"heavy": {
		MTBF: 120, MTTR: 120,
		Noise: 2.5, Bias: 8, Drift: 0.5,
		Stuck: 1, Dropout: 1,
	},
}

// Names returns the valid preset names, sorted — the list surfaced by
// unknown-preset errors and the CLIs' usage text.
func Names() []string {
	names := make([]string, 0, len(Presets))
	for n := range Presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// specKeys maps spec keys to their Spec fields.
var specKeys = map[string]func(*Spec) *float64{
	"mtbf":    func(s *Spec) *float64 { return &s.MTBF },
	"mttr":    func(s *Spec) *float64 { return &s.MTTR },
	"noise":   func(s *Spec) *float64 { return &s.Noise },
	"bias":    func(s *Spec) *float64 { return &s.Bias },
	"drift":   func(s *Spec) *float64 { return &s.Drift },
	"stuck":   func(s *Spec) *float64 { return &s.Stuck },
	"dropout": func(s *Spec) *float64 { return &s.Dropout },
}
