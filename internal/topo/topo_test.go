package topo

import (
	"strings"
	"testing"
	"testing/quick"
)

// paperTree builds the 4-level, 18-server configuration of Fig. 3.
func paperTree(t *testing.T) *Tree {
	t.Helper()
	tr, err := Build([]int{2, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildPaperConfiguration(t *testing.T) {
	tr := paperTree(t)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.NumServers(); got != 18 {
		t.Errorf("NumServers = %d, want 18", got)
	}
	if tr.Height != 3 {
		t.Errorf("Height = %d, want 3 (root at level 3, servers at 0)", tr.Height)
	}
	if got := len(tr.LevelNodes(2)); got != 2 {
		t.Errorf("level-2 nodes = %d, want 2", got)
	}
	if got := len(tr.LevelNodes(1)); got != 6 {
		t.Errorf("level-1 nodes = %d, want 6", got)
	}
	if got := len(tr.Nodes); got != 1+2+6+18 {
		t.Errorf("total nodes = %d, want 27", got)
	}
}

func TestBuildRejectsBadFanout(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("empty fan-out accepted")
	}
	if _, err := Build([]int{2, 0}); err == nil {
		t.Error("zero fan-out accepted")
	}
	if _, err := Build([]int{-1}); err == nil {
		t.Error("negative fan-out accepted")
	}
}

func TestBuildSingleLevel(t *testing.T) {
	tr, err := Build([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumServers() != 3 || tr.Height != 1 {
		t.Errorf("got %d servers height %d, want 3 servers height 1", tr.NumServers(), tr.Height)
	}
	for _, s := range tr.Servers {
		if s.Parent != tr.Root {
			t.Errorf("server %s parent is not root", s.Name())
		}
	}
}

func TestServerNamesAreOneBased(t *testing.T) {
	tr := paperTree(t)
	if got := tr.Servers[0].Name(); got != "server-1" {
		t.Errorf("first server named %q, want server-1", got)
	}
	if got := tr.Servers[17].Name(); got != "server-18" {
		t.Errorf("last server named %q, want server-18", got)
	}
}

func TestSiblings(t *testing.T) {
	tr := paperTree(t)
	s := tr.Servers[0]
	sib := s.Siblings()
	if len(sib) != 2 {
		t.Fatalf("server-1 has %d siblings, want 2", len(sib))
	}
	for _, x := range sib {
		if x == s {
			t.Error("Siblings includes the node itself")
		}
		if x.Parent != s.Parent {
			t.Error("sibling with different parent")
		}
	}
	if got := tr.Root.Siblings(); got != nil {
		t.Errorf("root has siblings: %v", got)
	}
}

func TestPathToRoot(t *testing.T) {
	tr := paperTree(t)
	path := tr.Servers[0].PathToRoot()
	if len(path) != 4 {
		t.Fatalf("path length %d, want 4", len(path))
	}
	if path[0] != tr.Servers[0] || path[3] != tr.Root {
		t.Error("path endpoints wrong")
	}
	for i := 1; i < len(path); i++ {
		if path[i] != path[i-1].Parent {
			t.Error("path link broken")
		}
	}
}

func TestLCA(t *testing.T) {
	tr := paperTree(t)
	s := tr.Servers
	// Servers 0,1,2 share a level-1 parent.
	if got := tr.LCA(s[0], s[1]); got != s[0].Parent {
		t.Errorf("LCA of siblings = %s, want their parent", got.Name())
	}
	// Servers 0 and 3 are in different level-1 groups under the same
	// level-2 node.
	if got := tr.LCA(s[0], s[3]); got.Level != 2 {
		t.Errorf("LCA(s0, s3) at level %d, want 2", got.Level)
	}
	// Servers 0 and 17 meet only at the root.
	if got := tr.LCA(s[0], s[17]); got != tr.Root {
		t.Errorf("LCA(s0, s17) = %s, want root", got.Name())
	}
	// Self and nil cases.
	if got := tr.LCA(s[5], s[5]); got != s[5] {
		t.Errorf("LCA(x, x) = %v, want x", got)
	}
	if got := tr.LCA(nil, s[0]); got != nil {
		t.Errorf("LCA(nil, x) = %v, want nil", got)
	}
	// Mixed levels: a server and its own grandparent.
	gp := s[0].Parent.Parent
	if got := tr.LCA(s[0], gp); got != gp {
		t.Errorf("LCA(server, grandparent) = %s, want grandparent", got.Name())
	}
}

func TestSwitchPathSiblings(t *testing.T) {
	tr := paperTree(t)
	path := tr.SwitchPath(tr.Servers[0], tr.Servers[1])
	if len(path) != 1 {
		t.Fatalf("sibling path has %d switches, want 1", len(path))
	}
	if path[0] != tr.Servers[0].Parent {
		t.Error("sibling path is not the shared parent switch")
	}
}

func TestSwitchPathCrossRack(t *testing.T) {
	tr := paperTree(t)
	// s0 under pmu-1.0 / pmu-2.0; s17 under pmu-1.5 / pmu-2.1: path is
	// pmu-1.0, pmu-2.0, dc, pmu-2.1, pmu-1.5 -> 5 switches.
	path := tr.SwitchPath(tr.Servers[0], tr.Servers[17])
	if len(path) != 5 {
		t.Fatalf("cross-tree path has %d switches, want 5", len(path))
	}
	if path[2] != tr.Root {
		t.Errorf("middle of cross-tree path is %s, want root", path[2].Name())
	}
	// Path endpoints adjacent to each server.
	if path[0] != tr.Servers[0].Parent || path[4] != tr.Servers[17].Parent {
		t.Error("path does not start/end at the endpoint parents")
	}
}

func TestSwitchPathSameNode(t *testing.T) {
	tr := paperTree(t)
	if got := tr.SwitchPath(tr.Servers[3], tr.Servers[3]); got != nil {
		t.Errorf("self path = %v, want nil", got)
	}
}

func TestHopCount(t *testing.T) {
	tr := paperTree(t)
	cases := []struct {
		a, b int
		want int
	}{
		{0, 1, 1},  // siblings
		{0, 3, 3},  // same level-2 group, different level-1
		{0, 17, 5}, // across the root
		{4, 4, 0},  // self
	}
	for _, c := range cases {
		if got := tr.HopCount(tr.Servers[c.a], tr.Servers[c.b]); got != c.want {
			t.Errorf("HopCount(s%d, s%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIsLocal(t *testing.T) {
	tr := paperTree(t)
	if !IsLocal(tr.Servers[0], tr.Servers[2]) {
		t.Error("siblings not reported local")
	}
	if IsLocal(tr.Servers[0], tr.Servers[3]) {
		t.Error("non-siblings reported local")
	}
	if IsLocal(tr.Servers[0], tr.Servers[0]) {
		t.Error("node local to itself")
	}
	if IsLocal(nil, tr.Servers[0]) {
		t.Error("nil reported local")
	}
}

func TestStringRendersAllNodes(t *testing.T) {
	tr := paperTree(t)
	s := tr.String()
	if got := strings.Count(s, "\n"); got != len(tr.Nodes) {
		t.Errorf("String renders %d lines, want %d", got, len(tr.Nodes))
	}
	if !strings.Contains(s, "server-18") {
		t.Error("String missing server-18")
	}
}

func TestKindString(t *testing.T) {
	if KindPMU.String() != "pmu" || KindServer.String() != "server" {
		t.Error("Kind.String wrong")
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Errorf("unknown kind renders %q", got)
	}
}

// Property: for arbitrary small fan-outs the built tree validates, has the
// expected server count, and LCA/SwitchPath invariants hold for random
// server pairs.
func TestBuildQuick(t *testing.T) {
	f := func(rawLevels, rawA, rawB uint8) bool {
		depth := int(rawLevels%3) + 1
		fanout := make([]int, depth)
		want := 1
		for i := range fanout {
			fanout[i] = int(rawLevels>>(2*i))%3 + 1
			want *= fanout[i]
		}
		tr, err := Build(fanout)
		if err != nil {
			return false
		}
		if tr.Validate() != nil || tr.NumServers() != want {
			return false
		}
		a := tr.Servers[int(rawA)%want]
		b := tr.Servers[int(rawB)%want]
		lca := tr.LCA(a, b)
		if lca == nil {
			return false
		}
		path := tr.SwitchPath(a, b)
		if a == b {
			return len(path) == 0
		}
		// Path length = 2*(levels from server up to LCA) - 1.
		wantLen := 2*lca.Level - 1
		if len(path) != wantLen {
			return false
		}
		// All path nodes are internal.
		for _, n := range path {
			if n.IsLeaf() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build([]int{4, 8, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSwitchPath(b *testing.B) {
	tr, err := Build([]int{4, 8, 16})
	if err != nil {
		b.Fatal(err)
	}
	n := tr.NumServers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SwitchPath(tr.Servers[i%n], tr.Servers[(i*7+13)%n])
	}
}

func TestBuildIrregularTestbedShape(t *testing.T) {
	// The paper's testbed (Fig. 13): two level-1 switches, one over two
	// servers and one over a single server.
	tr, err := BuildIrregular([][]int{{2}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumServers() != 3 {
		t.Fatalf("servers = %d, want 3", tr.NumServers())
	}
	if got := len(tr.LevelNodes(1)); got != 2 {
		t.Errorf("level-1 nodes = %d, want 2", got)
	}
	// Servers 0 and 1 are siblings; server 2 sits alone.
	if !IsLocal(tr.Servers[0], tr.Servers[1]) {
		t.Error("servers 0 and 1 not siblings")
	}
	if got := tr.HopCount(tr.Servers[0], tr.Servers[2]); got != 3 {
		t.Errorf("hops(0, 2) = %d, want 3", got)
	}
}

func TestBuildIrregularValidation(t *testing.T) {
	if _, err := BuildIrregular(nil); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := BuildIrregular([][]int{{2}, {1}}); err == nil {
		t.Error("row width mismatch accepted")
	}
	if _, err := BuildIrregular([][]int{{0}}); err == nil {
		t.Error("zero child count accepted")
	}
}

func TestBuildMatchesIrregularEquivalent(t *testing.T) {
	a, err := Build([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildIrregular([][]int{{2}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumServers() != b.NumServers() || len(a.Nodes) != len(b.Nodes) {
		t.Error("Build and BuildIrregular disagree on equivalent specs")
	}
}
