// Package topo models the hierarchical structure of a data center as used
// by Willow's multi-level power control (Section IV-A, Fig. 1/3 of the
// paper): a tree of power management units (PMUs) whose leaves are
// servers.
//
// The paper's evaluation mirrors the switch topology onto the PMU
// hierarchy (Fig. 8 against Fig. 3): every internal PMU node has an
// associated switch that connects its children, so level-1 switches sit
// directly above the servers, level-2 switches above those, and so on.
// Migration traffic between two servers traverses exactly the switches of
// the internal nodes on the tree path between them, which is how the
// controller attributes migration cost to switches (Figs. 10–12).
package topo

import (
	"fmt"
	"strings"
)

// Kind distinguishes the roles a tree node can play.
type Kind int

const (
	// KindPMU is an internal power-management node (data center, rack,
	// enclosure...). Every PMU also carries the switch connecting its
	// children in the mirrored network topology.
	KindPMU Kind = iota
	// KindServer is a leaf node hosting workload.
	KindServer
)

func (k Kind) String() string {
	switch k {
	case KindPMU:
		return "pmu"
	case KindServer:
		return "server"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is one vertex of the hierarchy.
type Node struct {
	ID       int   // dense index over all nodes, BFS order from the root
	Kind     Kind  // PMU (internal) or server (leaf)
	Level    int   // 0 for servers, increasing toward the root
	Parent   *Node // nil for the root
	Children []*Node

	// ServerIndex is the dense index among servers (0-based, left to
	// right) for KindServer nodes, -1 otherwise. The paper numbers its
	// simulation servers 1–18 left to right; callers add 1 for display.
	ServerIndex int

	name string
}

// Name returns a human-readable identifier such as "dc", "pmu-1.0" or
// "server-17".
func (n *Node) Name() string { return n.name }

// IsLeaf reports whether the node is a server.
func (n *Node) IsLeaf() bool { return n.Kind == KindServer }

// Siblings returns the node's siblings (children of the same parent,
// excluding the node itself). The root has none.
func (n *Node) Siblings() []*Node {
	if n.Parent == nil {
		return nil
	}
	out := make([]*Node, 0, len(n.Parent.Children)-1)
	for _, c := range n.Parent.Children {
		if c != n {
			out = append(out, c)
		}
	}
	return out
}

// PathToRoot returns the nodes from n (inclusive) up to the root
// (inclusive).
func (n *Node) PathToRoot() []*Node {
	var path []*Node
	for cur := n; cur != nil; cur = cur.Parent {
		path = append(path, cur)
	}
	return path
}

// Tree is a complete PMU hierarchy.
type Tree struct {
	Root    *Node
	Nodes   []*Node // all nodes, indexed by Node.ID
	Servers []*Node // leaves, indexed by Node.ServerIndex
	Height  int     // root level; servers are level 0
}

// Build constructs a hierarchy from a fan-out specification, given from
// the root downward: Build([]int{2, 3, 3}) yields a root with 2 children,
// each with 3 children, each with 3 server leaves — the 4-level, 18-server
// configuration the paper simulates (Fig. 3). The root's level equals
// len(fanout) and the leaves are servers at level 0.
func Build(fanout []int) (*Tree, error) {
	if len(fanout) == 0 {
		return nil, fmt.Errorf("topo: empty fan-out")
	}
	levels := make([][]int, len(fanout))
	width := 1
	for i, f := range fanout {
		if f < 1 {
			return nil, fmt.Errorf("topo: fan-out[%d] = %d, must be >= 1", i, f)
		}
		levels[i] = make([]int, width)
		for j := range levels[i] {
			levels[i][j] = f
		}
		width *= f
	}
	return BuildIrregular(levels)
}

// BuildIrregular constructs a hierarchy with per-node child counts:
// levels[d][i] is the number of children of the i-th node (left to
// right) at depth d. BuildIrregular([][]int{{2}, {2, 1}}) is the paper's
// testbed network (Fig. 13): a root over two level-1 switches, the first
// connecting two servers and the second one.
func BuildIrregular(levels [][]int) (*Tree, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("topo: empty level specification")
	}
	width := 1
	for d, row := range levels {
		if len(row) != width {
			return nil, fmt.Errorf("topo: level %d has %d entries for %d nodes", d, len(row), width)
		}
		width = 0
		for i, f := range row {
			if f < 1 {
				return nil, fmt.Errorf("topo: levels[%d][%d] = %d, must be >= 1", d, i, f)
			}
			width += f
		}
	}
	height := len(levels)
	t := &Tree{Height: height}
	t.Root = &Node{Kind: KindPMU, Level: height, ServerIndex: -1, name: "dc"}
	t.Nodes = append(t.Nodes, t.Root)

	frontier := []*Node{t.Root}
	for depth, row := range levels {
		level := height - depth - 1
		var next []*Node
		for pi, parent := range frontier {
			for c := 0; c < row[pi]; c++ {
				child := &Node{
					Parent:      parent,
					Level:       level,
					ServerIndex: -1,
				}
				if level == 0 {
					child.Kind = KindServer
					child.ServerIndex = len(t.Servers)
					child.name = fmt.Sprintf("server-%d", child.ServerIndex+1)
					t.Servers = append(t.Servers, child)
				} else {
					child.Kind = KindPMU
					child.name = fmt.Sprintf("pmu-%d.%d", level, len(next))
				}
				child.ID = len(t.Nodes)
				t.Nodes = append(t.Nodes, child)
				parent.Children = append(parent.Children, child)
				next = append(next, child)
			}
		}
		frontier = next
	}
	return t, nil
}

// NumServers returns the number of leaf servers.
func (t *Tree) NumServers() int { return len(t.Servers) }

// LevelNodes returns all nodes at the given level, left to right.
func (t *Tree) LevelNodes(level int) []*Node {
	var out []*Node
	for _, n := range t.Nodes {
		if n.Level == level {
			out = append(out, n)
		}
	}
	return out
}

// LCA returns the lowest common ancestor of a and b.
func (t *Tree) LCA(a, b *Node) *Node {
	if a == nil || b == nil {
		return nil
	}
	for a.Level < b.Level {
		a = a.Parent
	}
	for b.Level < a.Level {
		b = b.Parent
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

// SwitchPath returns the internal (PMU/switch) nodes traversed by traffic
// between servers a and b: every internal node on the tree path, i.e. the
// ancestors of each endpoint up to and including their LCA. For siblings
// the path is the single shared parent switch; for a == b it is empty.
func (t *Tree) SwitchPath(a, b *Node) []*Node {
	if a == b {
		return nil
	}
	lca := t.LCA(a, b)
	var path []*Node
	for cur := a.Parent; cur != lca; cur = cur.Parent {
		path = append(path, cur)
	}
	path = append(path, lca)
	// Descend side collected in reverse to keep path order a -> b.
	var down []*Node
	for cur := b.Parent; cur != lca; cur = cur.Parent {
		down = append(down, cur)
	}
	for i := len(down) - 1; i >= 0; i-- {
		path = append(path, down[i])
	}
	return path
}

// HopCount returns the number of switches traffic between a and b
// traverses — len(SwitchPath) — a convenient distance measure: 1 for
// siblings, 3 for servers two subtrees apart under a shared grandparent,
// and so on.
func (t *Tree) HopCount(a, b *Node) int { return len(t.SwitchPath(a, b)) }

// IsLocal reports whether servers a and b share a parent — the paper's
// "local migration" (Section IV-E): migrations between siblings are
// preferred because they touch a single switch and keep resource affinity.
func IsLocal(a, b *Node) bool {
	return a != nil && b != nil && a != b && a.Parent == b.Parent
}

// String renders the tree structure, one node per line, indented by depth.
// Intended for debugging and documentation output.
func (t *Tree) String() string {
	var sb strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&sb, "%s (level %d, %s)\n", n.Name(), n.Level, n.Kind)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	return sb.String()
}

// Validate checks structural invariants: dense IDs, consistent parent and
// level links, servers exactly at level 0. It exists so fuzz/property
// tests can assert tree well-formedness cheaply.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("topo: nil root")
	}
	if t.Root.Level != t.Height {
		return fmt.Errorf("topo: root level %d != height %d", t.Root.Level, t.Height)
	}
	for i, n := range t.Nodes {
		if n.ID != i {
			return fmt.Errorf("topo: node %q has ID %d at index %d", n.Name(), n.ID, i)
		}
		if (n.Level == 0) != (n.Kind == KindServer) {
			return fmt.Errorf("topo: node %q level/kind mismatch", n.Name())
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("topo: child %q of %q has wrong parent", c.Name(), n.Name())
			}
			if c.Level != n.Level-1 {
				return fmt.Errorf("topo: child %q level %d under %q level %d", c.Name(), c.Level, n.Name(), n.Level)
			}
		}
	}
	for i, s := range t.Servers {
		if s.ServerIndex != i {
			return fmt.Errorf("topo: server %q index %d at slot %d", s.Name(), s.ServerIndex, i)
		}
	}
	return nil
}
