package binpack

// fitTree is a tournament tree over open bins that answers first-fit
// queries in O(log n): "what is the lowest-numbered open bin with at least
// r remaining capacity?" Bins are numbered in opening order, matching the
// first-fit rule's preference for earlier bins.
//
// The tree is a fixed-capacity complete binary tree stored in an array;
// internal nodes hold the maximum remaining capacity in their subtree.
// A query descends left-first, which yields the leftmost (= earliest
// opened) fitting bin.
type fitTree struct {
	cap  int       // number of leaves (power of two)
	n    int       // bins opened so far
	node []float64 // 1-based heap layout; node[1] is the root
}

// newFitTree returns a tree able to hold up to maxBins open bins.
func newFitTree(maxBins int) *fitTree {
	c := 1
	for c < maxBins {
		c *= 2
	}
	if maxBins == 0 {
		c = 1
	}
	return &fitTree{cap: c, node: make([]float64, 2*c)}
}

// open registers a new bin with the given remaining capacity and returns
// nothing; the bin's index is the current count (opening order).
func (t *fitTree) open(remaining float64) {
	if t.n >= t.cap {
		panic("binpack: fitTree capacity exceeded")
	}
	i := t.cap + t.n
	t.n++
	t.node[i] = remaining
	for i >>= 1; i >= 1; i >>= 1 {
		if m := max64(t.node[2*i], t.node[2*i+1]); m == t.node[i] {
			break
		} else {
			t.node[i] = m
		}
	}
}

// firstFit returns the index of the lowest-numbered open bin whose
// remaining capacity is at least size (within epsilon). If no open bin
// fits, it returns t.n — the index the next opened bin would get, which
// callers use as an "open a new bin" signal.
func (t *fitTree) firstFit(size float64) int {
	need := size - epsilon
	if t.n == 0 || t.node[1] < need {
		return t.n
	}
	i := 1
	for i < t.cap {
		if t.node[2*i] >= need {
			i = 2 * i
		} else {
			i = 2*i + 1
		}
	}
	idx := i - t.cap
	if idx >= t.n {
		// The fitting leaf is an unopened slot (can only happen through
		// floating-point coincidence with zero-capacity leaves).
		return t.n
	}
	return idx
}

// consume reduces bin b's remaining capacity by size.
func (t *fitTree) consume(b int, size float64) {
	if b < 0 || b >= t.n {
		panic("binpack: consume on unopened bin")
	}
	i := t.cap + b
	t.node[i] -= size
	if t.node[i] < 0 {
		t.node[i] = 0
	}
	for i >>= 1; i >= 1; i >>= 1 {
		t.node[i] = max64(t.node[2*i], t.node[2*i+1])
	}
}

// remaining reports bin b's remaining capacity.
func (t *fitTree) remaining(b int) float64 {
	if b < 0 || b >= t.n {
		panic("binpack: remaining on unopened bin")
	}
	return t.node[t.cap+b]
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
