package binpack

import (
	"math"
	"testing"
	"testing/quick"

	"willow/internal/dist"
)

func itemsOf(p Packing) map[int]bool {
	set := map[int]bool{}
	for _, b := range p.Bins {
		for _, it := range b.Items {
			set[it] = true
		}
	}
	return set
}

// checkPacking verifies structural invariants every packing must satisfy:
// all items placed exactly once, no bin overfilled, capacity bookkeeping
// consistent.
func checkPacking(t *testing.T, name string, items []float64, p Packing) {
	t.Helper()
	seen := map[int]int{}
	total := 0.0
	for bi, b := range p.Bins {
		used := 0.0
		for _, it := range b.Items {
			seen[it]++
			used += items[it]
		}
		if math.Abs(used-b.Used) > 1e-6 {
			t.Errorf("%s: bin %d reports used %v, actual %v", name, bi, b.Used, used)
		}
		if used > b.Size+1e-6 {
			t.Errorf("%s: bin %d overfilled: %v in size %v", name, bi, used, b.Size)
		}
		total += b.Size
	}
	if math.Abs(total-p.TotalCapacity) > 1e-6 {
		t.Errorf("%s: TotalCapacity %v != sum of bin sizes %v", name, p.TotalCapacity, total)
	}
	for i := range items {
		if seen[i] != 1 {
			t.Errorf("%s: item %d placed %d times", name, i, seen[i])
		}
	}
}

func TestFFDLREmptyInstance(t *testing.T) {
	p, err := FFDLR(nil, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Bins) != 0 || p.TotalCapacity != 0 {
		t.Errorf("empty instance produced %+v", p)
	}
}

func TestFFDLRSingleItem(t *testing.T) {
	p, err := FFDLR([]float64{0.4}, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Bins) != 1 {
		t.Fatalf("want 1 bin, got %d", len(p.Bins))
	}
	// Repack step must have shrunk the bin to the 0.5 size.
	if p.Bins[0].Size != 0.5 {
		t.Errorf("repack chose size %v, want 0.5", p.Bins[0].Size)
	}
}

func TestFFDLRRepackShrinksBins(t *testing.T) {
	// Items sum to 0.3 per bin; FFD opens size-1 bins, repack must shrink
	// each to 0.3-capable bins.
	items := []float64{0.3, 0.3, 0.3}
	sizes := []float64{0.3, 1.0}
	p, err := FFDLR(items, sizes)
	if err != nil {
		t.Fatal(err)
	}
	checkPacking(t, "FFDLR", items, p)
	// FFD puts 0.3+0.3+0.3 in one size-1 bin (fits: 0.9<=1), repack keeps
	// it in a size-1 bin. TotalCapacity must be 1, not 3.
	if p.TotalCapacity > 1+1e-9 {
		t.Errorf("TotalCapacity = %v, want <= 1", p.TotalCapacity)
	}
}

func TestFFDLRRejectsOversizeItem(t *testing.T) {
	if _, err := FFDLR([]float64{2}, []float64{1}); err == nil {
		t.Error("item larger than largest bin accepted")
	}
}

func TestFFDLRRejectsBadSizes(t *testing.T) {
	if _, err := FFDLR([]float64{0.5}, nil); err == nil {
		t.Error("empty size list accepted")
	}
	if _, err := FFDLR([]float64{0.5}, []float64{0, 1}); err == nil {
		t.Error("zero bin size accepted")
	}
	if _, err := FFDLR([]float64{-0.5}, []float64{1}); err == nil {
		t.Error("negative item accepted")
	}
}

func TestNextFitOrderSensitive(t *testing.T) {
	sizes := []float64{1}
	// Alternating big/small defeats NextFit.
	items := []float64{0.6, 0.5, 0.6, 0.5}
	nf, err := NextFit(items, sizes)
	if err != nil {
		t.Fatal(err)
	}
	checkPacking(t, "NextFit", items, nf)
	ffd, err := FirstFitDecreasing(items, sizes)
	if err != nil {
		t.Fatal(err)
	}
	checkPacking(t, "FFD", items, ffd)
	if nf.TotalCapacity < ffd.TotalCapacity {
		t.Errorf("NextFit (%v) beat FFD (%v) on its worst case", nf.TotalCapacity, ffd.TotalCapacity)
	}
}

func TestFFDClassicExample(t *testing.T) {
	// 6 items of 0.5 into unit bins -> exactly 3 bins.
	items := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	p, err := FirstFitDecreasing(items, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Bins) != 3 {
		t.Errorf("FFD used %d bins, want 3", len(p.Bins))
	}
}

func TestExactSmallInstances(t *testing.T) {
	cases := []struct {
		name  string
		items []float64
		sizes []float64
		want  float64 // optimal total capacity
	}{
		{"single", []float64{0.4}, []float64{0.5, 1}, 0.5},
		{"pair fits small bins", []float64{0.4, 0.4}, []float64{0.4, 1}, 0.8},
		{"pair shares big bin", []float64{0.4, 0.4}, []float64{0.8, 1}, 0.8},
		{"three thirds", []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, []float64{1}, 1},
		{"mixed", []float64{0.7, 0.3, 0.3, 0.3}, []float64{0.3, 0.7, 1}, 1.6},
	}
	for _, c := range cases {
		p, err := Exact(c.items, c.sizes)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		checkPacking(t, "Exact/"+c.name, c.items, p)
		if math.Abs(p.TotalCapacity-c.want) > 1e-6 {
			t.Errorf("%s: Exact total = %v, want %v", c.name, p.TotalCapacity, c.want)
		}
	}
}

func TestExactNeverWorseThanFFDLR(t *testing.T) {
	src := dist.NewSource(21)
	for trial := 0; trial < 60; trial++ {
		n := 2 + src.Intn(8)
		items := make([]float64, n)
		for i := range items {
			items[i] = src.Uniform(0.05, 1)
		}
		sizes := []float64{0.25, 0.5, 1}
		opt, err := Exact(items, sizes)
		if err != nil {
			t.Fatal(err)
		}
		heur, err := FFDLR(items, sizes)
		if err != nil {
			t.Fatal(err)
		}
		if opt.TotalCapacity > heur.TotalCapacity+1e-9 {
			t.Fatalf("trial %d: Exact (%v) worse than FFDLR (%v)", trial, opt.TotalCapacity, heur.TotalCapacity)
		}
	}
}

// TestFFDLRBound verifies the paper's quoted guarantee: FFDLR total
// capacity <= (3/2)·OPT + 1 in units where the largest bin has size 1
// (Section IV-F; Friesen & Langston).
func TestFFDLRBound(t *testing.T) {
	src := dist.NewSource(7)
	sizes := []float64{0.2, 0.35, 0.6, 1}
	for trial := 0; trial < 120; trial++ {
		n := 2 + src.Intn(9)
		items := make([]float64, n)
		for i := range items {
			items[i] = src.Uniform(0.01, 1)
		}
		opt, err := Exact(items, sizes)
		if err != nil {
			t.Fatal(err)
		}
		heur, err := FFDLR(items, sizes)
		if err != nil {
			t.Fatal(err)
		}
		checkPacking(t, "FFDLR", items, heur)
		if heur.TotalCapacity > 1.5*opt.TotalCapacity+1+1e-9 {
			t.Errorf("trial %d: FFDLR %v exceeds 1.5·OPT+1 = %v (items %v)",
				trial, heur.TotalCapacity, 1.5*opt.TotalCapacity+1, items)
		}
	}
}

// Property: FFDLR always produces a structurally valid packing for random
// feasible instances.
func TestFFDLRValidQuick(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		src := dist.NewSource(seed)
		n := int(rawN%40) + 1
		items := make([]float64, n)
		for i := range items {
			items[i] = src.Uniform(0, 1)
		}
		sizes := []float64{0.25, 0.5, 0.75, 1}
		p, err := FFDLR(items, sizes)
		if err != nil {
			return false
		}
		placed := itemsOf(p)
		if len(placed) != n {
			return false
		}
		for _, b := range p.Bins {
			if b.Used > b.Size+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMatchFFDBasics(t *testing.T) {
	items := []Item{{ID: 1, Size: 5}, {ID: 2, Size: 3}, {ID: 3, Size: 8}}
	bins := []Bin{{ID: 10, Capacity: 9}, {ID: 20, Capacity: 8}}
	m := MatchFFD(items, bins)
	if len(m.Unplaced) != 0 {
		t.Fatalf("unplaced: %v", m.Unplaced)
	}
	// Decreasing order: 8 -> bin 10 (first fit), 5 -> bin 20, 3 -> bin 20.
	if m.Assigned[3] != 10 {
		t.Errorf("item 3 -> bin %d, want 10", m.Assigned[3])
	}
	if m.Assigned[1] != 20 || m.Assigned[2] != 20 {
		t.Errorf("items 1,2 -> bins %d,%d, want 20,20", m.Assigned[1], m.Assigned[2])
	}
	if got := m.Residual[10]; math.Abs(got-1) > 1e-9 {
		t.Errorf("bin 10 residual %v, want 1", got)
	}
	if got := m.Residual[20]; math.Abs(got-0) > 1e-9 {
		t.Errorf("bin 20 residual %v, want 0", got)
	}
}

func TestMatchFFDPrefersEarlierBins(t *testing.T) {
	// Bin order encodes Willow's locality preference; equal-capacity bins
	// must fill in order.
	items := []Item{{ID: 1, Size: 2}}
	bins := []Bin{{ID: 100, Capacity: 5}, {ID: 200, Capacity: 5}}
	m := MatchFFD(items, bins)
	if m.Assigned[1] != 100 {
		t.Errorf("item went to bin %d, want first-listed bin 100", m.Assigned[1])
	}
}

func TestMatchFFDUnplaced(t *testing.T) {
	items := []Item{{ID: 1, Size: 10}, {ID: 2, Size: 1}}
	bins := []Bin{{ID: 10, Capacity: 2}}
	m := MatchFFD(items, bins)
	if len(m.Unplaced) != 1 || m.Unplaced[0].ID != 1 {
		t.Fatalf("unplaced = %v, want item 1", m.Unplaced)
	}
	if m.Assigned[2] != 10 {
		t.Errorf("item 2 -> %d, want 10", m.Assigned[2])
	}
	if got := m.PlacedSize(items); got != 1 {
		t.Errorf("PlacedSize = %v, want 1", got)
	}
}

func TestMatchFFDNoBins(t *testing.T) {
	m := MatchFFD([]Item{{ID: 1, Size: 1}}, nil)
	if len(m.Unplaced) != 1 {
		t.Errorf("item placed with no bins: %+v", m)
	}
}

func TestMatchZeroSizeItem(t *testing.T) {
	m := MatchFFD([]Item{{ID: 1, Size: 0}}, []Bin{{ID: 9, Capacity: 0}})
	if _, ok := m.Assigned[1]; !ok {
		t.Error("zero-size item not assigned despite available bin")
	}
}

func TestMatchBFDMinimizesSlack(t *testing.T) {
	items := []Item{{ID: 1, Size: 4}}
	bins := []Bin{{ID: 10, Capacity: 100}, {ID: 20, Capacity: 5}}
	m := MatchBFD(items, bins)
	if m.Assigned[1] != 20 {
		t.Errorf("BFD chose bin %d, want tightest bin 20", m.Assigned[1])
	}
}

// Property: MatchFFD never overfills a bin and places every item that the
// total-capacity argument says must be placeable alone.
func TestMatchFFDQuick(t *testing.T) {
	f := func(seed uint64, rawItems, rawBins uint8) bool {
		src := dist.NewSource(seed)
		ni := int(rawItems%20) + 1
		nb := int(rawBins % 10)
		items := make([]Item, ni)
		for i := range items {
			items[i] = Item{ID: i, Size: src.Uniform(0, 10)}
		}
		bins := make([]Bin, nb)
		for i := range bins {
			bins[i] = Bin{ID: 1000 + i, Capacity: src.Uniform(0, 20)}
		}
		m := MatchFFD(items, bins)
		// Residuals non-negative.
		for _, r := range m.Residual {
			if r < -1e-6 {
				return false
			}
		}
		// Every item either assigned or unplaced, never both.
		unplaced := map[int]bool{}
		for _, it := range m.Unplaced {
			unplaced[it.ID] = true
		}
		for _, it := range items {
			_, assigned := m.Assigned[it.ID]
			if assigned == unplaced[it.ID] {
				return false
			}
		}
		// An unplaced item must genuinely not fit in any bin's residual
		// plus what smaller items consumed... weaker check: it must exceed
		// every bin's full capacity or all residuals must be smaller.
		for _, it := range m.Unplaced {
			for _, r := range m.Residual {
				if r >= it.Size+1e-6 {
					return false // bin had room yet item was dropped
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestFitTree(t *testing.T) {
	tr := newFitTree(8)
	if got := tr.firstFit(1); got != 0 {
		t.Errorf("empty tree firstFit = %d, want 0 (open new)", got)
	}
	tr.open(10)
	tr.open(5)
	tr.open(7)
	if got := tr.firstFit(6); got != 0 {
		t.Errorf("firstFit(6) = %d, want 0", got)
	}
	tr.consume(0, 9) // bin0 remaining 1
	if got := tr.firstFit(6); got != 2 {
		t.Errorf("firstFit(6) after consume = %d, want 2", got)
	}
	if got := tr.firstFit(1); got != 0 {
		t.Errorf("firstFit(1) = %d, want 0 (leftmost)", got)
	}
	if got := tr.firstFit(100); got != 3 {
		t.Errorf("firstFit(100) = %d, want 3 (open new)", got)
	}
	if got := tr.remaining(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("remaining(0) = %v, want 1", got)
	}
}

func TestFitTreeCapacityPanic(t *testing.T) {
	tr := newFitTree(1)
	tr.open(1)
	defer func() {
		if recover() == nil {
			t.Error("opening beyond capacity did not panic")
		}
	}()
	tr.open(1)
}

// Property: fitTree.firstFit always agrees with a linear scan.
func TestFitTreeMatchesLinearScanQuick(t *testing.T) {
	f := func(seed uint64, ops uint8) bool {
		src := dist.NewSource(seed)
		n := int(ops%50) + 1
		tr := newFitTree(n)
		var linear []float64
		for i := 0; i < n; i++ {
			if len(linear) == 0 || src.Float64() < 0.5 {
				c := src.Uniform(0, 10)
				tr.open(c)
				linear = append(linear, c)
			} else {
				b := src.Intn(len(linear))
				amt := src.Uniform(0, linear[b])
				tr.consume(b, amt)
				linear[b] -= amt
			}
			q := src.Uniform(0, 12)
			want := len(linear)
			for j, r := range linear {
				if r+1e-9 >= q {
					want = j
					break
				}
			}
			if got := tr.firstFit(q); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFFDLR1000(b *testing.B) {
	src := dist.NewSource(1)
	items := make([]float64, 1000)
	for i := range items {
		items[i] = src.Uniform(0.01, 1)
	}
	sizes := []float64{0.25, 0.5, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFDLR(items, sizes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchFFD(b *testing.B) {
	src := dist.NewSource(2)
	items := make([]Item, 200)
	for i := range items {
		items[i] = Item{ID: i, Size: src.Uniform(0, 10)}
	}
	bins := make([]Bin, 50)
	for i := range bins {
		bins[i] = Bin{ID: i, Capacity: src.Uniform(5, 50)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchFFD(items, bins)
	}
}
