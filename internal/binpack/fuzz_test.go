package binpack

import (
	"math"
	"testing"
)

// FuzzFFDLR feeds arbitrary byte strings decoded as item/size lists and
// checks FFDLR either rejects the instance or returns a structurally
// valid packing. Run with `go test -fuzz=FuzzFFDLR ./internal/binpack`;
// the seed corpus executes in every regular test run.
func FuzzFFDLR(f *testing.F) {
	f.Add([]byte{10, 20, 30}, []byte{40, 100})
	f.Add([]byte{}, []byte{1})
	f.Add([]byte{255, 1, 128}, []byte{255})
	// Adversarial shapes surfaced by the parallel-harness audit: an empty
	// deficit list against no sizes, zero-capacity bins (filtered to an
	// empty size list), and an item larger than every bin size.
	f.Add([]byte{}, []byte{})
	f.Add([]byte{50}, []byte{0, 0, 0})
	f.Add([]byte{255}, []byte{1, 1})
	f.Add([]byte{1}, []byte{255, 0, 1})
	f.Fuzz(func(t *testing.T, rawItems, rawSizes []byte) {
		if len(rawItems) > 64 || len(rawSizes) > 8 {
			return // keep instances small enough to pack quickly
		}
		items := make([]float64, len(rawItems))
		for i, b := range rawItems {
			items[i] = float64(b) / 255
		}
		sizes := make([]float64, 0, len(rawSizes))
		for _, b := range rawSizes {
			if b > 0 {
				sizes = append(sizes, float64(b)/255)
			}
		}
		p, err := FFDLR(items, sizes)
		if err != nil {
			return // invalid instances must be rejected, not panic
		}
		// Valid packing invariants.
		seen := map[int]bool{}
		var total float64
		for _, b := range p.Bins {
			var used float64
			for _, it := range b.Items {
				if it < 0 || it >= len(items) {
					t.Fatalf("item index %d out of range", it)
				}
				if seen[it] {
					t.Fatalf("item %d packed twice", it)
				}
				seen[it] = true
				used += items[it]
			}
			if used > b.Size+1e-6 {
				t.Fatalf("bin overfilled: %v in %v", used, b.Size)
			}
			total += b.Size
		}
		if len(seen) != len(items) {
			t.Fatalf("packed %d of %d items", len(seen), len(items))
		}
		if math.Abs(total-p.TotalCapacity) > 1e-6 {
			t.Fatalf("capacity accounting off: %v vs %v", total, p.TotalCapacity)
		}
	})
}

// FuzzMatchFFD checks the finite-bin matcher never overfills, loses or
// double-places items for arbitrary instances.
func FuzzMatchFFD(f *testing.F) {
	f.Add([]byte{50, 20, 90}, []byte{100, 60})
	f.Add([]byte{0}, []byte{})
	// Zero-capacity bins must take nothing; zero-size items must still be
	// accounted exactly once; and the empty/empty instance must not panic.
	f.Add([]byte{}, []byte{})
	f.Add([]byte{10, 20}, []byte{0, 0})
	f.Add([]byte{0, 0, 0}, []byte{0})
	f.Add([]byte{255, 255}, []byte{255, 0, 1})
	f.Fuzz(func(t *testing.T, rawItems, rawBins []byte) {
		if len(rawItems) > 64 || len(rawBins) > 32 {
			return
		}
		items := make([]Item, len(rawItems))
		for i, b := range rawItems {
			items[i] = Item{ID: i, Size: float64(b)}
		}
		bins := make([]Bin, len(rawBins))
		for i, b := range rawBins {
			bins[i] = Bin{ID: 1000 + i, Capacity: float64(b)}
		}
		m := MatchFFD(items, bins)
		unplaced := map[int]bool{}
		for _, it := range m.Unplaced {
			unplaced[it.ID] = true
		}
		for _, it := range items {
			_, assigned := m.Assigned[it.ID]
			if assigned == unplaced[it.ID] {
				t.Fatalf("item %d neither or both assigned/unplaced", it.ID)
			}
		}
		for id, r := range m.Residual {
			if r < -1e-6 {
				t.Fatalf("bin %d overfilled: residual %v", id, r)
			}
		}
	})
}
