// Package binpack implements the bin-packing machinery behind Willow's
// deficit-to-surplus matching (Section IV-F of the paper).
//
// Matching excess power demands with the surpluses available on other
// nodes is variable-sized bin packing: the surpluses are bins of different
// sizes, the demands are items, and we want to consume as little surplus
// as possible. The paper adopts FFDLR (Friesen & Langston, SIAM
// J. Comput. 15(1), 1986): first-fit-decreasing into copies of the largest
// bin, followed by repacking each bin's contents into the smallest bin
// size that holds it. FFDLR runs in O(n log n) and guarantees a total
// capacity within (3/2)·OPT + 1 of optimal (in units where the largest
// bin has size 1).
//
// Two problem variants live here:
//
//   - The classic formulation with an unlimited supply of each bin size
//     (FFDLR, NextFit, FirstFitDecreasing baselines, and an exact
//     branch-and-bound solver used by property tests to check the FFDLR
//     bound).
//   - The finite-bin matching Willow actually performs at each PMU: each
//     surplus is a single bin that can be used at most once (MatchFFD,
//     MatchBFD).
//
// First-fit queries use a tournament tree over open bins so packing n
// items costs O(n log n) rather than O(n²).
package binpack

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// epsilon absorbs floating-point dust when testing whether an item fits.
const epsilon = 1e-9

// Packing is the result of a variable-sized packing with unlimited bin
// supply.
type Packing struct {
	// Bins lists the bins actually used. Item values are indices into the
	// caller's item slice.
	Bins []PackedBin
	// TotalCapacity is the sum of the sizes of all used bins — the
	// objective minimized by variable-sized bin packing.
	TotalCapacity float64
}

// PackedBin is one used bin of a Packing.
type PackedBin struct {
	Size  float64
	Items []int
	Used  float64 // sum of packed item sizes
}

func validateInstance(items, sizes []float64) (maxSize float64, err error) {
	if len(sizes) == 0 {
		return 0, errors.New("binpack: no bin sizes given")
	}
	for _, s := range sizes {
		if s <= 0 {
			return 0, fmt.Errorf("binpack: non-positive bin size %v", s)
		}
		if s > maxSize {
			maxSize = s
		}
	}
	for _, it := range items {
		if it < 0 {
			return 0, fmt.Errorf("binpack: negative item size %v", it)
		}
		if it > maxSize+epsilon {
			return 0, fmt.Errorf("binpack: item of size %v exceeds largest bin %v", it, maxSize)
		}
	}
	return maxSize, nil
}

// FFDLR packs items into bins drawn from sizes (unlimited supply of each
// size), using the Friesen–Langston FFD-LR scheme the paper selects:
//
//  1. normalize so the largest bin has size 1,
//  2. first-fit-decreasing into bins of size 1,
//  3. repack each bin's contents into the smallest size that holds them.
//
// The returned packing uses total capacity at most (3/2)·OPT + 1 in
// normalized units. An error is returned when some item fits in no bin.
func FFDLR(items, sizes []float64) (Packing, error) {
	maxSize, err := validateInstance(items, sizes)
	if err != nil {
		return Packing{}, err
	}
	if len(items) == 0 {
		return Packing{}, nil
	}

	// Step 1+2: FFD into copies of the largest bin.
	order := decreasingOrder(items)
	tree := newFitTree(len(items)) // at most one new bin per item
	binItems := make([][]int, 0, len(items))
	binUsed := make([]float64, 0, len(items))
	for _, idx := range order {
		size := items[idx]
		b := tree.firstFit(size)
		if b == len(binItems) {
			// No open bin fits: open a new largest-size bin.
			binItems = append(binItems, nil)
			binUsed = append(binUsed, 0)
			tree.open(maxSize)
		}
		binItems[b] = append(binItems[b], idx)
		binUsed[b] += size
		tree.consume(b, size)
	}

	// Step 3 (the "LR" repack): shrink each bin to the smallest size that
	// holds its contents.
	sortedSizes := append([]float64(nil), sizes...)
	sort.Float64s(sortedSizes)
	var out Packing
	for b, its := range binItems {
		s := smallestFitting(sortedSizes, binUsed[b])
		out.Bins = append(out.Bins, PackedBin{Size: s, Items: its, Used: binUsed[b]})
		out.TotalCapacity += s
	}
	return out, nil
}

// smallestFitting returns the smallest size in the ascending slice sizes
// that is >= used (within epsilon). sizes must contain at least one such
// entry; FFDLR guarantees it because every bin's content fits the largest
// size.
func smallestFitting(sizes []float64, used float64) float64 {
	i := sort.SearchFloat64s(sizes, used-epsilon)
	if i == len(sizes) {
		// used exceeded every size by more than epsilon; clamp to largest.
		// Unreachable for well-formed FFDLR input, kept as a safety net.
		return sizes[len(sizes)-1]
	}
	return sizes[i]
}

// NextFit packs items (in the given order) into bins of the largest size
// only, opening a new bin whenever the current one cannot take the next
// item. It is the weakest of the classic heuristics and serves as an
// ablation baseline.
func NextFit(items, sizes []float64) (Packing, error) {
	maxSize, err := validateInstance(items, sizes)
	if err != nil {
		return Packing{}, err
	}
	var out Packing
	var cur *PackedBin
	for idx, size := range items {
		if cur == nil || cur.Used+size > maxSize+epsilon {
			out.Bins = append(out.Bins, PackedBin{Size: maxSize})
			out.TotalCapacity += maxSize
			cur = &out.Bins[len(out.Bins)-1]
		}
		cur.Items = append(cur.Items, idx)
		cur.Used += size
	}
	return out, nil
}

// FirstFitDecreasing packs items FFD into largest-size bins without the
// repack step — i.e. FFDLR steps 1–2 only. Comparing it with FFDLR
// isolates the benefit of repacking ("running every server at full
// utilization", as the paper motivates).
func FirstFitDecreasing(items, sizes []float64) (Packing, error) {
	maxSize, err := validateInstance(items, sizes)
	if err != nil {
		return Packing{}, err
	}
	if len(items) == 0 {
		return Packing{}, nil
	}
	order := decreasingOrder(items)
	tree := newFitTree(len(items))
	var out Packing
	for _, idx := range order {
		size := items[idx]
		b := tree.firstFit(size)
		if b == len(out.Bins) {
			out.Bins = append(out.Bins, PackedBin{Size: maxSize})
			out.TotalCapacity += maxSize
			tree.open(maxSize)
		}
		out.Bins[b].Items = append(out.Bins[b].Items, idx)
		out.Bins[b].Used += size
		tree.consume(b, size)
	}
	return out, nil
}

// decreasingOrder returns item indices sorted by decreasing size
// (ties broken by index for determinism).
func decreasingOrder(items []float64) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return items[order[a]] > items[order[b]]
	})
	return order
}

// Exact solves the variable-sized bin-packing instance optimally by
// branch and bound, minimizing total used capacity. It is exponential and
// intended only for the small instances used to validate heuristic bounds
// in tests (≲ 12 items). An error is returned for infeasible instances.
func Exact(items, sizes []float64) (Packing, error) {
	if _, err := validateInstance(items, sizes); err != nil {
		return Packing{}, err
	}
	if len(items) == 0 {
		return Packing{}, nil
	}

	sortedSizes := append([]float64(nil), sizes...)
	sort.Float64s(sortedSizes)
	// Deduplicate sizes: identical sizes are interchangeable.
	uniq := sortedSizes[:1]
	for _, s := range sortedSizes[1:] {
		if s > uniq[len(uniq)-1]+epsilon {
			uniq = append(uniq, s)
		}
	}

	order := decreasingOrder(items)
	totalItems := 0.0
	for _, it := range items {
		totalItems += it
	}

	// Start from the FFDLR solution as the incumbent upper bound.
	incumbent, err := FFDLR(items, sizes)
	if err != nil {
		return Packing{}, err
	}
	best := incumbent.TotalCapacity
	bestAssign := assignmentOf(incumbent, len(items))

	// Branch on items in decreasing order; each item goes into an
	// existing open bin or a fresh bin of each size that fits it.
	type bin struct {
		size, used float64
	}
	bins := make([]bin, 0, len(items))
	assign := make([]int, len(items)) // item -> bin index

	var dfs func(k int, capUsed float64)
	dfs = func(k int, capUsed float64) {
		// Lower bound: capacity already committed plus the items not yet
		// packed that exceed current total free space must open new bins;
		// use the simple volume bound: remaining item volume minus free
		// space in open bins, all of which needs fresh capacity.
		if capUsed >= best-epsilon {
			return
		}
		if k == len(order) {
			if capUsed < best-epsilon {
				best = capUsed
				copy(bestAssign, assign)
				// Record bin sizes implicitly via assignment; sizes are
				// recomputed in the reconstruction below.
			}
			return
		}
		remaining := 0.0
		for _, idx := range order[k:] {
			remaining += items[idx]
		}
		free := 0.0
		for _, b := range bins {
			free += b.size - b.used
		}
		if need := remaining - free; need > 0 && capUsed+need >= best-epsilon {
			return
		}

		idx := order[k]
		size := items[idx]
		// Try existing bins. Symmetry breaking: skip bins with identical
		// (size, used) signatures beyond the first.
		for b := range bins {
			if bins[b].used+size > bins[b].size+epsilon {
				continue
			}
			dup := false
			for p := 0; p < b; p++ {
				if math.Abs(bins[p].size-bins[b].size) < epsilon && math.Abs(bins[p].used-bins[b].used) < epsilon {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			bins[b].used += size
			assign[idx] = b
			dfs(k+1, capUsed)
			bins[b].used -= size
		}
		// Try opening a new bin of each distinct size that fits.
		for _, s := range uniq {
			if size > s+epsilon {
				continue
			}
			bins = append(bins, bin{size: s, used: size})
			assign[idx] = len(bins) - 1
			dfs(k+1, capUsed+s)
			bins = bins[:len(bins)-1]
		}
	}
	dfs(0, 0)

	return reconstruct(items, uniq, bestAssign), nil
}

// assignmentOf flattens a Packing into an item->bin index slice.
func assignmentOf(p Packing, n int) []int {
	assign := make([]int, n)
	for b, bin := range p.Bins {
		for _, it := range bin.Items {
			assign[it] = b
		}
	}
	return assign
}

// reconstruct rebuilds a Packing from an item->bin assignment, sizing each
// bin as the smallest available size that holds its contents.
func reconstruct(items []float64, ascSizes []float64, assign []int) Packing {
	used := map[int]float64{}
	members := map[int][]int{}
	for it, b := range assign {
		used[b] += items[it]
		members[b] = append(members[b], it)
	}
	binIDs := make([]int, 0, len(used))
	for b := range used {
		binIDs = append(binIDs, b)
	}
	sort.Ints(binIDs)
	var out Packing
	for _, b := range binIDs {
		s := smallestFitting(ascSizes, used[b])
		out.Bins = append(out.Bins, PackedBin{Size: s, Items: members[b], Used: used[b]})
		out.TotalCapacity += s
	}
	return out
}
