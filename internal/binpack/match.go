package binpack

import "sort"

// Item is a demand to be relocated: an indivisible unit of power demand
// (in Willow, one application/VM — Section IV-E notes migrations happen at
// application granularity and demands are never split).
type Item struct {
	ID   int
	Size float64
}

// Bin is one concrete surplus that can absorb demand. Unlike the
// unlimited-supply formulation, each Bin exists exactly once.
type Bin struct {
	ID       int
	Capacity float64
}

// Match is the result of packing items into finite bins.
type Match struct {
	// Assigned maps item ID -> bin ID for every item that found a home.
	Assigned map[int]int
	// Unplaced lists the items that fit in no bin, in decreasing size
	// order. Willow drops (sheds) these demands — Section IV-E: "If there
	// is no surplus that can satisfy the deficit in a node, the excess
	// demand is simply dropped."
	Unplaced []Item
	// Residual maps bin ID -> capacity left after the match.
	Residual map[int]float64
}

// PlacedSize returns the total size of all items that were assigned.
func (m Match) PlacedSize(items []Item) float64 {
	var sum float64
	for _, it := range items {
		if _, ok := m.Assigned[it.ID]; ok {
			sum += it.Size
		}
	}
	return sum
}

// MatchFFD packs items into the given finite bins with first-fit
// decreasing: items in decreasing size order, each into the first bin (in
// the caller's bin order) with room. Willow relies on the caller's bin
// ordering to express the locality preference: local (sibling) surpluses
// first, then non-local ones, so FFD's "first" bin is the most local one.
func MatchFFD(items []Item, bins []Bin) Match {
	return matchDecreasing(items, bins, pickFirstFit)
}

// MatchBFD packs items into finite bins with best-fit decreasing: each
// item goes into the fitting bin with the least leftover capacity. It is
// provided as an ablation alternative to MatchFFD; it ignores bin order
// and therefore the locality preference.
func MatchBFD(items []Item, bins []Bin) Match {
	return matchDecreasing(items, bins, pickBestFit)
}

// pickFirstFit returns the index of the first bin with room, or -1.
func pickFirstFit(remaining []float64, size float64) int {
	for i, r := range remaining {
		if r+epsilon >= size {
			return i
		}
	}
	return -1
}

// pickBestFit returns the index of the fitting bin with minimal slack,
// or -1.
func pickBestFit(remaining []float64, size float64) int {
	best := -1
	bestSlack := 0.0
	for i, r := range remaining {
		if r+epsilon < size {
			continue
		}
		slack := r - size
		if best == -1 || slack < bestSlack {
			best, bestSlack = i, slack
		}
	}
	return best
}

func matchDecreasing(items []Item, bins []Bin, pick func([]float64, float64) int) Match {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return items[order[a]].Size > items[order[b]].Size
	})

	remaining := make([]float64, len(bins))
	for i, b := range bins {
		remaining[i] = b.Capacity
	}

	m := Match{Assigned: make(map[int]int), Residual: make(map[int]float64)}
	for _, idx := range order {
		it := items[idx]
		if it.Size <= epsilon {
			// Zero-size demands need no capacity; place them in the first
			// bin if one exists so the caller still learns a location.
			if len(bins) > 0 {
				m.Assigned[it.ID] = bins[0].ID
			} else {
				m.Unplaced = append(m.Unplaced, it)
			}
			continue
		}
		b := pick(remaining, it.Size)
		if b == -1 {
			m.Unplaced = append(m.Unplaced, it)
			continue
		}
		remaining[b] -= it.Size
		m.Assigned[it.ID] = bins[b].ID
	}
	for i, b := range bins {
		m.Residual[b.ID] = remaining[i]
	}
	return m
}
