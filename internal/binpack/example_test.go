package binpack_test

import (
	"fmt"

	"willow/internal/binpack"
)

// ExampleFFDLR packs demands into variable-sized surpluses with the
// paper's chosen heuristic: first-fit decreasing into the largest bins,
// then repacking each bin into the smallest size that holds it.
func ExampleFFDLR() {
	demands := []float64{0.6, 0.3, 0.3, 0.2}
	surplusSizes := []float64{0.3, 0.6, 1.0}
	p, err := binpack.FFDLR(demands, surplusSizes)
	if err != nil {
		panic(err)
	}
	fmt.Printf("bins used: %d, total capacity: %.1f\n", len(p.Bins), p.TotalCapacity)
	for _, b := range p.Bins {
		fmt.Printf("  bin size %.1f holds %.1f\n", b.Size, b.Used)
	}

	// Output:
	// bins used: 2, total capacity: 1.6
	//   bin size 1.0 holds 0.9
	//   bin size 0.6 holds 0.5
}

// ExampleMatchFFD matches deficits against the finite surpluses actually
// available on sibling servers — Willow's per-PMU decision. The bin
// order encodes the locality preference.
func ExampleMatchFFD() {
	deficits := []binpack.Item{
		{ID: 1, Size: 40},
		{ID: 2, Size: 25},
	}
	surpluses := []binpack.Bin{
		{ID: 100, Capacity: 30}, // nearest sibling first
		{ID: 200, Capacity: 50},
	}
	m := binpack.MatchFFD(deficits, surpluses)
	fmt.Printf("app 1 -> server %d\n", m.Assigned[1])
	fmt.Printf("app 2 -> server %d\n", m.Assigned[2])
	fmt.Printf("unplaced: %d\n", len(m.Unplaced))

	// Output:
	// app 1 -> server 200
	// app 2 -> server 100
	// unplaced: 0
}
