package plan

import (
	"testing"
)

func quickOpts() Options {
	return Options{Quick: true, MaxShedFraction: 0.005}
}

func TestMinSupplyMonotoneInLoad(t *testing.T) {
	low, err := MinSupply(0.3, 100, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	high, err := MinSupply(0.6, 100, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if low >= high {
		t.Errorf("MinSupply(0.3)=%v >= MinSupply(0.6)=%v", low, high)
	}
	// Sanity band: the fleet at U=0.6 demands roughly
	// 18·(135 + 0.6·315) ≈ 5832 W; consolidation can push the need lower,
	// never higher than the full rating.
	if high < 2500 || high > 9000 {
		t.Errorf("MinSupply(0.6) = %v W, implausible", high)
	}
}

func TestMinSupplyBelowNaiveProvisioning(t *testing.T) {
	// The whole point of the paper's leanness argument: Willow needs less
	// than the naive "every server at its rating" provisioning.
	got, err := MinSupply(0.5, 100, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	naive := 18.0 * 450
	if got >= naive {
		t.Errorf("MinSupply(0.5) = %v, not below naive %v", got, naive)
	}
}

func TestMaxUtilizationInverseOfMinSupply(t *testing.T) {
	supply, err := MinSupply(0.5, 100, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	u, err := MaxUtilization(supply*1.05, 0.02, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// With 5 % more supply than the minimum for U=0.5, the sustainable
	// utilization must be at least near 0.5.
	if u < 0.45 {
		t.Errorf("MaxUtilization(minsupply·1.05) = %v, want >= 0.45", u)
	}
}

func TestMaxUtilizationZeroSupply(t *testing.T) {
	u, err := MaxUtilization(100, 0.02, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if u != 0 {
		t.Errorf("MaxUtilization(100 W) = %v, want 0", u)
	}
}

func TestBatteryCapacitySizing(t *testing.T) {
	day := SolarDay{PeakWatts: 9000, NightWatts: 2500, EpochsPerDay: 48}
	capNeeded, err := BatteryCapacity(0.35, day, 3000, 2000, 400000, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if capNeeded <= 0 {
		t.Error("battery sizing returned zero despite an overnight deficit")
	}
	// A bigger night floor needs less battery.
	easier := SolarDay{PeakWatts: 9000, NightWatts: 4500, EpochsPerDay: 48}
	capEasier, err := BatteryCapacity(0.35, easier, 3000, 2000, 400000, quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if capEasier > capNeeded {
		t.Errorf("stronger night floor needs more battery: %v > %v", capEasier, capNeeded)
	}
}

func TestBatteryCapacityInfeasible(t *testing.T) {
	// No night floor, trivial discharge rate: no battery can carry it.
	day := SolarDay{PeakWatts: 9000, NightWatts: 0, EpochsPerDay: 48}
	if _, err := BatteryCapacity(0.6, day, 100, 2000, 50000, quickOpts()); err == nil {
		t.Error("infeasible battery sizing did not error")
	}
}
