// Package plan answers capacity-planning questions by searching over
// Willow simulations: how much supply does a fleet need to carry a given
// load, how much load can a given feed carry, and how much battery
// bridges a solar-powered day. This is the operational payoff of the
// paper's lean-provisioning argument (Section I): under-provision the
// feed deliberately and let Willow absorb the gap — but by *how much*
// can you under-provision? The planner binary-searches the answer
// against the simulator.
//
// All searches are deterministic (fixed seeds) and bound the acceptable
// QoS loss as a maximum shed fraction of served energy.
package plan

import (
	"fmt"

	"willow/internal/cluster"
	"willow/internal/power"
)

// Options bound the search.
type Options struct {
	// MaxShedFraction is the acceptable shed demand as a fraction of
	// energy served (default 0.002 = 0.2 %).
	MaxShedFraction float64
	// Quick shrinks simulation length for tests.
	Quick bool
	// Seed fixes the workload realization.
	Seed uint64
	// Modify, when non-nil, adjusts the base configuration (fleet shape,
	// thermals) before each probe run.
	Modify func(*cluster.Config)
}

func (o Options) withDefaults() Options {
	if o.MaxShedFraction == 0 {
		o.MaxShedFraction = 0.002
	}
	if o.Seed == 0 {
		o.Seed = 2011
	}
	return o
}

// probe runs the fleet at utilization u under the given supply and
// reports the shed fraction.
func probe(u float64, supply power.Supply, o Options) (float64, error) {
	cfg := cluster.PaperConfig(u)
	if o.Quick {
		cfg.Warmup = 30
		cfg.Ticks = 110
	} else {
		cfg.Warmup = 60
		cfg.Ticks = 260
	}
	cfg.Seed = o.Seed
	cfg.Supply = supply
	if o.Modify != nil {
		o.Modify(&cfg)
	}
	r, err := cluster.Run(cfg)
	if err != nil {
		return 0, err
	}
	if r.TotalEnergy <= 0 {
		return 1, nil
	}
	return r.DroppedWattTicks / r.TotalEnergy, nil
}

// MinSupply returns the smallest constant supply (to within tol watts)
// that carries the paper fleet at utilization u within the shed bound.
// The bound is measured *above the structural shed*: thermal caps (the
// hot zone) shed a little demand no matter how much supply exists, and
// that part is not the feed's fault.
func MinSupply(u, tol float64, opts Options) (float64, error) {
	o := opts.withDefaults()
	if tol <= 0 {
		tol = 25
	}
	lo := 0.0
	hi := 18 * 450 * 1.2 // comfortably above the fleet's rating
	structural, err := probe(u, power.Constant(hi), o)
	if err != nil {
		return 0, err
	}
	target := structural + o.MaxShedFraction
	for hi-lo > tol {
		mid := (lo + hi) / 2
		shed, err := probe(u, power.Constant(mid), o)
		if err != nil {
			return 0, err
		}
		if shed > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// MaxUtilization returns the highest target utilization (to within tol)
// the paper fleet sustains under the given constant supply within the
// shed bound. It returns 0 when even idle load sheds.
func MaxUtilization(supplyWatts, tol float64, opts Options) (float64, error) {
	o := opts.withDefaults()
	if tol <= 0 {
		tol = 0.01
	}
	supply := power.Constant(supplyWatts)
	abundant := power.Constant(18 * 450 * 1.2)
	// excess reports how much more the feed sheds than the structural
	// (thermal-cap) shed at the same utilization.
	excess := func(u float64) (float64, error) {
		shed, err := probe(u, supply, o)
		if err != nil {
			return 0, err
		}
		structural, err := probe(u, abundant, o)
		if err != nil {
			return 0, err
		}
		return shed - structural, nil
	}
	// Start at 5 %: below that the fleet's energy base is so small that
	// consolidation's migration-cost transients dominate the shed
	// fraction and say nothing about capacity.
	lo, hi := 0.05, 1.0
	e, err := excess(lo)
	if err != nil {
		return 0, err
	}
	if e > o.MaxShedFraction {
		return 0, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		e, err := excess(mid)
		if err != nil {
			return 0, err
		}
		if e > o.MaxShedFraction {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, nil
}

// batterySupply couples a raw feed with a UPS battery, memoizing per
// epoch so budget re-derivations within one epoch do not double-drain.
type batterySupply struct {
	raw    power.Supply
	ups    *power.UPS
	demand float64
	cache  map[int]float64
}

func (b *batterySupply) At(t int) float64 {
	if v, ok := b.cache[t]; ok {
		return v
	}
	v := b.ups.Deliver(b.raw.At(t), b.demand)
	b.cache[t] = v
	return v
}

// SolarDay describes a diurnal generation profile for battery sizing.
type SolarDay struct {
	// PeakWatts is the midday generation; NightWatts the overnight floor
	// (grid backstop). EpochsPerDay is the day length in supply epochs.
	PeakWatts, NightWatts float64
	EpochsPerDay          int
}

// supply builds the sinusoidal feed for the day.
func (s SolarDay) supply() power.Supply {
	base := (s.PeakWatts + s.NightWatts) / 2
	amp := (s.PeakWatts - s.NightWatts) / 2
	return power.Sine{Base: base, Amplitude: amp, Period: s.EpochsPerDay}
}

// BatteryCapacity returns the smallest battery (in watt-epochs, to
// within tol) that lets the paper fleet run at utilization u through the
// solar day within the shed bound. dischargeWatts caps the battery's
// output power. An error is returned when no battery up to maxCapacity
// suffices.
func BatteryCapacity(u float64, day SolarDay, dischargeWatts, tol, maxCapacity float64, opts Options) (float64, error) {
	o := opts.withDefaults()
	if tol <= 0 {
		tol = 500
	}
	run := func(capacity float64) (float64, error) {
		supply := &batterySupply{
			raw:    day.supply(),
			ups:    power.NewUPS(capacity, dischargeWatts, 0.92),
			demand: 18 * 450 * 0.6, // sizing draw: a loaded fleet
			cache:  map[int]float64{},
		}
		return probe(u, supply, o)
	}
	structural, err := probe(u, power.Constant(18*450*1.2), o)
	if err != nil {
		return 0, err
	}
	target := structural + o.MaxShedFraction
	shed, err := run(maxCapacity)
	if err != nil {
		return 0, err
	}
	if shed > target {
		return 0, fmt.Errorf("plan: even a %v watt-epoch battery sheds %.3f%% at U=%v — raise the night floor or discharge rate",
			maxCapacity, shed*100, u)
	}
	lo, hi := 0.0, maxCapacity
	for hi-lo > tol {
		mid := (lo + hi) / 2
		shed, err := run(mid)
		if err != nil {
			return 0, err
		}
		if shed > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}
