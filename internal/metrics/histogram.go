package metrics

import (
	"fmt"
	"math"
)

// Histogram accumulates weighted observations in logarithmic buckets and
// answers quantile queries. Buckets grow geometrically from Min by
// Growth per bucket, which keeps relative quantile error bounded by the
// growth factor across many decades — the right trade for latency-style
// distributions whose tail matters more than their absolute resolution.
type Histogram struct {
	min     float64
	growth  float64
	logG    float64
	buckets []float64 // weight per bucket
	under   float64   // weight below min
	total   float64
	maxSeen float64
}

// NewHistogram returns a histogram covering [min, min·growth^buckets)
// with the given per-bucket growth factor (> 1).
func NewHistogram(min, growth float64, buckets int) (*Histogram, error) {
	if min <= 0 {
		return nil, fmt.Errorf("metrics: histogram min must be positive, got %v", min)
	}
	if growth <= 1 {
		return nil, fmt.Errorf("metrics: histogram growth must exceed 1, got %v", growth)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("metrics: histogram needs at least 1 bucket")
	}
	return &Histogram{
		min:     min,
		growth:  growth,
		logG:    math.Log(growth),
		buckets: make([]float64, buckets),
	}, nil
}

// Add records an observation with the given weight. Values below min
// land in an underflow bucket; values beyond the top land in the last
// bucket (their weight still counts toward quantiles as "at least the
// top edge").
func (h *Histogram) Add(value, weight float64) {
	if weight <= 0 {
		return
	}
	h.total += weight
	if value > h.maxSeen {
		h.maxSeen = value
	}
	if value < h.min {
		h.under += weight
		return
	}
	idx := int(math.Log(value/h.min) / h.logG)
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx] += weight
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]) —
// the upper edge of the bucket where the cumulative weight crosses q.
// It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := q * h.total
	cum := h.under
	if cum >= target {
		return h.min
	}
	for i, w := range h.buckets {
		cum += w
		if cum >= target {
			upper := h.min * math.Pow(h.growth, float64(i+1))
			if i == len(h.buckets)-1 && h.maxSeen > upper {
				// Overflow bucket: its true upper edge is the largest
				// value ever recorded.
				return h.maxSeen
			}
			if upper > h.maxSeen && h.maxSeen > 0 {
				return h.maxSeen
			}
			return upper
		}
	}
	return h.maxSeen
}

// Total returns the accumulated weight.
func (h *Histogram) Total() float64 { return h.total }

// Max returns the largest value observed.
func (h *Histogram) Max() float64 { return h.maxSeen }
