// Package metrics provides the measurement plumbing shared by all Willow
// experiments: time series, online mean/variance accumulators, counters,
// and table rendering (plain text and CSV) for regenerating the paper's
// tables and figure series.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"unicode/utf8"
)

// Series is an append-only sequence of (time, value) samples.
type Series struct {
	Name   string
	Times  []float64
	Values []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends one sample.
func (s *Series) Add(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Mean returns the arithmetic mean of the values (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Sum returns the sum of the values.
func (s *Series) Sum() float64 {
	var sum float64
	for _, v := range s.Values {
		sum += v
	}
	return sum
}

// Max returns the maximum value. An empty series yields the −Inf
// identity — callers that fold partial maxima rely on it; use MaxOK
// when a finite answer must be guaranteed.
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	return max
}

// MaxOK returns the maximum value and whether the series has any
// samples; the empty series yields (0, false) rather than Max's −Inf
// sentinel.
func (s *Series) MaxOK() (float64, bool) {
	if len(s.Values) == 0 {
		return 0, false
	}
	return s.Max(), true
}

// Min returns the minimum value. An empty series yields the +Inf
// identity — see Max; use MinOK when a finite answer must be
// guaranteed.
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.Values {
		if v < min {
			min = v
		}
	}
	return min
}

// MinOK returns the minimum value and whether the series has any
// samples; the empty series yields (0, false) rather than Min's +Inf
// sentinel.
func (s *Series) MinOK() (float64, bool) {
	if len(s.Values) == 0 {
		return 0, false
	}
	return s.Min(), true
}

// Last returns the most recent value (0 for an empty series).
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// MeanFrom returns the mean of samples with Times >= from; useful for
// skipping a warm-up transient.
func (s *Series) MeanFrom(from float64) float64 {
	var sum float64
	n := 0
	for i, t := range s.Times {
		if t >= from {
			sum += s.Values[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Welford accumulates mean and variance online in a single pass
// (numerically stable, Welford 1962). The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds in one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 with fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// SampleVariance returns the unbiased (n−1) sample variance (0 with
// fewer than 2 samples).
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// CI95Half returns the half-width of the normal-approximation 95 %
// confidence interval for the mean: 1.96·s/√n (0 with fewer than 2
// samples). Replication counts are small, so this understates the
// t-distribution interval slightly; the harness reports it as a spread
// indicator, not a significance test.
func (w *Welford) CI95Half() float64 {
	if w.n < 2 {
		return 0
	}
	return 1.96 * math.Sqrt(w.SampleVariance()/float64(w.n))
}

// Counter is a monotonically growing event count.
type Counter struct{ n int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.n++ }

// Add adds delta (which must be non-negative; Counter is monotonic).
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: Counter.Add with negative delta")
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Table is a rendered experiment result: a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row. The cell count must match the column count.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("metrics: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddFloats appends a row of numeric cells formatted with %.4g after a
// leading label cell.
func (t *Table) AddFloats(label string, vals ...float64) {
	cells := make([]string, 0, len(vals)+1)
	cells = append(cells, label)
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.4g", v))
	}
	t.AddRow(cells...)
}

// String renders the table as aligned plain text. Widths count runes so
// non-ASCII cells (degree signs, dashes) stay aligned.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table with
// the title as a bold caption line.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("**")
		sb.WriteString(t.Title)
		sb.WriteString("**\n\n")
	}
	writeRow := func(cells []string) {
		sb.WriteString("|")
		for _, c := range cells {
			sb.WriteByte(' ')
			sb.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			sb.WriteString(" |")
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sb.WriteString("|")
	for range t.Columns {
		sb.WriteString("---|")
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as RFC-4180-ish CSV (cells containing commas or
// quotes are quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Registry is a named collection of series, for models that create
// metrics dynamically.
type Registry struct {
	series map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{series: map[string]*Series{}} }

// Series returns the series with the given name, creating it on first
// use.
func (r *Registry) Series(name string) *Series {
	s, ok := r.series[name]
	if !ok {
		s = NewSeries(name)
		r.series[name] = s
	}
	return s
}

// Names returns all registered series names, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.series))
	for n := range r.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
