package metrics

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func replicatedTables() []*Table {
	// Three replications of a sweep table: column 0 is a label, column 1
	// a seed-independent x-axis, column 2 varies across seeds, column 3
	// is non-numeric.
	mk := func(v1, v2 float64, zone string) *Table {
		t := NewTable("sweep", "point", "utilization", "power", "zone")
		t.AddRow("a", "0.2", strconv.FormatFloat(v1, 'g', -1, 64), zone)
		t.AddRow("b", "0.8", strconv.FormatFloat(v2, 'g', -1, 64), zone)
		return t
	}
	return []*Table{mk(10, 40, "hot"), mk(12, 44, "hot"), mk(14, 42, "hot")}
}

func TestAggregateTables(t *testing.T) {
	agg, err := AggregateTables(replicatedTables())
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"point", "utilization", "power (mean)", "power (±95% CI)", "zone"}
	if len(agg.Columns) != len(wantCols) {
		t.Fatalf("columns %v, want %v", agg.Columns, wantCols)
	}
	for i, c := range wantCols {
		if agg.Columns[i] != c {
			t.Fatalf("column %d = %q, want %q", i, agg.Columns[i], c)
		}
	}
	// Row a: mean(10,12,14) = 12; CI = 1.96·s/√3 with s = 2.
	if got := agg.Rows[0][2]; got != "12" {
		t.Errorf("mean cell = %q, want 12", got)
	}
	ci, err := strconv.ParseFloat(strings.TrimPrefix(agg.Rows[0][3], "±"), 64)
	if err != nil {
		t.Fatalf("CI cell %q: %v", agg.Rows[0][3], err)
	}
	if want := 1.96 * 2 / math.Sqrt(3); math.Abs(ci-want) > 0.01 {
		t.Errorf("CI half-width = %v, want ≈%v", ci, want)
	}
	// Pass-through cells are verbatim.
	if agg.Rows[1][0] != "b" || agg.Rows[1][1] != "0.8" || agg.Rows[1][4] != "hot" {
		t.Errorf("pass-through row altered: %v", agg.Rows[1])
	}
}

func TestAggregateTablesIdenticalReplications(t *testing.T) {
	// Seed-independent experiments replicate to bit-identical tables; the
	// aggregate must be a pure pass-through (no spurious ±0 columns).
	tables := []*Table{replicatedTables()[0], replicatedTables()[0]}
	agg, err := AggregateTables(tables)
	if err != nil {
		t.Fatal(err)
	}
	if agg.String() != tables[0].String() {
		t.Errorf("identical replications not passed through:\n%s\nvs\n%s", agg.String(), tables[0].String())
	}
}

func TestAggregateTablesSingle(t *testing.T) {
	in := replicatedTables()[0]
	agg, err := AggregateTables([]*Table{in})
	if err != nil {
		t.Fatal(err)
	}
	if agg.String() != in.String() {
		t.Error("single table not passed through")
	}
}

func TestAggregateTablesErrors(t *testing.T) {
	if _, err := AggregateTables(nil); err == nil {
		t.Error("nil input accepted")
	}
	a := NewTable("t", "x", "y")
	a.AddRow("1", "2")
	b := NewTable("t", "x", "y")
	if _, err := AggregateTables([]*Table{a, b}); err == nil {
		t.Error("row-count mismatch accepted")
	}
	c := NewTable("t", "x", "z")
	c.AddRow("1", "2")
	if _, err := AggregateTables([]*Table{a, c}); err == nil {
		t.Error("column-name mismatch accepted")
	}
}

func TestWelfordSampleCI(t *testing.T) {
	var w Welford
	if w.SampleVariance() != 0 || w.CI95Half() != 0 {
		t.Error("empty Welford has non-zero spread")
	}
	w.Add(5)
	if w.SampleVariance() != 0 || w.CI95Half() != 0 {
		t.Error("single-sample Welford has non-zero spread")
	}
	w = Welford{}
	for _, x := range []float64{10, 12, 14} {
		w.Add(x)
	}
	if got, want := w.SampleVariance(), 4.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("SampleVariance = %v, want %v", got, want)
	}
	if got, want := w.CI95Half(), 1.96*2/math.Sqrt(3); math.Abs(got-want) > 1e-12 {
		t.Errorf("CI95Half = %v, want %v", got, want)
	}
	// Population variance (n divisor) stays distinct from the sample one.
	if got, want := w.Variance(), 8.0/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}
