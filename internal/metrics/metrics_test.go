package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("power")
	if s.Len() != 0 || s.Mean() != 0 || s.Last() != 0 {
		t.Error("empty series stats wrong")
	}
	if !math.IsInf(s.Max(), -1) || !math.IsInf(s.Min(), 1) {
		t.Error("empty series extrema wrong")
	}
	s.Add(0, 10)
	s.Add(1, 20)
	s.Add(2, 30)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.Mean(); got != 20 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Sum(); got != 60 {
		t.Errorf("Sum = %v", got)
	}
	if got := s.Max(); got != 30 {
		t.Errorf("Max = %v", got)
	}
	if got := s.Min(); got != 10 {
		t.Errorf("Min = %v", got)
	}
	if got := s.Last(); got != 30 {
		t.Errorf("Last = %v", got)
	}
}

func TestSeriesExtremaOK(t *testing.T) {
	s := NewSeries("power")
	if v, ok := s.MaxOK(); ok || v != 0 {
		t.Errorf("empty MaxOK = (%v, %v), want (0, false)", v, ok)
	}
	if v, ok := s.MinOK(); ok || v != 0 {
		t.Errorf("empty MinOK = (%v, %v), want (0, false)", v, ok)
	}
	s.Add(0, -5)
	s.Add(1, 15)
	if v, ok := s.MaxOK(); !ok || v != 15 {
		t.Errorf("MaxOK = (%v, %v), want (15, true)", v, ok)
	}
	if v, ok := s.MinOK(); !ok || v != -5 {
		t.Errorf("MinOK = (%v, %v), want (-5, true)", v, ok)
	}
}

func TestSeriesMeanFrom(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i))
	}
	if got := s.MeanFrom(5); got != 7 {
		t.Errorf("MeanFrom(5) = %v, want 7", got)
	}
	if got := s.MeanFrom(100); got != 0 {
		t.Errorf("MeanFrom past end = %v, want 0", got)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Error("zero Welford not zero")
	}
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.N() != len(data) {
		t.Errorf("N = %d", w.N())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := w.Variance(); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := w.StdDev(); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestWelfordSingleSample(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Variance() != 0 {
		t.Errorf("variance of one sample = %v", w.Variance())
	}
	if w.Mean() != 42 {
		t.Errorf("mean = %v", w.Mean())
	}
}

// Property: Welford agrees with the naive two-pass computation.
func TestWelfordMatchesNaiveQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, r := range raw {
			w.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		var ss float64
		for _, r := range raw {
			d := float64(r) - mean
			ss += d * d
		}
		wantVar := 0.0
		if len(raw) >= 2 {
			wantVar = ss / float64(len(raw))
		}
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Variance()-wantVar) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestTableString(t *testing.T) {
	tb := NewTable("Table I", "Utilization %", "Power (W)")
	tb.AddRow("0", "159.5")
	tb.AddRow("100", "232")
	s := tb.String()
	if !strings.Contains(s, "Table I") {
		t.Error("title missing")
	}
	if !strings.Contains(s, "Utilization %") || !strings.Contains(s, "159.5") {
		t.Errorf("table content missing:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), s)
	}
}

func TestTableAddFloats(t *testing.T) {
	tb := NewTable("", "label", "a", "b")
	tb.AddFloats("row", 1.23456, 42)
	if tb.Rows[0][1] != "1.235" || tb.Rows[0][2] != "42" {
		t.Errorf("AddFloats formatted %v", tb.Rows[0])
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched row did not panic")
		}
	}()
	NewTable("t", "a", "b").AddRow("only-one")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow(`has "quote", and comma`, "2")
	csv := tb.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if lines[0] != "name,value" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"has ""quote"", and comma"`) {
		t.Errorf("quoting wrong: %q", lines[2])
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	a := r.Series("b-series")
	a.Add(0, 1)
	if got := r.Series("b-series"); got != a {
		t.Error("Series did not return the same instance")
	}
	r.Series("a-series")
	names := r.Names()
	if len(names) != 2 || names[0] != "a-series" || names[1] != "b-series" {
		t.Errorf("Names = %v", names)
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 1000))
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 2, 4); err == nil {
		t.Error("zero min accepted")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("growth 1 accepted")
	}
	if _, err := NewHistogram(1, 2, 0); err == nil {
		t.Error("zero buckets accepted")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h, err := NewHistogram(1, 2, 10) // buckets [1,2) [2,4) ... [512,1024)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	// 90 units of weight at ~1.5, 10 at ~100.
	h.Add(1.5, 90)
	h.Add(100, 10)
	if got := h.Quantile(0.5); got > 2 {
		t.Errorf("p50 = %v, want within the first bucket (<= 2)", got)
	}
	p95 := h.Quantile(0.95)
	if p95 < 64 || p95 > 128 {
		t.Errorf("p95 = %v, want in the bucket containing 100", p95)
	}
	if h.Total() != 100 {
		t.Errorf("Total = %v", h.Total())
	}
	if h.Max() != 100 {
		t.Errorf("Max = %v", h.Max())
	}
}

func TestHistogramUnderAndOverflow(t *testing.T) {
	h, _ := NewHistogram(10, 2, 3) // covers [10, 80)
	h.Add(1, 50)                   // underflow
	h.Add(1e6, 50)                 // overflow -> top bucket, capped at maxSeen
	if got := h.Quantile(0.25); got != 10 {
		t.Errorf("underflow quantile = %v, want min 10", got)
	}
	if got := h.Quantile(0.99); got != 1e6 {
		t.Errorf("overflow quantile = %v, want maxSeen 1e6", got)
	}
	h.Add(5, 0) // zero weight ignored
	if h.Total() != 100 {
		t.Errorf("Total = %v", h.Total())
	}
}

// Property: quantiles are monotone in q and bounded by [min, maxSeen].
func TestHistogramMonotoneQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		h, err := NewHistogram(0.5, 1.5, 24)
		if err != nil {
			return false
		}
		for _, r := range raw {
			h.Add(float64(r%2000)/10+0.01, float64(r%7)+1)
		}
		prev := 0.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Caption", "a", "b")
	tb.AddRow("1", "has|pipe")
	md := tb.Markdown()
	if !strings.Contains(md, "**Caption**") {
		t.Error("caption missing")
	}
	if !strings.Contains(md, "| a | b |") {
		t.Errorf("header wrong:\n%s", md)
	}
	if !strings.Contains(md, "|---|---|") {
		t.Error("separator missing")
	}
	if !strings.Contains(md, `has\|pipe`) {
		t.Errorf("pipe not escaped:\n%s", md)
	}
}
