package metrics

import (
	"errors"
	"fmt"
	"strconv"
)

// AggregateTables combines replicated renderings of the same table —
// one per seeded run — into a single summary table. All inputs must
// have identical shape (columns and row count); the usual producer is
// one experiment re-run under different seeds, which varies cell values
// but never the grid.
//
// Columns are classified by their cells across every replication:
//
//   - a column whose cells all parse as numbers AND differ between
//     replications is aggregated: it becomes two output columns, the
//     per-row mean and the 95 % confidence-interval half-width;
//   - every other column (labels, and numeric columns that are
//     bit-identical across replications, e.g. an x-axis) passes through
//     from the first replication unchanged.
//
// The classification depends only on cell contents, so the output is
// deterministic in the inputs.
func AggregateTables(tables []*Table) (*Table, error) {
	if len(tables) == 0 {
		return nil, errors.New("metrics: no tables to aggregate")
	}
	first := tables[0]
	for k, t := range tables[1:] {
		if len(t.Columns) != len(first.Columns) || len(t.Rows) != len(first.Rows) {
			return nil, fmt.Errorf("metrics: replication %d is %d×%d, first is %d×%d",
				k+1, len(t.Rows), len(t.Columns), len(first.Rows), len(first.Columns))
		}
		for j, name := range t.Columns {
			if name != first.Columns[j] {
				return nil, fmt.Errorf("metrics: replication %d column %d is %q, first is %q", k+1, j, name, first.Columns[j])
			}
		}
	}

	aggregated := make([]bool, len(first.Columns))
	for j := range first.Columns {
		numeric, varies := true, false
	scan:
		for i := range first.Rows {
			ref := first.Rows[i][j]
			for _, t := range tables {
				c := t.Rows[i][j]
				if _, err := strconv.ParseFloat(c, 64); err != nil {
					numeric = false
					break scan
				}
				if c != ref {
					varies = true
				}
			}
		}
		aggregated[j] = numeric && varies
	}

	cols := make([]string, 0, len(first.Columns))
	for j, name := range first.Columns {
		if aggregated[j] {
			cols = append(cols, name+" (mean)", name+" (±95% CI)")
		} else {
			cols = append(cols, name)
		}
	}
	out := NewTable(first.Title, cols...)
	for i := range first.Rows {
		row := make([]string, 0, len(cols))
		for j := range first.Columns {
			if !aggregated[j] {
				row = append(row, first.Rows[i][j])
				continue
			}
			var w Welford
			for _, t := range tables {
				v, err := strconv.ParseFloat(t.Rows[i][j], 64)
				if err != nil { // unreachable: classification parsed every cell
					return nil, fmt.Errorf("metrics: cell (%d,%d) %q: %w", i, j, t.Rows[i][j], err)
				}
				w.Add(v)
			}
			row = append(row, fmt.Sprintf("%.4g", w.Mean()), fmt.Sprintf("±%.3g", w.CI95Half()))
		}
		out.AddRow(row...)
	}
	return out, nil
}
