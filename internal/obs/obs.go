// Package obs is a stdlib-only metrics layer: counters, gauges and
// fixed-bucket histograms behind a registry with a Prometheus
// text-format exposition writer (expo.go) and a conformance parser
// (parse.go).
//
// The package exists to keep two metric families strictly apart:
//
//   - sim-time metrics are deterministic functions of tick state
//     (joules, ticks, drops). They are rendered at scrape time from a
//     state snapshot and never involve the wall clock.
//   - wall-clock metrics (tick-phase latency, Hub publish latency,
//     snapshot write time) are observed from real timers. They exist
//     only on the live-daemon surface and MUST NOT feed back into
//     simulation state or telemetry event streams — the determinism
//     contract depends on it.
//
// All metric types are safe for concurrent use (atomics); the registry
// serializes structural changes and exposition under a mutex.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct {
	Name, Value string
}

// LatencyBuckets are the default histogram bounds for sub-second
// latencies, in seconds: 1µs to 1s in a 1-2.5-5 decade ladder.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1,
}

// atomicFloat is a float64 updated via CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		val := math.Float64frombits(old) + v
		if f.bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) Load() float64   { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Add increments the counter; negative deltas are ignored (counters
// never go down).
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.v.Add(v)
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add shifts the gauge value.
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket ladders are short (≈20) and the common case
	// (small latencies) exits early.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// snapshot returns cumulative bucket counts (per bound, then total).
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	cum = make([]uint64, len(h.bounds))
	var running uint64
	for i := range h.bounds {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, h.sum.Load(), h.count.Load()
}

// metric is one registered series.
type metric struct {
	labels []Label
	key    string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing one metric name.
type family struct {
	name, help, typ string
	metrics         map[string]*metric
	order           []*metric
}

// Registry holds metric families and writes them as Prometheus text.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) lookup(name, help, typ string, labels []Label) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, metrics: map[string]*metric{}}
		r.families[name] = f
		r.order = append(r.order, f)
		sort.Slice(r.order, func(i, j int) bool { return r.order[i].name < r.order[j].name })
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	key := labelKey(labels)
	m := f.metrics[key]
	if m == nil {
		m = &metric{labels: append([]Label(nil), labels...), key: key}
		f.metrics[key] = m
		f.order = append(f.order, m)
		sort.Slice(f.order, func(i, j int) bool { return f.order[i].key < f.order[j].key })
	}
	return m
}

// Counter returns (registering on first use) the named counter. Calling
// again with the same name and labels returns the same counter; a name
// collision across metric types panics (a programming error).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.lookup(name, help, "counter", labels)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.lookup(name, help, "gauge", labels)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram returns (registering on first use) the named histogram over
// the given ascending upper bounds (+Inf is implicit). Bounds are fixed
// at first registration; later calls reuse the existing series.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	m := r.lookup(name, help, "histogram", labels)
	if m.h == nil {
		m.h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)),
		}
	}
	return m.h
}

// labelKey renders labels into a canonical ordering key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	out := ""
	for _, l := range ls {
		out += l.Name + "=" + l.Value + ","
	}
	return out
}
