package obs

// Prometheus text exposition format, version 0.0.4: the subset every
// scraper understands — # HELP / # TYPE headers, label sets, histogram
// _bucket/_sum/_count series with cumulative le bounds and +Inf.

import (
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Encoder writes Prometheus text format. It exists both as the
// registry's exposition backend and as a standalone writer for dynamic
// sim-time series rendered from a state snapshot at scrape time
// (per-rack energy, subscriber queues) that have no long-lived metric
// object behind them.
type Encoder struct {
	w   io.Writer
	err error
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Err returns the first write or validation error.
func (e *Encoder) Err() error { return e.err }

func (e *Encoder) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Family writes the # HELP / # TYPE header for a metric family. typ
// must be "counter", "gauge" or "histogram".
func (e *Encoder) Family(name, typ, help string) {
	if e.err != nil {
		return
	}
	if !nameRe.MatchString(name) {
		e.err = fmt.Errorf("obs: invalid metric name %q", name)
		return
	}
	switch typ {
	case "counter", "gauge", "histogram":
	default:
		e.err = fmt.Errorf("obs: invalid metric type %q", typ)
		return
	}
	if help != "" {
		e.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
	e.printf("# TYPE %s %s\n", name, typ)
}

// Sample writes one series sample line.
func (e *Encoder) Sample(name string, labels []Label, value float64) {
	if e.err != nil {
		return
	}
	if !nameRe.MatchString(name) {
		e.err = fmt.Errorf("obs: invalid metric name %q", name)
		return
	}
	e.printf("%s%s %s\n", name, renderLabels(labels), formatValue(value))
}

// Histogram writes a histogram family's _bucket/_sum/_count series from
// cumulative bucket counts (aligned with bounds; the +Inf bucket is
// derived from count).
func (e *Encoder) Histogram(name string, labels []Label, bounds []float64, cum []uint64, sum float64, count uint64) {
	for i, b := range bounds {
		e.Sample(name+"_bucket", append(labels, Label{"le", formatValue(b)}), float64(cum[i]))
	}
	e.Sample(name+"_bucket", append(labels, Label{"le", "+Inf"}), float64(count))
	e.Sample(name+"_sum", labels, sum)
	e.Sample(name+"_count", labels, float64(count))
}

// WriteText writes every registered family in sorted name order, series
// in sorted label order — a deterministic function of the registry's
// current values.
func (r *Registry) WriteText(w io.Writer) error {
	e := NewEncoder(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.order {
		e.Family(f.name, f.typ, f.help)
		for _, m := range f.order {
			switch {
			case m.c != nil:
				e.Sample(f.name, m.labels, m.c.Value())
			case m.g != nil:
				e.Sample(f.name, m.labels, m.g.Value())
			case m.h != nil:
				cum, sum, count := m.h.snapshot()
				e.Histogram(f.name, m.labels, m.h.bounds, cum, sum, count)
			}
		}
	}
	return e.Err()
}

// renderLabels formats a label set, validating names and escaping
// values.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if !labelRe.MatchString(l.Name) {
			// An invalid label name would corrupt the whole exposition;
			// render it defanged instead.
			l.Name = "invalid_label"
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v > 0 && v*2 == v:
		return "+Inf"
	case v < 0 && v*2 == v:
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
