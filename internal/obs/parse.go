package obs

// A minimal Prometheus text-format parser: enough to round-trip what
// expo.go writes and to validate a live /metrics scrape in tests and
// smoke scripts. It checks structural conformance — name syntax, label
// quoting, float values, TYPE declarations — and returns every sample.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Sample is one parsed series sample.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Scrape is a parsed exposition: samples in input order plus the
// declared family types.
type Scrape struct {
	Samples []Sample
	Types   map[string]string // family name -> counter|gauge|histogram|...
}

// Value returns the first sample matching name and all given labels,
// with ok=false when absent.
func (s *Scrape) Value(name string, labels ...Label) (float64, bool) {
	for _, sm := range s.Samples {
		if sm.Name != name {
			continue
		}
		ok := true
		for _, want := range labels {
			found := false
			for _, l := range sm.Labels {
				if l == want {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			return sm.Value, true
		}
	}
	return 0, false
}

// ParseText parses a Prometheus text-format exposition, returning an
// error on the first malformed line.
func ParseText(r io.Reader) (*Scrape, error) {
	out := &Scrape{Types: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := out.parseComment(line); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out.Samples = append(out.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func (s *Scrape) parseComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], fields[3]
		if !nameRe.MatchString(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("invalid metric type %q", typ)
		}
		if prev, dup := s.Types[name]; dup && prev != typ {
			return fmt.Errorf("family %q re-declared as %s (was %s)", name, typ, prev)
		}
		s.Types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		if !nameRe.MatchString(fields[2]) {
			return fmt.Errorf("invalid metric name %q", fields[2])
		}
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name string
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[brace+1 : end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return s, fmt.Errorf("no value in %q", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	if !nameRe.MatchString(name) {
		return s, fmt.Errorf("invalid metric name %q", name)
	}
	s.Name = name
	// The value may be followed by an optional timestamp; take the
	// first field.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) ([]Label, error) {
	var out []Label
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label in %q", body)
		}
		name := strings.TrimSpace(rest[:eq])
		if !labelRe.MatchString(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", body)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			ch := rest[i]
			if ch == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(rest[i])
				default:
					return nil, fmt.Errorf("bad escape \\%c", rest[i])
				}
				continue
			}
			if ch == '"' {
				rest = rest[i+1:]
				closed = true
				break
			}
			val.WriteByte(ch)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value in %q", body)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		rest = strings.TrimPrefix(strings.TrimSpace(rest), ",")
		rest = strings.TrimSpace(rest)
	}
	return out, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
