package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("willow_events_total", "events", Label{"kind", "migration"})
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	if again := r.Counter("willow_events_total", "events", Label{"kind", "migration"}); again != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("willow_subscribers", "subs")
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("willow_latency_seconds", "lat", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-5.555) > 1e-12 {
		t.Errorf("sum = %v, want 5.555", h.Sum())
	}
	cum, _, _ := h.snapshot()
	for i, want := range []uint64{1, 2, 3} {
		if cum[i] != want {
			t.Errorf("cumulative bucket %d = %d, want %d", i, cum[i], want)
		}
	}
}

func TestTypeCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("willow_x", "x")
	defer func() {
		if recover() == nil {
			t.Error("registering willow_x as gauge after counter did not panic")
		}
	}()
	r.Gauge("willow_x", "x")
}

// TestExpositionRoundTrip is the conformance pin: everything WriteText
// emits parses back with the same families, types, labels and values —
// including histograms, escaped label values and non-finite floats.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("willow_hub_dropped_total", "dropped events", Label{"subscriber", "3"}).Add(17)
	r.Counter("willow_hub_dropped_total", "dropped events", Label{"subscriber", "12"}).Add(2)
	r.Gauge("willow_joules", "energy").Set(123456.789)
	r.Gauge("willow_weird", "escapes", Label{"path", `a\b"c` + "\nd"}).Set(math.Inf(1))
	h := r.Histogram("willow_tick_phase_seconds", "phase latency", LatencyBuckets, Label{"phase", "observe"})
	h.Observe(3e-6)
	h.Observe(0.002)
	h.Observe(42) // beyond the last bound: +Inf bucket only

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	scrape, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse-back failed: %v\nexposition:\n%s", err, text)
	}

	if typ := scrape.Types["willow_hub_dropped_total"]; typ != "counter" {
		t.Errorf("type = %q, want counter", typ)
	}
	if typ := scrape.Types["willow_tick_phase_seconds"]; typ != "histogram" {
		t.Errorf("type = %q, want histogram", typ)
	}

	if v, ok := scrape.Value("willow_hub_dropped_total", Label{"subscriber", "3"}); !ok || v != 17 {
		t.Errorf("dropped{subscriber=3} = %v/%v, want 17", v, ok)
	}
	if v, ok := scrape.Value("willow_joules"); !ok || v != 123456.789 {
		t.Errorf("joules = %v/%v, want 123456.789", v, ok)
	}
	if v, ok := scrape.Value("willow_weird", Label{"path", `a\b"c` + "\nd"}); !ok || !math.IsInf(v, 1) {
		t.Errorf("escaped label round-trip = %v/%v, want +Inf", v, ok)
	}

	// Histogram series: cumulative buckets, sum, count, +Inf.
	if v, ok := scrape.Value("willow_tick_phase_seconds_count", Label{"phase", "observe"}); !ok || v != 3 {
		t.Errorf("histogram count = %v/%v, want 3", v, ok)
	}
	if v, ok := scrape.Value("willow_tick_phase_seconds_bucket", Label{"phase", "observe"}, Label{"le", "+Inf"}); !ok || v != 3 {
		t.Errorf("+Inf bucket = %v/%v, want 3", v, ok)
	}
	if v, ok := scrape.Value("willow_tick_phase_seconds_bucket", Label{"phase", "observe"}, Label{"le", "0.005"}); !ok || v != 2 {
		t.Errorf("le=0.005 bucket = %v/%v, want 2", v, ok)
	}

	// A second write is byte-identical: exposition is deterministic.
	var sb2 strings.Builder
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != text {
		t.Error("second WriteText differs from first")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		`willow x 1`,                       // space in name
		`willow_x{le"0.1"} 1`,              // missing =
		`willow_x{le="0.1} 1`,              // unterminated quote
		`willow_x{le="0.1"} one`,           // non-float value
		"# TYPE willow_x wat",              // bad type
		"# TYPE willow_x counter extra ok", // malformed TYPE
		`willow_x`,                         // no value
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseText accepted %q", bad)
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("willow_total", "t")
	h := r.Histogram("willow_h", "h", []float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %v, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}
