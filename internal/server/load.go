package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"willow/internal/dist"
	"willow/internal/metrics"
)

// LoadOptions configures a load-generation run against a live daemon.
type LoadOptions struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of concurrent generator goroutines
	// (default 8); Requests the total request count split across them
	// (default 1000).
	Clients  int
	Requests int
	// Seed drives each client's request pattern (paths, demand
	// factors) via forked deterministic streams — wall-clock latencies
	// vary, the request mix does not.
	Seed uint64
	// DemandFraction is the probability a request is a POST /v1/demand
	// with a factor jittered in [0.95, 1.05] (default 0.05). The
	// jitter is mean-neutral, so hammering the API nudges but never
	// runs away with the simulated demand.
	DemandFraction float64
	// Stream, when set, adds one /v1/events subscriber for the
	// duration of the run and counts the events it receives.
	Stream bool
	// Client overrides the HTTP client (default: 10 s timeout).
	Client *http.Client

	// RequestTimeout bounds each individual request attempt (0 leaves
	// only the client's overall timeout). A timed-out attempt counts in
	// the report and is retried like any transport failure.
	RequestTimeout time.Duration
	// Retries is how many times a failed attempt (transport error,
	// timeout, 429, or 5xx) is retried before counting as an error.
	// 429 responses honor the server's Retry-After hint; everything
	// else backs off exponentially from Backoff with jitter drawn from
	// a dedicated per-client stream, so the request mix itself stays
	// seed-deterministic.
	Retries int
	// Backoff is the base retry delay (default 100 ms, doubling per
	// attempt, capped at 5 s, jittered ±50 %).
	Backoff time.Duration
}

// loadBackoffCap bounds one retry delay regardless of attempt count or
// Retry-After hints, so a misconfigured server cannot park the load
// generator.
const loadBackoffCap = 5 * time.Second

// LoadReport is what a load run measured.
type LoadReport struct {
	Requests int
	Errors   int
	ByPath   map[string]int
	// Retries counts re-attempts after failures; Timeouts the attempts
	// that hit the per-request deadline; Rejected the 429 responses the
	// admission gate shed (each retried attempt can add to all three).
	Retries  int
	Timeouts int
	Rejected int
	// Events is the number of telemetry events the Stream subscriber
	// received (0 when Stream was off); Reconnects how many times it had
	// to re-establish the stream and resume (?from=) after a broken
	// connection.
	Events     int
	Reconnects int
	// Latency holds per-request wall-clock seconds in logarithmic
	// buckets from 10 µs up.
	Latency *metrics.Histogram
	Elapsed time.Duration
}

// Table renders the report for CLI output.
func (r *LoadReport) Table(title string) *metrics.Table {
	tb := metrics.NewTable(title, "metric", "value")
	tb.AddRow("requests", fmt.Sprintf("%d", r.Requests))
	tb.AddRow("errors", fmt.Sprintf("%d", r.Errors))
	tb.AddRow("retries", fmt.Sprintf("%d", r.Retries))
	tb.AddRow("timeouts", fmt.Sprintf("%d", r.Timeouts))
	tb.AddRow("rejected (429)", fmt.Sprintf("%d", r.Rejected))
	paths := make([]string, 0, len(r.ByPath))
	for p := range r.ByPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		tb.AddRow("  "+p, fmt.Sprintf("%d", r.ByPath[p]))
	}
	tb.AddRow("elapsed", fmt.Sprintf("%.2fs", r.Elapsed.Seconds()))
	if r.Requests > 0 && r.Elapsed > 0 {
		tb.AddRow("throughput", fmt.Sprintf("%.0f req/s", float64(r.Requests)/r.Elapsed.Seconds()))
	}
	tb.AddRow("latency p50", fmt.Sprintf("%.2f ms", r.Latency.Quantile(0.50)*1e3))
	tb.AddRow("latency p95", fmt.Sprintf("%.2f ms", r.Latency.Quantile(0.95)*1e3))
	tb.AddRow("latency p99", fmt.Sprintf("%.2f ms", r.Latency.Quantile(0.99)*1e3))
	tb.AddRow("latency max", fmt.Sprintf("%.2f ms", r.Latency.Max()*1e3))
	tb.AddRow("events streamed", fmt.Sprintf("%d", r.Events))
	tb.AddRow("stream reconnects", fmt.Sprintf("%d", r.Reconnects))
	return tb
}

type clientResult struct {
	errors    int
	retries   int
	timeouts  int
	rejected  int
	byPath    map[string]int
	latencies []float64
}

// RunLoad drives the daemon API with opts.Clients concurrent clients
// until opts.Requests requests have completed (or ctx cancels, which
// counts nothing as an error — the report covers what ran). A non-2xx
// response or transport failure counts as an error; the function
// itself only fails on setup problems.
func RunLoad(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("server: load needs a base URL")
	}
	clients := opts.Clients
	if clients <= 0 {
		clients = 8
	}
	total := opts.Requests
	if total <= 0 {
		total = 1000
	}
	if clients > total {
		clients = total
	}
	demandFrac := opts.DemandFraction
	if demandFrac == 0 {
		demandFrac = 0.05
	}
	hc := opts.Client
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}

	// How many servers the fleet has, for addressing demand POSTs.
	numServers, err := probeServers(ctx, hc, opts.BaseURL)
	if err != nil {
		return nil, err
	}

	// Fork one stream per client up front, in index order, so the
	// request mix is independent of scheduling. Jitter streams fork
	// after every mix stream, so enabling retries leaves the request
	// mix for a given seed untouched.
	root := dist.NewSource(opts.Seed)
	srcs := make([]*dist.Source, clients)
	for i := range srcs {
		srcs[i] = root.Fork()
	}
	jitters := make([]*dist.Source, clients)
	for i := range jitters {
		jitters[i] = root.Fork()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	events, reconnects := 0, 0
	var streamWG sync.WaitGroup
	if opts.Stream {
		ready := make(chan struct{})
		streamWG.Add(1)
		go func() {
			defer streamWG.Done()
			events, reconnects = streamEvents(runCtx, hc, opts.BaseURL, ready)
		}()
		select {
		case <-ready: // stream open before the hammering starts
		case <-runCtx.Done():
		}
	}

	results := make([]clientResult, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		n := total / clients
		if c < total%clients {
			n++
		}
		wg.Add(1)
		go func(c, n int) {
			defer wg.Done()
			results[c] = runClient(runCtx, hc, clientConfig{
				base:       opts.BaseURL,
				src:        srcs[c],
				jitter:     jitters[c],
				requests:   n,
				numServers: numServers,
				demandFrac: demandFrac,
				reqTimeout: opts.RequestTimeout,
				retries:    opts.Retries,
				backoff:    opts.Backoff,
			})
		}(c, n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	cancel() // stop the event stream
	streamWG.Wait()

	hist, err := metrics.NewHistogram(1e-5, 1.5, 48)
	if err != nil {
		return nil, err
	}
	report := &LoadReport{ByPath: map[string]int{}, Latency: hist, Elapsed: elapsed, Events: events, Reconnects: reconnects}
	for _, r := range results {
		report.Errors += r.errors
		report.Retries += r.retries
		report.Timeouts += r.timeouts
		report.Rejected += r.rejected
		for p, n := range r.byPath {
			report.ByPath[p] += n
			report.Requests += n
		}
		for _, l := range r.latencies {
			hist.Add(l, 1)
		}
	}
	return report, nil
}

func probeServers(ctx context.Context, hc *http.Client, base string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/state", nil)
	if err != nil {
		return 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("server: probing %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("server: probing %s: status %s", base, resp.Status)
	}
	var st struct {
		Servers int `json:"num_servers"`
	}
	if err := decodeBody(resp.Body, &st); err != nil {
		return 0, err
	}
	if st.Servers <= 0 {
		return 0, fmt.Errorf("server: daemon reports %d servers", st.Servers)
	}
	return st.Servers, nil
}

// clientConfig bundles one generator goroutine's parameters.
type clientConfig struct {
	base       string
	src        *dist.Source // request-mix stream
	jitter     *dist.Source // retry-backoff stream
	requests   int
	numServers int
	demandFrac float64
	reqTimeout time.Duration
	retries    int
	backoff    time.Duration
}

func runClient(ctx context.Context, hc *http.Client, cfg clientConfig) clientResult {
	res := clientResult{byPath: map[string]int{}}
	for i := 0; i < cfg.requests; i++ {
		if ctx.Err() != nil {
			return res
		}
		var (
			path string
			body []byte
		)
		switch r := cfg.src.Float64(); {
		case r < cfg.demandFrac:
			path = "/v1/demand"
			server := cfg.src.Intn(cfg.numServers+1) - 1 // -1 = fleet-wide
			factor := cfg.src.Uniform(0.95, 1.05)
			body = []byte(fmt.Sprintf(`{"server": %d, "factor": %.4f}`, server, factor))
		case r < cfg.demandFrac+0.10:
			path = "/healthz"
		case r < cfg.demandFrac+0.35:
			path = "/v1/stats"
		default:
			path = "/v1/state"
		}
		res.byPath[path]++
		start := time.Now()
		if err := res.request(ctx, hc, cfg, path, body); err != nil {
			res.errors++
			continue
		}
		// Latency is client-observed: it includes retries and backoff
		// sleeps, which is what a caller of the API actually waits.
		res.latencies = append(res.latencies, time.Since(start).Seconds())
	}
	return res
}

// request performs one logical request with up to cfg.retries
// re-attempts, counting timeouts, 429 rejections, and retries as it
// goes. 429 honors the server's Retry-After hint; other failures back
// off exponentially with jitter.
func (res *clientResult) request(ctx context.Context, hc *http.Client, cfg clientConfig, path string, body []byte) error {
	for attempt := 0; ; attempt++ {
		status, retryAfter, err := doRequest(ctx, hc, cfg, path, body)
		if err == nil && status >= 200 && status <= 299 {
			return nil
		}
		if isTimeout(err) {
			res.timeouts++
		}
		if status == http.StatusTooManyRequests {
			res.rejected++
		}
		retryable := err != nil || status == http.StatusTooManyRequests || status >= 500
		if !retryable || attempt >= cfg.retries || ctx.Err() != nil {
			if err == nil {
				err = fmt.Errorf("%s: status %d", path, status)
			}
			return err
		}
		res.retries++
		if !sleepBackoff(ctx, cfg, attempt, retryAfter) {
			return fmt.Errorf("%s: cancelled during retry backoff", path)
		}
	}
}

// sleepBackoff waits before a retry: the server's Retry-After hint when
// it gave one, otherwise exponential backoff from cfg.backoff, both
// jittered ±50 % and capped. Returns false if ctx ended first.
func sleepBackoff(ctx context.Context, cfg clientConfig, attempt int, retryAfter time.Duration) bool {
	delay := retryAfter
	if delay <= 0 {
		base := cfg.backoff
		if base <= 0 {
			base = 100 * time.Millisecond
		}
		delay = base << attempt
	}
	if delay > loadBackoffCap {
		delay = loadBackoffCap
	}
	delay = time.Duration(float64(delay) * (0.5 + cfg.jitter.Float64()))
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// isTimeout reports whether an attempt failed on a deadline (the
// per-request timeout or a transport-level one).
func isTimeout(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// doRequest performs one attempt. A transport failure returns err; an
// HTTP response returns its status and any Retry-After hint with a nil
// error — the caller classifies.
func doRequest(ctx context.Context, hc *http.Client, cfg clientConfig, path string, body []byte) (status int, retryAfter time.Duration, err error) {
	if cfg.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.reqTimeout)
		defer cancel()
	}
	method := http.MethodGet
	var rd io.Reader
	if body != nil {
		method = http.MethodPost
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, cfg.base+path, rd)
	if err != nil {
		return 0, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, 0, err
	}
	return resp.StatusCode, parseRetryAfter(resp.Header.Get("Retry-After")), nil
}

// parseRetryAfter turns a Retry-After header into a backoff duration.
// Servers in the wild send garbage — empty strings, HTTP dates, floats,
// negatives — and a load generator must treat all of it as "no hint"
// (zero), never panic or sleep on a bogus value.
func parseRetryAfter(header string) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(header))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// streamEvents subscribes to /v1/events and counts events until ctx
// cancels. A broken stream — daemon restart, failover cutover, link
// loss — is survived, not surrendered to: the subscriber reconnects and
// resumes with ?from=<last tick heard>, replaying the daemon's retained
// history so tick coverage stays gapless (the boundary tick itself may
// be double-counted; a resumed count errs toward overlap, never holes).
// It closes ready once the first connection attempt resolves.
func streamEvents(ctx context.Context, hc *http.Client, base string, ready chan<- struct{}) (events, reconnects int) {
	// Streaming must outlive the per-request timeout of the pooled
	// client; rely on ctx for cancellation instead.
	streamClient := &http.Client{Transport: hc.Transport}
	readyOnce := sync.OnceFunc(func() { close(ready) })
	defer readyOnce()

	lastTick := -1
	connects := 0
	for {
		if ctx.Err() != nil {
			return events, reconnects
		}
		url := base + "/v1/events"
		if lastTick >= 0 {
			url += "?from=" + strconv.Itoa(lastTick)
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return events, reconnects
		}
		resp, err := streamClient.Do(req)
		readyOnce()
		if err != nil {
			if !sleepStream(ctx) {
				return events, reconnects
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// The daemon itself refused the subscription; retrying the same
			// request cannot end differently.
			resp.Body.Close()
			return events, reconnects
		}
		connects++
		if connects > 1 {
			reconnects++
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			events++
			var ev struct {
				Tick int `json:"tick"`
			}
			if json.Unmarshal(line, &ev) == nil && ev.Tick > lastTick {
				lastTick = ev.Tick
			}
		}
		resp.Body.Close()
		if !sleepStream(ctx) {
			return events, reconnects
		}
	}
}

// sleepStream pauses briefly between stream reconnect attempts; false
// means ctx ended first.
func sleepStream(ctx context.Context) bool {
	t := time.NewTimer(200 * time.Millisecond)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func decodeBody(r io.Reader, dst any) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, dst)
}
