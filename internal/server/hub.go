package server

import (
	"sort"
	"sync"

	"willow/internal/telemetry"
)

// Hub fans the daemon's telemetry stream out to any number of
// subscribers with strictly bounded buffering: Publish never blocks,
// so a slow or stuck subscriber (an SSE client on a bad link) can
// never stall the tick loop. Overflow drops the event for that
// subscriber only and counts it — lossy by design; consumers that need
// the complete stream attach a lossless sink to the daemon instead
// (Daemon.SetSink), which publishes under the tick lock.
type Hub struct {
	mu        sync.Mutex
	subs      map[*Subscription]struct{}
	nextID    int64
	published int64
	dropped   int64
	closed    bool
	done      chan struct{}
}

// Subscription is one subscriber's bounded event feed. Receive from C
// until it closes (hub shut down or Unsubscribe called).
type Subscription struct {
	// C delivers events in publication order. It is closed when the
	// subscription ends; a nil read is never sent.
	C chan telemetry.Event
	// id orders subscribers stably in stats output (guarded by hub.mu).
	id int64
	// dropped counts events this subscriber missed (guarded by hub.mu).
	dropped int64
}

// NewHub returns an empty hub ready for subscribers.
func NewHub() *Hub {
	return &Hub{subs: map[*Subscription]struct{}{}, done: make(chan struct{})}
}

// Publish implements telemetry.Sink: deliver to every subscriber whose
// buffer has room, count a drop for the rest, never block. Safe for
// concurrent use with Subscribe/Unsubscribe/Close; a publish after
// Close is a silent no-op.
func (h *Hub) Publish(e telemetry.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.published++
	for s := range h.subs {
		select {
		case s.C <- e:
		default:
			s.dropped++
			h.dropped++
		}
	}
}

// Subscribe registers a subscriber with the given channel buffer
// (minimum 1). On a closed hub it returns an already-closed
// subscription, so stream handlers racing shutdown terminate cleanly.
func (h *Hub) Subscribe(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	s := &Subscription{C: make(chan telemetry.Event, buffer)}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID++
	s.id = h.nextID
	if h.closed {
		close(s.C)
		return s
	}
	h.subs[s] = struct{}{}
	return s
}

// Unsubscribe removes the subscriber and closes its channel. Calling
// it twice, or after Close, is harmless.
func (h *Hub) Unsubscribe(s *Subscription) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; !ok {
		return
	}
	delete(h.subs, s)
	close(s.C)
}

// Dropped returns how many events this subscriber's buffer overflowed.
func (h *Hub) Dropped(s *Subscription) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return s.dropped
}

// Close terminates every subscription and rejects future publishes.
// Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	close(h.done)
	for s := range h.subs {
		delete(h.subs, s)
		close(s.C)
	}
}

// Done returns a channel closed when the hub shuts down, for stream
// handlers to select on alongside their request context.
func (h *Hub) Done() <-chan struct{} { return h.done }

// Stats returns the hub's lifetime counters and current subscriber
// count.
func (h *Hub) Stats() (published, dropped int64, subscribers int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.published, h.dropped, len(h.subs)
}

// SubscriberStat is one live subscriber's backpressure picture: how big
// its buffer is, how full it currently sits, and how much it has lost.
type SubscriberStat struct {
	ID       int64 `json:"id"`
	Capacity int   `json:"capacity"`
	Queued   int   `json:"queued"`
	Dropped  int64 `json:"dropped"`
}

// SubscriberStats returns every live subscriber's backpressure stats in
// stable subscription order (the hub's subscriber set is a map, so the
// monotonic id is what makes repeated scrapes comparable).
func (h *Hub) SubscriberStats() []SubscriberStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]SubscriberStat, 0, len(h.subs))
	for s := range h.subs {
		out = append(out, SubscriberStat{
			ID:       s.id,
			Capacity: cap(s.C),
			Queued:   len(s.C),
			Dropped:  s.dropped,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
