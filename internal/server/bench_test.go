package server

import (
	"testing"

	"willow/internal/telemetry"
)

// BenchmarkServerTick measures the daemon's tick hot path — the full
// controller step plus hub publication, with one (unread) subscriber
// attached — over a complete 200-tick run of the 6-server test
// topology. Machine construction is excluded from the timed region.
// Alloc counts are deterministic and gated by benchguard.
func BenchmarkServerTick(b *testing.B) {
	spec := testSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := New(spec)
		if err != nil {
			b.Fatal(err)
		}
		sub := d.Hub().Subscribe(64)
		b.StartTimer()

		d.StepN(spec.Ticks)

		b.StopTimer()
		d.Hub().Unsubscribe(sub)
		d.Close()
		b.StartTimer()
	}
}

// BenchmarkEventsFanout measures Hub.Publish with 8 subscribers at
// steady state (full buffers, drop path) — the cost one tick pays per
// event when streams are attached. Must stay allocation-free: a
// publish that allocates would put the tick loop at the mercy of the
// garbage collector under high subscriber counts.
func BenchmarkEventsFanout(b *testing.B) {
	h := NewHub()
	defer h.Close()
	for i := 0; i < 8; i++ {
		h.Subscribe(64) // never read: exercises fill then sustained drop
	}
	ev := telemetry.Event{Tick: 1, Kind: telemetry.KindBudgetChange, Node: 3, Watts: 450, Prev: 400}
	b.ReportAllocs()
	b.ResetTimer() // subscription buffers are setup, not publish cost
	for i := 0; i < b.N; i++ {
		h.Publish(ev)
	}
}
