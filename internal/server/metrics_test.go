package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"willow/internal/obs"
)

// scrapeMetrics fetches /metrics from a handler and parses the
// exposition, failing the test on transport or conformance errors.
func scrapeMetrics(t *testing.T, ts *httptest.Server) *obs.Scrape {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	scrape, err := obs.ParseText(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	return scrape
}

// TestMetricsEndpoint pins the /metrics surface: the exposition parses
// back (format conformance on a live daemon), sim-time energy series
// carry the controller's figures exactly, and the wall-clock phase
// histograms saw every tick.
func TestMetricsEndpoint(t *testing.T) {
	d, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.StepN(80)

	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()
	scrape := scrapeMetrics(t, ts)

	if v, ok := scrape.Value("willow_tick"); !ok || v != 80 {
		t.Errorf("willow_tick = %v/%v, want 80", v, ok)
	}
	fleet := d.Result().Energy.Fleet
	if v, ok := scrape.Value("willow_energy_joules_total"); !ok || v != fleet.Joules {
		t.Errorf("energy joules = %v/%v, want %v", v, ok, fleet.Joules)
	}
	if v, ok := scrape.Value("willow_work_per_joule"); !ok || v <= 0 || v >= 1 {
		t.Errorf("work/joule = %v/%v, want in (0, 1)", v, ok)
	}
	// Per-rack series sum to the fleet total.
	var rackSum float64
	for _, s := range scrape.Samples {
		if s.Name == "willow_rack_joules_total" {
			rackSum += s.Value
		}
	}
	if math.Abs(rackSum-fleet.Joules) > 1e-9*fleet.Joules {
		t.Errorf("rack series sum %v != fleet %v", rackSum, fleet.Joules)
	}
	// Wall-clock histograms: one observation per phase per tick, and
	// the family is declared a histogram.
	if typ := scrape.Types["willow_tick_phase_seconds"]; typ != "histogram" {
		t.Errorf("tick phase type = %q, want histogram", typ)
	}
	for _, phase := range []string{"observe", "consume"} {
		v, ok := scrape.Value("willow_tick_phase_seconds_count", obs.Label{Name: "phase", Value: phase})
		if !ok || v != 80 {
			t.Errorf("phase %s count = %v/%v, want 80", phase, v, ok)
		}
	}
}

// TestMetricsSubscriberBackpressure exercises the per-subscriber series
// end to end: a tiny-buffer subscription overflows under load and the
// drops show up in /metrics and /v1/stats with stable ids.
func TestMetricsSubscriberBackpressure(t *testing.T) {
	d, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	sub := d.Hub().Subscribe(1) // overflow immediately; never drained
	defer d.Hub().Unsubscribe(sub)
	d.StepN(20)

	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()
	scrape := scrapeMetrics(t, ts)

	id := obs.Label{Name: "subscriber", Value: "1"}
	if v, ok := scrape.Value("willow_hub_subscriber_capacity", id); !ok || v != 1 {
		t.Errorf("capacity = %v/%v, want 1", v, ok)
	}
	if v, ok := scrape.Value("willow_hub_subscriber_queue", id); !ok || v != 1 {
		t.Errorf("queue = %v/%v, want 1 (full)", v, ok)
	}
	dropped, ok := scrape.Value("willow_hub_subscriber_dropped_total", id)
	if !ok || dropped <= 0 {
		t.Errorf("dropped = %v/%v, want > 0", dropped, ok)
	}

	var stats StatsView
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if len(stats.SubscriberStats) != 1 {
		t.Fatalf("subscriber stats = %+v, want 1 entry", stats.SubscriberStats)
	}
	ss := stats.SubscriberStats[0]
	if ss.ID != 1 || ss.Capacity != 1 || ss.Queued != 1 {
		t.Errorf("subscriber stat = %+v, want id/capacity/queued 1/1/1", ss)
	}
	if float64(ss.Dropped) < dropped {
		t.Errorf("stats dropped %d < metrics dropped %v", ss.Dropped, dropped)
	}
}

// TestEfficiencyEndpoint checks the /v1/efficiency scoreboard: the
// cumulative figures match the controller, the sliding window spans the
// configured width once enough ticks have run, and rack/class rows are
// present and consistent.
func TestEfficiencyEndpoint(t *testing.T) {
	d, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.StepN(EfficiencyWindow + 40)

	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()
	var eff EfficiencyView
	getJSON(t, ts.URL+"/v1/efficiency", &eff)

	if eff.Tick != EfficiencyWindow+40 {
		t.Errorf("tick = %d, want %d", eff.Tick, EfficiencyWindow+40)
	}
	if eff.TickSeconds != 1 {
		t.Errorf("tick seconds = %v, want default 1", eff.TickSeconds)
	}
	fleet := d.Result().Energy.Fleet
	if eff.Cumulative.Joules != fleet.Joules || eff.Cumulative.WorkJoules != fleet.WorkJoules {
		t.Errorf("cumulative %+v does not match controller %+v", eff.Cumulative, fleet)
	}
	if eff.Window.WindowTicks != EfficiencyWindow {
		t.Errorf("window ticks = %d, want %d", eff.Window.WindowTicks, EfficiencyWindow)
	}
	if eff.Window.Joules <= 0 || eff.Window.Joules >= eff.Cumulative.Joules {
		t.Errorf("window joules %v outside (0, cumulative %v)", eff.Window.Joules, eff.Cumulative.Joules)
	}
	if len(eff.Racks) == 0 || len(eff.Classes) == 0 {
		t.Fatalf("missing rack/class rows: %+v", eff)
	}
	var rackJ float64
	for _, r := range eff.Racks {
		rackJ += r.Joules
	}
	if math.Abs(rackJ-eff.Cumulative.Joules) > 1e-9*eff.Cumulative.Joules {
		t.Errorf("rack rows sum %v != cumulative %v", rackJ, eff.Cumulative.Joules)
	}
}

// TestEnergySnapshotRestoreIdentity is the acceptance pin: the full
// energy report of a restored run is byte-identical to one that never
// stopped — mutations, journal replay and all.
func TestEnergySnapshotRestoreIdentity(t *testing.T) {
	spec := testSpec()
	spec.Energy = true
	spec.TickSeconds = 2.5

	run := func(split bool) string {
		d, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		d.StepN(60)
		if _, err := d.ScaleDemand(-1, 1.3); err != nil {
			t.Fatal(err)
		}
		d.StepN(40)
		if split {
			snap := d.Snapshot()
			// Round-trip through JSON exactly as a restart would.
			data, err := json.Marshal(snap)
			if err != nil {
				t.Fatal(err)
			}
			var back Snapshot
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			d.Close()
			if d, err = Restore(back); err != nil {
				t.Fatal(err)
			}
		}
		d.StepN(100)
		return fmt.Sprintf("%+v", d.Result().Energy)
	}

	straight := run(false)
	restored := run(true)
	if straight != restored {
		t.Errorf("energy diverged across snapshot/restore:\n straight %s\n restored %s", straight, restored)
	}
	if !strings.Contains(straight, "TickSeconds:2.5") {
		t.Errorf("report did not carry TickSeconds 2.5: %s", straight)
	}
}
