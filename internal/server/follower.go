package server

// Hot-standby follower: the consumer side of /v1/replicate. A follower
// tails a primary's replication stream, makes every record durable in
// its OWN WAL before advancing its cursor (so the standby's durability
// guarantee is exactly the primary's), and tracks how far behind it is
// in both records and ticks. Promotion — manual via POST /v1/promote or
// automatic after a configurable heartbeat-loss window — replays the
// follower's journal through the PR 8 Restore path and hands back a
// live Daemon resting at the primary's last proven boundary; the
// deterministic replay contract makes the promoted run byte-identical
// to the primary's, which is the whole point.
//
// The tail loop is built for bad networks: every connection attempt has
// a jittered exponential backoff, an idle watchdog tears down streams
// that have gone silent (a half-open TCP connection must not postpone
// failover detection forever), and reconnects resume from the durable
// cursor (?from=) so nothing is re-fetched and nothing can be skipped.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"time"

	"willow/internal/obs"
)

// Follower defaults: aggressive enough for sub-second failover in the
// harness, conservative enough not to flap on a loaded box.
const (
	DefaultFollowBackoff     = 100 * time.Millisecond
	DefaultFollowBackoffMax  = 2 * time.Second
	DefaultFollowIdleTimeout = 2 * time.Second
)

// FollowerOptions configures a hot standby.
type FollowerOptions struct {
	// Primary is the base URL of the daemon to follow.
	Primary string
	// WALPath, when set, is where the follower makes replicated records
	// durable before advancing its cursor (created from the primary's
	// spec record; reopened to resume if it already exists). Empty keeps
	// the journal in memory only — fine for tests, not for a real
	// standby.
	WALPath string
	// PromoteAfter, when positive, arms automatic promotion: once the
	// follower has a spec and hears nothing from the primary for this
	// long, it promotes itself.
	PromoteAfter time.Duration
	// Backoff is the base reconnect delay, doubled per consecutive
	// failure up to BackoffMax, jittered ±50%.
	Backoff    time.Duration
	BackoffMax time.Duration
	// IdleTimeout tears down a stream that has delivered nothing for
	// this long (heartbeats arrive every tick, so a healthy link is
	// never idle).
	IdleTimeout time.Duration
	// Client issues the replication requests (default http.DefaultClient
	// with no overall timeout — the stream is long-lived by design).
	Client *http.Client
	// Seed drives the backoff jitter, so chaos harnesses replay exactly.
	Seed uint64
}

func (o *FollowerOptions) defaults() {
	if o.Backoff <= 0 {
		o.Backoff = DefaultFollowBackoff
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = DefaultFollowBackoffMax
	}
	if o.IdleTimeout <= 0 {
		o.IdleTimeout = DefaultFollowIdleTimeout
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// errFollowerFatal marks conditions retrying cannot fix (WAL append
// failure, spec mismatch); Run stops instead of spinning on them.
var errFollowerFatal = errors.New("follower: fatal")

// Follower is a hot standby tailing one primary. Create with
// NewFollower, drive with Run, promote with Promote (or let
// PromoteAfter do it); serve its /healthz + /metrics + /v1/promote via
// NewFollowerHandler.
type Follower struct {
	opts FollowerOptions

	mu       sync.Mutex
	spec     Spec
	haveSpec bool
	muts     []Mutation // durable (or accepted, when WALPath is empty) records
	wal      *WAL

	// resumeTick is the furthest boundary provably safe to promote at:
	// the max over replicated mutation ticks and heartbeat ticks whose
	// announced record count we hold durably.
	resumeTick int
	// Last-heard primary state, for lag and health.
	primaryTick    int
	primaryRecords int
	primaryFrozen  bool
	primaryDone    bool

	connected   bool
	everConnect bool
	lastContact time.Time
	reconnects  int64
	cancelTail  context.CancelFunc

	promoted   *Daemon
	promotedCh chan struct{}

	rng *rand.Rand

	reg         *obs.Registry
	lagRecordsG *obs.Gauge
	lagTicksG   *obs.Gauge
	recordsG    *obs.Gauge
	resumeG     *obs.Gauge
	connectedG  *obs.Gauge
	reconnectsC *obs.Counter
}

// NewFollower builds a follower. If opts.WALPath names an existing WAL
// (a follower restart), its spec and records are loaded so tailing
// resumes from the durable cursor instead of record zero.
func NewFollower(opts FollowerOptions) (*Follower, error) {
	opts.defaults()
	if opts.Primary == "" {
		return nil, errors.New("follower: no primary URL")
	}
	reg := obs.NewRegistry()
	f := &Follower{
		opts:       opts,
		promotedCh: make(chan struct{}),
		rng:        rand.New(rand.NewSource(int64(opts.Seed))),
		reg:        reg,
		lagRecordsG: reg.Gauge("willow_replication_lag_records",
			"journal records the primary has announced but this follower has not made durable"),
		lagTicksG: reg.Gauge("willow_replication_lag_ticks",
			"ticks between the primary's last-heard boundary and this follower's resume boundary"),
		recordsG: reg.Gauge("willow_replication_records",
			"replicated journal records held durably by this follower"),
		resumeG: reg.Gauge("willow_replication_resume_tick",
			"tick boundary a promotion would resume at"),
		connectedG: reg.Gauge("willow_replication_connected",
			"1 while a /v1/replicate stream to the primary is live"),
		reconnectsC: reg.Counter("willow_replication_reconnects_total",
			"replication stream re-establishes after the first connect"),
	}
	if opts.WALPath != "" {
		if _, err := os.Stat(opts.WALPath); err == nil {
			wal, st, err := OpenWAL(opts.WALPath)
			if err != nil {
				return nil, fmt.Errorf("follower: reopening wal: %w", err)
			}
			f.wal = wal
			f.spec, f.haveSpec = st.Spec, true
			f.muts = st.Mutations
			if n := len(st.Mutations); n > 0 {
				f.resumeTick = st.Mutations[n-1].Tick
			}
			f.recordsG.Set(float64(len(f.muts)))
			f.resumeG.Set(float64(f.resumeTick))
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("follower: stat wal: %w", err)
		}
	}
	return f, nil
}

// Run tails the primary until the context ends, the follower is
// promoted (returns nil — check Promoted), or a fatal condition stops
// replication (WAL divergence, spec mismatch). Transient failures —
// refused connections, mid-stream resets, idle streams — retry forever
// with jittered exponential backoff; when PromoteAfter is armed and the
// primary stays silent past the window, Run promotes and returns.
func (f *Follower) Run(ctx context.Context) error {
	attempt := 0
	for {
		if f.Promoted() != nil {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		err := f.tail(ctx)
		if f.Promoted() != nil {
			return nil
		}
		if errors.Is(err, errFollowerFatal) {
			return err
		}
		if err == nil || f.tookRecords() {
			attempt = 0 // the link worked; start backoff over
		} else {
			attempt++
		}
		if f.shouldAutoPromote() {
			if _, perr := f.Promote(); perr != nil {
				return fmt.Errorf("follower: auto-promote: %w", perr)
			}
			return nil
		}
		if err := f.sleep(ctx, attempt); err != nil {
			return err
		}
	}
}

// tookRecords reports whether the last stream delivered anything,
// resetting the marker.
func (f *Follower) tookRecords() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	took := f.everConnect && time.Since(f.lastContact) < f.opts.IdleTimeout
	return took
}

// shouldAutoPromote checks the heartbeat-loss window: armed, spec
// known, and the primary silent past PromoteAfter.
func (f *Follower) shouldAutoPromote() bool {
	if f.opts.PromoteAfter <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.haveSpec && !f.lastContact.IsZero() &&
		time.Since(f.lastContact) >= f.opts.PromoteAfter
}

// sleep waits the jittered backoff for the given consecutive-failure
// count, returning early if the context ends or a promotion lands.
func (f *Follower) sleep(ctx context.Context, attempt int) error {
	delay := f.opts.Backoff << uint(min(attempt, 16))
	if delay > f.opts.BackoffMax || delay <= 0 {
		delay = f.opts.BackoffMax
	}
	// Jitter ±50%: simultaneous follower reconnects after a primary
	// restart must not arrive in lockstep.
	f.mu.Lock()
	jittered := delay/2 + time.Duration(f.rng.Int63n(int64(delay)/2+1))
	f.mu.Unlock()
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-f.promotedCh:
		return nil
	case <-t.C:
		return nil
	}
}

// tail runs one replication stream: connect from the durable cursor,
// apply records until the stream breaks, the idle watchdog fires, or
// the context ends.
func (f *Follower) tail(ctx context.Context) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	f.mu.Lock()
	from := len(f.muts)
	f.cancelTail = cancel
	f.mu.Unlock()

	url := strings.TrimRight(f.opts.Primary, "/") + "/v1/replicate?from=" + strconv.Itoa(from)
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, url, nil)
	if err != nil {
		return fmt.Errorf("%w: %v", errFollowerFatal, err)
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("follower: primary replied %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}

	f.setConnected(true)
	defer f.setConnected(false)

	// Idle watchdog: heartbeats arrive every tick, so a silent stream is
	// a dead or half-open one — kill it and let the retry loop decide.
	watchdog := time.AfterFunc(f.opts.IdleTimeout, cancel)
	defer watchdog.Stop()

	dec := json.NewDecoder(resp.Body)
	for {
		var rec RepRecord
		if err := dec.Decode(&rec); err != nil {
			if cerr := cctx.Err(); cerr != nil {
				return cerr // cancelled: shutdown, promotion, or watchdog
			}
			return err // EOF (primary drained) or a broken link
		}
		watchdog.Reset(f.opts.IdleTimeout)
		if err := f.apply(rec); err != nil {
			return err
		}
	}
}

// setConnected flips the link gauge and counts re-establishes.
func (f *Follower) setConnected(up bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.connected = up
	f.connectedG.Set(b2f(up))
	if up {
		if f.everConnect {
			f.reconnects++
			f.reconnectsC.Inc()
		}
		f.everConnect = true
		f.lastContact = time.Now()
	}
}

// apply folds one replication record into the follower's durable state.
func (f *Follower) apply(rec RepRecord) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lastContact = time.Now()

	switch rec.Type {
	case "spec":
		if rec.Spec == nil {
			return errors.New("follower: spec record without a spec")
		}
		if f.haveSpec {
			if !reflect.DeepEqual(*rec.Spec, f.spec) {
				// The primary is running a different run than the one we
				// replicated; appending its records to ours would corrupt
				// both histories.
				return fmt.Errorf("%w: primary's spec differs from the replicated run", errFollowerFatal)
			}
			return nil
		}
		f.spec, f.haveSpec = *rec.Spec, true
		if f.opts.WALPath != "" && f.wal == nil {
			wal, err := CreateWAL(f.opts.WALPath, f.spec, nil)
			if err != nil {
				return fmt.Errorf("%w: %v", errFollowerFatal, err)
			}
			f.wal = wal
		}
	case "mut":
		if rec.Mut == nil {
			return errors.New("follower: mut record without a mutation")
		}
		switch {
		case rec.Index < len(f.muts):
			// Duplicate from a resumed stream's backlog; already durable.
		case rec.Index > len(f.muts):
			// A hole. The server drops overflowing subscribers rather than
			// skipping records, so this should be unreachable — reconnect
			// from the durable cursor rather than fabricate history.
			return fmt.Errorf("follower: record gap: got index %d, have %d records", rec.Index, len(f.muts))
		default:
			if f.wal != nil {
				// Durability before cursor advance: the standby's promise is
				// exactly the primary's (fsync before ack).
				if err := f.wal.Append(*rec.Mut); err != nil {
					return fmt.Errorf("%w: wal append: %v", errFollowerFatal, err)
				}
			}
			f.muts = append(f.muts, *rec.Mut)
			if rec.Mut.Tick > f.resumeTick {
				f.resumeTick = rec.Mut.Tick
			}
		}
	case "hb":
		f.primaryFrozen = rec.Frozen
		f.primaryDone = rec.Done
		// A heartbeat proves the primary completed every tick before
		// rec.Tick with rec.Records journal records. Only adopt the
		// boundary once we hold all those records: promotion replays our
		// journal, and a boundary beyond our records would skip history.
		if rec.Records <= len(f.muts) && rec.Tick > f.resumeTick {
			f.resumeTick = rec.Tick
		}
	default:
		return fmt.Errorf("follower: unknown record type %q", rec.Type)
	}

	if rec.Tick > f.primaryTick {
		f.primaryTick = rec.Tick
	}
	if rec.Records > f.primaryRecords {
		f.primaryRecords = rec.Records
	}
	f.recordsG.Set(float64(len(f.muts)))
	f.resumeG.Set(float64(f.resumeTick))
	f.lagRecordsG.Set(float64(f.primaryRecords - len(f.muts)))
	f.lagTicksG.Set(float64(f.primaryTick - f.resumeTick))
	return nil
}

// Promote replays the follower's journal through the Restore path and
// returns a live Daemon resting at the resume boundary, with the
// follower's WAL attached so the promoted run keeps the durability
// contract without a WAL rewrite (the follower's WAL already holds the
// complete history from tick 0 — it IS the primary's WAL, byte for
// byte in content). Idempotent: later calls return the same daemon.
func (f *Follower) Promote() (*Daemon, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted != nil {
		return f.promoted, nil
	}
	if !f.haveSpec {
		return nil, errors.New("follower: nothing replicated yet (no spec)")
	}
	d, err := Restore(Snapshot{
		Version: SnapshotVersion,
		Spec:    f.spec,
		Tick:    f.resumeTick,
		Journal: append([]Mutation(nil), f.muts...),
	})
	if err != nil {
		return nil, fmt.Errorf("follower: promoting at tick %d: %w", f.resumeTick, err)
	}
	if f.wal != nil {
		d.AttachWAL(f.wal)
	}
	f.promoted = d
	close(f.promotedCh)
	if f.cancelTail != nil {
		f.cancelTail() // stop tailing a primary we no longer follow
	}
	return d, nil
}

// Promoted returns the daemon created by Promote, or nil before it.
func (f *Follower) Promoted() *Daemon {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.promoted
}

// ResumeTick returns the boundary a promotion would currently start at.
func (f *Follower) ResumeTick() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.resumeTick
}

// Records returns the durable replicated record count.
func (f *Follower) Records() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.muts)
}

// Close releases the follower's WAL. After a promotion the WAL belongs
// to the promoted daemon's append path, so call Close only once that
// daemon has fully drained (appends are fsync-per-record; there is
// nothing to flush, but closing under a live daemon would turn its next
// mutation into a sticky WAL error).
func (f *Follower) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wal != nil {
		err := f.wal.Close()
		f.wal = nil
		return err
	}
	return nil
}

// WriteMetrics writes the follower's replication-lag exposition.
func (f *Follower) WriteMetrics(w io.Writer) error {
	return f.reg.WriteText(w)
}

// NewFollowerHandler serves a follower's observability and promotion
// surface while it is still a standby:
//
//	GET  /healthz     readiness: caught-up, lag, last contact
//	GET  /metrics     replication lag gauges
//	POST /v1/promote  promote now; returns {tick, records}
//
// Everything else answers 503 with the primary's URL, so a client that
// talks to the standby by mistake learns where the real daemon is.
// onPromote, when non-nil, runs once after a successful promotion
// (willowd uses it to swap this handler for the full primary surface).
func NewFollowerHandler(f *Follower, onPromote func(*Daemon)) http.Handler {
	var once sync.Once
	promote := func() (*Daemon, error) {
		d, err := f.Promote()
		if err == nil && onPromote != nil {
			once.Do(func() { onPromote(d) })
		}
		return d, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.Health())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = f.WriteMetrics(w)
	})
	mux.HandleFunc("POST /v1/promote", func(w http.ResponseWriter, r *http.Request) {
		d, err := promote()
		if err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"tick":    d.NextTick(),
			"records": len(d.Snapshot().Journal),
		})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("standby follower: not primary (following %s)", f.opts.Primary))
	})
	return mux
}

// SwitchHandler atomically swaps one http.Handler for another — the
// follower→primary transition without restarting the listener.
type SwitchHandler struct {
	h atomicHandler
}

// atomicHandler wraps the untyped atomic.Value with the one type it
// ever holds.
type atomicHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

// NewSwitchHandler starts with h.
func NewSwitchHandler(h http.Handler) *SwitchHandler {
	s := &SwitchHandler{}
	s.h.h = h
	return s
}

// Set replaces the active handler; in-flight requests finish on the old
// one.
func (s *SwitchHandler) Set(h http.Handler) {
	s.h.mu.Lock()
	s.h.h = h
	s.h.mu.Unlock()
}

func (s *SwitchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.mu.RLock()
	h := s.h.h
	s.h.mu.RUnlock()
	h.ServeHTTP(w, r)
}
