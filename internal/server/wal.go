package server

// Write-ahead journal for the live daemon. The snapshot format from the
// PR 5 control plane made the mutation journal the source of truth —
// (Spec, journal) rebuilds any run bit for bit — but a snapshot only
// exists when someone asks for one: a kill -9 loses every mutation since
// the last POST /v1/snapshot. The WAL closes that window. With a WAL
// attached, every accepted mutation is framed, appended, and fsync'd
// BEFORE the API call acknowledges, so an acknowledged mutation survives
// any process death. Recovery is then snapshot (optional base) + WAL
// replay; see recovery.go.
//
// On-disk format, all integers little-endian:
//
//	header:  8-byte magic "WILLOWAL" | uint32 version (1)
//	record:  uint32 payload length | uint32 CRC32-IEEE(payload) | payload
//
// The first record's payload is the run Spec as JSON; every later
// record is one Mutation as JSON. Records are strictly appended and the
// file is fsync'd after every append, so at any instant the file is a
// well-formed prefix plus, at worst, one torn tail record (a crash
// mid-write). Open detects the torn tail — short frame, short payload,
// or CRC mismatch — and truncates it rather than failing: the torn
// record was by construction never acknowledged. Corruption that a
// truncated tail cannot explain (bad magic, unparseable spec record) is
// an error, not a recovery.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

const (
	walMagic   = "WILLOWAL"
	walVersion = 1
	// walMaxRecord bounds one record's payload: a Mutation or Spec is a
	// few hundred bytes of JSON, so anything near this limit means the
	// length prefix itself is garbage.
	walMaxRecord = 1 << 20
)

// walHeaderLen is the byte length of the file header.
const walHeaderLen = len(walMagic) + 4

// walFrameLen is the byte overhead of one record frame.
const walFrameLen = 8

// WAL is an append-only, fsync-per-append mutation journal. Append is
// not safe for concurrent use on its own; the daemon serializes appends
// under its tick lock.
type WAL struct {
	f    *os.File
	path string
}

// CreateWAL creates a new WAL at path (failing if one already exists —
// recovery must be a deliberate OpenWAL, never an accidental overwrite)
// and writes the spec header record plus one record per existing journal
// entry, so the WAL always carries the complete mutation history from
// tick 0. The file and its parent directory are fsync'd before return.
func CreateWAL(path string, spec Spec, journal []Mutation) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: creating wal: %w", err)
	}
	w := &WAL{f: f, path: path}
	fail := func(err error) (*WAL, error) {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	var buf []byte
	buf = append(buf, walMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, walVersion)
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	buf = appendRecord(buf, specJSON)
	if _, err := f.Write(buf); err != nil {
		return fail(fmt.Errorf("server: writing wal header: %w", err))
	}
	for _, mut := range journal {
		if err := w.append(mut, false); err != nil {
			return fail(err)
		}
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("server: syncing wal: %w", err))
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return fail(err)
	}
	return w, nil
}

// WALState is what OpenWAL found on disk: the spec the run was built
// from, every durable mutation in acceptance order, and how many bytes
// of torn tail (an unacknowledged partial append) were truncated away.
type WALState struct {
	Spec      Spec
	Mutations []Mutation
	// Truncated is the byte length of the torn tail record discarded on
	// open (0 for a cleanly closed WAL).
	Truncated int64
}

// OpenWAL opens an existing WAL for recovery and further appends. It
// validates the header, replays every intact record, and truncates a
// torn tail record in place (see the package comment for why only the
// tail can legally be torn). Structural corruption — wrong magic,
// unsupported version, an unparseable spec record — returns an error
// naming the offset, never a panic.
func OpenWAL(path string) (*WAL, WALState, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, WALState{}, fmt.Errorf("server: opening wal: %w", err)
	}
	st, validEnd, err := scanWAL(f, path)
	if err != nil {
		f.Close()
		return nil, WALState{}, err
	}
	if st.Truncated > 0 {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, WALState{}, fmt.Errorf("server: truncating torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, WALState{}, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, WALState{}, err
	}
	return &WAL{f: f, path: path}, st, nil
}

// scanWAL parses the header and every record, returning the recovered
// state and the offset where the valid prefix ends.
func scanWAL(r io.Reader, path string) (WALState, int64, error) {
	var st WALState
	header := make([]byte, walHeaderLen)
	if _, err := io.ReadFull(r, header); err != nil {
		return st, 0, fmt.Errorf("server: %s is not a willow wal (short header): %w", path, err)
	}
	if string(header[:len(walMagic)]) != walMagic {
		return st, 0, fmt.Errorf("server: %s is not a willow wal (bad magic)", path)
	}
	if v := binary.LittleEndian.Uint32(header[len(walMagic):]); v != walVersion {
		return st, 0, fmt.Errorf("server: wal %s has version %d, want %d", path, v, walVersion)
	}
	offset := int64(walHeaderLen)
	first := true
	for {
		payload, frameLen, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// A bad record can only be the torn tail of an interrupted
			// append; everything beyond it is unacknowledged by
			// construction. Count whatever remains and stop.
			st.Truncated = tornLength(r, frameLen)
			break
		}
		if first {
			if err := json.Unmarshal(payload, &st.Spec); err != nil {
				return st, 0, fmt.Errorf("server: wal %s spec record at offset %d: %w", path, offset, err)
			}
			first = false
		} else {
			var mut Mutation
			if err := json.Unmarshal(payload, &mut); err != nil {
				// CRC passed but the JSON is bad: the record was written
				// corrupt, which truncation cannot repair.
				return st, 0, fmt.Errorf("server: wal %s mutation record at offset %d: %w", path, offset, err)
			}
			st.Mutations = append(st.Mutations, mut)
		}
		offset += int64(frameLen)
	}
	if first {
		return st, 0, fmt.Errorf("server: wal %s has no spec record (torn during creation) — delete it and start fresh", path)
	}
	return st, offset, nil
}

// readRecord reads one frame. It returns io.EOF exactly at a clean
// record boundary; any partial read or CRC mismatch is a non-EOF error
// with frameLen holding the bytes consumed so far (for torn-tail
// accounting).
func readRecord(r io.Reader) (payload []byte, frameLen int, err error) {
	var frame [walFrameLen]byte
	n, err := io.ReadFull(r, frame[:])
	if err == io.EOF {
		return nil, 0, io.EOF
	}
	if err != nil {
		return nil, n, fmt.Errorf("torn frame: %w", err)
	}
	length := binary.LittleEndian.Uint32(frame[:4])
	sum := binary.LittleEndian.Uint32(frame[4:])
	if length > walMaxRecord {
		return nil, walFrameLen, fmt.Errorf("torn frame: implausible record length %d", length)
	}
	payload = make([]byte, length)
	n, err = io.ReadFull(r, payload)
	if err != nil {
		return nil, walFrameLen + n, fmt.Errorf("torn payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, walFrameLen + int(length), fmt.Errorf("crc mismatch: %08x != %08x", got, sum)
	}
	return payload, walFrameLen + int(length), nil
}

// tornLength counts the total torn bytes: what the failed record read
// consumed plus whatever trails it.
func tornLength(r io.Reader, consumed int) int64 {
	rest, _ := io.Copy(io.Discard, r)
	return int64(consumed) + rest
}

// appendRecord frames payload onto buf.
func appendRecord(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// Append frames, writes, and fsyncs one mutation. It returns only after
// the record is durable, which is what lets the API acknowledge the
// mutation: an acknowledged mutation survives kill -9.
func (w *WAL) Append(mut Mutation) error {
	return w.append(mut, true)
}

func (w *WAL) append(mut Mutation, sync bool) error {
	payload, err := json.Marshal(mut)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(appendRecord(nil, payload)); err != nil {
		return fmt.Errorf("server: wal append: %w", err)
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("server: wal fsync: %w", err)
		}
	}
	return nil
}

// Path returns the WAL's file path.
func (w *WAL) Path() string { return w.path }

// Close closes the file. Appends are already durable, so Close has
// nothing to flush.
func (w *WAL) Close() error { return w.f.Close() }

// syncDir fsyncs a directory so a freshly created or renamed entry in
// it survives power loss, not just process death.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("server: syncing directory %s: %w", dir, err)
	}
	return nil
}
