package server

// Crash recovery: rebuilding a daemon from durable state after an
// ungraceful death. The recovery order is fixed and matters:
//
//  1. Open the WAL. Its header record carries the Spec the run was
//     built from (command-line flags are ignored on recovery — the WAL
//     is authoritative), and its body carries every acknowledged
//     mutation. A torn tail record is truncated, never fatal.
//  2. If a base snapshot is supplied, load it and verify consistency:
//     same Spec, and the snapshot's journal must be a prefix of the
//     WAL's mutations (the WAL holds the complete history from tick 0,
//     so a snapshot can only ever summarize a prefix of it).
//  3. Rebuild through Restore at the recovery tick — the furthest
//     boundary durable state proves the old incarnation reached:
//     max(snapshot tick, last WAL mutation tick). Ticks the dead
//     incarnation ran beyond that boundary re-execute live after
//     recovery; determinism makes the re-execution bit-identical, so
//     the run's final state is byte-identical to one that never died.
//
// The base snapshot never changes the outcome — Restore replays the
// same journal either way — it only documents the operator workflow
// (periodic snapshots bound WAL replay cost at scale). Recovery
// verifies the pair agrees instead of trusting either alone.

import (
	"fmt"
	"os"
	"reflect"

	"willow/internal/telemetry"
)

// RecoveryInfo describes what Recover reconstructed, for operator
// logging.
type RecoveryInfo struct {
	// Spec is the run spec recovered from the WAL header.
	Spec Spec
	// Tick is the boundary the daemon resumed at.
	Tick int
	// Mutations is the number of durable mutations replayed.
	Mutations int
	// SnapshotTick is the base snapshot's tick (-1 when recovering from
	// the WAL alone).
	SnapshotTick int
	// TruncatedBytes is the torn WAL tail discarded, if any.
	TruncatedBytes int64
}

// Recover rebuilds a daemon from a WAL (and an optional base snapshot),
// attaches the WAL for further appends, and returns what it found. On
// error the WAL is closed; on success the caller owns both the daemon
// and the WAL (Daemon.Close does not close the WAL).
func Recover(snapPath, walPath string) (*Daemon, *WAL, RecoveryInfo, error) {
	wal, st, err := OpenWAL(walPath)
	if err != nil {
		return nil, nil, RecoveryInfo{}, err
	}
	info := RecoveryInfo{
		Spec:           st.Spec,
		Mutations:      len(st.Mutations),
		SnapshotTick:   -1,
		TruncatedBytes: st.Truncated,
	}
	fail := func(err error) (*Daemon, *WAL, RecoveryInfo, error) {
		wal.Close()
		return nil, nil, RecoveryInfo{}, err
	}

	tick := 0
	for i, mut := range st.Mutations {
		if mut.Tick < tick {
			return fail(fmt.Errorf("server: wal %s mutation %d at tick %d precedes tick %d — not an append-only history",
				walPath, i, mut.Tick, tick))
		}
		tick = mut.Tick
	}

	if snapPath != "" {
		snap, rerr := ReadSnapshot(snapPath)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				// No base snapshot yet (none was ever written): WAL-only
				// recovery is the normal young-run case.
				snapPath = ""
			} else {
				return fail(rerr)
			}
		} else {
			if !reflect.DeepEqual(snap.Spec, st.Spec) {
				return fail(fmt.Errorf("server: snapshot %s and wal %s describe different runs (specs differ)", snapPath, walPath))
			}
			if len(snap.Journal) > len(st.Mutations) {
				return fail(fmt.Errorf("server: snapshot %s has %d journal entries but wal %s holds only %d — the wal is not this run's journal",
					snapPath, len(snap.Journal), walPath, len(st.Mutations)))
			}
			for i, mut := range snap.Journal {
				if !reflect.DeepEqual(mut, st.Mutations[i]) {
					return fail(fmt.Errorf("server: snapshot %s journal entry %d disagrees with wal %s — refusing to guess which history is real",
						snapPath, i, walPath))
				}
			}
			info.SnapshotTick = snap.Tick
			if snap.Tick > tick {
				tick = snap.Tick
			}
		}
	}

	d, err := Restore(Snapshot{
		Version: SnapshotVersion,
		Spec:    st.Spec,
		Tick:    tick,
		Journal: st.Mutations,
	})
	if err != nil {
		return fail(fmt.Errorf("server: recovering from wal %s: %w", walPath, err))
	}
	d.AttachWAL(wal)
	info.Tick = tick
	return d, wal, info, nil
}

// Replay is the uninterrupted-run oracle: it rebuilds the run a
// snapshot describes with telemetry flowing from tick 0 — unlike
// Restore, which silences events during fast-forward because a live
// predecessor already published them. The returned daemon rests at
// snap.Tick having published, through sink, the exact event stream a
// single never-interrupted run with the same mutation history would
// have produced. The crash harness compares a kill/recover run's
// surviving stream fragments against this.
func Replay(snap Snapshot, sink telemetry.Sink) (*Daemon, error) {
	if err := validateSnapshot(snap); err != nil {
		return nil, err
	}
	cfg, err := snap.Spec.Build()
	if err != nil {
		return nil, err
	}
	m, err := newReplayedMachine(cfg, snap, sink)
	if err != nil {
		return nil, err
	}
	d := newDaemon(snap.Spec, m, append([]Mutation(nil), snap.Journal...))
	d.sink = sink
	return d, nil
}
