package server

// Overload admission control for the mutation endpoints. Every mutation
// serializes on the daemon's tick lock (and, with a WAL attached, pays
// an fsync), so unbounded concurrent POSTs would pile goroutines on the
// mutex — memory grows with offered load and tail latency with queue
// depth, the classic congestion-collapse shape. The gate bounds both
// dimensions explicitly: at most maxInflight mutations hold the lock
// path at once, at most maxQueue more wait behind them, and everything
// beyond that is shed immediately with 429 + Retry-After — cheap for
// the server, actionable for the client. Read endpoints are not gated:
// they take the lock only briefly and shedding them would blind
// operators exactly when they most need /v1/state.

import (
	"context"
	"sync/atomic"

	"willow/internal/obs"
)

// Default admission bounds: generous enough that a well-behaved load
// generator never notices, small enough that a mutation flood cannot
// accumulate unbounded goroutines.
const (
	DefaultMaxInflight = 16
	DefaultMaxQueue    = 64
)

// gate is a two-stage admission valve: a semaphore of inflight slots
// plus a bounded count of waiters. acquire either admits (possibly
// after queueing), or sheds without blocking.
type gate struct {
	slots  chan struct{}
	queued atomic.Int64

	maxQueue int64

	admitted   *obs.Counter
	shed       *obs.Counter
	inflightG  *obs.Gauge
	queuedG    *obs.Gauge
	inflightHi *obs.Gauge
}

// newGate builds a gate registering its counters on reg (the daemon's
// /metrics registry). Non-positive bounds take the defaults.
func newGate(maxInflight, maxQueue int, reg *obs.Registry) *gate {
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	if maxQueue <= 0 {
		maxQueue = DefaultMaxQueue
	}
	g := &gate{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
		admitted: reg.Counter("willow_admission_admitted_total",
			"mutations admitted through the overload gate"),
		shed: reg.Counter("willow_admission_shed_total",
			"mutations shed with 429 because the gate was saturated"),
		inflightG: reg.Gauge("willow_admission_inflight",
			"mutations currently holding an admission slot"),
		queuedG: reg.Gauge("willow_admission_queued",
			"mutations currently waiting for an admission slot"),
		inflightHi: reg.Gauge("willow_admission_inflight_limit",
			"configured admission slot limit"),
	}
	g.inflightHi.Set(float64(maxInflight))
	return g
}

// acquire claims an admission slot, queueing up to the bound if none is
// free. It returns false — without ever blocking beyond the queue's
// discipline — when the request should be shed: gate saturated, or the
// client gave up (ctx done) while queued. Callers that get true must
// release.
func (g *gate) acquire(ctx context.Context) bool {
	select {
	case g.slots <- struct{}{}:
		g.admitted.Inc()
		g.inflightG.Set(float64(len(g.slots)))
		return true
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.shed.Inc()
		return false
	}
	g.queuedG.Set(float64(g.queued.Load()))
	defer func() {
		g.queuedG.Set(float64(g.queued.Add(-1)))
	}()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Inc()
		g.inflightG.Set(float64(len(g.slots)))
		return true
	case <-ctx.Done():
		g.shed.Inc()
		return false
	}
}

// release frees an admission slot.
func (g *gate) release() {
	<-g.slots
	g.inflightG.Set(float64(len(g.slots)))
}
