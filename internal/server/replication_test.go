package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"willow/internal/telemetry"
)

// repDecoder reads one NDJSON replication stream in a test.
type repDecoder struct {
	t    *testing.T
	resp *http.Response
	dec  *json.Decoder
}

func openReplicate(t *testing.T, base string, from int) *repDecoder {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/replicate?from=%d", base, from))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET /v1/replicate: %s", resp.Status)
	}
	return &repDecoder{t: t, resp: resp, dec: json.NewDecoder(resp.Body)}
}

// close ends the stream; callers defer it AFTER the server's own defer
// so the connection is gone before the server waits for it.
func (r *repDecoder) close() { r.resp.Body.Close() }

func (r *repDecoder) next() RepRecord {
	r.t.Helper()
	var rec RepRecord
	if err := r.dec.Decode(&rec); err != nil {
		r.t.Fatalf("decoding replication record: %v", err)
	}
	return rec
}

// TestReplicationStreamBackfillAndLive pins the /v1/replicate wire
// contract: spec record first, then the journal backlog from the
// cursor, an initial heartbeat carrying the primary's boundary, and
// live records — mutations in journal order, heartbeats per tick — as
// the run advances.
func TestReplicationStreamBackfillAndLive(t *testing.T) {
	d := newTestDaemon(t, testSpec())
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()

	d.StepN(10)
	if _, err := d.ScaleDemand(-1, 1.1); err != nil {
		t.Fatal(err)
	}

	rd := openReplicate(t, ts.URL, 0)
	defer rd.close()
	spec := rd.next()
	if spec.Type != "spec" || spec.Spec == nil || !reflect.DeepEqual(*spec.Spec, d.Spec()) {
		t.Fatalf("first record = %+v, want the run spec", spec)
	}
	if spec.Records != 1 || spec.Tick != 10 {
		t.Fatalf("spec record boundary = (tick %d, records %d), want (10, 1)", spec.Tick, spec.Records)
	}
	mut := rd.next()
	if mut.Type != "mut" || mut.Index != 0 || mut.Mut == nil || mut.Mut.Kind != "demand" {
		t.Fatalf("backlog record = %+v, want journal entry 0", mut)
	}
	hb := rd.next()
	if hb.Type != "hb" || hb.Tick != 10 || hb.Records != 1 {
		t.Fatalf("initial heartbeat = %+v, want tick 10 records 1", hb)
	}

	// Live: a new mutation then a tick must arrive in order.
	if _, err := d.ScaleDemand(2, 0.9); err != nil {
		t.Fatal(err)
	}
	d.StepN(1)
	live := rd.next()
	if live.Type != "mut" || live.Index != 1 {
		t.Fatalf("live record = %+v, want journal entry 1", live)
	}
	tick := rd.next()
	if tick.Type != "hb" || tick.Tick != 11 || tick.Records != 2 {
		t.Fatalf("live heartbeat = %+v, want tick 11 records 2", tick)
	}
}

// TestReplicationResumeCursor pins the reconnect path: ?from=<durable
// count> must skip the already-held backlog entirely, and cursors
// outside the journal must be rejected, not silently clamped.
func TestReplicationResumeCursor(t *testing.T) {
	d := newTestDaemon(t, testSpec())
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()

	d.StepN(5)
	for i := 0; i < 2; i++ {
		if _, err := d.ScaleDemand(-1, 1.05); err != nil {
			t.Fatal(err)
		}
	}

	rd := openReplicate(t, ts.URL, 2)
	defer rd.close()
	if rec := rd.next(); rec.Type != "spec" {
		t.Fatalf("resumed stream starts with %+v, want spec", rec)
	}
	if rec := rd.next(); rec.Type != "hb" || rec.Records != 2 {
		t.Fatalf("resumed stream record = %+v, want heartbeat with records 2 (no re-sent backlog)", rec)
	}

	for _, q := range []string{"from=3", "from=-1", "from=abc"} {
		resp, err := http.Get(ts.URL + "/v1/replicate?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/replicate?%s = %s, want 400", q, resp.Status)
		}
	}
}

// startFollower runs a fast-retry follower against base and returns it
// plus a channel carrying Run's result.
func startFollower(t *testing.T, base, walPath string, promoteAfter time.Duration) (*Follower, chan error, context.CancelFunc) {
	t.Helper()
	f, err := NewFollower(FollowerOptions{
		Primary:      base,
		WALPath:      walPath,
		PromoteAfter: promoteAfter,
		Backoff:      5 * time.Millisecond,
		BackoffMax:   25 * time.Millisecond,
		IdleTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	stopped := make(chan struct{})
	go func() {
		done <- f.Run(ctx)
		close(stopped)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-stopped:
		case <-time.After(10 * time.Second):
			t.Error("follower Run never returned after cancel")
		}
		f.Close()
	})
	return f, done, cancel
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFollowerPromoteByteIdentical is the core claim in miniature: a
// follower that replicated a primary's run over HTTP — through its own
// durable WAL — promotes to a daemon whose remaining execution is
// byte-identical to the primary's, mutations included.
func TestFollowerPromoteByteIdentical(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	d1, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	wal, err := CreateWAL(filepath.Join(dir, "primary.wal"), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	d1.AttachWAL(wal)
	ts := httptest.NewServer(NewHandler(d1))
	defer ts.Close()

	f, _, _ := startFollower(t, ts.URL, filepath.Join(dir, "standby.wal"), 0)

	d1.StepN(30)
	if _, err := d1.ScaleDemand(-1, 1.1); err != nil {
		t.Fatal(err)
	}
	d1.StepN(40)
	if _, err := d1.ScaleDemand(3, 0.95); err != nil {
		t.Fatal(err)
	}
	d1.StepN(10)

	waitFor(t, "follower catch-up", func() bool {
		return f.Records() == 2 && f.ResumeTick() == d1.NextTick()
	})

	d2, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NextTick() != d1.NextTick() {
		t.Fatalf("promoted at tick %d, primary at %d", d2.NextTick(), d1.NextTick())
	}

	// Both daemons finish the run independently; every byte must agree.
	d1.StepN(spec.Ticks)
	d2.StepN(spec.Ticks)
	s1, err := json.Marshal(d1.State())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := json.Marshal(d2.State())
	if err != nil {
		t.Fatal(err)
	}
	if string(s1) != string(s2) {
		t.Fatalf("promoted follower diverged from primary:\nprimary:  %s\npromoted: %s", s1, s2)
	}
	if !reflect.DeepEqual(d1.Snapshot().Journal, d2.Snapshot().Journal) {
		t.Fatal("promoted follower's journal differs from the primary's")
	}

	// The follower's WAL must hold the identical durable history.
	f.Close()
	w2, st, err := OpenWAL(filepath.Join(dir, "standby.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if !reflect.DeepEqual(st.Mutations, d1.Snapshot().Journal) || !reflect.DeepEqual(st.Spec, spec) {
		t.Fatal("standby WAL content differs from the primary's durable history")
	}
}

// TestFollowerAutoPromoteAfterHeartbeatLoss pins the automatic
// failover trigger: once the primary goes silent past PromoteAfter,
// the follower promotes itself at its last proven boundary.
func TestFollowerAutoPromoteAfterHeartbeatLoss(t *testing.T) {
	d := newTestDaemon(t, testSpec())
	ts := httptest.NewServer(NewHandler(d))
	closed := false
	defer func() {
		if !closed {
			ts.Close()
		}
	}()

	f, done, _ := startFollower(t, ts.URL, "", 150*time.Millisecond)
	d.StepN(5)
	waitFor(t, "heartbeat adoption", func() bool { return f.ResumeTick() == 5 })

	// The primary vanishes: every connection dies, nothing answers.
	ts.CloseClientConnections()
	ts.Close()
	closed = true

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after heartbeat loss: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never auto-promoted after heartbeat loss")
	}
	d2 := f.Promoted()
	if d2 == nil {
		t.Fatal("Run returned without a promoted daemon")
	}
	defer d2.Close()
	if d2.NextTick() != 5 {
		t.Fatalf("auto-promoted at tick %d, want the proven boundary 5", d2.NextTick())
	}
}

// TestMigrationInProcess runs the full live-migration cutover against
// two in-process servers and requires the moved run to reproduce an
// unmoved replay byte for byte.
func TestMigrationInProcess(t *testing.T) {
	spec := testSpec()
	src, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ts1 := httptest.NewServer(NewHandler(src))
	defer ts1.Close()

	f, _, _ := startFollower(t, ts1.URL, "", 0)
	ts2 := httptest.NewServer(NewFollowerHandler(f, nil))
	defer ts2.Close()

	src.StepN(25)
	if _, err := src.ScaleDemand(-1, 1.05); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	rep, err := RunMigration(ctx, MigrationOptions{
		Source: ts1.URL, Target: ts2.URL,
		Poll: 2 * time.Millisecond, Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HandoffTick != 25 || rep.HandoffRecords != 1 || rep.PromotedTick != 25 {
		t.Fatalf("cutover report = %+v, want handoff at tick 25 with 1 record", rep)
	}

	// The frozen source must refuse new history.
	if !src.Frozen() {
		t.Fatal("source not frozen after handoff")
	}
	if _, err := src.ScaleDemand(-1, 1.0); err == nil {
		t.Fatal("frozen source accepted a mutation")
	}
	before := src.NextTick()
	src.StepN(3)
	if src.NextTick() != before {
		t.Fatal("frozen source kept ticking")
	}

	// The moved run finishes and matches an uninterrupted replay.
	d2 := f.Promoted()
	if d2 == nil {
		t.Fatal("target not promoted")
	}
	defer d2.Close()
	if _, err := d2.ScaleDemand(2, 1.2); err != nil {
		t.Fatalf("promoted target refused a mutation: %v", err)
	}
	d2.StepN(spec.Ticks)
	oracle, err := Replay(d2.Snapshot(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	moved, err := json.Marshal(d2.State())
	if err != nil {
		t.Fatal(err)
	}
	unmoved, err := json.Marshal(oracle.State())
	if err != nil {
		t.Fatal(err)
	}
	if string(moved) != string(unmoved) {
		t.Fatalf("migrated run diverged from unmoved replay:\nmoved:   %s\nunmoved: %s", moved, unmoved)
	}
}

// TestDrainOrderingUnblocksStreams is the graceful-shutdown regression:
// with a replication stream AND an event stream held open by clients,
// Daemon.Close followed by http.Server.Shutdown must complete promptly
// — closing the hub and replication feed is what unblocks the
// streaming handlers Shutdown waits on.
func TestDrainOrderingUnblocksStreams(t *testing.T) {
	d := newTestDaemon(t, testSpec())
	d.StepN(5) // some history so the event stream has bytes to send
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewHandler(d)}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	rd := openReplicate(t, base, 0)
	defer rd.close()
	if rec := rd.next(); rec.Type != "spec" {
		t.Fatalf("replication stream opener = %+v", rec)
	}
	evResp, err := http.Get(base + "/v1/events?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	buf := make([]byte, 1)
	if _, err := evResp.Body.Read(buf); err != nil {
		t.Fatalf("event stream never delivered: %v", err)
	}

	// willowd's drain order: daemon first (kills the streams), then the
	// HTTP server. Shutdown must not wait out its context.
	d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with open streams after Daemon.Close: %v", err)
	}
}

// TestEventsFromResume pins the reconnect-resume surface: ?from=T
// replays the retained history from tick T before going live, and a
// malformed cursor is rejected.
func TestEventsFromResume(t *testing.T) {
	d := newTestDaemon(t, testSpec())
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()

	d.StepN(10)
	history, sub := d.SubscribeEvents(4, 1)
	d.Hub().Unsubscribe(sub)
	if len(history) == 0 {
		t.Fatal("no retained events after 10 ticks")
	}

	resp, err := http.Get(ts.URL + "/v1/events?from=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/events?from=4: %s", resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	for i, want := range history {
		var ev telemetry.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("replayed event %d: %v", i, err)
		}
		if ev.Tick != want.Tick || ev.Kind != want.Kind {
			t.Fatalf("replayed event %d = (%s, tick %d), want (%s, tick %d)", i, ev.Kind, ev.Tick, want.Kind, want.Tick)
		}
		if ev.Tick < 4 {
			t.Fatalf("replayed event %d at tick %d, before the from=4 cursor", i, ev.Tick)
		}
	}

	badResp, err := http.Get(ts.URL + "/v1/events?from=nope")
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /v1/events?from=nope = %s, want 400", badResp.Status)
	}
}

// TestEventRingTail pins the retention window semantics the resume
// surface is built on: oldest retained onward, filtered by tick.
func TestEventRingTail(t *testing.T) {
	r := eventRing{buf: make([]telemetry.Event, 4)}
	for i := 0; i < 10; i++ {
		r.add(telemetry.Event{Tick: i})
	}
	ticks := func(evs []telemetry.Event) []int {
		out := []int{}
		for _, e := range evs {
			out = append(out, e.Tick)
		}
		return out
	}
	if got := ticks(r.tail(0)); !reflect.DeepEqual(got, []int{6, 7, 8, 9}) {
		t.Fatalf("tail(0) = %v, want the 4 newest", got)
	}
	if got := ticks(r.tail(8)); !reflect.DeepEqual(got, []int{8, 9}) {
		t.Fatalf("tail(8) = %v", got)
	}
	if got := r.tail(100); len(got) != 0 {
		t.Fatalf("tail(100) = %v, want empty", got)
	}
	empty := eventRing{buf: make([]telemetry.Event, 4)}
	if got := empty.tail(0); len(got) != 0 {
		t.Fatalf("tail of empty ring = %v", got)
	}
}

// TestRetryAfterParsing is the tolerance table for willow-load's
// Retry-After handling: anything that is not a non-negative integer
// second count means "no hint".
func TestRetryAfterParsing(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{" 5 ", 5 * time.Second},
		{"0", 0},
		{"-2", 0},
		{"1.5", 0},
		{"garbage", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.header); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// TestRetryAfterShedContract pins the server side of the same
// contract: every shed response carries a Retry-After that parses as a
// positive integer number of seconds.
func TestRetryAfterShedContract(t *testing.T) {
	d := newTestDaemon(t, testSpec())
	h := NewHandlerOpts(d, HandlerOptions{MaxInflight: 1, MaxQueue: 1, RetryAfter: 2 * time.Second})
	srv := httptest.NewServer(h)
	defer srv.Close()

	d.mu.Lock() // admitted mutations block: everything past the queue sheds
	unlocked := false
	defer func() {
		if !unlocked {
			d.mu.Unlock()
		}
	}()

	const total = 6
	type outcome struct {
		code  int
		retry string
	}
	results := make(chan outcome, total)
	for i := 0; i < total; i++ {
		go func() {
			resp, err := http.Post(srv.URL+"/v1/demand", "application/json",
				strings.NewReader(`{"server": -1, "factor": 1.0}`))
			if err != nil {
				results <- outcome{code: -1}
				return
			}
			resp.Body.Close()
			results <- outcome{code: resp.StatusCode, retry: resp.Header.Get("Retry-After")}
		}()
	}
	deadline := time.After(10 * time.Second)
	for shed := 0; shed < total-2; shed++ {
		select {
		case o := <-results:
			if o.code != http.StatusTooManyRequests {
				t.Fatalf("shed response code = %d, want 429", o.code)
			}
			secs, err := strconv.Atoi(o.retry)
			if err != nil || secs <= 0 {
				t.Fatalf("shed Retry-After = %q, want a positive integer of seconds", o.retry)
			}
		case <-deadline:
			t.Fatal("shed responses never arrived while the gate was saturated")
		}
	}
	d.mu.Unlock()
	unlocked = true
	for i := 0; i < 2; i++ {
		select {
		case o := <-results:
			if o.code != http.StatusOK {
				t.Fatalf("admitted response code = %d, want 200", o.code)
			}
		case <-deadline:
			t.Fatal("admitted requests never finished after the lock released")
		}
	}
}
