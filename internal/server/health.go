package server

// The /healthz readiness view. PR 8 left /healthz as a bare liveness
// ping; with hot standbys in the picture an operator (or a failover
// harness, or a load balancer) needs to see at a glance whether a
// daemon can actually do its job: is the WAL healthy (mutations
// accepted), is the admission gate saturated (mutations shed), is a
// follower caught up enough to promote, has a handoff frozen the run.
// One JSON document answers all of it for both roles.

import "time"

// GateHealth is the admission gate's saturation picture.
type GateHealth struct {
	// Inflight mutations hold slots (of InflightLimit); Queued wait
	// behind them (of QueueLimit).
	Inflight      int `json:"inflight"`
	InflightLimit int `json:"inflight_limit"`
	Queued        int `json:"queued"`
	QueueLimit    int `json:"queue_limit"`
	// Saturated means the next mutation would be shed with 429.
	Saturated bool `json:"saturated"`
}

// ReplicationHealth is a follower's view of its replication link.
type ReplicationHealth struct {
	// Primary is the URL being followed.
	Primary string `json:"primary"`
	// Connected reports a live /v1/replicate stream right now.
	Connected bool `json:"connected"`
	// Records is the durable (fsync'd) journal length; PrimaryRecords
	// the primary's last-heard journal length; LagRecords the gap.
	Records        int `json:"records"`
	PrimaryRecords int `json:"primary_records"`
	LagRecords     int `json:"lag_records"`
	// ResumeTick is the boundary a promotion would start from;
	// PrimaryTick the primary's last-heard boundary; LagTicks the gap.
	ResumeTick  int `json:"resume_tick"`
	PrimaryTick int `json:"primary_tick"`
	LagTicks    int `json:"lag_ticks"`
	// CaughtUp means every record the primary has announced is durable
	// here and the resume tick has reached the primary's boundary.
	CaughtUp bool `json:"caught_up"`
	// PrimaryFrozen/PrimaryDone mirror the primary's last heartbeat.
	PrimaryFrozen bool `json:"primary_frozen,omitempty"`
	PrimaryDone   bool `json:"primary_done,omitempty"`
	// LastContactSeconds is the wall-clock age of the last record heard
	// (-1 before any contact); Reconnects counts stream re-establishes.
	LastContactSeconds float64 `json:"last_contact_seconds"`
	Reconnects         int64   `json:"reconnects"`
}

// HealthView is the GET /healthz payload for both roles. Tick is kept
// top-level for compatibility with PR 8 tooling (willow-crash polls
// it); for a follower it is the tick a promotion would resume at.
type HealthView struct {
	OK   bool   `json:"ok"`
	Role string `json:"role"` // "primary" or "follower"
	Tick int    `json:"tick"`
	// Ticks/Done describe the run (0/false on a follower that has not
	// yet heard a spec).
	Ticks int  `json:"ticks"`
	Done  bool `json:"done"`
	// Frozen marks a handed-off primary (tick loop stopped, journal
	// final); ResumedTick the boundary this incarnation started from
	// (nonzero after recovery or promotion).
	Frozen      bool `json:"frozen,omitempty"`
	ResumedTick int  `json:"resumed_tick,omitempty"`
	// WalOK is false once the sticky WAL failure has disabled
	// mutations; WalError carries the failure text.
	WalOK    bool   `json:"wal_ok"`
	WalError string `json:"wal_error,omitempty"`
	// ReplicationSubscribers counts connected followers (primary only).
	ReplicationSubscribers int `json:"replication_subscribers,omitempty"`

	Gate        *GateHealth        `json:"gate,omitempty"`
	Replication *ReplicationHealth `json:"replication,omitempty"`
}

// health builds the gate's saturation view from its live counters.
func (g *gate) health() GateHealth {
	inflight := len(g.slots)
	queued := int(g.queued.Load())
	return GateHealth{
		Inflight:      inflight,
		InflightLimit: cap(g.slots),
		Queued:        queued,
		QueueLimit:    int(g.maxQueue),
		Saturated:     inflight >= cap(g.slots) && queued >= int(g.maxQueue),
	}
}

// Health reports the primary-side readiness view. The gate belongs to
// the HTTP layer, so the handler passes its view in.
func (d *Daemon) Health(gate *GateHealth) HealthView {
	d.mu.Lock()
	view := HealthView{
		OK:          d.walErr == nil,
		Role:        "primary",
		Tick:        d.m.NextTick(),
		Ticks:       d.m.Config().Ticks,
		Done:        d.m.Done(),
		Frozen:      d.frozen,
		ResumedTick: d.resumedAt,
		WalOK:       d.walErr == nil,
		WalError:    errText(d.walErr),
	}
	d.mu.Unlock()
	view.ReplicationSubscribers = d.rep.count()
	view.Gate = gate
	return view
}

// Health reports the follower-side readiness view: ok means the spec
// has been learned and the follower is caught up to everything the
// primary has announced.
func (f *Follower) Health() HealthView {
	f.mu.Lock()
	defer f.mu.Unlock()
	rep := &ReplicationHealth{
		Primary:            f.opts.Primary,
		Connected:          f.connected,
		Records:            len(f.muts),
		PrimaryRecords:     f.primaryRecords,
		LagRecords:         f.primaryRecords - len(f.muts),
		ResumeTick:         f.resumeTick,
		PrimaryTick:        f.primaryTick,
		LagTicks:           f.primaryTick - f.resumeTick,
		PrimaryFrozen:      f.primaryFrozen,
		PrimaryDone:        f.primaryDone,
		LastContactSeconds: -1,
		Reconnects:         f.reconnects,
	}
	if !f.lastContact.IsZero() {
		rep.LastContactSeconds = time.Since(f.lastContact).Seconds()
	}
	rep.CaughtUp = f.haveSpec && rep.LagRecords <= 0 && rep.LagTicks <= 0
	role := "follower"
	if f.promoted != nil {
		// Promotion succeeded but the serving layer has not swapped to
		// the full handler yet (a microseconds-wide window).
		role = "promoting"
	}
	return HealthView{
		OK:          rep.CaughtUp,
		Role:        role,
		Tick:        f.resumeTick,
		Ticks:       f.spec.Ticks,
		Done:        f.primaryDone,
		WalOK:       true,
		Replication: rep,
	}
}
