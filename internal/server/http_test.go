package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"willow/internal/telemetry"
)

func newTestDaemon(t *testing.T, spec Spec) *Daemon {
	t.Helper()
	d, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func getJSON(t *testing.T, url string, dst any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestConcurrentAPIHammer drives the tick loop while 32 goroutines
// hammer /v1/state and /v1/demand. Run it under -race: the point is
// that every handler serializes on the tick lock, so concurrent reads
// always see consistent tick-boundary state and concurrent mutations
// always land on boundaries.
func TestConcurrentAPIHammer(t *testing.T) {
	spec := testSpec()
	spec.Ticks = 100_000 // effectively unbounded for the test's duration
	d := newTestDaemon(t, spec)
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx, 200*time.Microsecond) }()

	const goroutines = 32
	const perGoroutine = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perGoroutine)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				if g%2 == 0 {
					resp, err := http.Get(ts.URL + "/v1/state")
					if err != nil {
						errs <- err
						continue
					}
					var st State
					err = json.NewDecoder(resp.Body).Decode(&st)
					resp.Body.Close()
					if err != nil {
						errs <- err
						continue
					}
					if resp.StatusCode != http.StatusOK || len(st.ServerStates) != 6 {
						errs <- fmt.Errorf("state: status %d, %d servers", resp.StatusCode, len(st.ServerStates))
					}
				} else {
					body := fmt.Sprintf(`{"server": %d, "factor": %.3f}`, i%6, 1.0+0.001*float64(g%5))
					resp, err := http.Post(ts.URL+"/v1/demand", "application/json", strings.NewReader(body))
					if err != nil {
						errs <- err
						continue
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("demand: status %d", resp.StatusCode)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("driver returned %v", err)
	}

	// Every accepted demand POST is journaled, and the daemon still
	// rests at a clean boundary.
	if got, want := len(d.Snapshot().Journal), goroutines/2*perGoroutine; got != want {
		t.Fatalf("journal has %d entries, want %d", got, want)
	}
}

// TestGracefulShutdownSnapshotRoundTrip is the shutdown-path pin: stop
// the driver mid-run (the SIGTERM path), snapshot over the API, and
// assert the restored daemon reproduces the exact next-tick state.
func TestGracefulShutdownSnapshotRoundTrip(t *testing.T) {
	spec := testSpec()
	d := newTestDaemon(t, spec)
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx, 100*time.Microsecond) }()

	// Mutate while live so the snapshot has a journal to replay.
	if resp, body := postJSON(t, ts.URL+"/v1/demand", `{"server": -1, "factor": 1.2}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("demand: %s: %s", resp.Status, body)
	}
	for d.NextTick() < 20 {
		time.Sleep(time.Millisecond)
	}
	cancel() // graceful stop: driver exits at a tick boundary
	if err := <-done; err != context.Canceled {
		t.Fatalf("driver returned %v", err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/snapshot", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %s", resp.Status)
	}
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Tick < 20 || len(snap.Journal) == 0 {
		t.Fatalf("snapshot at tick %d with %d journal entries", snap.Tick, len(snap.Journal))
	}

	r, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	same := func(label string) {
		t.Helper()
		a, _ := json.Marshal(d.State())
		b, _ := json.Marshal(r.State())
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: restored state differs", label)
		}
	}
	same("at shutdown boundary")
	d.StepN(1)
	r.StepN(1)
	same("next tick after restore")
}

func TestEventsStreaming(t *testing.T) {
	d := newTestDaemon(t, testSpec())
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	go d.Run(context.Background(), 0)

	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 10; i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d events: %v", i, sc.Err())
		}
		ev, err := telemetry.Decode(sc.Bytes())
		if err != nil {
			t.Fatalf("line %d undecodable: %v", i, err)
		}
		if ev.Kind == 0 {
			t.Fatalf("line %d has no kind", i)
		}
	}
}

func TestEventsStreamingSSEAndFilters(t *testing.T) {
	d := newTestDaemon(t, testSpec())
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/events?kinds=budget", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	go d.Run(context.Background(), 0)

	sc := bufio.NewScanner(resp.Body)
	seen := 0
	for sc.Scan() && seen < 5 {
		line := sc.Text()
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			t.Fatalf("SSE line %q lacks data prefix", line)
		}
		ev, err := telemetry.Decode([]byte(strings.TrimPrefix(line, "data: ")))
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != telemetry.KindBudgetChange {
			t.Fatalf("kind filter leaked a %v event", ev.Kind)
		}
		seen++
	}
	if seen < 5 {
		t.Fatalf("saw only %d filtered events: %v", seen, sc.Err())
	}

	// Hub shutdown terminates the stream rather than holding the
	// connection (and HTTP server drain) open forever.
	d.Close()
	deadline := time.After(5 * time.Second)
	drained := make(chan struct{})
	go func() {
		for sc.Scan() {
		}
		close(drained)
	}()
	select {
	case <-drained:
	case <-deadline:
		t.Fatalf("stream still open after hub shutdown")
	}
}

func TestHandlerErrors(t *testing.T) {
	d := newTestDaemon(t, testSpec())
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()

	cases := []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/v1/state", "", http.StatusMethodNotAllowed},
		{"GET", "/v1/demand", "", http.StatusMethodNotAllowed},
		{"POST", "/v1/demand", `{"server": 99, "factor": 1.0}`, http.StatusUnprocessableEntity},
		{"POST", "/v1/demand", `not json`, http.StatusBadRequest},
		{"POST", "/v1/demand", `{"unknown_field": 1}`, http.StatusBadRequest},
		{"POST", "/v1/chaos", `{"spec": "no-such-preset"}`, http.StatusUnprocessableEntity},
		{"GET", "/v1/events?kinds=bogus", "", http.StatusBadRequest},
		{"GET", "/v1/events?buffer=-3", "", http.StatusBadRequest},
		{"GET", "/v1/nope", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	d := newTestDaemon(t, testSpec())
	d.StepN(60)
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()

	var st StatsView
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Tick != 60 || st.Ticks != 200 || st.Done {
		t.Fatalf("stats tick %d/%d done=%v, want 60/200 running", st.Tick, st.Ticks, st.Done)
	}
	if st.TotalEnergy <= 0 || st.MaxTemp <= 0 {
		t.Fatalf("stats missing accumulated measurements: %+v", st)
	}
	if st.EventsPublished == 0 {
		t.Fatalf("no events published after 60 ticks")
	}
}

// TestRunLoad exercises the load generator library end to end against
// a live daemon, including the events subscriber.
func TestRunLoad(t *testing.T) {
	spec := testSpec()
	spec.Ticks = 100_000
	d := newTestDaemon(t, spec)
	ts := httptest.NewServer(NewHandler(d))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx, 200*time.Microsecond)

	report, err := RunLoad(ctx, LoadOptions{
		BaseURL:  ts.URL,
		Clients:  4,
		Requests: 200,
		Seed:     7,
		Stream:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests != 200 {
		t.Fatalf("report counts %d requests, want 200", report.Requests)
	}
	if report.Errors != 0 {
		t.Fatalf("%d requests failed", report.Errors)
	}
	if report.Events == 0 {
		t.Fatalf("events subscriber saw nothing while the daemon ticked")
	}
	if report.Latency.Total() != float64(report.Requests) {
		t.Fatalf("latency histogram holds %.0f samples for %d requests", report.Latency.Total(), report.Requests)
	}
	if tb := report.Table("load"); !strings.Contains(tb.String(), "requests") {
		t.Fatalf("report table missing request row")
	}
}
