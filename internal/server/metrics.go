package server

// Daemon observability: the /metrics exposition and the /v1/efficiency
// scoreboard. Two metric families live here and are kept strictly
// apart, mirroring internal/obs's contract:
//
//   - sim-time series (joules, ticks, drops) are deterministic
//     functions of the machine's tick state. They are read under the
//     tick lock into a plain snapshot struct and rendered at scrape
//     time — no long-lived metric objects, no wall clock.
//   - wall-clock series (tick-phase latency, hub publish latency,
//     snapshot write time) come from real timers around the live
//     daemon's hot paths. They never touch simulation state or the
//     telemetry event stream, so golden outputs cannot see them.

import (
	"fmt"
	"io"
	"time"

	"willow/internal/core"
	"willow/internal/obs"
)

// EfficiencyWindow is how many recent ticks the sliding-window
// efficiency figures cover.
const EfficiencyWindow = 120

// daemonMetrics is the per-daemon observability state: the wall-clock
// registry plus the sim-time efficiency ring.
type daemonMetrics struct {
	reg *obs.Registry

	// Wall-clock histograms (live-daemon only; see package comment).
	phaseObserve  *obs.Histogram
	phaseAllocate *obs.Histogram
	phaseConsume  *obs.Histogram
	publish       *obs.Histogram
	snapshot      *obs.Histogram
	walAppend     *obs.Histogram

	// walErrors counts failed WAL appends — the sticky condition that
	// disables mutations — so a diverged daemon is scrapeable, not just
	// greppable.
	walErrors *obs.Counter

	// ring holds cumulative fleet energy totals at each recent tick
	// boundary, newest last; guarded by the daemon's tick lock. samples
	// counts lifetime pushes so the window start is known before the
	// ring fills.
	ring    [EfficiencyWindow + 1]energySample
	samples int
}

// energySample is the cumulative fleet energy at one tick boundary.
type energySample struct {
	tick   int
	totals core.EnergyTotals
}

func newDaemonMetrics() *daemonMetrics {
	reg := obs.NewRegistry()
	phase := func(name string) *obs.Histogram {
		return reg.Histogram("willow_tick_phase_seconds",
			"wall-clock time per controller phase per tick",
			obs.LatencyBuckets, obs.Label{Name: "phase", Value: name})
	}
	return &daemonMetrics{
		reg:           reg,
		phaseObserve:  phase("observe"),
		phaseAllocate: phase("allocate"),
		phaseConsume:  phase("consume"),
		publish: reg.Histogram("willow_hub_publish_seconds",
			"wall-clock time per hub fan-out publish", obs.LatencyBuckets),
		snapshot: reg.Histogram("willow_snapshot_write_seconds",
			"wall-clock time to serialize and write a snapshot", obs.LatencyBuckets),
		walAppend: reg.Histogram("willow_wal_append_seconds",
			"wall-clock time to frame, append, and fsync one WAL record", obs.LatencyBuckets),
		walErrors: reg.Counter("willow_wal_errors_total",
			"failed WAL appends (mutations are refused once this is nonzero)"),
	}
}

// ObservePhase implements core.PhaseObserver, routing controller phase
// timings into the wall-clock histograms. Called under the tick lock.
func (m *daemonMetrics) ObservePhase(phase string, seconds float64) {
	switch phase {
	case "observe":
		m.phaseObserve.Observe(seconds)
	case "allocate":
		m.phaseAllocate.Observe(seconds)
	case "consume":
		m.phaseConsume.Observe(seconds)
	}
}

// push records the cumulative fleet totals at a tick boundary. Called
// with the daemon's tick lock held, after each Step.
func (m *daemonMetrics) push(tick int, totals core.EnergyTotals) {
	m.ring[m.samples%len(m.ring)] = energySample{tick: tick, totals: totals}
	m.samples++
}

// window returns the oldest retained sample and the newest one, with
// ok=false before the first push. The window spans up to
// EfficiencyWindow ticks.
func (m *daemonMetrics) windowSpan() (oldest, newest energySample, ok bool) {
	if m.samples == 0 {
		return energySample{}, energySample{}, false
	}
	newest = m.ring[(m.samples-1)%len(m.ring)]
	first := 0
	if m.samples > len(m.ring) {
		first = m.samples - len(m.ring)
	}
	oldest = m.ring[first%len(m.ring)]
	return oldest, newest, true
}

// EnergyFigures is one set of joule totals plus the derived efficiency
// ratio, as served in /v1/efficiency.
type EnergyFigures struct {
	Joules       float64 `json:"joules"`
	WorkJoules   float64 `json:"work_joules"`
	ShedJoules   float64 `json:"shed_joules"`
	HeatJoules   float64 `json:"heat_joules"`
	WorkPerJoule float64 `json:"work_per_joule"`
}

func figures(t core.EnergyTotals) EnergyFigures {
	wpj := t.WorkPerJoule()
	return EnergyFigures{
		Joules:       t.Joules,
		WorkJoules:   t.WorkJoules,
		ShedJoules:   t.ShedJoules,
		HeatJoules:   t.HeatJoules,
		WorkPerJoule: wpj,
	}
}

// WindowFigures are the sliding-window efficiency figures: the joule
// deltas over the last WindowTicks ticks.
type WindowFigures struct {
	WindowTicks int `json:"window_ticks"`
	EnergyFigures
}

// RackEfficiency is one rack-level PMU subtree's cumulative scoreboard
// row.
type RackEfficiency struct {
	Node     int `json:"node"`
	ServerLo int `json:"server_lo"`
	ServerHi int `json:"server_hi"`
	EnergyFigures
}

// ClassEfficiency is one application class's served-work row.
type ClassEfficiency struct {
	Class        string  `json:"class"`
	ServedJoules float64 `json:"served_joules"`
}

// EfficiencyView is the /v1/efficiency payload: the energy scoreboard
// at the current tick boundary.
type EfficiencyView struct {
	Tick        int     `json:"tick"`
	Ticks       int     `json:"ticks"`
	TickSeconds float64 `json:"tick_seconds"`

	Cumulative EnergyFigures `json:"cumulative"`
	Window     WindowFigures `json:"window"`

	Racks   []RackEfficiency  `json:"racks"`
	Classes []ClassEfficiency `json:"classes"`
}

// Efficiency builds the energy scoreboard at the current tick boundary.
func (d *Daemon) Efficiency() EfficiencyView {
	d.mu.Lock()
	ctrl := d.m.Controller()
	view := EfficiencyView{
		Tick:        d.m.NextTick(),
		Ticks:       d.m.Config().Ticks,
		TickSeconds: ctrl.Cfg.TickSeconds,
		Cumulative:  figures(ctrl.EnergyTotals()),
	}
	racks := ctrl.RackEnergy()
	classes := ctrl.ClassEnergy()
	var oldest, newest energySample
	var haveWindow bool
	if d.metrics != nil {
		oldest, newest, haveWindow = d.metrics.windowSpan()
	}
	d.mu.Unlock()

	if haveWindow {
		delta := newest.totals.Sub(oldest.totals)
		view.Window = WindowFigures{
			WindowTicks:   newest.tick - oldest.tick,
			EnergyFigures: figures(delta),
		}
	}
	view.Racks = make([]RackEfficiency, len(racks))
	for i, r := range racks {
		view.Racks[i] = RackEfficiency{
			Node: r.Node, ServerLo: r.Lo, ServerHi: r.Hi,
			EnergyFigures: figures(r.Totals),
		}
	}
	view.Classes = make([]ClassEfficiency, len(classes))
	for i, c := range classes {
		view.Classes[i] = ClassEfficiency{Class: c.Class, ServedJoules: c.ServedJoules}
	}
	return view
}

// metricsSnapshot is the sim-time state copied under the tick lock for
// one /metrics scrape, so the exposition never renders mid-tick state
// and the lock is held only for the copy, not the write.
type metricsSnapshot struct {
	tick, ticks int
	done        bool
	tickSeconds float64
	fleet       core.EnergyTotals
	racks       []core.RackEnergy
	classes     []core.ClassEnergy
	journalLen  int
}

// WriteMetrics writes the full Prometheus exposition: wall-clock
// families from the registry, then sim-time series rendered from one
// consistent state snapshot, then hub backpressure gauges.
func (d *Daemon) WriteMetrics(w io.Writer) error {
	d.mu.Lock()
	ctrl := d.m.Controller()
	snap := metricsSnapshot{
		tick:        d.m.NextTick(),
		ticks:       d.m.Config().Ticks,
		done:        d.m.Done(),
		tickSeconds: ctrl.Cfg.TickSeconds,
		fleet:       ctrl.EnergyTotals(),
		racks:       ctrl.RackEnergy(),
		classes:     ctrl.ClassEnergy(),
		journalLen:  len(d.journal),
	}
	started := d.started
	d.mu.Unlock()

	if d.metrics != nil {
		if err := d.metrics.reg.WriteText(w); err != nil {
			return err
		}
	}

	e := obs.NewEncoder(w)

	e.Family("willow_uptime_seconds", "gauge", "wall-clock seconds since daemon start")
	e.Sample("willow_uptime_seconds", nil, time.Since(started).Seconds())

	e.Family("willow_tick", "gauge", "current tick boundary")
	e.Sample("willow_tick", nil, float64(snap.tick))
	e.Family("willow_ticks_configured", "gauge", "total ticks in the run")
	e.Sample("willow_ticks_configured", nil, float64(snap.ticks))
	e.Family("willow_run_done", "gauge", "1 when every configured tick has run")
	e.Sample("willow_run_done", nil, b2f(snap.done))
	e.Family("willow_tick_sim_seconds", "gauge", "simulated seconds one tick models")
	e.Sample("willow_tick_sim_seconds", nil, snap.tickSeconds)
	e.Family("willow_journal_entries", "gauge", "journaled live mutations")
	e.Sample("willow_journal_entries", nil, float64(snap.journalLen))

	e.Family("willow_energy_joules_total", "counter", "cumulative fleet energy consumed")
	e.Sample("willow_energy_joules_total", nil, snap.fleet.Joules)
	e.Family("willow_work_joules_total", "counter", "cumulative useful work delivered")
	e.Sample("willow_work_joules_total", nil, snap.fleet.WorkJoules)
	e.Family("willow_shed_joules_total", "counter", "cumulative demand shed")
	e.Sample("willow_shed_joules_total", nil, snap.fleet.ShedJoules)
	e.Family("willow_heat_joules_total", "counter", "cumulative heat dissipated to ambient")
	e.Sample("willow_heat_joules_total", nil, snap.fleet.HeatJoules)
	e.Family("willow_work_per_joule", "gauge", "cumulative useful work per joule consumed")
	e.Sample("willow_work_per_joule", nil, snap.fleet.WorkPerJoule())

	e.Family("willow_rack_joules_total", "counter", "cumulative energy per rack-level PMU subtree")
	for _, r := range snap.racks {
		e.Sample("willow_rack_joules_total",
			[]obs.Label{{Name: "rack", Value: fmt.Sprint(r.Node)}}, r.Totals.Joules)
	}
	e.Family("willow_rack_work_joules_total", "counter", "cumulative useful work per rack-level PMU subtree")
	for _, r := range snap.racks {
		e.Sample("willow_rack_work_joules_total",
			[]obs.Label{{Name: "rack", Value: fmt.Sprint(r.Node)}}, r.Totals.WorkJoules)
	}
	e.Family("willow_class_served_joules_total", "counter", "cumulative served work per application class")
	for _, c := range snap.classes {
		e.Sample("willow_class_served_joules_total",
			[]obs.Label{{Name: "class", Value: c.Class}}, c.ServedJoules)
	}

	published, dropped, subscribers := d.hub.Stats()
	e.Family("willow_hub_published_total", "counter", "events offered to the fan-out hub")
	e.Sample("willow_hub_published_total", nil, float64(published))
	e.Family("willow_hub_dropped_total", "counter", "events dropped across all subscribers")
	e.Sample("willow_hub_dropped_total", nil, float64(dropped))
	e.Family("willow_hub_subscribers", "gauge", "live event subscribers")
	e.Sample("willow_hub_subscribers", nil, float64(subscribers))

	e.Family("willow_replication_subscribers", "gauge", "connected /v1/replicate followers")
	e.Sample("willow_replication_subscribers", nil, float64(d.rep.count()))

	subs := d.hub.SubscriberStats()
	e.Family("willow_hub_subscriber_queue", "gauge", "buffered events per subscriber")
	for _, s := range subs {
		e.Sample("willow_hub_subscriber_queue", subLabel(s.ID), float64(s.Queued))
	}
	e.Family("willow_hub_subscriber_capacity", "gauge", "buffer capacity per subscriber")
	for _, s := range subs {
		e.Sample("willow_hub_subscriber_capacity", subLabel(s.ID), float64(s.Capacity))
	}
	e.Family("willow_hub_subscriber_dropped_total", "counter", "events dropped per subscriber")
	for _, s := range subs {
		e.Sample("willow_hub_subscriber_dropped_total", subLabel(s.ID), float64(s.Dropped))
	}
	return e.Err()
}

func subLabel(id int64) []obs.Label {
	return []obs.Label{{Name: "subscriber", Value: fmt.Sprint(id)}}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
