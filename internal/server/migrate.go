package server

// Live cluster migration: moving a running willowd between processes
// (or hosts) with zero state divergence, built entirely from the
// replication primitives. The cutover sequence is:
//
//  1. Wait for the target follower to report caught_up — handing off to
//     a cold standby would stall the run for the whole catch-up.
//  2. POST /v1/handoff on the source: the run freezes at a tick
//     boundary (tick T, records R) and further mutations are refused,
//     so the journal is final. The frozen heartbeat carries (T, R) to
//     the follower over the replication stream.
//  3. Wait for the follower to hold all R records durably and reach
//     resume tick T — at that instant it provably owns the complete
//     run.
//  4. POST /v1/promote on the target and verify it resumed at exactly
//     T with R records. Determinism does the rest: the promoted daemon
//     re-executes from T bit-for-bit identically to a run that never
//     moved.
//
// The source keeps serving reads (state, stats, metrics, its share of
// the event stream) while frozen; it is shut down at the operator's
// leisure after the cutover.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// MigrationOptions configures one live migration.
type MigrationOptions struct {
	// Source is the running primary's base URL; Target the follower's.
	Source string
	Target string
	// Client issues the control requests (default http.DefaultClient).
	Client *http.Client
	// Poll is the health-poll interval while waiting for catch-up
	// (default 25 ms); Timeout bounds each wait phase (default 30 s).
	Poll    time.Duration
	Timeout time.Duration
}

// MigrationReport is what a completed cutover did.
type MigrationReport struct {
	// HandoffTick/HandoffRecords are the boundary the source froze at.
	HandoffTick    int `json:"handoff_tick"`
	HandoffRecords int `json:"handoff_records"`
	// PromotedTick is the boundary the target resumed at (equals
	// HandoffTick on success — RunMigration fails otherwise).
	PromotedTick int `json:"promoted_tick"`
	// Elapsed is the wall-clock cutover time, handoff to promotion.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// RunMigration performs the full cutover described in the package
// comment and verifies the boundary accounting at every step.
func RunMigration(ctx context.Context, opts MigrationOptions) (*MigrationReport, error) {
	if opts.Source == "" || opts.Target == "" {
		return nil, fmt.Errorf("server: migration needs source and target URLs")
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.Poll <= 0 {
		opts.Poll = 25 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}

	// Phase 1: the follower must be warm before the run freezes.
	if err := waitHealth(ctx, opts, "catch-up", func(h HealthView) error {
		if h.Replication == nil {
			return fmt.Errorf("target %s is not a follower", opts.Target)
		}
		if !h.Replication.CaughtUp {
			return fmt.Errorf("lagging %d records / %d ticks",
				h.Replication.LagRecords, h.Replication.LagTicks)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 2: freeze the source at a tick boundary.
	start := time.Now()
	var handoff struct {
		Tick    int `json:"tick"`
		Records int `json:"records"`
	}
	if err := postJSONInto(ctx, opts.Client, opts.Source+"/v1/handoff", &handoff); err != nil {
		return nil, fmt.Errorf("server: handoff: %w", err)
	}

	// Phase 3: the follower must hold the complete frozen run.
	if err := waitHealth(ctx, opts, "drain to handoff boundary", func(h HealthView) error {
		if h.Replication == nil {
			return fmt.Errorf("target %s is not a follower", opts.Target)
		}
		if h.Replication.Records < handoff.Records || h.Replication.ResumeTick < handoff.Tick {
			return fmt.Errorf("at tick %d/%d, records %d/%d",
				h.Replication.ResumeTick, handoff.Tick, h.Replication.Records, handoff.Records)
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase 4: promote and verify the boundary moved intact.
	var promoted struct {
		Tick    int `json:"tick"`
		Records int `json:"records"`
	}
	if err := postJSONInto(ctx, opts.Client, opts.Target+"/v1/promote", &promoted); err != nil {
		return nil, fmt.Errorf("server: promote: %w", err)
	}
	if promoted.Tick != handoff.Tick || promoted.Records != handoff.Records {
		return nil, fmt.Errorf("server: cutover mismatch: handed off (tick %d, records %d) but target resumed (tick %d, records %d)",
			handoff.Tick, handoff.Records, promoted.Tick, promoted.Records)
	}
	return &MigrationReport{
		HandoffTick:    handoff.Tick,
		HandoffRecords: handoff.Records,
		PromotedTick:   promoted.Tick,
		Elapsed:        time.Since(start),
	}, nil
}

// waitHealth polls the target's /healthz until check passes, one wait
// phase's timeout expires, or ctx ends. The last check failure is
// folded into the timeout error so the operator sees what never became
// true.
func waitHealth(ctx context.Context, opts MigrationOptions, phase string, check func(HealthView) error) error {
	deadline := time.Now().Add(opts.Timeout)
	var last error
	for {
		var h HealthView
		err := getJSONInto(ctx, opts.Client, opts.Target+"/healthz", &h)
		if err == nil {
			if err = check(h); err == nil {
				return nil
			}
		}
		last = err
		if time.Now().After(deadline) {
			return fmt.Errorf("server: migration %s timed out after %s: %w", phase, opts.Timeout, last)
		}
		t := time.NewTimer(opts.Poll)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

func getJSONInto(ctx context.Context, hc *http.Client, url string, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(hc, req, dst)
}

func postJSONInto(ctx context.Context, hc *http.Client, url string, dst any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(nil))
	if err != nil {
		return err
	}
	return doJSON(hc, req, dst)
}

func doJSON(hc *http.Client, req *http.Request, dst any) error {
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: status %d: %s", req.Method, req.URL, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if dst == nil {
		return nil
	}
	return decodeBody(bytes.NewReader(body), dst)
}
