package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"willow/internal/obs"
)

// TestAdmissionGateShedsUnderSaturation pins the overload contract:
// with the tick lock held (mutations in progress can never finish), at
// most MaxInflight+MaxQueue requests wait and every further arrival is
// shed promptly with 429 + Retry-After — without ever touching the
// daemon. The count is deterministic regardless of arrival order:
// nothing releases while the lock is held, so exactly the overflow
// sheds.
func TestAdmissionGateShedsUnderSaturation(t *testing.T) {
	d := newTestDaemon(t, testSpec())
	h := NewHandlerOpts(d, HandlerOptions{MaxInflight: 1, MaxQueue: 1, RetryAfter: 2 * time.Second})
	srv := httptest.NewServer(h)
	defer srv.Close()

	d.mu.Lock() // hold the tick lock: admitted mutations block here
	unlocked := false
	defer func() {
		if !unlocked {
			d.mu.Unlock()
		}
	}()

	const total = 6 // 1 in flight + 1 queued + 4 shed
	type outcome struct {
		code       int
		retryAfter string
	}
	results := make(chan outcome, total)
	for i := 0; i < total; i++ {
		go func() {
			resp, err := http.Post(srv.URL+"/v1/demand", "application/json",
				strings.NewReader(`{"server": -1, "factor": 1.0}`))
			if err != nil {
				results <- outcome{code: -1}
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			results <- outcome{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
		}()
	}

	// The four shed responses must arrive while the lock is still held —
	// shedding never waits on the daemon.
	deadline := time.After(10 * time.Second)
	for shed := 0; shed < total-2; {
		select {
		case res := <-results:
			if res.code != http.StatusTooManyRequests {
				t.Fatalf("while saturated: got status %d, want 429", res.code)
			}
			if res.retryAfter != "2" {
				t.Fatalf("Retry-After = %q, want \"2\"", res.retryAfter)
			}
			shed++
		case <-deadline:
			t.Fatal("shed responses did not arrive while the gate was saturated")
		}
	}

	// Release the lock: the in-flight and queued mutations drain and
	// succeed — queueing delays, it never rejects.
	d.mu.Unlock()
	unlocked = true
	for done := 0; done < 2; done++ {
		select {
		case res := <-results:
			if res.code != http.StatusOK {
				t.Fatalf("after release: got status %d, want 200", res.code)
			}
		case <-deadline:
			t.Fatal("admitted mutations never completed after the lock was released")
		}
	}

	// The gate is fully recovered: a fresh mutation sails through.
	resp, err := http.Post(srv.URL+"/v1/demand", "application/json",
		strings.NewReader(`{"server": -1, "factor": 1.0}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after drain: got status %d, want 200", resp.StatusCode)
	}

	// The /metrics registry saw all of it (WriteMetrics takes the tick
	// lock, so it is checked after release).
	var metricsText bytes.Buffer
	if err := d.WriteMetrics(&metricsText); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"willow_admission_shed_total 4",
		"willow_admission_admitted_total 3",
		"willow_admission_inflight_limit 1",
	} {
		if !strings.Contains(metricsText.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metricsText.String())
		}
	}
}

// TestAdmissionGateAcquireRelease unit-tests the valve itself: slots
// admit immediately, the queue holds exactly its bound, overflow sheds
// without blocking, release hands a slot to a queued waiter, and a
// waiter whose context ends is shed instead of leaking.
func TestAdmissionGateAcquireRelease(t *testing.T) {
	g := newGate(2, 1, obs.NewRegistry())
	ctx := context.Background()
	if !g.acquire(ctx) || !g.acquire(ctx) {
		t.Fatal("free slots must admit immediately")
	}
	// Third caller queues (the queue is 1 deep)...
	queued := make(chan bool, 1)
	go func() { queued <- g.acquire(ctx) }()
	waitQueueDepth(t, g, 1)
	// ...so a fourth is shed instantly, never blocking.
	if g.acquire(ctx) {
		t.Fatal("overflow past the queue bound must shed")
	}
	// A released slot goes to the queued waiter.
	g.release()
	if !<-queued {
		t.Fatal("queued caller must be admitted after a release")
	}
	waitQueueDepth(t, g, 0)
	// A waiter whose client gives up is shed, not leaked.
	cctx, cancel := context.WithCancel(ctx)
	go func() { queued <- g.acquire(cctx) }()
	waitQueueDepth(t, g, 1)
	cancel()
	if <-queued {
		t.Fatal("cancelled queued caller must be shed")
	}
	g.release()
	g.release()
	if !g.acquire(ctx) {
		t.Fatal("gate must fully recover after releases")
	}
}

func waitQueueDepth(t *testing.T, g *gate, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.queued.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", want, g.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}
}
