package server

import (
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// walHeader builds the raw file header for hand-crafted WAL inputs.
func walHeader() []byte {
	var buf []byte
	buf = append(buf, walMagic...)
	return binary.LittleEndian.AppendUint32(buf, walVersion)
}

// walRecord frames a payload with a correct CRC.
func walRecord(payload []byte) []byte {
	return appendRecord(nil, payload)
}

func testMutations() []Mutation {
	return []Mutation{
		{Tick: 10, Kind: "demand", Server: -1, Factor: 1.25},
		{Tick: 10, Kind: "demand", Server: 3, Factor: 0.8},
		{Tick: 40, Kind: "chaos", Spec: "light", Seed: 7},
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	spec := testSpec()
	w, err := CreateWAL(path, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	muts := testMutations()
	for _, mut := range muts {
		if err := w.Append(mut); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Spec, spec) {
		t.Fatalf("recovered spec %+v, want %+v", st.Spec, spec)
	}
	if !reflect.DeepEqual(st.Mutations, muts) {
		t.Fatalf("recovered mutations %+v, want %+v", st.Mutations, muts)
	}
	if st.Truncated != 0 {
		t.Fatalf("clean wal reported %d truncated bytes", st.Truncated)
	}

	// The reopened WAL must keep accepting appends at the right offset.
	extra := Mutation{Tick: 55, Kind: "demand", Server: 0, Factor: 1.1}
	if err := w2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, st, err = OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := append(muts, extra); !reflect.DeepEqual(st.Mutations, want) {
		t.Fatalf("after reopen+append: %+v, want %+v", st.Mutations, want)
	}
}

// TestWALCreateRefusesExisting pins the overwrite guard: recovery must
// be a deliberate OpenWAL, never CreateWAL clobbering history.
func TestWALCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	w, err := CreateWAL(path, testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := CreateWAL(path, testSpec(), nil); err == nil {
		t.Fatal("CreateWAL over an existing wal did not fail")
	}
}

// TestWALSeedsExistingJournal pins the full-history invariant: a WAL
// armed after a restore must already contain the restored journal, so
// recovery never needs the snapshot file to exist.
func TestWALSeedsExistingJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	muts := testMutations()
	w, err := CreateWAL(path, testSpec(), muts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, st, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Mutations, muts) {
		t.Fatalf("seeded journal came back as %+v, want %+v", st.Mutations, muts)
	}
}

// TestWALTornTailTruncation is the crash-mid-append table: every way an
// interrupted write can tear the final record must recover the intact
// prefix, report the torn byte count, and truncate the file in place so
// the next open is clean.
func TestWALTornTailTruncation(t *testing.T) {
	shortPayload := walRecord([]byte("0123456789"))[:12] // frame + 4 of 10 payload bytes
	badCRC := walRecord([]byte("0123456789"))
	binary.LittleEndian.PutUint32(badCRC[4:8], 0xdeadbeef)
	hugeLen := make([]byte, walFrameLen)
	binary.LittleEndian.PutUint32(hugeLen[:4], walMaxRecord+1)

	cases := []struct {
		name string
		tail []byte
	}{
		{"short frame", []byte{0x03, 0x00, 0x00}},
		{"frame without payload", walRecord([]byte("0123456789"))[:walFrameLen]},
		{"short payload", shortPayload},
		{"crc mismatch", badCRC},
		{"implausible length", hugeLen},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.wal")
			muts := testMutations()
			w, err := CreateWAL(path, testSpec(), muts)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			cleanSize := fileSize(t, path)
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			w2, st, err := OpenWAL(path)
			if err != nil {
				t.Fatalf("torn tail was fatal: %v", err)
			}
			defer w2.Close()
			if !reflect.DeepEqual(st.Mutations, muts) {
				t.Fatalf("torn tail corrupted the prefix: %+v", st.Mutations)
			}
			if st.Truncated != int64(len(tc.tail)) {
				t.Fatalf("Truncated = %d, want %d", st.Truncated, len(tc.tail))
			}
			if got := fileSize(t, path); got != cleanSize {
				t.Fatalf("file is %d bytes after truncation, want %d", got, cleanSize)
			}

			// The truncated WAL must accept appends exactly where the
			// valid prefix ended.
			extra := Mutation{Tick: 60, Kind: "demand", Server: -1, Factor: 1.05}
			if err := w2.Append(extra); err != nil {
				t.Fatal(err)
			}
			_, st, err = OpenWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			if want := append(muts, extra); !reflect.DeepEqual(st.Mutations, want) {
				t.Fatalf("append after truncation: %+v, want %+v", st.Mutations, want)
			}
		})
	}
}

// TestCorruptWALInputs is the structural-corruption table: damage that a
// torn tail cannot explain must be a loud error naming the file, never a
// silent partial recovery.
func TestCorruptWALInputs(t *testing.T) {
	badVersion := walHeader()
	binary.LittleEndian.PutUint32(badVersion[len(walMagic):], 99)

	specJSON, err := json.Marshal(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	goodSpec := walRecord(specJSON)

	cases := []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{"empty file", nil, "short header"},
		{"not a wal", []byte("definitely not a wal file, but long enough"), "bad magic"},
		{"future version", badVersion, "version 99"},
		{"header only", walHeader(), "no spec record"},
		{"crc-valid garbage spec", append(walHeader(), walRecord([]byte("{not json"))...), "spec record"},
		{"crc-valid garbage mutation", append(append(walHeader(), goodSpec...), walRecord([]byte("[broken"))...), "mutation record"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.wal")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := OpenWAL(path)
			if err == nil {
				t.Fatalf("OpenWAL accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestCorruptSnapshotInputs is the snapshot counterpart: ReadSnapshot on
// truncated or garbage files must fail cleanly with the path named.
func TestCorruptSnapshotInputs(t *testing.T) {
	valid, err := json.MarshalIndent(Snapshot{Version: SnapshotVersion, Spec: testSpec(), Tick: 10}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty file", nil},
		{"binary garbage", []byte{0x00, 0xff, 0x13, 0x37, 0x00}},
		{"truncated json", valid[:len(valid)/2]},
		{"wrong shape", []byte(`["an", "array", "not", "an", "object"]`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "snap.json")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadSnapshot(path); err == nil {
				t.Fatalf("ReadSnapshot accepted %s", tc.name)
			} else if !strings.Contains(err.Error(), "snap.json") {
				t.Fatalf("error %q does not name the file", err)
			}
		})
	}
	if _, err := ReadSnapshot(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(err) {
		t.Fatalf("missing snapshot: got %v, want IsNotExist", err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
