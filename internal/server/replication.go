package server

// Primary-side hot-standby replication. The WAL (wal.go) made one
// daemon's mutation history durable; replication streams that same
// history — the spec record plus every journaled mutation, in exactly
// the order they were framed on disk — to follower daemons over
// GET /v1/replicate, so a standby can hold a byte-identical copy of
// the run and take over on promotion without losing anything the
// primary ever acknowledged.
//
// Wire format: NDJSON, one RepRecord per line.
//
//	{"type":"spec","spec":{...},"tick":T,"records":N}   stream opener
//	{"type":"mut","index":i,"mut":{...},"tick":T,...}   journal entry i
//	{"type":"hb","tick":T,"records":N,...}              tick heartbeat
//
// Ordering contract: a mutation record is published only after the
// primary made it durable (WAL fsync) — a follower can never observe
// state the primary could lose — and the heartbeat for tick T is
// published after the primary flushed its telemetry stream for tick T,
// so a follower that has heard "tick T, records N" and holds N durable
// records may safely resume at boundary T: determinism re-executes
// everything beyond it bit for bit (the PR 8 recovery argument, over
// the network).
//
// Backpressure: each replication subscriber gets a bounded buffer. A
// follower too slow to drain it is disconnected rather than silently
// skipped — record loss must be visible as a dropped connection, which
// the follower heals by reconnecting with ?from=<durable count>. The
// resume cursor is a journal index, so catch-up never re-sends what
// the follower already fsync'd.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
)

// repBuffer bounds one replication subscriber's in-flight records. A
// burst larger than this (a follower stalled mid-catch-up) drops the
// connection; the follower resumes from its durable cursor.
const repBuffer = 256

// RepRecord is one line of the /v1/replicate NDJSON stream.
type RepRecord struct {
	// Type discriminates: "spec" (stream opener), "mut" (one journal
	// entry), "hb" (tick heartbeat).
	Type string `json:"type"`
	// Spec is the run spec ("spec" records only) — the same JSON the
	// WAL's header record carries.
	Spec *Spec `json:"spec,omitempty"`
	// Index is the journal position of a "mut" record (0-based), the
	// follower's resume cursor.
	Index int `json:"index,omitempty"`
	// Mut is the journal entry ("mut" records only).
	Mut *Mutation `json:"mut,omitempty"`
	// Tick is the primary's tick boundary when the record was produced.
	Tick int `json:"tick"`
	// Records is the primary's journal length at that boundary.
	Records int `json:"records"`
	// Done reports the primary's run has completed every configured
	// tick; Frozen that it handed off (tick loop stopped for migration).
	Done   bool `json:"done,omitempty"`
	Frozen bool `json:"frozen,omitempty"`
}

// repFeed fans replication records out to the /v1/replicate handlers.
// Like the telemetry Hub it never blocks the tick loop, but unlike the
// Hub it may not silently drop: an overflowing subscriber is closed, so
// the follower sees a broken stream and reconnects from its cursor.
type repFeed struct {
	mu     sync.Mutex
	subs   map[*repSub]struct{}
	closed bool
}

// repSub is one replication subscriber's bounded record feed; C closes
// on overflow or feed shutdown.
type repSub struct {
	C chan RepRecord
}

func newRepFeed() *repFeed {
	return &repFeed{subs: map[*repSub]struct{}{}}
}

// publish delivers rec to every subscriber, disconnecting any whose
// buffer is full. Called under the daemon's tick lock, so records reach
// every subscriber in journal order.
func (f *repFeed) publish(rec RepRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	for s := range f.subs {
		select {
		case s.C <- rec:
		default:
			// Slow follower: a gap would be silent corruption, a closed
			// stream is a visible retry. Close wins.
			delete(f.subs, s)
			close(s.C)
		}
	}
}

// subscribe registers a new bounded subscriber.
func (f *repFeed) subscribe() *repSub {
	s := &repSub{C: make(chan RepRecord, repBuffer)}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		close(s.C)
		return s
	}
	f.subs[s] = struct{}{}
	return s
}

// unsubscribe removes a subscriber; harmless if already disconnected.
func (f *repFeed) unsubscribe(s *repSub) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.subs[s]; !ok {
		return
	}
	delete(f.subs, s)
	close(s.C)
}

// close terminates every subscriber; idempotent. Part of Daemon.Close,
// which must run before http.Server.Shutdown so a connected follower
// cannot hold the drain open.
func (f *repFeed) close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for s := range f.subs {
		delete(f.subs, s)
		close(s.C)
	}
}

// count returns the live replication subscriber count.
func (f *repFeed) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.subs)
}

// repSnapshot is the consistent view a new replication subscriber
// starts from: everything it must send before switching to the live
// feed.
type repSnapshot struct {
	spec    Spec
	backlog []Mutation // journal[from:]
	from    int        // index of backlog[0]
	tick    int
	records int
	done    bool
	frozen  bool
}

// subscribeReplication atomically snapshots the journal suffix from
// index `from` and registers a live subscriber, under the tick lock so
// no mutation can land between the two — the snapshot plus the feed is
// gapless and duplicate records are detectable by index alone.
func (d *Daemon) subscribeReplication(from int) (repSnapshot, *repSub, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if from < 0 || from > len(d.journal) {
		return repSnapshot{}, nil, fmt.Errorf("server: replicate from=%d outside journal [0, %d]", from, len(d.journal))
	}
	snap := repSnapshot{
		spec:    d.spec,
		backlog: append([]Mutation(nil), d.journal[from:]...),
		from:    from,
		tick:    d.m.NextTick(),
		records: len(d.journal),
		done:    d.m.Done(),
		frozen:  d.frozen,
	}
	return snap, d.rep.subscribe(), nil
}

// Freeze stops the daemon at the current tick boundary for a migration
// handoff: the tick driver steps no further and every subsequent
// mutation is refused, so the journal is final. The frozen boundary is
// announced on the replication feed (heartbeat with Frozen set), which
// is what lets a follower prove it holds the complete run. Freeze is
// idempotent and returns the frozen tick and journal length.
func (d *Daemon) Freeze() (tick, records int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.frozen = true
	tick, records = d.m.NextTick(), len(d.journal)
	d.rep.publish(RepRecord{
		Type: "hb", Tick: tick, Records: records,
		Done: d.m.Done(), Frozen: true,
	})
	return tick, records
}

// Frozen reports whether a handoff has stopped the tick loop.
func (d *Daemon) Frozen() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.frozen
}

// serveReplicate streams the run's durable history — spec, journal
// backlog from ?from, then live records — as NDJSON until the client
// disconnects, the subscriber overflows, or the daemon drains.
func serveReplicate(d *Daemon, w http.ResponseWriter, r *http.Request) {
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad from %q", q))
			return
		}
		from = v
	}
	snap, sub, err := d.subscribeReplication(from)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer d.rep.unsubscribe(sub)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	enc := json.NewEncoder(w)
	send := func(rec RepRecord) bool {
		if err := enc.Encode(rec); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	if !send(RepRecord{Type: "spec", Spec: &snap.spec, Tick: snap.tick, Records: snap.records}) {
		return
	}
	sent := snap.from
	for i, mut := range snap.backlog {
		m := mut
		if !send(RepRecord{Type: "mut", Index: snap.from + i, Mut: &m, Tick: m.Tick, Records: snap.records}) {
			return
		}
		sent = snap.from + i + 1
	}
	// Initial heartbeat: the follower learns the primary's boundary even
	// on a quiet run, so resume ticks advance without waiting for the
	// next step.
	if !send(RepRecord{Type: "hb", Tick: snap.tick, Records: snap.records, Done: snap.done, Frozen: snap.frozen}) {
		return
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case rec, ok := <-sub.C:
			if !ok {
				return // feed closed (drain) or this subscriber overflowed
			}
			if rec.Type == "mut" {
				if rec.Index < sent {
					continue // already sent from the backlog snapshot
				}
				if rec.Index > sent {
					// A gap can only mean this subscriber missed records
					// (should be impossible — overflow closes the channel);
					// drop the connection rather than ship a hole.
					return
				}
				sent = rec.Index + 1
			}
			if !send(rec) {
				return
			}
		}
	}
}
