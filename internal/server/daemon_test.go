package server

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"willow/internal/cluster"
	"willow/internal/telemetry"
)

// testSpec is small enough to step thousands of ticks in tests but
// big enough to exercise the full hierarchy (3 levels, 6 servers).
func testSpec() Spec {
	return Spec{
		Util:   0.6,
		Fanout: []int{2, 3},
		Ticks:  200,
		Warmup: 50,
		Seed:   42,
		Supply: "sine",
	}
}

func encodeStream(t *testing.T, events []telemetry.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, e := range events {
		line, err := telemetry.Encode(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// sameResult compares run measurements with Config zeroed (it carries
// the non-comparable Sink).
func sameResult(t *testing.T, a, b *cluster.Result, label string) {
	t.Helper()
	ca, cb := *a, *b
	ca.Config, cb.Config = cluster.Config{}, cluster.Config{}
	if !reflect.DeepEqual(ca, cb) {
		t.Fatalf("%s: results differ", label)
	}
}

// TestFastForwardMatchesOfflineRun is the determinism pin: a daemon in
// fast-forward produces the byte-identical event stream and the same
// Result as the offline cluster.Run on the same parameters — the live
// control plane and the batch simulator are one code path.
func TestFastForwardMatchesOfflineRun(t *testing.T) {
	for _, chaosSpec := range []string{"", "light"} {
		spec := testSpec()
		spec.Chaos = chaosSpec
		spec.LeaseTicks = 0

		cfg, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		var offline telemetry.Buffer
		cfg.Sink = &offline
		resOffline, err := cluster.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}

		d, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		var live telemetry.Buffer
		d.SetSink(&live)
		if err := d.Run(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		resLive := d.Result()

		offBytes := encodeStream(t, offline.Events)
		liveBytes := encodeStream(t, live.Events)
		if !bytes.Equal(offBytes, liveBytes) {
			t.Fatalf("chaos=%q: daemon event stream diverges from offline run (%d vs %d bytes)",
				chaosSpec, len(liveBytes), len(offBytes))
		}
		if len(offline.Events) == 0 {
			t.Fatalf("chaos=%q: offline run published no events", chaosSpec)
		}
		sameResult(t, resOffline, resLive, "fast-forward vs offline")
	}
}

// TestSnapshotRestoreRoundTrip mutates a live run (demand scaling,
// live chaos), snapshots it mid-flight, and asserts the restored
// daemon is indistinguishable: identical state at the boundary,
// identical next-tick state, and a byte-identical event stream to
// completion.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	spec := testSpec()
	spec.LeaseTicks = 8 // live PMU chaos needs leases armed at boot

	d, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	d.StepN(50)
	if _, err := d.ScaleDemand(3, 1.5); err != nil {
		t.Fatal(err)
	}
	d.StepN(10)
	if _, _, err := d.InjectChaos("light", 99, false); err != nil {
		t.Fatal(err)
	}
	d.StepN(20)
	// A mutation at the snapshot boundary itself must replay too.
	if _, err := d.ScaleDemand(-1, 0.9); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	if snap.Tick != 80 || len(snap.Journal) != 3 {
		t.Fatalf("snapshot at tick %d with %d journal entries, want 80 with 3", snap.Tick, len(snap.Journal))
	}

	// Round-trip through JSON: what the API serves is what restores.
	wire, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(decoded)
	if err != nil {
		t.Fatal(err)
	}

	compareState := func(label string) {
		t.Helper()
		sd, _ := json.Marshal(d.State())
		sr, _ := json.Marshal(r.State())
		if !bytes.Equal(sd, sr) {
			t.Fatalf("%s: state diverges\nlive:     %s\nrestored: %s", label, sd, sr)
		}
	}
	compareState("at snapshot boundary")

	d.StepN(1)
	r.StepN(1)
	compareState("one tick after restore")

	var liveTail, restoredTail telemetry.Buffer
	d.SetSink(&liveTail)
	r.SetSink(&restoredTail)
	if err := d.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeStream(t, liveTail.Events), encodeStream(t, restoredTail.Events)) {
		t.Fatalf("post-restore event streams diverge")
	}
	sameResult(t, d.Result(), r.Result(), "restored run completion")
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	base := func() Snapshot {
		return Snapshot{Version: SnapshotVersion, Spec: testSpec(), Tick: 10}
	}
	cases := []struct {
		name string
		mut  func(*Snapshot)
	}{
		{"wrong version", func(s *Snapshot) { s.Version = 99 }},
		{"tick beyond horizon", func(s *Snapshot) { s.Tick = 10_000 }},
		{"negative tick", func(s *Snapshot) { s.Tick = -1 }},
		{"journal out of order", func(s *Snapshot) {
			s.Journal = []Mutation{
				{Tick: 5, Kind: "demand", Server: -1, Factor: 1.1},
				{Tick: 3, Kind: "demand", Server: -1, Factor: 1.1},
			}
		}},
		{"journal beyond tick", func(s *Snapshot) {
			s.Journal = []Mutation{{Tick: 11, Kind: "demand", Server: -1, Factor: 1.1}}
		}},
		{"unknown mutation kind", func(s *Snapshot) {
			s.Journal = []Mutation{{Tick: 2, Kind: "meteor"}}
		}},
		{"bad spec", func(s *Snapshot) { s.Spec.Util = 0 }},
	}
	for _, tc := range cases {
		snap := base()
		tc.mut(&snap)
		if _, err := Restore(snap); err == nil {
			t.Errorf("%s: Restore accepted a bad snapshot", tc.name)
		}
	}
}

func TestScaleDemandValidation(t *testing.T) {
	d, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		server int
		factor float64
	}{
		{99, 1.0}, {-2, 1.0}, {0, -1.0},
	} {
		if _, err := d.ScaleDemand(tc.server, tc.factor); err == nil {
			t.Errorf("ScaleDemand(%d, %v) accepted", tc.server, tc.factor)
		}
	}
	if len(d.Snapshot().Journal) != 0 {
		t.Fatalf("rejected mutations were journaled")
	}
	if _, err := d.ScaleDemand(-1, 1.2); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Snapshot().Journal); got != 1 {
		t.Fatalf("journal has %d entries, want 1", got)
	}
}

func TestInjectChaosTakesEffect(t *testing.T) {
	spec := testSpec()
	spec.LeaseTicks = 8
	d, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	d.StepN(20)
	plan, tick, err := d.InjectChaos("heavy", 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if tick != 20 {
		t.Fatalf("injected at tick %d, want 20", tick)
	}
	if plan.Events() == 0 {
		t.Fatalf("heavy chaos expanded to an empty plan")
	}
	if err := d.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Failures == 0 && st.PMUFailures == 0 {
		t.Fatalf("live chaos injected but no failures happened (plan had %d events)", plan.Events())
	}

	// Horizon exhausted: no more chaos.
	if _, _, err := d.InjectChaos("light", 1, false); err == nil {
		t.Fatalf("InjectChaos accepted after run completion")
	}
}

func TestInjectSensorChaosLive(t *testing.T) {
	spec := testSpec()
	spec.Sensing = true
	d, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	d.StepN(10)
	plan, _, err := d.InjectChaos("heavy", 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.SensorFaults) == 0 {
		t.Fatalf("heavy sensor spec expanded to no fault windows")
	}
	if len(plan.ServerFailures)+len(plan.PMUFailures)+len(plan.LossWindows) != 0 {
		t.Fatalf("sensor-only injection produced non-sensor faults")
	}
	if err := d.Run(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.SensorFaults == 0 {
		t.Fatalf("sensor chaos injected but no faults recorded")
	}
}

func TestHubBoundedFanout(t *testing.T) {
	h := NewHub()
	fast := h.Subscribe(16)
	slow := h.Subscribe(2)
	for i := 0; i < 5; i++ {
		h.Publish(telemetry.Event{Tick: i, Kind: telemetry.KindBudgetChange})
	}
	published, dropped, subs := h.Stats()
	if published != 5 || subs != 2 {
		t.Fatalf("published=%d subs=%d, want 5 and 2", published, subs)
	}
	if dropped != 3 || h.Dropped(slow) != 3 {
		t.Fatalf("dropped=%d (slow %d), want 3 for the buffer-2 subscriber", dropped, h.Dropped(slow))
	}
	if len(fast.C) != 5 || len(slow.C) != 2 {
		t.Fatalf("buffers hold %d and %d, want 5 and 2", len(fast.C), len(slow.C))
	}
	if (<-slow.C).Tick != 0 {
		t.Fatalf("slow subscriber lost the oldest event instead of the newest")
	}

	h.Unsubscribe(slow)
	h.Unsubscribe(slow) // idempotent
	for range slow.C {  // buffered events drain, then the channel closes
	}

	h.Close()
	h.Close() // idempotent
	for range fast.C {
	}
	select {
	case <-h.Done():
	default:
		t.Fatalf("Done not closed after Close")
	}
	late := h.Subscribe(4)
	if _, ok := <-late.C; ok {
		t.Fatalf("subscription on a closed hub delivered an event")
	}
	h.Publish(telemetry.Event{}) // no-op, must not panic
}

// TestSlowSubscriberNeverStallsTicks pins the hub's core guarantee:
// a subscriber that never reads cannot block the tick loop.
func TestSlowSubscriberNeverStallsTicks(t *testing.T) {
	d, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	stuck := d.Hub().Subscribe(1)
	defer d.Hub().Unsubscribe(stuck)
	if err := d.Run(context.Background(), 0); err != nil { // would deadlock if Publish blocked
		t.Fatal(err)
	}
	if !d.Done() {
		t.Fatalf("run did not complete")
	}
	if d.Hub().Dropped(stuck) == 0 {
		t.Fatalf("stuck subscriber dropped nothing — publish must have blocked somewhere")
	}
}

func TestSpecBuildValidation(t *testing.T) {
	bad := []Spec{
		{Util: 0.5, Fanout: []int{2, 0}, Ticks: 100, Supply: "constant"},
		{Util: 0.5, Fanout: []int{2, 3}, Ticks: 100, Supply: "fusion-reactor"},
		{Util: 0.5, Fanout: []int{2, 3}, Ticks: 100, Chaos: "no-such-preset"},
	}
	for i, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Errorf("spec %d built despite invalid field", i)
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	d, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	d.StepN(30)
	if _, err := d.ScaleDemand(0, 1.3); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	path := t.TempDir() + "/snap.json"
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, loaded) {
		t.Fatalf("snapshot file round-trip changed the snapshot")
	}
	if _, err := Restore(loaded); err != nil {
		t.Fatal(err)
	}
}
