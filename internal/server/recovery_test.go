package server

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"willow/internal/telemetry"
)

// crashWALDaemon builds a WAL-armed daemon and a matching WAL path in a
// temp dir. Dropping the daemon without any teardown models kill -9:
// WAL appends are already durable, nothing else is.
func crashWALDaemon(t *testing.T, spec Spec) (*Daemon, *WAL, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.wal")
	d, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	w, err := CreateWAL(path, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	d.AttachWAL(w)
	return d, w, path
}

// mutateScript drives a daemon through the shared crash-test history:
// step, scale, step, inject chaos, step — ending at tick 70 with two
// mutations journaled (at ticks 40 and 60).
func mutateScript(t *testing.T, d *Daemon) {
	t.Helper()
	d.StepN(40)
	if _, err := d.ScaleDemand(3, 1.4); err != nil {
		t.Fatal(err)
	}
	d.StepN(20)
	if _, _, err := d.InjectChaos("light", 7, false); err != nil {
		t.Fatal(err)
	}
	d.StepN(10)
}

// TestRecoverMatchesUninterrupted is the tentpole's in-process pin: a
// daemon killed without warning (only its WAL survives) recovers to
// byte-identical state — against both the dead incarnation's in-memory
// state and a run that never died.
func TestRecoverMatchesUninterrupted(t *testing.T) {
	spec := testSpec()
	dead, _, walPath := crashWALDaemon(t, spec)
	mutateScript(t, dead) // at tick 70; WAL knows through tick 60

	rec, wal, info, err := Recover("", walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	defer wal.Close()
	if info.Tick != 60 || info.Mutations != 2 || info.SnapshotTick != -1 || info.TruncatedBytes != 0 {
		t.Fatalf("RecoveryInfo = %+v, want tick 60, 2 mutations, no snapshot, no torn tail", info)
	}
	// Ticks beyond the last durable mutation re-execute deterministically.
	rec.StepN(70 - info.Tick)

	oracle := newTestDaemon(t, spec)
	mutateScript(t, oracle)

	for _, pair := range []struct {
		label string
		a, b  *Daemon
	}{{"recovered vs dead incarnation", rec, dead}, {"recovered vs uninterrupted", rec, oracle}} {
		sa, err := json.Marshal(pair.a.State())
		if err != nil {
			t.Fatal(err)
		}
		sb, err := json.Marshal(pair.b.State())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sa, sb) {
			t.Fatalf("%s: /v1/state differs\n%s\n%s", pair.label, sa, sb)
		}
		if !reflect.DeepEqual(pair.a.Snapshot(), pair.b.Snapshot()) {
			t.Fatalf("%s: snapshots differ", pair.label)
		}
		sameResult(t, pair.a.Result(), pair.b.Result(), pair.label)
	}

	// And through to completion: the whole run, not just tick 70.
	for !rec.Done() {
		rec.Step()
	}
	for !oracle.Done() {
		oracle.Step()
	}
	sameResult(t, rec.Result(), oracle.Result(), "recovered run to completion")
}

// TestRecoverWithBaseSnapshot covers the operator workflow: a periodic
// snapshot bounds replay cost, and recovery cross-checks it against the
// WAL instead of trusting either alone.
func TestRecoverWithBaseSnapshot(t *testing.T) {
	spec := testSpec()
	dead, _, walPath := crashWALDaemon(t, spec)
	mutateScript(t, dead)
	snapPath := filepath.Join(filepath.Dir(walPath), "snap.json")
	if _, err := dead.WriteSnapshot(snapPath); err != nil {
		t.Fatal(err)
	}
	dead.StepN(5) // die at tick 75, past the snapshot

	rec, wal, info, err := Recover(snapPath, walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	defer wal.Close()
	// The snapshot (tick 70) is ahead of the last mutation (tick 60):
	// recovery must resume at the furthest boundary durable state proves.
	if info.Tick != 70 || info.SnapshotTick != 70 {
		t.Fatalf("RecoveryInfo = %+v, want resume at snapshot tick 70", info)
	}
	rec.StepN(5)
	sameResult(t, rec.Result(), dead.Result(), "recovered with base snapshot")

	// A missing snapshot file is the normal young-run case, not an error.
	rec2, wal2, info2, err := Recover(filepath.Join(filepath.Dir(walPath), "never-written.json"), walPath)
	if err != nil {
		t.Fatal(err)
	}
	rec2.Close()
	wal2.Close()
	if info2.Tick != 60 || info2.SnapshotTick != -1 {
		t.Fatalf("missing snapshot: RecoveryInfo = %+v, want WAL-only recovery at tick 60", info2)
	}
}

// TestRecoverRejectsMismatchedSnapshot pins the cross-checks: a snapshot
// from a different run, or one whose journal is not a prefix of the
// WAL's, must refuse recovery instead of guessing.
func TestRecoverRejectsMismatchedSnapshot(t *testing.T) {
	spec := testSpec()
	dead, _, walPath := crashWALDaemon(t, spec)
	mutateScript(t, dead)
	dir := filepath.Dir(walPath)

	otherSpec := testSpec()
	otherSpec.Seed++
	wrongSpec := filepath.Join(dir, "wrong-spec.json")
	if err := (Snapshot{Version: SnapshotVersion, Spec: otherSpec, Tick: 10}).WriteFile(wrongSpec); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Recover(wrongSpec, walPath); err == nil || !strings.Contains(err.Error(), "specs differ") {
		t.Fatalf("mismatched spec: got %v", err)
	}

	wrongJournal := filepath.Join(dir, "wrong-journal.json")
	snap := dead.Snapshot()
	snap.Journal[0].Factor = 99 // not the history the WAL recorded
	if err := snap.WriteFile(wrongJournal); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Recover(wrongJournal, walPath); err == nil || !strings.Contains(err.Error(), "disagrees with wal") {
		t.Fatalf("mismatched journal: got %v", err)
	}

	longJournal := filepath.Join(dir, "long-journal.json")
	snap = dead.Snapshot()
	snap.Journal = append(snap.Journal, Mutation{Tick: snap.Tick, Kind: "demand", Server: -1, Factor: 1.01})
	if err := snap.WriteFile(longJournal); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Recover(longJournal, walPath); err == nil || !strings.Contains(err.Error(), "holds only") {
		t.Fatalf("journal longer than wal: got %v", err)
	}
}

// TestRecoverTornTail pins end-to-end crash-mid-append recovery: garbage
// after the last durable record is truncated, reported, and changes
// nothing about the recovered run.
func TestRecoverTornTail(t *testing.T) {
	spec := testSpec()
	dead, wal, walPath := crashWALDaemon(t, spec)
	mutateScript(t, dead)
	wal.Close() // release the fd before tampering
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad} // half a frame
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rec, wal2, info, err := Recover("", walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	defer wal2.Close()
	if info.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("TruncatedBytes = %d, want %d", info.TruncatedBytes, len(torn))
	}
	rec.StepN(70 - info.Tick)
	sameResult(t, rec.Result(), dead.Result(), "recovered past torn tail")
}

// TestRecoverRejectsMisorderedWAL pins the append-only invariant: a WAL
// whose mutation ticks go backwards is not a history and must not replay.
func TestRecoverRejectsMisorderedWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	w, err := CreateWAL(path, testSpec(), []Mutation{
		{Tick: 50, Kind: "demand", Server: -1, Factor: 1.1},
		{Tick: 30, Kind: "demand", Server: -1, Factor: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, _, _, err := Recover("", path); err == nil || !strings.Contains(err.Error(), "append-only") {
		t.Fatalf("misordered wal: got %v", err)
	}
}

// TestWALStickyFailureRefusesMutations pins the divergence guard: after
// a failed append the in-memory machine is ahead of the durable journal,
// so the daemon must refuse further mutations rather than widen the gap
// — while reads and ticking continue.
func TestWALStickyFailureRefusesMutations(t *testing.T) {
	spec := testSpec()
	dead, wal, _ := crashWALDaemon(t, spec)
	dead.StepN(10)
	wal.Close() // every future append now fails

	_, err := dead.ScaleDemand(-1, 1.2)
	if err == nil || !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("append onto closed wal: got %v", err)
	}
	// The mutation did apply in memory (the machine had already scaled),
	// so a graceful snapshot must still describe the real state.
	if got := len(dead.Snapshot().Journal); got != 1 {
		t.Fatalf("journal has %d entries after non-durable mutation, want 1", got)
	}
	// But the failure is sticky: nothing further is accepted.
	if _, err := dead.ScaleDemand(-1, 1.2); err == nil || !strings.Contains(err.Error(), "mutations disabled") {
		t.Fatalf("mutation after wal divergence: got %v", err)
	}
	if _, _, err := dead.InjectChaos("light", 1, false); err == nil || !strings.Contains(err.Error(), "mutations disabled") {
		t.Fatalf("chaos after wal divergence: got %v", err)
	}
	// Ticking and reads stay alive — the daemon degrades, not dies.
	dead.StepN(5)
	if got := dead.NextTick(); got != 15 {
		t.Fatalf("tick = %d after divergence, want 15", got)
	}
}

// TestRecoverReplayOracleStream pins the harness's comparison oracle:
// Replay publishes, from tick 0, the byte-identical event stream a live
// WAL-armed daemon published across its whole life.
func TestRecoverReplayOracleStream(t *testing.T) {
	spec := testSpec()
	var live []telemetry.Event
	d, _, _ := crashWALDaemon(t, spec)
	d.SetSink(telemetry.SinkFunc(func(e telemetry.Event) { live = append(live, e) }))
	mutateScript(t, d)

	var replayed []telemetry.Event
	oracle, err := Replay(d.Snapshot(), telemetry.SinkFunc(func(e telemetry.Event) { replayed = append(replayed, e) }))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	if !bytes.Equal(encodeStream(t, live), encodeStream(t, replayed)) {
		t.Fatalf("replayed stream differs: %d live events vs %d replayed", len(live), len(replayed))
	}
	sameResult(t, d.Result(), oracle.Result(), "replay oracle")
}
