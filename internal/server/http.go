package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"willow/internal/telemetry"
)

// HandlerOptions tunes the HTTP layer's overload protection. The zero
// value takes the defaults, so NewHandler(d) keeps its historical
// behavior (generously gated, never unbounded).
type HandlerOptions struct {
	// MaxInflight bounds mutations concurrently holding the admission
	// gate (default DefaultMaxInflight).
	MaxInflight int
	// MaxQueue bounds mutations waiting behind the in-flight ones;
	// arrivals beyond it are shed with 429 (default DefaultMaxQueue).
	MaxQueue int
	// RetryAfter is the backoff hint sent with 429 responses, rounded
	// up to whole seconds (default 1s).
	RetryAfter time.Duration
}

// NewHandler exposes a daemon over HTTP/JSON:
//
//	GET  /healthz      readiness view: role, tick, wal health, gate
//	                   saturation, replication subscribers (HealthView)
//	GET  /metrics      Prometheus text exposition (wall-clock latency
//	                   histograms + sim-time energy/hub series)
//	GET  /v1/state     full hierarchy state at the tick boundary
//	GET  /v1/stats     run counters, hub stats, journal length
//	GET  /v1/efficiency energy scoreboard: cumulative + sliding-window
//	                   joules, work/joule, per-rack and per-class rows
//	POST /v1/demand    {"server": -1, "factor": 1.5} scale demand
//	POST /v1/chaos     {"spec": "medium", "seed": 7, "sensor": false}
//	POST /v1/snapshot  returns the full snapshot JSON
//	GET  /v1/events    telemetry stream, JSONL (or SSE with
//	                   Accept: text/event-stream); ?kinds=budget,...
//	                   filters; ?buffer=N sizes the subscription;
//	                   ?from=T replays retained history from tick T
//	                   before going live (reconnect resume)
//	GET  /v1/replicate NDJSON replication stream: spec record, journal
//	                   backlog from ?from=<index>, then live mutations
//	                   and tick heartbeats (hot-standby feed)
//	POST /v1/handoff   freeze the run at the current tick boundary for
//	                   a migration cutover; returns {tick, records}
//	POST /v1/promote   409 on a primary (meaningful only on a follower)
//
// Handlers are safe for unbounded concurrency: reads and mutations
// serialize on the daemon's tick lock (so they always see and land on
// tick boundaries), and the events stream runs entirely off the hub,
// never touching the lock. Mutations additionally pass an admission
// gate (see gate.go): beyond the configured in-flight and queue bounds
// they are shed with 429 + Retry-After instead of piling goroutines on
// the tick mutex.
func NewHandler(d *Daemon) http.Handler {
	return NewHandlerOpts(d, HandlerOptions{})
}

// NewHandlerOpts is NewHandler with explicit overload bounds.
func NewHandlerOpts(d *Daemon, opts HandlerOptions) http.Handler {
	g := newGate(opts.MaxInflight, opts.MaxQueue, d.metrics.reg)
	retryAfter := opts.RetryAfter
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	retrySecs := strconv.Itoa(int((retryAfter + time.Second - 1) / time.Second))
	// admit wraps a mutation handler in the gate: shed requests get 429
	// with a Retry-After hint and never touch the daemon.
	admit := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if !g.acquire(r.Context()) {
				w.Header().Set("Retry-After", retrySecs)
				writeError(w, http.StatusTooManyRequests,
					fmt.Errorf("mutation admission gate saturated (%d in flight + %d queued); retry after %s",
						cap(g.slots), g.maxQueue, retryAfter))
				return
			}
			defer g.release()
			h(w, r)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		gh := g.health()
		writeJSON(w, http.StatusOK, d.Health(&gh))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// Render into a buffer first: the exposition is small (a few KB)
		// and this keeps slow scrapers off the daemon's locks entirely.
		var buf bytes.Buffer
		if err := d.WriteMetrics(&buf); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf.Bytes())
	})
	mux.HandleFunc("GET /v1/efficiency", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Efficiency())
	})
	mux.HandleFunc("GET /v1/state", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.State())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Stats())
	})
	mux.HandleFunc("POST /v1/demand", admit(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Server *int    `json:"server"`
			Factor float64 `json:"factor"`
		}
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		server := -1
		if req.Server != nil {
			server = *req.Server
		}
		tick, err := d.ScaleDemand(server, req.Factor)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"tick": tick, "server": server, "factor": req.Factor})
	}))
	mux.HandleFunc("POST /v1/chaos", admit(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Spec   string `json:"spec"`
			Seed   uint64 `json:"seed"`
			Sensor bool   `json:"sensor"`
		}
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		plan, tick, err := d.InjectChaos(req.Spec, req.Seed, req.Sensor)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"tick":            tick,
			"server_failures": len(plan.ServerFailures),
			"pmu_failures":    len(plan.PMUFailures),
			"loss_windows":    len(plan.LossWindows),
			"sensor_faults":   len(plan.SensorFaults),
		})
	}))
	mux.HandleFunc("POST /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Snapshot())
	})
	mux.HandleFunc("GET /v1/replicate", func(w http.ResponseWriter, r *http.Request) {
		serveReplicate(d, w, r)
	})
	mux.HandleFunc("POST /v1/handoff", func(w http.ResponseWriter, r *http.Request) {
		// Freeze the run at the current boundary for a migration cutover:
		// the response names the final (tick, records) pair the follower
		// must reach before promoting.
		tick, records := d.Freeze()
		writeJSON(w, http.StatusOK, map[string]any{"tick": tick, "records": records})
	})
	mux.HandleFunc("POST /v1/promote", func(w http.ResponseWriter, r *http.Request) {
		// A full daemon is already the primary; promotion only means
		// something on a follower (see NewFollowerHandler).
		writeError(w, http.StatusConflict, fmt.Errorf("already primary"))
	})
	mux.HandleFunc("GET /v1/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(d, w, r)
	})
	return mux
}

// serveEvents streams telemetry to one subscriber until the client
// disconnects or the hub shuts down. The subscription buffer bounds
// what a slow client costs: overflow drops events for this stream only
// and the tick loop never blocks. With ?from=<tick>, retained history
// from that tick on is replayed before the live feed — the resume path
// a reconnecting subscriber (or follower surviving link loss) uses.
func serveEvents(d *Daemon, w http.ResponseWriter, r *http.Request) {
	keep := telemetry.AllKinds
	if q := r.URL.Query().Get("kinds"); q != "" {
		var err error
		if keep, err = telemetry.ParseKindSet(q); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	buffer := 1024
	if q := r.URL.Query().Get("buffer"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 || v > 1<<20 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad buffer %q", q))
			return
		}
		buffer = v
	}
	from := -1
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad from %q", q))
			return
		}
		from = v
	}
	sse := r.Header.Get("Accept") == "text/event-stream"

	var history []telemetry.Event
	var sub *Subscription
	if from >= 0 {
		history, sub = d.SubscribeEvents(from, buffer)
	} else {
		sub = d.Hub().Subscribe(buffer)
	}
	defer d.Hub().Unsubscribe(sub)

	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit headers so clients see the stream open
	}

	writeEvent := func(ev telemetry.Event) bool {
		if !keep.Has(ev.Kind) {
			return true
		}
		line, err := telemetry.Encode(ev)
		if err != nil {
			return true
		}
		if sse {
			if _, err := fmt.Fprintf(w, "data: %s\n\n", line); err != nil {
				return false
			}
		} else {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return false
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	// Replay retained history first (?from=): the subscription was taken
	// atomically with the history snapshot, so the splice is gapless and
	// duplicate-free.
	for _, ev := range history {
		if !writeEvent(ev) {
			return
		}
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case <-d.Hub().Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			if !writeEvent(ev) {
				return
			}
		}
	}
}

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
