// Package server is Willow's live control plane: a long-running daemon
// that drives the cluster tick loop under wall-clock pacing (or at full
// speed in fast-forward), exposes state and mutation endpoints over
// HTTP/JSON, streams telemetry to any number of subscribers through a
// bounded fan-out hub, and can serialize itself for restart continuity.
//
// The determinism contract of the offline simulator carries over
// whole: a daemon is a cluster.Machine plus a mutation journal, every
// mutation lands at a tick boundary, and a snapshot is (Spec, tick,
// journal) — restoring replays the journal against a fresh machine, so
// the restored run is bit-identical to one that never stopped.
package server

import (
	"fmt"

	"willow/internal/cluster"
	"willow/internal/policy"
	"willow/internal/power"
)

// Spec is the serializable description of a daemon run — the subset of
// cluster.Config a snapshot can carry. Build is a pure function of the
// Spec, which is what makes snapshot/restore exact: the same Spec
// always reconstructs the same machine, random streams and all.
type Spec struct {
	// Util is the target mean utilization in (0, 1].
	Util float64 `json:"util"`
	// Fanout is the PMU hierarchy shape, root downward.
	Fanout []int `json:"fanout"`
	// Ticks and Warmup bound the run as in cluster.Config.
	Ticks  int `json:"ticks"`
	Warmup int `json:"warmup"`
	// Seed makes the run reproducible.
	Seed uint64 `json:"seed"`
	// Supply selects the root supply profile: "constant", "sine", or
	// "deficit-steps" (the willow-sim presets).
	Supply string `json:"supply"`
	// Hotzone places the last four servers in a 40 °C ambient when the
	// topology has exactly 18 servers (the paper's two-zone setup).
	Hotzone bool `json:"hotzone,omitempty"`
	// Chaos/ChaosSeed fold a seeded fault schedule into the run at
	// build time (chaos.ParseSpec syntax). SensorChaos does the same
	// for sensor faults; SensorNaive disarms the robust estimator.
	Chaos       string `json:"chaos,omitempty"`
	ChaosSeed   uint64 `json:"chaos_seed,omitempty"`
	SensorChaos string `json:"sensor_chaos,omitempty"`
	SensorNaive bool   `json:"sensor_naive,omitempty"`
	// LeaseTicks arms budget leases (core.Config.BudgetLeaseTicks) so
	// live-injected PMU failures degrade instead of riding stale
	// budgets forever. Zero leaves leases off — byte-identical to the
	// offline default.
	LeaseTicks int `json:"lease_ticks,omitempty"`
	// Sensing arms the robust temperature estimator at boot (the
	// chaos-smoke defaults) so live-injected sensor faults meet a
	// prepared controller. Zero-value controllers cannot grow an
	// estimator mid-run.
	Sensing bool `json:"sensing,omitempty"`
	// Energy turns on KindEnergy telemetry events (core.Config
	// EnergyEvents). Accounting itself is always on; this only adds the
	// per-supply-window event stream, so the default stays byte-identical
	// to pre-energy runs.
	Energy bool `json:"energy,omitempty"`
	// TickSeconds is the wall-time one tick models for joule conversion
	// (core.Config.TickSeconds). Zero keeps the default of 1 s.
	TickSeconds float64 `json:"tick_seconds,omitempty"`
	// Policy selects the controller policy (policy.ParseSpec syntax).
	// Empty and "willow" are byte-identical. Recorded in snapshots so a
	// restored or replicated daemon rebuilds the same controller.
	Policy string `json:"policy,omitempty"`
}

// DefaultSpec is the paper topology at 50 % utilization — what willowd
// boots with no flags.
func DefaultSpec() Spec {
	return Spec{
		Util:    0.5,
		Fanout:  []int{2, 3, 3},
		Ticks:   400,
		Warmup:  100,
		Seed:    2011,
		Supply:  "constant",
		Hotzone: true,
	}
}

// Servers returns the server count the fan-out implies.
func (s Spec) Servers() int {
	n := 1
	for _, f := range s.Fanout {
		n *= f
	}
	return n
}

// Build expands the Spec into a full cluster configuration, mirroring
// willow-sim's flag handling exactly so a fast-forward daemon run is
// byte-identical to the offline simulator on the same parameters.
func (s Spec) Build() (cluster.Config, error) {
	cfg := cluster.PaperConfig(s.Util)
	if len(s.Fanout) > 0 {
		cfg.Fanout = s.Fanout
	}
	if s.Ticks > 0 {
		cfg.Ticks = s.Ticks
	}
	cfg.Warmup = s.Warmup
	cfg.Seed = s.Seed
	n := 1
	for _, f := range cfg.Fanout {
		if f <= 0 {
			return cluster.Config{}, fmt.Errorf("server: fan-out %v has a non-positive level", cfg.Fanout)
		}
		n *= f
	}
	if !s.Hotzone || n != 18 {
		cfg.HotServers = nil
	}

	rated := float64(n) * cfg.ServerPower.Peak
	switch s.Supply {
	case "", "constant":
		cfg.Supply = power.Constant(rated)
	case "sine":
		cfg.Supply = power.Sine{Base: rated * 0.8, Amplitude: rated * 0.25, Period: 24}
	case "deficit-steps":
		cfg.Supply = power.Trace{rated, rated, rated * 0.6, rated * 0.6, rated * 0.9, rated, rated * 0.55, rated}
	default:
		return cluster.Config{}, fmt.Errorf("server: unknown supply profile %q (use constant, sine, or deficit-steps)", s.Supply)
	}

	if s.LeaseTicks > 0 {
		cfg.Core.BudgetLeaseTicks = s.LeaseTicks
	}
	cfg.Core.EnergyEvents = s.Energy
	if s.TickSeconds > 0 {
		cfg.Core.TickSeconds = s.TickSeconds
	}
	if s.Sensing {
		c := &cfg.Core
		if c.SensorWindow == 0 && c.SensorGate == 0 && c.SensorTrips == 0 && c.SensorGuard == 0 {
			c.SensorWindow = 5
			c.SensorGate = 3
			c.SensorTrips = 3
			c.SensorGuard = 2
		}
	}

	if s.Policy != "" {
		// Validate at boot (clear error now beats a panic later); the
		// machine builds its own fresh instance from the spec string.
		if _, err := policy.ParseSpec(s.Policy); err != nil {
			return cluster.Config{}, fmt.Errorf("server: %w", err)
		}
		cfg.Policy = s.Policy
	}

	if s.Chaos != "" {
		seed := s.ChaosSeed
		if seed == 0 {
			seed = cfg.Seed
		}
		if _, err := cluster.ApplyChaos(&cfg, s.Chaos, seed); err != nil {
			return cluster.Config{}, err
		}
	}
	if s.SensorChaos != "" {
		seed := s.ChaosSeed
		if seed == 0 {
			seed = cfg.Seed
		}
		cfg.NaiveSensing = s.SensorNaive
		if _, err := cluster.ApplySensorChaos(&cfg, s.SensorChaos, seed); err != nil {
			return cluster.Config{}, err
		}
	}
	return cfg, nil
}
