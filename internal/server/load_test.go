package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadRetriesShedRequests pins the generator's client-side overload
// behavior against a stub daemon: 429 responses are retried with
// backoff (honoring Retry-After), counted in the report, and a request
// that eventually succeeds is not an error.
func TestLoadRetriesShedRequests(t *testing.T) {
	var calls atomic.Int64
	const rejectFirst = 3
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/state" && r.Method == http.MethodGet && calls.Load() == 0 {
			// The probe request RunLoad sends before hammering.
			w.Write([]byte(`{"num_servers": 6}`))
			calls.Add(1)
			return
		}
		// Shed the first few load requests the way the admission gate
		// does, then accept everything.
		if calls.Add(1) <= rejectFirst+1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer stub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	report, err := RunLoad(ctx, LoadOptions{
		BaseURL:  stub.URL,
		Clients:  1, // sequential, so the shed/accept sequence is deterministic
		Requests: 10,
		Seed:     1,
		Retries:  rejectFirst,
		Backoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("report.Errors = %d, want 0 (shed requests must be retried to success)", report.Errors)
	}
	if report.Rejected != rejectFirst {
		t.Fatalf("report.Rejected = %d, want %d", report.Rejected, rejectFirst)
	}
	if report.Retries != rejectFirst {
		t.Fatalf("report.Retries = %d, want %d", report.Retries, rejectFirst)
	}
	if report.Requests != 10 {
		t.Fatalf("report.Requests = %d, want 10", report.Requests)
	}
}

// TestLoadRetriesExhausted pins the failure path: a server that sheds
// forever turns into report errors after the retry budget, never an
// infinite loop.
func TestLoadRetriesExhausted(t *testing.T) {
	var probed atomic.Bool
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if probed.CompareAndSwap(false, true) {
			w.Write([]byte(`{"num_servers": 6}`))
			return
		}
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer stub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	report, err := RunLoad(ctx, LoadOptions{
		BaseURL:  stub.URL,
		Clients:  1,
		Requests: 2,
		Seed:     1,
		Retries:  2,
		Backoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 2 {
		t.Fatalf("report.Errors = %d, want 2", report.Errors)
	}
	if want := 2 * 3; report.Rejected != want { // every attempt was shed
		t.Fatalf("report.Rejected = %d, want %d", report.Rejected, want)
	}
	if want := 2 * 2; report.Retries != want {
		t.Fatalf("report.Retries = %d, want %d", report.Retries, want)
	}
}

// TestLoadPerRequestTimeout pins the -req-timeout path: a hung endpoint
// trips the per-request deadline, counts as a timeout, and retries.
func TestLoadPerRequestTimeout(t *testing.T) {
	var probed atomic.Bool
	var hung atomic.Int64
	release := make(chan struct{})
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if probed.CompareAndSwap(false, true) {
			w.Write([]byte(`{"num_servers": 6}`))
			return
		}
		if hung.Add(1) == 1 {
			<-release // hang the first load request past the deadline
		}
		w.Write([]byte(`{}`))
	}))
	defer stub.Close()
	defer close(release)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	report, err := RunLoad(ctx, LoadOptions{
		BaseURL:        stub.URL,
		Clients:        1,
		Requests:       3,
		Seed:           1,
		RequestTimeout: 50 * time.Millisecond,
		Retries:        1,
		Backoff:        time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("report.Errors = %d, want 0 (timed-out request must retry to success)", report.Errors)
	}
	if report.Timeouts != 1 {
		t.Fatalf("report.Timeouts = %d, want 1", report.Timeouts)
	}
	if report.Retries != 1 {
		t.Fatalf("report.Retries = %d, want 1", report.Retries)
	}
}
