package server

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"willow/internal/telemetry"
)

// TestSnapshotCarriesPolicy pins the policy field of the restart
// contract: a daemon booted with a non-default controller policy
// records the spec string in its snapshot, and a restore rebuilds the
// same controller — byte-identical state at the boundary and a byte-
// identical event stream to completion. Without the field a restored
// integral/mpc run would silently continue under the willow scheme.
func TestSnapshotCarriesPolicy(t *testing.T) {
	for _, pol := range []string{"willow", "integral", "mpc,horizon=2"} {
		spec := testSpec()
		spec.Policy = pol

		d, err := New(spec)
		if err != nil {
			t.Fatalf("policy %q: %v", pol, err)
		}
		d.StepN(60)
		snap := d.Snapshot()
		if snap.Spec.Policy != pol {
			t.Fatalf("snapshot records policy %q, want %q", snap.Spec.Policy, pol)
		}

		wire, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		var decoded Snapshot
		if err := json.Unmarshal(wire, &decoded); err != nil {
			t.Fatal(err)
		}
		r, err := Restore(decoded)
		if err != nil {
			t.Fatal(err)
		}

		sd, _ := json.Marshal(d.State())
		sr, _ := json.Marshal(r.State())
		if !bytes.Equal(sd, sr) {
			t.Fatalf("policy %q: restored state diverges at the snapshot boundary", pol)
		}

		var liveTail, restoredTail telemetry.Buffer
		d.SetSink(&liveTail)
		r.SetSink(&restoredTail)
		if err := d.Run(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		if err := r.Run(context.Background(), 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeStream(t, liveTail.Events), encodeStream(t, restoredTail.Events)) {
			t.Fatalf("policy %q: post-restore event streams diverge", pol)
		}
		sameResult(t, d.Result(), r.Result(), "policy "+pol)
	}
}

// TestPolicySpecValidatedAtBoot pins the boot-time error: a bad policy
// spec fails Spec.Build with the valid names listed, instead of
// surfacing later from machine construction.
func TestPolicySpecValidatedAtBoot(t *testing.T) {
	spec := testSpec()
	spec.Policy = "bogus"
	if _, err := New(spec); err == nil {
		t.Fatal("bad policy spec accepted at boot")
	} else if !strings.Contains(err.Error(), "valid policies") {
		t.Errorf("error %q does not list the valid policies", err)
	}
}
