package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"willow/internal/chaos"
	"willow/internal/cluster"
	"willow/internal/core"
	"willow/internal/sensor"
	"willow/internal/telemetry"
)

// SnapshotVersion is the wire version of the snapshot format; Restore
// rejects anything else.
const SnapshotVersion = 1

// Mutation is one live change accepted over the API, journaled so a
// snapshot can replay it. Tick is the boundary it landed on (the
// machine's NextTick at acceptance); replay applies it at exactly that
// boundary, which reproduces the run bit for bit.
type Mutation struct {
	Tick int    `json:"tick"`
	Kind string `json:"kind"` // "demand" or "chaos"

	// demand: scale the apps on Server (-1 = fleet) by Factor.
	Server int     `json:"server,omitempty"`
	Factor float64 `json:"factor,omitempty"`

	// chaos: expand Spec with Seed over the remaining horizon; Sensor
	// selects the sensor-fault spec syntax instead of the full one.
	Spec   string `json:"spec,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	Sensor bool   `json:"sensor,omitempty"`
}

// Snapshot is the daemon's complete serializable state: the build
// spec, the tick reached, and every mutation accepted along the way.
// Restoring replays the journal against a freshly built machine —
// event-sourced, so no controller internals ever hit the wire and the
// restored state is identical by construction.
type Snapshot struct {
	Version int        `json:"version"`
	Spec    Spec       `json:"spec"`
	Tick    int        `json:"tick"`
	Journal []Mutation `json:"journal,omitempty"`
}

// WriteFile atomically and durably writes the snapshot as JSON:
// write to a temp file, fsync it, rename over the target, then fsync
// the parent directory. Without the two fsyncs the rename gives only
// atomicity against process death — a power cut could surface the
// renamed entry pointing at unwritten blocks, which is exactly the
// acknowledged-but-lost state a snapshot exists to prevent.
func (s Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// ReadSnapshot loads a snapshot written by WriteFile (or by hand).
func ReadSnapshot(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return Snapshot{}, fmt.Errorf("server: bad snapshot %s: %w", path, err)
	}
	return snap, nil
}

// Daemon is a live Willow run: one cluster.Machine advanced by a
// single driver (Run or Step), mutated and inspected by any number of
// concurrent API handlers. One mutex serializes everything that
// touches the machine, so every mutation lands at a tick boundary and
// every read sees a consistent between-ticks state. Telemetry leaves
// the lock through the Hub (bounded, non-blocking) and optionally
// through a lossless caller sink (SetSink).
type Daemon struct {
	mu      sync.Mutex
	spec    Spec
	m       *cluster.Machine
	journal []Mutation
	sink    telemetry.Sink // lossless, publishes under mu; may be nil
	hub     *Hub
	metrics *daemonMetrics
	started time.Time

	// rep streams durable journal records and tick heartbeats to
	// /v1/replicate subscribers (hot standbys); see replication.go.
	rep *repFeed
	// frozen marks a migration handoff: the tick loop steps no further
	// and mutations are refused, so the journal is final (Freeze).
	frozen bool
	// resumedAt is the tick boundary this incarnation started from (0
	// for a fresh daemon, the snapshot tick after Restore/promotion) —
	// surfaced in /healthz so failover harnesses know the event-stream
	// ownership boundary.
	resumedAt int
	// history retains the most recent hub events so a reconnecting
	// subscriber can resume with GET /v1/events?from=<tick>.
	history eventRing

	// wal, when attached, makes every accepted mutation durable before
	// the API acknowledges it. walErr is sticky: once an append fails,
	// the in-memory machine is ahead of the durable journal, so further
	// mutations are refused rather than widening the divergence.
	wal    *WAL
	walErr error
}

// eventRing is a fixed ring of the last eventHistory hub events, for
// ?from= stream resumption. Guarded by the daemon's tick lock; the
// buffer is pre-allocated so the publish hot path never allocates.
type eventRing struct {
	buf []telemetry.Event
	n   int // lifetime count; buf[(n-1)%len(buf)] is the newest entry
}

// eventHistory is how many recent events the daemon retains for
// ?from= resumption — best effort by design: a subscriber further
// behind than the ring gets the oldest retained tick onward.
const eventHistory = 8192

func (r *eventRing) add(e telemetry.Event) {
	r.buf[r.n%len(r.buf)] = e
	r.n++
}

// tail returns the retained events with Tick >= from, oldest first.
func (r *eventRing) tail(from int) []telemetry.Event {
	first := 0
	if r.n > len(r.buf) {
		first = r.n - len(r.buf)
	}
	var out []telemetry.Event
	for i := first; i < r.n; i++ {
		if e := r.buf[i%len(r.buf)]; e.Tick >= from {
			out = append(out, e)
		}
	}
	return out
}

// New builds a daemon from a spec, at tick 0 with an empty journal.
func New(spec Spec) (*Daemon, error) {
	cfg, err := spec.Build()
	if err != nil {
		return nil, err
	}
	m, err := cluster.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	return newDaemon(spec, m, nil), nil
}

// newDaemon wraps a machine (fresh or replayed) into a daemon with its
// hub, metrics, and telemetry plumbing attached.
func newDaemon(spec Spec, m *cluster.Machine, journal []Mutation) *Daemon {
	d := &Daemon{
		spec: spec, m: m, journal: journal,
		hub: NewHub(), rep: newRepFeed(), metrics: newDaemonMetrics(),
		history: eventRing{buf: make([]telemetry.Event, eventHistory)},
		started: time.Now(),
	}
	m.SetSink(telemetry.SinkFunc(d.publish))
	// Phase timing starts now: any replay that built m is warm-up work
	// the wall-clock histograms should not pollute.
	m.Controller().Phases = d.metrics
	return d
}

// AttachWAL makes every subsequently accepted mutation durable: the
// daemon appends and fsyncs it to w before the mutating call returns.
// The WAL must already contain the daemon's current journal (Recover
// guarantees this; a fresh daemon has an empty journal and CreateWAL
// writes an empty one). The daemon does not close the WAL; the caller
// owns its lifecycle.
func (d *Daemon) AttachWAL(w *WAL) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.wal = w
}

// Restore rebuilds a daemon from a snapshot: a fresh machine from the
// spec, fast-forwarded to the snapshot tick with every journaled
// mutation replayed at its original boundary. Telemetry is silenced
// during replay (those events were already published by the previous
// incarnation); the hub and sink see only post-restore ticks.
func Restore(snap Snapshot) (*Daemon, error) {
	if err := validateSnapshot(snap); err != nil {
		return nil, err
	}
	cfg, err := snap.Spec.Build()
	if err != nil {
		return nil, err
	}
	m, err := newReplayedMachine(cfg, snap, nil)
	if err != nil {
		return nil, err
	}
	d := newDaemon(snap.Spec, m, append([]Mutation(nil), snap.Journal...))
	d.resumedAt = snap.Tick
	return d, nil
}

// validateSnapshot checks the wire-level invariants Restore and Replay
// both depend on: version, tick bounds, and journal ordering.
func validateSnapshot(snap Snapshot) error {
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("server: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	cfg, err := snap.Spec.Build()
	if err != nil {
		return err
	}
	if snap.Tick < 0 || snap.Tick > cfg.Ticks {
		return fmt.Errorf("server: snapshot tick %d outside [0, %d]", snap.Tick, cfg.Ticks)
	}
	prev := -1
	for i, mut := range snap.Journal {
		if mut.Tick < prev || mut.Tick > snap.Tick {
			return fmt.Errorf("server: journal entry %d at tick %d breaks ordering (prev %d, snapshot %d)",
				i, mut.Tick, prev, snap.Tick)
		}
		prev = mut.Tick
	}
	return nil
}

// newReplayedMachine builds a fresh machine and fast-forwards it to
// snap.Tick, applying each journaled mutation at its original boundary.
// A nil sink replays silently (Restore: a live predecessor already
// published those events); a non-nil sink receives the replayed stream
// (Replay: the uninterrupted-run oracle).
func newReplayedMachine(cfg cluster.Config, snap Snapshot, sink telemetry.Sink) (*cluster.Machine, error) {
	m, err := cluster.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	if sink != nil {
		m.SetSink(sink)
	}
	ji := 0
	replay := func() error {
		for ji < len(snap.Journal) && snap.Journal[ji].Tick == m.NextTick() {
			if err := applyMutation(m, snap.Journal[ji]); err != nil {
				return fmt.Errorf("server: replaying journal entry %d: %w", ji, err)
			}
			ji++
		}
		return nil
	}
	for m.NextTick() < snap.Tick {
		if err := replay(); err != nil {
			return nil, err
		}
		m.Step()
	}
	// Mutations accepted at the snapshot boundary itself land before
	// the next tick runs, exactly as they did live.
	if err := replay(); err != nil {
		return nil, err
	}
	if ji != len(snap.Journal) {
		return nil, fmt.Errorf("server: %d journal entries beyond snapshot tick %d", len(snap.Journal)-ji, snap.Tick)
	}
	return m, nil
}

// publish is the machine's telemetry sink: lossless caller sink first
// (same order FileSink sees offline), then the lossy hub. Always
// called with d.mu held, because the machine only publishes inside
// Step.
func (d *Daemon) publish(e telemetry.Event) {
	if d.sink != nil {
		d.sink.Publish(e)
	}
	d.history.add(e)
	if d.metrics == nil {
		d.hub.Publish(e)
		return
	}
	start := time.Now()
	d.hub.Publish(e)
	d.metrics.publish.Observe(time.Since(start).Seconds())
}

// SetSink attaches a lossless telemetry sink (e.g. a FileSink). It
// receives every event from the next tick on, published under the
// tick lock in exact decision order. Pass nil to detach.
func (d *Daemon) SetSink(s telemetry.Sink) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sink = s
}

// Hub returns the daemon's fan-out hub for event subscriptions.
func (d *Daemon) Hub() *Hub { return d.hub }

// Spec returns the build spec.
func (d *Daemon) Spec() Spec { return d.spec }

// NextTick is the tick boundary the daemon currently rests at.
func (d *Daemon) NextTick() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m.NextTick()
}

// Done reports whether every configured tick has run.
func (d *Daemon) Done() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m.Done()
}

// Step advances one tick and reports whether the run is now done. On a
// frozen (handed-off) daemon it is a no-op: the handoff response named
// a final boundary and no tick may run beyond it.
func (d *Daemon) Step() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.frozen {
		return d.m.Done()
	}
	d.m.Step()
	d.afterTick()
	return d.m.Done()
}

// StepN advances up to n ticks (stopping early at run completion).
func (d *Daemon) StepN(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < n && !d.m.Done() && !d.frozen; i++ {
		d.m.Step()
		d.afterTick()
	}
}

// afterTick records the per-tick observability sample (the efficiency
// ring's cumulative energy reading). Called with d.mu held after every
// Step.
func (d *Daemon) afterTick() {
	if d.metrics != nil {
		d.metrics.push(d.m.NextTick(), d.m.Controller().EnergyTotals())
	}
	// With a WAL attached, the crash contract extends to the event
	// stream: hand the lossless sink's userspace buffers to the kernel
	// at every tick boundary, so a kill -9 loses at most the tick in
	// flight (already-written bytes survive process death; surviving
	// power loss is the snapshot's and WAL's job, not the stream's).
	if d.wal != nil {
		if f, ok := d.sink.(interface{ Flush() error }); ok {
			_ = f.Flush()
		}
	}
	// Replication heartbeat, strictly after the stream flush: a
	// follower that heard "tick T" may assume the primary's event file
	// holds every completed tick before T, which is what makes the
	// promoted follower's event stream splice byte-exact.
	d.rep.publish(RepRecord{
		Type:    "hb",
		Tick:    d.m.NextTick(),
		Records: len(d.journal),
		Done:    d.m.Done(),
	})
}

// Run drives the machine to completion: one tick per tickEvery of wall
// clock, or flat out when tickEvery <= 0 (fast-forward — byte-identical
// to the offline simulator). It returns nil when the configured ticks
// have all run, or the context error if cancelled first; either way the
// machine rests at a clean tick boundary, so a final snapshot is always
// consistent. Only one Run (or Step/StepN caller) may drive a daemon at
// a time.
func (d *Daemon) Run(ctx context.Context, tickEvery time.Duration) error {
	if tickEvery <= 0 {
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			if d.Frozen() {
				// Handed off: hold the boundary and serve until shutdown.
				<-ctx.Done()
				return ctx.Err()
			}
			if d.Step() {
				return nil
			}
		}
	}
	tk := time.NewTicker(tickEvery)
	defer tk.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tk.C:
			if d.Frozen() {
				<-ctx.Done()
				return ctx.Err()
			}
			if d.Step() {
				return nil
			}
		}
	}
}

// ScaleDemand multiplies the mean demand of every application on the
// given server (-1 = whole fleet) by factor, journaling the mutation.
// It lands at the current tick boundary. With a WAL attached, the
// mutation is durable before the call returns.
func (d *Daemon) ScaleDemand(server int, factor float64) (tick int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.walHealthy(); err != nil {
		return 0, err
	}
	if err := d.m.ScaleDemand(server, factor); err != nil {
		return 0, err
	}
	tick = d.m.NextTick()
	if err := d.journalMutation(Mutation{Tick: tick, Kind: "demand", Server: server, Factor: factor}); err != nil {
		return 0, err
	}
	return tick, nil
}

// walHealthy reports the sticky WAL failure, if any: after a failed
// append the in-memory run is ahead of the durable journal, and the
// only honest move is to refuse further mutations (reads and ticking
// continue — the divergence never widens). A frozen (handed-off)
// daemon refuses for a different reason: the handoff promised the
// journal was final.
func (d *Daemon) walHealthy() error {
	if d.frozen {
		return fmt.Errorf("server: mutations disabled, run handed off at tick %d", d.m.NextTick())
	}
	if d.walErr != nil {
		return fmt.Errorf("server: mutations disabled, wal diverged: %w", d.walErr)
	}
	return nil
}

// journalMutation records an accepted mutation in the in-memory journal
// and, when a WAL is attached, makes it durable before returning. The
// in-memory append happens regardless of WAL failure — the machine has
// already mutated, and a later graceful snapshot must describe the
// state the machine is actually in.
func (d *Daemon) journalMutation(mut Mutation) error {
	d.journal = append(d.journal, mut)
	if d.wal != nil {
		start := time.Now()
		err := d.wal.Append(mut)
		if d.metrics != nil {
			d.metrics.walAppend.Observe(time.Since(start).Seconds())
		}
		if err != nil {
			d.walErr = err
			if d.metrics != nil {
				d.metrics.walErrors.Inc()
			}
			return fmt.Errorf("server: mutation applied but not durable: %w", err)
		}
	}
	// Replicate only after the mutation is durable (or durability is not
	// armed): a follower must never hold a record the primary could
	// still lose.
	d.rep.publish(RepRecord{
		Type:    "mut",
		Index:   len(d.journal) - 1,
		Mut:     &mut,
		Tick:    mut.Tick,
		Records: len(d.journal),
	})
	return nil
}

// InjectChaos expands a chaos spec (sensorOnly selects sensor.ParseSpec
// syntax) over the remaining horizon with the given seed and schedules
// it from the current tick boundary, journaling the mutation. Seed 0
// derives from the run seed, resolved before journaling so replay needs
// no convention.
func (d *Daemon) InjectChaos(spec string, seed uint64, sensorOnly bool) (chaos.Plan, int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.walHealthy(); err != nil {
		return chaos.Plan{}, 0, err
	}
	if seed == 0 {
		seed = d.spec.Seed
	}
	plan, err := injectChaos(d.m, spec, seed, sensorOnly)
	if err != nil {
		return chaos.Plan{}, 0, err
	}
	tick := d.m.NextTick()
	if err := d.journalMutation(Mutation{Tick: tick, Kind: "chaos", Spec: spec, Seed: seed, Sensor: sensorOnly}); err != nil {
		return chaos.Plan{}, 0, err
	}
	return plan, tick, nil
}

// injectChaos expands spec against the machine's remaining horizon and
// schedules the plan at the machine's current boundary. Pure function
// of (machine tick, spec, seed), which is what makes the journal
// replayable.
func injectChaos(m *cluster.Machine, spec string, seed uint64, sensorOnly bool) (chaos.Plan, error) {
	cfg := m.Config()
	tick := m.NextTick()
	horizon := cfg.Ticks - tick
	if horizon <= 0 {
		return chaos.Plan{}, fmt.Errorf("server: run complete, no horizon left for chaos")
	}
	var sched chaos.Schedule
	if sensorOnly {
		sp, err := sensor.ParseSpec(spec)
		if err != nil {
			return chaos.Plan{}, err
		}
		sched = chaos.Schedule{
			SensorMTBF: sp.MTBF, SensorMTTR: sp.MTTR,
			SensorNoise: sp.Noise, SensorBias: sp.Bias, SensorDrift: sp.Drift,
			SensorStuck: sp.Stuck, SensorDropout: sp.Dropout,
		}
	} else {
		var err error
		sched, err = chaos.ParseSpec(spec)
		if err != nil {
			return chaos.Plan{}, err
		}
	}
	sched.Ticks = horizon
	var err error
	sched.Servers, sched.PMUs, sched.Racks, err = cluster.ChaosTopology(cfg.Fanout)
	if err != nil {
		return chaos.Plan{}, err
	}
	plan, err := sched.Expand(seed)
	if err != nil {
		return chaos.Plan{}, err
	}
	if err := m.InjectPlan(plan, tick); err != nil {
		return chaos.Plan{}, err
	}
	return plan, nil
}

func applyMutation(m *cluster.Machine, mut Mutation) error {
	switch mut.Kind {
	case "demand":
		return m.ScaleDemand(mut.Server, mut.Factor)
	case "chaos":
		_, err := injectChaos(m, mut.Spec, mut.Seed, mut.Sensor)
		return err
	default:
		return fmt.Errorf("server: unknown mutation kind %q", mut.Kind)
	}
}

// Snapshot captures the daemon's state at the current tick boundary.
// Safe to call at any time; it waits for an in-flight tick to finish.
func (d *Daemon) Snapshot() Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Snapshot{
		Version: SnapshotVersion,
		Spec:    d.spec,
		Tick:    d.m.NextTick(),
		Journal: append([]Mutation(nil), d.journal...),
	}
}

// WriteSnapshot captures the current snapshot and writes it to path,
// timing the serialization + write into the wall-clock snapshot
// histogram (the /metrics willow_snapshot_write_seconds series).
func (d *Daemon) WriteSnapshot(path string) (Snapshot, error) {
	snap := d.Snapshot()
	start := time.Now()
	err := snap.WriteFile(path)
	if d.metrics != nil {
		d.metrics.snapshot.Observe(time.Since(start).Seconds())
	}
	return snap, err
}

// Result computes the run's measurements so far (see cluster.Result).
func (d *Daemon) Result() *cluster.Result {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.m.Result()
}

// Close shuts the hub and replication feed down, terminating every
// event subscription and follower stream. Drain ordering matters: this
// must run before http.Server.Shutdown, or a connected follower or
// event subscriber would hold the drain open forever. The machine
// itself needs no teardown.
func (d *Daemon) Close() {
	d.hub.Close()
	d.rep.close()
}

// SubscribeEvents registers a hub subscriber and, atomically with the
// subscription (under the tick lock, so no event can fall between),
// returns the buffered history from tick `from` on. The handler
// replays the history, then follows the live subscription — together a
// gapless, duplicate-free resume as long as `from` is within the
// retained window (eventHistory events, best effort beyond that).
func (d *Daemon) SubscribeEvents(from, buffer int) ([]telemetry.Event, *Subscription) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.history.tail(from), d.hub.Subscribe(buffer)
}

// ServerState is one server's between-ticks control state.
type ServerState struct {
	Server int `json:"server"`
	// CP is smoothed reported demand, TP the granted budget, Consumed
	// the power actually drawn, Dropped the demand shed this tick.
	CP       float64 `json:"cp"`
	TP       float64 `json:"tp"`
	Consumed float64 `json:"consumed"`
	Dropped  float64 `json:"dropped,omitempty"`
	// Demand is the raw (pre-smoothing) offered demand.
	Demand float64 `json:"demand"`
	// Temp is the true physical temperature; TObs what the sensing path
	// reported to the controller (they diverge under sensor faults).
	Temp float64 `json:"temp"`
	TObs float64 `json:"tobs"`
	Apps int     `json:"apps"`
	// Asleep, Degraded (expired budget lease), Failed (crashed).
	Asleep   bool `json:"asleep,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
	Failed   bool `json:"failed,omitempty"`
}

// State is the /v1/state payload: the whole control hierarchy at the
// current tick boundary.
type State struct {
	Tick    int     `json:"tick"`
	Ticks   int     `json:"ticks"`
	Done    bool    `json:"done"`
	Servers int     `json:"num_servers"`
	Supply  float64 `json:"supply"`

	ServerStates []ServerState   `json:"servers"`
	PMUs         []core.NodeView `json:"pmus"`

	Degraded   int `json:"degraded"`
	FailedPMUs int `json:"failed_pmus"`
}

// State reads the full hierarchy state at the current tick boundary.
func (d *Daemon) State() State {
	d.mu.Lock()
	defer d.mu.Unlock()
	ctrl := d.m.Controller()
	tick := d.m.NextTick()
	st := State{
		Tick:       tick,
		Ticks:      d.m.Config().Ticks,
		Done:       d.m.Done(),
		Servers:    len(ctrl.Servers),
		Supply:     ctrl.Supply.At(tick / ctrl.Cfg.Eta1),
		PMUs:       ctrl.PMUViews(),
		Degraded:   ctrl.DegradedCount(),
		FailedPMUs: ctrl.FailedPMUCount(),
	}
	st.ServerStates = make([]ServerState, len(ctrl.Servers))
	for i, s := range ctrl.Servers {
		st.ServerStates[i] = ServerState{
			Server:   i,
			CP:       s.CP(),
			TP:       s.TP(),
			Consumed: s.Consumed(),
			Dropped:  s.Dropped(),
			Demand:   s.RawDemand(),
			Temp:     s.Thermal.T,
			TObs:     s.TObs(),
			Apps:     len(s.Apps.Apps),
			Asleep:   s.Asleep(),
			Degraded: s.Degraded(),
			Failed:   s.Failed(),
		}
	}
	return st
}

// StatsView is the /v1/stats payload: run counters without the
// unbounded per-migration log (a long-lived daemon would make that
// payload grow without limit).
type StatsView struct {
	Tick   int     `json:"tick"`
	Ticks  int     `json:"ticks"`
	Done   bool    `json:"done"`
	Uptime float64 `json:"uptime_seconds"`

	TotalEnergy      float64 `json:"total_energy"`
	DroppedWattTicks float64 `json:"dropped_watt_ticks"`
	MaxTemp          float64 `json:"max_temp"`
	MaxObsTemp       float64 `json:"max_obs_temp,omitempty"`
	LimitViolations  int     `json:"limit_violation_ticks"`

	DemandMigrations        int     `json:"demand_migrations"`
	ConsolidationMigrations int     `json:"consolidation_migrations"`
	LocalMigrations         int     `json:"local_migrations"`
	MigrationShare          float64 `json:"migration_share"`
	PingPongs               int     `json:"ping_pongs"`
	Wakes                   int     `json:"wakes"`

	Failures       int   `json:"failures,omitempty"`
	Repairs        int   `json:"repairs,omitempty"`
	Restarts       int   `json:"restarts,omitempty"`
	PMUFailures    int   `json:"pmu_failures,omitempty"`
	PMURepairs     int   `json:"pmu_repairs,omitempty"`
	LeaseExpiries  int   `json:"lease_expiries,omitempty"`
	DegradedTicks  int64 `json:"degraded_ticks,omitempty"`
	SensorFaults   int   `json:"sensor_faults,omitempty"`
	SensorRejected int   `json:"sensor_rejected,omitempty"`

	MeanStretch     float64 `json:"mean_stretch"`
	SLOMissFraction float64 `json:"slo_miss_fraction"`

	EventsPublished int64 `json:"events_published"`
	EventsDropped   int64 `json:"events_dropped"`
	Subscribers     int   `json:"subscribers"`
	JournalLen      int   `json:"journal_len"`

	// WalOK is false once a WAL append has failed (the sticky error that
	// disables mutations); WalError carries the failure text. A daemon
	// refusing mutations is thus visible on the API surface, not only in
	// logs.
	WalOK    bool   `json:"wal_ok"`
	WalError string `json:"wal_error,omitempty"`

	// SubscriberStats details each live subscriber's backpressure:
	// buffer capacity, current occupancy, and events dropped — the
	// per-stream view behind the aggregate EventsDropped.
	SubscriberStats []SubscriberStat `json:"subscriber_stats,omitempty"`
}

// Stats summarizes the run so far for /v1/stats.
func (d *Daemon) Stats() StatsView {
	d.mu.Lock()
	res := d.m.Result()
	tick := d.m.NextTick()
	ticks := d.m.Config().Ticks
	done := d.m.Done()
	journal := len(d.journal)
	started := d.started
	walErr := d.walErr
	d.mu.Unlock()

	published, dropped, subs := d.hub.Stats()
	return StatsView{
		Tick: tick, Ticks: ticks, Done: done,
		Uptime:           time.Since(started).Seconds(),
		TotalEnergy:      res.TotalEnergy,
		DroppedWattTicks: res.DroppedWattTicks,
		MaxTemp:          res.MaxTemp,
		MaxObsTemp:       res.MaxObsTemp,
		LimitViolations:  res.LimitViolationTicks,

		DemandMigrations:        res.DemandMigrations,
		ConsolidationMigrations: res.ConsolidationMigrations,
		LocalMigrations:         res.Stats.LocalMigrations,
		MigrationShare:          res.MigrationShare,
		PingPongs:               res.Stats.PingPongs,
		Wakes:                   res.Stats.Wakes,

		Failures: res.Stats.Failures, Repairs: res.Stats.Repairs, Restarts: res.Stats.Restarts,
		PMUFailures: res.Stats.PMUFailures, PMURepairs: res.Stats.PMURepairs,
		LeaseExpiries:  res.Stats.LeaseExpiries,
		DegradedTicks:  res.Stats.DegradedTicks,
		SensorFaults:   res.Stats.SensorFaults,
		SensorRejected: res.Stats.SensorRejected,

		MeanStretch:     res.MeanStretch,
		SLOMissFraction: res.SLOMissFraction,

		EventsPublished: published,
		EventsDropped:   dropped,
		Subscribers:     subs,
		JournalLen:      journal,
		SubscriberStats: d.hub.SubscriberStats(),

		WalOK:    walErr == nil,
		WalError: errText(walErr),
	}
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
