package exp

import "testing"

// FuzzReplicationSeeds checks the seed-derivation invariants for
// arbitrary stream bases: derivation is a pure function of (base, n), no
// derived seed is zero (zero means "experiment default" in Options and
// would silently collapse a replication onto the unseeded run), and
// seeds within a run are pairwise distinct — SplitMix64's output mix is
// a bijection over distinct counter states, so a collision would mean
// the derivation is broken.
func FuzzReplicationSeeds(f *testing.F) {
	f.Add(uint64(0), byte(4))
	f.Add(replicationBase, byte(16))
	f.Add(uint64(1), byte(0))
	f.Add(^uint64(0), byte(32))
	f.Add(uint64(0x9e3779b97f4a7c15), byte(8)) // base = the SplitMix64 increment
	f.Fuzz(func(t *testing.T, base uint64, nRaw byte) {
		n := int(nRaw % 64)
		seeds := ReplicationSeeds(base, n)
		if len(seeds) != n {
			t.Fatalf("got %d seeds, want %d", len(seeds), n)
		}
		again := ReplicationSeeds(base, n)
		seen := map[uint64]bool{}
		for i, s := range seeds {
			if s == 0 {
				t.Fatalf("seed %d is zero", i)
			}
			if again[i] != s {
				t.Fatalf("seed %d not deterministic: %#x vs %#x", i, s, again[i])
			}
			if seen[s] {
				t.Fatalf("seed %#x derived twice", s)
			}
			seen[s] = true
		}
	})
}

// FuzzOptionsSeed pins the Options.Seed contract RunMany relies on: a
// zero Seed defers to the experiment default, anything else overrides it
// verbatim.
func FuzzOptionsSeed(f *testing.F) {
	f.Add(uint64(0), uint64(2011))
	f.Add(uint64(42), uint64(2011))
	f.Add(^uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, seed, def uint64) {
		got := Options{Seed: seed}.seed(def)
		want := seed
		if seed == 0 {
			want = def
		}
		if got != want {
			t.Fatalf("Options{Seed:%d}.seed(%d) = %d, want %d", seed, def, got, want)
		}
	})
}
