package exp

import (
	"context"
	"testing"
)

// TestBakeoffSmoke is the CI gate of the bake-off family: a quick run
// must complete with every policy row present, and the robust policies
// (integral, mpc — both clamped to the Eq. 3 envelope) must hold the
// true 70 °C cap under the medium machine+sensor chaos plan. runBakeoff
// itself errors on a non-willow violation, so a passing run IS the
// safety assertion; the explicit column check below keeps the table
// honest too.
func TestBakeoffSmoke(t *testing.T) {
	res, err := Run("bakeoff", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != len(bakeoffPolicies) {
		t.Fatalf("bakeoff table has %d rows, want %d", len(res.Table.Rows), len(bakeoffPolicies))
	}
	for i, row := range res.Table.Rows {
		if row[0] != bakeoffPolicies[i] {
			t.Errorf("row %d is %q, want %q", i, row[0], bakeoffPolicies[i])
		}
		if row[0] != "willow" && row[1] != "0" {
			t.Errorf("policy %s: %s true-temperature cap violations, want 0", row[0], row[1])
		}
	}
}

// TestBakeoffDeterminism pins the bake-off's determinism contract from
// the acceptance criteria: two identical invocations render byte-
// identical tables, and RunMany produces the same aggregated tables for
// any worker count — the bake-off steps its machines sequentially
// inside one experiment run, so worker-level concurrency cannot reorder
// anything observable.
func TestBakeoffDeterminism(t *testing.T) {
	opts := Options{Quick: true}
	a, err := Run("bakeoff", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("bakeoff", opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.String() != b.Table.String() {
		t.Error("two identical bakeoff runs rendered different tables")
	}

	ids := []string{"bakeoff", "bakeoff-stress"}
	many := func(workers int) []*Result {
		o := opts
		o.Workers = workers
		o.Replications = 2
		res, err := RunMany(context.Background(), ids, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := many(1)
	four := many(4)
	for i := range ids {
		if one[i].Table.String() != four[i].Table.String() {
			t.Errorf("%s: aggregated table differs between 1 and 4 workers", ids[i])
		}
	}
}
