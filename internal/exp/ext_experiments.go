package exp

import (
	"fmt"
	"time"

	"willow/internal/cluster"
	"willow/internal/cooling"
	"willow/internal/device"
	"willow/internal/metrics"
	"willow/internal/power"
)

func init() {
	register("ext-qos", "Extension (§VI) — multiple QoS classes under scarcity", runExtQoS)
	register("ext-cooling", "Extension (§VI) — cooling infrastructure energy & PUE", runExtCooling)
	register("ext-ipc", "Extension (§VI) — IPC-heavy workloads and migration", runExtIPC)
	register("ext-device", "Extension (§VI) — component-level (level-0) power control", runExtDevice)
	register("prop-convergence", "Section V-A1 — δ-convergence and the Δ_D safety rule", runPropConvergence)
	registerTiming("prop-scaling", "Section V-A2 — decision complexity as the data center grows", runPropScaling)
}

// runExtQoS implements the paper's future-work QoS classes: three
// priority classes under a scarce supply; shedding must consume the
// lowest class first while the critical class stays near full service.
func runExtQoS(opts Options) (*Result, error) {
	run := func(classes int) (*cluster.Result, error) {
		cfg := cluster.PaperConfig(0.85)
		shortenFor(opts)(&cfg)
		cfg.PriorityClasses = classes
		cfg.Supply = power.Constant(18 * 320) // ~75 % of the demand at U=85 %
		return cluster.Run(cfg)
	}
	qos, err := run(3)
	if err != nil {
		return nil, err
	}
	blind, err := run(0) // every app priority 0: priority-blind shedding
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"QoS classes under a 25% supply shortfall (U=85%)",
		"class", "demand (watt-ticks)", "served (watt-ticks)", "service level",
	)
	for p := 0; p < 3; p++ {
		tb.AddRow(fmt.Sprintf("%d", p),
			fmt.Sprintf("%.0f", qos.Stats.DemandByPriority[p]),
			fmt.Sprintf("%.0f", qos.Stats.ServedByPriority[p]),
			fmt.Sprintf("%.4f", qos.Stats.ServiceLevel(p)))
	}
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("critical class served at %.2f%% vs %.2f%% for the lowest class — shedding is priority-ordered",
				100*qos.Stats.ServiceLevel(0), 100*qos.Stats.ServiceLevel(2)),
			fmt.Sprintf("priority-blind shedding serves every class at ~%.2f%% — the extension protects what matters",
				100*blind.Stats.ServiceLevel(0)),
			fmt.Sprintf("%d application-windows degraded, %d shut down", qos.Stats.DegradedAppTicks, qos.Stats.ShutdownAppTicks),
		},
	}, nil
}

// runExtCooling folds the cooling plant into the energy accounting: IT
// power, cooling power and PUE across utilization, comparing Willow with
// the no-control floor — the holistic view the paper's §VI asks for.
func runExtCooling(opts Options) (*Result, error) {
	plant, err := cooling.NewPlant(cooling.PaperZones())
	if err != nil {
		return nil, err
	}
	utils := []float64{0.2, 0.4, 0.6, 0.8}
	if opts.Quick {
		utils = []float64{0.3, 0.7}
	}
	tb := metrics.NewTable(
		"Facility energy with the cooling plant folded in (Moore et al. COP curve)",
		"utilization", "IT power (W)", "cooling power (W)", "PUE", "IT saved vs no-control (W)",
	)
	var notes []string
	for _, u := range utils {
		cfg := cluster.PaperConfig(u)
		shortenFor(opts)(&cfg)
		willow, err := cluster.Run(cfg)
		if err != nil {
			return nil, err
		}
		noCfg := cluster.PaperConfig(u)
		shortenFor(opts)(&noCfg)
		noCfg.Core.PMin = 1e12
		noCfg.Core.ConsolidateBelow = 1e-12
		none, err := cluster.Run(noCfg)
		if err != nil {
			return nil, err
		}
		itWillow := sum(willow.MeanPower)
		itNone := sum(none.MeanPower)
		coolingPower := plant.CoolingPower(willow.MeanPower)
		tb.AddRow(pct(u),
			fmt.Sprintf("%.0f", itWillow),
			fmt.Sprintf("%.0f", coolingPower),
			fmt.Sprintf("%.3f", plant.PUE(willow.MeanPower)),
			fmt.Sprintf("%.0f", itNone-itWillow))
		if u <= 0.4 {
			saved := (itNone - itWillow) + (plant.CoolingPower(none.MeanPower) - coolingPower)
			notes = append(notes, fmt.Sprintf("at %s, consolidation saves %.0f W of facility power (IT + cooling combined)", pct(u), saved))
		}
	}
	notes = append(notes, "every watt consolidated away saves ~1/COP additional cooling watts — the holistic margin §VI points at")
	return &Result{Table: tb, Notes: notes}, nil
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// runExtIPC measures what Willow's migrations do to communicating
// workloads: mean switch hops per flow and total network traffic, with
// and without control.
func runExtIPC(opts Options) (*Result, error) {
	run := func(noControl bool) (*cluster.Result, error) {
		cfg := cluster.PaperConfig(0.6)
		shortenFor(opts)(&cfg)
		cfg.IPCFlows = 36
		cfg.IPCRate = 4
		cfg.Supply = power.Sine{Base: 6800, Amplitude: 1600, Period: 17} // force adaptation
		if noControl {
			cfg.Core.PMin = 1e12
			cfg.Core.ConsolidateBelow = 1e-12
		}
		return cluster.Run(cfg)
	}
	willow, err := run(false)
	if err != nil {
		return nil, err
	}
	frozen, err := run(true)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"IPC-heavy workload: 36 app-to-app flows under a swinging supply",
		"variant", "mean flow hops", "migrations", "dropped (watt-ticks)",
	)
	tb.AddRow("willow", fmt.Sprintf("%.2f", willow.MeanFlowHops),
		fmt.Sprintf("%d", len(willow.Stats.Migrations)),
		fmt.Sprintf("%.0f", willow.DroppedWattTicks))
	tb.AddRow("no-control", fmt.Sprintf("%.2f", frozen.MeanFlowHops),
		fmt.Sprintf("%d", len(frozen.Stats.Migrations)),
		fmt.Sprintf("%.0f", frozen.DroppedWattTicks))
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("Willow's migrations change flow locality by %.2f hops on average while cutting dropped demand %.1fx — the QoS/traffic trade-off §VI flags for IPC-heavy workloads",
				willow.MeanFlowHops-frozen.MeanFlowHops, safeRatio(frozen.DroppedWattTicks, willow.DroppedWattTicks)),
		},
	}, nil
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// runExtDevice exercises the level-0 tier: an intra-server PMU dividing
// the server budget over CPUs, DIMMs, NIC and disks in a hot aisle,
// throttling whatever would overheat.
func runExtDevice(opts Options) (*Result, error) {
	windows := 400
	if opts.Quick {
		windows = 120
	}
	tb := metrics.NewTable(
		"Component-level control: 45 °C hot-aisle server under rising load",
		"offered util", "delivered util", "consumed (W)", "hottest component", "headroom (°C)", "throttle windows",
	)
	var notes []string
	for _, u := range []float64{0.3, 0.6, 0.9, 1.0} {
		pmu, err := device.NewPMU(device.DefaultServer(45), 4, 1)
		if err != nil {
			return nil, err
		}
		var consumed, delivered float64
		for w := 0; w < windows; w++ {
			c, d := pmu.Step(u, pmu.TotalPeak())
			consumed, delivered = c, d
		}
		hot := pmu.HottestComponent()
		tb.AddRow(pct(u), fmt.Sprintf("%.2f", delivered), fmt.Sprintf("%.1f", consumed),
			hot.Spec.Name, fmt.Sprintf("%.1f", hot.Thermal.Headroom()),
			fmt.Sprintf("%d", pmu.ThrottleEvents()))
		if u == 1.0 && delivered < 1.0 {
			notes = append(notes, fmt.Sprintf("at full load the %s throttles the server to %.0f%% delivered utilization to respect its %v °C limit — the T-state mechanism of Section III",
				hot.Spec.Name, delivered*100, hot.Spec.Thermal.Limit))
		}
	}
	notes = append(notes, "no component ever exceeds its own thermal limit (enforced per window via Eq. 3)")
	return &Result{Table: tb, Notes: notes}, nil
}

// runPropConvergence reproduces the §V-A1 arithmetic: with h hierarchy
// levels and a per-level update latency α, any update propagates within
// δ = h·α, and choosing Δ_D ≥ 10·h·α avoids decision instability. The
// paper concludes δ ≤ 50 ms and Δ_D ≥ 500 ms for realistic data centers.
func runPropConvergence(Options) (*Result, error) {
	const alphaMs = 10.0 // per-level update latency, ms
	tb := metrics.NewTable(
		"δ-convergence: update propagation vs hierarchy depth (α = 10 ms/level)",
		"levels h", "δ = h·α (ms)", "safe Δ_D = 10·h·α (ms)",
	)
	for h := 1; h <= 5; h++ {
		delta := float64(h) * alphaMs
		tb.AddRow(fmt.Sprintf("%d", h), fmt.Sprintf("%.0f", delta), fmt.Sprintf("%.0f", 10*delta))
	}
	return &Result{
		Table: tb,
		Notes: []string{
			"at the paper's bound of 5 levels, δ = 50 ms and Δ_D ≥ 500 ms is safe — matching §V-A1's conclusion",
			"the simulator realizes δ < Δ_D by construction: demand reports and budgets propagate the whole tree within one tick",
		},
	}, nil
}

// runPropScaling measures controller work as the data center grows —
// §V-A2 argues O(log n) decision complexity per level with constant-size
// subproblems; total per-tick work grows linearly with servers (demand
// generation) while the hierarchy adds only log-depth decision stages.
func runPropScaling(opts Options) (*Result, error) {
	shapes := []struct {
		fanout []int
	}{
		{[]int{8}},
		{[]int{8, 8}},
		{[]int{4, 4, 8}},
		{[]int{4, 4, 4, 8}},
	}
	ticks := 300
	if opts.Quick {
		ticks = 80
	}
	tb := metrics.NewTable(
		"Controller scaling across data-center sizes",
		"servers", "levels", "per-tick (µs)", "per-server-tick (µs)",
	)
	var perServer []float64
	for _, sh := range shapes {
		n := 1
		for _, f := range sh.fanout {
			n *= f
		}
		cfg := cluster.PaperConfig(0.6)
		cfg.Sink = opts.EventSink
		cfg.Fanout = sh.fanout
		cfg.HotServers = nil
		cfg.Supply = power.Constant(float64(n) * 450)
		cfg.Warmup = 10
		cfg.Ticks = ticks
		start := time.Now()
		if _, err := cluster.Run(cfg); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		perTick := float64(elapsed.Microseconds()) / float64(ticks)
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", len(sh.fanout)),
			fmt.Sprintf("%.1f", perTick), fmt.Sprintf("%.3f", perTick/float64(n)))
		perServer = append(perServer, perTick/float64(n))
	}
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("per-server work stays near-constant as the fleet grows 64x (%.3f -> %.3f µs) — the hierarchy adds only log-depth decision stages (§V-A2's O(log n))",
				perServer[0], perServer[len(perServer)-1]),
		},
	}, nil
}

func init() {
	register("prop-imbalance", "Section IV-E — error accumulation down the hierarchy (Eq. 9 per level)", runPropImbalance)
	register("ext-idle", "Extension (§II) — Willow on top of idle power control", runExtIdle)
}

// runPropImbalance measures the paper's Eq. 9 power imbalance at every
// hierarchy level under a noisy supply. Section IV-E's first design
// consideration: "any small errors and uncertainties that occur in the
// topmost level add up as we move down the lower levels. As a
// consequence the worst errors are experienced by the lowermost levels."
func runPropImbalance(opts Options) (*Result, error) {
	cfg := cluster.PaperConfig(0.6)
	shortenFor(opts)(&cfg)
	cfg.Supply = power.Sine{Base: 6600, Amplitude: 1500, Period: 11}
	r, err := cluster.Run(cfg)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable(
		"Mean Eq. 9 power imbalance per hierarchy level (noisy supply, U=60%)",
		"level", "role", "mean imbalance (W)",
	)
	roles := []string{"servers", "enclosure PMUs", "rack PMUs", "data center"}
	for level, imb := range r.MeanImbalance {
		role := "PMUs"
		if level < len(roles) {
			role = roles[level]
		}
		tb.AddRow(fmt.Sprintf("%d", level), role, fmt.Sprintf("%.1f", imb))
	}
	note := "imbalance is largest at the lowest level"
	if len(r.MeanImbalance) >= 2 && r.MeanImbalance[0] <= r.MeanImbalance[len(r.MeanImbalance)-1] {
		note = "imbalance did not concentrate at the lowest level in this run"
	}
	return &Result{
		Table: tb,
		Notes: []string{note + " — the error-accumulation effect §IV-E designs against (margins absorb it at the leaves)"},
	}, nil
}

// runExtIdle demonstrates the paper's claim that "Willow can be
// seamlessly applied on top of any existing idle power control technique"
// (Section II): a fine-grained idle governor that cuts a server's static
// draw composes with Willow's consolidation, and the savings stack.
func runExtIdle(opts Options) (*Result, error) {
	const u = 0.25
	run := func(static float64, willowOn bool) (*cluster.Result, error) {
		cfg := cluster.PaperConfig(u)
		shortenFor(opts)(&cfg)
		cfg.ServerPower = power.ServerModel{Static: static, Peak: 450}
		if !willowOn {
			cfg.Core.PMin = 1e12
			cfg.Core.ConsolidateBelow = 1e-12
		}
		return cluster.Run(cfg)
	}
	type variant struct {
		name   string
		static float64
		willow bool
	}
	variants := []variant{
		{"neither", 135, false},
		{"idle control only", 60, false},
		{"willow only", 135, true},
		{"willow + idle control", 60, true},
	}
	tb := metrics.NewTable(
		"Composing Willow with fine-grained idle power control (U=25%)",
		"variant", "IT power (W)", "saved vs neither (W)",
	)
	var base float64
	results := map[string]float64{}
	for _, v := range variants {
		r, err := run(v.static, v.willow)
		if err != nil {
			return nil, err
		}
		it := sum(r.MeanPower)
		results[v.name] = it
		if v.name == "neither" {
			base = it
		}
		tb.AddRow(v.name, fmt.Sprintf("%.0f", it), fmt.Sprintf("%.0f", base-it))
	}
	return &Result{
		Table: tb,
		Notes: []string{
			fmt.Sprintf("combined savings %.0f W exceed either alone (%.0f W idle-only, %.0f W willow-only) — the techniques compose, as §II claims",
				base-results["willow + idle control"], base-results["idle control only"], base-results["willow only"]),
		},
	}, nil
}
